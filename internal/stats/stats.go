// Package stats supplies the small statistics toolkit used by the
// evaluation harness: empirical CDFs (Figs. 12 and 14 of the paper),
// lag-1 autocorrelation (the paper's uncorrelatedness check for
// Solution C), histograms, and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDFPoint is one (value, cumulative probability) sample of an empirical
// distribution function.
type CDFPoint struct {
	Value float64
	P     float64
}

// CDF returns the empirical cumulative distribution of xs evaluated at
// `points` evenly spaced quantiles (plus the extremes). xs is not
// modified.
func CDF(xs []float64, points int) []CDFPoint {
	if len(xs) == 0 || points <= 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, points+1)
	for i := 0; i <= points; i++ {
		q := float64(i) / float64(points)
		idx := int(q * float64(len(s)-1))
		out = append(out, CDFPoint{Value: s[idx], P: float64(idx+1) / float64(len(s))})
	}
	return out
}

// CDFAt returns the empirical P(X <= v) for sorted data. Data must be
// ascending; use sort.Float64s first.
func CDFAt(sorted []float64, v float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, v)
	// Count elements <= v (SearchFloat64s finds first >= v).
	for i < len(sorted) && sorted[i] == v {
		i++
	}
	return float64(i) / float64(len(sorted))
}

// Lag1Autocorrelation computes the lag-1 autocorrelation coefficient of
// xs. The paper uses this to argue Solution C's compression errors are
// uncorrelated (coefficients within [-1E-4, 1E-4] on dense data).
func Lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (xs[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs by
// nearest-rank on a sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	return s[int(q*float64(len(s)-1)+0.5)]
}

// Histogram bins xs into `bins` equal-width buckets over [lo, hi] and
// returns the counts. Values outside the range clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// UniformityKS returns the Kolmogorov–Smirnov statistic of xs against the
// uniform distribution on [lo, hi]: the max deviation between the
// empirical CDF and the uniform CDF. Small values (≲ 1.36/sqrt(n) at 5%
// significance) mean "consistent with uniform" — the paper's observation
// for Solution C's normalized errors (Fig. 14).
func UniformityKS(xs []float64, lo, hi float64) float64 {
	n := len(xs)
	if n == 0 || hi <= lo {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		u := (x - lo) / (hi - lo)
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		e0 := float64(i) / float64(n)
		e1 := float64(i+1) / float64(n)
		d = math.Max(d, math.Max(math.Abs(e0-u), math.Abs(e1-u)))
	}
	return d
}

// FormatBytes renders a byte count using binary units, matching the
// paper's TB/PB/EB table style.
func FormatBytes(b float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB", "PB", "EB", "ZB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	if b == math.Trunc(b) {
		return fmt.Sprintf("%.0f %s", b, units[i])
	}
	return fmt.Sprintf("%.2f %s", b, units[i])
}
