package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); math.Abs(v-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("q0.5 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) not NaN")
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := CDF(xs, 20)
	if len(pts) != 21 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P || pts[i].Value < pts[i-1].Value {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("final P = %v", pts[len(pts)-1].P)
	}
}

func TestCDFAt(t *testing.T) {
	s := []float64{1, 2, 2, 3}
	sort.Float64s(s)
	if p := CDFAt(s, 2); p != 0.75 {
		t.Fatalf("CDFAt(2) = %v", p)
	}
	if p := CDFAt(s, 0); p != 0 {
		t.Fatalf("CDFAt(0) = %v", p)
	}
	if p := CDFAt(s, 5); p != 1 {
		t.Fatalf("CDFAt(5) = %v", p)
	}
}

func TestLag1AutocorrelationAlternating(t *testing.T) {
	// Perfectly anti-correlated series.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if r := Lag1Autocorrelation(xs); r > -0.9 {
		t.Fatalf("alternating autocorr = %v, want ≈ -1", r)
	}
}

func TestLag1AutocorrelationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if r := math.Abs(Lag1Autocorrelation(xs)); r > 0.02 {
		t.Fatalf("iid autocorr = %v, want ≈ 0", r)
	}
}

func TestLag1AutocorrelationRamp(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	if r := Lag1Autocorrelation(xs); r < 0.99 {
		t.Fatalf("ramp autocorr = %v, want ≈ 1", r)
	}
}

func TestLag1Degenerate(t *testing.T) {
	if r := Lag1Autocorrelation([]float64{1}); r != 0 {
		t.Fatalf("single = %v", r)
	}
	if r := Lag1Autocorrelation([]float64{3, 3, 3}); r != 0 {
		t.Fatalf("constant = %v", r)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 10}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("hist = %v", h)
	}
	if Histogram(xs, 1, 0, 2) != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestUniformityKS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = rng.Float64()
	}
	if d := UniformityKS(uni, 0, 1); d > 1.63/math.Sqrt(float64(n)) {
		t.Fatalf("uniform KS = %v, too large", d)
	}
	// A point mass is very non-uniform.
	mass := make([]float64, n)
	for i := range mass {
		mass[i] = 0.5
	}
	if d := UniformityKS(mass, 0, 1); d < 0.4 {
		t.Fatalf("point-mass KS = %v, too small", d)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:                  "512 B",
		1024:                 "1 KB",
		16 * 1024 * 1024:     "16 MB",
		1 << 40:              "1 TB",
		32 * math.Pow(2, 60): "32 EB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: CDFAt is a valid CDF — monotone, in [0,1].
func TestQuickCDFAt(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		pa, pb := CDFAt(s, math.Min(a, b)), CDFAt(s, math.Max(a, b))
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
