package quantum

import (
	"fmt"
	"math"
	"math/rand"
)

// --- Grover (paper §5.3: oracle of X and Toffoli gates) ---

// GroverQubits returns the total qubit count of a Grover circuit with an
// s-qubit search register: s search qubits plus s-3 ancillas for the
// Toffoli ladder. The paper's 61/59/47-qubit runs correspond to
// s = 32/31/25.
func GroverQubits(s int) int {
	if s < 3 {
		return s
	}
	return 2*s - 3
}

// GroverSearchQubits inverts GroverQubits for totals of the 2s-3 form.
func GroverSearchQubits(total int) (int, error) {
	if (total+3)%2 != 0 {
		return 0, fmt.Errorf("quantum: no search register gives %d total qubits (need 2s-3)", total)
	}
	s := (total + 3) / 2
	if s < 3 {
		return 0, fmt.Errorf("quantum: total %d too small for the ladder construction", total)
	}
	return s, nil
}

// Grover builds Grover's search over an s-qubit register (s ≥ 3) marking
// the basis state `marked`, running `iters` amplification iterations.
// The oracle is a phase flip on `marked` built from X gates and a
// Toffoli ladder over s-3 ancilla qubits plus one CCZ — the X+Toffoli
// oracle of the paper's benchmark. Ancillas occupy qubits s..2s-4.
func Grover(s int, marked uint64, iters int) *Circuit {
	if s < 3 {
		panic(fmt.Sprintf("quantum: Grover needs s ≥ 3, got %d", s))
	}
	if marked >= 1<<uint(s) {
		panic(fmt.Sprintf("quantum: marked state %d out of range for %d qubits", marked, s))
	}
	c := NewCircuit(GroverQubits(s))
	for q := 0; q < s; q++ {
		c.H(q)
	}
	for it := 0; it < iters; it++ {
		// Oracle: flip phase of |marked⟩.
		flipZeros(c, s, marked)
		ladderZ(c, s)
		flipZeros(c, s, marked)
		// Diffusion: 2|ψ₀⟩⟨ψ₀| - I.
		for q := 0; q < s; q++ {
			c.H(q)
		}
		for q := 0; q < s; q++ {
			c.X(q)
		}
		ladderZ(c, s)
		for q := 0; q < s; q++ {
			c.X(q)
		}
		for q := 0; q < s; q++ {
			c.H(q)
		}
	}
	return c
}

// flipZeros applies X to every search qubit whose bit in pattern is 0,
// mapping |pattern⟩ to |1...1⟩.
func flipZeros(c *Circuit, s int, pattern uint64) {
	for q := 0; q < s; q++ {
		if pattern>>uint(q)&1 == 0 {
			c.X(q)
		}
	}
}

// ladderZ applies a phase flip on |1...1⟩ of the s search qubits using a
// Toffoli ladder over ancillas s..2s-4 and a final CCZ, then uncomputes.
func ladderZ(c *Circuit, s int) {
	if s == 3 {
		c.CCZ(0, 1, 2)
		return
	}
	anc := func(i int) int { return s + i }
	// a0 = q0 AND q1; a_i = a_{i-1} AND q_{i+1}.
	c.Toffoli(0, 1, anc(0))
	for i := 1; i <= s-4; i++ {
		c.Toffoli(anc(i-1), i+1, anc(i))
	}
	c.CCZ(anc(s-4), s-2, s-1)
	for i := s - 4; i >= 1; i-- {
		c.Toffoli(anc(i-1), i+1, anc(i))
	}
	c.Toffoli(0, 1, anc(0))
}

// GroverOptimalIterations returns the amplification count that maximizes
// the success probability, ⌊π/4·√(2^s)⌋ (≥ 1).
func GroverOptimalIterations(s int) int {
	it := int(math.Floor(math.Pi / 4 * math.Sqrt(math.Exp2(float64(s)))))
	if it < 1 {
		it = 1
	}
	return it
}

// --- Google random circuit sampling (Boixo et al. 2018) ---

// Supremacy builds a rows×cols-grid random circuit with `cycles` clock
// cycles following the construction rules of the quantum-supremacy
// proposal the paper benchmarks (§5.3, depth 11 in Table 2):
//
//  1. Hadamard on every qubit.
//  2. Eight alternating CZ patterns tile the grid, one per cycle.
//  3. A qubit idle in this cycle's CZ pattern but active in the previous
//     one receives a single-qubit gate: T if it has had none yet,
//     otherwise a uniform choice of {X^1/2, Y^1/2, T} that never repeats
//     the qubit's previous single-qubit gate.
func Supremacy(rows, cols, cycles int, seed int64) *Circuit {
	n := rows * cols
	c := NewCircuit(n)
	rng := rand.New(rand.NewSource(seed))
	at := func(r, co int) int { return r*cols + co }

	for q := 0; q < n; q++ {
		c.H(q)
	}
	hadT := make([]bool, n)     // qubit already received its first T
	lastGate := make([]int, n)  // 0 none, 1 sx, 2 sy, 3 t
	inPrevCZ := make([]bool, n) // qubit took part in the previous cycle's CZ layer

	for cy := 0; cy < cycles; cy++ {
		inCZ := make([]bool, n)
		// CZ pattern for this cycle: alternate horizontal/vertical
		// neighbor pairings with shifting offsets (8-pattern tiling).
		pat := cy % 8
		horizontal := pat%2 == 0
		offset := (pat / 2) % 4
		if horizontal {
			for r := 0; r < rows; r++ {
				start := (r + offset) % 2
				for co := start; co+1 < cols; co += 2 {
					a, b := at(r, co), at(r, co+1)
					c.CZ(a, b)
					inCZ[a], inCZ[b] = true, true
				}
			}
		} else {
			for co := 0; co < cols; co++ {
				start := (co + offset) % 2
				for r := start; r+1 < rows; r += 2 {
					a, b := at(r, co), at(r+1, co)
					c.CZ(a, b)
					inCZ[a], inCZ[b] = true, true
				}
			}
		}
		// Single-qubit gates on qubits resting this cycle.
		for q := 0; q < n; q++ {
			if inCZ[q] || !inPrevCZ[q] {
				continue
			}
			if !hadT[q] {
				c.T(q)
				hadT[q] = true
				lastGate[q] = 3
				continue
			}
			for {
				pick := rng.Intn(3) + 1
				if pick == lastGate[q] {
					continue
				}
				switch pick {
				case 1:
					c.SqrtX(q)
				case 2:
					c.SqrtY(q)
				case 3:
					c.T(q)
				}
				lastGate[q] = pick
				break
			}
		}
		inPrevCZ = inCZ
	}
	return c
}

// --- QAOA MAXCUT on a random 4-regular graph (Farhi et al.; §5.3) ---

// Edge is an undirected graph edge.
type Edge struct{ U, V int }

// RandomRegularGraph returns a random d-regular simple graph on n
// vertices via the pairing model with restarts; n·d must be even and
// d < n.
func RandomRegularGraph(n, d int, seed int64) []Edge {
	if n*d%2 != 0 || d >= n || d < 1 {
		panic(fmt.Sprintf("quantum: no %d-regular graph on %d vertices", d, n))
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([]Edge, 0, n*d/2)
		used := map[[2]int]bool{}
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			if used[[2]int{u, v}] {
				ok = false
				break
			}
			used[[2]int{u, v}] = true
			edges = append(edges, Edge{u, v})
		}
		if ok {
			return edges
		}
		if attempt > 10000 {
			panic("quantum: failed to sample a regular graph")
		}
	}
}

// QAOA builds a p-round QAOA MAXCUT circuit on a random 4-regular graph
// over n qubits. Angles are drawn deterministically from seed (a real
// run would optimize them classically; the simulation cost is
// identical).
func QAOA(n, p int, seed int64) *Circuit {
	edges := RandomRegularGraph(n, 4, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for round := 0; round < p; round++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for _, e := range edges {
			// exp(-iγ Z_u Z_v) up to global phase.
			c.CNOT(e.U, e.V)
			c.RZ(e.V, 2*gamma)
			c.CNOT(e.U, e.V)
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*beta)
		}
	}
	return c
}

// --- Quantum Fourier transform (§5.3: the deep circuit) ---

// QFT builds the quantum Fourier transform on n qubits. Random X gates
// (from seed) prepare the input state, as in the paper's experiments;
// pass seed < 0 to skip preparation.
func QFT(n int, seed int64) *Circuit {
	c := NewCircuit(n)
	if seed >= 0 {
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < n; q++ {
			if rng.Intn(2) == 1 {
				c.X(q)
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			c.CPhase(j, i, math.Pi/math.Exp2(float64(i-j)))
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(i, n-1-i)
	}
	return c
}

// --- Utility workloads ---

// HadamardAll is the scaling workload of Figs. 15/16: one Hadamard per
// qubit.
func HadamardAll(n int) *Circuit {
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// RandomCircuit builds an unstructured random circuit of `gates` gates
// (the Fig. 5 workload): uniform mix of H/T/X/SqrtX/SqrtY and
// CZ/CNOT on random qubits.
func RandomCircuit(n, gates int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for len(c.Gates) < gates {
		q := rng.Intn(n)
		switch rng.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.T(q)
		case 2:
			c.X(q)
		case 3:
			c.SqrtX(q)
		case 4:
			c.SqrtY(q)
		case 5, 6:
			p := rng.Intn(n)
			if p == q {
				p = (p + 1) % n
			}
			if rng.Intn(2) == 0 {
				c.CZ(q, p)
			} else {
				c.CNOT(q, p)
			}
		}
	}
	return c
}

// GHZ prepares the n-qubit GHZ state (test and example workload).
func GHZ(n int) *Circuit {
	c := NewCircuit(n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CNOT(q-1, q)
	}
	return c
}

// Brickwork builds a 1D brickwork entangling circuit of the given
// depth: each layer applies seeded RY rotations to every qubit, then
// nearest-neighbor CNOTs on alternating pairs. Entanglement across any
// chain cut grows by one two-qubit gate every other layer, so the
// Schmidt rank needed for exact tensor-network simulation doubles
// roughly every two layers until it saturates at 2^(n/2) — the
// controllable dial the backend-crossover experiment sweeps.
func Brickwork(n, depth int, seed int64) *Circuit {
	c := NewCircuit(n)
	rng := rand.New(rand.NewSource(seed))
	for layer := 0; layer < depth; layer++ {
		for q := 0; q < n; q++ {
			c.RY(q, rng.Float64()*math.Pi)
		}
		for q := layer % 2; q+1 < n; q += 2 {
			c.CNOT(q, q+1)
		}
	}
	return c
}
