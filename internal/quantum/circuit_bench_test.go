package quantum

import "testing"

// BenchmarkCircuitBuild guards the builder hot path: appending gates
// must not allocate per-gate validation state (check used to build a
// map[int]bool for every append).
func BenchmarkCircuitBuild(b *testing.B) {
	const n = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewCircuit(n)
		for q := 0; q < n-1; q++ {
			c.H(q).CNOT(q, q+1)
		}
		for q := 0; q < n-2; q++ {
			c.Toffoli(q, q+1, q+2)
		}
		for q := 0; q < n; q++ {
			c.T(q).Measure(q)
		}
	}
}

func TestCheckRejectsDuplicatesAndRange(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	c := NewCircuit(4)
	mustPanic("duplicate", func() { c.Toffoli(1, 1, 2) })
	mustPanic("duplicate control/target", func() { c.CNOT(3, 3) })
	mustPanic("out of range", func() { c.H(4) })
	mustPanic("negative", func() { c.X(-1) })
	// Valid distinct operands still pass.
	c.Toffoli(0, 1, 2).CNOT(3, 0)
}
