package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is the dense reference state vector: the uncompressed
// Schrödinger substrate (the Intel-QS baseline of the paper) used to
// validate the compressed engine and to measure true fidelity at test
// scales.
type State struct {
	N    int
	Amps []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) *State {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("quantum: dense state of %d qubits unsupported", n))
	}
	amps := make([]complex128, 1<<uint(n))
	amps[0] = 1
	return &State{N: n, Amps: amps}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{N: s.N, Amps: make([]complex128, len(s.Amps))}
	copy(c.Amps, s.Amps)
	return c
}

// ApplyGate applies one unitary gate in place (paper Eq. 6/7).
// Measurement gates require ApplyCircuitRng.
func (s *State) ApplyGate(g Gate) {
	if g.Kind == KindMeasure {
		panic("quantum: ApplyGate cannot measure; use ApplyCircuitRng")
	}
	t := g.Target
	mask := uint64(1) << uint(t)
	var ctrlMask uint64
	for _, c := range g.Controls {
		ctrlMask |= 1 << uint(c)
	}
	u := g.U
	n := uint64(len(s.Amps))
	for i := uint64(0); i < n; i++ {
		if i&mask != 0 || i&ctrlMask != ctrlMask {
			continue
		}
		j := i | mask
		a0, a1 := s.Amps[i], s.Amps[j]
		s.Amps[i] = u[0][0]*a0 + u[0][1]*a1
		s.Amps[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

// ApplyCircuit applies every gate of c; it panics on measurement gates
// (use ApplyCircuitRng for circuits with intermediate measurement).
func (s *State) ApplyCircuit(c *Circuit) {
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
}

// ApplyCircuitRng applies every gate, resolving measurements with rng.
// It returns the measurement outcomes in order.
func (s *State) ApplyCircuitRng(c *Circuit, rng *rand.Rand) []int {
	var outcomes []int
	for _, g := range c.Gates {
		if g.Kind == KindMeasure {
			outcomes = append(outcomes, s.Measure(g.Target, rng))
			continue
		}
		s.ApplyGate(g)
	}
	return outcomes
}

// ProbabilityOne returns P(qubit q = 1).
func (s *State) ProbabilityOne(q int) float64 {
	mask := uint64(1) << uint(q)
	var p float64
	for i, a := range s.Amps {
		if uint64(i)&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Measure collapses qubit q, returning the outcome (0 or 1).
func (s *State) Measure(q int, rng *rand.Rand) int {
	p1 := s.ProbabilityOne(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.Collapse(q, outcome, p1)
	return outcome
}

// Collapse projects qubit q onto outcome and renormalizes; p1 is the
// pre-measured P(q=1).
func (s *State) Collapse(q, outcome int, p1 float64) {
	mask := uint64(1) << uint(q)
	keep := p1
	if outcome == 0 {
		keep = 1 - p1
	}
	if keep <= 0 {
		panic(fmt.Sprintf("quantum: collapsing qubit %d onto impossible outcome %d", q, outcome))
	}
	scale := complex(1/math.Sqrt(keep), 0)
	for i := range s.Amps {
		bit := 0
		if uint64(i)&mask != 0 {
			bit = 1
		}
		if bit == outcome {
			s.Amps[i] *= scale
		} else {
			s.Amps[i] = 0
		}
	}
}

// Norm returns Σ|aᵢ|² (1 for a valid state).
func (s *State) Norm() float64 {
	var n float64
	for _, a := range s.Amps {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}

// Probability returns |⟨i|ψ⟩|².
func (s *State) Probability(i uint64) float64 {
	a := s.Amps[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Fidelity returns |⟨a|b⟩| — the paper's Eq. 9 pure-state fidelity.
func Fidelity(a, b *State) float64 {
	if a.N != b.N {
		panic("quantum: fidelity of mismatched states")
	}
	var dot complex128
	for i := range a.Amps {
		dot += cmplx.Conj(a.Amps[i]) * b.Amps[i]
	}
	return cmplx.Abs(dot)
}

// FidelityVec is Fidelity over raw amplitude slices.
func FidelityVec(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("quantum: fidelity of mismatched vectors")
	}
	var dot complex128
	for i := range a {
		dot += cmplx.Conj(a[i]) * b[i]
	}
	return cmplx.Abs(dot)
}

// Sample draws `shots` measurement outcomes of the full register without
// collapsing the state.
func (s *State) Sample(rng *rand.Rand, shots int) []uint64 {
	// Cumulative distribution walk per shot (test scales only).
	out := make([]uint64, shots)
	for k := 0; k < shots; k++ {
		r := rng.Float64()
		var acc float64
		for i, a := range s.Amps {
			acc += real(a)*real(a) + imag(a)*imag(a)
			if r < acc {
				out[k] = uint64(i)
				break
			}
		}
	}
	return out
}
