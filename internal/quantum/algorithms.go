package quantum

import (
	"fmt"
	"math"
)

// Additional textbook algorithm builders. These extend the paper's
// benchmark set (§5.3) with the algorithm families its introduction
// motivates — phase estimation (the core of Shor's algorithm and
// chemistry workloads) and oracle problems — all expressible in the
// same gate set the simulator supports.

// PhaseEstimation builds quantum phase estimation of the single-qubit
// phase unitary U = diag(1, e^{2πiφ}) with t counting qubits.
// Qubit layout: counting register 0..t-1, eigenstate qubit t (prepared
// in |1⟩, the e^{2πiφ} eigenstate). Measuring the counting register
// yields round(φ·2^t) when φ has an exact t-bit expansion.
func PhaseEstimation(t int, phi float64) *Circuit {
	if t < 1 {
		panic(fmt.Sprintf("quantum: phase estimation needs ≥ 1 counting qubit, got %d", t))
	}
	c := NewCircuit(t + 1)
	c.X(t) // eigenstate |1⟩
	for q := 0; q < t; q++ {
		c.H(q)
	}
	// Controlled-U^(2^q): counting qubit q controls 2^q applications.
	for q := 0; q < t; q++ {
		theta := 2 * math.Pi * phi * math.Exp2(float64(q))
		c.CPhase(q, t, theta)
	}
	// Inverse QFT on the counting register (bit-reversed convention:
	// counting qubit q weighs 2^q).
	for i := 0; i < t/2; i++ {
		c.SWAP(i, t-1-i)
	}
	for i := 0; i < t; i++ {
		for j := 0; j < i; j++ {
			c.CPhase(j, i, -math.Pi/math.Exp2(float64(i-j)))
		}
		c.H(i)
	}
	return c
}

// BernsteinVazirani builds the Bernstein–Vazirani circuit recovering an
// n-bit secret string s with one oracle query. Qubits 0..n-1 are the
// input register; qubit n is the phase ancilla. After the circuit, the
// input register reads s deterministically.
func BernsteinVazirani(n int, secret uint64) *Circuit {
	if secret >= 1<<uint(n) {
		panic(fmt.Sprintf("quantum: secret %d out of range for %d qubits", secret, n))
	}
	c := NewCircuit(n + 1)
	c.X(n).H(n) // ancilla |−⟩
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Oracle: f(x) = s·x — a CNOT from each secret bit into the
	// ancilla.
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.CNOT(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// DeutschJozsa builds the Deutsch–Jozsa circuit on n input qubits.
// constant selects the constant-zero oracle; otherwise a balanced
// oracle (f(x) = x₀) is used. The input register reads |0...0⟩ iff the
// oracle is constant.
func DeutschJozsa(n int, constant bool) *Circuit {
	c := NewCircuit(n + 1)
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	if !constant {
		c.CNOT(0, n) // balanced: f(x) = x0
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}
