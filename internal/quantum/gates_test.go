package quantum

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestStandardGatesUnitary(t *testing.T) {
	gates := map[string]Matrix2{
		"I": MatI, "X": MatX, "Y": MatY, "Z": MatZ, "H": MatH,
		"S": MatS, "Sdg": MatSdg, "T": MatT, "Tdg": MatTdg,
		"SqrtX": MatSqrtX, "SqrtY": MatSqrtY,
	}
	for name, m := range gates {
		if !m.IsUnitary(1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
	for _, theta := range []float64{0, 0.1, math.Pi / 3, math.Pi, 5} {
		for name, m := range map[string]Matrix2{
			"RX": RX(theta), "RY": RY(theta), "RZ": RZ(theta), "Phase": Phase(theta),
		} {
			if !m.IsUnitary(1e-12) {
				t.Errorf("%s(%v) is not unitary", name, theta)
			}
		}
	}
}

func TestSqrtGatesSquareCorrectly(t *testing.T) {
	x2 := MatSqrtX.Mul(MatSqrtX)
	y2 := MatSqrtY.Mul(MatSqrtY)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(x2[i][j]-MatX[i][j]) > 1e-12 {
				t.Fatalf("SqrtX² ≠ X at %d,%d: %v", i, j, x2[i][j])
			}
			if cmplx.Abs(y2[i][j]-MatY[i][j]) > 1e-12 {
				t.Fatalf("SqrtY² ≠ Y at %d,%d: %v", i, j, y2[i][j])
			}
		}
	}
}

func TestTSquaredIsS(t *testing.T) {
	t2 := MatT.Mul(MatT)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(t2[i][j]-MatS[i][j]) > 1e-12 {
				t.Fatalf("T² ≠ S")
			}
		}
	}
}

func TestDaggerInverts(t *testing.T) {
	m := RX(1.234).Mul(RZ(0.7))
	p := m.Mul(m.Dagger())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > 1e-12 {
				t.Fatalf("M·M† ≠ I")
			}
		}
	}
}

func TestIsUnitaryRejectsNonUnitary(t *testing.T) {
	bad := Matrix2{{1, 1}, {0, 1}}
	if bad.IsUnitary(1e-9) {
		t.Fatal("shear matrix accepted as unitary")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Name: "h", Target: 3}
	if g.String() != "h(3)" {
		t.Fatalf("String = %q", g.String())
	}
	cx := Gate{Name: "cx", Target: 1, Controls: []int{0}}
	if cx.String() != "cx([0];1)" {
		t.Fatalf("String = %q", cx.String())
	}
	m := Gate{Kind: KindMeasure, Target: 2}
	if m.String() != "measure(2)" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestGateSignatureDistinguishes(t *testing.T) {
	a := Gate{Name: "h", Target: 0, U: MatH}.Signature()
	b := Gate{Name: "h", Target: 1, U: MatH}.Signature()
	c := Gate{Name: "x", Target: 0, U: MatX}.Signature()
	d := Gate{Name: "cx", Target: 0, Controls: []int{1}, U: MatX}.Signature()
	sigs := map[string]bool{a: true, b: true, c: true, d: true}
	if len(sigs) != 4 {
		t.Fatalf("signatures collide: %d distinct of 4", len(sigs))
	}
	if a != (Gate{Name: "h", Target: 0, U: MatH}).Signature() {
		t.Fatal("signature not deterministic")
	}
}
