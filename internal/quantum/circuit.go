package quantum

import "fmt"

// Circuit is an ordered gate list over N qubits. Builder methods append
// gates and return the circuit for chaining.
type Circuit struct {
	N     int
	Gates []Gate
}

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit {
	if n < 1 {
		panic(fmt.Sprintf("quantum: circuit needs ≥1 qubit, got %d", n))
	}
	return &Circuit{N: n}
}

// Depth returns the number of gates (the paper counts circuit depth in
// gates for the simulation cost model, §5.5).
func (c *Circuit) Depth() int { return len(c.Gates) }

// check validates gate operands. Gates touch at most a few qubits, so a
// quadratic scan over the argument slice beats allocating a set on every
// append — this sits on the circuit-builder hot path.
func (c *Circuit) check(qs ...int) {
	for i, q := range qs {
		if q < 0 || q >= c.N {
			panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, c.N))
		}
		for _, p := range qs[:i] {
			if p == q {
				panic(fmt.Sprintf("quantum: duplicate qubit %d in one gate", q))
			}
		}
	}
}

// Apply appends a named single-qubit unitary on target.
func (c *Circuit) Apply(name string, u Matrix2, target int) *Circuit {
	c.check(target)
	c.Gates = append(c.Gates, Gate{Name: name, Target: target, U: u})
	return c
}

// ApplyControlled appends a controlled unitary: u fires on target iff all
// controls are |1⟩.
func (c *Circuit) ApplyControlled(name string, u Matrix2, target int, controls ...int) *Circuit {
	qs := append([]int{target}, controls...)
	c.check(qs...)
	cs := append([]int(nil), controls...)
	c.Gates = append(c.Gates, Gate{Name: name, Target: target, Controls: cs, U: u})
	return c
}

// Standard gate builders.

func (c *Circuit) H(q int) *Circuit   { return c.Apply("h", MatH, q) }
func (c *Circuit) X(q int) *Circuit   { return c.Apply("x", MatX, q) }
func (c *Circuit) Y(q int) *Circuit   { return c.Apply("y", MatY, q) }
func (c *Circuit) Z(q int) *Circuit   { return c.Apply("z", MatZ, q) }
func (c *Circuit) S(q int) *Circuit   { return c.Apply("s", MatS, q) }
func (c *Circuit) Sdg(q int) *Circuit { return c.Apply("sdg", MatSdg, q) }
func (c *Circuit) T(q int) *Circuit   { return c.Apply("t", MatT, q) }
func (c *Circuit) Tdg(q int) *Circuit { return c.Apply("tdg", MatTdg, q) }

// SqrtX and SqrtY are the supremacy-circuit gates X^1/2 and Y^1/2.
func (c *Circuit) SqrtX(q int) *Circuit { return c.Apply("sx", MatSqrtX, q) }
func (c *Circuit) SqrtY(q int) *Circuit { return c.Apply("sy", MatSqrtY, q) }

// Rotations and phases.

func (c *Circuit) RX(q int, theta float64) *Circuit { return c.Apply("rx", RX(theta), q) }
func (c *Circuit) RY(q int, theta float64) *Circuit { return c.Apply("ry", RY(theta), q) }
func (c *Circuit) RZ(q int, theta float64) *Circuit { return c.Apply("rz", RZ(theta), q) }
func (c *Circuit) Phase(q int, theta float64) *Circuit {
	return c.Apply("p", Phase(theta), q)
}

// Two-qubit and three-qubit gates.

// CNOT appends a controlled-X with control ctl and target tgt.
func (c *Circuit) CNOT(ctl, tgt int) *Circuit { return c.ApplyControlled("cx", MatX, tgt, ctl) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(ctl, tgt int) *Circuit { return c.ApplyControlled("cz", MatZ, tgt, ctl) }

// CPhase appends a controlled phase gate (the QFT ladder element).
func (c *Circuit) CPhase(ctl, tgt int, theta float64) *Circuit {
	return c.ApplyControlled("cp", Phase(theta), tgt, ctl)
}

// Toffoli appends a doubly-controlled X (the oracle workhorse, §5.3).
func (c *Circuit) Toffoli(c1, c2, tgt int) *Circuit {
	return c.ApplyControlled("ccx", MatX, tgt, c1, c2)
}

// CCZ appends a doubly-controlled Z.
func (c *Circuit) CCZ(c1, c2, tgt int) *Circuit {
	return c.ApplyControlled("ccz", MatZ, tgt, c1, c2)
}

// SWAP exchanges two qubits via three CNOTs.
func (c *Circuit) SWAP(a, b int) *Circuit {
	return c.CNOT(a, b).CNOT(b, a).CNOT(a, b)
}

// MCZ appends a k-controlled Z as a native multi-controlled gate. The
// Grover builder instead decomposes into Toffolis (the paper's oracle
// gate set); this native form exists for tests and small utilities.
func (c *Circuit) MCZ(tgt int, controls ...int) *Circuit {
	return c.ApplyControlled("mcz", MatZ, tgt, controls...)
}

// Measure appends a computational-basis measurement of q.
func (c *Circuit) Measure(q int) *Circuit {
	c.check(q)
	c.Gates = append(c.Gates, Gate{Kind: KindMeasure, Name: "measure", Target: q})
	return c
}

// CountKind returns how many gates have the given name.
func (c *Circuit) CountKind(name string) int {
	n := 0
	for _, g := range c.Gates {
		if g.Name == name {
			n++
		}
	}
	return n
}

// MaxTarget returns the largest qubit index any gate touches.
func (c *Circuit) MaxTarget() int {
	m := 0
	for _, g := range c.Gates {
		if g.Target > m {
			m = g.Target
		}
		for _, q := range g.Controls {
			if q > m {
				m = q
			}
		}
	}
	return m
}
