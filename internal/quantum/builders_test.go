package quantum

import (
	"math"
	"testing"
)

func TestGroverQubitsArithmetic(t *testing.T) {
	// The paper's Grover sizes: 61, 59, 47 total qubits.
	cases := map[int]int{32: 61, 31: 59, 25: 47, 3: 3, 4: 5}
	for s, total := range cases {
		if got := GroverQubits(s); got != total {
			t.Errorf("GroverQubits(%d) = %d, want %d", s, got, total)
		}
	}
	for _, total := range []int{61, 59, 47} {
		s, err := GroverSearchQubits(total)
		if err != nil {
			t.Fatal(err)
		}
		if GroverQubits(s) != total {
			t.Errorf("roundtrip failed for %d", total)
		}
	}
	if _, err := GroverSearchQubits(48); err == nil {
		t.Error("even total accepted")
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	s := 5 // 7 qubits total
	marked := uint64(19)
	iters := GroverOptimalIterations(s)
	c := Grover(s, marked, iters)
	st := NewState(c.N)
	st.ApplyCircuit(c)
	// Probability of reading `marked` on the search register (ancillas
	// must all be |0⟩ after uncomputation).
	var pMarked, pAncillaDirty float64
	for i := range st.Amps {
		p := st.Probability(uint64(i))
		if uint64(i)>>uint(s) != 0 {
			pAncillaDirty += p
		} else if uint64(i) == marked {
			pMarked += p
		}
	}
	if pAncillaDirty > 1e-9 {
		t.Fatalf("ancillas not uncomputed: leaked %v", pAncillaDirty)
	}
	if pMarked < 0.9 {
		t.Fatalf("P(marked) = %v after %d iterations", pMarked, iters)
	}
}

func TestGroverOracleGateSet(t *testing.T) {
	// §5.3: the oracle consists of X and Toffoli gates (plus the
	// Hadamards and the CCZ phase kernel).
	c := Grover(8, 0xAB, 1)
	allowed := map[string]bool{"h": true, "x": true, "ccx": true, "ccz": true}
	for _, g := range c.Gates {
		if !allowed[g.Name] {
			t.Fatalf("unexpected gate %q in Grover circuit", g.Name)
		}
	}
	if c.CountKind("ccx") == 0 {
		t.Fatal("no Toffoli ladder present")
	}
}

func TestGroverGateCountMatchesPaperScale(t *testing.T) {
	// Paper Table 2: 61-qubit Grover (s=32) has 314 gates for one
	// iteration; our construction should land within ~15%.
	c := Grover(32, 0x5A5A5A5A, 1)
	if c.N != 61 {
		t.Fatalf("total qubits = %d", c.N)
	}
	if d := c.Depth(); d < 260 || d > 370 {
		t.Fatalf("gate count %d far from the paper's 314", d)
	}
}

func TestGroverValidation(t *testing.T) {
	mustPanic(t, func() { Grover(2, 0, 1) })
	mustPanic(t, func() { Grover(4, 16, 1) }) // marked out of range
}

func TestSupremacyStructure(t *testing.T) {
	rows, cols, cycles := 4, 4, 11
	c := Supremacy(rows, cols, cycles, 1)
	if c.N != 16 {
		t.Fatalf("N = %d", c.N)
	}
	if c.CountKind("h") != 16 {
		t.Fatalf("initial H count = %d", c.CountKind("h"))
	}
	if c.CountKind("cz") == 0 {
		t.Fatal("no CZ layers")
	}
	// Single-qubit supremacy gates restricted to {T, X^1/2, Y^1/2}.
	for _, g := range c.Gates {
		switch g.Name {
		case "h", "cz", "t", "sx", "sy":
		default:
			t.Fatalf("unexpected gate %q", g.Name)
		}
	}
	// First single-qubit gate on any qubit after the H layer is a T.
	firstSingle := map[int]string{}
	for _, g := range c.Gates[16:] {
		if g.Name != "cz" && g.Name != "h" {
			if _, ok := firstSingle[g.Target]; !ok {
				firstSingle[g.Target] = g.Name
			}
		}
	}
	for q, name := range firstSingle {
		if name != "t" {
			t.Fatalf("qubit %d: first single-qubit gate is %q, want t", q, name)
		}
	}
}

func TestSupremacyDeterministic(t *testing.T) {
	a := Supremacy(3, 3, 8, 5)
	b := Supremacy(3, 3, 8, 5)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("nondeterministic gate count")
	}
	for i := range a.Gates {
		if a.Gates[i].String() != b.Gates[i].String() {
			t.Fatalf("gate %d differs", i)
		}
	}
	c := Supremacy(3, 3, 8, 6)
	same := len(a.Gates) == len(c.Gates)
	if same {
		for i := range a.Gates {
			if a.Gates[i].String() != c.Gates[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestSupremacyNoImmediateRepeat(t *testing.T) {
	c := Supremacy(4, 5, 30, 2)
	last := map[int]string{}
	for _, g := range c.Gates {
		switch g.Name {
		case "sx", "sy", "t":
			if last[g.Target] == g.Name && g.Name != "t" || (g.Name == "t" && last[g.Target] == "t") {
				t.Fatalf("qubit %d received %q twice in a row", g.Target, g.Name)
			}
			last[g.Target] = g.Name
		}
	}
}

func TestRandomRegularGraph(t *testing.T) {
	n, d := 12, 4
	edges := RandomRegularGraph(n, d, 3)
	if len(edges) != n*d/2 {
		t.Fatalf("edge count = %d", len(edges))
	}
	deg := make([]int, n)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatal("self loop")
		}
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			t.Fatal("duplicate edge")
		}
		seen[[2]int{a, b}] = true
		deg[e.U]++
		deg[e.V]++
	}
	for v, dd := range deg {
		if dd != d {
			t.Fatalf("vertex %d degree %d", v, dd)
		}
	}
	mustPanic(t, func() { RandomRegularGraph(5, 3, 1) }) // odd n·d
}

func TestQAOAStructure(t *testing.T) {
	n, p := 8, 2
	c := QAOA(n, p, 4)
	if c.N != n {
		t.Fatalf("N = %d", c.N)
	}
	if c.CountKind("h") != n {
		t.Fatalf("H count = %d", c.CountKind("h"))
	}
	// Per round: 2 CNOTs + 1 RZ per edge (16 edges), n RX mixers.
	wantCNOT := 2 * 16 * p
	if got := c.CountKind("cx"); got != wantCNOT {
		t.Fatalf("CNOT count = %d, want %d", got, wantCNOT)
	}
	if got := c.CountKind("rx"); got != n*p {
		t.Fatalf("RX count = %d, want %d", got, n*p)
	}
	st := NewState(n)
	st.ApplyCircuit(c)
	if math.Abs(st.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", st.Norm())
	}
}

func TestQFTUniformMagnitudes(t *testing.T) {
	// QFT of a computational basis state has all 2^n amplitudes at
	// magnitude 2^{-n/2}.
	n := 5
	c := QFT(n, 99)
	st := NewState(n)
	st.ApplyCircuit(c)
	want := math.Exp2(-float64(n))
	for i := range st.Amps {
		if math.Abs(st.Probability(uint64(i))-want) > 1e-9 {
			t.Fatalf("P(%d) = %v, want %v", i, st.Probability(uint64(i)), want)
		}
	}
}

func TestQFTOnZeroStateIsUniformSuperposition(t *testing.T) {
	n := 4
	c := QFT(n, -1) // no state preparation
	st := NewState(n)
	st.ApplyCircuit(c)
	for i := range st.Amps {
		if math.Abs(real(st.Amps[i])-1/math.Sqrt(16)) > 1e-9 || math.Abs(imag(st.Amps[i])) > 1e-9 {
			t.Fatalf("QFT|0⟩ amp[%d] = %v", i, st.Amps[i])
		}
	}
}

func TestQFTInverseRecovers(t *testing.T) {
	// Applying QFT then its dagger (reverse gates, conjugated matrices)
	// returns the input state.
	n := 4
	fwd := QFT(n, 13)
	st := NewState(n)
	st.ApplyCircuit(fwd)
	// Build the inverse by reversing and daggering only the QFT part
	// (skip the X preparation prefix).
	prep := 0
	for _, g := range fwd.Gates {
		if g.Name == "x" && len(g.Controls) == 0 {
			prep++
		} else {
			break
		}
	}
	inv := NewCircuit(n)
	for i := len(fwd.Gates) - 1; i >= prep; i-- {
		g := fwd.Gates[i]
		inv.Gates = append(inv.Gates, Gate{Name: g.Name + "†", Target: g.Target, Controls: g.Controls, U: g.U.Dagger()})
	}
	st.ApplyCircuit(inv)
	// Expect the prepared basis state.
	prepState := NewState(n)
	for _, g := range fwd.Gates[:prep] {
		prepState.ApplyGate(g)
	}
	if f := Fidelity(st, prepState); math.Abs(f-1) > 1e-9 {
		t.Fatalf("QFT†QFT fidelity = %v", f)
	}
}

func TestHadamardAll(t *testing.T) {
	c := HadamardAll(6)
	if c.Depth() != 6 || c.CountKind("h") != 6 {
		t.Fatalf("depth %d", c.Depth())
	}
}

func TestRandomCircuitProperties(t *testing.T) {
	c := RandomCircuit(7, 150, 8)
	if c.Depth() < 150 {
		t.Fatalf("depth %d < requested", c.Depth())
	}
	if c.MaxTarget() >= 7 {
		t.Fatalf("qubit out of range")
	}
	st := NewState(7)
	st.ApplyCircuit(c)
	if math.Abs(st.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", st.Norm())
	}
}

func TestCircuitValidation(t *testing.T) {
	mustPanic(t, func() { NewCircuit(0) })
	mustPanic(t, func() { NewCircuit(2).H(5) })
	mustPanic(t, func() { NewCircuit(2).CNOT(0, 0) })
	mustPanic(t, func() { NewCircuit(3).Toffoli(1, 1, 2) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
