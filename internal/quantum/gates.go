// Package quantum provides the circuit substrate of the reproduction:
// the gate and circuit IR shared by the compressed simulator and the
// dense reference simulator, the standard gate matrices, and generators
// for every benchmark family the paper evaluates (Grover, Google random
// circuit sampling, QAOA, QFT, random circuits, Hadamard scaling).
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix2 is a 2×2 complex matrix in row-major order: the unitary U of
// the paper's Eq. 6/7.
type Matrix2 [2][2]complex128

// Standard single-qubit gate matrices.
var (
	MatI = Matrix2{{1, 0}, {0, 1}}
	MatX = Matrix2{{0, 1}, {1, 0}}
	MatY = Matrix2{{0, -1i}, {1i, 0}}
	MatZ = Matrix2{{1, 0}, {0, -1}}
	MatH = Matrix2{{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}}
	MatS   = Matrix2{{1, 0}, {0, 1i}}
	MatSdg = Matrix2{{1, 0}, {0, -1i}}
	MatT   = Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
	MatTdg = Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}
	// MatSqrtX and MatSqrtY are the X^1/2 and Y^1/2 gates of the
	// supremacy circuits (Boixo et al. 2018).
	MatSqrtX = Matrix2{{0.5 + 0.5i, 0.5 - 0.5i}, {0.5 - 0.5i, 0.5 + 0.5i}}
	MatSqrtY = Matrix2{{0.5 + 0.5i, -0.5 - 0.5i}, {0.5 + 0.5i, 0.5 + 0.5i}}
)

// RX returns the rotation exp(-iθX/2).
func RX(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return Matrix2{{c, s}, {s, c}}
}

// RY returns the rotation exp(-iθY/2).
func RY(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Matrix2{{c, -s}, {s, c}}
}

// RZ returns the rotation exp(-iθZ/2).
func RZ(theta float64) Matrix2 {
	return Matrix2{{cmplx.Exp(complex(0, -theta/2)), 0}, {0, cmplx.Exp(complex(0, theta/2))}}
}

// Phase returns the phase gate diag(1, e^{iθ}) used by the QFT ladder.
func Phase(theta float64) Matrix2 {
	return Matrix2{{1, 0}, {0, cmplx.Exp(complex(0, theta))}}
}

// Mul returns the matrix product a·b.
func (a Matrix2) Mul(b Matrix2) Matrix2 {
	var r Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

// Dagger returns the conjugate transpose.
func (a Matrix2) Dagger() Matrix2 {
	return Matrix2{
		{cmplx.Conj(a[0][0]), cmplx.Conj(a[1][0])},
		{cmplx.Conj(a[0][1]), cmplx.Conj(a[1][1])},
	}
}

// IsUnitary reports whether a†a = I within tol.
func (a Matrix2) IsUnitary(tol float64) bool {
	p := a.Dagger().Mul(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(p[i][j]-want) > tol {
				return false
			}
		}
	}
	return true
}

// GateKind distinguishes unitary applications from measurements.
type GateKind uint8

const (
	// KindUnitary applies a (possibly multi-controlled) single-qubit
	// unitary — the universal set of the paper's §2.1.
	KindUnitary GateKind = iota
	// KindMeasure measures the target qubit in the computational basis
	// and collapses the state (the intermediate-measurement capability
	// tensor-network simulators lack, paper §1).
	KindMeasure
)

// Gate is one operation of a circuit: a single-qubit unitary U applied to
// Target, conditioned on every qubit in Controls being |1⟩ (paper
// Eq. 7), or a measurement of Target.
//
// A gate with Par != nil is parametric: its angle is resolved from a
// parameter vector by Circuit.Bind, which materializes U. Until bound,
// U is meaningless (zero) and the executors reject the circuit.
type Gate struct {
	Kind     GateKind
	Name     string
	Target   int
	Controls []int
	U        Matrix2
	Par      *Param
}

// String renders the gate compactly, e.g. "ccx(3,7;9)".
func (g Gate) String() string {
	if g.Kind == KindMeasure {
		return fmt.Sprintf("measure(%d)", g.Target)
	}
	if len(g.Controls) == 0 {
		return fmt.Sprintf("%s(%d)", g.Name, g.Target)
	}
	return fmt.Sprintf("%s(%v;%d)", g.Name, g.Controls, g.Target)
}

// Signature returns a compact byte signature of the gate (name, target,
// controls, matrix bits) for the compressed block cache key (paper §3.4,
// the OP field of a cache line).
func (g Gate) Signature() string {
	b := make([]byte, 0, 64)
	b = append(b, byte(g.Kind))
	b = appendInt(b, g.Target)
	for _, c := range g.Controls {
		b = appendInt(b, c)
	}
	b = append(b, ';')
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			b = appendFloat(b, real(g.U[i][j]))
			b = appendFloat(b, imag(g.U[i][j]))
		}
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendFloat(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for s := 0; s < 64; s += 8 {
		b = append(b, byte(u>>uint(s)))
	}
	return b
}
