package quantum

import "encoding/binary"

// Sweep is one schedule unit of the sweep scheduler: a half-open gate
// range [Start, End) of a circuit. When Local is true, every gate in the
// range is block-local with respect to the offset-bit count the plan was
// built for — its target AND all of its controls address offset bits —
// so the whole run can be executed with a single decompress → apply-k-
// gates → recompress pass over each compressed block instead of one pass
// per gate. Non-local gates (cross-block or cross-rank targets, controls
// outside the offset segment, measurements) become singleton sweeps with
// Local false and execute gate-at-a-time.
type Sweep struct {
	Start, End int
	Local      bool
}

// Len returns the number of gates the sweep covers.
func (s Sweep) Len() int { return s.End - s.Start }

// BlockLocal reports whether g can join a block-local sweep for the
// given offset-bit count: a unitary whose target and every control all
// live in the offset segment, so applying it touches amplitude pairs
// inside a single block and acts identically on every block of every
// rank. Measurements are never block-local (they are collective), and
// neither is any gate whose target or a control selects block or rank
// index bits.
func BlockLocal(g Gate, offsetBits int) bool {
	if g.Kind != KindUnitary || g.Target >= offsetBits {
		return false
	}
	for _, c := range g.Controls {
		if c >= offsetBits {
			return false
		}
	}
	return true
}

// PlanSweeps partitions gates into maximal runs of consecutive
// block-local gates (Local sweeps, possibly of length 1) interleaved
// with singleton non-local sweeps. Concatenating the ranges in order
// reproduces the input stream exactly: the plan never reorders gates, so
// executing sweep-by-sweep is semantically identical to gate-at-a-time
// execution. The plan depends only on the gate list and offsetBits —
// both identical on every rank — so all ranks compute the same schedule
// and their collectives stay aligned.
func PlanSweeps(gates []Gate, offsetBits int) []Sweep {
	var plan []Sweep
	for i := 0; i < len(gates); {
		if !BlockLocal(gates[i], offsetBits) {
			plan = append(plan, Sweep{Start: i, End: i + 1})
			i++
			continue
		}
		j := i + 1
		for j < len(gates) && BlockLocal(gates[j], offsetBits) {
			j++
		}
		plan = append(plan, Sweep{Start: i, End: j, Local: true})
		i = j
	}
	return plan
}

// SingletonSweeps returns the degenerate plan with one single-gate,
// non-local sweep per gate — the schedule that reproduces gate-at-a-time
// execution exactly (used when the sweep scheduler is disabled or a
// noise channel must fire after every gate).
func SingletonSweeps(gates []Gate) []Sweep {
	plan := make([]Sweep, len(gates))
	for i := range gates {
		plan[i] = Sweep{Start: i, End: i + 1}
	}
	return plan
}

// SweepSignature returns an unambiguous byte signature of a gate run for
// the compressed block cache (§3.4): each gate's Signature,
// length-prefixed so distinct gate sequences can never concatenate to
// the same key bytes.
func SweepSignature(gates []Gate) string {
	b := make([]byte, 0, 72*len(gates))
	for _, g := range gates {
		sig := g.Signature()
		b = binary.AppendUvarint(b, uint64(len(sig)))
		b = append(b, sig...)
	}
	return string(b)
}
