package quantum

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements a small textual circuit format ("qc" format) so
// circuits can be checked in, diffed, and fed to cmd/qcsim -file. It is
// a deliberately tiny QASM-like dialect:
//
//	# comment
//	qubits 5
//	h 0
//	cx 0 1
//	rz 2 1.5707963
//	cp 0 4 0.785398
//	ccx 0 1 2
//	measure 3
//
// Angles are radians. Serialize writes this format; Parse reads it.

// Serialize writes c in the qc text format.
func Serialize(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "qubits %d\n", c.N)
	for _, g := range c.Gates {
		if err := serializeGate(bw, g); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func serializeGate(w io.Writer, g Gate) error {
	if g.Kind == KindMeasure {
		_, err := fmt.Fprintf(w, "measure %d\n", g.Target)
		return err
	}
	switch g.Name {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sy":
		_, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Target)
		return err
	case "rx", "ry", "rz", "p":
		theta, err := angleOf(g)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s %d %.17g\n", g.Name, g.Target, theta)
		return err
	case "cx", "cz":
		_, err := fmt.Fprintf(w, "%s %d %d\n", g.Name, g.Controls[0], g.Target)
		return err
	case "cp":
		theta, err := angleOf(g)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "cp %d %d %.17g\n", g.Controls[0], g.Target, theta)
		return err
	case "ccx", "ccz":
		_, err := fmt.Fprintf(w, "%s %d %d %d\n", g.Name, g.Controls[0], g.Controls[1], g.Target)
		return err
	default:
		return fmt.Errorf("quantum: gate %q has no textual form", g.Name)
	}
}

// angleOf recovers the rotation angle from a gate matrix for the
// serializable rotation gates.
func angleOf(g Gate) (float64, error) {
	switch g.Name {
	case "rx", "ry", "rz", "p", "cp":
		// For rz: U[1][1] = e^{iθ/2}; for p/cp: U[1][1] = e^{iθ};
		// for rx/ry derive from U[0][0] = cos(θ/2).
		switch g.Name {
		case "p", "cp":
			return phaseAngle(g.U[1][1]), nil
		case "rz":
			return 2 * phaseAngle(g.U[1][1]), nil
		default:
			c := real(g.U[0][0])
			s := imagOrReal(g.Name, g.U)
			return 2 * math.Atan2(s, c), nil
		}
	}
	return 0, fmt.Errorf("quantum: gate %q has no angle", g.Name)
}

func phaseAngle(v complex128) float64 {
	return math.Atan2(imag(v), real(v))
}

func imagOrReal(name string, u Matrix2) float64 {
	if name == "rx" {
		return -imag(u[0][1]) // u01 = -i sin(θ/2)
	}
	return real(u[1][0]) // ry: u10 = sin(θ/2)
}

// ErrParse is the sentinel every circuit-text failure wraps, so
// callers can branch with errors.Is without string matching.
var ErrParse = errors.New("quantum: invalid circuit text")

// ParseError is the typed failure Parse returns: the 1-based line the
// parser rejected (0 for whole-file problems like a missing qubits
// directive) and what was wrong with it. It wraps ErrParse.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Line == 0 {
		return fmt.Sprintf("quantum: parse: %s", e.Msg)
	}
	return fmt.Sprintf("quantum: parse line %d: %s", e.Line, e.Msg)
}

// Unwrap ties the typed error to the sentinel.
func (e *ParseError) Unwrap() error { return ErrParse }

func parseErrf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a circuit in the qc text format. Every failure — bad
// directive, unknown gate, malformed operand, oversized line — is a
// *ParseError wrapping ErrParse; Parse never panics, whatever the
// input (the fuzz target FuzzParseCircuit holds it to that).
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		if op == "qubits" {
			if c != nil {
				return nil, parseErrf(lineNo, "duplicate qubits directive")
			}
			if len(fields) < 2 {
				return nil, parseErrf(lineNo, "qubits directive needs a count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, parseErrf(lineNo, "bad qubit count %q", fields[1])
			}
			c = NewCircuit(n)
			continue
		}
		if c == nil {
			return nil, parseErrf(lineNo, "%q before qubits directive", op)
		}
		if err := parseGate(c, op, fields[1:]); err != nil {
			return nil, parseErrf(lineNo, "%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// An oversized line is a property of the circuit text, so
			// it is a parse error like any other.
			return nil, parseErrf(lineNo+1, "line exceeds the 1 MB limit")
		}
		// Real reader I/O failures keep their error chain untouched so
		// callers can still branch on io/os sentinels.
		return nil, err
	}
	if c == nil {
		return nil, parseErrf(0, "empty circuit file (missing qubits directive)")
	}
	return c, nil
}

func parseGate(c *Circuit, op string, args []string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	ints := func(n int) ([]int, error) {
		if len(args) < n {
			return nil, fmt.Errorf("%s needs %d qubit args, got %d", op, n, len(args))
		}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			v, err := strconv.Atoi(args[i])
			if err != nil {
				return nil, fmt.Errorf("%s: bad qubit %q", op, args[i])
			}
			out[i] = v
		}
		return out, nil
	}
	angle := func(pos int) (float64, error) {
		if len(args) <= pos {
			return 0, fmt.Errorf("%s needs an angle", op)
		}
		v, err := strconv.ParseFloat(args[pos], 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad angle %q", op, args[pos])
		}
		return v, nil
	}
	switch op {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sy", "measure":
		qs, err := ints(1)
		if err != nil {
			return err
		}
		switch op {
		case "h":
			c.H(qs[0])
		case "x":
			c.X(qs[0])
		case "y":
			c.Y(qs[0])
		case "z":
			c.Z(qs[0])
		case "s":
			c.S(qs[0])
		case "sdg":
			c.Sdg(qs[0])
		case "t":
			c.T(qs[0])
		case "tdg":
			c.Tdg(qs[0])
		case "sx":
			c.SqrtX(qs[0])
		case "sy":
			c.SqrtY(qs[0])
		case "measure":
			c.Measure(qs[0])
		}
	case "rx", "ry", "rz", "p":
		qs, err := ints(1)
		if err != nil {
			return err
		}
		theta, err := angle(1)
		if err != nil {
			return err
		}
		switch op {
		case "rx":
			c.RX(qs[0], theta)
		case "ry":
			c.RY(qs[0], theta)
		case "rz":
			c.RZ(qs[0], theta)
		case "p":
			c.Phase(qs[0], theta)
		}
	case "cx", "cz":
		qs, err := ints(2)
		if err != nil {
			return err
		}
		if op == "cx" {
			c.CNOT(qs[0], qs[1])
		} else {
			c.CZ(qs[0], qs[1])
		}
	case "cp":
		qs, err := ints(2)
		if err != nil {
			return err
		}
		theta, err := angle(2)
		if err != nil {
			return err
		}
		c.CPhase(qs[0], qs[1], theta)
	case "swap":
		qs, err := ints(2)
		if err != nil {
			return err
		}
		c.SWAP(qs[0], qs[1])
	case "ccx", "ccz":
		qs, err := ints(3)
		if err != nil {
			return err
		}
		if op == "ccx" {
			c.Toffoli(qs[0], qs[1], qs[2])
		} else {
			c.CCZ(qs[0], qs[1], qs[2])
		}
	default:
		return fmt.Errorf("unknown gate %q", op)
	}
	return nil
}
