package quantum

// FuseSingleQubitGates returns an equivalent circuit in which runs of
// consecutive single-qubit gates on the same target — with no
// intervening gate touching that qubit — are multiplied into one fused
// unitary.
//
// For the compressed engine this is a large win: every gate pays a full
// decompress/recompress sweep over the state (§3.1), so folding k
// adjacent single-qubit gates into one cuts those sweeps k-fold. The
// fidelity ledger also improves, since Eq. 11 charges one (1-δ) factor
// per executed gate.
func FuseSingleQubitGates(c *Circuit) *Circuit {
	out := NewCircuit(c.N)
	pending := make(map[int]Matrix2)
	order := make([]int, 0, c.N) // flush order = first-touch order

	flush := func(q int) {
		u, ok := pending[q]
		if !ok {
			return
		}
		delete(pending, q)
		for i, oq := range order {
			if oq == q {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		out.Gates = append(out.Gates, Gate{Name: "fused", Target: q, U: u})
	}
	flushAll := func() {
		for len(order) > 0 {
			flush(order[0])
		}
	}

	for _, g := range c.Gates {
		if g.Kind == KindUnitary && len(g.Controls) == 0 && g.Par == nil {
			if u, ok := pending[g.Target]; ok {
				pending[g.Target] = g.U.Mul(u)
			} else {
				pending[g.Target] = g.U
				order = append(order, g.Target)
			}
			continue
		}
		// Controlled gates, measurements, and unbound parametric
		// gates (whose U is not yet known — and whose position must
		// survive so every binding of the shape fuses identically)
		// act as barriers on every qubit they touch. (Pending gates
		// on other qubits commute with this gate and may stay
		// pending.)
		flush(g.Target)
		for _, ctl := range g.Controls {
			flush(ctl)
		}
		out.Gates = append(out.Gates, g)
	}
	flushAll()
	return out
}
