package quantum

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

func TestSerializeParseRoundTrip(t *testing.T) {
	circuits := map[string]*Circuit{
		"ghz":    GHZ(5),
		"qft":    QFT(5, 3),
		"qaoa":   QAOA(6, 2, 4),
		"grover": Grover(4, 9, 1),
		"mixed": NewCircuit(4).H(0).SqrtX(1).SqrtY(2).S(3).Sdg(0).T(1).Tdg(2).
			RX(0, 0.7).RY(1, -1.3).RZ(2, 2.9).Phase(3, 0.1).
			CNOT(0, 1).CZ(1, 2).CPhase(2, 3, 0.25).Toffoli(0, 1, 2).CCZ(1, 2, 3).
			Measure(0),
	}
	for name, c := range circuits {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Serialize(&buf, c); err != nil {
				t.Fatal(err)
			}
			got, err := Parse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.N != c.N || len(got.Gates) != len(c.Gates) {
				t.Fatalf("shape mismatch: %d/%d qubits, %d/%d gates", got.N, c.N, len(got.Gates), len(c.Gates))
			}
			// Semantic equivalence: both circuits produce the same
			// state (measure gates are compared structurally only).
			if c.CountKind("measure") == 0 {
				a, b := NewState(c.N), NewState(c.N)
				a.ApplyCircuit(c)
				b.ApplyCircuit(got)
				if f := Fidelity(a, b); math.Abs(f-1) > 1e-9 {
					t.Fatalf("parsed circuit fidelity %v", f)
				}
			} else {
				for i := range c.Gates {
					if c.Gates[i].Kind != got.Gates[i].Kind || c.Gates[i].Target != got.Gates[i].Target {
						t.Fatalf("gate %d mismatch", i)
					}
					for r := 0; r < 2; r++ {
						for col := 0; col < 2; col++ {
							if cmplx.Abs(c.Gates[i].U[r][col]-got.Gates[i].U[r][col]) > 1e-12 {
								t.Fatalf("gate %d matrix mismatch", i)
							}
						}
					}
				}
			}
		})
	}
}

func TestParseBasics(t *testing.T) {
	src := `
# a comment
qubits 3

h 0
cx 0 1
ccx 0 1 2
rz 2 3.14159
measure 2
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 || len(c.Gates) != 5 {
		t.Fatalf("parsed %d qubits, %d gates", c.N, len(c.Gates))
	}
	if c.Gates[4].Kind != KindMeasure {
		t.Fatal("measure not parsed")
	}
}

func TestParseSwapExpands(t *testing.T) {
	c, err := Parse(strings.NewReader("qubits 2\nswap 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind("cx") != 3 {
		t.Fatalf("swap expanded to %d CNOTs", c.CountKind("cx"))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                         // empty
		"h 0\n",                    // gate before qubits
		"qubits 0\n",               // bad count
		"qubits 2\nqubits 2\n",     // duplicate directive
		"qubits 2\nfoo 0\n",        // unknown gate
		"qubits 2\nh 5\n",          // out of range
		"qubits 2\ncx 0\n",         // missing arg
		"qubits 2\nrz 0 notanum\n", // bad angle
		"qubits 2\ncx 0 0\n",       // duplicate qubit
		"qubits 2\nrx 1\n",         // missing angle
		"qubits 3\nccx 0 1\n",      // missing arg
		"qubits two\n",             // bad count format
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d (%q) parsed without error", i, src)
		}
	}
}

func TestAngleRecovery(t *testing.T) {
	for _, theta := range []float64{0.1, -0.7, 1.5707963, 3.0, -2.5} {
		for _, mk := range []struct {
			name string
			g    Gate
		}{
			{"rx", Gate{Name: "rx", U: RX(theta)}},
			{"ry", Gate{Name: "ry", U: RY(theta)}},
			{"rz", Gate{Name: "rz", U: RZ(theta)}},
			{"p", Gate{Name: "p", U: Phase(theta)}},
		} {
			got, err := angleOf(mk.g)
			if err != nil {
				t.Fatalf("%s(%v): %v", mk.name, theta, err)
			}
			if math.Abs(got-theta) > 1e-12 {
				t.Fatalf("%s(%v): recovered %v", mk.name, theta, got)
			}
		}
	}
}

func TestSerializeRejectsUnknownGate(t *testing.T) {
	c := NewCircuit(2)
	c.Apply("weird", MatH, 0)
	var buf bytes.Buffer
	if err := Serialize(&buf, c); err == nil {
		t.Fatal("unknown gate serialized")
	}
}
