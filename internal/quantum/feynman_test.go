package quantum

import (
	"math/cmplx"
	"testing"
)

func TestFeynmanMatchesReferenceShallow(t *testing.T) {
	// Any circuit with few branching gates: Feynman amplitudes must
	// match the dense reference exactly.
	circuits := map[string]*Circuit{
		"bell":     NewCircuit(2).H(0).CNOT(0, 1),
		"ghz":      GHZ(4),
		"clifford": NewCircuit(3).H(0).S(1).CNOT(0, 1).CZ(1, 2).X(2).H(2),
		"phases":   NewCircuit(3).H(0).H(1).CPhase(0, 1, 0.7).RZ(2, 1.1).Toffoli(0, 1, 2),
	}
	for name, c := range circuits {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			ref := NewState(c.N)
			ref.ApplyCircuit(c)
			for x := uint64(0); x < uint64(len(ref.Amps)); x++ {
				got, err := FeynmanAmplitude(c, 0, x, FeynmanOptions{MemoLimit: 1 << 20})
				if err != nil {
					t.Fatal(err)
				}
				if cmplx.Abs(got-ref.Amps[x]) > 1e-10 {
					t.Fatalf("⟨%d|C|0⟩ = %v, want %v", x, got, ref.Amps[x])
				}
			}
		})
	}
}

func TestFeynmanNonZeroInput(t *testing.T) {
	c := NewCircuit(3).H(1).CNOT(1, 2)
	in := uint64(0b001)
	ref := NewState(3)
	ref.Amps[0] = 0
	ref.Amps[in] = 1
	ref.ApplyCircuit(c)
	for x := uint64(0); x < 8; x++ {
		got, err := FeynmanAmplitude(c, in, x, FeynmanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(got-ref.Amps[x]) > 1e-12 {
			t.Fatalf("⟨%d|C|%d⟩ = %v, want %v", x, in, got, ref.Amps[x])
		}
	}
}

func TestFeynmanMemoEqualsNoMemo(t *testing.T) {
	c := RandomCircuit(4, 25, 77)
	for x := uint64(0); x < 16; x += 3 {
		a, err := FeynmanAmplitude(c, 0, x, FeynmanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := FeynmanAmplitude(c, 0, x, FeynmanOptions{MemoLimit: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(a-b) > 1e-10 {
			t.Fatalf("memoization changed amplitude: %v vs %v", a, b)
		}
	}
}

func TestBranchingGates(t *testing.T) {
	c := NewCircuit(2).H(0).X(1).CNOT(0, 1).T(0).SqrtX(1)
	// H and SqrtX branch; X, CNOT, T do not.
	if got := BranchingGates(c); got != 2 {
		t.Fatalf("BranchingGates = %d, want 2", got)
	}
}

func TestFeynmanBranchingLimit(t *testing.T) {
	c := NewCircuit(4)
	for i := 0; i < 40; i++ {
		c.H(i % 4)
	}
	_, err := FeynmanAmplitude(c, 0, 0, FeynmanOptions{MaxBranchingGates: 20})
	if err == nil {
		t.Fatal("40 branching gates accepted under a 20-gate limit")
	}
}

func TestFeynmanRejectsMeasurement(t *testing.T) {
	c := NewCircuit(1).H(0)
	c.Measure(0)
	if _, err := FeynmanAmplitude(c, 0, 0, FeynmanOptions{}); err == nil {
		t.Fatal("measurement accepted")
	}
}

func TestFeynmanPathBlowUp(t *testing.T) {
	// The paper's point: path count doubles per branching gate. Without
	// memoization a ladder of d Hadamards on ONE qubit evaluates
	// exponentially many leaves.
	base := NewCircuit(1)
	var prev uint64
	for d := 4; d <= 10; d += 2 {
		for len(base.Gates) < d {
			base.H(0)
		}
		f := &feynman{c: base, in: 0}
		f.amp(len(base.Gates), 0)
		if prev > 0 && f.Paths < prev*3 {
			t.Fatalf("depth %d: %d paths, expected ≈4x growth from %d", d, f.Paths, prev)
		}
		prev = f.Paths
	}
}

func TestParallelDepth(t *testing.T) {
	c := NewCircuit(4).H(0).H(1).H(2).H(3) // one layer
	if d := c.ParallelDepth(); d != 1 {
		t.Fatalf("H layer depth = %d", d)
	}
	c2 := GHZ(5) // CNOT chain serializes: H + 4 CNOTs = depth 5
	if d := c2.ParallelDepth(); d != 5 {
		t.Fatalf("GHZ depth = %d", d)
	}
	c3 := NewCircuit(2)
	if d := c3.ParallelDepth(); d != 0 {
		t.Fatalf("empty depth = %d", d)
	}
}

func TestTwoQubitGateCountAndHistogram(t *testing.T) {
	c := NewCircuit(3).H(0).CNOT(0, 1).CZ(1, 2).Toffoli(0, 1, 2).T(2)
	if n := c.TwoQubitGateCount(); n != 3 {
		t.Fatalf("two-qubit count = %d", n)
	}
	h := c.GateHistogram()
	if h["h"] != 1 || h["cx"] != 1 || h["ccx"] != 1 || h["t"] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func BenchmarkFeynmanVsDepth(b *testing.B) {
	// Demonstrates the exponential time growth in branching depth the
	// paper cites when dismissing path methods for deep circuits.
	for _, branching := range []int{8, 12, 16} {
		branching := branching
		b.Run(fmtInt("branching=", branching), func(b *testing.B) {
			c := NewCircuit(4)
			for i := 0; i < branching; i++ {
				c.H(i % 4)
				c.CNOT(i%4, (i+1)%4)
			}
			for i := 0; i < b.N; i++ {
				if _, err := FeynmanAmplitude(c, 0, 5, FeynmanOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtInt(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + digits
}
