package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Amps[0] != 1 {
		t.Fatal("amp[0] != 1")
	}
	for i := 1; i < len(s.Amps); i++ {
		if s.Amps[i] != 0 {
			t.Fatalf("amp[%d] != 0", i)
		}
	}
}

func TestHadamardTwiceIsIdentity(t *testing.T) {
	s := NewState(4)
	c := NewCircuit(4)
	for q := 0; q < 4; q++ {
		c.H(q).H(q)
	}
	s.ApplyCircuit(c)
	if cmplx.Abs(s.Amps[0]-1) > 1e-12 {
		t.Fatalf("amp[0] = %v", s.Amps[0])
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyCircuit(NewCircuit(2).H(0).CNOT(0, 1))
	want := 1 / math.Sqrt2
	if cmplx.Abs(s.Amps[0]-complex(want, 0)) > 1e-12 ||
		cmplx.Abs(s.Amps[3]-complex(want, 0)) > 1e-12 ||
		cmplx.Abs(s.Amps[1]) > 1e-12 || cmplx.Abs(s.Amps[2]) > 1e-12 {
		t.Fatalf("bell amps = %v", s.Amps)
	}
}

func TestGHZState(t *testing.T) {
	n := 5
	s := NewState(n)
	s.ApplyCircuit(GHZ(n))
	want := 1 / math.Sqrt2
	last := uint64(1<<uint(n)) - 1
	if math.Abs(math.Sqrt(s.Probability(0))-want) > 1e-12 ||
		math.Abs(math.Sqrt(s.Probability(last))-want) > 1e-12 {
		t.Fatalf("GHZ probabilities wrong: %v %v", s.Probability(0), s.Probability(last))
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestControlledGateRespectsControl(t *testing.T) {
	// CNOT on |00⟩ does nothing; on |10⟩ flips target.
	s := NewState(2)
	s.ApplyGate(Gate{Name: "cx", Target: 1, Controls: []int{0}, U: MatX})
	if cmplx.Abs(s.Amps[0]-1) > 1e-12 {
		t.Fatal("CNOT fired with control |0⟩")
	}
	s2 := NewState(2)
	s2.ApplyCircuit(NewCircuit(2).X(0).CNOT(0, 1))
	if cmplx.Abs(s2.Amps[3]-1) > 1e-12 {
		t.Fatalf("CNOT did not fire: %v", s2.Amps)
	}
}

func TestToffoliTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s := NewState(3)
		c := NewCircuit(3)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				c.X(q)
			}
		}
		c.Toffoli(0, 1, 2)
		s.ApplyCircuit(c)
		want := in
		if in&3 == 3 {
			want ^= 4
		}
		if s.Probability(want) < 1-1e-12 {
			t.Fatalf("Toffoli(%03b): P(%03b) = %v", in, want, s.Probability(want))
		}
	}
}

func TestNormPreservedByRandomCircuit(t *testing.T) {
	s := NewState(6)
	s.ApplyCircuit(RandomCircuit(6, 200, 42))
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm drifted to %v", s.Norm())
	}
}

func TestQuickUnitariesPreserveNorm(t *testing.T) {
	f := func(thetas [3]float64, targets [3]uint8) bool {
		s := NewState(4)
		s.ApplyCircuit(RandomCircuit(4, 20, 7))
		c := NewCircuit(4)
		c.RX(int(targets[0])%4, thetas[0])
		c.RY(int(targets[1])%4, thetas[1])
		c.RZ(int(targets[2])%4, thetas[2])
		s.ApplyCircuit(c)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilityOne(t *testing.T) {
	s := NewState(2)
	s.ApplyCircuit(NewCircuit(2).X(0))
	if p := s.ProbabilityOne(0); math.Abs(p-1) > 1e-12 {
		t.Fatalf("P(q0=1) = %v", p)
	}
	if p := s.ProbabilityOne(1); p > 1e-12 {
		t.Fatalf("P(q1=1) = %v", p)
	}
	s2 := NewState(1)
	s2.ApplyCircuit(NewCircuit(1).H(0))
	if p := s2.ProbabilityOne(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P = %v", p)
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		s := NewState(3)
		s.ApplyCircuit(GHZ(3))
		out := s.Measure(0, rng)
		// GHZ collapse: all qubits agree afterwards.
		for q := 1; q < 3; q++ {
			p := s.ProbabilityOne(q)
			if out == 1 && math.Abs(p-1) > 1e-9 || out == 0 && p > 1e-9 {
				t.Fatalf("trial %d: qubit %d disagrees with outcome %d (p=%v)", trial, q, out, p)
			}
		}
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Fatalf("norm after collapse = %v", s.Norm())
		}
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		s.ApplyCircuit(NewCircuit(1).H(0))
		ones += s.Measure(0, rng)
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("H|0⟩ measured 1 with frequency %v", frac)
	}
}

func TestApplyCircuitRngIntermediateMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCircuit(2).H(0).Measure(0).CNOT(0, 1)
	s := NewState(2)
	outs := s.ApplyCircuitRng(c, rng)
	if len(outs) != 1 {
		t.Fatalf("outcomes = %v", outs)
	}
	// After measuring q0 and CNOT, both qubits equal the outcome.
	want := uint64(0)
	if outs[0] == 1 {
		want = 3
	}
	if s.Probability(want) < 1-1e-9 {
		t.Fatalf("state inconsistent with outcome: %v", s.Amps)
	}
}

func TestFidelity(t *testing.T) {
	a := NewState(3)
	b := NewState(3)
	if f := Fidelity(a, b); math.Abs(f-1) > 1e-12 {
		t.Fatalf("identical fidelity = %v", f)
	}
	b.ApplyCircuit(NewCircuit(3).X(0))
	if f := Fidelity(a, b); f > 1e-12 {
		t.Fatalf("orthogonal fidelity = %v", f)
	}
	// Global phase does not change fidelity.
	c := NewState(3)
	c.ApplyCircuit(NewCircuit(3).Z(0)) // no-op on |000⟩ amplitude sign? Z|0⟩=|0⟩
	c.Amps[0] *= cmplx.Exp(1i * 0.7)
	if f := Fidelity(a, c); math.Abs(f-1) > 1e-12 {
		t.Fatalf("global-phase fidelity = %v", f)
	}
}

func TestSampleDistribution(t *testing.T) {
	s := NewState(2)
	s.ApplyCircuit(NewCircuit(2).H(0).CNOT(0, 1))
	rng := rand.New(rand.NewSource(12))
	counts := map[uint64]int{}
	for _, v := range s.Sample(rng, 4000) {
		counts[v]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("bell sampled odd states: %v", counts)
	}
	if math.Abs(float64(counts[0])/4000-0.5) > 0.05 {
		t.Fatalf("bell distribution skewed: %v", counts)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewState(2)
	c := s.Clone()
	s.ApplyCircuit(NewCircuit(2).X(0))
	if c.Amps[0] != 1 {
		t.Fatal("clone mutated with original")
	}
}

func TestCollapseImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := NewState(1) // |0⟩
	s.Collapse(0, 1, 0)
}
