package quantum

import (
	"encoding/binary"
	"fmt"
)

// Parameterized circuits: a circuit may carry symbolic rotation angles
// (Param payloads on gates) that are resolved to concrete unitaries by
// Bind. All bindings of one parametric circuit share a single shape —
// the same gate list up to matrix values — which is what lets the
// batched executor plan sweeps once per shape and run K parameter
// settings in lockstep.

// Param is a symbolic gate angle: θ = Scale·values[Index] + Shift,
// where values is the vector passed to Bind. The affine form covers
// the common variational idioms (QAOA's 2γ edge angles, parameter-shift
// offsets) without a full expression tree.
type Param struct {
	Index int
	Scale float64
	Shift float64
}

// P returns the parameter reading values[i] directly (scale 1, shift 0).
func P(i int) Param {
	if i < 0 {
		panic(fmt.Sprintf("quantum: negative parameter index %d", i))
	}
	return Param{Index: i, Scale: 1}
}

// Times returns the parameter with its scale multiplied by s.
func (p Param) Times(s float64) Param { p.Scale *= s; return p }

// Plus returns the parameter with d added to its shift.
func (p Param) Plus(d float64) Param { p.Shift += d; return p }

// Eval resolves the parameter against a binding vector.
func (p Param) Eval(values []float64) float64 {
	return p.Scale*values[p.Index] + p.Shift
}

// Parametric gate builders. The gate's U stays zero until Bind.

// PRX appends a parametric exp(-iθX/2) rotation.
func (c *Circuit) PRX(q int, p Param) *Circuit { return c.applyParam("rx", q, p) }

// PRY appends a parametric exp(-iθY/2) rotation.
func (c *Circuit) PRY(q int, p Param) *Circuit { return c.applyParam("ry", q, p) }

// PRZ appends a parametric exp(-iθZ/2) rotation.
func (c *Circuit) PRZ(q int, p Param) *Circuit { return c.applyParam("rz", q, p) }

// PPhase appends a parametric phase gate diag(1, e^{iθ}).
func (c *Circuit) PPhase(q int, p Param) *Circuit { return c.applyParam("p", q, p) }

func (c *Circuit) applyParam(name string, q int, p Param) *Circuit {
	c.check(q)
	if p.Index < 0 {
		panic(fmt.Sprintf("quantum: negative parameter index %d", p.Index))
	}
	pp := p
	c.Gates = append(c.Gates, Gate{Name: name, Target: q, Par: &pp})
	return c
}

// paramMatrix materializes the unitary of a parametric gate at angle
// theta. The name set matches the parametric builders.
func paramMatrix(name string, theta float64) (Matrix2, error) {
	switch name {
	case "rx":
		return RX(theta), nil
	case "ry":
		return RY(theta), nil
	case "rz":
		return RZ(theta), nil
	case "p":
		return Phase(theta), nil
	}
	return Matrix2{}, fmt.Errorf("quantum: no parametric gate named %q", name)
}

// Parametric reports whether any gate still carries an unbound Param.
func (c *Circuit) Parametric() bool {
	for i := range c.Gates {
		if c.Gates[i].Par != nil {
			return true
		}
	}
	return false
}

// NumParams returns the length a binding vector must have: one slot per
// distinct parameter index, 1 + the largest index referenced.
func (c *Circuit) NumParams() int {
	n := 0
	for i := range c.Gates {
		if p := c.Gates[i].Par; p != nil && p.Index+1 > n {
			n = p.Index + 1
		}
	}
	return n
}

// Bind materializes every parametric gate at the given parameter
// values, returning a fully concrete circuit (Par == nil everywhere).
// The input circuit is not modified. Binding the same circuit at
// different values yields circuits of identical shape (SameShape).
func (c *Circuit) Bind(values []float64) (*Circuit, error) {
	return c.bindShifted(values, -1, 0)
}

// BindShift binds like Bind, except the single parametric gate at index
// gi gets delta added to its resolved angle — the parameter-shift-rule
// primitive: the ±π/2 evaluations of one gate occurrence.
func (c *Circuit) BindShift(values []float64, gi int, delta float64) (*Circuit, error) {
	if gi < 0 || gi >= len(c.Gates) || c.Gates[gi].Par == nil {
		return nil, fmt.Errorf("quantum: gate %d is not parametric", gi)
	}
	return c.bindShifted(values, gi, delta)
}

func (c *Circuit) bindShifted(values []float64, shiftGate int, delta float64) (*Circuit, error) {
	if np := c.NumParams(); len(values) < np {
		return nil, fmt.Errorf("quantum: circuit references %d parameters, binding has %d", np, len(values))
	}
	out := &Circuit{N: c.N, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		if g.Par != nil {
			theta := g.Par.Eval(values)
			if i == shiftGate {
				theta += delta
			}
			u, err := paramMatrix(g.Name, theta)
			if err != nil {
				return nil, err
			}
			g.U = u
			g.Par = nil
		}
		out.Gates[i] = g
	}
	return out, nil
}

// ParamOccurrence is one parametric gate in a circuit: gate index,
// which parameter it reads, and the scale dθgate/dvalues[Index]. The
// parameter-shift rule differentiates per occurrence — a parameter
// reused across many gates (QAOA's γ on every edge) contributes one
// shifted pair per occurrence, chain-ruled by Scale.
type ParamOccurrence struct {
	Gate  int
	Index int
	Scale float64
}

// ParamOccurrences lists every parametric gate in circuit order.
func (c *Circuit) ParamOccurrences() []ParamOccurrence {
	var occ []ParamOccurrence
	for i := range c.Gates {
		if p := c.Gates[i].Par; p != nil {
			occ = append(occ, ParamOccurrence{Gate: i, Index: p.Index, Scale: p.Scale})
		}
	}
	return occ
}

// ShapeSignature returns a byte signature of the circuit's shape: the
// width and, per gate, kind, target, and controls — everything the
// sweep planner reads, and nothing it doesn't (no matrix values, no
// parameter bindings). Two bindings of one parametric circuit share a
// signature, so a sweep plan computed for one is valid for all.
func ShapeSignature(c *Circuit) string {
	b := make([]byte, 0, 16+8*len(c.Gates))
	b = binary.AppendUvarint(b, uint64(c.N))
	for i := range c.Gates {
		g := &c.Gates[i]
		b = append(b, byte(g.Kind))
		b = binary.AppendUvarint(b, uint64(g.Target))
		b = binary.AppendUvarint(b, uint64(len(g.Controls)))
		for _, q := range g.Controls {
			b = binary.AppendUvarint(b, uint64(q))
		}
	}
	return string(b)
}

// SameShape reports whether two circuits have identical shape — the
// lockstep-batching precondition.
func SameShape(a, b *Circuit) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.N == b.N && len(a.Gates) == len(b.Gates) && ShapeSignature(a) == ShapeSignature(b)
}
