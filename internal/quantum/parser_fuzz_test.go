package quantum

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParseCircuit holds the parser to its contract on arbitrary
// input: never panic, and fail only with a *ParseError wrapping
// ErrParse. When an input parses, it must survive a
// Serialize → Parse round trip with the same shape — every gate the
// parser can produce has a textual form.
func FuzzParseCircuit(f *testing.F) {
	seeds := []string{
		"",
		"qubits 3\nh 0\ncx 0 1\nmeasure 2\n",
		"# comment\n\nqubits 5\nrz 2 1.5707963\ncp 0 4 0.785398\nccx 0 1 2\n",
		"qubits 2\nswap 0 1\nsx 1\nsy 0\np 1 -0.25\n",
		"qubits 1\nrx 0 nan\nry 0 1e308\n",
		"qubits",
		"qubits 0",
		"qubits 2\nqubits 2",
		"h 0\nqubits 2",
		"qubits 2\nbogus 0",
		"qubits 2\ncx 0 0",
		"qubits 2\ncx 0 7",
		"qubits 2\nrz 0",
		"qubits 2\nccx 0 1",
		"QUBITS 2\nH 1",
		"qubits 99999999\nx 12345\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped parse error %T: %v", err, err)
			}
			if !errors.Is(err, ErrParse) {
				t.Fatalf("parse error does not wrap ErrParse: %v", err)
			}
			return
		}
		if c == nil || c.N < 1 {
			t.Fatalf("nil error but bad circuit %+v", c)
		}
		var buf bytes.Buffer
		if err := Serialize(&buf, c); err != nil {
			t.Fatalf("parsed circuit does not serialize: %v", err)
		}
		c2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized circuit does not reparse: %v\n%s", err, buf.String())
		}
		if c2.N != c.N || len(c2.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed shape: %d/%d qubits, %d/%d gates",
				c.N, c2.N, len(c.Gates), len(c2.Gates))
		}
		for i := range c.Gates {
			a, b := c.Gates[i], c2.Gates[i]
			if a.Name != b.Name || a.Target != b.Target || a.Kind != b.Kind ||
				len(a.Controls) != len(b.Controls) {
				t.Fatalf("round trip changed gate %d: %v vs %v", i, a, b)
			}
		}
	})
}
