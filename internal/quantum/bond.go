package quantum

// Entanglement planning for backend selection: before running a
// circuit, estimate how large a matrix-product-state bond dimension it
// needs. The estimate is structural — it looks only at which qubit
// pairs the two-qubit gates couple, never at angles — so it upper-
// bounds the true Schmidt rank: each two-qubit gate acting across a cut
// of the 1D chain can at most double the Schmidt rank there, and the
// rank across cut i can never exceed 2^min(i+1, n-1-i) (the smaller
// side's Hilbert dimension). An MPS whose χ covers the largest
// estimated cut rank simulates the circuit without truncation.

// estimateBondCap keeps the 2^k arithmetic in int range; any estimate
// at or past it means "exponential — use the full-state engine".
const estimateBondCap = 1 << 30

// EstimateBondDim returns the structural upper bound on the bond
// dimension an exact MPS run of c needs: the max over chain cuts of
// min(2^crossings, 2^side) where crossings counts multi-qubit gates
// whose operands straddle the cut and side is the smaller cut side.
// The result saturates at 2^30. Measurement gates do not entangle and
// are ignored here (MPSCompatible reports them separately).
func EstimateBondDim(c *Circuit) int {
	if c == nil || c.N < 2 {
		return 1
	}
	cuts := make([]int, c.N-1) // crossings of cut i (between qubit i and i+1)
	for _, g := range c.Gates {
		if g.Kind == KindMeasure || len(g.Controls) == 0 {
			continue
		}
		lo, hi := g.Target, g.Target
		for _, q := range g.Controls {
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
			}
		}
		// The gate (after SWAP routing) touches every cut in [lo, hi).
		for i := lo; i < hi; i++ {
			cuts[i]++
		}
	}
	max := 1
	for i, crossings := range cuts {
		side := i + 1
		if s := c.N - 1 - i; s < side {
			side = s
		}
		if crossings > side {
			crossings = side // Hilbert-dimension ceiling
		}
		var bond int
		if crossings >= 30 {
			bond = estimateBondCap
		} else {
			bond = 1 << uint(crossings)
		}
		if bond > max {
			max = bond
		}
	}
	return max
}

// MPSCompatible reports whether every gate of c is runnable on the MPS
// backend: no measurement collapse and at most one control per gate.
// The blocking gate is returned for error messages.
func MPSCompatible(c *Circuit) (ok bool, blocking Gate) {
	for _, g := range c.Gates {
		if g.Kind == KindMeasure || len(g.Controls) > 1 {
			return false, g
		}
	}
	return true, Gate{}
}
