package quantum

import (
	"math"
	"strings"
	"testing"
)

func TestBindReproducesQAOA(t *testing.T) {
	const n, p, seed = 8, 2, 5
	ansatz := QAOAAnsatz(n, p, seed)
	if !ansatz.Parametric() {
		t.Fatal("ansatz not parametric")
	}
	if got := ansatz.NumParams(); got != 2*p {
		t.Fatalf("NumParams = %d, want %d", got, 2*p)
	}
	bound, err := ansatz.Bind(QAOAAngles(p, seed))
	if err != nil {
		t.Fatal(err)
	}
	if bound.Parametric() {
		t.Fatal("bound circuit still parametric")
	}
	fixed := QAOA(n, p, seed)
	if len(bound.Gates) != len(fixed.Gates) {
		t.Fatalf("gate counts differ: %d vs %d", len(bound.Gates), len(fixed.Gates))
	}
	for i, g := range bound.Gates {
		f := fixed.Gates[i]
		if g.Kind != f.Kind || g.Target != f.Target || len(g.Controls) != len(f.Controls) || g.U != f.U {
			t.Fatalf("gate %d differs:\nbound %+v\nfixed %+v", i, g, f)
		}
	}
	// The source ansatz must be untouched by Bind.
	if !ansatz.Parametric() {
		t.Fatal("Bind mutated the ansatz")
	}
}

func TestBindShift(t *testing.T) {
	ansatz := QAOAAnsatz(6, 1, 3)
	values := QAOAAngles(1, 3)
	base, err := ansatz.Bind(values)
	if err != nil {
		t.Fatal(err)
	}
	occs := ansatz.ParamOccurrences()
	if len(occs) == 0 {
		t.Fatal("no parameter occurrences")
	}
	occ := occs[0]
	shifted, err := ansatz.BindShift(values, occ.Gate, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if !SameShape(shifted, base) {
		t.Fatal("shifted binding changed the shape")
	}
	diff := 0
	for i := range base.Gates {
		if base.Gates[i].U != shifted.Gates[i].U {
			diff++
			if i != occ.Gate {
				t.Fatalf("gate %d changed, expected only %d", i, occ.Gate)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d gates changed, want exactly 1", diff)
	}
	// The shifted gate sees θ + Scale·π/2... no: BindShift adds delta to
	// the underlying PARAMETER angle occurrence, i.e. θ' = Scale·v+Shift
	// with the gate's own Shift bumped by delta — verify against Eval.
	pp := ansatz.Gates[occ.Gate].Par
	want, err := paramMatrix(ansatz.Gates[occ.Gate].Name, pp.Eval(values)+math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.Gates[occ.Gate].U != want {
		t.Fatalf("shifted gate U mismatch")
	}
	if _, err := ansatz.BindShift(values, 0, 1); err == nil {
		t.Fatal("BindShift on a non-parametric gate index succeeded")
	}
}

func TestBindShortVector(t *testing.T) {
	ansatz := VQEAnsatz(4, 2)
	if _, err := ansatz.Bind(make([]float64, ansatz.NumParams()-1)); err == nil ||
		!strings.Contains(err.Error(), "parameter") {
		t.Fatalf("short binding accepted: %v", err)
	}
}

func TestParamOccurrences(t *testing.T) {
	const n, p = 6, 2
	ansatz := QAOAAnsatz(n, p, 9)
	occs := ansatz.ParamOccurrences()
	// Per round: one γ occurrence per edge, one β occurrence per qubit.
	edges := len(RandomRegularGraph(n, 4, 9))
	if want := p * (edges + n); len(occs) != want {
		t.Fatalf("%d occurrences, want %d", len(occs), want)
	}
	last := -1
	for _, o := range occs {
		if o.Gate <= last {
			t.Fatalf("occurrences out of gate order: %+v", occs)
		}
		last = o.Gate
		if ansatz.Gates[o.Gate].Par == nil {
			t.Fatalf("occurrence at non-parametric gate %d", o.Gate)
		}
		if o.Scale != 2 {
			t.Fatalf("QAOA occurrence scale = %v, want 2", o.Scale)
		}
	}
}

func TestShapeSignatureStableAcrossBindings(t *testing.T) {
	ansatz := QAOAAnsatz(6, 1, 7)
	a, err := ansatz.Bind(QAOAAngles(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ansatz.Bind(QAOAAngles(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if ShapeSignature(a) != ShapeSignature(b) {
		t.Fatal("two bindings of one ansatz have different shape signatures")
	}
	if !SameShape(a, ansatz) {
		t.Fatal("binding changed the shape vs the ansatz itself")
	}
	if SameShape(a, NewCircuit(6).H(0)) {
		t.Fatal("different circuits report the same shape")
	}
}

// TestFusionBarrierOnParametricGates: an unbound parametric gate has no
// usable U, so fusion must not merge across (or into) it — otherwise two
// bindings of one shape could fuse differently.
func TestFusionBarrierOnParametricGates(t *testing.T) {
	c := NewCircuit(2).H(0)
	c.PRX(0, P(0))
	c.H(0)
	fused := FuseSingleQubitGates(c)
	if len(fused.Gates) != 3 {
		t.Fatalf("fusion crossed a parametric barrier: %d gates", len(fused.Gates))
	}
	// Bound variants of one shape must fuse identically (structure-only
	// decisions): check gate counts agree across two bindings.
	ansatz := QAOAAnsatz(6, 1, 4)
	a, _ := ansatz.Bind(QAOAAngles(1, 4))
	b, _ := ansatz.Bind(QAOAAngles(1, 5))
	fa, fb := FuseSingleQubitGates(a), FuseSingleQubitGates(b)
	if !SameShape(fa, fb) {
		t.Fatal("two bindings fused into different shapes")
	}
}

func TestVQEAnsatzShape(t *testing.T) {
	const n, layers = 5, 3
	c := VQEAnsatz(n, layers)
	if got, want := c.NumParams(), (layers+1)*n; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	// layers·(n rotations + n-1 CZs) + final n rotations.
	if got, want := len(c.Gates), layers*(n+n-1)+n; got != want {
		t.Fatalf("%d gates, want %d", got, want)
	}
	bound, err := c.Bind(make([]float64, c.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	// RY(0) is the identity: binding at zero must yield identity U on
	// every rotation.
	for i, g := range bound.Gates {
		if len(g.Controls) == 0 && g.U != RY(0) {
			t.Fatalf("gate %d: zero binding gave %v", i, g.U)
		}
	}
}

func TestParamEval(t *testing.T) {
	p := P(1).Times(3).Plus(0.5)
	if got := p.Eval([]float64{0, 2}); got != 6.5 {
		t.Fatalf("Eval = %v, want 6.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("P(-1) did not panic")
		}
	}()
	P(-1)
}
