package quantum

import (
	"math"
	"math/rand"
)

// Parameterized ansatz builders for variational workloads. Unlike the
// fixed-angle QAOA generator above, these leave the rotation angles
// symbolic: one circuit shape, bound at many parameter settings by
// Circuit.Bind, which is what RunBatch and the parameter-shift
// gradient consume.

// QAOAAnsatz builds the p-round MAXCUT QAOA ansatz on the same seeded
// random 4-regular graph as QAOA(n, p, seed), with symbolic angles:
// parameter 2r is round r's γ and parameter 2r+1 its β (NumParams =
// 2p). Binding at QAOAAngles(p, seed) reproduces QAOA(n, p, seed)
// gate for gate.
func QAOAAnsatz(n, p int, seed int64) *Circuit {
	return QAOAAnsatzGraph(n, p, RandomRegularGraph(n, 4, seed))
}

// QAOAAnsatzGraph builds the p-round MAXCUT QAOA ansatz over an
// explicit edge list: H on every qubit, then per round r the cost layer
// exp(-iγ_r Z_u Z_v) per edge (CNOT·RZ(2γ_r)·CNOT) and the mixer layer
// RX(2β_r) per qubit, with γ_r = values[2r] and β_r = values[2r+1].
func QAOAAnsatzGraph(n, p int, edges []Edge) *Circuit {
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for round := 0; round < p; round++ {
		gamma := P(2 * round).Times(2)
		beta := P(2*round + 1).Times(2)
		for _, e := range edges {
			c.CNOT(e.U, e.V)
			c.PRZ(e.V, gamma)
			c.CNOT(e.U, e.V)
		}
		for q := 0; q < n; q++ {
			c.PRX(q, beta)
		}
	}
	return c
}

// QAOAAngles returns the angle vector the fixed QAOA(n, p, seed)
// generator draws — [γ_0, β_0, γ_1, β_1, ...] — so
// QAOAAnsatz(n, p, seed).Bind(QAOAAngles(p, seed)) equals
// QAOA(n, p, seed).
func QAOAAngles(p int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed + 1))
	values := make([]float64, 2*p)
	for round := 0; round < p; round++ {
		values[2*round] = rng.Float64() * math.Pi
		values[2*round+1] = rng.Float64() * math.Pi
	}
	return values
}

// VQEAnsatz builds a hardware-efficient VQE ansatz on n qubits:
// `layers` repetitions of a parametric RY rotation on every qubit
// followed by a CZ entangler chain, closed by one final RY layer.
// Parameter l·n+q drives layer l's rotation on qubit q (NumParams =
// (layers+1)·n).
func VQEAnsatz(n, layers int) *Circuit {
	c := NewCircuit(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.PRY(q, P(l*n+q))
		}
		for q := 0; q+1 < n; q++ {
			c.CZ(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.PRY(q, P(layers*n+q))
	}
	return c
}
