package quantum

import "fmt"

// Feynman-paths simulation (paper §2.2): computes a single output
// amplitude ⟨x|C|in⟩ by summing over all intermediate computational
// basis configurations. Memory stays polynomial, but time grows as
// O(2^b) in the number of branching gates b (gates whose matrix has two
// nonzero entries per column, e.g. H, X^1/2) — which is exactly why the
// paper dismisses the method for deep circuits and why the harness can
// demonstrate the blow-up empirically.

// FeynmanOptions tunes the path sum.
type FeynmanOptions struct {
	// MemoLimit caps the memoization table (entries). 0 disables
	// memoization; a few million entries tames circuits whose paths
	// reconverge (at exponential worst-case memory savings).
	MemoLimit int
	// MaxBranchingGates aborts circuits whose path count would be
	// astronomically large. 0 means no limit.
	MaxBranchingGates int
}

// BranchingGates counts the gates whose unitary creates superposition
// (two nonzero entries in some column) — the exponent of the Feynman
// path count.
func BranchingGates(c *Circuit) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KindUnitary && gateBranches(g) {
			n++
		}
	}
	return n
}

func gateBranches(g Gate) bool {
	// A column with two nonzero entries means the input basis state
	// maps to a superposition.
	col0 := g.U[0][0] != 0 && g.U[1][0] != 0
	col1 := g.U[0][1] != 0 && g.U[1][1] != 0
	return col0 || col1
}

// FeynmanAmplitude computes ⟨out|C|in⟩ by the path-sum method.
func FeynmanAmplitude(c *Circuit, in, out uint64, opt FeynmanOptions) (complex128, error) {
	if c.N > 62 {
		return 0, fmt.Errorf("quantum: feynman on %d qubits unsupported", c.N)
	}
	lim := uint64(1) << uint(c.N)
	if in >= lim || out >= lim {
		return 0, fmt.Errorf("quantum: basis state out of range")
	}
	for _, g := range c.Gates {
		if g.Kind == KindMeasure {
			return 0, fmt.Errorf("quantum: feynman cannot evaluate measurement gates")
		}
	}
	if opt.MaxBranchingGates > 0 {
		if b := BranchingGates(c); b > opt.MaxBranchingGates {
			return 0, fmt.Errorf("quantum: %d branching gates exceed limit %d (path count 2^%d)", b, opt.MaxBranchingGates, b)
		}
	}
	f := &feynman{c: c, in: in, opt: opt}
	if opt.MemoLimit > 0 {
		f.memo = make(map[memoKey]complex128)
	}
	return f.amp(len(c.Gates), out), nil
}

type memoKey struct {
	gate int
	x    uint64
}

type feynman struct {
	c    *Circuit
	in   uint64
	opt  FeynmanOptions
	memo map[memoKey]complex128
	// Paths counts evaluated leaf terms (for the blow-up experiment).
	Paths uint64
}

// amp returns ⟨x| G_i ... G_1 |in⟩ by backward recursion over gates.
func (f *feynman) amp(i int, x uint64) complex128 {
	if i == 0 {
		f.Paths++
		if x == f.in {
			return 1
		}
		return 0
	}
	if f.memo != nil {
		if v, ok := f.memo[memoKey{i, x}]; ok {
			return v
		}
	}
	g := f.c.Gates[i-1]
	tMask := uint64(1) << uint(g.Target)
	ctrlOK := true
	for _, ctl := range g.Controls {
		if x&(1<<uint(ctl)) == 0 {
			ctrlOK = false
			break
		}
	}
	var v complex128
	if !ctrlOK {
		// Controls unsatisfied in the OUTPUT configuration: since a
		// controlled gate never changes control bits, the input
		// configuration has the same (unsatisfied) controls, where the
		// gate acts as identity.
		v = f.amp(i-1, x)
	} else {
		// ⟨x|G|y⟩ over the two candidate y differing in the target bit.
		xb := (x & tMask) >> uint(g.Target) // this row of U
		y0 := x &^ tMask
		y1 := x | tMask
		u := g.U
		if a := u[xb][0]; a != 0 {
			v += a * f.amp(i-1, y0)
		}
		if a := u[xb][1]; a != 0 {
			v += a * f.amp(i-1, y1)
		}
	}
	if f.memo != nil && len(f.memo) < f.opt.MemoLimit {
		f.memo[memoKey{i, x}] = v
	}
	return v
}

// --- circuit analysis helpers used by the harness and docs ---

// TwoQubitGateCount returns how many gates have at least one control.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.Gates {
		if len(g.Controls) > 0 {
			n++
		}
	}
	return n
}

// ParallelDepth returns the circuit depth counted in parallel layers:
// gates touching disjoint qubits share a layer (the hardware notion of
// depth, vs the paper's gate count).
func (c *Circuit) ParallelDepth() int {
	ready := make([]int, c.N) // earliest free layer per qubit
	depth := 0
	for _, g := range c.Gates {
		layer := ready[g.Target]
		for _, ctl := range g.Controls {
			if ready[ctl] > layer {
				layer = ready[ctl]
			}
		}
		layer++
		ready[g.Target] = layer
		for _, ctl := range g.Controls {
			ready[ctl] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// GateHistogram returns gate counts by name.
func (c *Circuit) GateHistogram() map[string]int {
	h := make(map[string]int)
	for _, g := range c.Gates {
		h[g.Name]++
	}
	return h
}
