package quantum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFusePreservesSemantics(t *testing.T) {
	for _, mk := range []struct {
		name string
		c    *Circuit
	}{
		{"random", RandomCircuit(6, 150, 11)},
		{"qft", QFT(6, 5)},
		{"grover", Grover(4, 7, 2)},
		{"supremacy", Supremacy(2, 3, 10, 3)},
		{"qaoa", QAOA(6, 2, 7)},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			fused := FuseSingleQubitGates(mk.c)
			a, b := NewState(mk.c.N), NewState(mk.c.N)
			a.ApplyCircuit(mk.c)
			b.ApplyCircuit(fused)
			if f := Fidelity(a, b); math.Abs(f-1) > 1e-9 {
				t.Fatalf("fused fidelity = %v", f)
			}
		})
	}
}

func TestFuseReducesGateCount(t *testing.T) {
	// H·H·H on one qubit collapses to a single fused gate.
	c := NewCircuit(2).H(0).H(0).H(0).X(1).X(1)
	fused := FuseSingleQubitGates(c)
	if len(fused.Gates) != 2 {
		t.Fatalf("fused to %d gates, want 2", len(fused.Gates))
	}
	// Random circuits carry runs of adjacent single-qubit gates on the
	// same target, so fusion must shrink them.
	rc := RandomCircuit(4, 400, 1)
	f := FuseSingleQubitGates(rc)
	if len(f.Gates) >= len(rc.Gates) {
		t.Fatalf("no reduction: %d -> %d", len(rc.Gates), len(f.Gates))
	}
}

func TestFuseRespectsControlBarriers(t *testing.T) {
	// X before a CNOT control must not commute past it.
	c := NewCircuit(2).X(0).CNOT(0, 1).X(0)
	fused := FuseSingleQubitGates(c)
	a, b := NewState(2), NewState(2)
	a.ApplyCircuit(c)
	b.ApplyCircuit(fused)
	if f := Fidelity(a, b); math.Abs(f-1) > 1e-12 {
		t.Fatalf("barrier violated: fidelity %v", f)
	}
	// The CNOT must sit between two x-gates in the fused stream.
	if len(fused.Gates) != 3 || fused.Gates[1].Name != "cx" {
		t.Fatalf("fused gates: %v", fused.Gates)
	}
}

func TestFuseWithMeasurement(t *testing.T) {
	c := NewCircuit(2).H(0).H(0)
	c.Measure(0)
	c.H(0)
	fused := FuseSingleQubitGates(c)
	// H·H fuses; measure is a barrier; trailing H stays.
	if len(fused.Gates) != 3 {
		t.Fatalf("fused to %d gates", len(fused.Gates))
	}
	if fused.Gates[1].Kind != KindMeasure {
		t.Fatal("measurement moved")
	}
}

func TestQuickFuseEquivalence(t *testing.T) {
	f := func(seed int64, gates uint8) bool {
		c := RandomCircuit(5, 10+int(gates)%60, seed)
		fused := FuseSingleQubitGates(c)
		a, b := NewState(5), NewState(5)
		a.ApplyCircuit(c)
		b.ApplyCircuit(fused)
		return math.Abs(Fidelity(a, b)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseEstimationExactPhase(t *testing.T) {
	// φ = 5/16 with 4 counting qubits is exact: the counting register
	// reads |5⟩ with certainty.
	tq := 4
	c := PhaseEstimation(tq, 5.0/16.0)
	st := NewState(c.N)
	st.ApplyCircuit(c)
	// Eigenstate qubit stays |1⟩; counting register (bits 0..3) = 5.
	want := uint64(5) | 1<<uint(tq)
	if p := st.Probability(want); p < 0.99 {
		t.Fatalf("P(|%d⟩) = %v", want, p)
	}
}

func TestPhaseEstimationInexactPhaseConcentrates(t *testing.T) {
	tq := 5
	phi := 0.3 // not a 5-bit dyadic
	c := PhaseEstimation(tq, phi)
	st := NewState(c.N)
	st.ApplyCircuit(c)
	// The most likely counting value is round(φ·2^t) = 10.
	best, bestP := -1, 0.0
	for v := 0; v < 1<<uint(tq); v++ {
		p := st.Probability(uint64(v) | 1<<uint(tq))
		if p > bestP {
			best, bestP = v, p
		}
	}
	if best != 10 {
		t.Fatalf("mode = %d (p=%v), want 10", best, bestP)
	}
	if bestP < 0.4 {
		t.Fatalf("mode probability %v too diffuse", bestP)
	}
}

func TestBernsteinVazirani(t *testing.T) {
	n := 7
	secret := uint64(0b1011001)
	c := BernsteinVazirani(n, secret)
	st := NewState(c.N)
	st.ApplyCircuit(c)
	// Input register deterministically reads the secret (ancilla in
	// |−⟩ contributes two equal basis states).
	var p float64
	for anc := uint64(0); anc <= 1; anc++ {
		p += st.Probability(secret | anc<<uint(n))
	}
	if p < 1-1e-9 {
		t.Fatalf("P(secret) = %v", p)
	}
	mustPanic(t, func() { BernsteinVazirani(3, 8) })
}

func TestDeutschJozsa(t *testing.T) {
	n := 6
	// Constant oracle: register returns to |0...0⟩.
	cst := DeutschJozsa(n, true)
	st := NewState(cst.N)
	st.ApplyCircuit(cst)
	var p0 float64
	for anc := uint64(0); anc <= 1; anc++ {
		p0 += st.Probability(anc << uint(n))
	}
	if p0 < 1-1e-9 {
		t.Fatalf("constant oracle: P(0) = %v", p0)
	}
	// Balanced oracle: zero probability of |0...0⟩.
	bal := DeutschJozsa(n, false)
	st2 := NewState(bal.N)
	st2.ApplyCircuit(bal)
	var pb float64
	for anc := uint64(0); anc <= 1; anc++ {
		pb += st2.Probability(anc << uint(n))
	}
	if pb > 1e-9 {
		t.Fatalf("balanced oracle: P(0) = %v", pb)
	}
}
