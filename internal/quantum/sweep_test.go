package quantum

import (
	"testing"
	"testing/quick"
)

func TestPlanSweepsPartitionsBlockLocalRuns(t *testing.T) {
	const offsetBits = 3
	c := NewCircuit(6)
	c.H(0).H(1).H(2)                    // block-local run of 3
	c.CNOT(1, 4)                        // cross-block target: singleton barrier
	c.X(0).CZ(2, 1).T(2)                // block-local run of 3 (controls in offset bits too)
	c.Measure(1)                        // measurement: singleton barrier
	c.H(0)                              // block-local run of 1
	c.ApplyControlled("cx", MatX, 0, 5) // control outside offset bits: barrier
	c.H(2).H(1)                         // trailing block-local run of 2

	plan := PlanSweeps(c.Gates, offsetBits)
	want := []Sweep{
		{0, 3, true},
		{3, 4, false},
		{4, 7, true},
		{7, 8, false},
		{8, 9, true},
		{9, 10, false},
		{10, 12, true},
	}
	if len(plan) != len(want) {
		t.Fatalf("got %d sweeps %v, want %d", len(plan), plan, len(want))
	}
	for i, sw := range plan {
		if sw != want[i] {
			t.Fatalf("sweep %d = %+v, want %+v (plan %v)", i, sw, want[i], plan)
		}
	}
}

// TestQuickPlanSweepsIsAPartition: for any circuit and offset width, the
// plan covers [0, len(gates)) contiguously in order, local sweeps hold
// only block-local gates, and local runs are maximal (no two adjacent
// local sweeps, no local gate stranded at a non-local boundary).
func TestQuickPlanSweepsIsAPartition(t *testing.T) {
	f := func(seed int64, offSel, gateCount uint8) bool {
		offsetBits := 1 + int(offSel)%7
		gates := 1 + int(gateCount)%60
		cir := RandomCircuit(7, gates, seed)
		cir.Measure(int(uint64(seed) % 7))
		plan := PlanSweeps(cir.Gates, offsetBits)
		next := 0
		for i, sw := range plan {
			if sw.Start != next || sw.End <= sw.Start {
				t.Logf("sweep %d = %+v not contiguous at %d", i, sw, next)
				return false
			}
			next = sw.End
			for gi := sw.Start; gi < sw.End; gi++ {
				if BlockLocal(cir.Gates[gi], offsetBits) != sw.Local {
					t.Logf("gate %d locality mismatches sweep %+v", gi, sw)
					return false
				}
			}
			if !sw.Local && sw.Len() != 1 {
				t.Logf("non-local sweep %+v not a singleton", sw)
				return false
			}
			if sw.Local && i > 0 && plan[i-1].Local {
				t.Logf("adjacent local sweeps %+v, %+v not merged", plan[i-1], sw)
				return false
			}
		}
		return next == len(cir.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSingletonSweeps(t *testing.T) {
	c := RandomCircuit(5, 17, 3)
	plan := SingletonSweeps(c.Gates)
	if len(plan) != 17 {
		t.Fatalf("%d sweeps for 17 gates", len(plan))
	}
	for i, sw := range plan {
		if sw.Start != i || sw.End != i+1 || sw.Local {
			t.Fatalf("sweep %d = %+v", i, sw)
		}
	}
}

// TestSweepSignatureUnambiguous: length prefixes keep distinct gate
// sequences from concatenating to identical signatures.
func TestSweepSignatureUnambiguous(t *testing.T) {
	h0, h1, x0 := Gate{Name: "h", Target: 0, U: MatH}, Gate{Name: "h", Target: 1, U: MatH}, Gate{Name: "x", Target: 0, U: MatX}
	sigs := map[string][]Gate{}
	for _, run := range [][]Gate{
		{h0}, {h1}, {x0},
		{h0, h1}, {h1, h0}, {h0, x0}, {h0, h1, x0},
	} {
		s := SweepSignature(run)
		if prev, dup := sigs[s]; dup {
			t.Fatalf("sweep signature collision: %v vs %v", prev, run)
		}
		sigs[s] = run
	}
}

func TestBlockLocal(t *testing.T) {
	for _, tc := range []struct {
		g    Gate
		off  int
		want bool
	}{
		{Gate{Name: "h", Target: 2, U: MatH}, 3, true},
		{Gate{Name: "h", Target: 3, U: MatH}, 3, false},
		{Gate{Name: "cx", Target: 0, Controls: []int{2}, U: MatX}, 3, true},
		{Gate{Name: "cx", Target: 0, Controls: []int{3}, U: MatX}, 3, false},
		{Gate{Name: "ccx", Target: 1, Controls: []int{0, 5}, U: MatX}, 3, false},
		{Gate{Kind: KindMeasure, Name: "measure", Target: 0}, 3, false},
	} {
		if got := BlockLocal(tc.g, tc.off); got != tc.want {
			t.Errorf("BlockLocal(%v, %d) = %v, want %v", tc.g, tc.off, got, tc.want)
		}
	}
}
