package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// FlatePool is a concurrency-friendly DEFLATE stage shared by the
// codecs: writers are pooled per codec instance rather than mutex-
// serialized, so SPMD ranks compress blocks in parallel (the paper's
// per-rank compression is embarrassingly parallel and the engine's
// strong scaling depends on it).
type FlatePool struct {
	// Level is the flate level; 0 means flate.BestSpeed (the paper
	// favors compression speed).
	Level int
	pool  sync.Pool
}

// Deflate compresses src, appending to dst.
func (p *FlatePool) Deflate(dst, src []byte) ([]byte, error) {
	lvl := p.Level
	if lvl == 0 {
		lvl = flate.BestSpeed
	}
	var buf bytes.Buffer
	w, _ := p.pool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&buf, lvl)
		if err != nil {
			return nil, fmt.Errorf("compress: flate: %w", err)
		}
	} else {
		w.Reset(&buf)
	}
	defer p.pool.Put(w)
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("compress: flate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("compress: flate: %w", err)
	}
	return append(dst, buf.Bytes()...), nil
}

// Inflate decompresses src fully.
func Inflate(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
	}
	return out, nil
}

// InflateInto decompresses src into dst, which must be exactly the
// decoded size.
func InflateInto(dst, src []byte) error {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	if _, err := io.ReadFull(r, dst); err != nil {
		return fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
	}
	// Trailing garbage is tolerated (checkpoint containers pad).
	return nil
}
