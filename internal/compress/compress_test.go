package compress

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{Mode: Lossless},
		{Mode: Lossless, Bound: -5}, // bound ignored
		{Mode: Absolute, Bound: 1e-3},
		{Mode: PointwiseRelative, Bound: 1e-1},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("good case %d: %v", i, err)
		}
	}
	bad := []Options{
		{Mode: Absolute, Bound: 0},
		{Mode: Absolute, Bound: -1},
		{Mode: PointwiseRelative, Bound: math.NaN()},
		{Mode: PointwiseRelative, Bound: math.Inf(1)},
		{Mode: ErrorMode(9), Bound: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad case %d accepted", i)
		}
	}
}

func TestErrorModeString(t *testing.T) {
	if Lossless.String() != "lossless" || Absolute.String() != "abs" || PointwiseRelative.String() != "pwr" {
		t.Fatal("mode strings changed")
	}
	if ErrorMode(7).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Magic: 0x42, Mode: PointwiseRelative, Bound: 1e-4, Count: 12345}
	buf := AppendHeader(nil, h)
	got, rest, err := ParseHeader(buf, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header mismatch: %+v vs %+v", got, h)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected trailing payload %d", len(rest))
	}
}

func TestHeaderBadMagic(t *testing.T) {
	buf := AppendHeader(nil, Header{Magic: 1})
	if _, _, err := ParseHeader(buf, 2); err == nil {
		t.Fatal("magic mismatch accepted")
	}
	if _, _, err := ParseHeader(buf[:3], 1); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 15, 1024} {
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i)
		}
		sh := make([]float64, n)
		back := make([]float64, n)
		Shuffle(sh, src)
		Unshuffle(back, sh)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("n=%d idx %d: got %v want %v", n, i, back[i], src[i])
			}
		}
	}
}

func TestShuffleSeparatesStreams(t *testing.T) {
	src := []float64{1, -1, 2, -2, 3, -3, 4, -4}
	sh := make([]float64, len(src))
	Shuffle(sh, src)
	want := []float64{1, 2, 3, 4, -1, -2, -3, -4}
	for i := range want {
		if sh[i] != want[i] {
			t.Fatalf("shuffled = %v", sh)
		}
	}
}

func TestByteShuffleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 8, 16, 24, 100} { // 100: non-multiple-of-8 tail
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 7)
		}
		sh := make([]byte, n)
		back := make([]byte, n)
		ByteShuffle(sh, src)
		ByteUnshuffle(back, sh)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("n=%d idx %d", n, i)
			}
		}
	}
}

func TestCheckBound(t *testing.T) {
	want := []float64{1, 2, 3}
	if i := CheckBound(want, []float64{1, 2, 3}, Options{Mode: Lossless}); i != -1 {
		t.Fatalf("exact match flagged at %d", i)
	}
	if i := CheckBound(want, []float64{1, 2.05, 3}, Options{Mode: Absolute, Bound: 0.1}); i != -1 {
		t.Fatalf("in-bound flagged at %d", i)
	}
	if i := CheckBound(want, []float64{1, 2.2, 3}, Options{Mode: Absolute, Bound: 0.1}); i != 1 {
		t.Fatalf("violation index = %d, want 1", i)
	}
	if i := CheckBound(want, []float64{1, 2, 3.4}, Options{Mode: PointwiseRelative, Bound: 0.1}); i != 2 {
		t.Fatalf("violation index = %d, want 2", i)
	}
	if i := CheckBound(want, []float64{1, 2}, Options{}); i != 0 {
		t.Fatalf("length mismatch index = %d", i)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(1024, 1024); r != 8 {
		t.Fatalf("Ratio = %v", r)
	}
	if !math.IsInf(Ratio(10, 0), 1) {
		t.Fatal("zero payload should be +Inf ratio")
	}
}

func TestQuickShuffle(t *testing.T) {
	f := func(src []float64) bool {
		sh := make([]float64, len(src))
		back := make([]float64, len(src))
		Shuffle(sh, src)
		Unshuffle(back, sh)
		for i := range src {
			if math.Float64bits(back[i]) != math.Float64bits(src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
