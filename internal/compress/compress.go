// Package compress defines the codec interface shared by every
// compressor in the repository and the helpers (options, headers,
// shuffling, error-bound verification) the concrete codecs build on.
//
// The paper's simulator keeps every state-vector block compressed in
// memory; a Codec turns a block of float64 values (interleaved real and
// imaginary amplitude parts) into bytes and back. Lossy codecs accept an
// error bound in one of two modes (§2.3 of the paper):
//
//   - Absolute: |d - d'| ≤ e for every point.
//   - PointwiseRelative: |d - d'| ≤ ε|d| for every point. The
//     truncation-based codecs additionally satisfy the paper's one-sided
//     contract |d'| ∈ [|d|(1-ε), |d|].
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrorMode selects how Options.Bound is interpreted.
type ErrorMode uint8

const (
	// Lossless requests bit-exact reconstruction; Bound is ignored.
	Lossless ErrorMode = iota
	// Absolute bounds the pointwise absolute error by Bound.
	Absolute
	// PointwiseRelative bounds the pointwise relative error by Bound.
	PointwiseRelative
)

// String implements fmt.Stringer.
func (m ErrorMode) String() string {
	switch m {
	case Lossless:
		return "lossless"
	case Absolute:
		return "abs"
	case PointwiseRelative:
		return "pwr"
	default:
		return fmt.Sprintf("ErrorMode(%d)", uint8(m))
	}
}

// Options carries the per-call compression parameters.
type Options struct {
	Mode  ErrorMode
	Bound float64
}

// Validate reports whether the options are coherent.
func (o Options) Validate() error {
	switch o.Mode {
	case Lossless:
		return nil
	case Absolute, PointwiseRelative:
		if !(o.Bound > 0) || math.IsInf(o.Bound, 0) || math.IsNaN(o.Bound) {
			return fmt.Errorf("compress: bound %v invalid for mode %v", o.Bound, o.Mode)
		}
		return nil
	default:
		return fmt.Errorf("compress: unknown mode %d", o.Mode)
	}
}

// Codec compresses and decompresses blocks of float64 values.
//
// Compress appends the encoded form of src to dst (which may be nil) and
// returns the extended slice. Decompress writes exactly len(dst) values;
// the caller must size dst from its own metadata (the simulator knows its
// block size) — codecs validate the stored count against len(dst).
type Codec interface {
	// Name identifies the codec in harness tables (e.g. "sz-a", "xor-c").
	Name() string
	// Compress encodes src under opt, appending to dst.
	Compress(dst []byte, src []float64, opt Options) ([]byte, error)
	// Decompress decodes data into dst.
	Decompress(dst []float64, data []byte) error
}

// ErrCorrupt is returned by codecs when a payload fails validation.
var ErrCorrupt = errors.New("compress: corrupt payload")

// Header is the common self-describing prefix every codec payload starts
// with, so blocks can be decompressed after a checkpoint/restart without
// side metadata.
type Header struct {
	Magic byte // codec-specific magic
	Mode  ErrorMode
	Bound float64
	Count uint32 // number of float64 values
}

// headerSize is the encoded size of Header in bytes.
const headerSize = 1 + 1 + 8 + 4

// AppendHeader serializes h onto dst.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, h.Magic, byte(h.Mode))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.Bound))
	dst = append(dst, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], h.Count)
	return append(dst, b4[:]...)
}

// ParseHeader reads a Header and returns the remaining payload.
func ParseHeader(data []byte, wantMagic byte) (Header, []byte, error) {
	if len(data) < headerSize {
		return Header{}, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	h := Header{
		Magic: data[0],
		Mode:  ErrorMode(data[1]),
		Bound: math.Float64frombits(binary.LittleEndian.Uint64(data[2:10])),
		Count: binary.LittleEndian.Uint32(data[10:14]),
	}
	if h.Magic != wantMagic {
		return Header{}, nil, fmt.Errorf("%w: magic %#x, want %#x", ErrCorrupt, h.Magic, wantMagic)
	}
	return h, data[headerSize:], nil
}

// Shuffle de-interleaves src (re0, im0, re1, im1, ...) into
// (re0, re1, ..., im0, im1, ...), the paper's Solution-D "reshuffle"
// preprocessing. Odd-length tails keep their order in the first half.
func Shuffle(dst, src []float64) {
	if len(dst) != len(src) {
		panic("compress: Shuffle length mismatch")
	}
	half := (len(src) + 1) / 2
	for i, v := range src {
		if i%2 == 0 {
			dst[i/2] = v
		} else {
			dst[half+i/2] = v
		}
	}
}

// Unshuffle reverses Shuffle.
func Unshuffle(dst, src []float64) {
	if len(dst) != len(src) {
		panic("compress: Unshuffle length mismatch")
	}
	half := (len(src) + 1) / 2
	for i := range dst {
		if i%2 == 0 {
			dst[i] = src[i/2]
		} else {
			dst[i] = src[half+i/2]
		}
	}
}

// ByteShuffle transposes an 8×N block: output groups byte 0 of every
// float64, then byte 1, etc. This is the Blosc-style shuffle that helps
// dictionary coders find runs in floating-point data.
func ByteShuffle(dst, src []byte) {
	n := len(src) / 8
	if len(dst) < n*8 {
		panic("compress: ByteShuffle short dst")
	}
	for i := 0; i < n; i++ {
		for b := 0; b < 8; b++ {
			dst[b*n+i] = src[i*8+b]
		}
	}
	copy(dst[n*8:], src[n*8:])
}

// ByteUnshuffle reverses ByteShuffle.
func ByteUnshuffle(dst, src []byte) {
	n := len(src) / 8
	if len(dst) < n*8 {
		panic("compress: ByteUnshuffle short dst")
	}
	for i := 0; i < n; i++ {
		for b := 0; b < 8; b++ {
			dst[i*8+b] = src[b*n+i]
		}
	}
	copy(dst[n*8:], src[n*8:])
}

// CheckBound verifies that got respects the error contract of opt against
// want, returning the index of the first violation or -1. Used by tests
// and the harness's self-check mode.
func CheckBound(want, got []float64, opt Options) int {
	if len(want) != len(got) {
		return 0
	}
	for i := range want {
		switch opt.Mode {
		case Lossless:
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				return i
			}
		case Absolute:
			if math.Abs(want[i]-got[i]) > opt.Bound*(1+1e-12) {
				return i
			}
		case PointwiseRelative:
			if math.Abs(want[i]-got[i]) > opt.Bound*math.Abs(want[i])*(1+1e-12) {
				return i
			}
		}
	}
	return -1
}

// Ratio returns the compression ratio raw/compressed for n float64
// values encoded into len(payload) bytes.
func Ratio(n int, payload int) float64 {
	if payload == 0 {
		return math.Inf(1)
	}
	return float64(n*8) / float64(payload)
}
