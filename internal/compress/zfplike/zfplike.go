// Package zfplike implements the domain-transform compression model of
// ZFP (Lindstrom 2014) used by the paper as a comparator (§4.1): data are
// processed in blocks of 4 values per dimension; each block is aligned to
// a common exponent, converted to fixed point, decorrelated with ZFP's
// (non)orthogonal lifting transform, mapped to negabinary, and coded by
// bit planes from most to least significant, truncating planes below the
// error tolerance.
//
// Quantum state vectors are spiky rather than smooth, so the transform
// decorrelates poorly and this codec's ratios trail SZ's by 1–2 orders of
// magnitude — the paper's Fig. 7/8 observation, which the harness
// reproduces. Pointwise-relative bounds are handled by the paper's
// "fairness" preprocessing: a logarithm transform followed by
// absolute-bounded compression of the log-domain data.
package zfplike

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/bitio"
	"qcsim/internal/compress"
)

const magic = 0x46 // 'F'

// blockLen is the ZFP 1D block size.
const blockLen = 4

// fixedPointBits is the headroom-adjusted fixed-point scale: values are
// scaled to q = v * 2^(fixedPointBits - e_max) so two levels of additions
// in the lifting transform cannot overflow int64.
const fixedPointBits = 60

// guardBits is the safety margin on the plane cutoff accounting for the
// lifting transform's worst-case error gain on truncated planes.
const guardBits = 4

// Codec implements the ZFP model.
type Codec struct{}

// New returns a ZFP-model codec.
func New() *Codec { return &Codec{} }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "zfp-like" }

// Compress implements compress.Codec.
func (c *Codec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	hdr := compress.Header{Magic: magic, Mode: opt.Mode, Bound: opt.Bound, Count: uint32(len(src))}
	dst = compress.AppendHeader(dst, hdr)

	switch opt.Mode {
	case compress.Lossless:
		// ZFP's fixed-point pipeline is not lossless on arbitrary
		// doubles; store raw (the paper never runs ZFP lossless).
		raw := make([]byte, 0, len(src)*8)
		for _, v := range src {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		return append(dst, raw...), nil
	case compress.Absolute:
		body, exc := encodeAbs(src, opt.Bound)
		return assemble(dst, 0, body, exc, nil), nil
	case compress.PointwiseRelative:
		// Log-transform preprocessing (paper §4.1). Zeros and signs go
		// to a side stream exactly as in the SZ relative path.
		logs := make([]float64, len(src))
		signs := bitio.NewWriter(len(src)/4 + 8)
		var exc []exception
		for i, v := range src {
			switch {
			case v == 0:
				signs.WriteBits(0, 2)
				logs[i] = 0
			case math.IsNaN(v) || math.IsInf(v, 0):
				signs.WriteBits(3, 2)
				exc = append(exc, exception{uint32(i), math.Float64bits(v)})
				logs[i] = 0
			case v > 0:
				signs.WriteBits(1, 2)
				logs[i] = math.Log(v)
			default:
				signs.WriteBits(2, 2)
				logs[i] = math.Log(-v)
			}
		}
		logBound := math.Log1p(opt.Bound) / 2
		body, exc2 := encodeAbs(logs, logBound)
		exc = append(exc, exc2...)
		return assemble(dst, 1, body, exc, signs.Bytes()), nil
	}
	return nil, fmt.Errorf("zfplike: unsupported mode %v", opt.Mode)
}

type exception struct {
	idx  uint32
	bits uint64
}

// assemble lays out: kind(1) lenSigns(u32) signs nExc(u32) exc body.
func assemble(dst []byte, kind byte, body []byte, exc []exception, signs []byte) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(signs)))
	dst = append(dst, signs...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(exc)))
	for _, e := range exc {
		dst = binary.LittleEndian.AppendUint32(dst, e.idx)
		dst = binary.LittleEndian.AppendUint64(dst, e.bits)
	}
	return append(dst, body...)
}

// encodeAbs compresses xs under an absolute bound, returning the body and
// exceptions for blocks the fixed-point pipeline cannot bound (non-finite
// inputs).
func encodeAbs(xs []float64, bound float64) ([]byte, []exception) {
	w := bitio.NewWriter(len(xs))
	var exc []exception
	var blk [blockLen]float64
	for base := 0; base < len(xs); base += blockLen {
		n := len(xs) - base
		if n > blockLen {
			n = blockLen
		}
		for j := 0; j < blockLen; j++ {
			if j < n {
				blk[j] = xs[base+j]
			} else {
				blk[j] = 0
			}
		}
		encodeBlock(w, &blk, bound, base, &exc)
	}
	return w.Bytes(), exc
}

// encodeBlock encodes one 4-value block:
// allZero(1) [emax(12) firstPlane(7) planes...]
func encodeBlock(w *bitio.Writer, blk *[blockLen]float64, bound float64, base int, exc *[]exception) {
	emax := math.MinInt32
	for j, v := range blk {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			*exc = append(*exc, exception{uint32(base + j), math.Float64bits(v)})
			blk[j] = 0
			continue
		}
		if v != 0 {
			if e := math.Ilogb(v); e > emax {
				emax = e
			}
		}
	}
	if emax == math.MinInt32 {
		w.WriteBit(0) // all-zero block
		return
	}
	w.WriteBit(1)
	// Fixed-point conversion.
	scale := math.Ldexp(1, fixedPointBits-emax)
	var q [blockLen]int64
	for j, v := range blk {
		q[j] = int64(math.Round(v * scale))
	}
	forwardLift(&q)
	var u [blockLen]uint64
	for j, v := range q {
		u[j] = toNegabinary(v)
	}
	// Plane cutoff from the bound: dropping planes < c leaves per-value
	// error ≤ 2^(c+guard) in fixed point, i.e. 2^(c+guard+emax-fixedPointBits).
	cutoff := 0
	if bound > 0 {
		c := int(math.Floor(math.Log2(bound))) + fixedPointBits - emax - guardBits
		if c > 0 {
			cutoff = c
		}
		if cutoff > 63 {
			cutoff = 63
		}
	}
	// Verify the cutoff actually respects the bound on this block
	// (spiky data can defeat the analytic margin); lower it until it
	// does. cutoff 0 leaves only fixed-point rounding error, far below
	// any bound the evaluation uses.
	invScale := math.Ldexp(1, emax-fixedPointBits)
	for cutoff > 0 {
		var tq [blockLen]int64
		for j := 0; j < blockLen; j++ {
			tq[j] = fromNegabinary(u[j] &^ (uint64(1)<<uint(cutoff) - 1))
		}
		inverseLift(&tq)
		ok := true
		for j := 0; j < blockLen; j++ {
			if math.Abs(float64(tq[j])*invScale-blk[j]) > bound {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		cutoff--
	}
	w.WriteBits(uint64(emax+1075), 12) // bias covers double range
	w.WriteBits(uint64(cutoff), 7)
	// Per-coefficient significance: smooth blocks decorrelate into a
	// large average and near-zero differences, so the difference lanes
	// cost almost nothing — the transform-coding payoff ZFP relies on.
	for j := 0; j < blockLen; j++ {
		n := bits64(u[j]) - cutoff
		if n < 0 {
			n = 0
		}
		w.WriteBits(uint64(n), 7)
		if n > 0 {
			w.WriteBits(u[j]>>uint(cutoff), uint(n))
		}
	}
}

// negabinary mask constants: nbMask reinterpreted as int64 is nbMaskS.
const (
	nbMask  uint64 = 0xaaaaaaaaaaaaaaaa
	nbMaskS int64  = -6148914691236517206
)

// toNegabinary maps a two's-complement int64 to its negabinary code.
func toNegabinary(v int64) uint64 { return uint64(v+nbMaskS) ^ nbMask }

// fromNegabinary inverts toNegabinary.
func fromNegabinary(u uint64) int64 { return int64(u^nbMask) - nbMaskS }

// Decompress implements compress.Codec.
func (c *Codec) Decompress(dst []float64, data []byte) error {
	hdr, payload, err := compress.ParseHeader(data, magic)
	if err != nil {
		return err
	}
	if int(hdr.Count) != len(dst) {
		return fmt.Errorf("%w: count %d, dst %d", compress.ErrCorrupt, hdr.Count, len(dst))
	}
	if hdr.Mode == compress.Lossless {
		if len(payload) < len(dst)*8 {
			return fmt.Errorf("%w: raw payload", compress.ErrCorrupt)
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		return nil
	}
	if len(payload) < 1+4 {
		return fmt.Errorf("%w: truncated", compress.ErrCorrupt)
	}
	kind := payload[0]
	payload = payload[1:]
	ns := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < ns+4 {
		return fmt.Errorf("%w: truncated signs", compress.ErrCorrupt)
	}
	signs := payload[:ns]
	payload = payload[ns:]
	nexc := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < nexc*12 {
		return fmt.Errorf("%w: truncated exceptions", compress.ErrCorrupt)
	}
	excs := make([]exception, nexc)
	for i := range excs {
		excs[i].idx = binary.LittleEndian.Uint32(payload)
		excs[i].bits = binary.LittleEndian.Uint64(payload[4:])
		payload = payload[12:]
	}

	vals := make([]float64, len(dst))
	if err := decodeAbs(vals, payload); err != nil {
		return err
	}
	switch kind {
	case 0:
		copy(dst, vals)
	case 1:
		sr := bitio.NewReader(signs)
		for i := range dst {
			code, err := sr.ReadBits(2)
			if err != nil {
				return fmt.Errorf("%w: sign stream", compress.ErrCorrupt)
			}
			switch code {
			case 0:
				dst[i] = 0
			case 1:
				dst[i] = math.Exp(vals[i])
			case 2:
				dst[i] = -math.Exp(vals[i])
			case 3:
				dst[i] = 0 // patched by the exception pass below
			}
		}
	default:
		return fmt.Errorf("%w: kind %d", compress.ErrCorrupt, kind)
	}
	for _, e := range excs {
		if int(e.idx) >= len(dst) {
			return fmt.Errorf("%w: exception index", compress.ErrCorrupt)
		}
		dst[e.idx] = math.Float64frombits(e.bits)
	}
	return nil
}

func decodeAbs(dst []float64, body []byte) error {
	r := bitio.NewReader(body)
	var q [blockLen]int64
	for base := 0; base < len(dst); base += blockLen {
		nz, err := r.ReadBit()
		if err != nil {
			return fmt.Errorf("%w: block header", compress.ErrCorrupt)
		}
		n := len(dst) - base
		if n > blockLen {
			n = blockLen
		}
		if nz == 0 {
			for j := 0; j < n; j++ {
				dst[base+j] = 0
			}
			continue
		}
		emaxB, err := r.ReadBits(12)
		if err != nil {
			return fmt.Errorf("%w: emax", compress.ErrCorrupt)
		}
		emax := int(emaxB) - 1075
		cutoff64, err := r.ReadBits(7)
		if err != nil {
			return fmt.Errorf("%w: cutoff", compress.ErrCorrupt)
		}
		cutoff := int(cutoff64)
		var u [blockLen]uint64
		for j := 0; j < blockLen; j++ {
			nb, err := r.ReadBits(7)
			if err != nil {
				return fmt.Errorf("%w: significance", compress.ErrCorrupt)
			}
			if nb > 64 {
				return fmt.Errorf("%w: significance %d", compress.ErrCorrupt, nb)
			}
			if nb > 0 {
				bits, err := r.ReadBits(uint(nb))
				if err != nil {
					return fmt.Errorf("%w: coefficient bits", compress.ErrCorrupt)
				}
				u[j] = bits << uint(cutoff)
			}
		}
		for j := 0; j < blockLen; j++ {
			q[j] = fromNegabinary(u[j])
		}
		inverseLift(&q)
		scale := math.Ldexp(1, emax-fixedPointBits)
		for j := 0; j < n; j++ {
			dst[base+j] = float64(q[j]) * scale
		}
	}
	return nil
}

// forwardLift is ZFP's 1D forward decorrelating transform.
func forwardLift(p *[blockLen]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// inverseLift exactly inverts forwardLift.
func inverseLift(p *[blockLen]int64) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// bits64 returns the position of the highest set bit + 1 (0 for zero).
func bits64(u uint64) int {
	n := 0
	for u != 0 {
		u >>= 1
		n++
	}
	return n
}
