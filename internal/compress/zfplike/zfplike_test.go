package zfplike

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcsim/internal/compress"
	"qcsim/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	c := New()
	codectest.ConformanceLossless(t, c)
	codectest.ConformanceLossy(t, c, compress.Absolute)
	codectest.ConformanceLossy(t, c, compress.PointwiseRelative)
	codectest.ConformanceEmptyAndSmall(t, c)
	codectest.ConformanceCorrupt(t, c)
}

func TestLiftRoundTripNearExact(t *testing.T) {
	// The lifting transform loses at most the low bit per butterfly;
	// verify inverse(forward(q)) is within a few ulps in fixed point.
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 2000; iter++ {
		var q, orig [blockLen]int64
		for j := range q {
			q[j] = int64(rng.Uint64() >> 8) // leave headroom
			if rng.Intn(2) == 0 {
				q[j] = -q[j]
			}
			orig[j] = q[j]
		}
		forwardLift(&q)
		inverseLift(&q)
		for j := range q {
			if d := q[j] - orig[j]; d > 8 || d < -8 {
				t.Fatalf("iter %d lane %d: drift %d", iter, j, d)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64 / 4, math.MinInt64 / 4}
	for _, v := range cases {
		if got := fromNegabinary(toNegabinary(v)); got != v {
			t.Fatalf("negabinary(%d) -> %d", v, got)
		}
	}
	f := func(v int64) bool { return fromNegabinary(toNegabinary(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothBeatsSpiky(t *testing.T) {
	// ZFP's transform decorrelates smooth data; spiky data (the paper's
	// point) should compress much worse at the same bound.
	n := 1 << 12
	smooth := make([]float64, n)
	spiky := make([]float64, n)
	rng := rand.New(rand.NewSource(61))
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 100)
		spiky[i] = rng.NormFloat64() * math.Exp(rng.Float64()*10-5)
	}
	c := New()
	opt := compress.Options{Mode: compress.Absolute, Bound: 1e-4}
	ps, err := c.Compress(nil, smooth, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Scale spiky bound by its range, like the paper's range-relative
	// absolute bounds.
	lo, hi := -1.0, 1.0
	for _, v := range spiky {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	pp, err := c.Compress(nil, spiky, compress.Options{Mode: compress.Absolute, Bound: 1e-4 * (hi - lo)})
	if err != nil {
		t.Fatal(err)
	}
	rs := compress.Ratio(n, len(ps))
	rp := compress.Ratio(n, len(pp))
	if rs <= rp {
		t.Fatalf("smooth ratio %.2f should exceed spiky ratio %.2f", rs, rp)
	}
}

func TestAllZeroBlocksAreCheap(t *testing.T) {
	data := make([]float64, 1<<14)
	c := New()
	p, err := c.Compress(nil, data, compress.Options{Mode: compress.Absolute, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// One "all-zero" flag bit per 4 doubles caps the ratio at 256:1
	// before header overhead.
	if r := compress.Ratio(len(data), len(p)); r < 200 {
		t.Fatalf("all-zero ratio = %.1f", r)
	}
}

func TestMixedExponentsBounded(t *testing.T) {
	// A block mixing 1e300 and 1e-300 stresses exponent alignment: the
	// tiny value may be crushed to zero, which the absolute bound
	// permits but must not exceed.
	data := []float64{1e300, 1e-300, -1e299, 5e-301, 1, 2, 3, 4}
	opt := compress.Options{Mode: compress.Absolute, Bound: 1e290}
	codectest.RoundTrip(t, New(), data, opt)
}

func TestQuickAbsoluteContract(t *testing.T) {
	c := New()
	f := func(raw []float64, boundSel uint8) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		lo, hi := data[0], data[0]
		for _, v := range data {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		r := hi - lo
		if r == 0 {
			r = math.Abs(hi)
			if r == 0 {
				r = 1
			}
		}
		bounds := []float64{1e-1, 1e-2, 1e-3}
		opt := compress.Options{Mode: compress.Absolute, Bound: bounds[int(boundSel)%len(bounds)] * r}
		p, err := c.Compress(nil, data, opt)
		if err != nil {
			return false
		}
		out := make([]float64, len(data))
		if err := c.Decompress(out, p); err != nil {
			return false
		}
		return compress.CheckBound(data, out, opt) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	codectest.ConformanceConcurrent(t, New())
}
