package lossless

import (
	"compress/flate"
	"testing"

	"qcsim/internal/compress"
	"qcsim/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	codectest.ConformanceLossless(t, New(flate.DefaultCompression, false))
	codectest.ConformanceLossless(t, New(flate.BestSpeed, true))
	codectest.ConformanceEmptyAndSmall(t, New(0, false))
	codectest.ConformanceCorrupt(t, New(0, true))
}

func TestLossyModeIsStillExact(t *testing.T) {
	// A lossless codec asked for a lossy bound must still reconstruct
	// exactly (the simulator's level-0 path).
	c := New(0, false)
	data := codectest.Datasets(1024, 5)[8].Data // gaussian
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-1})
	for i := range data {
		if data[i] != out[i] {
			t.Fatalf("index %d not exact", i)
		}
	}
}

func TestZerosCompressWell(t *testing.T) {
	// §3.7: early simulation states are mostly zero and must compress
	// heavily under the lossless stage.
	data := make([]float64, 1<<14)
	data[3] = 1
	c := New(0, false)
	payload, err := c.Compress(nil, data, compress.Options{Mode: compress.Lossless})
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(data), len(payload)); r < 100 {
		t.Fatalf("zero-dominated block ratio = %.1f, want ≥ 100", r)
	}
}

func TestShuffleHelpsConstantData(t *testing.T) {
	data := make([]float64, 4096)
	for i := range data {
		data[i] = 0.0078125 + float64(i%2)*1e-9
	}
	plain := New(0, false)
	shuf := New(0, true)
	p1, err := plain.Compress(nil, data, compress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shuf.Compress(nil, data, compress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Byte shuffle should not be catastrophically worse; on this highly
	// regular data both compress far below raw size.
	if len(p1) > len(data)*2 || len(p2) > len(data)*2 {
		t.Fatalf("regular data compressed poorly: plain=%d shuffle=%d raw=%d", len(p1), len(p2), len(data)*8)
	}
}

func TestName(t *testing.T) {
	if New(0, false).Name() != "zstd-like" || New(0, true).Name() != "zstd-like+shuffle" {
		t.Fatal("names changed")
	}
}

func TestConcurrentCompress(t *testing.T) {
	c := New(0, false)
	data := codectest.Datasets(512, 9)[5].Data
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				p, err := c.Compress(nil, data, compress.Options{})
				if err != nil {
					done <- err
					return
				}
				out := make([]float64, len(data))
				if err := c.Decompress(out, p); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentUseConformance(t *testing.T) {
	codectest.ConformanceConcurrent(t, New(0, false))
}
