// Package lossless provides the repository's Zstandard substitute: a
// DEFLATE-backed lossless codec with an optional Blosc-style byte
// shuffle. The paper compresses early-stage (mostly zero) state vectors
// with Zstd before switching to lossy compression (§3.7); DEFLATE is the
// same LZ77+entropy-coding family available in the Go standard library.
package lossless

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/compress"
)

const magic = 0x5A // 'Z'

// Codec is a lossless float64 block compressor. The zero value is valid;
// use New for explicit construction. Codecs are safe for concurrent use.
type Codec struct {
	// Shuffle enables the byte-transpose preprocessing pass.
	Shuffle bool

	flate compress.FlatePool
}

// New returns a lossless codec at the given flate level (0 =
// flate.BestSpeed) with optional byte shuffling.
func New(level int, shuffle bool) *Codec {
	return &Codec{Shuffle: shuffle, flate: compress.FlatePool{Level: level}}
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if c.Shuffle {
		return "zstd-like+shuffle"
	}
	return "zstd-like"
}

// Compress implements compress.Codec. The mode in opt is recorded in the
// header but reconstruction is always bit-exact.
func (c *Codec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	hdr := compress.Header{Magic: magic, Mode: compress.Lossless, Count: uint32(len(src))}
	dst = compress.AppendHeader(dst, hdr)
	dst = append(dst, boolByte(c.Shuffle))

	raw := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	if c.Shuffle {
		sh := make([]byte, len(raw))
		compress.ByteShuffle(sh, raw)
		raw = sh
	}
	return c.flate.Deflate(dst, raw)
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(dst []float64, data []byte) error {
	hdr, payload, err := compress.ParseHeader(data, magic)
	if err != nil {
		return err
	}
	if int(hdr.Count) != len(dst) {
		return fmt.Errorf("%w: count %d, dst %d", compress.ErrCorrupt, hdr.Count, len(dst))
	}
	if len(payload) < 1 {
		return fmt.Errorf("%w: missing shuffle flag", compress.ErrCorrupt)
	}
	shuffled := payload[0] != 0
	payload = payload[1:]

	raw := make([]byte, len(dst)*8)
	if err := compress.InflateInto(raw, payload); err != nil {
		return err
	}
	if shuffled {
		un := make([]byte, len(raw))
		compress.ByteUnshuffle(un, raw)
		raw = un
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
