// Package fpziplike implements the FPZIP compression model (Lindstrom &
// Isenburg 2006) used by the paper as a comparator (§4.1): predictive
// coding of floating-point values mapped to a monotonic integer domain,
// with lossy operation controlled by a *precision* — the number of
// significant leading bits kept per value. The paper maps precisions
// 16/18/22/24/28 to pointwise relative bounds 1E-1…1E-5; this package
// exposes both knobs.
package fpziplike

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/bitio"
	"qcsim/internal/compress"
)

const magic = 0x50 // 'P'

// signExpBits is the sign+exponent width of an IEEE 754 double.
const signExpBits = 12

// Codec implements the FPZIP model.
type Codec struct {
	// Precision, when nonzero, fixes the number of significant bits
	// kept (4..64) regardless of Options.Bound, matching FPZIP's
	// native interface. When zero, precision is derived from the
	// pointwise relative bound.
	Precision int

	flate compress.FlatePool
}

// New returns a bound-driven FPZIP-model codec.
func New() *Codec { return &Codec{} }

// NewPrecision returns a codec pinned at an explicit FPZIP precision.
func NewPrecision(p int) *Codec { return &Codec{Precision: p} }

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if c.Precision != 0 {
		return fmt.Sprintf("fpzip-like(prec=%d)", c.Precision)
	}
	return "fpzip-like"
}

// PrecisionFor returns the FPZIP precision needed to honor a pointwise
// relative bound ε: 12 sign+exponent bits plus ceil(log2(1/ε)) mantissa
// bits.
func PrecisionFor(eps float64) int {
	m := int(math.Ceil(math.Log2(1 / eps)))
	if m < 0 {
		m = 0
	}
	p := signExpBits + m
	if p > 64 {
		p = 64
	}
	return p
}

// RelativeBoundFor returns the pointwise relative error bound implied by
// an FPZIP precision (the inverse of PrecisionFor).
func RelativeBoundFor(prec int) float64 {
	if prec >= 64 {
		return 0
	}
	m := prec - signExpBits
	if m < 0 {
		m = 0
	}
	return math.Ldexp(1, -m)
}

func (c *Codec) precision(opt compress.Options) (int, error) {
	if c.Precision != 0 {
		if c.Precision < 4 || c.Precision > 64 {
			return 0, fmt.Errorf("fpziplike: precision %d out of range", c.Precision)
		}
		return c.Precision, nil
	}
	switch opt.Mode {
	case compress.Lossless:
		return 64, nil
	case compress.PointwiseRelative:
		return PrecisionFor(opt.Bound), nil
	default:
		return 0, fmt.Errorf("fpziplike: mode %v unsupported (FPZIP controls error by precision)", opt.Mode)
	}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	prec, err := c.precision(opt)
	if err != nil {
		return nil, err
	}
	hdr := compress.Header{Magic: magic, Mode: opt.Mode, Bound: opt.Bound, Count: uint32(len(src))}
	dst = compress.AppendHeader(dst, hdr)

	truncMask := ^uint64(0)
	if prec < 64 {
		truncMask <<= uint(64 - prec)
	}
	// Residual coding in the monotone-integer domain.
	w := bitio.NewWriter(len(src) * 4)
	var exceptions []byte
	nexc := 0
	var prev uint64
	checkBound := opt.Mode == compress.PointwiseRelative && c.Precision == 0
	epsilon := opt.Bound
	if c.Precision != 0 {
		// Explicit precision defines its own bound for the exception
		// check (used only for non-finite values then).
		epsilon = math.Inf(1)
	}
	for i, v := range src {
		bits := math.Float64bits(v)
		t := bits & truncMask
		rec := math.Float64frombits(t)
		bad := math.IsNaN(v) || math.IsInf(v, 0)
		if !bad && checkBound && math.Abs(v-rec) > epsilon*math.Abs(v) {
			bad = true // denormal underflow of the precision contract
		}
		if bad && prec < 64 {
			exceptions = binary.LittleEndian.AppendUint32(exceptions, uint32(i))
			exceptions = binary.LittleEndian.AppendUint64(exceptions, bits)
			nexc++
		}
		u := monotone(t)
		d := u - prev // wrapping residual
		prev = u
		writeResidual(w, zigzag(d))
	}
	w.Align()

	var pre []byte
	pre = append(pre, byte(prec))
	pre = binary.LittleEndian.AppendUint32(pre, uint32(nexc))
	pre = append(pre, exceptions...)
	pre = append(pre, w.Bytes()...)

	return c.flate.Deflate(dst, pre)
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(dst []float64, data []byte) error {
	hdr, payload, err := compress.ParseHeader(data, magic)
	if err != nil {
		return err
	}
	if int(hdr.Count) != len(dst) {
		return fmt.Errorf("%w: count %d, dst %d", compress.ErrCorrupt, hdr.Count, len(dst))
	}
	pre, err := compress.Inflate(payload)
	if err != nil {
		return err
	}
	if len(pre) < 1+4 {
		return fmt.Errorf("%w: truncated", compress.ErrCorrupt)
	}
	prec := int(pre[0])
	if prec < 4 || prec > 64 {
		return fmt.Errorf("%w: precision %d", compress.ErrCorrupt, prec)
	}
	nexc := int(binary.LittleEndian.Uint32(pre[1:]))
	pre = pre[5:]
	if len(pre) < nexc*12 {
		return fmt.Errorf("%w: truncated exceptions", compress.ErrCorrupt)
	}
	type exc struct {
		idx  uint32
		bits uint64
	}
	excs := make([]exc, nexc)
	for i := range excs {
		excs[i].idx = binary.LittleEndian.Uint32(pre)
		excs[i].bits = binary.LittleEndian.Uint64(pre[4:])
		pre = pre[12:]
	}
	br := bitio.NewReader(pre)
	var prev uint64
	for i := range dst {
		z, err := readResidual(br)
		if err != nil {
			return fmt.Errorf("%w: residual stream: %v", compress.ErrCorrupt, err)
		}
		u := prev + unzigzag(z)
		prev = u
		dst[i] = math.Float64frombits(unmonotone(u))
	}
	for _, e := range excs {
		if int(e.idx) >= len(dst) {
			return fmt.Errorf("%w: exception index", compress.ErrCorrupt)
		}
		dst[e.idx] = math.Float64frombits(e.bits)
	}
	return nil
}

// writeResidual emits a 7-bit bit-length (0..64) followed by that many
// bits of the zigzagged residual.
func writeResidual(w *bitio.Writer, z uint64) {
	n := bits64(z)
	w.WriteBits(uint64(n), 7)
	if n > 0 {
		w.WriteBits(z, uint(n))
	}
}

func readResidual(r *bitio.Reader) (uint64, error) {
	n, err := r.ReadBits(7)
	if err != nil {
		return 0, err
	}
	if n > 64 {
		return 0, fmt.Errorf("residual length %d", n)
	}
	if n == 0 {
		return 0, nil
	}
	return r.ReadBits(uint(n))
}

// monotone maps IEEE 754 bit patterns to an order-preserving unsigned
// integer domain (negative values reversed).
func monotone(bits uint64) uint64 {
	if bits>>63 != 0 {
		return ^bits
	}
	return bits | 0x8000000000000000
}

// unmonotone inverts monotone.
func unmonotone(u uint64) uint64 {
	if u>>63 != 0 {
		return u &^ 0x8000000000000000
	}
	return ^u
}

func zigzag(d uint64) uint64 {
	s := int64(d)
	return uint64((s << 1) ^ (s >> 63))
}

func unzigzag(z uint64) uint64 {
	return (z >> 1) ^ uint64(-(int64(z & 1)))
}

// bits64 returns the position of the highest set bit + 1 (0 for zero).
func bits64(u uint64) int {
	n := 0
	for u != 0 {
		u >>= 1
		n++
	}
	return n
}
