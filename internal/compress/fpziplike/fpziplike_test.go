package fpziplike

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcsim/internal/compress"
	"qcsim/internal/compress/codectest"
)

func TestConformance(t *testing.T) {
	c := New()
	codectest.ConformanceLossless(t, c)
	codectest.ConformanceLossy(t, c, compress.PointwiseRelative)
	codectest.ConformanceEmptyAndSmall(t, c)
	codectest.ConformanceCorrupt(t, c)
	codectest.ConformanceNonFinite(t, c, compress.PointwiseRelative)
}

func TestAbsoluteModeRejected(t *testing.T) {
	// FPZIP has no absolute-error mode (the paper's Fig. 7 omits it for
	// exactly this reason).
	if _, err := New().Compress(nil, []float64{1}, compress.Options{Mode: compress.Absolute, Bound: 1}); err == nil {
		t.Fatal("absolute mode accepted")
	}
}

func TestMonotoneMapOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ua := monotone(math.Float64bits(a))
		ub := monotone(math.Float64bits(b))
		if a < b {
			return ua < ub
		}
		if a > b {
			return ua > ub
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneRoundTrip(t *testing.T) {
	f := func(bits uint64) bool { return unmonotone(monotone(bits)) == bits }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(d uint64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small residuals map to small codes.
	if zigzag(1) != 2 || zigzag(^uint64(0)) != 1 {
		t.Fatalf("zigzag(±1) = %d, %d", zigzag(1), zigzag(^uint64(0)))
	}
}

func TestPrecisionMapping(t *testing.T) {
	// Paper §4.1: precisions 16/18/22/24/28 ≈ bounds 1E-1…1E-5.
	pairs := []struct {
		prec  int
		bound float64
	}{
		{16, 1e-1}, {18, 1e-2}, {22, 1e-3}, {26, 1e-4}, {28, 1e-5},
	}
	for _, p := range pairs {
		if got := RelativeBoundFor(p.prec); got > p.bound*4 {
			t.Errorf("RelativeBoundFor(%d) = %g, far above %g", p.prec, got, p.bound)
		}
	}
	if PrecisionFor(1e-2) != 19 {
		t.Errorf("PrecisionFor(1e-2) = %d", PrecisionFor(1e-2))
	}
	if PrecisionFor(1) != 12 {
		t.Errorf("PrecisionFor(1) = %d", PrecisionFor(1))
	}
}

func TestExplicitPrecisionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, prec := range []int{16, 18, 22, 24, 28, 64} {
		c := NewPrecision(prec)
		p, err := c.Compress(nil, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1})
		if err != nil {
			t.Fatalf("prec %d: %v", prec, err)
		}
		out := make([]float64, len(data))
		if err := c.Decompress(out, p); err != nil {
			t.Fatalf("prec %d: %v", prec, err)
		}
		bound := RelativeBoundFor(prec)
		for i := range data {
			if math.Abs(out[i]-data[i]) > bound*math.Abs(data[i])*(1+1e-12) {
				t.Fatalf("prec %d idx %d: %g -> %g (bound %g)", prec, i, data[i], out[i], bound)
			}
		}
	}
}

func TestHigherPrecisionCostsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	var prev int
	for _, prec := range []int{16, 22, 28, 40} {
		p, err := NewPrecision(prec).Compress(nil, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(p) < prev {
			t.Fatalf("precision %d produced smaller payload (%d < %d)", prec, len(p), prev)
		}
		prev = len(p)
	}
}

func TestInvalidPrecision(t *testing.T) {
	for _, prec := range []int{1, 3, 65, -4} {
		c := NewPrecision(prec)
		if _, err := c.Compress(nil, []float64{1}, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-2}); err == nil {
			t.Fatalf("precision %d accepted", prec)
		}
	}
}

func TestQuickContract(t *testing.T) {
	c := New()
	f := func(raw []float64, boundSel uint8) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		bounds := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
		opt := compress.Options{Mode: compress.PointwiseRelative, Bound: bounds[int(boundSel)%len(bounds)]}
		p, err := c.Compress(nil, data, opt)
		if err != nil {
			return false
		}
		out := make([]float64, len(data))
		if err := c.Decompress(out, p); err != nil {
			return false
		}
		return compress.CheckBound(data, out, opt) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	codectest.ConformanceConcurrent(t, New())
}
