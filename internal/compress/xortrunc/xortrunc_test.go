package xortrunc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcsim/internal/compress"
	"qcsim/internal/compress/codectest"
	"qcsim/internal/stats"
)

func TestConformanceC(t *testing.T) {
	c := New()
	codectest.ConformanceLossless(t, c)
	codectest.ConformanceLossy(t, c, compress.PointwiseRelative)
	codectest.ConformanceLossy(t, c, compress.Absolute)
	codectest.ConformanceEmptyAndSmall(t, c)
	codectest.ConformanceCorrupt(t, c)
	codectest.ConformanceNonFinite(t, c, compress.PointwiseRelative)
}

func TestConformanceD(t *testing.T) {
	d := NewShuffled()
	codectest.ConformanceLossless(t, d)
	codectest.ConformanceLossy(t, d, compress.PointwiseRelative)
	codectest.ConformanceLossy(t, d, compress.Absolute)
	codectest.ConformanceEmptyAndSmall(t, d)
	codectest.ConformanceCorrupt(t, d)
	codectest.ConformanceNonFinite(t, d, compress.PointwiseRelative)
}

func TestKeepBits(t *testing.T) {
	// Paper Eq. 12: Sig_Bit_Count = Bit_Count(Sign&Exp) - EXP(ε).
	cases := []struct {
		bound float64
		want  int
	}{
		{1e-1, 12 + 4},  // 2^-4 = 0.0625 ≤ 0.1
		{1e-2, 12 + 7},  // 2^-7 ≈ 0.0078 ≤ 0.01
		{1e-3, 12 + 10}, // 2^-10 ≈ 0.00098
		{1e-4, 12 + 14},
		{1e-5, 12 + 17},
	}
	for _, c := range cases {
		got := KeepBits(compress.Options{Mode: compress.PointwiseRelative, Bound: c.bound}, 0)
		if got != c.want {
			t.Errorf("KeepBits(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
	if KeepBits(compress.Options{Mode: compress.Lossless}, 0) != 64 {
		t.Error("lossless KeepBits != 64")
	}
}

func TestOneSidedContract(t *testing.T) {
	// Paper §3.7: |D'| must lie in [|D|(1-δ), |D|] — truncation only
	// shrinks magnitudes.
	rng := rand.New(rand.NewSource(21))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Exp(rng.Float64()*6-3)
	}
	c := New()
	for _, bound := range []float64{1e-1, 1e-3, 1e-5} {
		opt := compress.Options{Mode: compress.PointwiseRelative, Bound: bound}
		out := codectest.RoundTrip(t, c, data, opt)
		for i := range data {
			if math.Abs(out[i]) > math.Abs(data[i]) {
				t.Fatalf("bound %g idx %d: |out| %g > |in| %g", bound, i, out[i], data[i])
			}
			if math.Abs(out[i]) < math.Abs(data[i])*(1-bound) {
				t.Fatalf("bound %g idx %d: out %g below one-sided floor of %g", bound, i, out[i], data[i])
			}
			if math.Signbit(out[i]) != math.Signbit(data[i]) {
				t.Fatalf("sign flipped at %d", i)
			}
		}
	}
}

func TestErrorsUncorrelated(t *testing.T) {
	// Paper §4.2: lag-1 autocorrelation of Solution C's relative errors
	// on dense random data stays near zero.
	rng := rand.New(rand.NewSource(33))
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	c := New()
	opt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	out := codectest.RoundTrip(t, c, data, opt)
	errs := make([]float64, len(data))
	for i := range data {
		errs[i] = (data[i] - out[i]) / data[i]
	}
	if r := math.Abs(stats.Lag1Autocorrelation(errs)); r > 0.01 {
		t.Fatalf("lag-1 autocorrelation = %g, want ≈ 0", r)
	}
}

func TestErrorsRoughlyUniform(t *testing.T) {
	// Paper Fig. 14: normalized errors follow a uniform distribution.
	// Within a single binade the dropped mantissa bits are iid uniform,
	// so the *absolute* truncation error is uniform on [0, 2^(E-m));
	// sample magnitudes from [1, 2) to pin the binade.
	rng := rand.New(rand.NewSource(34))
	data := make([]float64, 1<<15)
	for i := range data {
		data[i] = 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			data[i] = -data[i]
		}
	}
	c := New()
	bound := 1e-2
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
	var abs []float64
	for i := range data {
		abs = append(abs, math.Abs(data[i]-out[i]))
	}
	_, hi := stats.MinMax(abs)
	if hi > bound*2 { // |v| < 2 ⇒ abs error < 2·bound-ish ceiling
		t.Fatalf("absolute error %g implausibly large", hi)
	}
	if d := stats.UniformityKS(abs, 0, hi); d > 0.02 {
		t.Fatalf("KS distance from uniform = %g", d)
	}
	// And across binades the normalized error must never exceed 1.
	for i := range data {
		if n := math.Abs(data[i]-out[i]) / (math.Abs(data[i]) * bound); n > 1 {
			t.Fatalf("normalized error %g exceeds 1 at %d", n, i)
		}
	}
}

func TestOverPreservation(t *testing.T) {
	// Fig. 13/14: mean achieved error is well below the bound because
	// truncation snaps to discrete bit planes.
	rng := rand.New(rand.NewSource(35))
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	c := New()
	bound := 1e-1
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
	var sum float64
	n := 0
	for i := range data {
		if data[i] != 0 {
			sum += math.Abs(data[i]-out[i]) / math.Abs(data[i])
			n++
		}
	}
	if mean := sum / float64(n); mean > bound/2 {
		t.Fatalf("mean error %g not over-preserved vs bound %g", mean, bound)
	}
}

func TestFig13WorkedExample(t *testing.T) {
	// The paper's Fig. 13(b) uses 3.9921875 with ε = 0.01: the kept
	// reconstruction must satisfy the bound with error ≤ 0.01.
	data := []float64{3.9921875, 3.9921875}
	c := New()
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 0.01})
	rel := (data[0] - out[0]) / data[0]
	if rel < 0 || rel > 0.01 {
		t.Fatalf("relative error %g outside (0, 0.01]", rel)
	}
}

func TestSolutionDEqualErrors(t *testing.T) {
	// §4.2: C and D produce exactly the same compression errors — the
	// reshuffle only reorders bytes for the dictionary stage.
	rng := rand.New(rand.NewSource(36))
	data := make([]float64, 2048)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	opt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	outC := codectest.RoundTrip(t, New(), data, opt)
	outD := codectest.RoundTrip(t, NewShuffled(), data, opt)
	for i := range outC {
		if math.Float64bits(outC[i]) != math.Float64bits(outD[i]) {
			t.Fatalf("C and D diverge at %d: %g vs %g", i, outC[i], outD[i])
		}
	}
}

func TestRatioImprovesWithLooserBound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = rng.NormFloat64() * 1e-4
	}
	c := New()
	var prev float64 = -1
	for _, bound := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		p, err := c.Compress(nil, data, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
		if err != nil {
			t.Fatal(err)
		}
		r := compress.Ratio(len(data), len(p))
		if r < prev*0.95 { // allow tiny nonmonotonicity from flate
			t.Fatalf("ratio fell from %.2f to %.2f when loosening to %g", prev, r, bound)
		}
		prev = r
	}
}

func TestDenormalsViaExceptions(t *testing.T) {
	data := []float64{5e-324, 1e-310, -3e-320, 1.5, 0}
	c := New()
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-5})
	for i := range data {
		if math.Abs(out[i]-data[i]) > 1e-5*math.Abs(data[i]) {
			t.Fatalf("denormal %d: %g -> %g", i, data[i], out[i])
		}
	}
}

func TestDisableLossless(t *testing.T) {
	c := &Codec{DisableLossless: true}
	data := codectest.Datasets(1024, 41)[8].Data
	out := codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-2})
	_ = out
}

func TestQuickContract(t *testing.T) {
	c := New()
	f := func(raw []float64, boundSel uint8) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		bounds := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
		opt := compress.Options{Mode: compress.PointwiseRelative, Bound: bounds[int(boundSel)%len(bounds)]}
		p, err := c.Compress(nil, data, opt)
		if err != nil {
			return false
		}
		out := make([]float64, len(data))
		if err := c.Decompress(out, p); err != nil {
			return false
		}
		return compress.CheckBound(data, out, opt) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	codectest.ConformanceConcurrent(t, New())
	codectest.ConformanceConcurrent(t, NewShuffled())
}
