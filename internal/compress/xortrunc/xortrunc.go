// Package xortrunc implements the paper's tailored lossy compressor —
// Solution C (§4.2): XOR leading-zero byte reduction (FPC-style two-bit
// codes) + bit-plane truncation driven by the pointwise relative error
// bound (Eq. 12) + a final lossless dictionary pass. Solution D is the
// same pipeline with the real/imaginary reshuffle preprocessing step.
//
// Truncation zeroes low-order mantissa bits, so the reconstructed value
// satisfies the paper's one-sided contract |d'| ∈ [|d|(1-ε), |d|]: keeping
// m mantissa bits bounds the relative error by 2^-m. Because the dropped
// bits of quantum state data are effectively random, the errors are
// uniform on (0, ε] and uncorrelated (paper Fig. 14), which the tests and
// the Fig. 14 harness verify.
package xortrunc

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/bitio"
	"qcsim/internal/compress"
)

const magic = 0x43 // 'C'

// signExpBits is the sign+exponent width of IEEE 754 double precision
// (Bit_Count(Sign&Exp) in the paper's Eq. 12).
const signExpBits = 12

// Codec implements Solutions C (Shuffle=false) and D (Shuffle=true).
// Codecs are safe for concurrent use.
type Codec struct {
	// Shuffle enables the Solution-D de-interleave of real and
	// imaginary parts before the XOR/truncation pipeline.
	Shuffle bool
	// DisableLossless skips the final flate pass (useful for isolating
	// the truncation stage in ablation benchmarks).
	DisableLossless bool

	flate compress.FlatePool
}

// New returns a Solution-C codec; NewShuffled returns Solution D.
func New() *Codec         { return &Codec{} }
func NewShuffled() *Codec { return &Codec{Shuffle: true} }

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if c.Shuffle {
		return "xor-d"
	}
	return "xor-c"
}

// KeepBits returns the number of significant leading bits retained for a
// given options set, the paper's Sig_Bit_Count (Eq. 12): sign+exponent
// bits minus the exponent of the relative error bound. maxExp is the
// largest base-2 exponent in the block, used only in Absolute mode.
func KeepBits(opt compress.Options, maxExp int) int {
	switch opt.Mode {
	case compress.Lossless:
		return 64
	case compress.PointwiseRelative:
		m := int(math.Ceil(math.Log2(1 / opt.Bound)))
		if m < 0 {
			m = 0
		}
		k := signExpBits + m
		if k > 64 {
			k = 64
		}
		return k
	case compress.Absolute:
		// Keep mantissa bits so that 2^(maxExp-m) ≤ bound; values with
		// smaller exponents then have strictly smaller absolute error.
		m := maxExp - int(math.Floor(math.Log2(opt.Bound)))
		if m < 0 {
			m = 0
		}
		k := signExpBits + m
		if k > 64 {
			k = 64
		}
		return k
	default:
		return 64
	}
}

type exception struct {
	idx  uint32
	bits uint64
}

// Compress implements compress.Codec.
func (c *Codec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	hdr := compress.Header{Magic: magic, Mode: opt.Mode, Bound: opt.Bound, Count: uint32(len(src))}
	dst = compress.AppendHeader(dst, hdr)

	vals := src
	if c.Shuffle {
		vals = make([]float64, len(src))
		compress.Shuffle(vals, src)
	}

	maxExp := -1075
	if opt.Mode == compress.Absolute {
		for _, v := range vals {
			if v != 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				if e := math.Ilogb(v); e > maxExp {
					maxExp = e
				}
			}
		}
	}
	keep := KeepBits(opt, maxExp)
	nbytes := (keep + 7) / 8
	truncMask := ^uint64(0)
	if keep < 64 {
		truncMask <<= uint(64 - keep)
	}

	// Stage 1+2: truncate and XOR-encode into a 2-bit code stream and a
	// byte body, collecting exceptions for values the truncation cannot
	// bound (denormals under a relative bound, non-finite values).
	codes := bitio.NewWriter(len(vals)/4 + 8)
	body := make([]byte, 0, len(vals)*nbytes)
	var exceptions []exception
	var prev uint64
	for i, v := range vals {
		bits := math.Float64bits(v)
		t := bits & truncMask
		if violates(v, t, opt) {
			exceptions = append(exceptions, exception{uint32(i), bits})
			// The truncated form still participates in the XOR chain so
			// the decoder's chain state matches.
		}
		x := t ^ prev
		prev = t
		lead := leadingSameBytes(x)
		if lead > 3 {
			lead = 3
		}
		if lead > nbytes {
			lead = nbytes
		}
		codes.WriteBits(uint64(lead), 2)
		for b := lead; b < nbytes; b++ {
			body = append(body, byte(x>>uint(56-8*b)))
		}
	}

	// Assemble the pre-lossless payload.
	var pre []byte
	pre = append(pre, boolByte(c.Shuffle), byte(keep))
	pre = binary.LittleEndian.AppendUint32(pre, uint32(len(exceptions)))
	for _, e := range exceptions {
		pre = binary.LittleEndian.AppendUint32(pre, e.idx)
		pre = binary.LittleEndian.AppendUint64(pre, e.bits)
	}
	codeBytes := codes.Bytes()
	pre = binary.LittleEndian.AppendUint32(pre, uint32(len(codeBytes)))
	pre = append(pre, codeBytes...)
	pre = append(pre, body...)

	if c.DisableLossless {
		dst = append(dst, 0)
		return append(dst, pre...), nil
	}
	dst = append(dst, 1)
	// Stage 3: lossless dictionary pass (the paper's Zstd stage).
	return c.flate.Deflate(dst, pre)
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(dst []float64, data []byte) error {
	hdr, payload, err := compress.ParseHeader(data, magic)
	if err != nil {
		return err
	}
	if int(hdr.Count) != len(dst) {
		return fmt.Errorf("%w: count %d, dst %d", compress.ErrCorrupt, hdr.Count, len(dst))
	}
	if len(payload) < 1 {
		return fmt.Errorf("%w: truncated", compress.ErrCorrupt)
	}
	flated := payload[0] != 0
	payload = payload[1:]
	var pre []byte
	if flated {
		pre, err = compress.Inflate(payload)
		if err != nil {
			return err
		}
	} else {
		pre = payload
	}

	if len(pre) < 2+4 {
		return fmt.Errorf("%w: truncated preamble", compress.ErrCorrupt)
	}
	shuffled := pre[0] != 0
	keep := int(pre[1])
	if keep < 1 || keep > 64 {
		return fmt.Errorf("%w: keep bits %d", compress.ErrCorrupt, keep)
	}
	nbytes := (keep + 7) / 8
	pre = pre[2:]
	nexc := binary.LittleEndian.Uint32(pre)
	pre = pre[4:]
	if len(pre) < int(nexc)*12+4 {
		return fmt.Errorf("%w: truncated exceptions", compress.ErrCorrupt)
	}
	exceptions := make([]exception, nexc)
	for i := range exceptions {
		exceptions[i].idx = binary.LittleEndian.Uint32(pre)
		exceptions[i].bits = binary.LittleEndian.Uint64(pre[4:])
		pre = pre[12:]
	}
	codeLen := binary.LittleEndian.Uint32(pre)
	pre = pre[4:]
	if len(pre) < int(codeLen) {
		return fmt.Errorf("%w: truncated code stream", compress.ErrCorrupt)
	}
	codes := bitio.NewReader(pre[:codeLen])
	body := pre[codeLen:]

	vals := dst
	if shuffled {
		vals = make([]float64, len(dst))
	}
	var prev uint64
	bi := 0
	for i := range vals {
		lead64, err := codes.ReadBits(2)
		if err != nil {
			return fmt.Errorf("%w: code stream", compress.ErrCorrupt)
		}
		lead := int(lead64)
		if lead > nbytes {
			lead = nbytes
		}
		var x uint64
		for b := lead; b < nbytes; b++ {
			if bi >= len(body) {
				return fmt.Errorf("%w: body stream", compress.ErrCorrupt)
			}
			x |= uint64(body[bi]) << uint(56-8*b)
			bi++
		}
		t := prev ^ x
		prev = t
		vals[i] = math.Float64frombits(t)
	}
	for _, e := range exceptions {
		if int(e.idx) >= len(vals) {
			return fmt.Errorf("%w: exception index %d", compress.ErrCorrupt, e.idx)
		}
		vals[e.idx] = math.Float64frombits(e.bits)
	}
	if shuffled {
		compress.Unshuffle(dst, vals)
	}
	return nil
}

// violates reports whether reconstructing v as the truncated bits t would
// break the error contract, requiring an exact exception entry.
func violates(v float64, t uint64, opt compress.Options) bool {
	if opt.Mode == compress.Lossless {
		return false
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return true
	}
	got := math.Float64frombits(t)
	switch opt.Mode {
	case compress.Absolute:
		return math.Abs(v-got) > opt.Bound
	case compress.PointwiseRelative:
		return math.Abs(v-got) > opt.Bound*math.Abs(v)
	}
	return false
}

// leadingSameBytes counts the number of leading (most significant) zero
// bytes of x — i.e. bytes identical to the previous value in the XOR
// chain.
func leadingSameBytes(x uint64) int {
	n := 0
	for n < 8 && byte(x>>uint(56-8*n)) == 0 {
		n++
	}
	return n
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
