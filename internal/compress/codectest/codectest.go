// Package codectest provides shared conformance checks and data
// generators for the compressor packages. Every codec must pass the same
// contract: self-describing payloads, exact reconstruction in lossless
// mode, and error bounds honored pointwise in lossy modes — on smooth,
// spiky, sparse, and adversarial data alike.
package codectest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qcsim/internal/compress"
)

// Dataset is a named test input.
type Dataset struct {
	Name string
	Data []float64
}

// Datasets returns the standard conformance inputs of length n
// (n must be even; values mimic interleaved complex amplitudes).
func Datasets(n int, seed int64) []Dataset {
	rng := rand.New(rand.NewSource(seed))
	mk := func(f func(i int) float64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = f(i)
		}
		return xs
	}
	norm := func(xs []float64) []float64 {
		var s float64
		for _, x := range xs {
			s += x * x
		}
		if s == 0 {
			return xs
		}
		s = 1 / math.Sqrt(s)
		for i := range xs {
			xs[i] *= s
		}
		return xs
	}
	return []Dataset{
		{"zeros", mk(func(int) float64 { return 0 })},
		{"constant", mk(func(int) float64 { return 0.125 })},
		{"basis-state", norm(mk(func(i int) float64 {
			if i == 2 {
				return 1
			}
			return 0
		}))},
		{"uniform-superposition", norm(mk(func(i int) float64 {
			if i%2 == 0 {
				return 1
			}
			return 0
		}))},
		{"smooth", mk(func(i int) float64 { return math.Sin(float64(i) / 50) })},
		{"spiky", norm(mk(func(i int) float64 {
			// The paper's Fig. 9: random sign, random magnitude spread
			// over several orders of magnitude.
			v := math.Exp(rng.Float64()*8-12) * math.Pow(-1, float64(rng.Intn(2)))
			return v
		}))},
		{"sparse", norm(mk(func(i int) float64 {
			if rng.Float64() < 0.05 {
				return rng.NormFloat64()
			}
			return 0
		}))},
		{"tiny-and-large", mk(func(i int) float64 {
			switch i % 4 {
			case 0:
				return 1e-300
			case 1:
				return -1e300
			case 2:
				return 1e-12
			default:
				return 3.9921875 // the paper's Fig. 13 worked example
			}
		})},
		{"gaussian", norm(mk(func(i int) float64 { return rng.NormFloat64() }))},
	}
}

// LossyOptions returns the paper's five error levels for the mode.
func LossyOptions(mode compress.ErrorMode) []compress.Options {
	var opts []compress.Options
	for _, b := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		opts = append(opts, compress.Options{Mode: mode, Bound: b})
	}
	return opts
}

// RoundTrip compresses and decompresses, failing the test on error or
// contract violation.
func RoundTrip(t *testing.T, c compress.Codec, data []float64, opt compress.Options) []float64 {
	t.Helper()
	payload, err := c.Compress(nil, data, opt)
	if err != nil {
		t.Fatalf("%s compress(%v): %v", c.Name(), opt, err)
	}
	out := make([]float64, len(data))
	if err := c.Decompress(out, payload); err != nil {
		t.Fatalf("%s decompress(%v): %v", c.Name(), opt, err)
	}
	if i := compress.CheckBound(data, out, opt); i >= 0 {
		t.Fatalf("%s mode=%v bound=%g: contract violated at %d: %g -> %g",
			c.Name(), opt.Mode, opt.Bound, i, data[i], out[i])
	}
	return out
}

// ConformanceLossless checks bit-exact reconstruction across datasets.
func ConformanceLossless(t *testing.T, c compress.Codec) {
	t.Helper()
	for _, ds := range Datasets(2048, 7) {
		ds := ds
		t.Run("lossless/"+ds.Name, func(t *testing.T) {
			RoundTrip(t, c, ds.Data, compress.Options{Mode: compress.Lossless})
		})
	}
}

// ConformanceLossy checks the error contract across datasets and the
// paper's five bounds.
func ConformanceLossy(t *testing.T, c compress.Codec, mode compress.ErrorMode) {
	t.Helper()
	for _, ds := range Datasets(2048, 11) {
		for _, opt := range LossyOptions(mode) {
			ds, opt := ds, opt
			t.Run(opt.Mode.String()+"/"+ds.Name, func(t *testing.T) {
				o := opt
				if o.Mode == compress.Absolute {
					// The paper sets absolute bounds as a fraction of
					// the block's value range.
					lo, hi := minMax(ds.Data)
					r := hi - lo
					if r == 0 {
						r = 1
					}
					o.Bound = opt.Bound * r
				}
				RoundTrip(t, c, ds.Data, o)
			})
		}
	}
}

// ConformanceEmptyAndSmall checks degenerate sizes.
func ConformanceEmptyAndSmall(t *testing.T, c compress.Codec) {
	t.Helper()
	for _, n := range []int{0, 1, 2, 3, 5, 7} {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i) * 0.25
		}
		RoundTrip(t, c, data, compress.Options{Mode: compress.Lossless})
		if n > 0 {
			RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3})
		}
	}
}

// ConformanceCorrupt checks that mangled payloads return errors rather
// than panicking or silently succeeding.
func ConformanceCorrupt(t *testing.T, c compress.Codec) {
	t.Helper()
	data := Datasets(512, 3)[5].Data // spiky
	payload, err := c.Compress(nil, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(data))
	if err := c.Decompress(out, payload[:8]); err == nil {
		t.Error("truncated header accepted")
	}
	if err := c.Decompress(make([]float64, len(data)+1), payload); err == nil {
		t.Error("wrong dst length accepted")
	}
	garbage := append([]byte(nil), payload...)
	for i := range garbage {
		garbage[i] ^= 0xFF
	}
	// Full-corruption must not panic; error is expected but a garbage
	// decode that happens to parse is tolerated for lossy coders.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on corrupt payload: %v", r)
			}
		}()
		_ = c.Decompress(out, garbage)
	}()
}

// ConformanceNonFinite checks NaN/Inf survive (via exception paths) in
// lossy modes where codecs promise it.
func ConformanceNonFinite(t *testing.T, c compress.Codec, mode compress.ErrorMode) {
	t.Helper()
	data := []float64{1, math.NaN(), -2, math.Inf(1), 0.5, math.Inf(-1), 0, 3}
	opt := compress.Options{Mode: mode, Bound: 1e-2}
	payload, err := c.Compress(nil, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(data))
	if err := c.Decompress(out, payload); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out[1]) || !math.IsInf(out[3], 1) || !math.IsInf(out[5], -1) {
		t.Fatalf("non-finite values lost: %v", out)
	}
	for _, i := range []int{0, 2, 4, 6, 7} {
		if math.Abs(out[i]-data[i]) > 1e-2*math.Abs(data[i]) {
			t.Fatalf("finite neighbor %d out of bound: %g -> %g", i, data[i], out[i])
		}
	}
}

// ConformanceConcurrent hammers one codec instance from many
// goroutines — the SPMD engine shares codec instances across ranks, so
// Compress/Decompress must be safe and correct under concurrency.
func ConformanceConcurrent(t *testing.T, c compress.Codec) {
	t.Helper()
	datasets := Datasets(1024, 13)
	opt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			data := datasets[g%len(datasets)].Data
			for i := 0; i < 25; i++ {
				p, err := c.Compress(nil, data, opt)
				if err != nil {
					done <- err
					return
				}
				out := make([]float64, len(data))
				if err := c.Decompress(out, p); err != nil {
					done <- err
					return
				}
				if idx := compress.CheckBound(data, out, opt); idx >= 0 {
					done <- fmt.Errorf("goroutine %d iter %d: bound violated at %d", g, i, idx)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
