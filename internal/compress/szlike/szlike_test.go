package szlike

import (
	"math"
	"math/rand"
	"testing"

	"qcsim/internal/compress"
	"qcsim/internal/compress/codectest"
)

func TestConformanceA(t *testing.T) {
	a := NewA()
	codectest.ConformanceLossless(t, a)
	codectest.ConformanceLossy(t, a, compress.PointwiseRelative)
	codectest.ConformanceLossy(t, a, compress.Absolute)
	codectest.ConformanceEmptyAndSmall(t, a)
	codectest.ConformanceCorrupt(t, a)
	codectest.ConformanceNonFinite(t, a, compress.PointwiseRelative)
}

func TestConformanceB(t *testing.T) {
	b := NewB()
	codectest.ConformanceLossless(t, b)
	codectest.ConformanceLossy(t, b, compress.PointwiseRelative)
	codectest.ConformanceLossy(t, b, compress.Absolute)
	codectest.ConformanceEmptyAndSmall(t, b)
	codectest.ConformanceCorrupt(t, b)
	codectest.ConformanceNonFinite(t, b, compress.PointwiseRelative)
}

func TestNames(t *testing.T) {
	if NewA().Name() != "sz-a" || NewB().Name() != "sz-b" {
		t.Fatal("names changed")
	}
	if (&Codec{Stride: 3, Bins: 64}).Name() == "" {
		t.Fatal("custom codec needs a name")
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	// SZ's Lorenzo predictor shines on smooth data: tokens cluster near
	// the zero bin and Huffman squeezes them.
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = math.Sin(float64(i) / 200)
	}
	a := NewA()
	p, err := a.Compress(nil, data, compress.Options{Mode: compress.Absolute, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(data), len(p)); r < 10 {
		t.Fatalf("smooth ratio = %.2f, want ≥ 10", r)
	}
}

func TestStrideBPredictsInterleavedStreams(t *testing.T) {
	// Interleaved (re, im) streams with very different scales defeat a
	// stride-1 predictor but suit stride 2 (Solution B's rationale).
	n := 1 << 13
	data := make([]float64, n)
	for i := 0; i < n; i += 2 {
		data[i] = 1.0 + math.Sin(float64(i)/300)*1e-3    // re stream near 1
		data[i+1] = -5.0 + math.Cos(float64(i)/300)*1e-3 // im stream near -5
	}
	opt := compress.Options{Mode: compress.Absolute, Bound: 1e-6}
	pa, err := NewA().Compress(nil, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewB().Compress(nil, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb) > len(pa) {
		t.Fatalf("stride-2 (%d bytes) should beat stride-1 (%d bytes) on interleaved streams", len(pb), len(pa))
	}
}

func TestSpikyDataStillBounded(t *testing.T) {
	// Fig. 9/10: spiky data defeats prediction (poor ratio) but the
	// error bound must hold regardless.
	rng := rand.New(rand.NewSource(50))
	data := make([]float64, 8192)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Exp(rng.Float64()*20-10)
	}
	for _, c := range []*Codec{NewA(), NewB()} {
		codectest.RoundTrip(t, c, data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-4})
	}
}

func TestZeroRunsExact(t *testing.T) {
	// Zeros go through the sign stream and must reconstruct exactly
	// (critical for sparse quantum states).
	data := make([]float64, 4096)
	data[100] = 0.25
	data[101] = -0.5
	out := codectest.RoundTrip(t, NewA(), data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-2})
	for i, v := range data {
		if v == 0 && out[i] != 0 {
			t.Fatalf("zero at %d became %g", i, out[i])
		}
	}
}

func TestNegativeValuesKeepSign(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := make([]float64, 2048)
	for i := range data {
		data[i] = -math.Abs(rng.NormFloat64())
	}
	out := codectest.RoundTrip(t, NewB(), data, compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3})
	for i := range out {
		if out[i] > 0 {
			t.Fatalf("sign flip at %d", i)
		}
	}
}

func TestInvalidStride(t *testing.T) {
	c := &Codec{Stride: 0, Bins: 64}
	if _, err := c.Compress(nil, []float64{1}, compress.Options{}); err == nil {
		t.Fatal("stride 0 accepted")
	}
}

func TestConcurrentUse(t *testing.T) {
	codectest.ConformanceConcurrent(t, NewA())
	codectest.ConformanceConcurrent(t, NewB())
}
