// Package szlike implements the SZ 2.1 compression model used as the
// paper's Solutions A and B (§4.1–4.2): Lorenzo (previous-value)
// prediction, linear-scaling quantization against the error bound,
// Huffman coding of the quantization tokens, and a final lossless
// dictionary pass. Pointwise-relative bounds go through the SZ 2.1
// logarithm transform so the quantizer can work with an absolute bound.
//
// Solution A treats the block as a flat 1D stream (stride 1, 65,536
// quantization bins). Solution B is complex-type aware: it predicts the
// real and imaginary streams independently (stride 2) and caps the
// quantizer at 16,384 bins, trading a little ratio for speed exactly as
// the paper describes.
package szlike

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/bitio"
	"qcsim/internal/compress"
	"qcsim/internal/huffman"
)

const magic = 0x53 // 'S'

// Codec implements the SZ model. Construct with NewA or NewB.
type Codec struct {
	// Stride is the prediction stride: 1 for Solution A, 2 for
	// Solution B (independent real/imaginary Lorenzo chains).
	Stride int
	// Bins is the quantization bin budget (65536 for A, 16384 for B).
	Bins int

	name string

	flate compress.FlatePool
}

// NewA returns Solution A: flat 1D prediction, 65,536 bins.
func NewA() *Codec { return &Codec{Stride: 1, Bins: 65536, name: "sz-a"} }

// NewB returns Solution B: complex-aware prediction, 16,384 bins.
func NewB() *Codec { return &Codec{Stride: 2, Bins: 16384, name: "sz-b"} }

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if c.name != "" {
		return c.name
	}
	return fmt.Sprintf("sz-like(stride=%d,bins=%d)", c.Stride, c.Bins)
}

// sign codes for the pointwise-relative (log-domain) path.
const (
	signZero    = 0 // value is exactly ±0
	signPos     = 1
	signNeg     = 2
	signLiteral = 3 // non-finite or otherwise unrepresentable: raw bits
)

// Compress implements compress.Codec.
func (c *Codec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if c.Stride < 1 {
		return nil, fmt.Errorf("szlike: stride %d", c.Stride)
	}
	hdr := compress.Header{Magic: magic, Mode: opt.Mode, Bound: opt.Bound, Count: uint32(len(src))}
	dst = compress.AppendHeader(dst, hdr)

	var pre []byte
	switch opt.Mode {
	case compress.Lossless, compress.Absolute:
		bound := opt.Bound
		if opt.Mode == compress.Lossless {
			bound = 0
		}
		body, err := c.encodeAbs(src, bound)
		if err != nil {
			return nil, err
		}
		pre = body
	case compress.PointwiseRelative:
		body, err := c.encodeRel(src, opt.Bound)
		if err != nil {
			return nil, err
		}
		pre = body
	}

	return c.flate.Deflate(dst, pre)
}

// encodeAbs runs the prediction+quantization pipeline directly on the
// values with an absolute bound (0 means every point becomes a literal,
// i.e. lossless).
func (c *Codec) encodeAbs(src []float64, bound float64) ([]byte, error) {
	tokens := make([]uint16, len(src))
	var literals []byte
	pred := make([]float64, c.Stride)
	half := c.Bins / 2
	for i, v := range src {
		p := pred[i%c.Stride]
		if bound > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			m := math.Round((v - p) / (2 * bound))
			if math.Abs(m) < float64(half-1) {
				q := p + 2*bound*m
				if math.Abs(q-v) <= bound {
					tokens[i] = uint16(int(m) + half)
					pred[i%c.Stride] = q
					continue
				}
			}
		}
		tokens[i] = 0 // literal marker
		literals = binary.LittleEndian.AppendUint64(literals, math.Float64bits(v))
		pred[i%c.Stride] = v
	}
	return c.assemble(0, bound, tokens, literals, nil)
}

// encodeRel log-transforms the magnitudes and quantizes with the derived
// absolute bound, keeping a 2-bit sign stream (§4.1; the SZ 2.1
// pointwise-relative scheme).
func (c *Codec) encodeRel(src []float64, eps float64) ([]byte, error) {
	logBound := math.Log1p(eps) / 2 // |L-L'| ≤ a ⇒ rel err ≤ e^a-1; halve for margin
	tokens := make([]uint16, len(src))
	signs := bitio.NewWriter(len(src)/4 + 8)
	var literals []byte
	pred := make([]float64, c.Stride)
	half := c.Bins / 2
	for i, v := range src {
		var code uint64
		switch {
		case v == 0:
			code = signZero
		case math.IsNaN(v) || math.IsInf(v, 0):
			code = signLiteral
		case v > 0:
			code = signPos
		default:
			code = signNeg
		}
		if code == signZero {
			signs.WriteBits(code, 2)
			tokens[i] = 0 // unused slot; keeps streams aligned
			continue
		}
		if code == signLiteral {
			signs.WriteBits(code, 2)
			tokens[i] = 0
			literals = binary.LittleEndian.AppendUint64(literals, math.Float64bits(v))
			continue
		}
		l := math.Log(math.Abs(v))
		p := pred[i%c.Stride]
		m := math.Round((l - p) / (2 * logBound))
		if math.Abs(m) < float64(half-1) {
			q := p + 2*logBound*m
			rec := math.Exp(q)
			if math.Abs(rec-math.Abs(v)) <= eps*math.Abs(v) {
				signs.WriteBits(code, 2)
				tokens[i] = uint16(int(m) + half)
				pred[i%c.Stride] = q
				continue
			}
		}
		// Unpredictable: store raw.
		signs.WriteBits(signLiteral, 2)
		tokens[i] = 0
		literals = binary.LittleEndian.AppendUint64(literals, math.Float64bits(v))
		pred[i%c.Stride] = l
	}
	return c.assemble(1, logBound, tokens, literals, signs.Bytes())
}

// assemble lays out the pre-flate payload:
// kind(1) stride(1) bins(u32) bound(f64) lenHuff(u32) huff lenSigns(u32) signs literals
func (c *Codec) assemble(kind byte, bound float64, tokens []uint16, literals, signs []byte) ([]byte, error) {
	huff := huffman.Encode(tokens)
	out := make([]byte, 0, len(huff)+len(literals)+len(signs)+32)
	out = append(out, kind, byte(c.Stride))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Bins))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(bound))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(huff)))
	out = append(out, huff...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(signs)))
	out = append(out, signs...)
	return append(out, literals...), nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(dst []float64, data []byte) error {
	hdr, payload, err := compress.ParseHeader(data, magic)
	if err != nil {
		return err
	}
	if int(hdr.Count) != len(dst) {
		return fmt.Errorf("%w: count %d, dst %d", compress.ErrCorrupt, hdr.Count, len(dst))
	}
	pre, err := compress.Inflate(payload)
	if err != nil {
		return err
	}
	if len(pre) < 1+1+4+8+4 {
		return fmt.Errorf("%w: truncated preamble", compress.ErrCorrupt)
	}
	kind := pre[0]
	stride := int(pre[1])
	if stride < 1 || stride > 16 {
		return fmt.Errorf("%w: stride %d", compress.ErrCorrupt, stride)
	}
	bins := int(binary.LittleEndian.Uint32(pre[2:]))
	if bins < 4 || bins > 65536 {
		return fmt.Errorf("%w: bins %d", compress.ErrCorrupt, bins)
	}
	bound := math.Float64frombits(binary.LittleEndian.Uint64(pre[6:]))
	nh := int(binary.LittleEndian.Uint32(pre[14:]))
	pre = pre[18:]
	if len(pre) < nh+4 {
		return fmt.Errorf("%w: truncated huffman", compress.ErrCorrupt)
	}
	tokens, err := huffman.Decode(pre[:nh])
	if err != nil {
		return fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	if len(tokens) != len(dst) {
		return fmt.Errorf("%w: token count %d", compress.ErrCorrupt, len(tokens))
	}
	pre = pre[nh:]
	ns := int(binary.LittleEndian.Uint32(pre))
	pre = pre[4:]
	if len(pre) < ns {
		return fmt.Errorf("%w: truncated signs", compress.ErrCorrupt)
	}
	signs := pre[:ns]
	literals := pre[ns:]

	half := bins / 2
	pred := make([]float64, stride)
	readLiteral := func() (float64, error) {
		if len(literals) < 8 {
			return 0, fmt.Errorf("%w: literal stream exhausted", compress.ErrCorrupt)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(literals))
		literals = literals[8:]
		return v, nil
	}

	switch kind {
	case 0: // absolute / lossless
		for i := range dst {
			tok := tokens[i]
			if tok == 0 {
				v, err := readLiteral()
				if err != nil {
					return err
				}
				dst[i] = v
				pred[i%stride] = v
				continue
			}
			m := float64(int(tok) - half)
			v := pred[i%stride] + 2*bound*m
			dst[i] = v
			pred[i%stride] = v
		}
	case 1: // pointwise relative (log domain)
		sr := bitio.NewReader(signs)
		for i := range dst {
			code, err := sr.ReadBits(2)
			if err != nil {
				return fmt.Errorf("%w: sign stream", compress.ErrCorrupt)
			}
			switch code {
			case signZero:
				dst[i] = 0
			case signLiteral:
				v, err := readLiteral()
				if err != nil {
					return err
				}
				dst[i] = v
				if v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
					pred[i%stride] = math.Log(math.Abs(v))
				}
			default:
				m := float64(int(tokens[i]) - half)
				l := pred[i%stride] + 2*bound*m
				pred[i%stride] = l
				v := math.Exp(l)
				if code == signNeg {
					v = -v
				}
				dst[i] = v
			}
		}
	default:
		return fmt.Errorf("%w: kind %d", compress.ErrCorrupt, kind)
	}
	return nil
}
