package registry

import (
	"encoding/binary"
	"math"
	"testing"

	"qcsim/internal/compress"
)

// FuzzCodecRoundTrip drives every registered codec through
// decompress(compress(x)) on arbitrary float blocks and checks the
// reconstruction contract: lossless mode is bit-exact, absolute mode
// keeps |d-d'| ≤ bound, pointwise-relative mode keeps |d-d'| ≤
// bound·|d|. Compress may reject options, but neither direction may
// panic, and a successful Compress must decompress within bound.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), []byte{})
	f.Add(uint8(1), uint8(1), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), uint8(2), uint8(3), make([]byte, 256))
	f.Add(uint8(3), uint8(2), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f})
	f.Add(uint8(4), uint8(0), uint8(0), []byte("hello world, compress me as floats"))
	f.Fuzz(func(t *testing.T, codecSel, modeSel, boundSel uint8, data []byte) {
		names := Names()
		name := names[int(codecSel)%len(names)]
		codec, err := New(name)
		if err != nil {
			t.Fatalf("registry name %q does not resolve: %v", name, err)
		}

		// Interpret the raw bytes as float64 values. Non-finite values
		// are outside the codecs' amplitude-data contract (quantum
		// amplitudes are finite), as are subnormals (the engine's error
		// ladder never asks for bounds below 1e-7, where truncation of
		// subnormals cannot honor a relative bound); both are mapped
		// into range rather than skipped so the block shape survives.
		vals := make([]float64, len(data)/8)
		for i := range vals {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || (v != 0 && math.Abs(v) < 1e-300) {
				v = 0
			}
			vals[i] = v
		}

		var opt compress.Options
		switch modeSel % 3 {
		case 0:
			opt = compress.Options{Mode: compress.Lossless}
		case 1:
			opt = compress.Options{Mode: compress.Absolute, Bound: math.Pow(10, -float64(boundSel%6)-1)}
		default:
			opt = compress.Options{Mode: compress.PointwiseRelative, Bound: math.Pow(10, -float64(boundSel%6)-1)}
		}

		blob, err := codec.Compress(nil, vals, opt)
		if err != nil {
			// Rejecting an option set (e.g. a lossy-only codec asked
			// for lossless) is allowed; corrupting memory or panicking
			// is not.
			return
		}
		out := make([]float64, len(vals))
		if err := codec.Decompress(out, blob); err != nil {
			t.Fatalf("%s: decompress of own output failed: %v", name, err)
		}
		for i, want := range vals {
			got := out[i]
			switch opt.Mode {
			case compress.Lossless:
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: lossless value %d not bit-exact: % x vs % x",
						name, i, math.Float64bits(got), math.Float64bits(want))
				}
			case compress.Absolute:
				if diff := math.Abs(got - want); !(diff <= opt.Bound) {
					t.Fatalf("%s: abs bound %g violated at %d: |%g - %g| = %g",
						name, opt.Bound, i, got, want, diff)
				}
			case compress.PointwiseRelative:
				if diff := math.Abs(got - want); !(diff <= opt.Bound*math.Abs(want)) {
					t.Fatalf("%s: rel bound %g violated at %d: |%g - %g| = %g (|d|=%g)",
						name, opt.Bound, i, got, want, diff, math.Abs(want))
				}
			}
		}
	})
}
