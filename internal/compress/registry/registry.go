// Package registry names the repository's codecs so CLIs and configs
// can select them by string. It lives outside package compress to keep
// the interface package dependency-free.
package registry

import (
	"fmt"
	"sort"

	"qcsim/internal/compress"
	"qcsim/internal/compress/fpziplike"
	"qcsim/internal/compress/lossless"
	"qcsim/internal/compress/szlike"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/compress/zfplike"
)

// factories maps codec names (and their paper aliases) to constructors.
// Every call returns a fresh instance so callers never share state
// accidentally.
var factories = map[string]func() compress.Codec{
	"zstd-like":         func() compress.Codec { return lossless.New(0, false) },
	"zstd-like+shuffle": func() compress.Codec { return lossless.New(0, true) },
	"sz-a":              func() compress.Codec { return szlike.NewA() },
	"sz-b":              func() compress.Codec { return szlike.NewB() },
	"xor-c":             func() compress.Codec { return xortrunc.New() },
	"xor-d":             func() compress.Codec { return xortrunc.NewShuffled() },
	"zfp-like":          func() compress.Codec { return zfplike.New() },
	"fpzip-like":        func() compress.Codec { return fpziplike.New() },
}

// aliases are the paper's Solution letters and common shorthands.
var aliases = map[string]string{
	"solution-a": "sz-a",
	"solution-b": "sz-b",
	"solution-c": "xor-c",
	"solution-d": "xor-d",
	"lossless":   "zstd-like",
	"zstd":       "zstd-like",
	"sz":         "sz-a",
	"zfp":        "zfp-like",
	"fpzip":      "fpzip-like",
}

// New returns a fresh codec by name or alias.
func New(name string) (compress.Codec, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown codec %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the canonical codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
