// Package registry names the repository's codecs so CLIs and configs
// can select them by string. It lives outside package compress to keep
// the interface package dependency-free.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qcsim/internal/compress"
	"qcsim/internal/compress/fpziplike"
	"qcsim/internal/compress/lossless"
	"qcsim/internal/compress/szlike"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/compress/zfplike"
)

// factories maps codec names (and their paper aliases) to constructors.
// Every call returns a fresh instance so callers never share state
// accidentally.
var factories = map[string]func() compress.Codec{
	"zstd-like":         func() compress.Codec { return lossless.New(0, false) },
	"zstd-like+shuffle": func() compress.Codec { return lossless.New(0, true) },
	"sz-a":              func() compress.Codec { return szlike.NewA() },
	"sz-b":              func() compress.Codec { return szlike.NewB() },
	"xor-c":             func() compress.Codec { return xortrunc.New() },
	"xor-d":             func() compress.Codec { return xortrunc.NewShuffled() },
	"zfp-like":          func() compress.Codec { return zfplike.New() },
	"fpzip-like":        func() compress.Codec { return fpziplike.New() },
}

// aliases are the paper's Solution letters and common shorthands.
var aliases = map[string]string{
	"solution-a": "sz-a",
	"solution-b": "sz-b",
	"solution-c": "xor-c",
	"solution-d": "xor-d",
	"lossless":   "zstd-like",
	"zstd":       "zstd-like",
	"sz":         "sz-a",
	"zfp":        "zfp-like",
	"fpzip":      "fpzip-like",
}

// mu guards extra, the runtime-registered factories. The built-in maps
// above are never mutated after init, so they need no lock.
var (
	mu    sync.RWMutex
	extra = map[string]func() compress.Codec{}
)

// Register adds a named codec factory at runtime — the extension point
// the public qcsim facade exposes so third-party codecs can be selected
// by name exactly like the built-ins. The factory must return a fresh
// instance on every call. Names are case-sensitive, must be non-empty,
// and may not collide with a built-in name, alias, or prior
// registration.
func Register(name string, factory func() compress.Codec) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("registry: empty codec name")
	}
	if factory == nil {
		return fmt.Errorf("registry: nil factory for codec %q", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := factories[name]; ok {
		return fmt.Errorf("registry: codec %q already registered (built-in)", name)
	}
	if _, ok := aliases[name]; ok {
		return fmt.Errorf("registry: codec %q already registered (alias)", name)
	}
	if _, ok := extra[name]; ok {
		return fmt.Errorf("registry: codec %q already registered", name)
	}
	extra[name] = factory
	return nil
}

// New returns a fresh codec by name or alias.
func New(name string) (compress.Codec, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	if f, ok := factories[name]; ok {
		return f(), nil
	}
	mu.RLock()
	f, ok := extra[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown codec %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the canonical codec names (built-in and registered),
// sorted.
func Names() []string {
	mu.RLock()
	out := make([]string, 0, len(factories)+len(extra))
	for n := range extra {
		out = append(out, n)
	}
	mu.RUnlock()
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
