package registry

import (
	"testing"

	"qcsim/internal/compress"
)

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c == nil || c.Name() == "" {
			t.Fatalf("%s: bad codec", name)
		}
	}
}

func TestAliases(t *testing.T) {
	pairs := map[string]string{
		"solution-c": "xor-c",
		"solution-a": "sz-a",
		"zstd":       "zstd-like",
		"fpzip":      "fpzip-like",
	}
	for alias, canonical := range pairs {
		a, err := New(alias)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(canonical)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != b.Name() {
			t.Fatalf("alias %s resolved to %s, want %s", alias, a.Name(), b.Name())
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestFreshInstances(t *testing.T) {
	a, _ := New("xor-c")
	b, _ := New("xor-c")
	if a == b {
		t.Fatal("registry returned shared instances")
	}
}

func TestRegistryCodecsRoundTrip(t *testing.T) {
	data := []float64{0.5, -0.25, 0.125, 0, 1e-9, -3.75, 2, 0.875}
	for _, name := range Names() {
		c, _ := New(name)
		opt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
		if name == "zfp-like" {
			// zfp-like also supports PWR via log preprocessing; fine.
			opt = compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
		}
		p, err := c.Compress(nil, data, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := make([]float64, len(data))
		if err := c.Decompress(out, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i := compress.CheckBound(data, out, opt); i >= 0 {
			t.Fatalf("%s: bound violated at %d", name, i)
		}
	}
}
