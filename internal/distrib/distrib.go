// Package distrib orchestrates a distributed run: real OS processes as
// SPMD ranks, wired together by the tcpnet transport behind the mpi
// contract.
//
// The coordinator process holds the authoritative Simulator. For each
// distributed run it listens for worker control connections, assigns
// each worker a rank and the full peer table, ships the job spec plus
// that rank's compressed blocks (core.ExportRankBlocks), and waits.
// Each worker builds a same-configuration Simulator whose Launcher is a
// tcpnet mesh, installs its rank (core.InstallRank), executes the
// circuit in lockstep with its peers, and ships back a core.RankDelta
// (core.ExportDelta). The coordinator merges the deltas
// (core.ApplyDeltas) and the run is — for a single Run on a fresh
// state — bit-identical to the in-process transport: amplitudes,
// fidelity ledger, measurement outcomes, and the deterministic Stats
// counters.
//
// Failure semantics: a worker that dies mid-run tears its tcpnet links
// down, the failure cascades across the mesh (every surviving rank's
// collective returns an error wrapping mpi.ErrRankDied), every
// survivor reports that typed failure on its control connection, and
// Run returns an error on which errors.Is(err, mpi.ErrRankDied) holds
// — within a bounded drain window, never a deadlock. On any failure
// the coordinator's own state is untouched: deltas are only applied
// after every rank reports success, so a failed distributed run keeps
// the pre-run state (unlike the in-process transport, which keeps the
// completed gate prefix).
//
// Two documented divergences from the in-process transport, both
// consequences of workers being fresh processes: the measurement and
// noise rng streams restart at Seed on every distributed Run (a
// *sequence* of Runs with measurements can draw differently than the
// same sequence in process), and OnGate progress callbacks are not
// delivered across the process boundary.
package distrib

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// EnvCoordAddr is the environment variable through which a spawned
// worker learns the coordinator's control address.
const EnvCoordAddr = "QCSIM_COORD_ADDR"

// JobSpec is everything a worker needs to rebuild the coordinator's
// simulator configuration. Codecs travel by registry name, so custom
// codecs must be registered (under the same name) in the worker binary
// too.
type JobSpec struct {
	Qubits, Ranks, Workers, BlockAmps, CacheLines int
	MemoryBudget, SpillRAMBudget                  int64
	SpillDir                                      string
	ErrorLevels                                   []float64
	CodecName                                     string // lossy codec registry name; "" → default
	Uncompressed, FuseGates, DisableSweeps        bool
	Seed                                          int64
	NoiseProb                                     float64
	Circuit                                       []byte // exact binary wire form (see wire.go)
	MeshTimeout                                   time.Duration
	GateDelay                                     time.Duration // per-gate pacing (tests/CI)
}

// helloMsg is the worker's first control message: where its data-plane
// listener lives.
type helloMsg struct {
	DataAddr string
}

// assignMsg is the coordinator's reply: who you are, who your peers
// are, what to run, and the state to start from.
type assignMsg struct {
	Rank, Size int
	Peers      []string
	Spec       JobSpec
	Blocks     [][]byte
	Level      int
}

// resultMsg is the worker's final control message. RankDied travels as
// a flag because error chains do not survive gob; the coordinator
// re-wraps mpi.ErrRankDied so errors.Is works end to end.
type resultMsg struct {
	Rank     int
	Err      string
	RankDied bool
	Delta    *core.RankDelta
}

// Options parameterizes a distributed run.
type Options struct {
	// ListenAddr is the coordinator's control listen address. Defaults
	// to "127.0.0.1:0".
	ListenAddr string
	// WorkerCommand is the argv spawned once per rank, each child
	// receiving the coordinator address in EnvCoordAddr. nil spawns
	// nothing: the coordinator waits for externally launched workers
	// (e.g. qcrank -coord on other hosts) to connect.
	WorkerCommand []string
	// HandshakeTimeout bounds worker connection, rank assignment, and
	// mesh formation. Defaults to 30s.
	HandshakeTimeout time.Duration
	// JobTimeout bounds the whole run, 0 meaning unbounded.
	JobTimeout time.Duration
	// GateDelay makes every worker sleep this long per executed gate —
	// a pacing hook so tests and CI can hold a run in flight while they
	// poke at it. Zero for real runs.
	GateDelay time.Duration

	// onSpawn, when set, observes each spawned worker process (tests
	// use it to kill one mid-run).
	onSpawn func(idx int, cmd *exec.Cmd)
}

// buildSpec lowers a facade-resolved core.Config to the wire spec.
func buildSpec(cfg core.Config, noiseProb float64, c *quantum.Circuit, opt Options) (JobSpec, error) {
	dcfg, err := cfg.ValidatedDefaults()
	if err != nil {
		return JobSpec{}, err
	}
	wire, err := encodeCircuit(c)
	if err != nil {
		return JobSpec{}, err
	}
	codecName := ""
	if dcfg.Lossy != nil {
		codecName = dcfg.Lossy.Name()
	}
	ht := opt.HandshakeTimeout
	if ht <= 0 {
		ht = 30 * time.Second
	}
	return JobSpec{
		Qubits:         dcfg.Qubits,
		Ranks:          dcfg.Ranks,
		Workers:        dcfg.Workers,
		BlockAmps:      dcfg.BlockAmps,
		CacheLines:     dcfg.CacheLines,
		MemoryBudget:   dcfg.MemoryBudget,
		SpillRAMBudget: dcfg.SpillRAMBudget,
		SpillDir:       dcfg.SpillDir,
		ErrorLevels:    append([]float64(nil), dcfg.ErrorLevels...),
		CodecName:      codecName,
		Uncompressed:   dcfg.Uncompressed,
		FuseGates:      dcfg.FuseGates,
		DisableSweeps:  dcfg.DisableSweeps,
		Seed:           dcfg.Seed,
		NoiseProb:      noiseProb,
		Circuit:        wire,
		MeshTimeout:    ht,
		GateDelay:      opt.GateDelay,
	}, nil
}

// Run executes one circuit on sim over real worker processes. cfg and
// noiseProb are the facade-resolved construction inputs of sim (the
// workers rebuild their simulators from them), and poll is consulted
// periodically while the job is in flight — a non-nil return aborts
// the run (workers are killed, the coordinator state stays pre-run).
func Run(sim *core.Simulator, cfg core.Config, noiseProb float64, c *quantum.Circuit, opt Options, poll func() error) error {
	spec, err := buildSpec(cfg, noiseProb, c, opt)
	if err != nil {
		return err
	}
	size := spec.Ranks

	addr := opt.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("distrib: coordinator listen: %w", err)
	}
	defer ln.Close()

	// Spawn the local workers (if any), every child pointed at the
	// control address through the environment.
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	if len(opt.WorkerCommand) > 0 {
		for i := 0; i < size; i++ {
			cmd := exec.Command(opt.WorkerCommand[0], opt.WorkerCommand[1:]...)
			cmd.Env = append(os.Environ(), EnvCoordAddr+"="+ln.Addr().String())
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("distrib: spawning worker %d (%q): %w", i, opt.WorkerCommand[0], err)
			}
			procs = append(procs, cmd)
			if opt.onSpawn != nil {
				opt.onSpawn(i, cmd)
			}
		}
	}

	// Handshake: accept one control connection per rank, read its
	// hello, assign ranks in arrival order.
	handshakeDeadline := time.Now().Add(spec.MeshTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(handshakeDeadline)
	}
	conns := make([]net.Conn, 0, size)
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	encs := make([]*gob.Encoder, 0, size)
	decs := make([]*gob.Decoder, 0, size)
	peers := make([]string, 0, size)
	for len(conns) < size {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("distrib: %d of %d workers connected before handshake deadline: %w", len(conns), size, err)
		}
		conn.SetDeadline(handshakeDeadline)
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		var hello helloMsg
		if err := dec.Decode(&hello); err != nil {
			conn.Close()
			return fmt.Errorf("distrib: worker hello: %w", err)
		}
		conns = append(conns, conn)
		encs = append(encs, enc)
		decs = append(decs, dec)
		peers = append(peers, hello.DataAddr)
	}
	for rank := range conns {
		blocks, level, err := sim.ExportRankBlocks(rank)
		if err != nil {
			return fmt.Errorf("distrib: exporting rank %d: %w", rank, err)
		}
		if err := encs[rank].Encode(assignMsg{
			Rank: rank, Size: size, Peers: peers, Spec: spec,
			Blocks: blocks, Level: level,
		}); err != nil {
			return fmt.Errorf("distrib: assigning rank %d: %w", rank, err)
		}
		conns[rank].SetDeadline(time.Time{})
	}

	// Result phase: one reader per control connection; the run is done
	// when every rank has resolved (result, or connection loss = the
	// worker died).
	type rankOutcome struct {
		rank int
		msg  resultMsg
		err  error
	}
	ch := make(chan rankOutcome, size)
	for rank := range conns {
		go func(rank int) {
			var msg resultMsg
			err := decs[rank].Decode(&msg)
			ch <- rankOutcome{rank: rank, msg: msg, err: err}
		}(rank)
	}

	teardown := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
		for _, conn := range conns {
			conn.Close()
		}
	}

	pollTick := time.NewTicker(50 * time.Millisecond)
	defer pollTick.Stop()
	var jobTimeout <-chan time.Time
	if opt.JobTimeout > 0 {
		jt := time.NewTimer(opt.JobTimeout)
		defer jt.Stop()
		jobTimeout = jt.C
	}
	// Once anything has failed the survivors are already cascading to
	// their own ErrRankDied reports; the drain window bounds how long
	// we wait for those reports before forcing the teardown.
	var drain <-chan time.Time
	var drainTimer *time.Timer
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
	}()
	deltas := make([]*core.RankDelta, 0, size)
	var errs []error
	noteFailure := func(err error) {
		errs = append(errs, err)
		if drain == nil {
			drainTimer = time.NewTimer(10 * time.Second)
			drain = drainTimer.C
		}
	}
	for resolved := 0; resolved < size; {
		select {
		case out := <-ch:
			resolved++
			switch {
			case out.err != nil:
				noteFailure(fmt.Errorf("distrib: rank %d: worker connection lost (%v): %w", out.rank, out.err, mpi.ErrRankDied))
			case out.msg.Err != "":
				if out.msg.RankDied {
					noteFailure(fmt.Errorf("distrib: rank %d: %s: %w", out.rank, out.msg.Err, mpi.ErrRankDied))
				} else {
					noteFailure(fmt.Errorf("distrib: rank %d: %s", out.rank, out.msg.Err))
				}
			case out.msg.Delta == nil:
				noteFailure(fmt.Errorf("distrib: rank %d: worker reported success without a delta", out.rank))
			default:
				deltas = append(deltas, out.msg.Delta)
			}
		case <-pollTick.C:
			if poll != nil {
				if aerr := poll(); aerr != nil {
					teardown()
					return fmt.Errorf("distrib: run aborted: %w", aerr)
				}
			}
		case <-drain:
			teardown()
			return fmt.Errorf("distrib: workers unresponsive after failure: %w", errors.Join(errs...))
		case <-jobTimeout:
			teardown()
			return fmt.Errorf("distrib: job exceeded %v", opt.JobTimeout)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if err := sim.ApplyDeltas(deltas); err != nil {
		return fmt.Errorf("distrib: merging rank deltas: %w", err)
	}
	return nil
}
