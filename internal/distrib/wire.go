package distrib

import (
	"encoding/binary"
	"fmt"
	"math"

	"qcsim/internal/quantum"
)

// Exact circuit wire form. The qc text format is lossy for rotation
// gates — it recovers angles from the matrix through Atan2 and
// rebuilds the matrix from the recovered angle, which can move the
// last ulp — so distributed runs ship gates in a fixed-width binary
// form instead: every matrix entry travels as raw float64 bits and the
// worker executes the coordinator's exact unitaries. This is what
// keeps TCP-transport amplitudes byte-identical to in-process runs.
// Custom (unnamed) matrix gates ship fine; parametric circuits must be
// bound first, exactly as the engine itself requires.

// encodeCircuit renders c in the exact wire form.
func encodeCircuit(c *quantum.Circuit) ([]byte, error) {
	var buf []byte
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u64(uint64(c.N))
	u64(uint64(len(c.Gates)))
	for i, g := range c.Gates {
		if g.Par != nil {
			return nil, fmt.Errorf("distrib: gate %d (%s) has an unbound parameter; Bind the circuit first", i, g.Name)
		}
		buf = append(buf, byte(g.Kind))
		u64(uint64(len(g.Name)))
		buf = append(buf, g.Name...)
		u64(uint64(g.Target))
		u64(uint64(len(g.Controls)))
		for _, q := range g.Controls {
			u64(uint64(q))
		}
		for r := 0; r < 2; r++ {
			for col := 0; col < 2; col++ {
				u64(math.Float64bits(real(g.U[r][col])))
				u64(math.Float64bits(imag(g.U[r][col])))
			}
		}
	}
	return buf, nil
}

// decodeCircuit parses the exact wire form.
func decodeCircuit(b []byte) (*quantum.Circuit, error) {
	bad := func(what string) error { return fmt.Errorf("distrib: truncated circuit wire form (%s)", what) }
	next := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	n, ok := next()
	if !ok {
		return nil, bad("qubits")
	}
	ng, ok := next()
	if !ok || ng > uint64(len(b)) { // every gate takes well over one byte
		return nil, bad("gate count")
	}
	c := &quantum.Circuit{N: int(n), Gates: make([]quantum.Gate, 0, ng)}
	for i := uint64(0); i < ng; i++ {
		if len(b) < 1 {
			return nil, bad("gate kind")
		}
		g := quantum.Gate{Kind: quantum.GateKind(b[0])}
		b = b[1:]
		nameLen, ok := next()
		if !ok || nameLen > uint64(len(b)) {
			return nil, bad("gate name")
		}
		g.Name = string(b[:nameLen])
		b = b[nameLen:]
		tgt, ok := next()
		if !ok {
			return nil, bad("gate target")
		}
		g.Target = int(tgt)
		nc, ok := next()
		if !ok || nc > uint64(len(b))/8 {
			return nil, bad("control count")
		}
		for j := uint64(0); j < nc; j++ {
			q, ok := next()
			if !ok {
				return nil, bad("control qubit")
			}
			g.Controls = append(g.Controls, int(q))
		}
		for r := 0; r < 2; r++ {
			for col := 0; col < 2; col++ {
				re, ok1 := next()
				im, ok2 := next()
				if !ok1 || !ok2 {
					return nil, bad("matrix entry")
				}
				g.U[r][col] = complex(math.Float64frombits(re), math.Float64frombits(im))
			}
		}
		c.Gates = append(c.Gates, g)
	}
	return c, nil
}
