package distrib

import (
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// TestMain doubles as the worker executable: a spawned copy of this
// test binary sees the env marker before any test runs and becomes a
// distributed rank instead.
func TestMain(m *testing.M) {
	if os.Getenv("QCSIM_DISTRIB_WORKER") == "1" {
		if err := Worker(os.Getenv(EnvCoordAddr)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// selfWorker returns the argv that re-execs this test binary as a
// worker, and marks the environment so the child takes the TestMain
// worker branch.
func selfWorker(t *testing.T) []string {
	t.Helper()
	t.Setenv("QCSIM_DISTRIB_WORKER", "1")
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return []string{exe}
}

func parseCircuit(t *testing.T, text string) *quantum.Circuit {
	t.Helper()
	c, err := quantum.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse circuit: %v", err)
	}
	return c
}

// conformanceCircuit mixes local, cross-block, cross-rank (qubit 7 is
// the rank bit at this geometry), controlled, rotation, and
// measurement gates.
const conformanceCircuit = `qubits 8
h 0
h 7
cx 0 7
rz 3 0.7853981633974483
cx 3 5
h 5
cp 0 6 1.1
measure 2
x 1
cx 7 1
measure 7
`

// TestRunMatchesInProcess executes the same circuit on the goroutine
// transport and over real worker processes and requires bit-identical
// state, ledger, measurements, and deterministic accounting.
func TestRunMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		// Workers is pinned to 1: amplitudes are bit-identical for any
		// worker count, but the cache-hit counters depend on worker-pool
		// timing, and this test compares them exactly.
		{"lossless", core.Config{Qubits: 8, Ranks: 2, Workers: 1, BlockAmps: 16, CacheLines: 8, Seed: 42}},
		{"budgeted-lossy", core.Config{Qubits: 8, Ranks: 4, Workers: 1, BlockAmps: 8, MemoryBudget: 1024, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			circ := parseCircuit(t, conformanceCircuit)

			ref, err := core.New(tc.cfg)
			if err != nil {
				t.Fatalf("reference sim: %v", err)
			}
			defer ref.Close()
			if err := ref.RunControlled(circ, core.RunControl{}); err != nil {
				t.Fatalf("in-process run: %v", err)
			}

			sim, err := core.New(tc.cfg)
			if err != nil {
				t.Fatalf("coordinator sim: %v", err)
			}
			defer sim.Close()
			opt := Options{WorkerCommand: selfWorker(t), JobTimeout: 2 * time.Minute}
			if err := Run(sim, tc.cfg, 0, circ, opt, nil); err != nil {
				t.Fatalf("distributed run: %v", err)
			}

			wantState, err := ref.FullState()
			if err != nil {
				t.Fatalf("reference state: %v", err)
			}
			gotState, err := sim.FullState()
			if err != nil {
				t.Fatalf("distributed state: %v", err)
			}
			for i := range wantState {
				if math.Float64bits(real(wantState[i])) != math.Float64bits(real(gotState[i])) ||
					math.Float64bits(imag(wantState[i])) != math.Float64bits(imag(gotState[i])) {
					t.Fatalf("amplitude %d differs: in-process %v, distributed %v", i, wantState[i], gotState[i])
				}
			}
			if w, g := ref.FidelityLowerBound(), sim.FidelityLowerBound(); math.Float64bits(w) != math.Float64bits(g) {
				t.Errorf("ledger differs: in-process %v, distributed %v", w, g)
			}
			if w, g := ref.Measurements(), sim.Measurements(); fmt.Sprint(w) != fmt.Sprint(g) {
				t.Errorf("measurements differ: in-process %v, distributed %v", w, g)
			}
			if w, g := ref.GatesRun(), sim.GatesRun(); w != g {
				t.Errorf("gates run differ: in-process %d, distributed %d", w, g)
			}
			if w, g := ref.BytesMoved(), sim.BytesMoved(); w != g {
				t.Errorf("bytes moved differ: in-process %d, distributed %d", w, g)
			}
			ws, gs := ref.Stats(), sim.Stats()
			deterministic := []struct {
				name string
				w, g int64
			}{
				{"Gates", int64(ws.Gates), int64(gs.Gates)},
				{"Sweeps", int64(ws.Sweeps), int64(gs.Sweeps)},
				{"SweepGates", int64(ws.SweepGates), int64(gs.SweepGates)},
				{"CompressCalls", int64(ws.CompressCalls), int64(gs.CompressCalls)},
				{"DecompressCalls", int64(ws.DecompressCalls), int64(gs.DecompressCalls)},
				{"CacheLookups", int64(ws.CacheLookups), int64(gs.CacheLookups)},
				{"CacheHits", int64(ws.CacheHits), int64(gs.CacheHits)},
				{"Escalations", int64(ws.Escalations), int64(gs.Escalations)},
				{"FinalLevel", int64(ws.FinalLevel), int64(gs.FinalLevel)},
			}
			for _, d := range deterministic {
				if d.w != d.g {
					t.Errorf("Stats.%s differs: in-process %d, distributed %d", d.name, d.w, d.g)
				}
			}
		})
	}
}

// slowCircuit is sweep-proof pacing material: with DisableSweeps every
// gate runs its own error-barrier collective, keeping all ranks inside
// the mesh for the whole run.
func slowCircuit(gates int) string {
	var b strings.Builder
	b.WriteString("qubits 6\n")
	for i := 0; i < gates; i++ {
		b.WriteString("h 0\n")
	}
	return b.String()
}

// TestWorkerKilledMidRun SIGKILLs one worker while the job is in
// flight and requires the coordinator to surface mpi.ErrRankDied
// within a bound, with its own state untouched.
func TestWorkerKilledMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := core.Config{Qubits: 6, Ranks: 2, Workers: 1, BlockAmps: 8, Seed: 1, DisableSweeps: true}
	circ := parseCircuit(t, slowCircuit(400))
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatalf("coordinator sim: %v", err)
	}
	defer sim.Close()

	var mu sync.Mutex
	var victims []*exec.Cmd
	opt := Options{
		WorkerCommand: selfWorker(t),
		JobTimeout:    time.Minute,
		GateDelay:     20 * time.Millisecond,
		onSpawn: func(idx int, cmd *exec.Cmd) {
			mu.Lock()
			victims = append(victims, cmd)
			mu.Unlock()
		},
	}
	killer := time.AfterFunc(500*time.Millisecond, func() {
		mu.Lock()
		defer mu.Unlock()
		if len(victims) > 1 && victims[1].Process != nil {
			victims[1].Process.Kill()
		}
	})
	defer killer.Stop()

	start := time.Now()
	err = Run(sim, cfg, 0, circ, opt, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run succeeded despite a killed worker")
	}
	if !errors.Is(err, mpi.ErrRankDied) {
		t.Fatalf("error %v does not wrap mpi.ErrRankDied", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("failure took %v to surface", elapsed)
	}
	if n := sim.GatesRun(); n != 0 {
		t.Fatalf("failed distributed run mutated coordinator state: %d gates recorded", n)
	}
}

// TestAbortKeepsPreRunState cancels via the poll hook mid-run: the
// abort error must come back wrapped and the coordinator state must
// stay pre-run.
func TestAbortKeepsPreRunState(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := core.Config{Qubits: 6, Ranks: 2, Workers: 1, BlockAmps: 8, Seed: 1, DisableSweeps: true}
	circ := parseCircuit(t, slowCircuit(400))
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatalf("coordinator sim: %v", err)
	}
	defer sim.Close()

	cause := errors.New("client gone")
	start := time.Now()
	var pollMu sync.Mutex
	aborting := false
	go func() {
		time.Sleep(300 * time.Millisecond)
		pollMu.Lock()
		aborting = true
		pollMu.Unlock()
	}()
	err = Run(sim, cfg, 0, circ, Options{
		WorkerCommand: selfWorker(t),
		JobTimeout:    time.Minute,
		GateDelay:     20 * time.Millisecond,
	}, func() error {
		pollMu.Lock()
		defer pollMu.Unlock()
		if aborting {
			return cause
		}
		return nil
	})
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not wrap the abort cause", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("abort took %v", time.Since(start))
	}
	if n := sim.GatesRun(); n != 0 {
		t.Fatalf("aborted distributed run mutated coordinator state: %d gates recorded", n)
	}
}
