package distrib

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"qcsim/internal/compress/registry"
	"qcsim/internal/core"
	"qcsim/internal/mpi"
	"qcsim/internal/mpi/tcpnet"
	"qcsim/internal/quantum"
)

// Worker runs this process as one rank of a distributed job: it dials
// the coordinator's control address, announces a data-plane listener,
// waits for its rank assignment, meshes with its peers over tcpnet,
// executes the shipped circuit on the shipped state, and reports a
// RankDelta (or a typed failure) back. It returns when the job is
// over; a non-nil return means this rank failed, and
// errors.Is(err, mpi.ErrRankDied) distinguishes "a peer died under
// me" from local failures.
func Worker(coordAddr string) error {
	conn, err := net.DialTimeout("tcp", coordAddr, 30*time.Second)
	if err != nil {
		return fmt.Errorf("distrib: worker dialing coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	// The data-plane listener binds the interface this process actually
	// reaches the coordinator through, so the advertised address works
	// for peers on other hosts too.
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		return fmt.Errorf("distrib: worker local address: %w", err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return fmt.Errorf("distrib: worker data listen: %w", err)
	}
	defer ln.Close()

	conn.SetDeadline(time.Now().Add(2 * time.Minute))
	if err := enc.Encode(helloMsg{DataAddr: ln.Addr().String()}); err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	var as assignMsg
	if err := dec.Decode(&as); err != nil {
		return fmt.Errorf("distrib: worker awaiting assignment: %w", err)
	}
	conn.SetDeadline(time.Time{})

	res := runAssignment(ln, as)
	res.Rank = as.Rank
	if err := enc.Encode(res); err != nil {
		return fmt.Errorf("distrib: rank %d reporting result: %w", as.Rank, err)
	}
	if res.Err != "" {
		if res.RankDied {
			return fmt.Errorf("distrib: rank %d: %s: %w", as.Rank, res.Err, mpi.ErrRankDied)
		}
		return fmt.Errorf("distrib: rank %d: %s", as.Rank, res.Err)
	}
	return nil
}

// runAssignment executes one assigned rank body and packages the
// outcome, classifying transport deaths so the coordinator can re-wrap
// the sentinel across the gob boundary.
func runAssignment(ln net.Listener, as assignMsg) resultMsg {
	fail := func(err error) resultMsg {
		return resultMsg{Err: err.Error(), RankDied: errors.Is(err, mpi.ErrRankDied)}
	}
	spec := as.Spec
	cfg := core.Config{
		Qubits:         spec.Qubits,
		Ranks:          spec.Ranks,
		Workers:        spec.Workers,
		BlockAmps:      spec.BlockAmps,
		CacheLines:     spec.CacheLines,
		MemoryBudget:   spec.MemoryBudget,
		SpillRAMBudget: spec.SpillRAMBudget,
		SpillDir:       spec.SpillDir,
		ErrorLevels:    spec.ErrorLevels,
		Uncompressed:   spec.Uncompressed,
		FuseGates:      spec.FuseGates,
		DisableSweeps:  spec.DisableSweeps,
		Seed:           spec.Seed,
	}
	if spec.CodecName != "" {
		codec, err := registry.New(spec.CodecName)
		if err != nil {
			return fail(fmt.Errorf("distrib: rank %d: %w (custom codecs must be registered in the worker binary)", as.Rank, err))
		}
		cfg.Lossy = codec
	}
	circ, err := decodeCircuit(spec.Circuit)
	if err != nil {
		return fail(fmt.Errorf("distrib: rank %d: %w", as.Rank, err))
	}

	comm, err := tcpnet.Mesh(ln, as.Rank, as.Peers, time.Now().Add(spec.MeshTimeout))
	if err != nil {
		return fail(err)
	}
	defer comm.Close()
	cfg.Launcher = tcpnet.NewLauncher(comm)

	sim, err := core.New(cfg)
	if err != nil {
		return fail(err)
	}
	defer sim.Close()
	if spec.NoiseProb > 0 {
		if err := sim.SetNoise(&core.NoiseModel{Prob: spec.NoiseProb}); err != nil {
			return fail(err)
		}
	}
	if err := sim.InstallRank(as.Rank, as.Blocks, as.Level); err != nil {
		return fail(err)
	}

	var ctl core.RunControl
	if spec.GateDelay > 0 {
		// The pacing hook fires on rank 0; every other rank paces
		// implicitly by waiting at the next sweep's collective.
		ctl.OnGate = func(gi, total int, g quantum.Gate) {
			time.Sleep(spec.GateDelay)
		}
	}
	if err := sim.RunControlled(circ, ctl); err != nil {
		return fail(err)
	}
	delta, err := sim.ExportDelta(as.Rank)
	if err != nil {
		return fail(err)
	}
	return resultMsg{Delta: delta}
}
