// Package huffman implements a canonical Huffman coder over 16-bit
// symbols. It is the entropy-coding stage of the SZ-model compressor
// (Solution A/B in the paper): quantization tokens produced by the
// linear-scaling quantizer are Huffman coded before the final lossless
// pass.
//
// The encoded stream is self-describing: a compact code-length table
// (canonical form) precedes the payload, so the decoder needs no side
// channel.
package huffman

import (
	"errors"
	"fmt"
	"sort"

	"qcsim/internal/bitio"
)

// MaxCodeLen is the deepest code the encoder will emit. Codes deeper than
// this are flattened by the package-private depth limiter; 32 is far deeper
// than any realistic quantization-token distribution requires.
const MaxCodeLen = 32

var (
	// ErrCorrupt is returned when a stream fails structural validation.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

type node struct {
	freq        uint64
	sym         uint16
	left, right int // indices into the node arena; -1 for leaves
}

// codeLengths derives Huffman code lengths from symbol frequencies using
// the standard two-queue construction over a heap-free sorted arena.
func codeLengths(freq map[uint16]uint64) map[uint16]uint8 {
	if len(freq) == 0 {
		return nil
	}
	if len(freq) == 1 {
		for s := range freq {
			return map[uint16]uint8{s: 1}
		}
	}
	arena := make([]node, 0, 2*len(freq))
	order := make([]int, 0, len(freq))
	for s, f := range freq {
		arena = append(arena, node{freq: f, sym: s, left: -1, right: -1})
	}
	// Sort leaves ascending by frequency then symbol for determinism.
	sort.Slice(arena, func(i, j int) bool {
		if arena[i].freq != arena[j].freq {
			return arena[i].freq < arena[j].freq
		}
		return arena[i].sym < arena[j].sym
	})
	for i := range arena {
		order = append(order, i)
	}
	// Two-queue merge: leaves in `order`, internal nodes appended to
	// `internal`, both sorted ascending, pop the two smallest overall.
	var internal []int
	pop := func() int {
		switch {
		case len(order) == 0:
			i := internal[0]
			internal = internal[1:]
			return i
		case len(internal) == 0:
			i := order[0]
			order = order[1:]
			return i
		case arena[order[0]].freq <= arena[internal[0]].freq:
			i := order[0]
			order = order[1:]
			return i
		default:
			i := internal[0]
			internal = internal[1:]
			return i
		}
	}
	for len(order)+len(internal) > 1 {
		a := pop()
		b := pop()
		arena = append(arena, node{freq: arena[a].freq + arena[b].freq, left: a, right: b})
		internal = append(internal, len(arena)-1)
	}
	root := pop()
	// Walk depths iteratively.
	lengths := make(map[uint16]uint8, len(freq))
	type frame struct {
		idx   int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := arena[f.idx]
		if n.left < 0 {
			d := f.depth
			if d == 0 {
				d = 1 // single-symbol tree
			}
			lengths[n.sym] = d
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return limitDepth(lengths)
}

// limitDepth flattens code lengths exceeding MaxCodeLen while preserving
// the Kraft inequality, using the standard heuristic of repeatedly moving
// overflowing leaves up the tree.
func limitDepth(lengths map[uint16]uint8) map[uint16]uint8 {
	over := false
	for _, l := range lengths {
		if l > MaxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return lengths
	}
	// Clamp and then repair Kraft sum K = Σ 2^-l ≤ 1 by lengthening the
	// shallowest repairable codes.
	type sl struct {
		sym uint16
		l   uint8
	}
	all := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		if l > MaxCodeLen {
			l = MaxCodeLen
		}
		all = append(all, sl{s, l})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].l != all[j].l {
			return all[i].l < all[j].l
		}
		return all[i].sym < all[j].sym
	})
	kraft := func() float64 {
		k := 0.0
		for _, e := range all {
			k += 1.0 / float64(uint64(1)<<e.l)
		}
		return k
	}
	for kraft() > 1.0 {
		// Lengthen the deepest code shallower than the limit.
		fixed := false
		for i := len(all) - 1; i >= 0; i-- {
			if all[i].l < MaxCodeLen {
				all[i].l++
				fixed = true
				break
			}
		}
		if !fixed {
			break
		}
	}
	out := make(map[uint16]uint8, len(all))
	for _, e := range all {
		out[e.sym] = e.l
	}
	return out
}

// canonical assigns canonical codes (numerically increasing within each
// length, lengths ascending) given code lengths.
func canonical(lengths map[uint16]uint8) (syms []uint16, codes map[uint16]uint32) {
	syms = make([]uint16, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool {
		li, lj := lengths[syms[i]], lengths[syms[j]]
		if li != lj {
			return li < lj
		}
		return syms[i] < syms[j]
	})
	codes = make(map[uint16]uint32, len(syms))
	var code uint32
	var prevLen uint8
	for _, s := range syms {
		l := lengths[s]
		code <<= l - prevLen
		codes[s] = code
		code++
		prevLen = l
	}
	return syms, codes
}

// Encode Huffman-codes the symbol stream into a self-describing byte
// buffer: header (symbol count, distinct-symbol table with code lengths)
// followed by the bit-packed payload.
func Encode(symbols []uint16) []byte {
	freq := make(map[uint16]uint64)
	for _, s := range symbols {
		freq[s]++
	}
	lengths := codeLengths(freq)
	syms, codes := canonical(lengths)

	w := bitio.NewWriter(len(symbols)/2 + 64)
	w.WriteBits(uint64(len(symbols)), 32)
	w.WriteBits(uint64(len(syms)), 17) // up to 65536 distinct symbols
	for _, s := range syms {
		w.WriteBits(uint64(s), 16)
		w.WriteBits(uint64(lengths[s]), 6)
	}
	for _, s := range symbols {
		w.WriteBits(uint64(codes[s]), uint(lengths[s]))
	}
	return w.Bytes()
}

// Decode reverses Encode. It validates the header and fails with
// ErrCorrupt on malformed input rather than panicking.
func Decode(data []byte) ([]uint16, error) {
	r := bitio.NewReader(data)
	nsym64, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrCorrupt)
	}
	nsym := int(nsym64)
	ndist64, err := r.ReadBits(17)
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrCorrupt)
	}
	ndist := int(ndist64)
	if nsym == 0 {
		return nil, nil
	}
	if ndist == 0 || ndist > 65536 {
		return nil, fmt.Errorf("%w: %d distinct symbols", ErrCorrupt, ndist)
	}
	lengths := make(map[uint16]uint8, ndist)
	tableSyms := make([]uint16, ndist)
	for i := 0; i < ndist; i++ {
		s64, err := r.ReadBits(16)
		if err != nil {
			return nil, fmt.Errorf("%w: table", ErrCorrupt)
		}
		l64, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: table", ErrCorrupt)
		}
		if l64 == 0 || l64 > MaxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, l64)
		}
		s := uint16(s64)
		if _, dup := lengths[s]; dup {
			return nil, fmt.Errorf("%w: duplicate symbol %d", ErrCorrupt, s)
		}
		lengths[s] = uint8(l64)
		tableSyms[i] = s
	}
	syms, codes := canonical(lengths)
	// Build decode map: (length, code) -> symbol.
	type lc struct {
		l uint8
		c uint32
	}
	dec := make(map[lc]uint16, len(syms))
	for _, s := range syms {
		dec[lc{lengths[s], codes[s]}] = s
	}
	out := make([]uint16, 0, nsym)
	for len(out) < nsym {
		var code uint32
		var l uint8
		found := false
		for l < MaxCodeLen {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: payload", ErrCorrupt)
			}
			code = code<<1 | uint32(b)
			l++
			if s, ok := dec[lc{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: unmatched code", ErrCorrupt)
		}
	}
	return out, nil
}
