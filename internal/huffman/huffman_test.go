package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in []uint16) {
	t.Helper()
	enc := Encode(in)
	out, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(in) == 0 && len(out) == 0 {
		return
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: in %v out %v", in, out)
	}
}

func TestRoundTripEmpty(t *testing.T)  { roundTrip(t, nil) }
func TestRoundTripSingle(t *testing.T) { roundTrip(t, []uint16{42}) }

func TestRoundTripRepeated(t *testing.T) {
	in := make([]uint16, 1000)
	for i := range in {
		in[i] = 7
	}
	roundTrip(t, in)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	in := []uint16{1, 2, 1, 1, 2, 1, 1, 1, 2}
	roundTrip(t, in)
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]uint16, 4096)
	for i := range in {
		// Geometric-ish distribution typical of quantization tokens.
		v := 0
		for v < 200 && rng.Float64() < 0.7 {
			v++
		}
		in[i] = uint16(v)
	}
	roundTrip(t, in)
}

func TestRoundTripUniformWide(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]uint16, 2048)
	for i := range in {
		in[i] = uint16(rng.Intn(65536))
	}
	roundTrip(t, in)
}

func TestCompressionBeatsRawOnSkewed(t *testing.T) {
	in := make([]uint16, 1<<14)
	rng := rand.New(rand.NewSource(3))
	for i := range in {
		if rng.Float64() < 0.95 {
			in[i] = 0
		} else {
			in[i] = uint16(rng.Intn(16))
		}
	}
	enc := Encode(in)
	raw := len(in) * 2
	if len(enc) >= raw/3 {
		t.Fatalf("skewed stream compressed to %d bytes, raw %d — expected ≥3x reduction", len(enc), raw)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},           // no header
		{0, 0, 0, 1}, // symbol count 1 but no table
		{0xFF, 0xFF}, // truncated header
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	in := []uint16{1, 2, 3, 4, 5, 6, 7, 8}
	enc := Encode(in)
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		// Truncating one byte may still decode if padding covered it;
		// cut harder.
		if _, err2 := Decode(enc[:len(enc)/2]); err2 == nil {
			t.Fatal("heavily truncated payload decoded without error")
		}
	}
}

func TestCanonicalDeterminism(t *testing.T) {
	in := []uint16{5, 5, 3, 3, 3, 9, 1, 1, 1, 1}
	a := Encode(in)
	b := Encode(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(in []uint16) bool {
		enc := Encode(in)
		out, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := make([]uint16, 1<<14)
	for i := range in {
		in[i] = uint16(rng.Intn(64))
	}
	b.SetBytes(int64(len(in) * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(in)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := make([]uint16, 1<<14)
	for i := range in {
		in[i] = uint16(rng.Intn(64))
	}
	enc := Encode(in)
	b.SetBytes(int64(len(in) * 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
