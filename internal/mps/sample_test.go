package mps

import (
	"math"
	"math/rand"
	"testing"

	"qcsim/internal/quantum"
)

// chiSquareCritical approximates the upper-p critical value of the
// chi-square distribution with df degrees of freedom via the
// Wilson–Hilferty transform — plenty for a fixed-seed acceptance gate.
func chiSquareCritical(df int, z float64) float64 {
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// sampleCircuits are the statistical-test workloads: two-point support
// (GHZ), spread support (QFT over a random input layer), and dense
// support (brickwork entangler).
func sampleCircuits() []struct {
	name string
	cir  *quantum.Circuit
} {
	return []struct {
		name string
		cir  *quantum.Circuit
	}{
		{"ghz8", quantum.GHZ(8)},
		{"qft7", quantum.QFT(7, 3)},
		{"brickwork8", quantum.Brickwork(8, 3, 5)},
	}
}

// TestPerfectSamplingChiSquare draws a fixed-seed sample from the MPS
// perfect sampler and chi-square-tests it against the dense reference
// distribution — the statistical proof that conditional contraction
// samples the true |⟨x|ψ⟩|² and not an approximation of it.
func TestPerfectSamplingChiSquare(t *testing.T) {
	const shots = 20000
	for _, tc := range sampleCircuits() {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.cir.N
			st, err := New(n, 256) // χ ≥ 2^(n/2): exact, no truncation
			if err != nil {
				t.Fatal(err)
			}
			if err := st.ApplyCircuit(tc.cir); err != nil {
				t.Fatal(err)
			}
			ref := quantum.NewState(n)
			ref.ApplyCircuit(tc.cir)

			sp, err := st.NewSampler()
			if err != nil {
				t.Fatal(err)
			}
			if m := sp.TotalMass(); math.Abs(m-1) > 1e-9 {
				t.Fatalf("total mass %v of an untruncated state", m)
			}
			draws, err := sp.Sample(rand.New(rand.NewSource(2019)), shots)
			if err != nil {
				t.Fatal(err)
			}

			counts := make(map[uint64]int)
			for _, x := range draws {
				counts[x]++
			}
			// Pearson statistic over outcomes with enough expected
			// mass; everything else lumps into one tail bin (the
			// standard small-expectation correction).
			var chi2, tailExp float64
			tailObs := 0
			bins := 0
			seen := make(map[uint64]bool)
			for x := uint64(0); x < 1<<uint(n); x++ {
				exp := ref.Probability(x) * shots
				if exp >= 5 {
					obs := float64(counts[x])
					chi2 += (obs - exp) * (obs - exp) / exp
					bins++
					seen[x] = true
				} else {
					tailExp += exp
				}
			}
			for x, c := range counts {
				if !seen[x] {
					tailObs += c
				}
			}
			if tailExp >= 5 {
				obs := float64(tailObs)
				chi2 += (obs - tailExp) * (obs - tailExp) / tailExp
				bins++
			} else if tailObs > 0 && tailExp < 1e-9 {
				t.Fatalf("%d draws landed on outcomes with ~zero reference probability", tailObs)
			}
			if bins < 2 {
				t.Fatalf("degenerate bin count %d", bins)
			}
			crit := chiSquareCritical(bins-1, 3.09) // p ≈ 0.999
			if chi2 > crit {
				t.Fatalf("chi-square %0.1f exceeds the 99.9%% critical value %0.1f over %d bins",
					chi2, crit, bins)
			}
		})
	}
}

// TestSamplingSeedContract pins the seeding contract: the same seed
// yields bit-identical draw sequences, across independently built
// samplers of independently built (identical) states.
func TestSamplingSeedContract(t *testing.T) {
	build := func() *Sampler {
		st, err := New(9, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.ApplyCircuit(quantum.Brickwork(9, 3, 11)); err != nil {
			t.Fatal(err)
		}
		sp, err := st.NewSampler()
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a, err := build().Sample(rand.New(rand.NewSource(7)), 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Sample(rand.New(rand.NewSource(7)), 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c, err := build().Sample(rand.New(rand.NewSource(8)), 512)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 512-draw sequences")
	}
}

// TestSamplingOnTruncatedState checks the sampler stays a valid,
// correctly normalized distribution after lossy truncation: TotalMass
// equals the state's true squared norm (which drifts from 1 once a
// non-canonical chain truncates), every conditional draw divides by
// the running total, and draws stay in range while the ledger records
// the loss.
func TestSamplingOnTruncatedState(t *testing.T) {
	st, err := New(10, 2) // far too small for depth-4 brickwork
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyCircuit(quantum.Brickwork(10, 4, 13)); err != nil {
		t.Fatal(err)
	}
	if st.FidelityLowerBound() >= 1 {
		t.Fatal("expected a truncating run")
	}
	sp, err := st.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	if m, n := sp.TotalMass(), st.Norm(); math.Abs(m-n) > 1e-9*math.Abs(n) {
		t.Fatalf("sampler total mass %v disagrees with Norm() %v", m, n)
	}
	draws, err := sp.Sample(rand.New(rand.NewSource(3)), 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range draws {
		if x >= 1<<10 {
			t.Fatalf("draw %d outside the register", x)
		}
	}
}
