// Package mps implements a matrix-product-state (tensor network)
// simulator — the §2.2 comparator the paper positions its approach
// against. An MPS stores one 3-index tensor per qubit; entanglement is
// capped by the bond dimension χ, and every two-qubit gate pays an SVD
// whose truncation discards singular-value weight.
//
// The package exists to demonstrate the paper's comparison empirically:
//
//   - Low-entanglement circuits (GHZ, shallow QAOA) simulate in
//     polynomial memory where the full-state engine needs 2^n.
//   - Entangling circuits blow past any fixed χ; the discarded weight —
//     tracked like the paper's fidelity ledger — lower-bounds the
//     fidelity loss, while the compressed full-state engine degrades
//     gracefully via pointwise error bounds instead.
//   - Measurement collapse and full-state assertion checking have no
//     efficient general equivalent here: the paper's §1 argument for
//     full-state methods.
//
// Gate support: arbitrary single-qubit unitaries and singly-controlled
// unitaries between any qubit pair (routed with SWAPs). Multi-control
// gates and measurement are rejected.
package mps

import (
	"fmt"
	"math"
	"math/cmplx"

	"qcsim/internal/quantum"
)

// State is an MPS over n qubits with bond dimension cap chi.
// tensors[q] has shape (bondL[q], 2, bondR[q]) stored row-major as
// [l*2*br + p*br + r].
type State struct {
	n       int
	chi     int
	tensors [][]complex128
	bondL   []int
	bondR   []int
	// ledger is Π(1 - discarded weight) over truncating SVDs — the
	// tensor-network analog of the paper's Eq. 11 fidelity ledger.
	ledger float64
	// Truncations counts SVDs that actually discarded weight.
	Truncations int
}

// New returns |0...0⟩ with bond-dimension cap chi ≥ 2.
func New(n, chi int) (*State, error) {
	if n < 1 {
		return nil, fmt.Errorf("mps: need ≥ 1 qubit")
	}
	if chi < 2 {
		return nil, fmt.Errorf("mps: bond dimension %d too small", chi)
	}
	s := &State{n: n, chi: chi, ledger: 1}
	s.tensors = make([][]complex128, n)
	s.bondL = make([]int, n)
	s.bondR = make([]int, n)
	for q := 0; q < n; q++ {
		s.bondL[q], s.bondR[q] = 1, 1
		t := make([]complex128, 2)
		t[0] = 1 // physical index 0
		s.tensors[q] = t
	}
	return s, nil
}

// Qubits returns n.
func (s *State) Qubits() int { return s.n }

// BondDim returns the bond-dimension cap χ.
func (s *State) BondDim() int { return s.chi }

// Reset reinitializes the state to |0...0⟩ and the truncation ledger to
// 1, keeping n and χ.
func (s *State) Reset() {
	s.SetBasisState(0)
}

// SetBasisState reinitializes the state to the product state |idx⟩ —
// bond dimension 1 everywhere, ledger 1.
func (s *State) SetBasisState(idx uint64) {
	for q := 0; q < s.n; q++ {
		s.bondL[q], s.bondR[q] = 1, 1
		t := make([]complex128, 2)
		t[idx>>uint(q)&1] = 1
		s.tensors[q] = t
	}
	s.ledger = 1
	s.Truncations = 0
}

// FidelityLowerBound returns Π(1 - discarded SVD weight).
func (s *State) FidelityLowerBound() float64 { return s.ledger }

// ApplyCircuit applies every gate of c.
func (s *State) ApplyCircuit(c *quantum.Circuit) error {
	if c.N != s.n {
		return fmt.Errorf("mps: circuit has %d qubits, state %d", c.N, s.n)
	}
	for _, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGate applies one gate. Measurement and multi-controlled gates
// report a typed UnsupportedOpError wrapping ErrUnsupportedOp.
func (s *State) ApplyGate(g quantum.Gate) error {
	if g.Kind == quantum.KindMeasure {
		return unsupported("measure",
			"measurement collapse has no efficient tensor-network form (the paper's §1 limitation)")
	}
	switch len(g.Controls) {
	case 0:
		s.apply1(g.Target, g.U)
		return nil
	case 1:
		return s.applyControlled(g.Controls[0], g.Target, g.U)
	default:
		return unsupported("multi-control",
			fmt.Sprintf("%d-controlled %q gate (decompose to ≤1 control)", len(g.Controls), g.Name))
	}
}

// apply1 contracts a single-qubit unitary into tensor q.
func (s *State) apply1(q int, u quantum.Matrix2) {
	bl, br := s.bondL[q], s.bondR[q]
	t := s.tensors[q]
	for l := 0; l < bl; l++ {
		for r := 0; r < br; r++ {
			a0 := t[l*2*br+0*br+r]
			a1 := t[l*2*br+1*br+r]
			t[l*2*br+0*br+r] = u[0][0]*a0 + u[0][1]*a1
			t[l*2*br+1*br+r] = u[1][0]*a0 + u[1][1]*a1
		}
	}
}

// controlled4 builds the 4×4 matrix of a controlled-u on (control,
// target) adjacent pair with control as the LEFT (lower-index) qubit.
// Index order: (control, target) → basis c*2+t.
func controlled4(u quantum.Matrix2) [4][4]complex128 {
	var m [4][4]complex128
	m[0][0], m[1][1] = 1, 1 // control 0: identity
	m[2][2] = u[0][0]
	m[2][3] = u[0][1]
	m[3][2] = u[1][0]
	m[3][3] = u[1][1]
	return m
}

// swap4 is the SWAP matrix in the same basis.
func swap4() [4][4]complex128 {
	var m [4][4]complex128
	m[0][0], m[1][2], m[2][1], m[3][3] = 1, 1, 1, 1
	return m
}

// applyControlled routes control and target adjacent with SWAPs, applies
// the controlled gate, and routes back.
func (s *State) applyControlled(ctl, tgt int, u quantum.Matrix2) error {
	if ctl == tgt {
		return fmt.Errorf("mps: control equals target")
	}
	// Move ctl next to tgt (just left of it if ctl < tgt, right
	// otherwise) by nearest-neighbor SWAPs.
	pos := ctl
	for pos < tgt-1 {
		s.apply2(pos, swap4())
		pos++
	}
	for pos > tgt+1 {
		s.apply2(pos-1, swap4())
		pos--
	}
	if pos == tgt-1 {
		s.apply2(pos, controlled4(u))
	} else {
		// Control sits right of target: conjugate by one SWAP to put
		// the control on the left of the pair (tgt, pos).
		s.apply2(tgt, swap4())
		s.apply2(tgt, controlled4(u))
		s.apply2(tgt, swap4())
	}
	// Route the control back.
	for pos > ctl {
		s.apply2(pos-1, swap4())
		pos--
	}
	for pos < ctl {
		s.apply2(pos, swap4())
		pos++
	}
	return nil
}

// apply2 applies a 4×4 unitary to the adjacent pair (q, q+1), then
// splits with a truncated SVD.
func (s *State) apply2(q int, m [4][4]complex128) {
	bl := s.bondL[q]
	bm := s.bondR[q] // == bondL[q+1]
	br := s.bondR[q+1]
	A, B := s.tensors[q], s.tensors[q+1]

	// theta[l, p0, p1, r] = Σ_k A[l,p0,k]·B[k,p1,r], then gate applied
	// on (p0,p1).
	theta := make([]complex128, bl*4*br)
	for l := 0; l < bl; l++ {
		for p0 := 0; p0 < 2; p0++ {
			for p1 := 0; p1 < 2; p1++ {
				for r := 0; r < br; r++ {
					var v complex128
					for k := 0; k < bm; k++ {
						v += A[l*2*bm+p0*bm+k] * B[k*2*br+p1*br+r]
					}
					theta[l*4*br+(p0*2+p1)*br+r] = v
				}
			}
		}
	}
	out := make([]complex128, bl*4*br)
	for l := 0; l < bl; l++ {
		for r := 0; r < br; r++ {
			for pi := 0; pi < 4; pi++ {
				var v complex128
				for pj := 0; pj < 4; pj++ {
					v += m[pi][pj] * theta[l*4*br+pj*br+r]
				}
				out[l*4*br+pi*br+r] = v
			}
		}
	}

	// Reshape to (bl·2) × (2·br) and SVD.
	M := newMatrix(bl*2, 2*br)
	for l := 0; l < bl; l++ {
		for p0 := 0; p0 < 2; p0++ {
			for p1 := 0; p1 < 2; p1++ {
				for r := 0; r < br; r++ {
					M.set(l*2+p0, p1*br+r, out[l*4*br+(p0*2+p1)*br+r])
				}
			}
		}
	}
	U, sv, V := svd(M)

	// Truncate to chi, tracking the discarded weight.
	keep := len(sv)
	if keep > s.chi {
		keep = s.chi
	}
	var total, kept float64
	for i, v := range sv {
		w := v * v
		total += w
		if i < keep {
			kept += w
		}
	}
	// Drop numerically-dead singular values too.
	for keep > 1 && sv[keep-1] < 1e-13*sv[0] {
		keep--
	}
	if total > 0 && kept < total {
		s.ledger *= kept / total
		s.Truncations++
	}
	// New tensors: A' = U (bl,2,keep); B' = diag(s)·V† (keep,2,br),
	// with the kept spectrum renormalized so the state stays unit norm
	// (standard MPS practice; the ledger already recorded the loss).
	var keptW float64
	for i := 0; i < keep; i++ {
		keptW += sv[i] * sv[i]
	}
	renorm := 1.0
	if keptW > 0 && total > 0 {
		renorm = math.Sqrt(total / keptW)
	}
	Anew := make([]complex128, bl*2*keep)
	for l := 0; l < bl; l++ {
		for p0 := 0; p0 < 2; p0++ {
			for k := 0; k < keep; k++ {
				Anew[l*2*keep+p0*keep+k] = U.at(l*2+p0, k)
			}
		}
	}
	Bnew := make([]complex128, keep*2*br)
	for k := 0; k < keep; k++ {
		sk := complex(sv[k]*renorm, 0)
		for p1 := 0; p1 < 2; p1++ {
			for r := 0; r < br; r++ {
				Bnew[k*2*br+p1*br+r] = sk * cmplx.Conj(V.at(p1*br+r, k))
			}
		}
	}
	s.tensors[q] = Anew
	s.tensors[q+1] = Bnew
	s.bondR[q] = keep
	s.bondL[q+1] = keep
}

// Amplitude contracts ⟨x|ψ⟩ in O(n·χ²).
func (s *State) Amplitude(x uint64) complex128 {
	// Row vector v of length bond, starting at 1.
	v := []complex128{1}
	for q := 0; q < s.n; q++ {
		p := int(x >> uint(q) & 1)
		bl, br := s.bondL[q], s.bondR[q]
		t := s.tensors[q]
		nv := make([]complex128, br)
		for r := 0; r < br; r++ {
			var acc complex128
			for l := 0; l < bl; l++ {
				acc += v[l] * t[l*2*br+p*br+r]
			}
			nv[r] = acc
		}
		v = nv
	}
	return v[0]
}

// Norm returns Σ|⟨x|ψ⟩|² by exact contraction of the transfer matrices.
func (s *State) Norm() float64 {
	return s.contractDiag(nil)
}

// MaxBond returns the largest bond dimension currently in use — the
// entanglement cost the paper's treewidth argument is about.
func (s *State) MaxBond() int {
	m := 1
	for q := 0; q < s.n; q++ {
		if s.bondR[q] > m {
			m = s.bondR[q]
		}
	}
	return m
}

// MemoryBytes returns the current tensor storage footprint.
func (s *State) MemoryBytes() int64 {
	var total int64
	for _, t := range s.tensors {
		total += int64(len(t)) * 16
	}
	return total
}

// Dense contracts the full state vector (test and inspection scales
// only — the result is 2^n amplitudes).
func (s *State) Dense() ([]complex128, error) {
	if s.n > 26 {
		return nil, fmt.Errorf("mps: dense contraction of %d qubits refused", s.n)
	}
	out := make([]complex128, 1<<uint(s.n))
	for x := range out {
		out[x] = s.Amplitude(uint64(x))
	}
	return out, nil
}
