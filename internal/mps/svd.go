package mps

import (
	"math"
	"math/cmplx"
)

// Complex singular value decomposition by one-sided Jacobi rotations —
// the only dense linear algebra the MPS simulator needs, implemented on
// the standard library alone. Matrices here are tiny (≤ 2χ on a side),
// so the O(n³) sweeps are cheap.

// matrix is a dense row-major complex matrix.
type matrix struct {
	rows, cols int
	a          []complex128
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, a: make([]complex128, rows*cols)}
}

func (m *matrix) at(i, j int) complex128     { return m.a[i*m.cols+j] }
func (m *matrix) set(i, j int, v complex128) { m.a[i*m.cols+j] = v }

// svd decomposes A (rows×cols) into U·diag(s)·V†, returning U
// (rows×k), s (length k), V (cols×k) with k = min(rows, cols),
// singular values descending.
func svd(A *matrix) (U *matrix, s []float64, V *matrix) {
	m, n := A.rows, A.cols
	// Work on a copy W = A; V accumulates the column rotations so that
	// at convergence W = U·diag(s)·V† with W's columns orthogonal.
	W := newMatrix(m, n)
	copy(W.a, A.a)
	Vfull := newMatrix(n, n)
	for i := 0; i < n; i++ {
		Vfull.set(i, i, 1)
	}

	colDot := func(M *matrix, p, q int) complex128 { // ⟨col p, col q⟩
		var d complex128
		for i := 0; i < M.rows; i++ {
			d += cmplx.Conj(M.at(i, p)) * M.at(i, q)
		}
		return d
	}

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				app := real(colDot(W, p, p))
				aqq := real(colDot(W, q, q))
				apq := colDot(W, p, q)
				if cmplx.Abs(apq) <= tol*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				off += cmplx.Abs(apq)
				// Complex Jacobi rotation eliminating ⟨p,q⟩: first strip
				// the phase of apq, then a real rotation.
				phase := cmplx.Rect(1, -cmplx.Phase(apq))
				// After scaling column q by phase, the off-diagonal is
				// |apq| (real).
				b := cmplx.Abs(apq)
				theta := 0.5 * math.Atan2(2*b, app-aqq)
				c := complex(math.Cos(theta), 0)
				sn := complex(math.Sin(theta), 0)
				for i := 0; i < m; i++ {
					wp := W.at(i, p)
					wq := W.at(i, q) * phase
					W.set(i, p, c*wp+sn*wq)
					W.set(i, q, -sn*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp := Vfull.at(i, p)
					vq := Vfull.at(i, q) * phase
					Vfull.set(i, p, c*vp+sn*vq)
					Vfull.set(i, q, -sn*vp+c*vq)
				}
			}
		}
		if off < tol {
			break
		}
	}

	k := n
	if m < n {
		k = m
	}
	// Column norms are the singular values; sort descending.
	type sv struct {
		val float64
		col int
	}
	all := make([]sv, n)
	for j := 0; j < n; j++ {
		var nrm float64
		for i := 0; i < m; i++ {
			v := W.at(i, j)
			nrm += real(v)*real(v) + imag(v)*imag(v)
		}
		all[j] = sv{math.Sqrt(nrm), j}
	}
	for i := 0; i < len(all); i++ { // insertion sort (tiny n)
		for j := i; j > 0 && all[j].val > all[j-1].val; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}

	U = newMatrix(m, k)
	V = newMatrix(n, k)
	s = make([]float64, k)
	for jj := 0; jj < k; jj++ {
		src := all[jj].col
		s[jj] = all[jj].val
		if s[jj] > 1e-300 {
			inv := complex(1/s[jj], 0)
			for i := 0; i < m; i++ {
				U.set(i, jj, W.at(i, src)*inv)
			}
		}
		for i := 0; i < n; i++ {
			V.set(i, jj, Vfull.at(i, src))
		}
	}
	return U, s, V
}
