package mps

import (
	"errors"
	"testing"

	"qcsim/internal/quantum"
)

// TestUnsupportedOpsTyped is the per-op regression suite for the typed
// rejection contract: every operation an MPS cannot run fails with a
// *UnsupportedOpError wrapping ErrUnsupportedOp (so errors.Is works at
// the facade), and the Op field names what was rejected.
func TestUnsupportedOpsTyped(t *testing.T) {
	cases := []struct {
		name   string
		gate   func(c *quantum.Circuit)
		wantOp string
	}{
		{"measure", func(c *quantum.Circuit) { c.Measure(0) }, "measure"},
		{"toffoli", func(c *quantum.Circuit) { c.Toffoli(0, 1, 2) }, "multi-control"},
		{"ccz", func(c *quantum.Circuit) { c.CCZ(0, 1, 2) }, "multi-control"},
		{"mcz", func(c *quantum.Circuit) { c.MCZ(3, 0, 1, 2) }, "multi-control"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := New(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			c := quantum.NewCircuit(4)
			tc.gate(c)
			err = st.ApplyCircuit(c)
			if err == nil {
				t.Fatalf("%s gate unexpectedly accepted", tc.name)
			}
			if !errors.Is(err, ErrUnsupportedOp) {
				t.Fatalf("error %q does not wrap ErrUnsupportedOp", err)
			}
			var ue *UnsupportedOpError
			if !errors.As(err, &ue) {
				t.Fatalf("error %q carries no *UnsupportedOpError", err)
			}
			if ue.Op != tc.wantOp {
				t.Fatalf("rejected op %q, want %q", ue.Op, tc.wantOp)
			}
		})
	}
}

// TestSupportedGatesNotRejected guards the boundary: single-qubit and
// singly-controlled gates (at any distance) are NOT unsupported.
func TestSupportedGatesNotRejected(t *testing.T) {
	st, err := New(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := quantum.NewCircuit(5)
	c.H(0).X(1).RZ(2, 0.3).CNOT(0, 4).CZ(3, 1).CPhase(4, 0, 0.7).SWAP(1, 3)
	if err := st.ApplyCircuit(c); err != nil {
		t.Fatalf("supported gate rejected: %v", err)
	}
}
