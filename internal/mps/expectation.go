package mps

import (
	"fmt"
	"math/cmplx"

	"qcsim/internal/quantum"
)

// Diagonal observables by transfer-matrix contraction — the surface the
// compressed engine exposes (ExpectationZ, ExpectationZZ, MaxCutEnergy,
// ProbabilityOne) implemented without ever materializing 2^n
// amplitudes. Each contraction sweeps the chain once, carrying a χ×χ
// environment: O(n·χ⁴) time, O(χ²) memory.

// contractDiag contracts ⟨ψ| D |ψ⟩ for the diagonal operator
// D = ⊗_q diag(weight(q,0), weight(q,1)). A nil weight means the
// identity at every site, i.e. the squared norm ⟨ψ|ψ⟩.
func (s *State) contractDiag(weight func(q, p int) float64) float64 {
	// E starts as the 1×1 identity environment and is contracted with
	// each site's (weighted) transfer operator.
	bl := 1
	E := []complex128{1} // bl×bl row-major
	for q := 0; q < s.n; q++ {
		br := s.bondR[q]
		t := s.tensors[q]
		nE := make([]complex128, br*br)
		for r1 := 0; r1 < br; r1++ {
			for r2 := 0; r2 < br; r2++ {
				var acc complex128
				for l1 := 0; l1 < bl; l1++ {
					for l2 := 0; l2 < bl; l2++ {
						e := E[l1*bl+l2]
						if e == 0 {
							continue
						}
						for p := 0; p < 2; p++ {
							term := e * cmplx.Conj(t[l1*2*br+p*br+r1]) * t[l2*2*br+p*br+r2]
							if weight != nil {
								term *= complex(weight(q, p), 0)
							}
							acc += term
						}
					}
				}
				nE[r1*br+r2] = acc
			}
		}
		E = nE
		bl = br
	}
	return real(E[0])
}

// zWeight is the Z eigenvalue at sites a and b (pass b = -1 for a
// single site): +1 for |0⟩, -1 for |1⟩, identity elsewhere. Plain int
// compares — this closure runs in the innermost contraction loop.
func zWeight(a, b int) func(q, p int) float64 {
	return func(q, p int) float64 {
		if p == 1 && (q == a || q == b) {
			return -1
		}
		return 1
	}
}

func (s *State) checkQubit(q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("mps: qubit %d out of range [0,%d)", q, s.n)
	}
	return nil
}

// ExpectationZ returns ⟨Z_q⟩, normalized by ⟨ψ|ψ⟩ (1 up to truncation
// renormalization rounding).
func (s *State) ExpectationZ(q int) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	norm := s.contractDiag(nil)
	if norm <= 0 {
		return 0, fmt.Errorf("mps: state has zero norm")
	}
	return s.contractDiag(zWeight(q, -1)) / norm, nil
}

// ExpectationZZ returns the two-point correlator ⟨Z_a Z_b⟩.
func (s *State) ExpectationZZ(a, b int) (float64, error) {
	norm := s.contractDiag(nil)
	if norm <= 0 {
		return 0, fmt.Errorf("mps: state has zero norm")
	}
	return s.expectationZZNormed(a, b, norm)
}

// expectationZZNormed is ExpectationZZ against a precomputed norm, so
// sweeps over many pairs (MaxCutEnergy) pay the norm contraction once.
func (s *State) expectationZZNormed(a, b int, norm float64) (float64, error) {
	if err := s.checkQubit(a); err != nil {
		return 0, err
	}
	if err := s.checkQubit(b); err != nil {
		return 0, err
	}
	if a == b {
		return 1, nil // Z² = I on a normalized state
	}
	return s.contractDiag(zWeight(a, b)) / norm, nil
}

// ProbabilityOne returns P(qubit q = 1) = (1 - ⟨Z_q⟩)/2.
func (s *State) ProbabilityOne(q int) (float64, error) {
	z, err := s.ExpectationZ(q)
	if err != nil {
		return 0, err
	}
	p := (1 - z) / 2
	// Clamp floating-point residue so callers can treat it as a
	// probability.
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// MaxCutEnergy returns the expected cut value Σ_edges (1 - ⟨Z_u Z_v⟩)/2
// of the current state — the QAOA objective over the given graph.
func (s *State) MaxCutEnergy(edges []quantum.Edge) (float64, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	norm := s.contractDiag(nil)
	if norm <= 0 {
		return 0, fmt.Errorf("mps: state has zero norm")
	}
	var cut float64
	for _, e := range edges {
		zz, err := s.expectationZZNormed(e.U, e.V, norm)
		if err != nil {
			return 0, err
		}
		cut += (1 - zz) / 2
	}
	return cut, nil
}
