package mps

import (
	"errors"
	"fmt"
)

// ErrUnsupportedOp is the sentinel for operations an MPS genuinely
// cannot perform efficiently — measurement collapse, multi-controlled
// gates, full-state assertions, checkpointing. Every rejection wraps
// it (through UnsupportedOpError), so callers branch with errors.Is;
// the public qcsim facade re-exports it as qcsim.ErrUnsupportedOp.
//
// The set of rejected operations is the paper's §1 argument for
// full-state simulation made executable: the compressed engine supports
// all of them, the tensor-network comparator does not.
var ErrUnsupportedOp = errors.New("mps: operation unsupported by the MPS backend")

// UnsupportedOpError identifies which operation an MPS rejected and
// why. It wraps ErrUnsupportedOp, so both errors.Is(err,
// ErrUnsupportedOp) and errors.As(err, *UnsupportedOpError) work.
type UnsupportedOpError struct {
	// Op names the rejected operation ("measure", "multi-control",
	// "assert", "checkpoint", "noise").
	Op string
	// Reason explains the structural limitation.
	Reason string
}

// Error implements the error interface.
func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("mps: %s unsupported: %s", e.Op, e.Reason)
}

// Unwrap ties the typed error to the sentinel.
func (e *UnsupportedOpError) Unwrap() error { return ErrUnsupportedOp }

// unsupported builds the standard rejection for op.
func unsupported(op, reason string) error {
	return &UnsupportedOpError{Op: op, Reason: reason}
}
