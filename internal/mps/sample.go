package mps

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Perfect sampling from an MPS: draw full-register outcomes one qubit
// at a time by conditional contraction, never materializing the 2^n
// vector. The classic tensor-network result this implements is that a
// chain with bond dimension χ admits exact (up to truncation already
// recorded in the ledger) sampling in O(n·χ³) preprocessing plus
// O(n·χ²) per shot:
//
//   - Right environments R[q] (χ×χ, positive semidefinite) summarize
//     the squared-norm contribution of sites q..n-1 for every left-bond
//     pair; R[0] is the squared norm itself.
//   - A shot sweeps left to right, carrying the row vector v of the
//     chosen-prefix contraction. At site q the conditional weights are
//     w_p = (v·A_p) R[q+1] (v·A_p)† for p ∈ {0,1}; a uniform draw picks
//     the bit, and v advances to the chosen branch.
//
// This is the MPS analog of the compressed engine's streaming sampler:
// same contract (seeded stream, no state mutation, draws follow the
// normalized distribution), different substrate.

// Sampler draws outcomes from a fixed State. Build with NewSampler; the
// Sampler is bound to the tensors at build time (it holds references,
// not copies), so the caller must not mutate the State while sampling —
// the qcsim facade enforces this with a version check. Not safe for
// concurrent use.
type Sampler struct {
	st *State
	// right[q] is the bondL[q]×bondL[q] environment of sites q..n-1;
	// right[n] is the 1×1 identity terminator.
	right [][]complex128
	total float64
}

// NewSampler builds the right environments in one O(n·χ³) sweep.
func (s *State) NewSampler() (*Sampler, error) {
	right := make([][]complex128, s.n+1)
	right[s.n] = []complex128{1}
	for q := s.n - 1; q >= 0; q-- {
		bl, br := s.bondL[q], s.bondR[q]
		t := s.tensors[q]
		R := right[q+1] // br×br
		// tmp[p][l][r2] = Σ_{r1} A[l,p,r1]·R[r1,r2], then
		// next[l1,l2] = Σ_p Σ_{r2} tmp[p][l1][r2]·conj(A[l2,p,r2]).
		next := make([]complex128, bl*bl)
		tmp := make([]complex128, br)
		for p := 0; p < 2; p++ {
			for l1 := 0; l1 < bl; l1++ {
				for r2 := 0; r2 < br; r2++ {
					var acc complex128
					for r1 := 0; r1 < br; r1++ {
						acc += t[l1*2*br+p*br+r1] * R[r1*br+r2]
					}
					tmp[r2] = acc
				}
				for l2 := 0; l2 < bl; l2++ {
					var acc complex128
					for r2 := 0; r2 < br; r2++ {
						acc += tmp[r2] * cmplx.Conj(t[l2*2*br+p*br+r2])
					}
					next[l1*bl+l2] += acc
				}
			}
		}
		right[q] = next
	}
	total := real(right[0][0])
	if !(total > 0) || math.IsNaN(total) {
		return nil, fmt.Errorf("mps: sampler: state has non-positive total mass %v", total)
	}
	return &Sampler{st: s, right: right, total: total}, nil
}

// TotalMass returns the squared norm ⟨ψ|ψ⟩ at build time — exactly 1
// up to rounding while no SVD has truncated; after truncation it can
// drift either side of 1, because the chain is not kept in canonical
// form, so the local renormalization of the kept spectrum is not a
// global one. Draws are always conditioned on the running total, so
// outcome frequencies follow the state's normalized distribution
// regardless.
func (sp *Sampler) TotalMass() float64 { return sp.total }

// Sample draws `shots` full-register outcomes. The stream contract
// matches the compressed engine's sampler: one rng consumption order
// fixed by (shot, qubit), so the same seed reproduces the same draws
// bit-for-bit; the state is never mutated.
func (sp *Sampler) Sample(rng *rand.Rand, shots int) ([]uint64, error) {
	if shots < 0 {
		return nil, fmt.Errorf("mps: negative shot count %d", shots)
	}
	s := sp.st
	out := make([]uint64, shots)
	// v and u are scratch for the prefix contraction; their max width
	// is the largest bond dimension.
	maxBond := 1
	for q := 0; q < s.n; q++ {
		if s.bondR[q] > maxBond {
			maxBond = s.bondR[q]
		}
	}
	v := make([]complex128, maxBond)
	u0 := make([]complex128, maxBond)
	u1 := make([]complex128, maxBond)
	for k := 0; k < shots; k++ {
		v[0] = 1
		var x uint64
		for q := 0; q < s.n; q++ {
			bl, br := s.bondL[q], s.bondR[q]
			t := s.tensors[q]
			R := sp.right[q+1]
			// Branch contractions u_p = v·A_p and their conditional
			// weights w_p = u_p·R·u_p†.
			var w [2]float64
			for p := 0; p < 2; p++ {
				u := u0
				if p == 1 {
					u = u1
				}
				for r := 0; r < br; r++ {
					var acc complex128
					for l := 0; l < bl; l++ {
						acc += v[l] * t[l*2*br+p*br+r]
					}
					u[r] = acc
				}
				var m complex128
				for r1 := 0; r1 < br; r1++ {
					var acc complex128
					for r2 := 0; r2 < br; r2++ {
						acc += R[r1*br+r2] * cmplx.Conj(u[r2])
					}
					m += u[r1] * acc
				}
				w[p] = real(m)
				if w[p] < 0 { // PSD up to rounding
					w[p] = 0
				}
			}
			tot := w[0] + w[1]
			bit := 0
			if tot > 0 {
				if rng.Float64() < w[1]/tot {
					bit = 1
				}
			} else {
				// Dead branch (numerically impossible prefix): keep the
				// stream contract by consuming the draw anyway.
				rng.Float64()
			}
			if bit == 1 {
				x |= 1 << uint(q)
			}
			chosen := u0
			if bit == 1 {
				chosen = u1
			}
			// Renormalize the carried prefix so long registers cannot
			// underflow; the conditional ratios are scale-invariant.
			scale := complex(1, 0)
			if wb := w[bit]; wb > 0 {
				scale = complex(1/math.Sqrt(wb), 0)
			}
			for r := 0; r < br; r++ {
				v[r] = chosen[r] * scale
			}
		}
		out[k] = x
	}
	return out, nil
}
