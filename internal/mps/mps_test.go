package mps

import (
	"math"
	"math/cmplx"
	"testing"

	"qcsim/internal/quantum"
)

// compareDense checks the MPS against the dense reference.
func compareDense(t *testing.T, s *State, c *quantum.Circuit, tol float64) {
	t.Helper()
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	ref := quantum.NewState(c.N)
	ref.ApplyCircuit(c)
	got, err := s.Dense()
	if err != nil {
		t.Fatal(err)
	}
	f := quantum.FidelityVec(ref.Amps, got)
	if math.Abs(f-1) > tol {
		t.Fatalf("fidelity = %v", f)
	}
}

func TestSVDReconstructs(t *testing.T) {
	A := newMatrix(4, 6)
	vals := []complex128{
		1, 2i, 0.5, -1, 0.25i, 3,
		-2, 1, 1i, 0.75, -0.5, 0,
		0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
		1i, -1i, 2, -2, 0.5i, 1,
	}
	copy(A.a, vals)
	U, s, V := svd(A)
	// Rebuild and compare.
	for i := 0; i < A.rows; i++ {
		for j := 0; j < A.cols; j++ {
			var v complex128
			for k := 0; k < len(s); k++ {
				v += U.at(i, k) * complex(s[k], 0) * cmplx.Conj(V.at(j, k))
			}
			if cmplx.Abs(v-A.at(i, j)) > 1e-10 {
				t.Fatalf("A[%d,%d] rebuilt as %v, want %v", i, j, v, A.at(i, j))
			}
		}
	}
	// Singular values descending and non-negative.
	for k := 1; k < len(s); k++ {
		if s[k] > s[k-1]+1e-12 || s[k] < 0 {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
	// U columns orthonormal.
	for a := 0; a < len(s); a++ {
		for b := 0; b < len(s); b++ {
			var d complex128
			for i := 0; i < U.rows; i++ {
				d += cmplx.Conj(U.at(i, a)) * U.at(i, b)
			}
			want := complex(0, 0)
			if a == b {
				want = 1
			}
			if cmplx.Abs(d-want) > 1e-10 {
				t.Fatalf("U†U[%d,%d] = %v", a, b, d)
			}
		}
	}
}

func TestInitialState(t *testing.T) {
	s, err := New(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a := s.Amplitude(0); cmplx.Abs(a-1) > 1e-12 {
		t.Fatalf("⟨0|ψ⟩ = %v", a)
	}
	if a := s.Amplitude(7); cmplx.Abs(a) > 1e-12 {
		t.Fatalf("⟨7|ψ⟩ = %v", a)
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("norm = %v", n)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("0 qubits accepted")
	}
	if _, err := New(3, 1); err == nil {
		t.Fatal("χ=1 accepted")
	}
	s, _ := New(3, 4)
	if err := s.ApplyGate(quantum.Gate{Kind: quantum.KindMeasure, Target: 0}); err == nil {
		t.Fatal("measurement accepted")
	}
	if err := s.ApplyGate(quantum.Gate{Name: "ccx", Target: 2, Controls: []int{0, 1}, U: quantum.MatX}); err == nil {
		t.Fatal("multi-control accepted")
	}
	if err := s.ApplyCircuit(quantum.NewCircuit(4).H(0)); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
}

func TestGHZExactAtChi2(t *testing.T) {
	// GHZ has Schmidt rank 2 across every cut: χ=2 is exact.
	s, _ := New(8, 2)
	compareDense(t, s, quantum.GHZ(8), 1e-10)
	if s.Truncations != 0 {
		t.Fatalf("GHZ required %d truncations at χ=2", s.Truncations)
	}
	if s.FidelityLowerBound() != 1 {
		t.Fatalf("ledger = %v", s.FidelityLowerBound())
	}
}

func TestBellPairAdjacent(t *testing.T) {
	s, _ := New(2, 2)
	compareDense(t, s, quantum.NewCircuit(2).H(0).CNOT(0, 1), 1e-12)
}

func TestLongRangeCNOT(t *testing.T) {
	// CNOT(0, 5) exercises the SWAP routing in both directions.
	s, _ := New(6, 4)
	c := quantum.NewCircuit(6).H(0).CNOT(0, 5).CNOT(5, 0).X(3).CNOT(3, 1)
	compareDense(t, s, c, 1e-10)
}

func TestQFTExactWithLargeChi(t *testing.T) {
	n := 6
	s, _ := New(n, 1<<n) // χ big enough to be exact
	compareDense(t, s, quantum.QFT(n, 9), 1e-8)
}

func TestQAOAExactWithLargeChi(t *testing.T) {
	n := 8
	s, _ := New(n, 1<<n)
	compareDense(t, s, quantum.QAOA(n, 1, 3), 1e-8)
}

func TestNormPreserved(t *testing.T) {
	n := 7
	s, _ := New(n, 8) // small χ: truncation will happen
	c := quantum.QAOA(n, 2, 5)
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if nm := s.Norm(); math.Abs(nm-1) > 1e-8 {
		t.Fatalf("norm after truncation = %v", nm)
	}
}

func TestTruncationLowersLedgerAndFidelity(t *testing.T) {
	// A supremacy circuit at tiny χ must truncate; the measured
	// fidelity degrades but stays consistent (ledger is a lower bound
	// up to numerical slack).
	cir := quantum.Supremacy(2, 4, 10, 4)
	small, _ := New(cir.N, 2)
	if err := small.ApplyCircuit(cir); err != nil {
		t.Fatal(err)
	}
	if small.Truncations == 0 {
		t.Fatal("no truncation at χ=2 on a supremacy circuit")
	}
	if small.FidelityLowerBound() >= 1 {
		t.Fatal("ledger did not move")
	}
	ref := quantum.NewState(cir.N)
	ref.ApplyCircuit(cir)
	got, err := small.Dense()
	if err != nil {
		t.Fatal(err)
	}
	f := quantum.FidelityVec(ref.Amps, got)
	if f > 0.999 {
		t.Fatalf("χ=2 supremacy fidelity %v implausibly high", f)
	}
	// Large χ restores exactness.
	big, _ := New(cir.N, 1<<uint(cir.N))
	if err := big.ApplyCircuit(cir); err != nil {
		t.Fatal(err)
	}
	got2, _ := big.Dense()
	if f2 := quantum.FidelityVec(ref.Amps, got2); math.Abs(f2-1) > 1e-7 {
		t.Fatalf("exact-χ fidelity = %v", f2)
	}
}

func TestMemoryAdvantageOnProductStates(t *testing.T) {
	// The tensor-network selling point: n qubits of low entanglement
	// cost O(n·χ²), not 2^n.
	n := 18
	s, _ := New(n, 2)
	c := quantum.GHZ(n)
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	dense := int64(16) << uint(n)
	if s.MemoryBytes() >= dense/100 {
		t.Fatalf("MPS used %d bytes, dense needs %d — no advantage", s.MemoryBytes(), dense)
	}
	if s.MaxBond() != 2 {
		t.Fatalf("GHZ bond = %d", s.MaxBond())
	}
	// And the state is still correct.
	a0 := s.Amplitude(0)
	a1 := s.Amplitude(1<<uint(n) - 1)
	w := 1 / math.Sqrt2
	if cmplx.Abs(a0-complex(w, 0)) > 1e-9 || cmplx.Abs(a1-complex(w, 0)) > 1e-9 {
		t.Fatalf("GHZ amplitudes %v %v", a0, a1)
	}
}

func TestRandomCircuitAgainstReference(t *testing.T) {
	// Unstructured circuits with full χ are exact.
	cir := quantum.RandomCircuit(6, 60, 77)
	s, _ := New(6, 64)
	compareDense(t, s, cir, 1e-8)
}
