package blockstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// randBlob derives a deterministic blob for (block, version) so
// equivalence checks can regenerate expected contents.
func randBlob(rng *rand.Rand, maxLen int) []byte {
	blob := make([]byte, rng.Intn(maxLen+1))
	rng.Read(blob)
	return blob
}

// TestTieredMatchesRAM drives a RAM store and a tiered store (budget
// tight enough to force constant eviction) through the same random
// Put/Get/Peek/hint sequence and requires identical contents and
// footprints throughout.
func TestTieredMatchesRAM(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(42))
	ram := NewRAM(n)
	tiered, err := NewTiered(n, t.TempDir(), "test", 600)
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	for step := 0; step < 4000; step++ {
		b := rng.Intn(n)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			blob := randBlob(rng, 100)
			if err := ram.Put(b, append([]byte(nil), blob...)); err != nil {
				t.Fatal(err)
			}
			if err := tiered.Put(b, blob); err != nil {
				t.Fatal(err)
			}
		case 4, 5, 6:
			want, _ := ram.Get(b)
			got, err := tiered.Get(b)
			if err != nil {
				t.Fatalf("step %d: Get(%d): %v", step, b, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: Get(%d) mismatch: %d vs %d bytes", step, b, len(got), len(want))
			}
		case 7, 8:
			want, _ := ram.Peek(b)
			got, err := tiered.Peek(b)
			if err != nil {
				t.Fatalf("step %d: Peek(%d): %v", step, b, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: Peek(%d) mismatch", step, b)
			}
		case 9:
			order := make([]int, 0, 8)
			for i := 0; i < 8; i++ {
				order = append(order, rng.Intn(n))
			}
			tiered.PrefetchHint(order)
		}
		if rf, tf := ram.Footprint(), tiered.Footprint(); rf != tf {
			t.Fatalf("step %d: footprint diverged: ram %d, tiered %d", step, rf, tf)
		}
	}
	if res := tiered.Resident(); res > 600+100 {
		// One most-recently-used blob may ride above the budget; more
		// means eviction is not holding the line.
		t.Fatalf("resident %d way over budget 600", res)
	}
}

// TestTieredEvictionBoundsResident fills a store far past its RAM
// budget and checks the resident gauge stays pinned near it while
// the full footprint keeps every byte.
func TestTieredEvictionBoundsResident(t *testing.T) {
	const n, blobLen, budget = 64, 100, 500
	st, err := NewTiered(n, t.TempDir(), "bounds", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for b := 0; b < n; b++ {
		blob := bytes.Repeat([]byte{byte(b)}, blobLen)
		if err := st.Put(b, blob); err != nil {
			t.Fatal(err)
		}
		if res := st.Resident(); res > budget {
			t.Fatalf("after Put(%d): resident %d > budget %d", b, res, budget)
		}
	}
	if got, want := st.Footprint(), int64(n*blobLen); got != want {
		t.Fatalf("footprint %d, want %d", got, want)
	}
	if s := st.Stats(); s.SpillWrites == 0 || s.SpilledBytes == 0 {
		t.Fatalf("expected spill traffic, got %+v", s)
	}
	// Every blob must read back intact, resident or not.
	for b := 0; b < n; b++ {
		blob, err := st.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != blobLen || blob[0] != byte(b) {
			t.Fatalf("block %d corrupted on read-back", b)
		}
	}
}

// TestTieredFreeListBoundsFile overwrites the same blocks many times;
// extent reuse must keep the spill file from growing without bound.
func TestTieredFreeListBoundsFile(t *testing.T) {
	const n, blobLen, budget = 16, 128, 256
	dir := t.TempDir()
	st, err := NewTiered(n, dir, "freelist", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		for b := 0; b < n; b++ {
			blob := make([]byte, blobLen)
			rng.Read(blob)
			if err := st.Put(b, blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	fi, err := os.Stat(st.f.Name())
	if err != nil {
		t.Fatal(err)
	}
	// At most n blobs are ever live on disk at once; allow 2x for
	// fragmentation. Without the free list the file would be ~50x.
	if maxSize := int64(2 * n * blobLen); fi.Size() > maxSize {
		t.Fatalf("spill file grew to %d bytes (want ≤ %d): free list not reusing extents", fi.Size(), maxSize)
	}
}

// TestTieredPrefetchStages spills everything, hints the full order,
// and drains it: the prefetcher should serve most Gets from RAM.
func TestTieredPrefetchStages(t *testing.T) {
	const n, blobLen, budget = 32, 100, 400
	st, err := NewTiered(n, t.TempDir(), "prefetch", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for b := 0; b < n; b++ {
		if err := st.Put(b, bytes.Repeat([]byte{byte(b)}, blobLen)); err != nil {
			t.Fatal(err)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	st.PrefetchHint(order)
	for _, b := range order {
		blob, err := st.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != blobLen || blob[0] != byte(b) {
			t.Fatalf("block %d corrupted", b)
		}
	}
	s := st.Stats()
	if s.PrefetchReads+s.SpillReads == 0 {
		t.Fatal("no disk reads at all despite spilled blocks")
	}
	// The walk is in hint order, so the prefetcher should win some
	// races; requiring ≥ 1 keeps the test robust on slow machines.
	if s.PrefetchHits == 0 && s.PrefetchReads > 0 {
		t.Logf("prefetcher staged %d blocks but every Get beat it (ok, just unlucky)", s.PrefetchReads)
	}
}

// TestTieredPrefetchWinsWithPacedConsumer is the prefetcher's
// guarantee under realistic pacing: when the consumer does real work
// between blocks (a sweep pass decompressing, applying gates, and
// recompressing takes far longer than a spill-file read), the
// prefetcher must absorb reads, not just avoid corrupting anything.
// The work is simulated with a sleep long enough to dominate any
// machine's disk latency, so the assertion can be hard.
func TestTieredPrefetchWinsWithPacedConsumer(t *testing.T) {
	const n, blobLen, budget = 32, 4 << 10, 16 << 10
	st, err := NewTiered(n, t.TempDir(), "paced", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	blob := bytes.Repeat([]byte{7}, blobLen)
	for b := 0; b < n; b++ {
		if err := st.Put(b, append([]byte(nil), blob...)); err != nil {
			t.Fatal(err)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	st.PrefetchHint(order)
	for _, b := range order {
		if _, err := st.Get(b); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // the "codec work" on block b
		if err := st.Put(b, append([]byte(nil), blob...)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.PrefetchHits == 0 {
		t.Fatalf("paced consumer saw 0 prefetch hits (%d demand reads, %d prefetch reads): prefetcher is not staging ahead",
			s.SpillReads, s.PrefetchReads)
	}
	t.Logf("paced consumer: %d demand reads, %d prefetch reads, %d hits", s.SpillReads, s.PrefetchReads, s.PrefetchHits)
}

// TestTieredCloseRemovesFile checks Close deletes the spill file and
// is idempotent, and that operations after Close fail with ErrSpill.
func TestTieredCloseRemovesFile(t *testing.T) {
	dir := t.TempDir()
	st, err := NewTiered(8, dir, "close", 100)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 8; b++ {
		if err := st.Put(b, bytes.Repeat([]byte{1}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	name := st.f.Name()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill file %s still exists after Close", name)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := st.Get(0); !errors.Is(err, ErrSpill) {
		t.Fatalf("Get after Close: got %v, want ErrSpill", err)
	}
}

// TestTieredBadDir checks construction failure reports ErrSpill.
func TestTieredBadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, err := NewTiered(4, dir, "bad", 100); !errors.Is(err, ErrSpill) {
		t.Fatalf("got %v, want ErrSpill", err)
	}
	if _, err := NewTiered(4, t.TempDir(), "bad", 0); !errors.Is(err, ErrSpill) {
		t.Fatalf("zero budget: got %v, want ErrSpill", err)
	}
}

// TestTieredEmptyAndNilBlobs: empty blobs are stored (not absences),
// never spill, and round-trip as empty.
func TestTieredEmptyAndNilBlobs(t *testing.T) {
	st, err := NewTiered(4, t.TempDir(), "empty", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(2, bytes.Repeat([]byte{9}, 200)); err != nil { // forces eviction pressure
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		blob, err := st.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != 0 {
			t.Fatalf("block %d: want empty, got %d bytes", b, len(blob))
		}
	}
	if got := st.Footprint(); got != 200 {
		t.Fatalf("footprint %d, want 200", got)
	}
}

// TestTieredConcurrentDistinctBlocks exercises the documented
// contract under the race detector: many goroutines hammering
// DISTINCT blocks while hints fly.
func TestTieredConcurrentDistinctBlocks(t *testing.T) {
	const n, workers = 64, 8
	st, err := NewTiered(n, t.TempDir(), "race", 500)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for b := 0; b < n; b++ {
		if err := st.Put(b, bytes.Repeat([]byte{byte(b)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	st.PrefetchHint(order)
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				b := rng.Intn(n/workers)*workers + w // worker-disjoint blocks
				if rng.Intn(2) == 0 {
					blob, err := st.Get(b)
					if err != nil {
						done <- err
						return
					}
					if len(blob) > 0 && blob[0] != byte(b) {
						done <- errors.New("cross-block corruption")
						return
					}
				} else if err := st.Put(b, bytes.Repeat([]byte{byte(b)}, 64)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
