package blockstore

import "sync"

// ram is the default single-tier store: the old [][]byte block table
// with the footprint delta accounting moved inside. Everything is
// resident; hints are no-ops and WantHints lets callers skip even
// building them.
type ram struct {
	mu        sync.Mutex
	blocks    [][]byte
	footprint int64
}

// NewRAM returns an in-memory store with n empty block slots.
func NewRAM(n int) Store {
	return &ram{blocks: make([][]byte, n)}
}

func (r *ram) Get(b int) ([]byte, error) {
	r.mu.Lock()
	blob := r.blocks[b]
	r.mu.Unlock()
	return blob, nil
}

func (r *ram) Peek(b int) ([]byte, error) { return r.Get(b) }

func (r *ram) Put(b int, blob []byte) error {
	r.mu.Lock()
	r.footprint += int64(len(blob)) - int64(len(r.blocks[b]))
	r.blocks[b] = blob
	r.mu.Unlock()
	return nil
}

func (r *ram) Len() int { return len(r.blocks) }

func (r *ram) Footprint() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.footprint
}

func (r *ram) Resident() int64 { return r.Footprint() }

func (r *ram) WantHints() bool          { return false }
func (r *ram) PrefetchHint(order []int) {}
func (r *ram) Stats() Stats             { return Stats{} }
func (r *ram) Close() error             { return nil }
