// Package blockstore owns the per-rank table of compressed state
// blocks. The engine in internal/core never indexes a raw [][]byte
// anymore: every read and write of a compressed blob goes through a
// Store, and the footprint accounting that used to be hand-maintained
// deltas at each write site lives behind the same seam, where it
// cannot drift from the blobs it describes.
//
// Two implementations share the contract. NewRAM is the default
// zero-overhead path — a mutex around a slice, exactly the old block
// table. NewTiered adds the out-of-core tier the paper's block
// decomposition makes possible: blobs past a resident-RAM budget are
// evicted coldest-first to a per-store spill file, read back on
// demand, and staged ahead of demand by an async prefetcher whenever
// the caller announces its visit order with PrefetchHint (the sweep
// scheduler and the sorted-draw sampler both know theirs).
package blockstore

import "errors"

// ErrSpill marks I/O failures of the spill tier (creating, writing,
// or reading the spill file). Callers test with errors.Is; the
// facade re-exports it as qcsim.ErrSpill.
var ErrSpill = errors.New("blockstore: spill I/O failure")

// Store is the block-table seam. Blocks are dense indices
// [0, Len()); every slot holds one compressed blob (possibly empty —
// an empty blob is stored, not an absence).
//
// Concurrency: Get and Put may race from multiple workers as long as
// no two goroutines touch the SAME index concurrently — the engine's
// fan-out assigns each block to exactly one worker per gate.
// Footprint, Resident, and Stats are safe to call concurrently with
// anything. Peek, PrefetchHint, and Close belong to the owner
// goroutine (the engine between gates).
//
// Ownership: Put takes ownership of blob — the caller must not
// mutate it afterwards. Slices returned by Get and Peek are
// read-only views that stay valid even if the block is later
// evicted or overwritten (production code never mutates a blob in
// place; it compresses a fresh one).
type Store interface {
	// Get returns block b's blob for the hot path, promoting it to
	// most-recently-used. On a tiered store a spilled block is read
	// back synchronously (counted in Stats.SpillReads) unless the
	// prefetcher already staged it (Stats.PrefetchHits).
	Get(b int) ([]byte, error)
	// Put replaces block b's blob and takes ownership of it. On a
	// tiered store this may evict cold blocks to disk to hold the
	// resident bytes under the RAM budget.
	Put(b int, blob []byte) error
	// Peek returns block b's blob without promoting it or disturbing
	// the resident set — for checkpointing, inspection, and asserts,
	// which walk the whole table and must not thrash the cache the
	// hot path relies on.
	Peek(b int) ([]byte, error)
	// Len is the number of block slots.
	Len() int
	// Footprint is the total compressed bytes across both tiers
	// (resident + spilled) — the quantity the paper's memory story
	// is about.
	Footprint() int64
	// Resident is the compressed bytes currently held in RAM — the
	// RSS proxy the spill tier bounds.
	Resident() int64
	// WantHints reports whether PrefetchHint does anything, so hot
	// paths can skip building order slices for the RAM store.
	WantHints() bool
	// PrefetchHint announces the caller's upcoming block visit
	// order. A tiered store protects those blocks from eviction and
	// stages spilled ones back into RAM ahead of their Get,
	// overlapping disk reads with codec work. A later hint replaces
	// the previous one. The RAM store ignores hints.
	PrefetchHint(order []int)
	// Stats returns cumulative spill counters and gauges.
	Stats() Stats
	// Close releases the store's resources (the spill file, for a
	// tiered store). Idempotent. The store must not be used after.
	Close() error
}

// Stats are a store's spill-tier counters. All fields are cumulative
// monotonic counters except SpilledBytes, a gauge of the bytes
// currently on disk.
type Stats struct {
	SpilledBytes  int64 // gauge: compressed bytes on disk right now
	SpillWrites   int64 // blocks evicted (written) to the spill file
	SpillReads    int64 // synchronous read-backs on Get (prefetch misses)
	PrefetchReads int64 // blocks the async prefetcher staged into RAM
	PrefetchHits  int64 // Gets served from RAM by a prior prefetch
}

// Minus subtracts base's counters from s (for baselining a reused
// store across Reset/Load); the SpilledBytes gauge is carried
// through unchanged.
func (s Stats) Minus(base Stats) Stats {
	s.SpillWrites -= base.SpillWrites
	s.SpillReads -= base.SpillReads
	s.PrefetchReads -= base.PrefetchReads
	s.PrefetchHits -= base.PrefetchHits
	return s
}

// Plus adds o's counters to s; the SpilledBytes gauge keeps s's
// value (callers pass the current store's gauge in s).
func (s Stats) Plus(o Stats) Stats {
	s.SpillWrites += o.SpillWrites
	s.SpillReads += o.SpillReads
	s.PrefetchReads += o.PrefetchReads
	s.PrefetchHits += o.PrefetchHits
	return s
}
