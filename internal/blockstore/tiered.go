package blockstore

import (
	"container/list"
	"fmt"
	"os"
	"sort"
	"sync"
)

// slot states: a block is empty (never Put), resident in RAM, or
// spilled to disk — exactly one at a time.
const (
	slotEmpty uint8 = iota
	slotRAM
	slotDisk
)

// extent is a byte range in the spill file.
type extent struct{ off, size int64 }

// entry is one block slot of a tiered store.
type entry struct {
	state uint8
	blob  []byte        // valid when state == slotRAM
	ext   extent        // valid when state == slotDisk
	el    *list.Element // LRU node while resident (nil for empty blobs)
	// gen bumps on every state transition; the prefetcher snapshots
	// it before its unlocked ReadAt and installs the bytes only if
	// the slot has not changed underneath it.
	gen uint64
	// expected marks blocks named by the current prefetch hint: the
	// evictor skips them (they are about to be read) unless nothing
	// else can go, and pos — the block's first position in the hint
	// order — breaks the tie Belady-style: the expected block visited
	// farthest in the future goes first, since the prefetcher will
	// stage it back closer to its turn.
	expected bool
	pos      int
	// prefetched marks a resident blob staged by the prefetcher and
	// not yet consumed; the first Get on it counts a PrefetchHits.
	prefetched bool
}

// Tiered is the two-tier store: blobs up to ramBudget resident
// bytes stay in RAM; beyond that the coldest (least-recently-used,
// unhinted) blobs evict to a per-store spill file and are read back
// on demand or — when the caller announces its visit order — ahead
// of demand by a background prefetcher, so disk reads overlap the
// codec work of earlier blocks.
type Tiered struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast on resident-set changes; prefetcher waits for headroom

	entries   []entry
	lru       *list.List // of int block indices; front = most recent
	resident  int64
	spilled   int64
	ramBudget int64

	f       *os.File
	free    []extent // free holes in the spill file, sorted by offset
	fileEnd int64

	st      Stats
	hintGen uint64 // bumps per PrefetchHint; abandons stale prefetch passes
	hints   chan []int
	done    chan struct{}
	wg      sync.WaitGroup
	closed  bool
}

// NewTiered creates a tiered store with n block slots, spilling to a
// fresh temp file in dir (label distinguishes per-rank files in
// error messages and temp names). ramBudget is the cap on resident
// compressed bytes; it must be positive. Failures creating the
// spill file wrap ErrSpill.
func NewTiered(n int, dir, label string, ramBudget int64) (*Tiered, error) {
	if ramBudget <= 0 {
		return nil, fmt.Errorf("%w: non-positive RAM budget %d", ErrSpill, ramBudget)
	}
	f, err := os.CreateTemp(dir, "qcsim-spill-"+label+"-*.bin")
	if err != nil {
		return nil, fmt.Errorf("%w: creating spill file in %q: %v", ErrSpill, dir, err)
	}
	t := &Tiered{
		entries:   make([]entry, n),
		lru:       list.New(),
		ramBudget: ramBudget,
		f:         f,
		hints:     make(chan []int, 1),
		done:      make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	t.wg.Add(1)
	go t.prefetchLoop()
	return t, nil
}

func (t *Tiered) Len() int { return len(t.entries) }

func (t *Tiered) Footprint() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resident + t.spilled
}

func (t *Tiered) Resident() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resident
}

func (t *Tiered) WantHints() bool { return true }

func (t *Tiered) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.SpilledBytes = t.spilled
	return st
}

func (t *Tiered) Put(b int, blob []byte) error {
	t.mu.Lock()
	defer func() {
		t.cond.Broadcast()
		t.mu.Unlock()
	}()
	if t.closed {
		return fmt.Errorf("%w: store is closed", ErrSpill)
	}
	t.dropLocked(b)
	e := &t.entries[b]
	e.state = slotRAM
	e.blob = blob
	e.gen++
	t.resident += int64(len(blob))
	if len(blob) > 0 {
		e.el = t.lru.PushFront(b)
	}
	return t.evictLocked()
}

func (t *Tiered) Get(b int) ([]byte, error) {
	t.mu.Lock()
	defer func() {
		t.cond.Broadcast()
		t.mu.Unlock()
	}()
	if t.closed {
		return nil, fmt.Errorf("%w: store is closed", ErrSpill)
	}
	e := &t.entries[b]
	e.expected = false
	if e.state != slotDisk {
		if e.prefetched {
			e.prefetched = false
			t.st.PrefetchHits++
		}
		if e.el != nil {
			t.lru.MoveToFront(e.el)
		}
		return e.blob, nil
	}
	// Prefetch miss: read back synchronously. The ReadAt happens
	// under the lock — the slot must not move while we read it, and
	// a worker stalled here was going to stall on the disk anyway.
	t.st.SpillReads++
	buf := make([]byte, e.ext.size)
	if _, err := t.f.ReadAt(buf, e.ext.off); err != nil {
		return nil, fmt.Errorf("%w: reading block %d back: %v", ErrSpill, b, err)
	}
	t.promoteLocked(b, buf)
	return buf, t.evictLocked()
}

func (t *Tiered) Peek(b int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("%w: store is closed", ErrSpill)
	}
	e := &t.entries[b]
	if e.state != slotDisk {
		return e.blob, nil
	}
	buf := make([]byte, e.ext.size)
	if _, err := t.f.ReadAt(buf, e.ext.off); err != nil {
		return nil, fmt.Errorf("%w: reading block %d back: %v", ErrSpill, b, err)
	}
	return buf, nil
}

// PrefetchHint replaces the pending visit order: the named blocks
// are protected from eviction and the prefetcher stages spilled ones
// back into RAM (newest hint wins; an in-flight pass over the old
// hint is abandoned at its next block).
func (t *Tiered) PrefetchHint(order []int) {
	ord := append([]int(nil), order...)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.hintGen++
	for i := range t.entries {
		t.entries[i].expected = false
		t.entries[i].pos = -1
	}
	for i, b := range ord {
		if !t.entries[b].expected {
			t.entries[b].expected = true
			t.entries[b].pos = i
		}
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	// Replace the queued hint (buffer of one). The owner goroutine
	// is the only sender, so after the drain the send cannot block.
	select {
	case <-t.hints:
	default:
	}
	select {
	case t.hints <- ord:
	default:
	}
}

// Close stops the prefetcher and removes the spill file. Idempotent.
func (t *Tiered) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	close(t.done)
	t.wg.Wait()
	name := t.f.Name()
	err := t.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	if err != nil {
		return fmt.Errorf("%w: closing spill file: %v", ErrSpill, err)
	}
	return nil
}

// dropLocked releases whatever block b currently holds (RAM bytes,
// LRU node, disk extent) and leaves the slot empty.
func (t *Tiered) dropLocked(b int) {
	e := &t.entries[b]
	switch e.state {
	case slotRAM:
		t.resident -= int64(len(e.blob))
		if e.el != nil {
			t.lru.Remove(e.el)
		}
	case slotDisk:
		t.spilled -= e.ext.size
		t.freeExt(e.ext)
	}
	e.state = slotEmpty
	e.blob = nil
	e.ext = extent{}
	e.el = nil
	e.prefetched = false
	e.gen++
}

// promoteLocked installs buf as block b's resident blob, releasing
// its disk extent.
func (t *Tiered) promoteLocked(b int, buf []byte) {
	e := &t.entries[b]
	t.spilled -= e.ext.size
	t.freeExt(e.ext)
	e.ext = extent{}
	e.state = slotRAM
	e.blob = buf
	t.resident += int64(len(buf))
	e.el = t.lru.PushFront(b)
	e.prefetched = false
	e.gen++
}

// coldestLocked picks the eviction victim: the oldest LRU element
// that is not hinted, or — when everything evictable is hinted — the
// hinted element whose visit position lies farthest in the future,
// provided it is past minPos. The most-recently-used blob is never a
// victim, so the block a worker just produced or fetched stays put.
// Consumer eviction passes minPos -1 (any hinted block may go);
// the prefetcher passes the position it is staging for, so it never
// evicts a block needed sooner than the one it would admit.
func (t *Tiered) coldestLocked(minPos int) *list.Element {
	if t.lru.Len() < 2 {
		return nil
	}
	var best *list.Element
	bestPos := minPos
	for el := t.lru.Back(); el != nil && el != t.lru.Front(); el = el.Prev() {
		e := &t.entries[el.Value.(int)]
		if !e.expected {
			return el
		}
		if e.pos > bestPos {
			best, bestPos = el, e.pos
		}
	}
	return best
}

// spillVictimLocked writes one resident blob out to the spill file.
func (t *Tiered) spillVictimLocked(victim *list.Element) error {
	b := victim.Value.(int)
	e := &t.entries[b]
	ext := t.alloc(int64(len(e.blob)))
	if _, err := t.f.WriteAt(e.blob, ext.off); err != nil {
		t.freeExt(ext)
		return fmt.Errorf("%w: spilling block %d: %v", ErrSpill, b, err)
	}
	t.lru.Remove(victim)
	t.resident -= int64(len(e.blob))
	t.spilled += ext.size
	e.state = slotDisk
	e.blob = nil
	e.ext = ext
	e.el = nil
	e.prefetched = false
	e.gen++
	t.st.SpillWrites++
	return nil
}

// evictLocked writes cold blobs out until the resident bytes fit the
// budget.
func (t *Tiered) evictLocked() error {
	for t.resident > t.ramBudget {
		victim := t.coldestLocked(-1)
		if victim == nil {
			return nil
		}
		if err := t.spillVictimLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// makeRoomLocked evicts blobs on the prefetcher's behalf until `need`
// more bytes fit under the budget, taking only blocks hinted later
// than pos (or not hinted at all). It returns false when no such
// victim remains — everything resident is needed sooner than the
// block being staged — in which case the prefetcher waits for the
// consumer to free room instead of thrashing.
func (t *Tiered) makeRoomLocked(need int64, pos int) bool {
	for t.resident+need > t.ramBudget {
		victim := t.coldestLocked(pos)
		if victim == nil {
			return false
		}
		if t.spillVictimLocked(victim) != nil {
			return false
		}
	}
	return true
}

// alloc carves size bytes out of the spill file: first fit from the
// free list, else the end of the file.
func (t *Tiered) alloc(size int64) extent {
	for i, fe := range t.free {
		if fe.size >= size {
			ext := extent{fe.off, size}
			fe.off += size
			fe.size -= size
			if fe.size == 0 {
				t.free = append(t.free[:i], t.free[i+1:]...)
			} else {
				t.free[i] = fe
			}
			return ext
		}
	}
	ext := extent{t.fileEnd, size}
	t.fileEnd += size
	return ext
}

// freeExt returns an extent to the free list, coalescing with its
// neighbours and shrinking the file-end watermark when the tail
// frees up, so the spill file's size tracks the live spilled bytes
// plus fragmentation rather than growing monotonically.
func (t *Tiered) freeExt(e extent) {
	if e.size == 0 {
		return
	}
	i := sort.Search(len(t.free), func(i int) bool { return t.free[i].off >= e.off })
	t.free = append(t.free, extent{})
	copy(t.free[i+1:], t.free[i:])
	t.free[i] = e
	if i+1 < len(t.free) && t.free[i].off+t.free[i].size == t.free[i+1].off {
		t.free[i].size += t.free[i+1].size
		t.free = append(t.free[:i+1], t.free[i+2:]...)
	}
	if i > 0 && t.free[i-1].off+t.free[i-1].size == t.free[i].off {
		t.free[i-1].size += t.free[i].size
		t.free = append(t.free[:i], t.free[i+1:]...)
	}
	if n := len(t.free); n > 0 && t.free[n-1].off+t.free[n-1].size == t.fileEnd {
		t.fileEnd = t.free[n-1].off
		t.free = t.free[:n-1]
	}
}

func (t *Tiered) prefetchLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case ord := <-t.hints:
			t.prefetch(ord)
		}
	}
}

// prefetchBatch bounds how many blocks one staging round reads under
// a single pair of lock holds. Batching is what makes the prefetcher
// competitive: with one lock round per block it loses nearly every
// acquisition race against the consumer's Get/Put traffic and its
// reads arrive too late to install.
const prefetchBatch = 8

// stageJob is one spilled block a staging round has reserved room
// for: its extent and generation snapshot, read outside the lock and
// installed only if the slot did not change underneath the read.
type stageJob struct {
	b   int
	ext extent
	gen uint64
}

// prefetch stages the hinted blocks in visit order, a batch at a
// time: under one lock hold it skips consumed blocks (a cleared
// expected flag means the consumer already took them — staging those
// would fill the budget with blocks behind the consumer), makes room
// by evicting blocks hinted later than the ones being staged, and
// reserves their bytes; then it reads the batch outside the lock and
// installs whatever still matches its generation snapshot. When
// nothing is stageable — everything resident is needed sooner — it
// waits for the consumer to advance. Read errors are left for the
// consumer's own Get to surface.
func (t *Tiered) prefetch(ord []int) {
	t.mu.Lock()
	myGen := t.hintGen
	i := 0
	for {
		if t.closed || t.hintGen != myGen {
			t.mu.Unlock()
			return
		}
		var jobs []stageJob
		var reserve int64
		for i < len(ord) && len(jobs) < prefetchBatch {
			e := &t.entries[ord[i]]
			if !e.expected || e.state != slotDisk {
				i++
				continue
			}
			if !t.makeRoomLocked(reserve+e.ext.size, e.pos) {
				break
			}
			jobs = append(jobs, stageJob{ord[i], e.ext, e.gen})
			reserve += e.ext.size
			i++
		}
		if len(jobs) == 0 {
			if i >= len(ord) {
				t.mu.Unlock()
				return
			}
			t.cond.Wait()
			continue
		}
		t.mu.Unlock()
		bufs := make([][]byte, len(jobs))
		for j, jb := range jobs {
			buf := make([]byte, jb.ext.size)
			if _, err := t.f.ReadAt(buf, jb.ext.off); err == nil {
				bufs[j] = buf
			}
		}
		t.mu.Lock()
		if t.closed || t.hintGen != myGen {
			t.mu.Unlock()
			return
		}
		installed := false
		for j, jb := range jobs {
			e := &t.entries[jb.b]
			if bufs[j] != nil && e.gen == jb.gen {
				t.promoteLocked(jb.b, bufs[j])
				e.prefetched = true
				t.st.PrefetchReads++
				installed = true
			}
		}
		if installed {
			t.cond.Broadcast()
		}
	}
}
