package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qcsim/circuit"
)

// ---------- test client helpers ----------

type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func newClient(t *testing.T, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL, hc: ts.Client()}
}

func (c *client) postJSON(path string, req, out any) int {
	c.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (c *client) createSession(tenant string, qubits int, seed int64) SessionInfo {
	c.t.Helper()
	var info SessionInfo
	status := c.postJSON("/v1/sessions", CreateSessionRequest{Tenant: tenant, Qubits: qubits, Seed: seed}, &info)
	if status != http.StatusOK || info.Code != CodeOK {
		c.t.Fatalf("create session: status %d code %s err %s", status, info.Code, info.Error)
	}
	return info
}

func (c *client) inspect(id string) SessionInfo {
	c.t.Helper()
	resp, err := c.hc.Get(c.base + "/v1/sessions/" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		c.t.Fatal(err)
	}
	return info
}

func circuitText(t *testing.T, circ *circuit.Circuit) string {
	t.Helper()
	var buf bytes.Buffer
	if err := circuit.Serialize(&buf, circ); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// submit posts a circuit. On admission it parses the SSE stream and
// returns the events; on rejection it returns the decoded status.
func (c *client) submit(id string, circ *circuit.Circuit) (int, []JobEvent, *StatusResponse) {
	c.t.Helper()
	return c.submitVariants(id, circ, 0)
}

// submitVariants posts a circuit declaring a RunBatch width K, so
// admission prices the K-variant worst case.
func (c *client) submitVariants(id string, circ *circuit.Circuit, k int) (int, []JobEvent, *StatusResponse) {
	c.t.Helper()
	body, _ := json.Marshal(SubmitRequest{Circuit: circuitText(c.t, circ), Variants: k})
	resp, err := c.hc.Post(c.base+"/v1/sessions/"+id+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			c.t.Fatalf("decode submit status: %v", err)
		}
		return resp.StatusCode, nil, &st
	}
	var evs []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				c.t.Fatalf("bad SSE event %q: %v", data, err)
			}
			evs = append(evs, ev)
		}
	}
	return resp.StatusCode, evs, nil
}

// runOK submits and requires a terminal "done" event.
func (c *client) runOK(id string, circ *circuit.Circuit) []JobEvent {
	c.t.Helper()
	status, evs, st := c.submit(id, circ)
	if st != nil {
		c.t.Fatalf("submit rejected: status %d code %s %s", status, st.Code, st.Error)
	}
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		c.t.Fatalf("want terminal done event, got %+v", evs)
	}
	return evs
}

func (c *client) sample(id string, shots int) ([]string, *SampleResponse) {
	c.t.Helper()
	var resp SampleResponse
	c.postJSON("/v1/sessions/"+id+"/sample", SampleRequest{Shots: shots}, &resp)
	return resp.Outcomes, &resp
}

func (c *client) suspend(id string) StatusResponse {
	c.t.Helper()
	var st StatusResponse
	c.postJSON("/v1/sessions/"+id+"/suspend", struct{}{}, &st)
	return st
}

// compressedCircuit builds a deterministic, measurement-free circuit
// that the router cannot put on MPS (Toffoli has two controls), so it
// exercises the compressed engine and is suspend/resume-safe: with no
// random draws during the run, a resumed session's sampler is
// bit-identical to an uninterrupted control's.
func compressedCircuit(n int, seed int64) *circuit.Circuit {
	c := circuit.QFT(n, seed)
	c.Toffoli(0, 1, 2)
	return c
}

func shutdownOK(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// ---------- the E2E acceptance test ----------

// TestServerEndToEnd is the PR's acceptance test: two tenants with
// different budgets served concurrently; an over-budget submission
// rejected by admission BEFORE any state allocation; an idle session
// suspended to a checkpoint with its resident reservation dropping to
// zero and resumed bit-identically; and a graceful shutdown that
// leaves no spill or checkpoint temp files behind.
func TestServerEndToEnd(t *testing.T) {
	srv, err := New(Config{
		Tenants: []TenantConfig{
			{Name: "alice", MemoryBudget: 1 << 20},
			{Name: "bob", MemoryBudget: 64 << 10},
		},
		GlobalBudget: 4 << 20,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	dataDir := srv.DataDir()

	// Two tenants with different budgets, running concurrently.
	alice := c.createSession("alice", 12, 42)
	bobSmall := c.createSession("bob", 8, 7)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.runOK(alice.SessionID, compressedCircuit(12, 99)) }()
	go func() { defer wg.Done(); c.runOK(bobSmall.SessionID, compressedCircuit(8, 99)) }()
	wg.Wait()

	// Admission prices alice's job at the dense worst case 2^(12+4).
	if got := c.inspect(alice.SessionID); got.ReservedBytes != 1<<16 || got.Backend != "compressed" {
		t.Fatalf("alice session: want 65536 reserved on compressed, got %+v", got)
	}

	// Over-budget: bob's 14-qubit job prices at 2^18 = 256 KiB, over
	// bob's 64 KiB allowance, and there is no disk budget. The typed
	// rejection must land BEFORE any state is allocated: no engine
	// build, no reservation, no backend routed.
	buildsBefore := srv.metrics.Builds.Load()
	bobBig := c.createSession("bob", 14, 7)
	status, _, st := c.submit(bobBig.SessionID, compressedCircuit(14, 99))
	if st == nil || st.Code != CodeRejectBudget || status != http.StatusForbidden {
		t.Fatalf("want REJECT_BUDGET/403, got status %d %+v", status, st)
	}
	if st.Admit == nil || st.Admit.PricedBytes != 1<<18 {
		t.Fatalf("rejection must echo the priced footprint, got %+v", st.Admit)
	}
	if got := srv.metrics.Builds.Load(); got != buildsBefore {
		t.Fatalf("rejected job built an engine: builds %d -> %d", buildsBefore, got)
	}
	if got := c.inspect(bobBig.SessionID); got.Backend != "" || got.ReservedBytes != 0 {
		t.Fatalf("rejected session must stay unrouted and unreserved, got %+v", got)
	}
	if used := srv.Ledger().Used("bob"); used != 1<<12 {
		// bob's small 8-qubit session holds its 2^12 dense worst case;
		// the rejected job added nothing.
		t.Fatalf("bob ledger: want 4096 (small session only), got %d", used)
	}

	// Suspend: alice's reservation drops to zero and a checkpoint file
	// appears under the server's ckpt dir.
	if st := c.suspend(alice.SessionID); st.Code != CodeOK {
		t.Fatalf("suspend: %+v", st)
	}
	if got := c.inspect(alice.SessionID); !got.Suspended || got.ReservedBytes != 0 {
		t.Fatalf("suspended session must hold no RAM, got %+v", got)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dataDir, "ckpt", "*.ckpt"))
	if len(ckpts) != 1 {
		t.Fatalf("want one checkpoint file, got %v", ckpts)
	}

	// Resume transparently via sampling, and require bit-identity with
	// an uninterrupted control session (same tenant, seed, circuit).
	control := c.createSession("alice", 12, 42)
	c.runOK(control.SessionID, compressedCircuit(12, 99))
	wantShots, _ := c.sample(control.SessionID, 32)
	gotShots, sresp := c.sample(alice.SessionID, 32)
	if sresp.Code != CodeOK {
		t.Fatalf("sample after suspend: %+v", sresp)
	}
	if fmt.Sprint(gotShots) != fmt.Sprint(wantShots) {
		t.Fatalf("suspend/resume broke bit-identity:\n resumed %v\n control %v", gotShots, wantShots)
	}
	if got := c.inspect(alice.SessionID); got.Suspended || got.Resumes != 1 {
		t.Fatalf("session must be resumed exactly once, got %+v", got)
	}

	// Graceful shutdown: drains, suspends live sessions, and removes
	// the server-owned data dir — no leaked spill or checkpoint files.
	shutdownOK(t, srv)
	if srv.Ledger().TotalUsed() != 0 {
		t.Fatalf("ledger must be empty after shutdown, holds %d", srv.Ledger().TotalUsed())
	}
	if _, err := os.Stat(dataDir); !os.IsNotExist(err) {
		t.Fatalf("server-owned data dir %s must be removed at shutdown (err=%v)", dataDir, err)
	}
}

// ---------- routing and rejection paths ----------

func TestAdmissionRoutesMPS(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	// GHZ-30 is far beyond the dense budget (2^34 bytes) but has bond
	// dimension 2: admission must route it to MPS and price only the
	// tensor bytes.
	sess := c.createSession("a", 30, 1)
	evs := c.runOK(sess.SessionID, circuit.GHZ(30))
	adm := evs[0]
	if adm.Type != "admitted" || adm.Code != CodeAdmitMPS {
		t.Fatalf("want ADMIT_MPS first event, got %+v", adm)
	}
	if adm.Admit.EstBondDim != 2 || adm.Admit.PricedBytes <= 0 || adm.Admit.PricedBytes > 1<<20 {
		t.Fatalf("mps pricing off: %+v", adm.Admit)
	}
	// MPS sessions cannot suspend: typed ERR_UNSUPPORTED.
	if st := c.suspend(sess.SessionID); st.Code != CodeErrUnsupported {
		t.Fatalf("mps suspend: want ERR_UNSUPPORTED, got %+v", st)
	}
	shutdownOK(t, srv)
}

func TestAdmissionRoutesSpill(t *testing.T) {
	srv, err := New(Config{
		Tenants:    []TenantConfig{{Name: "a", MemoryBudget: 128 << 10}},
		DiskBudget: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	// 14 qubits dense = 256 KiB > the 128 KiB RAM allowance, but well
	// inside the disk budget: admitted on the spill tier with the
	// resident cap priced at (at most) the tenant's remaining RAM.
	sess := c.createSession("a", 14, 3)
	evs := c.runOK(sess.SessionID, compressedCircuit(14, 5))
	adm := evs[0]
	if adm.Code != CodeAdmitSpill {
		t.Fatalf("want ADMIT_SPILL, got %+v", adm)
	}
	if adm.Admit.PricedBytes <= 0 || adm.Admit.PricedBytes > 128<<10 {
		t.Fatalf("spill resident cap must fit the tenant budget, got %+v", adm.Admit)
	}
	if _, resp := c.sample(sess.SessionID, 4); resp.Code != CodeOK {
		t.Fatalf("sample on spill session: %+v", resp)
	}
	shutdownOK(t, srv)
}

// TestAdmissionPricesBatchVariants: a submission declaring a RunBatch
// width K reserves the K-variant worst case (K dense state copies),
// pins the route to the compressed backend even for MPS-friendly
// circuits, and keeps the typed CodeRejectBudget when the scaled
// ceiling does not fit.
func TestAdmissionPricesBatchVariants(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	// GHZ-12 solo would route to MPS (bond dimension 2); with K=8 the
	// lockstep batch is compressed-only and prices 8·2^16 = 512 KiB.
	sess := c.createSession("a", 12, 1)
	status, evs, st := c.submitVariants(sess.SessionID, circuit.GHZ(12), 8)
	if st != nil {
		t.Fatalf("batch submit rejected: status %d %+v", status, st)
	}
	adm := evs[0]
	if adm.Type != "admitted" || adm.Code != CodeAdmitCompressed {
		t.Fatalf("want ADMIT_COMPRESSED for a batch of an MPS-friendly circuit, got %+v", adm)
	}
	if adm.Admit.PricedBytes != 8<<16 {
		t.Fatalf("batch pricing: want %d (8 dense copies), got %+v", 8<<16, adm.Admit)
	}
	if got := c.inspect(sess.SessionID); got.ReservedBytes != 8<<16 {
		t.Fatalf("batch reservation: want %d, got %+v", 8<<16, got)
	}

	// K=32 scales the same register to 2 MiB — over the 1 MiB
	// allowance, no disk budget: the typed rejection is unchanged and
	// echoes the scaled footprint. Nothing reserved, nothing routed.
	over := c.createSession("a", 12, 1)
	status, _, st = c.submitVariants(over.SessionID, circuit.GHZ(12), 32)
	if st == nil || st.Code != CodeRejectBudget || status != http.StatusForbidden {
		t.Fatalf("want REJECT_BUDGET/403 for K=32, got %d %+v", status, st)
	}
	if st.Admit == nil || st.Admit.PricedBytes != 32<<16 {
		t.Fatalf("rejection must echo the K-scaled footprint, got %+v", st.Admit)
	}
	if got := c.inspect(over.SessionID); got.Backend != "" || got.ReservedBytes != 0 {
		t.Fatalf("rejected batch session must stay unrouted, got %+v", got)
	}

	// Negative widths are a typed bad request, not an internal error.
	bad := c.createSession("a", 12, 1)
	status, _, st = c.submitVariants(bad.SessionID, circuit.GHZ(12), -2)
	if st == nil || st.Code != CodeErrBadRequest || status != http.StatusBadRequest {
		t.Fatalf("want ERR_BAD_REQUEST/400 for K=-2, got %d %+v", status, st)
	}
	shutdownOK(t, srv)
}

func TestQueueFullRejection(t *testing.T) {
	// Workers < 0 starts no workers, so a pre-filled queue stays full
	// and the rejection is deterministic.
	srv, err := New(Config{
		Tenants:    []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}},
		QueueDepth: 1,
		Workers:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	srv.jobs <- &job{id: "stuck", ctx: context.Background(), events: make(chan JobEvent, 1)}
	sess := c.createSession("a", 8, 1)
	status, _, st := c.submit(sess.SessionID, compressedCircuit(8, 1))
	if st == nil || st.Code != CodeRejectQueueFull || status != http.StatusTooManyRequests {
		t.Fatalf("want REJECT_QUEUE_FULL/429, got %d %+v", status, st)
	}
	// The failed enqueue must have undone the fresh admission.
	if used := srv.Ledger().Used("a"); used != 0 {
		t.Fatalf("failed enqueue leaked %d reserved bytes", used)
	}
	if got := c.inspect(sess.SessionID); got.Backend != "" {
		t.Fatalf("failed enqueue must clear the route, got %+v", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

func TestRateLimitRejection(t *testing.T) {
	srv, err := New(Config{
		Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20, RatePerSec: 0.0001, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	sess := c.createSession("a", 6, 1)
	c.runOK(sess.SessionID, compressedCircuit(6, 1)) // consumes the burst token
	status, _, st := c.submit(sess.SessionID, compressedCircuit(6, 2))
	if st == nil || st.Code != CodeRejectRate || status != http.StatusTooManyRequests {
		t.Fatalf("want REJECT_RATE/429, got %d %+v", status, st)
	}
	shutdownOK(t, srv)
}

func TestBadRequests(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	var st StatusResponse
	if status := c.postJSON("/v1/sessions", CreateSessionRequest{Tenant: "nobody", Qubits: 4}, &st); status != http.StatusNotFound || st.Code != CodeErrUnknownTenant {
		t.Fatalf("unknown tenant: %d %+v", status, st)
	}
	if status := c.postJSON("/v1/sessions", CreateSessionRequest{Tenant: "a", Qubits: 0}, &st); status != http.StatusBadRequest || st.Code != CodeErrBadRequest {
		t.Fatalf("bad qubits: %d %+v", status, st)
	}
	sess := c.createSession("a", 4, 1)
	// Circuit width mismatching the session register is typed.
	status, _, sub := c.submit(sess.SessionID, circuit.GHZ(6))
	if sub == nil || sub.Code != CodeErrBadCircuit || status != http.StatusBadRequest {
		t.Fatalf("width mismatch: %d %+v", status, sub)
	}
	// Sampling before any admitted job is typed.
	if _, resp := c.sample(sess.SessionID, 4); resp.Code != CodeErrUnsupported {
		t.Fatalf("sample before job: %+v", resp)
	}
	// Unknown session id is typed.
	if st := c.suspend("deadbeef"); st.Code != CodeErrNoSession {
		t.Fatalf("unknown session: %+v", st)
	}
	shutdownOK(t, srv)
}

// TestResumeKeepsCheckpointUntilNextSuspend pins the resume-safety
// contract: the suspended checkpoint is NOT deleted when a resume's
// Load succeeds — it stays the last-known-good state until the next
// successful suspend replaces it or the session closes. The regression
// it guards against: ensureResident used to os.Remove the checkpoint
// immediately after Load, so a crash right after resume (engine lost,
// nothing re-suspended yet) destroyed the session's only copy.
func TestResumeKeepsCheckpointUntilNextSuspend(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	sess := c.createSession("a", 10, 5)
	c.runOK(sess.SessionID, compressedCircuit(10, 77))
	control := c.createSession("a", 10, 5)
	c.runOK(control.SessionID, compressedCircuit(10, 77))
	wantShots, _ := c.sample(control.SessionID, 16)

	if st := c.suspend(sess.SessionID); st.Code != CodeOK {
		t.Fatalf("suspend: %+v", st)
	}
	ckpt := filepath.Join(srv.ckptDir, sess.SessionID+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing after suspend: %v", err)
	}

	// Transparent resume. The checkpoint must survive it.
	gotShots, resp := c.sample(sess.SessionID, 16)
	if resp.Code != CodeOK {
		t.Fatalf("sample resume: %+v", resp)
	}
	if fmt.Sprint(gotShots) != fmt.Sprint(wantShots) {
		t.Fatalf("resume broke bit-identity:\n resumed %v\n control %v", gotShots, wantShots)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint must be kept after a successful resume, stat: %v", err)
	}
	if info := c.inspect(sess.SessionID); info.Suspended {
		t.Fatalf("resident session misreported as suspended: %+v", info)
	}

	// Simulate a crash right after resume: the resident engine is lost
	// without a suspend ever running (the failure mode the retained
	// checkpoint exists for).
	s := srv.session(sess.SessionID)
	s.mu.Lock()
	s.snap = s.sim.Snapshot()
	s.sim.Close()
	s.sim = nil
	srv.ledger.Release(s.Tenant, s.reserved)
	s.reserved = 0
	s.mu.Unlock()

	// The next sample must rebuild from the retained checkpoint,
	// bit-identical to the uninterrupted control.
	gotShots, resp = c.sample(sess.SessionID, 16)
	if resp.Code != CodeOK {
		t.Fatalf("sample after simulated crash: %+v", resp)
	}
	if fmt.Sprint(gotShots) != fmt.Sprint(wantShots) {
		t.Fatalf("recovery from retained checkpoint broke bit-identity:\n recovered %v\n control %v", gotShots, wantShots)
	}
	if info := c.inspect(sess.SessionID); info.Resumes != 2 {
		t.Fatalf("want 2 resumes (transparent + crash recovery), got %+v", info)
	}

	// A fresh suspend atomically replaces the checkpoint in place, and
	// closing the session finally deletes it.
	if st := c.suspend(sess.SessionID); st.Code != CodeOK {
		t.Fatalf("re-suspend: %+v", st)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing after re-suspend: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess.SessionID, nil)
	if _, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("closing the session must delete the checkpoint (stat err=%v)", err)
	}
	shutdownOK(t, srv)
}

func TestIdleJanitorSuspends(t *testing.T) {
	srv, err := New(Config{
		Tenants:     []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}},
		IdleSuspend: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	sess := c.createSession("a", 10, 9)
	c.runOK(sess.SessionID, compressedCircuit(10, 9))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info := c.inspect(sess.SessionID); info.Suspended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never suspended the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Transparent resume still works after a janitor suspend.
	if _, resp := c.sample(sess.SessionID, 4); resp.Code != CodeOK {
		t.Fatalf("sample after janitor suspend: %+v", resp)
	}
	shutdownOK(t, srv)
}

func TestShutdownRefusesNewWork(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	sess := c.createSession("a", 6, 1)
	shutdownOK(t, srv)

	var st StatusResponse
	if status := c.postJSON("/v1/sessions", CreateSessionRequest{Tenant: "a", Qubits: 4}, &st); status != http.StatusServiceUnavailable || st.Code != CodeErrShuttingDown {
		t.Fatalf("create after shutdown: %d %+v", status, st)
	}
	status, _, sub := c.submit(sess.SessionID, compressedCircuit(6, 1))
	if sub == nil || sub.Code != CodeErrShuttingDown || status != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %d %+v", status, sub)
	}
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, err := New(Config{Tenants: []TenantConfig{{Name: "a", MemoryBudget: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	sess := c.createSession("a", 8, 1)
	c.runOK(sess.SessionID, compressedCircuit(8, 1))
	c.suspend(sess.SessionID)

	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := func() ([]byte, error) {
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		_, e := b.ReadFrom(resp.Body)
		return b.Bytes(), e
	}()
	text := string(body)
	for _, want := range []string{
		"qcserve_jobs_done_total 1",
		"qcserve_admissions_compressed_total 1",
		"qcserve_suspends_total 1",
		"qcserve_sessions_suspended 1",
		`qcserve_tenant_reserved_bytes{tenant="a"} 0`,
		"qcserve_queue_depth 0",
		"qcserve_codec_calls",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	shutdownOK(t, srv)
}

// ---------- unit tests: ledger, bucket, codes ----------

func TestLedger(t *testing.T) {
	l := NewLedger(1000)
	l.AddTenant("a", 600)
	l.AddTenant("b", 600)
	if err := l.Reserve("a", 500); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("a", 200); err == nil || !strings.Contains(err.Error(), "tenant budget") {
		t.Fatalf("want tenant refusal, got %v", err)
	}
	if err := l.Reserve("b", 600); err == nil || !strings.Contains(err.Error(), "global budget") {
		t.Fatalf("want global refusal, got %v", err)
	}
	if err := l.Reserve("b", 500); err != nil {
		t.Fatal(err)
	}
	if got := l.TotalUsed(); got != 1000 {
		t.Fatalf("total used: want 1000, got %d", got)
	}
	if got := l.Remaining("a"); got != 0 {
		t.Fatalf("remaining a: want 0, got %d", got)
	}
	l.Release("a", 500)
	if got, want := l.Remaining("a"), int64(500); got != want {
		// tenant headroom 600 is clipped by global headroom 500.
		t.Fatalf("remaining a after release: want %d, got %d", want, got)
	}
	if err := l.Reserve("ghost", 1); err == nil {
		t.Fatal("unknown tenant must be refused")
	}
	// Over-release clamps, never goes negative.
	l.Release("b", 9999)
	if got := l.TotalUsed(); got != 0 {
		t.Fatalf("total used after clamped release: want 0, got %d", got)
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	tb := newTokenBucket(1, 2) // 1 token/s, burst 2
	tb.now = func() time.Time { return now }
	if !tb.allow() || !tb.allow() {
		t.Fatal("burst of 2 must allow two submissions")
	}
	if tb.allow() {
		t.Fatal("third immediate submission must be refused")
	}
	now = now.Add(1500 * time.Millisecond)
	if !tb.allow() {
		t.Fatal("refill after 1.5s must allow one")
	}
	if tb.allow() {
		t.Fatal("half a token is not a token")
	}
	var nilBucket *tokenBucket
	if !nilBucket.allow() {
		t.Fatal("nil bucket (unlimited) must allow")
	}
}

func TestCodeHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeOK:               200,
		CodeAdmitCompressed:  200,
		CodeAdmitMPS:         200,
		CodeAdmitSpill:       200,
		CodeRejectBudget:     403,
		CodeRejectRate:       429,
		CodeRejectQueueFull:  429,
		CodeErrUnknownTenant: 404,
		CodeErrNoSession:     404,
		CodeErrBadRequest:    400,
		CodeErrBadCircuit:    400,
		CodeErrUnsupported:   422,
		CodeErrCancelled:     409,
		CodeErrShuttingDown:  503,
		CodeErrInternal:      500,
	}
	for code, want := range cases {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s: want %d, got %d", code, want, got)
		}
	}
	if CodeRejectBudget.Admitted() || !CodeAdmitSpill.Admitted() {
		t.Error("Admitted() misclassifies")
	}
}
