package server

import (
	"errors"
	"fmt"
	"sync"
)

// Ledger is the process-wide resource ledger: one shared account of
// reserved resident bytes across every session of every tenant, plus
// per-tenant sub-accounts. Admission reserves BEFORE any state is
// allocated and releases on suspend/close, so the sum of live
// reservations never exceeds the global capacity — the invariant the
// whole multi-tenant design hangs on. (ROADMAP items 2 and 3 reuse
// this: the spill tier's RAM budget and the distributed transport's
// per-node budgets are the same arithmetic.)
type Ledger struct {
	mu       sync.Mutex
	capacity int64 // global resident-bytes cap; 0 = unlimited
	used     int64
	tenants  map[string]*account
}

type account struct {
	budget int64 // per-tenant cap; 0 = unlimited
	used   int64
}

// Typed ledger refusals: the admission controller maps both onto
// CodeRejectBudget but the reason string distinguishes them.
var (
	// ErrTenantBudget reports the tenant's own allowance exhausted.
	ErrTenantBudget = errors.New("server: tenant budget exhausted")
	// ErrGlobalBudget reports the process-wide capacity exhausted —
	// the tenant had room, the machine did not.
	ErrGlobalBudget = errors.New("server: global budget exhausted")
)

// NewLedger builds a ledger with the given global capacity (0 =
// unlimited).
func NewLedger(capacity int64) *Ledger {
	return &Ledger{capacity: capacity, tenants: make(map[string]*account)}
}

// AddTenant registers a tenant account with its budget (0 =
// unlimited). Re-adding an existing tenant only updates the budget.
func (l *Ledger) AddTenant(name string, budget int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a, ok := l.tenants[name]; ok {
		a.budget = budget
		return
	}
	l.tenants[name] = &account{budget: budget}
}

// Reserve charges bytes to the tenant and the global account, or
// refuses with ErrTenantBudget / ErrGlobalBudget without charging
// anything.
func (l *Ledger) Reserve(tenant string, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("server: negative reservation %d", bytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.tenants[tenant]
	if !ok {
		return fmt.Errorf("server: unknown tenant %q", tenant)
	}
	if a.budget > 0 && a.used+bytes > a.budget {
		return fmt.Errorf("%w: %s holds %d of %d bytes, wants %d more",
			ErrTenantBudget, tenant, a.used, a.budget, bytes)
	}
	if l.capacity > 0 && l.used+bytes > l.capacity {
		return fmt.Errorf("%w: %d of %d bytes reserved, %s wants %d more",
			ErrGlobalBudget, l.used, l.capacity, tenant, bytes)
	}
	a.used += bytes
	l.used += bytes
	return nil
}

// Release returns bytes to the tenant and global accounts. Releasing
// more than is held clamps to zero (and indicates a bookkeeping bug
// upstream, but never corrupts the ledger into negative territory).
func (l *Ledger) Release(tenant string, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a, ok := l.tenants[tenant]; ok {
		a.used -= bytes
		if a.used < 0 {
			a.used = 0
		}
	}
	l.used -= bytes
	if l.used < 0 {
		l.used = 0
	}
}

// Remaining returns the tenant's unreserved allowance, bounded by the
// global headroom. Unlimited budgets report the other bound, or
// MaxInt-ish when both are unlimited.
func (l *Ledger) Remaining(tenant string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	const unbounded = int64(1) << 62
	rem := unbounded
	if a, ok := l.tenants[tenant]; ok && a.budget > 0 {
		rem = a.budget - a.used
	}
	if l.capacity > 0 {
		if g := l.capacity - l.used; g < rem {
			rem = g
		}
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Used returns the tenant's reserved bytes.
func (l *Ledger) Used(tenant string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a, ok := l.tenants[tenant]; ok {
		return a.used
	}
	return 0
}

// TotalUsed returns the process-wide reserved bytes.
func (l *Ledger) TotalUsed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Tenants returns the registered tenant names (unordered).
func (l *Ledger) Tenants() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.tenants))
	for name := range l.tenants {
		names = append(names, name)
	}
	return names
}
