package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSessionsStress hammers one server with several tenants
// doing overlapping submit/sample/suspend/resume/cancel traffic. Run
// under -race (CI does) it is the data-race detector for the whole
// serving stack: ledger, queue, workers, janitor, and the per-session
// locking. Every response must be a typed code — never a hang, panic,
// or malformed reply — and the ledger must balance to zero after the
// sessions close.
func TestConcurrentSessionsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	srv, err := New(Config{
		Tenants: []TenantConfig{
			{Name: "t0", MemoryBudget: 1 << 20},
			{Name: "t1", MemoryBudget: 1 << 20},
			{Name: "t2", MemoryBudget: 1 << 20},
			{Name: "t3", MemoryBudget: 1 << 20},
		},
		GlobalBudget: 4 << 20,
		QueueDepth:   64,
		Workers:      4,
		IdleSuspend:  40 * time.Millisecond, // keep the janitor racing too
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	const perTenant = 3
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, 4*perTenant)
	for tn := 0; tn < 4; tn++ {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(tenant string, g int) {
				defer wg.Done()
				sess := c.createSession(tenant, 8, int64(g+1))
				circ := compressedCircuit(8, int64(g+1))
				for i := 0; i < iters; i++ {
					status, evs, st := c.submit(sess.SessionID, circ)
					switch {
					case st != nil:
						// Typed backpressure is legal under load.
						if st.Code != CodeRejectQueueFull && st.Code != CodeRejectRate {
							errs <- fmt.Errorf("%s/%d: unexpected rejection %d %+v", tenant, g, status, st)
							return
						}
					case len(evs) == 0 || evs[len(evs)-1].Type != "done":
						errs <- fmt.Errorf("%s/%d: no terminal done event: %+v", tenant, g, evs)
						return
					}
					if _, resp := c.sample(sess.SessionID, 4); resp.Code != CodeOK && resp.Code != CodeRejectBudget {
						errs <- fmt.Errorf("%s/%d: sample: %+v", tenant, g, resp)
						return
					}
					if st := c.suspend(sess.SessionID); st.Code != CodeOK {
						errs <- fmt.Errorf("%s/%d: suspend: %+v", tenant, g, st)
						return
					}
					// Resume transparently by sampling again.
					if _, resp := c.sample(sess.SessionID, 2); resp.Code != CodeOK && resp.Code != CodeRejectBudget {
						errs <- fmt.Errorf("%s/%d: resume sample: %+v", tenant, g, resp)
						return
					}
				}
				// A mid-stream client cancel must not wedge anything:
				// fire a submit and abandon the SSE stream immediately.
				body, _ := json.Marshal(SubmitRequest{Circuit: circuitText(t, circ)})
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, "POST",
					c.base+"/v1/sessions/"+sess.SessionID+"/jobs", bytes.NewReader(body))
				resp, err := c.hc.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				cancel()
				// Close the session; the ledger must get its bytes back.
				req2, _ := http.NewRequest("DELETE", c.base+"/v1/sessions/"+sess.SessionID, nil)
				if resp2, err := c.hc.Do(req2); err == nil {
					resp2.Body.Close()
				}
			}(fmt.Sprintf("t%d", tn), g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	shutdownOK(t, srv)
	if used := srv.Ledger().TotalUsed(); used != 0 {
		t.Fatalf("ledger must balance to zero after shutdown, holds %d", used)
	}
}
