package server

import (
	"errors"
	"fmt"

	"qcsim"
	"qcsim/circuit"
)

// minSpillResident is the smallest resident cap the admission
// controller will price a spill-tier job at: two decompressed blocks
// of scratch is the floor below which the tiered store thrashes.
const minSpillResident = int64(64) << 10

// admit prices a circuit against the session's tenant and routes it to
// an engine — BEFORE any state is allocated. The decision order:
//
//  1. Already-routed session: the engine was chosen by the first
//     admitted job; later jobs ride the existing route (and its
//     existing reservation) for free.
//  2. MPS route: the structural bond estimate fits the session's χ cap
//     and every gate is MPS-runnable → reserve only the (polynomial)
//     tensor bytes.
//  3. Compressed route: the dense worst case 2^(n+4) fits the tenant's
//     remaining allowance → reserve it. The job can then never blow
//     the budget, however incompressible its state gets.
//  4. Spill route: the worst case fits the server's disk budget →
//     reserve only a resident cap (the tenant's remaining allowance,
//     floored at two blocks) and let the tiered store keep the
//     overflow on disk.
//  5. Typed rejection: CodeRejectBudget, nothing allocated, nothing
//     charged.
//
// A batch submission (variants K > 1, from SubmitRequest.Variants)
// prices the K-variant worst case: qcsim.WithVariants scales the dense
// ceiling by K and pins the route to the compressed backend, so the
// reservation covers every state copy a RunBatch/Gradient can hold at
// once. The rejection stays the same typed CodeRejectBudget.
//
// Caller holds s.mu. On admission the session's route is fixed and its
// priced bytes are reserved in the ledger (s.reserved > 0), so the
// later engine build in ensureResident does not re-charge. fresh
// reports that THIS call created the route (and holds its reservation)
// — the caller uses it to undo the admission if the job never enqueues.
func (srv *Server) admit(s *Session, c *circuit.Circuit, variants int) (adm *Admission, fresh bool, err error) {
	if s.route != nil {
		return s.route, false, nil
	}

	var opts []qcsim.Option
	if s.bondDim > 0 {
		opts = append(opts, qcsim.WithBondDim(s.bondDim))
	}
	if s.blockAmps > 0 {
		opts = append(opts, qcsim.WithBlockAmps(s.blockAmps))
	}
	if variants != 0 {
		// WithVariants validates (negative → ErrBadConfig →
		// CodeErrBadRequest via admissionCode) and scales the estimate.
		opts = append(opts, qcsim.WithVariants(variants))
	}
	est, err := qcsim.EstimateCircuit(s.Qubits, c, opts...)
	if err != nil {
		return nil, false, err
	}

	if est.Backend == qcsim.BackendMPS {
		if err := srv.ledger.Reserve(s.Tenant, est.MPSBytes); err != nil {
			return &Admission{
				Code: CodeRejectBudget, EstBondDim: est.BondDim,
				PricedBytes: est.MPSBytes,
				Reason:      fmt.Sprintf("mps tensors need %d bytes: %v", est.MPSBytes, err),
			}, false, nil
		}
		adm := &Admission{
			Code: CodeAdmitMPS, Backend: qcsim.BackendMPS,
			EstBondDim: est.BondDim, PricedBytes: est.MPSBytes,
		}
		s.route = adm
		s.reserved = est.MPSBytes
		return adm, true, nil
	}

	// Dense worst case. Registers past ~59 qubits overflow int64 and
	// can never be RAM-priced; they go straight to the spill/reject
	// arms.
	dense := int64(-1)
	if est.UncompressedBytes < float64(int64(1)<<62) {
		dense = int64(est.UncompressedBytes)
	}
	if dense > 0 {
		if err := srv.ledger.Reserve(s.Tenant, dense); err == nil {
			adm := &Admission{
				Code: CodeAdmitCompressed, Backend: qcsim.BackendCompressed,
				EstBondDim: est.BondDim, PricedBytes: dense,
			}
			s.route = adm
			s.reserved = dense
			return adm, true, nil
		} else if !errors.Is(err, ErrTenantBudget) && !errors.Is(err, ErrGlobalBudget) {
			return nil, false, err
		}
	}

	// Spill tier: worst case on disk, resident cap in RAM.
	if srv.cfg.DiskBudget > 0 && est.UncompressedBytes <= float64(srv.cfg.DiskBudget) {
		resident := srv.ledger.Remaining(s.Tenant)
		if dense > 0 && resident > dense {
			resident = dense
		}
		floor := 2 * est.BlockBytes
		if floor < minSpillResident {
			floor = minSpillResident
		}
		if resident < floor {
			resident = floor
		}
		if err := srv.ledger.Reserve(s.Tenant, resident); err == nil {
			adm := &Admission{
				Code: CodeAdmitSpill, Backend: qcsim.BackendCompressed,
				EstBondDim: est.BondDim, PricedBytes: resident,
			}
			s.route = adm
			s.reserved = resident
			return adm, true, nil
		}
	}

	reason := fmt.Sprintf("worst case %.0f bytes exceeds tenant allowance %d",
		est.UncompressedBytes, srv.ledger.Remaining(s.Tenant))
	if srv.cfg.DiskBudget > 0 {
		reason += fmt.Sprintf(" and disk budget %d", srv.cfg.DiskBudget)
	} else {
		reason += " (no disk spill budget configured)"
	}
	return &Admission{
		Code: CodeRejectBudget, EstBondDim: est.BondDim,
		PricedBytes: dense, Reason: reason,
	}, false, nil
}

// releaseAdmission undoes an admission whose job never ran (enqueue
// refused): if the engine was never built, the reservation is returned
// and the route cleared so the next submission re-prices from scratch.
// Caller must NOT hold s.mu.
func (srv *Server) releaseAdmission(s *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sim == nil && s.ckptPath == "" && s.reserved > 0 {
		srv.ledger.Release(s.Tenant, s.reserved)
		s.reserved = 0
		s.route = nil
	}
}

// admissionCode maps an admission/estimate error onto a typed code.
func admissionCode(err error) Code {
	switch {
	case errors.Is(err, qcsim.ErrCircuitMismatch):
		return CodeErrBadCircuit
	case errors.Is(err, qcsim.ErrBadConfig), errors.Is(err, qcsim.ErrUnknownCodec):
		return CodeErrBadRequest
	case errors.Is(err, ErrTenantBudget), errors.Is(err, ErrGlobalBudget):
		return CodeRejectBudget
	default:
		return CodeErrInternal
	}
}
