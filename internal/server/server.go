// Package server implements qcserve: a multi-tenant simulation
// service over the qcsim facade. Tenants hold sessions; an admission
// controller prices every circuit (bond-dimension estimate + codec
// footprint model, via qcsim.EstimateCircuit) BEFORE any state is
// allocated and either routes it to an engine — mps, compressed, or
// compressed+spill — or rejects it with a typed code. Admitted jobs
// wait in a bounded queue drained by a worker pool; progress streams
// to the client as server-sent events. Idle sessions are suspended to
// checkpoint files through the block-streaming Save path and resumed
// transparently, so a sleeping tenant costs disk, not RAM. A
// process-wide ledger (global capacity + per-tenant budgets) is the
// single account every reservation goes through.
//
// The package deliberately imports only the public surface (qcsim,
// qcsim/circuit) — admission uses the explicit qcsim.EstimateCircuit
// facade hook rather than reaching into internal planners, and CI
// enforces the boundary with a grep gate.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcsim/circuit"
)

// Config configures a Server. The zero value of every field has a
// sensible default except Tenants, which must name at least one
// tenant.
type Config struct {
	// Tenants declares the allowed tenants, their memory budgets, and
	// their submission rate limits.
	Tenants []TenantConfig
	// GlobalBudget caps resident bytes across ALL tenants (0 =
	// unlimited). A job can be rejected by the global budget even when
	// its tenant has allowance left.
	GlobalBudget int64
	// DiskBudget enables the spill admission route: jobs whose dense
	// worst case exceeds the tenant's RAM allowance but fits this many
	// bytes of disk are admitted with a resident cap (0 = spill route
	// disabled).
	DiskBudget int64
	// QueueDepth bounds the job queue (default 64).
	QueueDepth int
	// Workers sizes the pool draining the queue (default 2). Workers <
	// 0 starts NO workers — a test hook that makes queue-full behavior
	// deterministic.
	Workers int
	// DataDir hosts the ckpt/ and spill/ subdirectories. "" uses a
	// fresh temp dir that is removed at Shutdown; a named dir persists
	// suspended checkpoints across server restarts.
	DataDir string
	// IdleSuspend checkpoints sessions idle longer than this (0 =
	// never). MPS-routed sessions are exempt (no checkpoint format).
	IdleSuspend time.Duration
}

// Server is one qcserve instance. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	ledger  *Ledger
	tenants map[string]*tenant
	metrics Metrics

	jobs     chan *job
	drainMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*Session

	dataDir    string
	ownDataDir bool
	ckptDir    string
	spillDir   string

	nextJob     atomic.Int64
	janitorStop chan struct{}
}

// New builds and starts a Server: worker pool running, janitor (if
// IdleSuspend is set) ticking. The caller must Shutdown it.
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 2
	}
	if workers < 0 {
		workers = 0
	}

	dataDir, own := cfg.DataDir, false
	if dataDir == "" {
		d, err := os.MkdirTemp("", "qcserve-*")
		if err != nil {
			return nil, err
		}
		dataDir, own = d, true
	}
	ckptDir := filepath.Join(dataDir, "ckpt")
	spillDir := filepath.Join(dataDir, "spill")
	for _, d := range []string{ckptDir, spillDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			if own {
				os.RemoveAll(dataDir)
			}
			return nil, err
		}
	}

	srv := &Server{
		cfg:         cfg,
		ledger:      NewLedger(cfg.GlobalBudget),
		tenants:     make(map[string]*tenant, len(cfg.Tenants)),
		jobs:        make(chan *job, cfg.QueueDepth),
		sessions:    make(map[string]*Session),
		dataDir:     dataDir,
		ownDataDir:  own,
		ckptDir:     ckptDir,
		spillDir:    spillDir,
		janitorStop: make(chan struct{}),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			if own {
				os.RemoveAll(dataDir)
			}
			return nil, errors.New("server: tenant with empty name")
		}
		if _, dup := srv.tenants[tc.Name]; dup {
			if own {
				os.RemoveAll(dataDir)
			}
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		srv.tenants[tc.Name] = newTenant(tc)
		srv.ledger.AddTenant(tc.Name, tc.MemoryBudget)
	}

	for i := 0; i < workers; i++ {
		srv.wg.Add(1)
		go srv.worker()
	}
	if cfg.IdleSuspend > 0 {
		srv.wg.Add(1)
		go srv.janitor()
	}
	return srv, nil
}

// Handler returns the server's HTTP routes (see protocol.go for the
// table). Mount it on any mux or serve it directly.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", srv.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", srv.handleInspect)
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/jobs", srv.handleSubmit)
	mux.HandleFunc("POST /v1/sessions/{id}/sample", srv.handleSample)
	mux.HandleFunc("POST /v1/sessions/{id}/suspend", srv.handleSuspend)
	mux.HandleFunc("GET /metrics", srv.handleMetrics)
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code Code, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code.HTTPStatus())
	json.NewEncoder(w).Encode(v)
}

func writeStatus(w http.ResponseWriter, code Code, err string) {
	writeJSON(w, code, StatusResponse{Code: code, Error: err})
}

func (srv *Server) isDraining() bool {
	srv.drainMu.RLock()
	defer srv.drainMu.RUnlock()
	return srv.draining
}

func (srv *Server) session(id string) *Session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if srv.isDraining() {
		writeStatus(w, CodeErrShuttingDown, "server is shutting down")
		return
	}
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeStatus(w, CodeErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if _, ok := srv.tenants[req.Tenant]; !ok {
		writeStatus(w, CodeErrUnknownTenant, fmt.Sprintf("unknown tenant %q", req.Tenant))
		return
	}
	if req.Qubits < 1 || req.Qubits > 62 {
		writeStatus(w, CodeErrBadRequest, fmt.Sprintf("qubits %d out of range 1..62", req.Qubits))
		return
	}
	s := newSession(req.Tenant, req)
	srv.mu.Lock()
	srv.sessions[s.ID] = s
	srv.mu.Unlock()
	srv.metrics.SessionsCreated.Add(1)
	writeJSON(w, CodeOK, s.info())
}

func (srv *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	s := srv.session(r.PathValue("id"))
	if s == nil {
		writeStatus(w, CodeErrNoSession, "no such session")
		return
	}
	writeJSON(w, CodeOK, s.info())
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s := srv.sessions[id]
	delete(srv.sessions, id)
	srv.mu.Unlock()
	if s == nil {
		writeStatus(w, CodeErrNoSession, "no such session")
		return
	}
	s.mu.Lock()
	s.closeSession(srv.ledger, &srv.metrics)
	s.mu.Unlock()
	writeJSON(w, CodeOK, StatusResponse{Code: CodeOK, SessionID: id})
}

func (srv *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	s := srv.session(r.PathValue("id"))
	if s == nil {
		writeStatus(w, CodeErrNoSession, "no such session")
		return
	}
	s.mu.Lock()
	code, err := s.suspend(srv.ledger, srv.ckptDir, &srv.metrics)
	s.mu.Unlock()
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	writeJSON(w, code, StatusResponse{Code: code, Error: msg, SessionID: s.ID})
}

func (srv *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	s := srv.session(r.PathValue("id"))
	if s == nil {
		writeStatus(w, CodeErrNoSession, "no such session")
		return
	}
	var req SampleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeStatus(w, CodeErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Shots < 1 || req.Shots > 1<<20 {
		writeStatus(w, CodeErrBadRequest, fmt.Sprintf("shots %d out of range 1..%d", req.Shots, 1<<20))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.route == nil {
		writeStatus(w, CodeErrUnsupported, "session has no admitted job yet; nothing to sample")
		return
	}
	if err := s.ensureResident(srv.ledger, srv.spillDir, &srv.metrics); err != nil {
		code := CodeErrInternal
		if errors.Is(err, ErrTenantBudget) || errors.Is(err, ErrGlobalBudget) {
			code = CodeRejectBudget
		}
		writeStatus(w, code, err.Error())
		return
	}
	outcomes, err := s.sim.Sample(req.Shots)
	if err != nil {
		writeStatus(w, CodeErrInternal, err.Error())
		return
	}
	s.touch()
	srv.metrics.SamplesDrawn.Add(int64(req.Shots))
	resp := SampleResponse{Code: CodeOK, Outcomes: make([]string, len(outcomes))}
	for i, o := range outcomes {
		resp.Outcomes[i] = strconv.FormatUint(o, 10)
	}
	writeJSON(w, CodeOK, resp)
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if srv.isDraining() {
		writeStatus(w, CodeErrShuttingDown, "server is shutting down")
		return
	}
	s := srv.session(r.PathValue("id"))
	if s == nil {
		writeStatus(w, CodeErrNoSession, "no such session")
		return
	}
	srv.metrics.Submitted.Add(1)

	if !srv.tenants[s.Tenant].bucket.allow() {
		srv.metrics.RejectRate.Add(1)
		writeJSON(w, CodeRejectRate, StatusResponse{
			Code: CodeRejectRate, Error: "tenant rate limit exceeded; retry later", SessionID: s.ID,
		})
		return
	}

	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeStatus(w, CodeErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	circ, err := circuit.Parse(strings.NewReader(req.Circuit))
	if err != nil {
		writeStatus(w, CodeErrBadCircuit, err.Error())
		return
	}
	if circ.N != s.Qubits {
		writeStatus(w, CodeErrBadCircuit,
			fmt.Sprintf("circuit is %d qubits, session register is %d", circ.N, s.Qubits))
		return
	}

	s.mu.Lock()
	adm, fresh, err := srv.admit(s, circ, req.Variants)
	s.mu.Unlock()
	if err != nil {
		code := admissionCode(err)
		srv.metrics.recordAdmission(code)
		writeStatus(w, code, err.Error())
		return
	}
	srv.metrics.recordAdmission(adm.Code)
	if !adm.Code.Admitted() {
		writeJSON(w, adm.Code, StatusResponse{Code: adm.Code, Error: adm.Reason, SessionID: s.ID, Admit: adm})
		return
	}

	j := &job{
		id:     "j" + strconv.FormatInt(srv.nextJob.Add(1), 10),
		sess:   s,
		circ:   circ,
		ctx:    r.Context(),
		events: make(chan JobEvent, 32),
	}
	if code := srv.enqueue(j); code != CodeOK {
		if fresh {
			srv.releaseAdmission(s)
		}
		srv.metrics.recordAdmission(code)
		writeJSON(w, code, StatusResponse{Code: code, Error: "job not enqueued", SessionID: s.ID, Admit: adm})
		return
	}

	// Stream the job as server-sent events: an "admitted" event first,
	// then progress, then the terminal "done"/"error".
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	send := func(ev JobEvent) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "data: %s\n\n", data)
		if flusher != nil {
			flusher.Flush()
		}
	}
	send(JobEvent{Type: "admitted", JobID: j.id, Code: adm.Code, Admit: adm})
	for {
		select {
		case ev, ok := <-j.events:
			if !ok {
				return
			}
			send(ev)
		case <-r.Context().Done():
			// Client gone: the job context is cancelled with it; the
			// worker (if the job is running) stops at the next sweep
			// boundary and keeps the completed prefix.
			return
		}
	}
}

func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	srv.writeMetrics(w)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if srv.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// janitor suspends sessions idle longer than IdleSuspend. TryLock
// skips sessions mid-job (the worker holds the lock for the whole
// run), so the janitor never stalls behind a long circuit.
func (srv *Server) janitor() {
	defer srv.wg.Done()
	tick := srv.cfg.IdleSuspend / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-srv.janitorStop:
			return
		case <-t.C:
		}
		srv.mu.Lock()
		sessions := make([]*Session, 0, len(srv.sessions))
		for _, s := range srv.sessions {
			sessions = append(sessions, s)
		}
		srv.mu.Unlock()
		for _, s := range sessions {
			if !s.mu.TryLock() {
				continue
			}
			if s.sim != nil && s.route != nil && s.route.Code != CodeAdmitMPS &&
				time.Since(s.lastUsed) >= srv.cfg.IdleSuspend {
				s.suspend(srv.ledger, srv.ckptDir, &srv.metrics)
			}
			s.mu.Unlock()
		}
	}
}

// Shutdown drains gracefully: refuse new work, let queued jobs finish,
// suspend every live compressed session to its checkpoint (MPS
// sessions just close), release all reservations, and — when the data
// dir is server-owned — remove it entirely, leaving no spill or
// checkpoint files behind. ctx bounds the queue drain; on expiry the
// remaining cleanup still runs.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.drainMu.Lock()
	already := srv.draining
	srv.draining = true
	srv.drainMu.Unlock()
	if already {
		return errors.New("server: already shut down")
	}
	close(srv.jobs)
	close(srv.janitorStop)

	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: shutdown drain: %w", ctx.Err())
	}

	srv.mu.Lock()
	sessions := srv.sessions
	srv.sessions = make(map[string]*Session)
	srv.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.sim != nil {
			if code, _ := s.suspend(srv.ledger, srv.ckptDir, &srv.metrics); code == CodeOK {
				srv.metrics.ShutdownSuspended.Add(1)
			} else {
				// MPS (or failed save): close the engine and return the
				// reservation; the session state is lost, as documented.
				s.snap = s.sim.Snapshot()
				s.sim.Close()
				s.sim = nil
				srv.ledger.Release(s.Tenant, s.reserved)
				s.reserved = 0
			}
		} else if s.reserved > 0 {
			srv.ledger.Release(s.Tenant, s.reserved)
			s.reserved = 0
		}
		s.mu.Unlock()
	}

	if srv.ownDataDir {
		if err := os.RemoveAll(srv.dataDir); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// DataDir exposes where the server keeps checkpoint and spill files
// (tests assert it is cleaned up).
func (srv *Server) DataDir() string { return srv.dataDir }

// Ledger exposes the budget ledger for inspection.
func (srv *Server) Ledger() *Ledger { return srv.ledger }
