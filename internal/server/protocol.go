package server

import "net/http"

// The qcserve wire protocol: HTTP + JSON with typed return codes,
// modeled on the libddwaf C API's handle/context separation and typed
// DDWAF_* results — every response carries a Code the client can
// switch on without parsing error strings.
//
//	POST   /v1/sessions                     create a session handle
//	GET    /v1/sessions/{id}                inspect a session
//	DELETE /v1/sessions/{id}                close a session
//	POST   /v1/sessions/{id}/jobs           submit a circuit (admission-controlled);
//	                                        streams progress as SSE, final event carries the result
//	POST   /v1/sessions/{id}/sample         draw shots from the session's state
//	POST   /v1/sessions/{id}/suspend        checkpoint the session to disk and free its RAM
//	GET    /metrics                         Prometheus-style text metrics
//	GET    /healthz                         liveness
//
// Circuits travel as qc text (circuit.Serialize / circuit.Parse):
//
//	qubits 3
//	h 0
//	cx 0 1
//	cx 1 2

// Code is a typed return code. Admission codes (ADMIT_*/REJECT_*) come
// from the admission controller and are decided BEFORE any state is
// allocated; ERR_* codes are request or execution failures.
type Code string

const (
	// CodeOK is the generic success code for non-admission responses.
	CodeOK Code = "OK"

	// CodeAdmitCompressed admits the job on the compressed full-state
	// engine, its worst-case footprint reserved against the tenant and
	// global budgets.
	CodeAdmitCompressed Code = "ADMIT_COMPRESSED"
	// CodeAdmitMPS admits the job on the MPS engine: the structural
	// bond-dimension estimate fits, so only the (polynomial) tensor
	// storage is reserved.
	CodeAdmitMPS Code = "ADMIT_MPS"
	// CodeAdmitSpill admits the job on the compressed engine with the
	// disk spill tier: the worst case exceeds the tenant's RAM
	// allowance but fits the server's disk budget, so only the
	// resident cap is reserved and the overflow lives in the spill
	// file.
	CodeAdmitSpill Code = "ADMIT_SPILL"

	// CodeRejectBudget rejects a job whose priced footprint fits
	// neither the tenant's remaining RAM allowance nor (with spill)
	// the server's disk budget. No state was allocated.
	CodeRejectBudget Code = "REJECT_BUDGET"
	// CodeRejectRate rejects a submission that exhausted the tenant's
	// token bucket. Retry later.
	CodeRejectRate Code = "REJECT_RATE"
	// CodeRejectQueueFull rejects a submission that found the bounded
	// job queue full. Retry later.
	CodeRejectQueueFull Code = "REJECT_QUEUE_FULL"

	// CodeErrUnknownTenant names a tenant the server was not
	// configured with.
	CodeErrUnknownTenant Code = "ERR_UNKNOWN_TENANT"
	// CodeErrNoSession names a session id that does not exist (never
	// created, or already closed).
	CodeErrNoSession Code = "ERR_NO_SESSION"
	// CodeErrBadRequest is a malformed request (unparseable JSON,
	// invalid qubit count, bad options).
	CodeErrBadRequest Code = "ERR_BAD_REQUEST"
	// CodeErrBadCircuit is an unparseable qc circuit or one whose
	// width does not match the session register.
	CodeErrBadCircuit Code = "ERR_BAD_CIRCUIT"
	// CodeErrUnsupported is an operation the session's engine cannot
	// perform (suspending an MPS-routed session, sampling a session
	// that has never run, ...).
	CodeErrUnsupported Code = "ERR_UNSUPPORTED"
	// CodeErrCancelled reports a job stopped by client disconnect or
	// explicit cancellation; the completed gate prefix is kept.
	CodeErrCancelled Code = "ERR_CANCELLED"
	// CodeErrInternal is an unexpected engine or I/O failure.
	CodeErrInternal Code = "ERR_INTERNAL"
	// CodeErrShuttingDown reports a server draining for shutdown; no
	// new work is accepted.
	CodeErrShuttingDown Code = "ERR_SHUTTING_DOWN"
)

// HTTPStatus maps a code onto the HTTP status the response rides on.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK, CodeAdmitCompressed, CodeAdmitMPS, CodeAdmitSpill:
		return http.StatusOK
	case CodeRejectBudget:
		return http.StatusForbidden
	case CodeRejectRate, CodeRejectQueueFull:
		return http.StatusTooManyRequests
	case CodeErrUnknownTenant, CodeErrNoSession:
		return http.StatusNotFound
	case CodeErrBadRequest, CodeErrBadCircuit:
		return http.StatusBadRequest
	case CodeErrUnsupported:
		return http.StatusUnprocessableEntity
	case CodeErrCancelled:
		return http.StatusConflict
	case CodeErrShuttingDown:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Admitted reports whether the code admits work (ADMIT_* or OK).
func (c Code) Admitted() bool {
	switch c {
	case CodeOK, CodeAdmitCompressed, CodeAdmitMPS, CodeAdmitSpill:
		return true
	}
	return false
}

// CreateSessionRequest opens a session handle for a tenant. The
// backend is NOT chosen here — the admission controller routes the
// first submitted circuit, so a session costs nothing until a job is
// admitted.
type CreateSessionRequest struct {
	// Tenant names a configured tenant; every budget and rate decision
	// charges it.
	Tenant string `json:"tenant"`
	// Qubits is the session's register width (1..62).
	Qubits int `json:"qubits"`
	// Seed drives every random stream of the session's simulator
	// (measurement collapse, sampling), making runs reproducible.
	Seed int64 `json:"seed,omitempty"`
	// BondDim overrides the MPS bond-dimension cap χ used both for
	// admission routing and, on the mps route, the engine itself.
	// 0 means the server default.
	BondDim int `json:"bond_dim,omitempty"`
	// BlockAmps overrides the compressed engine's block size
	// (power of two). 0 means the engine default.
	BlockAmps int `json:"block_amps,omitempty"`
}

// SessionInfo is the inspectable state of a session.
type SessionInfo struct {
	Code      Code   `json:"code"`
	Error     string `json:"error,omitempty"`
	SessionID string `json:"session_id,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Qubits    int    `json:"qubits,omitempty"`
	// Backend is the routed engine ("" until the first job is
	// admitted).
	Backend string `json:"backend,omitempty"`
	// Suspended reports the session is checkpointed on disk, costing
	// no RAM; the next job or sample resumes it transparently.
	Suspended bool `json:"suspended"`
	// ReservedBytes is what the session currently holds against the
	// budget ledger (0 while suspended).
	ReservedBytes int64 `json:"reserved_bytes"`
	// GatesRun, Fidelity, and Footprint mirror the simulator's
	// cumulative accounting (zero until first build; preserved across
	// suspend/resume).
	GatesRun  int     `json:"gates_run"`
	Fidelity  float64 `json:"fidelity,omitempty"`
	Footprint int64   `json:"footprint,omitempty"`
	Suspends  int64   `json:"suspends"`
	Resumes   int64   `json:"resumes"`
}

// SubmitRequest submits one circuit to a session's job queue.
type SubmitRequest struct {
	// Circuit is the qc-format circuit text.
	Circuit string `json:"circuit"`
	// Variants declares the batch width K the client will drive through
	// RunBatch/Gradient on this session. Admission then reserves the
	// K-variant worst case (K dense state copies) instead of one, and
	// the job is pinned to the compressed backend. 0 or 1 is an
	// ordinary solo run; negative values are CodeErrBadRequest.
	Variants int `json:"variants,omitempty"`
}

// Admission is the controller's pricing decision, echoed to the
// client so a rejection explains itself.
type Admission struct {
	Code Code `json:"code"`
	// Backend is the routed engine on admission.
	Backend string `json:"backend,omitempty"`
	// EstBondDim is the structural bond-dimension bound of the
	// circuit.
	EstBondDim int `json:"est_bond_dim,omitempty"`
	// PricedBytes is what admission charged (or tried to charge)
	// against the tenant budget: MPS tensor bytes, the dense worst
	// case, or the spill-resident cap.
	PricedBytes int64 `json:"priced_bytes,omitempty"`
	// Reason explains a rejection in words.
	Reason string `json:"reason,omitempty"`
}

// JobEvent is one server-sent event of a job stream. Type "progress"
// events carry Gate/Total/Name; the terminal event is "done" (with
// Result) or "error" (with Code/Error).
type JobEvent struct {
	Type  string     `json:"type"`
	JobID string     `json:"job_id,omitempty"`
	Gate  int        `json:"gate,omitempty"`
	Total int        `json:"total,omitempty"`
	Name  string     `json:"name,omitempty"`
	Code  Code       `json:"code,omitempty"`
	Error string     `json:"error,omitempty"`
	Admit *Admission `json:"admission,omitempty"`
	Res   *JobResult `json:"result,omitempty"`
}

// JobResult summarizes a completed run.
type JobResult struct {
	Gates        int     `json:"gates"`
	Measurements []int   `json:"measurements,omitempty"`
	Fidelity     float64 `json:"fidelity"`
	Footprint    int64   `json:"footprint"`
	Backend      string  `json:"backend"`
}

// SampleRequest draws shots from the session's current state.
type SampleRequest struct {
	Shots int `json:"shots"`
}

// SampleResponse carries the drawn outcomes as decimal strings
// (uint64 outcomes on registers past 53 qubits would lose precision
// as JSON numbers).
type SampleResponse struct {
	Code     Code     `json:"code"`
	Error    string   `json:"error,omitempty"`
	Outcomes []string `json:"outcomes,omitempty"`
}

// StatusResponse is the generic code-plus-message envelope
// (suspend, delete, rejections outside a job stream).
type StatusResponse struct {
	Code      Code       `json:"code"`
	Error     string     `json:"error,omitempty"`
	SessionID string     `json:"session_id,omitempty"`
	Admit     *Admission `json:"admission,omitempty"`
}
