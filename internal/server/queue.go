package server

import (
	"context"
	"errors"

	"qcsim"
	"qcsim/circuit"
)

// job is one admitted circuit waiting in the bounded queue. Its events
// channel is the SSE stream: progress events are sent best-effort (a
// slow consumer drops progress rather than stalling the engine), the
// terminal "done"/"error" event is delivered reliably, and the worker
// closes the channel when the job is finished.
type job struct {
	id   string
	sess *Session
	circ *circuit.Circuit
	// ctx is derived from the client request: disconnecting cancels the
	// run at the next sweep boundary, keeping the completed prefix.
	//qclint:allow ctxflow a queued job carries its request context so disconnect cancels the run
	ctx    context.Context
	events chan JobEvent
}

// enqueue offers a job to the bounded queue without blocking. The
// drain lock makes the draining check and the channel send atomic
// against Shutdown closing the queue.
func (srv *Server) enqueue(j *job) Code {
	srv.drainMu.RLock()
	defer srv.drainMu.RUnlock()
	if srv.draining {
		return CodeErrShuttingDown
	}
	select {
	case srv.jobs <- j:
		return CodeOK
	default:
		return CodeRejectQueueFull
	}
}

// worker drains the job queue until Shutdown closes it.
func (srv *Server) worker() {
	defer srv.wg.Done()
	for j := range srv.jobs {
		srv.runJob(j)
	}
}

// terminal delivers a job's final event. It must not be dropped like
// progress events, but it also must not block forever on a consumer
// that disconnected — the job's own context is the escape hatch.
func (j *job) terminal(ev JobEvent) {
	select {
	case j.events <- ev:
	case <-j.ctx.Done():
		// Consumer gone; one more non-blocking attempt in case the
		// drain raced the cancel, then give up.
		select {
		case j.events <- ev:
		default:
		}
	}
}

// runJob executes one job against its session: make the engine
// resident (building or resuming as needed), stream RunProgress events,
// send the terminal event. The session lock is held for the whole run,
// serializing jobs, samples, and suspends on one simulator.
func (srv *Server) runJob(j *job) {
	defer close(j.events)
	s := j.sess
	s.mu.Lock()
	defer s.mu.Unlock()

	if err := j.ctx.Err(); err != nil {
		srv.metrics.JobsCancelled.Add(1)
		j.terminal(JobEvent{Type: "error", JobID: j.id, Code: CodeErrCancelled, Error: "cancelled before start"})
		return
	}
	if err := s.ensureResident(srv.ledger, srv.spillDir, &srv.metrics); err != nil {
		code := CodeErrInternal
		switch {
		case errors.Is(err, ErrTenantBudget), errors.Is(err, ErrGlobalBudget):
			code = CodeRejectBudget
			srv.metrics.RejectBudget.Add(1)
		case errors.Is(err, errSessionClosed):
			code = CodeErrNoSession
		}
		srv.metrics.JobsFailed.Add(1)
		j.terminal(JobEvent{Type: "error", JobID: j.id, Code: code, Error: err.Error()})
		return
	}
	if s.sim == nil {
		srv.metrics.JobsFailed.Add(1)
		j.terminal(JobEvent{Type: "error", JobID: j.id, Code: CodeErrInternal, Error: "session has no engine (admission was released)"})
		return
	}
	s.touch()

	res, err := s.sim.RunProgress(j.ctx, j.circ, func(ev qcsim.ProgressEvent) {
		select {
		case j.events <- JobEvent{Type: "progress", JobID: j.id, Gate: ev.Gate, Total: ev.Total, Name: ev.Name}:
		default:
		}
	})
	s.touch()
	if err != nil {
		code := CodeErrInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = CodeErrCancelled
			srv.metrics.JobsCancelled.Add(1)
		} else {
			srv.metrics.JobsFailed.Add(1)
		}
		j.terminal(JobEvent{Type: "error", JobID: j.id, Code: code, Error: err.Error()})
		return
	}
	srv.metrics.JobsDone.Add(1)
	j.terminal(JobEvent{Type: "done", JobID: j.id, Code: CodeOK, Res: &JobResult{
		Gates:        res.Gates,
		Measurements: res.Measurements,
		Fidelity:     res.FidelityLowerBound,
		Footprint:    res.Footprint,
		Backend:      s.sim.Backend(),
	}})
}
