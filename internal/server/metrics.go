package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Metrics is the server's counter set. Counters are lock-free atomics
// bumped on the hot paths; gauges (queue depth, resident bytes, codec
// calls) are computed at scrape time from the live structures, so the
// scrape is always consistent with the ledger rather than a lagging
// shadow copy.
type Metrics struct {
	Submitted         atomic.Int64
	AdmitCompressed   atomic.Int64
	AdmitMPS          atomic.Int64
	AdmitSpill        atomic.Int64
	RejectBudget      atomic.Int64
	RejectRate        atomic.Int64
	RejectQueueFull   atomic.Int64
	JobsDone          atomic.Int64
	JobsFailed        atomic.Int64
	JobsCancelled     atomic.Int64
	Suspends          atomic.Int64
	Resumes           atomic.Int64
	Builds            atomic.Int64
	SessionsCreated   atomic.Int64
	SessionsClosed    atomic.Int64
	SamplesDrawn      atomic.Int64
	ShutdownSuspended atomic.Int64
}

// recordAdmission bumps the counter matching an admission code.
func (m *Metrics) recordAdmission(c Code) {
	switch c {
	case CodeAdmitCompressed:
		m.AdmitCompressed.Add(1)
	case CodeAdmitMPS:
		m.AdmitMPS.Add(1)
	case CodeAdmitSpill:
		m.AdmitSpill.Add(1)
	case CodeRejectBudget:
		m.RejectBudget.Add(1)
	case CodeRejectRate:
		m.RejectRate.Add(1)
	case CodeRejectQueueFull:
		m.RejectQueueFull.Add(1)
	}
}

// writeMetrics renders the Prometheus text exposition format: the
// atomic counters, plus scrape-time gauges read from the queue, the
// ledger, and every live session's simulator accounting.
func (srv *Server) writeMetrics(w io.Writer) {
	m := &srv.metrics
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP qcserve_%s %s\n# TYPE qcserve_%s counter\nqcserve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP qcserve_%s %s\n# TYPE qcserve_%s gauge\nqcserve_%s %d\n", name, help, name, name, v)
	}

	counter("jobs_submitted_total", "circuits submitted", m.Submitted.Load())
	counter("admissions_compressed_total", "jobs admitted on the compressed engine", m.AdmitCompressed.Load())
	counter("admissions_mps_total", "jobs admitted on the MPS engine", m.AdmitMPS.Load())
	counter("admissions_spill_total", "jobs admitted on the compressed engine with disk spill", m.AdmitSpill.Load())
	counter("rejections_budget_total", "jobs rejected by the budget ledger", m.RejectBudget.Load())
	counter("rejections_rate_total", "submissions rejected by tenant rate limits", m.RejectRate.Load())
	counter("rejections_queue_full_total", "submissions rejected by the bounded queue", m.RejectQueueFull.Load())
	counter("jobs_done_total", "jobs completed", m.JobsDone.Load())
	counter("jobs_failed_total", "jobs failed", m.JobsFailed.Load())
	counter("jobs_cancelled_total", "jobs cancelled", m.JobsCancelled.Load())
	counter("suspends_total", "sessions checkpointed to disk", m.Suspends.Load())
	counter("resumes_total", "sessions restored from checkpoint", m.Resumes.Load())
	counter("engine_builds_total", "simulator engines constructed", m.Builds.Load())
	counter("sessions_created_total", "sessions created", m.SessionsCreated.Load())
	counter("sessions_closed_total", "sessions closed", m.SessionsClosed.Load())
	counter("samples_drawn_total", "measurement shots drawn", m.SamplesDrawn.Load())

	gauge("queue_depth", "jobs waiting in the bounded queue", int64(len(srv.jobs)))
	gauge("reserved_bytes", "process-wide resident bytes reserved in the ledger", srv.ledger.TotalUsed())

	// Per-tenant resident bytes, sorted for a stable scrape.
	names := srv.ledger.Tenants()
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP qcserve_tenant_reserved_bytes resident bytes reserved per tenant\n# TYPE qcserve_tenant_reserved_bytes gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "qcserve_tenant_reserved_bytes{tenant=%q} %d\n", name, srv.ledger.Used(name))
	}

	// Codec traffic and live-session gauges, summed across resident
	// engines (suspended sessions report their last snapshot).
	var live, suspended, codecCalls, gatesRun int64
	srv.mu.Lock()
	sessions := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		snap := s.snap
		if s.sim != nil {
			live++
			snap = s.sim.Snapshot()
		} else if s.ckptPath != "" {
			suspended++
		}
		s.mu.Unlock()
		codecCalls += snap.Stats.CompressCalls + snap.Stats.DecompressCalls
		gatesRun += int64(snap.GatesRun)
	}
	gauge("sessions_resident", "sessions with a live engine in RAM", live)
	gauge("sessions_suspended", "sessions checkpointed on disk", suspended)
	gauge("codec_calls", "cumulative block encode+decode calls across sessions", codecCalls)
	gauge("gates_run", "cumulative gates executed across sessions", gatesRun)
}
