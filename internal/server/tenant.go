package server

import (
	"sync"
	"time"
)

// TenantConfig declares one tenant: the RAM allowance its sessions
// may hold resident (the admission controller prices jobs against it)
// and a token-bucket rate limit on job submissions.
type TenantConfig struct {
	// Name identifies the tenant in requests and metrics.
	Name string
	// MemoryBudget caps the tenant's total reserved resident bytes
	// across all its sessions. 0 = unlimited (bounded only by the
	// server's global budget).
	MemoryBudget int64
	// RatePerSec refills the tenant's submission token bucket. 0 =
	// unlimited (no rate limiting).
	RatePerSec float64
	// Burst is the bucket depth — how many submissions may land
	// back-to-back before the refill rate governs. Defaults to 1 when
	// RatePerSec > 0 and Burst == 0.
	Burst int
}

// tokenBucket is a classic token-bucket rate limiter: capacity Burst,
// refilled continuously at RatePerSec. A zero rate always allows.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	// now is injectable for tests.
	now func() time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	tb := &tokenBucket{rate: rate, burst: float64(burst), now: time.Now}
	tb.tokens = tb.burst
	return tb
}

// allow consumes one token if available.
func (tb *tokenBucket) allow() bool {
	if tb == nil || tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// tenant is the runtime state behind a TenantConfig.
type tenant struct {
	cfg    TenantConfig
	bucket *tokenBucket
}

func newTenant(cfg TenantConfig) *tenant {
	var tb *tokenBucket
	if cfg.RatePerSec > 0 {
		tb = newTokenBucket(cfg.RatePerSec, cfg.Burst)
	}
	return &tenant{cfg: cfg, bucket: tb}
}
