package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qcsim"
)

// Session is one tenant-owned simulator handle. Its engine lives in
// exactly one of three places:
//
//   - nowhere (fresh session: no job admitted yet — costs nothing),
//   - RAM (resident: sim != nil, reserved bytes charged to the ledger),
//   - disk (suspended: checkpointed through the block-streaming Save
//     path, sim closed, reservation released — an idle tenant costs
//     disk, not RAM).
//
// Transitions are transparent to clients: the next job or sample on a
// suspended session reserves, rebuilds, and Loads before executing.
// All session state is guarded by mu; the worker holds mu for the
// whole of a job's execution, so a session never runs two jobs at
// once (the Simulator is not concurrency-safe) — suspend/sample calls
// queue behind the running job.
type Session struct {
	ID     string
	Tenant string
	Qubits int

	seed      int64
	bondDim   int
	blockAmps int

	mu     sync.Mutex
	closed bool
	sim    *qcsim.Simulator
	// route is the admission controller's engine decision, made once
	// at the first admitted job and kept for the session's lifetime.
	route *Admission
	// reserved is the live ledger charge (0 while suspended or never
	// built).
	reserved int64
	// ckptPath points at the on-disk checkpoint: "" until the first
	// suspend, then retained across resume (the last-known-good state,
	// so a crash between resume and the next suspend loses the delta,
	// not the session) until the next successful suspend atomically
	// replaces it or closeSession deletes it.
	ckptPath string
	// snap is the last-known simulator accounting, kept across
	// suspend so SessionInfo stays truthful while the engine is on
	// disk.
	snap     qcsim.Snapshot
	lastUsed time.Time
	suspends int64
	resumes  int64
}

var errSessionClosed = errors.New("server: session closed")

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func newSession(tenant string, req CreateSessionRequest) *Session {
	return &Session{
		ID:        newID(),
		Tenant:    tenant,
		Qubits:    req.Qubits,
		seed:      req.Seed,
		bondDim:   req.BondDim,
		blockAmps: req.BlockAmps,
		lastUsed:  time.Now(),
	}
}

// options materializes the session's engine configuration for its
// admitted route. Only public facade options — the server never
// reaches into internal packages.
func (s *Session) options(spillDir string) []qcsim.Option {
	opts := []qcsim.Option{qcsim.WithSeed(s.seed)}
	if s.blockAmps > 0 {
		opts = append(opts, qcsim.WithBlockAmps(s.blockAmps))
	}
	if s.bondDim > 0 {
		opts = append(opts, qcsim.WithBondDim(s.bondDim))
	}
	switch s.route.Code {
	case CodeAdmitMPS:
		opts = append(opts, qcsim.WithBackend(qcsim.BackendMPS))
	case CodeAdmitSpill:
		opts = append(opts,
			qcsim.WithBackend(qcsim.BackendCompressed),
			qcsim.WithSpill(spillDir, s.route.PricedBytes))
	default:
		opts = append(opts,
			qcsim.WithBackend(qcsim.BackendCompressed),
			qcsim.WithMemoryBudget(s.route.PricedBytes))
	}
	return opts
}

// ensureResident makes the session's engine live, reserving its
// priced bytes and replaying the suspended checkpoint if one exists.
// Caller holds s.mu. A rejection (ledger refusal on resume) is typed:
// the caller maps it to REJECT_BUDGET.
func (s *Session) ensureResident(led *Ledger, spillDir string, m *Metrics) error {
	if s.closed {
		return errSessionClosed
	}
	if s.sim != nil || s.route == nil {
		return nil
	}
	// Admission pre-reserves for a session's first build (s.reserved
	// already set); a resume from suspend must re-charge the ledger —
	// and may be refused if the tenant spent its allowance meanwhile.
	if s.reserved == 0 {
		if err := led.Reserve(s.Tenant, s.route.PricedBytes); err != nil {
			return err
		}
		s.reserved = s.route.PricedBytes
	}
	fail := func(err error) error {
		led.Release(s.Tenant, s.reserved)
		s.reserved = 0
		return err
	}
	sim, err := qcsim.New(s.Qubits, s.options(spillDir)...)
	if err != nil {
		return fail(err)
	}
	if s.ckptPath != "" {
		f, err := os.Open(s.ckptPath)
		if err == nil {
			err = sim.Load(f)
			f.Close()
		}
		if err != nil {
			sim.Close()
			return fail(fmt.Errorf("server: resume %s: %w", s.ID, err))
		}
		// The checkpoint is deliberately kept: it stays the
		// last-known-good state until the next successful suspend
		// replaces it (same path, tmp+rename) or the session closes.
		// Deleting it here would turn a crash right after resume into
		// total state loss.
		s.resumes++
		m.Resumes.Add(1)
	}
	s.sim = sim
	m.Builds.Add(1)
	return nil
}

// suspend checkpoints the engine to dir through the block-streaming
// Save path, closes it, and releases the reservation. Caller holds
// s.mu. Suspending a session that is already on disk (or never built)
// is a successful no-op; an MPS-routed session has no checkpoint
// format and reports CodeErrUnsupported.
func (s *Session) suspend(led *Ledger, dir string, m *Metrics) (Code, error) {
	if s.closed {
		return CodeErrNoSession, errSessionClosed
	}
	if s.sim == nil {
		return CodeOK, nil
	}
	if s.route != nil && s.route.Code == CodeAdmitMPS {
		return CodeErrUnsupported, errors.New("server: mps sessions have no checkpoint format (and cost little RAM); suspend applies to compressed sessions")
	}
	path := filepath.Join(dir, s.ID+".ckpt")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return CodeErrInternal, err
	}
	if err := s.sim.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return CodeErrInternal, fmt.Errorf("server: suspend %s: %w", s.ID, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return CodeErrInternal, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return CodeErrInternal, err
	}
	s.snap = s.sim.Snapshot()
	s.sim.Close()
	s.sim = nil
	led.Release(s.Tenant, s.reserved)
	s.reserved = 0
	s.ckptPath = path
	s.suspends++
	m.Suspends.Add(1)
	return CodeOK, nil
}

// closeSession tears the session down: engine closed (removing spill
// files), reservation released, checkpoint deleted. Idempotent.
// Caller holds s.mu.
func (s *Session) closeSession(led *Ledger, m *Metrics) {
	if s.closed {
		return
	}
	s.closed = true
	if s.sim != nil {
		s.snap = s.sim.Snapshot()
		s.sim.Close()
		s.sim = nil
	}
	if s.reserved > 0 {
		led.Release(s.Tenant, s.reserved)
		s.reserved = 0
	}
	if s.ckptPath != "" {
		os.Remove(s.ckptPath)
		s.ckptPath = ""
	}
	m.SessionsClosed.Add(1)
}

// info snapshots the session for the inspection endpoint.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	inf := SessionInfo{
		Code:          CodeOK,
		SessionID:     s.ID,
		Tenant:        s.Tenant,
		Qubits:        s.Qubits,
		Suspended:     s.sim == nil && s.ckptPath != "",
		ReservedBytes: s.reserved,
		Suspends:      s.suspends,
		Resumes:       s.resumes,
	}
	if s.route != nil {
		inf.Backend = s.route.Backend
	}
	snap := s.snap
	if s.sim != nil {
		snap = s.sim.Snapshot()
	}
	inf.GatesRun = snap.GatesRun
	inf.Fidelity = snap.FidelityLowerBound
	inf.Footprint = snap.Footprint
	return inf
}

// touch refreshes the idle clock. Caller holds s.mu.
func (s *Session) touch() { s.lastUsed = time.Now() }
