package core

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qcsim/internal/quantum"
)

// TestQuickLosslessEqualsReference is the engine's master property: for
// ANY circuit and ANY legal (ranks, blockAmps) geometry, the lossless
// compressed engine and the dense reference produce identical states.
func TestQuickLosslessEqualsReference(t *testing.T) {
	f := func(seed int64, geomSel uint8, gateCount uint8) bool {
		qubits := 7
		geoms := []struct{ ranks, block int }{
			{1, 128}, {1, 16}, {2, 16}, {4, 8}, {8, 4}, {2, 64},
		}
		g := geoms[int(geomSel)%len(geoms)]
		gates := 20 + int(gateCount)%80
		cir := quantum.RandomCircuit(qubits, gates, seed)
		s, err := New(Config{Qubits: qubits, Ranks: g.ranks, BlockAmps: g.block, Seed: 1})
		if err != nil {
			t.Logf("config: %v", err)
			return false
		}
		if err := s.Run(cir); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		ref := quantum.NewState(qubits)
		ref.ApplyCircuit(cir)
		got, err := s.FullState()
		if err != nil {
			t.Logf("state: %v", err)
			return false
		}
		for i := range got {
			if cmplx.Abs(got[i]-ref.Amps[i]) > 1e-11 {
				t.Logf("seed %d geom %+v: amp %d differs by %g", seed, g, i, cmplx.Abs(got[i]-ref.Amps[i]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLossyRespectsLedger checks the fidelity contract under
// random budgets: measured fidelity ≥ ledger bound, state norm ≤ 1+ε.
func TestQuickLossyRespectsLedger(t *testing.T) {
	f := func(seed int64, budgetSel uint8) bool {
		qubits := 7
		budgets := []int64{256, 1024, 4096, 16384}
		cir := quantum.RandomCircuit(qubits, 60, seed)
		s, err := New(Config{
			Qubits: qubits, Ranks: 2, BlockAmps: 16,
			MemoryBudget: budgets[int(budgetSel)%len(budgets)], Seed: 2,
		})
		if err != nil {
			return false
		}
		if err := s.Run(cir); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		ref := quantum.NewState(qubits)
		ref.ApplyCircuit(cir)
		got, err := s.FullState()
		if err != nil {
			return false
		}
		n, err := s.Norm()
		if err != nil || n <= 0 {
			return false
		}
		fid := quantum.FidelityVec(ref.Amps, got) / math.Sqrt(n)
		bound := s.FidelityLowerBound()
		if fid < bound-1e-9 {
			t.Logf("seed %d: fidelity %g below ledger %g", seed, fid, bound)
			return false
		}
		// Truncation only shrinks magnitudes, so the norm cannot grow.
		if n > 1+1e-9 {
			t.Logf("seed %d: norm %g above 1", seed, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCheckpointIdempotent: save/load at a random cut point never
// changes the final state.
func TestQuickCheckpointIdempotent(t *testing.T) {
	f := func(seed int64, cutSel uint8) bool {
		cir := quantum.RandomCircuit(6, 40, seed)
		cut := 1 + int(cutSel)%(len(cir.Gates)-1)
		mk := func() *Simulator {
			s, err := New(Config{Qubits: 6, Ranks: 2, BlockAmps: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		s1 := mk()
		if err := s1.Run(&quantum.Circuit{N: 6, Gates: cir.Gates[:cut]}); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s1.Save(&buf); err != nil {
			return false
		}
		s2 := mk()
		if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Logf("load: %v", err)
			return false
		}
		if err := s2.Run(&quantum.Circuit{N: 6, Gates: cir.Gates[cut:]}); err != nil {
			return false
		}
		sFull := mk()
		if err := sFull.Run(cir); err != nil {
			return false
		}
		a, _ := s2.FullState()
		b, _ := sFull.FullState()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedMeasurementAgreesWithReferenceDistribution measures all
// qubits of random circuits and sanity-checks outcome frequencies
// against reference marginals.
func TestRandomizedMeasurementAgreesWithReferenceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cir := quantum.RandomCircuit(5, 30, 55)
	ref := quantum.NewState(5)
	ref.ApplyCircuit(cir)
	wantP1 := ref.ProbabilityOne(2)

	const trials = 200
	ones := 0
	for i := 0; i < trials; i++ {
		s, err := New(Config{Qubits: 5, Ranks: 2, BlockAmps: 4, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		withMeasure := &quantum.Circuit{N: 5, Gates: append(append([]quantum.Gate(nil), cir.Gates...),
			quantum.Gate{Kind: quantum.KindMeasure, Name: "measure", Target: 2})}
		if err := s.Run(withMeasure); err != nil {
			t.Fatal(err)
		}
		ones += s.Measurements()[0]
	}
	got := float64(ones) / trials
	if math.Abs(got-wantP1) > 0.12 {
		t.Fatalf("P(q2=1) sampled %.3f, reference %.3f", got, wantP1)
	}
}
