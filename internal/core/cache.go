package core

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// blockCache is the compressed block cache of §3.4: an LRU map from
// (gate signature, error level, compressed input block(s)) to the
// compressed output block(s). When the quantum state carries
// redundancy — many blocks sharing the same compressed form — a hit
// replaces the decompress/compute/compress round trip with two copies.
// If the state has no redundancy the cache never hits, so it disables
// itself after a probation window, avoiding the paper's cache-miss
// penalty.
//
// mu makes the cache safe for the rank's worker pool: workers hit it
// concurrently during a fan-out, and even get mutates the LRU list.
// disabled is atomic so the post-shutoff fast path — the common case on
// redundancy-free states — never touches the lock (or even builds a
// key: callers check enabled() first).
type blockCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	lookups  int64
	hits     int64
	disabled atomic.Bool
	// probation is the number of lookups after which a hitless cache
	// shuts off.
	probation int64
}

type cacheEntry struct {
	key  string
	out1 []byte
	out2 []byte // nil for single-block operations
}

func newBlockCache(lines int) *blockCache {
	if lines <= 0 {
		return nil
	}
	return &blockCache{
		cap:       lines,
		ll:        list.New(),
		items:     make(map[string]*list.Element, lines),
		probation: 4 * int64(lines),
	}
}

// enabled reports whether the cache is worth consulting; callers skip
// key construction entirely when it is not.
func (c *blockCache) enabled() bool {
	return c != nil && !c.disabled.Load()
}

// cacheKey builds the lookup key from the gate (or sweep) signature,
// the escalation level, and the raw compressed input blocks (cb2 nil
// for single-block ops). Every variable-length field is length-prefixed:
// signatures and compressed blobs both legitimately contain zero bytes,
// so joining them with separator bytes would let distinct
// (sig, cb1, cb2) triples collide — and a colliding get would silently
// swap in the wrong compressed output block. The level is encoded in
// full, not truncated to one byte.
func cacheKey(sig string, level int, cb1, cb2 []byte) string {
	b := make([]byte, 0, len(sig)+len(cb1)+len(cb2)+4*binary.MaxVarintLen64)
	b = binary.AppendUvarint(b, uint64(len(sig)))
	b = append(b, sig...)
	b = binary.AppendUvarint(b, uint64(level))
	b = binary.AppendUvarint(b, uint64(len(cb1)))
	b = append(b, cb1...)
	b = binary.AppendUvarint(b, uint64(len(cb2)))
	b = append(b, cb2...)
	return string(b)
}

// get returns the cached outputs for key, if present.
func (c *blockCache) get(key string) (out1, out2 []byte, ok bool) {
	if !c.enabled() {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled.Load() {
		return nil, nil, false
	}
	c.lookups++
	if el, hit := c.items[key]; hit {
		c.hits++
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.out1, e.out2, true
	}
	if c.hits == 0 && c.lookups >= c.probation {
		// §3.4: no redundancy in the state — stop paying the miss
		// penalty.
		c.disabled.Store(true)
		c.ll.Init()
		c.items = nil
	}
	return nil, nil, false
}

// put stores the outputs; inputs are copied so later mutation of the
// block store cannot corrupt the cache.
func (c *blockCache) put(key string, out1, out2 []byte) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disabled.Load() {
		return
	}
	if el, hit := c.items[key]; hit {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.out1 = append([]byte(nil), out1...)
		e.out2 = append([]byte(nil), out2...)
		return
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	e := &cacheEntry{key: key, out1: append([]byte(nil), out1...)}
	if out2 != nil {
		e.out2 = append([]byte(nil), out2...)
	}
	c.items[key] = c.ll.PushFront(e)
}
