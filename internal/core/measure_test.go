package core

import (
	"math"
	"math/rand"
	"testing"

	"qcsim/internal/quantum"
)

func TestIntermediateMeasurementGHZ(t *testing.T) {
	// Measuring one GHZ qubit collapses all of them — across every
	// geometry so the measured qubit lands in each index segment.
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				s := newSim(t, 8, g.ranks, g.blockAmps, func(c *Config) { c.Seed = int64(trial) })
				c := quantum.GHZ(8)
				c.Measure(3)
				if err := s.Run(c); err != nil {
					t.Fatal(err)
				}
				outs := s.Measurements()
				if len(outs) != 1 {
					t.Fatalf("measurements = %v", outs)
				}
				for q := 0; q < 8; q++ {
					p, err := s.ProbabilityOne(q)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(p-float64(outs[0])) > 1e-9 {
						t.Fatalf("trial %d: qubit %d P(1)=%v after outcome %d", trial, q, p, outs[0])
					}
				}
				n, _ := s.Norm()
				if math.Abs(n-1) > 1e-9 {
					t.Fatalf("norm after collapse = %v", n)
				}
			}
		})
	}
}

func TestMeasurementQubitInEverySegment(t *testing.T) {
	// 8 qubits, 4 ranks, 16-amp blocks: offset bits 0-3, block bits
	// 4-5, rank bits 6-7. Measure one qubit from each segment.
	for _, q := range []int{1, 4, 7} {
		q := q
		t.Run(map[int]string{1: "offset", 4: "block", 7: "rank"}[q], func(t *testing.T) {
			s := newSim(t, 8, 4, 16, nil)
			c := quantum.NewCircuit(8)
			c.X(q) // deterministic |1⟩
			c.Measure(q)
			if err := s.Run(c); err != nil {
				t.Fatal(err)
			}
			if outs := s.Measurements(); len(outs) != 1 || outs[0] != 1 {
				t.Fatalf("measured %v, want [1]", outs)
			}
		})
	}
}

func TestMeasurementStatisticsCompressed(t *testing.T) {
	ones := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		s := newSim(t, 4, 2, 4, func(c *Config) { c.Seed = int64(i * 7) })
		c := quantum.NewCircuit(4).H(0)
		c.Measure(0)
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		ones += s.Measurements()[0]
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("H|0⟩ measured 1 with frequency %v over %d trials", frac, trials)
	}
}

func TestMeasurementDeterministicBySeed(t *testing.T) {
	run := func() []int {
		s := newSim(t, 6, 2, 8, func(c *Config) { c.Seed = 99 })
		c := quantum.NewCircuit(6)
		for q := 0; q < 6; q++ {
			c.H(q)
		}
		for q := 0; q < 6; q++ {
			c.Measure(q)
		}
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		return s.Measurements()
	}
	a, b := run(), run()
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("outcome counts: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic measurement %d: %v vs %v", i, a, b)
		}
	}
}

func TestMeasureThenContinue(t *testing.T) {
	// Measurement mid-circuit, then more gates (teleportation-style
	// classical feed-forward is the motivating pattern).
	s := newSim(t, 4, 2, 4, func(c *Config) { c.Seed = 5 })
	c := quantum.NewCircuit(4)
	c.H(0).CNOT(0, 1)
	c.Measure(0)
	c.CNOT(1, 2) // spread the collapsed bit
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	out := s.Measurements()[0]
	for _, q := range []int{1, 2} {
		p, _ := s.ProbabilityOne(q)
		if math.Abs(p-float64(out)) > 1e-9 {
			t.Fatalf("qubit %d P(1)=%v after outcome %d", q, p, out)
		}
	}
}

func TestProbabilityOneMatchesReference(t *testing.T) {
	cir := quantum.RandomCircuit(8, 100, 23)
	s := newSim(t, 8, 4, 16, nil)
	if err := s.Run(cir); err != nil {
		t.Fatal(err)
	}
	ref := quantum.NewState(8)
	ref.ApplyCircuit(cir)
	for q := 0; q < 8; q++ {
		got, err := s.ProbabilityOne(q)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.ProbabilityOne(q)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("P(q%d=1) = %v, want %v", q, got, want)
		}
	}
	if _, err := s.ProbabilityOne(8); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
}

func TestNoiseModelTrajectoriesConsistent(t *testing.T) {
	// With noise on, the state must remain a valid pure state (norm 1)
	// and be deterministic for a fixed seed even across ranks.
	run := func(ranks int) []complex128 {
		s := newSim(t, 6, ranks, 8, func(c *Config) { c.Seed = 31 })
		if err := s.SetNoise(&NoiseModel{Prob: 0.3}); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(quantum.GHZ(6)); err != nil {
			t.Fatal(err)
		}
		n, _ := s.Norm()
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("noisy norm = %v", n)
		}
		amps, _ := s.FullState()
		return amps
	}
	a := run(1)
	b := run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise trajectory diverges across rank counts at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNoiseChangesState(t *testing.T) {
	clean := newSim(t, 6, 1, 8, func(c *Config) { c.Seed = 32 })
	if err := clean.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	noisy := newSim(t, 6, 1, 8, func(c *Config) { c.Seed = 32 })
	if err := noisy.SetNoise(&NoiseModel{Prob: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := noisy.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	a, _ := clean.FullState()
	b, _ := noisy.FullState()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("50% depolarizing noise left the state untouched")
	}
}

// TestNoiseProbZeroMatchesNilModel: a Prob == 0 channel can never fire,
// so installing it must be indistinguishable from no model at all —
// same amplitudes, same measurement outcomes, same codec traffic, and
// (the part the old code got wrong on the gate-at-a-time path) zero
// draws from the per-rank noise stream. Phase 2 proves the streams
// stayed aligned: after upgrading both sims to a live channel, the
// injected Pauli trajectories must still be bit-identical — had the
// Prob == 0 phase consumed variates, they would diverge.
func TestNoiseProbZeroMatchesNilModel(t *testing.T) {
	mk := func(m *NoiseModel) *Simulator {
		// DisableSweeps forces every gate down the gate-at-a-time path
		// where the per-gate noise allreduce and draws used to happen.
		s := newSim(t, 6, 2, 8, func(c *Config) { c.Seed = 33; c.DisableSweeps = true })
		if err := s.SetNoise(m); err != nil {
			t.Fatal(err)
		}
		return s
	}
	nilSim, zeroSim := mk(nil), mk(&NoiseModel{Prob: 0})
	cir := quantum.QFT(6, 9)
	cir.Measure(0).Measure(3)
	for _, s := range []*Simulator{nilSim, zeroSim} {
		if err := s.Run(cir); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := nilSim.Measurements(), zeroSim.Measurements(); len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("measurements diverge: %v vs %v", a, b)
	}
	a, _ := nilSim.FullState()
	b, _ := zeroSim.FullState()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Prob=0 noise changed the state at %d: %v vs %v", i, a[i], b[i])
		}
	}
	sa, sb := nilSim.Stats(), zeroSim.Stats()
	if sa.CompressCalls != sb.CompressCalls || sa.DecompressCalls != sb.DecompressCalls || sa.Gates != sb.Gates {
		t.Fatalf("Prob=0 noise changed codec traffic: %+v vs %+v", sa, sb)
	}

	// Phase 2: live noise must pick up from identical stream positions.
	for _, s := range []*Simulator{nilSim, zeroSim} {
		if err := s.SetNoise(&NoiseModel{Prob: 0.7}); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(quantum.GHZ(6)); err != nil {
			t.Fatal(err)
		}
	}
	a, _ = nilSim.FullState()
	b, _ = zeroSim.FullState()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise streams desynced at %d: the Prob=0 phase consumed rng draws", i)
		}
	}
}

func TestNoiseValidation(t *testing.T) {
	s := newSim(t, 4, 1, 4, nil)
	if err := s.SetNoise(&NoiseModel{Prob: 1.5}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := s.SetNoise(nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssertions(t *testing.T) {
	s := newSim(t, 4, 2, 4, nil)
	c := quantum.NewCircuit(4)
	c.X(0)            // q0 classical |1⟩
	c.H(1)            // q1 superposition
	c.H(2).CNOT(2, 3) // q2,q3 entangled
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if err := s.AssertClassical(0, 1, 1e-9); err != nil {
		t.Errorf("classical assertion: %v", err)
	}
	if err := s.AssertClassical(0, 0, 1e-9); err == nil {
		t.Error("wrong classical value accepted")
	}
	if err := s.AssertSuperposition(1, 1e-9); err != nil {
		t.Errorf("superposition assertion: %v", err)
	}
	if err := s.AssertSuperposition(0, 0.1); err == nil {
		t.Error("classical qubit accepted as superposition")
	}
	if err := s.AssertProduct(0, 1, 1e-6); err != nil {
		t.Errorf("product assertion on unentangled pair: %v", err)
	}
	if err := s.AssertProduct(2, 3, 0.1); err == nil {
		t.Error("bell pair accepted as product state")
	}
	if err := s.AssertProduct(1, 1, 0.1); err == nil {
		t.Error("duplicate qubit accepted")
	}
}

func TestSampleFromCompressedState(t *testing.T) {
	s := newSim(t, 4, 2, 4, nil)
	if err := s.Run(quantum.GHZ(4)); err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(77)
	samples, err := s.Sample(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range samples {
		if v != 0 && v != 15 {
			t.Fatalf("GHZ sample %d impossible", v)
		}
	}
}

// newTestRand returns a deterministic rand source for sampling tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
