package core

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Streaming compressed-domain sampling: shot-based readout that never
// materializes the 2^n-amplitude vector. A Sampler holds a two-level
// CDF over the compressed state — per-block probability masses folded
// into a global block prefix sum — built in one worker-pool pass over
// each rank's blocks. A shot binary-searches the block prefix for its
// containing block, decompresses only that block (through a small LRU
// so clustered shots amortize codec work; draws are resolved in sorted
// order, so each block decompresses at most once per call), and
// resolves the offset by an intra-block prefix scan: O(blocks +
// shots·(log shots + log blocks + blockAmps)) instead of the old
// FullState path's O(shots·2^n), with no cap on the register width.
//
// Draws are normalized by the CDF's true total mass. Under lossy
// codecs the state's norm drifts below 1; the old linear scan compared
// raw uniform draws against the un-normalized running mass, so any
// draw landing past the accumulated total silently fell through to
// basis state 0 and biased every lossy-mode histogram toward |0...0⟩.
// Scaling each draw into [0, totalMass) makes that fall-through
// structurally impossible.

// ErrSamplerStale reports a Sampler whose CDF no longer describes the
// simulator's state: gates ran, a checkpoint loaded, or the state was
// reset after NewSampler. Build a fresh Sampler.
var ErrSamplerStale = errors.New("core: sampler stale: state mutated since NewSampler")

// Sampler draws full-register outcomes directly from the compressed
// state. Build with NewSampler; a Sampler is bound to the state at
// build time and reports ErrSamplerStale once the state mutates. Like
// the Simulator itself, a Sampler is not safe for concurrent use.
type Sampler struct {
	s       *Simulator
	version uint64
	// cum[g] is the total probability mass of global blocks 0..g, folded
	// sequentially in (rank, block) order — the same block-then-offset
	// accumulation order as a linear scan of the full vector, so for the
	// same seed the selected outcomes match the old path.
	cum   []float64
	total float64
	ba    int
	cache *decodedLRU
	// memoMax is the blob-size cutoff below which blocks are treated as
	// content-addressed (identical bytes ⇒ identical amplitudes), both
	// while building the CDF and in the shot-time decoded-block LRU.
	memoMax int
}

// NewSampler builds the two-level CDF in one worker-pool pass over each
// rank's blocks and returns a Sampler holding it. cacheBlocks bounds
// the LRU of decompressed blocks kept hot during Sample (minimum 1, so
// repeated shots into one block always amortize; ~16·BlockAmps bytes
// per line). The pass charges nothing to the rank stats — sampling is
// an inspection path and must not skew the Table 2 time breakdown.
func (s *Simulator) NewSampler(cacheBlocks int) (*Sampler, error) {
	nb := s.blocksPerRank()
	ba := s.blockAmps()
	masses := make([]float64, len(s.ranks)*nb)
	// Redundant states — the regime the paper's compression targets —
	// store many byte-identical blobs (a basis state is one distinct
	// block plus copies of the zero block; a uniform superposition is
	// one blob repeated everywhere). Mass is a pure function of blob
	// content, so compact blobs are decoded once and memoized by their
	// bytes, never by a hash that could collide. The size cutoff keeps
	// the memo to blobs that compressed at least 4x below the 16·ba raw
	// block size — redundancy strong enough to plausibly repeat; dense
	// unique blobs skip the key copy and map probe entirely.
	memo := struct {
		sync.Mutex
		m map[string]float64
	}{m: make(map[string]float64)}
	memoMaxBlob := 16 * ba / 4
	for _, rs := range s.ranks {
		base := rs.id * nb
		// The CDF pass walks every block in ascending order — announce
		// it so a tiered store can stage spilled blobs ahead of the
		// workers.
		s.hintBlocks(rs, 0, 0)
		err := s.forBlocks(rs, func(w *workerState, b int) error {
			blob, err := rs.store.Get(b)
			if err != nil {
				return err
			}
			if len(blob) <= memoMaxBlob {
				memo.Lock()
				m, ok := memo.m[string(blob)]
				memo.Unlock()
				if ok {
					masses[base+b] = m
					return nil
				}
			}
			if err := s.decodeBlob(blob, w.x); err != nil {
				return err
			}
			var m float64
			for o := 0; o < ba; o++ {
				re, im := w.x[2*o], w.x[2*o+1]
				m += re*re + im*im
			}
			masses[base+b] = m
			if len(blob) <= memoMaxBlob {
				memo.Lock()
				memo.m[string(blob)] = m
				memo.Unlock()
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: sampler: rank %d: %w", rs.id, err)
		}
	}
	var total float64
	for i, m := range masses {
		total += m
		masses[i] = total
	}
	if !(total > 0) {
		return nil, ErrZeroMass
	}
	if cacheBlocks < 1 {
		cacheBlocks = 1
	}
	return &Sampler{
		s:       s,
		version: s.version,
		cum:     masses,
		total:   total,
		ba:      ba,
		cache:   newDecodedLRU(cacheBlocks),
		memoMax: memoMaxBlob,
	}, nil
}

// TotalMass returns the CDF's normalization constant Σ|aᵢ|² — 1 up to
// floating-point rounding for lossless states, below 1 once lossy
// compression has shed mass.
func (sp *Sampler) TotalMass() float64 { return sp.total }

// Sample draws `shots` full-register outcomes without collapsing the
// state. A nil rng falls back to the simulator's dedicated seeded
// sampling stream (separate from measurement collapse, so sampling
// never perturbs later outcomes). Each draw is scaled by TotalMass, so
// outcome frequencies follow the state's normalized distribution even
// when lossy compression has shed mass.
func (sp *Sampler) Sample(rng *rand.Rand, shots int) ([]uint64, error) {
	if sp.version != sp.s.version {
		return nil, ErrSamplerStale
	}
	if shots < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeShots, shots)
	}
	if rng == nil {
		rng = sp.s.sampleRng
	}
	nb := sp.s.blocksPerRank()
	// Draw every uniform first, in shot order (the stream contract),
	// then resolve in ascending-u order: shots landing in one block
	// become adjacent, so each block is decompressed at most once per
	// call no matter how the shots scatter — without this, dense states
	// with more blocks than LRU lines would pay one codec round trip
	// per shot. Resolution is read-only and per-shot independent, so
	// the reordering changes no outcome.
	us := make([]float64, shots)
	for k := range us {
		us[k] = rng.Float64() * sp.total
	}
	order := make([]int, shots)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return us[order[i]] < us[order[j]] })
	// Locate every sorted draw's containing block up front: the
	// resulting ascending visit sequence doubles as the prefetch
	// oracle for a tiered store (disk reads overlap the decode work of
	// earlier blocks), and the shot loop reuses it instead of
	// re-searching.
	gbs := make([]int, shots)
	for i, k := range order {
		u := us[k]
		gb := sort.Search(len(sp.cum), func(i int) bool { return u < sp.cum[i] })
		if gb == len(sp.cum) {
			// fl(r·total) can round up onto the final boundary; clamp to
			// the last block carrying mass.
			for gb = len(sp.cum) - 1; gb > 0 && blockMass(sp.cum, gb) == 0; gb-- {
			}
		}
		gbs[i] = gb
	}
	sp.hintDrawOrder(gbs)
	out := make([]uint64, shots)
	// Sorted resolution makes consecutive shots hit the same block most
	// of the time; the one-entry memo skips the LRU key construction
	// (and its blob copy) for those.
	lastGB := -1
	var amps []float64
	for i, k := range order {
		u := us[k]
		gb := gbs[i]
		if gb != lastGB {
			var err error
			if amps, err = sp.block(gb); err != nil {
				return nil, err
			}
			lastGB = gb
		}
		acc := 0.0
		if gb > 0 {
			acc = sp.cum[gb-1]
		}
		idx, lastNZ := -1, -1
		for o := 0; o < sp.ba; o++ {
			re, im := amps[2*o], amps[2*o+1]
			m := re*re + im*im
			if m != 0 {
				lastNZ = o
			}
			acc += m
			if u < acc {
				idx = o
				break
			}
		}
		if idx < 0 {
			// The intra-block fold re-accumulates from the block boundary,
			// so its endpoint can land an ulp short of cum[gb]; resolve
			// against the last amplitude that carries mass, never an
			// arbitrary basis state.
			idx = lastNZ
			if idx < 0 {
				idx = sp.ba - 1
			}
		}
		out[k] = sp.s.compose(gb/nb, gb%nb, idx)
	}
	return out, nil
}

// hintDrawOrder announces each rank's block visit sequence for one
// Sample call to tiered stores, deduplicating consecutive repeats
// (draws are resolved in sorted order, so equal blocks are adjacent
// and each rank's sequence is ascending).
func (sp *Sampler) hintDrawOrder(gbs []int) {
	anyWant := false
	for _, rs := range sp.s.ranks {
		if rs.store.WantHints() {
			anyWant = true
			break
		}
	}
	if !anyWant {
		return
	}
	nb := sp.s.blocksPerRank()
	orders := make([][]int, len(sp.s.ranks))
	for _, gb := range gbs {
		r, b := gb/nb, gb%nb
		if n := len(orders[r]); n > 0 && orders[r][n-1] == b {
			continue
		}
		orders[r] = append(orders[r], b)
	}
	for r, rs := range sp.s.ranks {
		if rs.store.WantHints() && len(orders[r]) > 0 {
			rs.store.PrefetchHint(orders[r])
		}
	}
}

func blockMass(cum []float64, g int) float64 {
	if g == 0 {
		return cum[0]
	}
	return cum[g] - cum[g-1]
}

// block returns global block gb decompressed, through the LRU. Compact
// blobs cache by content, so a redundant state (many byte-identical
// compressed blocks) occupies one line no matter which blocks the shots
// land in; dense blobs cache by block index, skipping the content hash.
func (sp *Sampler) block(gb int) ([]float64, error) {
	nb := sp.s.blocksPerRank()
	rs := sp.s.ranks[gb/nb]
	blob, err := rs.store.Get(gb % nb)
	if err != nil {
		return nil, fmt.Errorf("core: sampler: rank %d block %d: %w", rs.id, gb%nb, err)
	}
	key := decodedKey(gb, blob, sp.memoMax)
	if amps, ok := sp.cache.get(key); ok {
		return amps, nil
	}
	amps := make([]float64, 2*sp.ba)
	if err := sp.s.decodeBlob(blob, amps); err != nil {
		return nil, fmt.Errorf("core: sampler: rank %d block %d: %w", rs.id, gb%nb, err)
	}
	sp.cache.put(key, amps)
	return amps, nil
}

// decodedKey builds the LRU key: a "c"-prefixed copy of the blob bytes
// for compact (plausibly repeated) blobs, an "i"-prefixed block index
// otherwise. The prefix byte keeps the two namespaces disjoint.
func decodedKey(gb int, blob []byte, memoMax int) string {
	if len(blob) <= memoMax {
		return "c" + string(blob)
	}
	return fmt.Sprintf("i%d", gb)
}

// decodedLRU is a tiny LRU of decompressed blocks. Single-goroutine by
// contract (the Sampler is not safe for concurrent use), so no lock.
type decodedLRU struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type decodedEntry struct {
	key  string
	amps []float64
}

func newDecodedLRU(capacity int) *decodedLRU {
	return &decodedLRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *decodedLRU) get(key string) ([]float64, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*decodedEntry).amps, true
	}
	return nil, false
}

func (c *decodedLRU) put(key string, amps []float64) {
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*decodedEntry).key)
	}
	c.items[key] = c.ll.PushFront(&decodedEntry{key: key, amps: amps})
}
