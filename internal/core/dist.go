package core

import (
	"fmt"

	"qcsim/internal/blockstore"
)

// Distributed-run state transfer. When a run executes over a process
// transport (Config.Launcher backed by qcsim/internal/mpi/tcpnet), the
// coordinator process holds the authoritative Simulator and each worker
// process holds a same-configuration Simulator of which exactly one
// rank is "live". The protocol is:
//
//  1. coordinator: ExportRankBlocks(r) for every rank → ship to workers
//  2. worker r:    InstallRank(r, blocks, level) → RunControlled →
//                  ExportDelta(r) → ship back
//  3. coordinator: ApplyDeltas(all deltas)
//
// InstallRank zeroes the worker rank's stats, so ExportDelta is a pure
// run delta; ApplyDeltas merges those deltas exactly the way the
// in-process transport would have accumulated them — counters add,
// gauges resample, high-water marks max, and the per-gate error levels
// fold into the Eq. 11 ledger after an elementwise max across ranks,
// mirroring the in-process CAS-max. A run shipped this way is
// bit-identical to the same run on the goroutine transport: state,
// ledger, measurements, and the deterministic Stats counters.

// RankDelta is what one worker rank sends back after a distributed
// run: the rank's post-run blocks and error level, the run's stats
// delta, and the rank's view of the shared per-run accounting.
type RankDelta struct {
	// Rank is the SPMD rank this delta describes.
	Rank int
	// Level is the rank's §3.7 error level after the run.
	Level int
	// OverBudget is the rank's budget latch after the run.
	OverBudget bool
	// Blocks are the rank's compressed blocks after the run, in block
	// order (self-describing: each carries its codec tag).
	Blocks [][]byte
	// Stats is the run's accounting delta (the rank's stats were
	// zeroed at InstallRank).
	Stats Stats
	// GateLevels is the per-gate max error level this rank used
	// (s.gateLevel after the run); the coordinator maxes the arrays
	// elementwise across ranks before folding the ledger.
	GateLevels []uint32
	// Measurements are the outcomes recorded this run. Only rank 0
	// records outcomes (it draws and broadcasts them), so the
	// coordinator appends rank 0's list.
	Measurements []int
	// Executed is the number of gates rank 0 completed (the run's
	// post-fusion prefix length); meaningful on rank 0's delta.
	Executed int
	// BytesMoved is the cross-rank traffic this rank's comm sent.
	BytesMoved int64
}

// ExportRankBlocks returns a copy of one rank's compressed blocks (in
// block order) and its current error level — the state a distributed
// worker must start from. It never decompresses anything.
func (s *Simulator) ExportRankBlocks(r int) (blocks [][]byte, level int, err error) {
	if r < 0 || r >= len(s.ranks) {
		return nil, 0, fmt.Errorf("core: rank %d out of range", r)
	}
	rs := s.ranks[r]
	nb := s.blocksPerRank()
	blocks = make([][]byte, nb)
	for b := 0; b < nb; b++ {
		blob, err := rs.store.Peek(b)
		if err != nil {
			return nil, 0, err
		}
		blocks[b] = append([]byte(nil), blob...)
	}
	return blocks, rs.level, nil
}

// InstallRank overwrites one rank's state with shipped blocks and
// error level, and zeroes the rank's stats so the following run
// accumulates a pure delta for ExportDelta. The blocks are copied in.
func (s *Simulator) InstallRank(r int, blocks [][]byte, level int) error {
	if r < 0 || r >= len(s.ranks) {
		return fmt.Errorf("core: rank %d out of range", r)
	}
	if len(blocks) != s.blocksPerRank() {
		return fmt.Errorf("core: rank %d: %d blocks shipped, geometry has %d", r, len(blocks), s.blocksPerRank())
	}
	if level < 0 || level > len(s.cfg.ErrorLevels) {
		return fmt.Errorf("core: rank %d: error level %d out of range", r, level)
	}
	rs := s.ranks[r]
	for b, blob := range blocks {
		if len(blob) == 0 {
			return fmt.Errorf("core: rank %d: empty block %d", r, b)
		}
		if err := rs.store.Put(b, append([]byte(nil), blob...)); err != nil {
			return err
		}
	}
	rs.level = level
	rs.overBudget = false
	rs.stats = Stats{}
	for _, w := range rs.workers {
		w.stats = Stats{}
	}
	rs.storeAcc = blockstore.Stats{}
	rs.storeBase = rs.store.Stats()
	s.syncStoreStats(rs)
	rs.stats.MaxFootprint = rs.stats.CurrentFootprint
	rs.stats.MaxResident = rs.stats.ResidentFootprint
	s.version++
	return nil
}

// ExportDelta gathers what this process's rank r changed during the
// preceding run: blocks, level, and the stats delta accumulated since
// InstallRank, plus the rank's view of the shared per-run accounting
// (gate levels, measurements, traffic).
func (s *Simulator) ExportDelta(r int) (*RankDelta, error) {
	if r < 0 || r >= len(s.ranks) {
		return nil, fmt.Errorf("core: rank %d out of range", r)
	}
	rs := s.ranks[r]
	s.syncStoreStats(rs)
	nb := s.blocksPerRank()
	blocks := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		blob, err := rs.store.Peek(b)
		if err != nil {
			return nil, err
		}
		blocks[b] = append([]byte(nil), blob...)
	}
	d := &RankDelta{
		Rank:       r,
		Level:      rs.level,
		OverBudget: rs.overBudget,
		Blocks:     blocks,
		Stats:      rs.stats,
		GateLevels: append([]uint32(nil), s.gateLevel...),
		Executed:   s.gatesRun,
		BytesMoved: s.bytesMoved,
	}
	if r == 0 {
		d.Measurements = append([]int(nil), s.measurements...)
	}
	return d, nil
}

// ApplyDeltas merges one delta per rank (any order, each rank exactly
// once) into the coordinator's state, exactly as the in-process
// transport would have accumulated the same run: blocks and levels
// replace, stats counters add, footprint gauges resample with their
// high-water marks maxed, the per-gate levels max elementwise across
// ranks and fold into the Eq. 11 ledger, and rank 0's measurements and
// gate count append. On error the state may hold a partial import;
// callers treat that as a failed run and keep their own pre-export
// copy authoritative.
func (s *Simulator) ApplyDeltas(deltas []*RankDelta) error {
	if len(deltas) != len(s.ranks) {
		return fmt.Errorf("core: %d deltas for %d ranks", len(deltas), len(s.ranks))
	}
	byRank := make([]*RankDelta, len(s.ranks))
	for _, d := range deltas {
		if d == nil {
			return fmt.Errorf("core: nil rank delta")
		}
		if d.Rank < 0 || d.Rank >= len(s.ranks) {
			return fmt.Errorf("core: delta rank %d out of range", d.Rank)
		}
		if byRank[d.Rank] != nil {
			return fmt.Errorf("core: duplicate delta for rank %d", d.Rank)
		}
		byRank[d.Rank] = d
	}
	var maxLevels []uint32
	for _, d := range byRank {
		if len(d.Blocks) != s.blocksPerRank() {
			return fmt.Errorf("core: rank %d delta has %d blocks, geometry has %d", d.Rank, len(d.Blocks), s.blocksPerRank())
		}
		if maxLevels == nil {
			maxLevels = append([]uint32(nil), d.GateLevels...)
		} else {
			if len(d.GateLevels) != len(maxLevels) {
				return fmt.Errorf("core: rank %d delta has %d gate levels, rank 0 has %d", d.Rank, len(d.GateLevels), len(maxLevels))
			}
			for i, lvl := range d.GateLevels {
				if lvl > maxLevels[i] {
					maxLevels[i] = lvl
				}
			}
		}
	}
	s.version++
	for _, d := range byRank {
		rs := s.ranks[d.Rank]
		for b, blob := range d.Blocks {
			if err := rs.store.Put(b, append([]byte(nil), blob...)); err != nil {
				return err
			}
		}
		rs.level = d.Level
		// The budget latch persists across runs until Reset, like the
		// in-process transport's.
		rs.overBudget = rs.overBudget || d.OverBudget
		mergeRunDelta(&rs.stats, d.Stats)
		// Fold the worker's spill counters (a pure run delta — its
		// store was re-baselined at InstallRank) into the baseline
		// accumulator, so syncStoreStats reports worker I/O on top of
		// the coordinator store's own history.
		rs.storeAcc = rs.storeAcc.Plus(blockstore.Stats{
			SpillWrites:   d.Stats.SpillWrites,
			SpillReads:    d.Stats.SpillReads,
			PrefetchReads: d.Stats.PrefetchReads,
			PrefetchHits:  d.Stats.PrefetchHits,
		})
		s.syncStoreStats(rs)
		if rs.stats.CurrentFootprint > rs.stats.MaxFootprint {
			rs.stats.MaxFootprint = rs.stats.CurrentFootprint
		}
	}
	for _, lvl := range maxLevels {
		if lvl > 0 {
			s.ledger *= 1 - s.cfg.ErrorLevels[lvl-1]
		}
	}
	d0 := byRank[0]
	s.measurements = append(s.measurements, d0.Measurements...)
	s.gatesRun += d0.Executed
	for _, d := range byRank {
		s.bytesMoved += d.BytesMoved
	}
	return nil
}

// mergeRunDelta folds a worker rank's run delta into the coordinator's
// per-rank stats: durations and counters add, high-water marks max,
// and the footprint/spill gauges are left to the following
// syncStoreStats resample (the coordinator's store now holds the
// rank's blocks).
func mergeRunDelta(s *Stats, d Stats) {
	s.CompressTime += d.CompressTime
	s.DecompressTime += d.DecompressTime
	s.ComputeTime += d.ComputeTime
	s.CommTime += d.CommTime
	s.Gates += d.Gates
	s.CacheLookups += d.CacheLookups
	s.CacheHits += d.CacheHits
	s.CompressCalls += d.CompressCalls
	s.DecompressCalls += d.DecompressCalls
	s.Sweeps += d.Sweeps
	s.SweepGates += d.SweepGates
	s.CodecPassesSaved += d.CodecPassesSaved
	s.CodecPassesShared += d.CodecPassesShared
	if d.VariantCount > s.VariantCount {
		s.VariantCount = d.VariantCount
	}
	if d.MaxFootprint > s.MaxFootprint {
		s.MaxFootprint = d.MaxFootprint
	}
	if d.MaxResident > s.MaxResident {
		s.MaxResident = d.MaxResident
	}
	if d.FinalLevel > s.FinalLevel {
		s.FinalLevel = d.FinalLevel
	}
	s.Escalations += d.Escalations
}
