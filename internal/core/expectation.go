package core

import "fmt"

// Pauli-Z expectation values over the compressed state. These are the
// observables variational workloads (QAOA, VQE) read out: ⟨Z_q⟩ and
// two-point correlators ⟨Z_a Z_b⟩, from which MAXCUT energies follow
// without sampling.

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) - P(q=1).
func (s *Simulator) ExpectationZ(q int) (float64, error) {
	p1, err := s.ProbabilityOne(q)
	if err != nil {
		return 0, err
	}
	return 1 - 2*p1, nil
}

// ExpectationZZ returns ⟨Z_a Z_b⟩: +1 weight where the bits agree, -1
// where they differ.
func (s *Simulator) ExpectationZZ(a, b int) (float64, error) {
	joint, err := s.jointDistribution(a, b)
	if err != nil {
		return 0, err
	}
	return joint[0] + joint[3] - joint[1] - joint[2], nil
}

// CutEdge is an undirected graph edge for MaxCutEnergy.
type CutEdge struct{ U, V int }

// MaxCutEnergy returns the expected cut value Σ_edges (1 - ⟨Z_u Z_v⟩)/2
// of the current state — the QAOA objective.
func (s *Simulator) MaxCutEnergy(edges []CutEdge) (float64, error) {
	var sum float64
	for _, e := range edges {
		if e.U == e.V {
			return 0, fmt.Errorf("core: self-loop edge (%d,%d)", e.U, e.V)
		}
		zz, err := s.ExpectationZZ(e.U, e.V)
		if err != nil {
			return 0, err
		}
		sum += (1 - zz) / 2
	}
	return sum, nil
}
