package core

import "fmt"

// Pauli-Z expectation values over the compressed state. These are the
// observables variational workloads (QAOA, VQE) read out: ⟨Z_q⟩ and
// two-point correlators ⟨Z_a Z_b⟩, from which MAXCUT energies follow
// without sampling.

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) - P(q=1).
func (s *Simulator) ExpectationZ(q int) (float64, error) {
	p1, err := s.ProbabilityOne(q)
	if err != nil {
		return 0, err
	}
	return 1 - 2*p1, nil
}

// ExpectationZZ returns ⟨Z_a Z_b⟩: +1 weight where the bits agree, -1
// where they differ.
func (s *Simulator) ExpectationZZ(a, b int) (float64, error) {
	joint, err := s.jointDistribution(a, b)
	if err != nil {
		return 0, err
	}
	return joint[0] + joint[3] - joint[1] - joint[2], nil
}

// ZTerm is one weighted single-qubit Pauli-Z term W·Z_Q of a diagonal
// observable.
type ZTerm struct {
	Q int
	W float64
}

// ZZTerm is one weighted two-qubit correlator W·Z_A·Z_B.
type ZZTerm struct {
	A, B int
	W    float64
}

// DiagonalExpectation evaluates Σ W·⟨Z_Q⟩ + Σ W·⟨Z_A Z_B⟩ in a single
// decode pass over the compressed blocks, instead of one pass per term
// the way chained ExpectationZ/ExpectationZZ calls would. Gradient
// evaluation reads one energy per variant of a parameter-shift batch,
// so the readout must not itself cost O(terms) codec sweeps.
//
// Like ExpectationZZ, the value is computed against the stored state
// as-is (no renormalization of lossy norm drift).
func (s *Simulator) DiagonalExpectation(zs []ZTerm, zzs []ZZTerm) (float64, error) {
	for _, t := range zs {
		if t.Q < 0 || t.Q >= s.cfg.Qubits {
			return 0, fmt.Errorf("core: invalid qubit %d in Z term", t.Q)
		}
	}
	for _, t := range zzs {
		if t.A < 0 || t.A >= s.cfg.Qubits || t.B < 0 || t.B >= s.cfg.Qubits || t.A == t.B {
			return 0, fmt.Errorf("core: invalid qubit pair (%d, %d) in ZZ term", t.A, t.B)
		}
	}
	var acc float64
	scratch := make([]float64, 2*s.blockAmps())
	for r, rs := range s.ranks {
		for blk := 0; blk < s.blocksPerRank(); blk++ {
			blob, err := rs.store.Peek(blk)
			if err != nil {
				return 0, err
			}
			if err := s.decodeBlob(blob, scratch); err != nil {
				return 0, err
			}
			base := s.compose(r, blk, 0)
			for o := 0; o < s.blockAmps(); o++ {
				re, im := scratch[2*o], scratch[2*o+1]
				p := re*re + im*im
				if p == 0 {
					continue
				}
				idx := base + uint64(o)
				var w float64
				for _, t := range zs {
					if idx>>uint(t.Q)&1 == 0 {
						w += t.W
					} else {
						w -= t.W
					}
				}
				for _, t := range zzs {
					if (idx>>uint(t.A)^idx>>uint(t.B))&1 == 0 {
						w += t.W
					} else {
						w -= t.W
					}
				}
				acc += p * w
			}
		}
	}
	return acc, nil
}

// CutEdge is an undirected graph edge for MaxCutEnergy.
type CutEdge struct{ U, V int }

// MaxCutEnergy returns the expected cut value Σ_edges (1 - ⟨Z_u Z_v⟩)/2
// of the current state — the QAOA objective.
func (s *Simulator) MaxCutEnergy(edges []CutEdge) (float64, error) {
	var sum float64
	for _, e := range edges {
		if e.U == e.V {
			return 0, fmt.Errorf("core: self-loop edge (%d,%d)", e.U, e.V)
		}
		zz, err := s.ExpectationZZ(e.U, e.V)
		if err != nil {
			return 0, err
		}
		sum += (1 - zz) / 2
	}
	return sum, nil
}
