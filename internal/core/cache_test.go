package core

import (
	"testing"

	"qcsim/internal/quantum"
)

func TestCacheHitsOnRedundantState(t *testing.T) {
	// A product state split over many identical blocks: applying the
	// same gate to the same compressed content should hit after the
	// first block (§3.4: amplitudes share values in structured
	// circuits).
	s := newSim(t, 10, 1, 16, func(c *Config) { c.CacheLines = 64 })
	c := quantum.NewCircuit(10)
	for q := 0; q < 4; q++ { // offset-segment targets only
		c.H(q)
	}
	for q := 0; q < 4; q++ {
		c.X(q)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheLookups == 0 {
		t.Fatal("cache never consulted")
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits on a fully redundant state")
	}
	// Hits must not change the outcome.
	ref := quantum.NewState(10)
	ref.ApplyCircuit(c)
	got, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != ref.Amps[i] {
			t.Fatalf("cache corrupted amplitude %d: %v vs %v", i, got[i], ref.Amps[i])
		}
	}
}

func TestCacheCorrectnessOnFullWorkload(t *testing.T) {
	// Same circuit with and without cache must agree bit-for-bit.
	c := quantum.Grover(5, 11, 2)
	s1 := newSim(t, c.N, 2, 8, func(cfg *Config) { cfg.CacheLines = 64 })
	s2 := newSim(t, c.N, 2, 8, nil)
	if err := s1.Run(c); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(c); err != nil {
		t.Fatal(err)
	}
	a1, _ := s1.FullState()
	a2, _ := s2.FullState()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("cache changed amplitude %d", i)
		}
	}
}

func TestCacheSelfDisables(t *testing.T) {
	// A supremacy circuit has no block redundancy; the cache must shut
	// off after its probation window instead of burning lookups
	// forever (§3.4's miss-penalty rule).
	cir := quantum.Supremacy(3, 3, 12, 9)
	s := newSim(t, cir.N, 1, 8, func(cfg *Config) { cfg.CacheLines = 4 })
	if err := s.Run(cir); err != nil {
		t.Fatal(err)
	}
	for _, rs := range s.ranks {
		if rs.cache.enabled() && rs.cache.hits == 0 && rs.cache.lookups > rs.cache.probation {
			t.Fatalf("hitless cache still enabled after %d lookups", rs.cache.lookups)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newBlockCache(2)
	c.put(cacheKey("a", 0, []byte{1}, nil), []byte{10}, nil)
	c.put(cacheKey("b", 0, []byte{2}, nil), []byte{20}, nil)
	// Touch "a" so "b" is the LRU victim.
	if _, _, ok := c.get(cacheKey("a", 0, []byte{1}, nil)); !ok {
		t.Fatal("a missing")
	}
	c.put(cacheKey("c", 0, []byte{3}, nil), []byte{30}, nil)
	if _, _, ok := c.get(cacheKey("b", 0, []byte{2}, nil)); ok {
		t.Fatal("b should have been evicted")
	}
	if _, _, ok := c.get(cacheKey("a", 0, []byte{1}, nil)); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if out, _, ok := c.get(cacheKey("c", 0, []byte{3}, nil)); !ok || out[0] != 30 {
		t.Fatal("c missing or wrong")
	}
}

func TestCacheKeyIncludesLevel(t *testing.T) {
	k0 := cacheKey("sig", 0, []byte{1, 2}, nil)
	k1 := cacheKey("sig", 1, []byte{1, 2}, nil)
	if k0 == k1 {
		t.Fatal("cache key ignores error level")
	}
}

// TestCacheKeyNoCollisions is the regression test for the separator-byte
// collision: the old key joined sig/level/cb1/cb2 with single 0x00
// separators, but signatures and compressed blobs legitimately contain
// zero bytes, so distinct inputs could produce the same key — and a
// colliding get would silently return the wrong compressed output
// block. Every pair below collided (or, for the level rows, truncated
// to the same byte) under the old scheme; the length-prefixed key must
// keep them distinct.
func TestCacheKeyNoCollisions(t *testing.T) {
	type in struct {
		sig      string
		level    int
		cb1, cb2 []byte
	}
	pairs := []struct {
		name string
		a, b in
	}{
		{
			// Zero byte migrating across the cb1/cb2 separator.
			"cb1-cb2 boundary",
			in{"s", 0, []byte{'A'}, []byte{0, 'B'}},
			in{"s", 0, []byte{'A', 0}, []byte{'B'}},
		},
		{
			// Zero bytes migrating from cb1 into the signature (both
			// sides serialize to 73 00 00 00 00 00 61 00 under the old
			// scheme).
			"sig-cb1 boundary",
			in{"s", 0, []byte{0, 0, 'a'}, nil},
			in{"s\x00\x00", 0, []byte{'a'}, nil},
		},
		{
			// Level truncated to one byte: 256 ≡ 0 (mod 256).
			"level truncation",
			in{"s", 0, []byte{'A'}, nil},
			in{"s", 256, []byte{'A'}, nil},
		},
		{
			// Empty cb2 vs cb2 absorbed into cb1's zero tail.
			"empty cb2",
			in{"s", 0, []byte{'A', 0}, nil},
			in{"s", 0, []byte{'A'}, []byte{}},
		},
	}
	for _, p := range pairs {
		ka := cacheKey(p.a.sig, p.a.level, p.a.cb1, p.a.cb2)
		kb := cacheKey(p.b.sig, p.b.level, p.b.cb1, p.b.cb2)
		if ka == kb {
			t.Errorf("%s: distinct inputs collide: %+v vs %+v", p.name, p.a, p.b)
		}
	}
}

func TestCacheCopiesValues(t *testing.T) {
	c := newBlockCache(2)
	val := []byte{42}
	key := cacheKey("a", 0, []byte{1}, nil)
	c.put(key, val, nil)
	val[0] = 0 // mutate after insert
	out, _, _ := c.get(key)
	if out[0] != 42 {
		t.Fatal("cache aliased caller's slice")
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *blockCache
	if _, _, ok := c.get("x"); ok {
		t.Fatal("nil cache hit")
	}
	c.put("x", []byte{1}, nil) // must not panic
}
