package core

import (
	"errors"
	"testing"

	"qcsim/internal/quantum"
)

// TestTypedSentinels: the engine's validation failures wrap sentinels,
// so the facade translates them with errors.Is instead of matching
// message text.
func TestTypedSentinels(t *testing.T) {
	s := newSim(t, 2, 1, 4, nil)

	if err := s.AssertClassical(0, 1, 1e-6); !errors.Is(err, ErrAssertFailed) {
		t.Fatalf("AssertClassical: %v does not wrap ErrAssertFailed", err)
	}
	if err := s.AssertSuperposition(0, 0.01); !errors.Is(err, ErrAssertFailed) {
		t.Fatalf("AssertSuperposition: %v does not wrap ErrAssertFailed", err)
	}
	if err := s.AssertProduct(1, 1, 0.01); !errors.Is(err, ErrInvalidPair) {
		t.Fatalf("AssertProduct(1,1): %v does not wrap ErrInvalidPair", err)
	}

	sp, err := s.NewSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Sample(nil, -1); !errors.Is(err, ErrNegativeShots) {
		t.Fatalf("Sample(-1): %v does not wrap ErrNegativeShots", err)
	}

	bound := quantum.GHZ(2)
	if err := RunBatch(nil, nil, RunControl{}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("empty batch: %v does not wrap ErrBatchMismatch", err)
	}
	if err := RunBatch([]*Simulator{s}, []*quantum.Circuit{bound, bound}, RunControl{}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("ragged batch: %v does not wrap ErrBatchMismatch", err)
	}
	if err := RunBatch([]*Simulator{s, nil}, []*quantum.Circuit{bound, bound}, RunControl{}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("nil variant: %v does not wrap ErrBatchMismatch", err)
	}
	wide := quantum.GHZ(3)
	if err := RunBatch([]*Simulator{s}, []*quantum.Circuit{wide}, RunControl{}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("width mismatch: %v does not wrap ErrBatchMismatch", err)
	}
	mismatched := newSim(t, 2, 2, 4, nil)
	if err := RunBatch([]*Simulator{s, mismatched}, []*quantum.Circuit{bound, bound}, RunControl{}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("geometry mismatch: %v does not wrap ErrBatchMismatch", err)
	}
}
