package core

import (
	"strings"
	"testing"
	"testing/quick"

	"qcsim/internal/quantum"
)

// batchSims builds K variant simulators by cloning a fresh base with
// VariantSeed-derived seeds — the exact construction the facade's
// RunBatch performs.
func batchSims(t *testing.T, qubits, ranks, blockAmps, k int, extra func(*Config)) []*Simulator {
	t.Helper()
	base := newSim(t, qubits, ranks, blockAmps, extra)
	sims := make([]*Simulator, k)
	sims[0] = base
	for v := 1; v < k; v++ {
		clone, err := base.Clone(VariantSeed(base.Config().Seed, v))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { clone.Close() })
		sims[v] = clone
	}
	return sims
}

func TestVariantSeed(t *testing.T) {
	if VariantSeed(42, 0) != 42 {
		t.Fatal("variant 0 must keep the base seed")
	}
	seen := map[int64]bool{}
	for v := 0; v < 16; v++ {
		s := VariantSeed(42, v)
		if seen[s] {
			t.Fatalf("variant seed collision at v=%d", v)
		}
		seen[s] = true
	}
}

func TestCloneCopiesStateAndLedger(t *testing.T) {
	s := newSim(t, 6, 2, 8, func(c *Config) { c.MemoryBudget = 1024 })
	if err := s.Run(quantum.QAOA(6, 1, 3)); err != nil {
		t.Fatal(err)
	}
	clone, err := s.Clone(VariantSeed(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	assertBitIdentical(t, s, clone, "clone")
	if clone.FidelityLowerBound() != s.FidelityLowerBound() {
		t.Fatalf("ledger not carried: %v vs %v", clone.FidelityLowerBound(), s.FidelityLowerBound())
	}
	if clone.GatesRun() != s.GatesRun() {
		t.Fatalf("gate count not carried: %d vs %d", clone.GatesRun(), s.GatesRun())
	}
	// Mutating the clone must not disturb the parent.
	before, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.Run(quantum.NewCircuit(6).H(0).CNOT(0, 5)); err != nil {
		t.Fatal(err)
	}
	after, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("running the clone mutated the parent at amplitude %d", i)
		}
	}
}

// TestQuickRunBatchBitIdentical is the batch executor's master
// property: a K-variant RunBatch leaves every variant in exactly the
// state K solo RunControlled calls with the same per-variant seeds
// would, for ANY geometry, worker count, and sweep setting. Run under
// -race in CI, it doubles as the data-race check on the
// block-index-first fan-out.
func TestQuickRunBatchBitIdentical(t *testing.T) {
	f := func(seed int64, geomSel, workerSel, sweepSel uint8) bool {
		const qubits, p, k = 6, 1, 3
		geoms := []struct{ ranks, block int }{
			{1, 64}, {1, 8}, {2, 8}, {4, 4}, {2, 32},
		}
		g := geoms[int(geomSel)%len(geoms)]
		workers := 1 + int(workerSel)%4
		disable := sweepSel%2 == 1
		extra := func(c *Config) {
			c.Workers = workers
			c.DisableSweeps = disable
		}
		ansatz := quantum.QAOAAnsatz(qubits, p, seed)
		circuits := make([]*quantum.Circuit, k)
		for v := range circuits {
			vals := quantum.QAOAAngles(p, seed+int64(v))
			c, err := ansatz.Bind(vals)
			if err != nil {
				t.Fatal(err)
			}
			circuits[v] = c
		}
		sims := batchSims(t, qubits, g.ranks, g.block, k, extra)
		if err := RunBatch(sims, circuits, RunControl{}); err != nil {
			t.Fatalf("RunBatch: %v", err)
		}
		for v := 0; v < k; v++ {
			solo := newSim(t, qubits, g.ranks, g.block, func(c *Config) {
				extra(c)
				c.Seed = VariantSeed(1, v)
			})
			if err := solo.Run(circuits[v]); err != nil {
				t.Fatalf("solo run %d: %v", v, err)
			}
			assertBitIdentical(t, sims[v], solo, "batch vs solo")
			if sims[v].FidelityLowerBound() != solo.FidelityLowerBound() {
				t.Fatalf("variant %d ledger differs: %v vs %v", v, sims[v].FidelityLowerBound(), solo.FidelityLowerBound())
			}
			if st := sims[v].Stats(); st.VariantCount != k {
				t.Fatalf("variant %d VariantCount = %d, want %d", v, st.VariantCount, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchSharesCodecWork is the tentpole's reason to exist: a
// parameter-shift-style batch — variants identical except one gate —
// must resolve most codec work through the batch memo, cutting codec
// calls per variant well below a solo run's.
func TestRunBatchSharesCodecWork(t *testing.T) {
	const qubits, p, k = 8, 1, 5
	ansatz := quantum.QAOAAnsatz(qubits, p, 11)
	base := quantum.QAOAAngles(p, 11)
	occs := ansatz.ParamOccurrences()
	circuits := make([]*quantum.Circuit, k)
	bound, err := ansatz.Bind(base)
	if err != nil {
		t.Fatal(err)
	}
	circuits[0] = bound
	// Shift occurrences from the END of the circuit (the mixer layer):
	// each variant then shares its long prefix with the base, the shape
	// the memo is built to exploit. (Early-gate shifts legitimately
	// share little — divergence is real state divergence.)
	for v := 1; v < k; v++ {
		occ := occs[len(occs)-1-(v-1)%len(occs)]
		shifted, err := ansatz.BindShift(base, occ.Gate, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		circuits[v] = shifted
	}
	// Workers: 1 keeps the memo counters deterministic (racing workers
	// may benignly double-compute an identical key).
	sims := batchSims(t, qubits, 1, 32, k, func(c *Config) { c.Workers = 1 })
	baseStats := sims[0].Stats()
	if err := RunBatch(sims, circuits, RunControl{}); err != nil {
		t.Fatal(err)
	}
	var batchCalls, shared int64
	for _, s := range sims {
		st := s.Stats()
		batchCalls += st.CompressCalls + st.DecompressCalls
		shared += st.CodecPassesShared
	}
	batchCalls -= k * (baseStats.CompressCalls + baseStats.DecompressCalls)
	if shared == 0 {
		t.Fatal("no codec passes shared across variants")
	}
	solo := newSim(t, qubits, 1, 32, func(c *Config) { c.Workers = 1 })
	soloBase := solo.Stats()
	if err := solo.Run(circuits[0]); err != nil {
		t.Fatal(err)
	}
	soloCalls := solo.Stats().CompressCalls + solo.Stats().DecompressCalls -
		(soloBase.CompressCalls + soloBase.DecompressCalls)
	ratio := float64(int64(k)*soloCalls) / float64(batchCalls)
	if ratio < 2 {
		t.Fatalf("batch codec reduction only %.2fx (%d solo x%d vs %d batched), want >= 2x",
			ratio, soloCalls, k, batchCalls)
	}
	t.Logf("codec calls: %d solo x %d variants = %d sequential vs %d batched (%.1fx), %d passes shared",
		soloCalls, k, int64(k)*soloCalls, batchCalls, ratio, shared)
}

// TestRunBatchMeasurementFallback: measurement gates break lockstep, so
// the batch runs variant-at-a-time — still producing exactly the solo
// outcomes per variant seed.
func TestRunBatchMeasurementFallback(t *testing.T) {
	const qubits, k = 5, 3
	cir := quantum.NewCircuit(qubits)
	for q := 0; q < qubits; q++ {
		cir.H(q)
	}
	cir.Measure(0).Measure(2)
	circuits := make([]*quantum.Circuit, k)
	for v := range circuits {
		circuits[v] = cir
	}
	sims := batchSims(t, qubits, 1, 8, k, nil)
	if err := RunBatch(sims, circuits, RunControl{}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < k; v++ {
		solo := newSim(t, qubits, 1, 8, func(c *Config) { c.Seed = VariantSeed(1, v) })
		if err := solo.Run(cir); err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, sims[v], solo, "measured batch vs solo")
		if st := sims[v].Stats(); st.VariantCount != k {
			t.Fatalf("fallback variant %d VariantCount = %d, want %d", v, st.VariantCount, k)
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	sims := batchSims(t, 4, 1, 8, 2, nil)
	ansatz := quantum.VQEAnsatz(4, 1)
	bound, err := ansatz.Bind(make([]float64, ansatz.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBatch(nil, nil, RunControl{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := RunBatch(sims, []*quantum.Circuit{bound}, RunControl{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := RunBatch(sims, []*quantum.Circuit{ansatz, ansatz}, RunControl{}); err == nil ||
		!strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound circuit accepted: %v", err)
	}
	other := quantum.NewCircuit(4).H(0)
	if err := RunBatch(sims, []*quantum.Circuit{bound, other}, RunControl{}); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch accepted: %v", err)
	}
	mismatched := newSim(t, 4, 2, 8, nil)
	if err := RunBatch([]*Simulator{sims[0], mismatched}, []*quantum.Circuit{bound, bound}, RunControl{}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
