package core

import (
	"bytes"
	"math/rand"
	"os"
	"testing"

	"qcsim/internal/quantum"
)

// Spill-tier tests: the tiered RAM→disk block store must be invisible
// to every observable — amplitudes, measurement logs, stats identities
// — while actually moving blocks through the spill file.

// spillCfg enables the tiered store with a RAM budget tight enough to
// force real evictions at the test geometries.
func spillCfg(t *testing.T, ram int64) func(*Config) {
	t.Helper()
	dir := t.TempDir()
	return func(c *Config) {
		c.SpillDir = dir
		c.SpillRAMBudget = ram
	}
}

// sumSpillWrites totals SpillWrites across ranks.
func sumSpillWrites(s *Simulator) int64 {
	var n int64
	for _, rs := range s.ranks {
		s.syncStoreStats(rs)
		n += rs.stats.SpillWrites
	}
	return n
}

// TestSpillBitIdentity: for every geometry × worker count, a run
// through the tiered store (RAM budget far below the compressed
// footprint) must be bit-identical to the in-RAM run — state,
// measurement log, and ledger.
func TestSpillBitIdentity(t *testing.T) {
	cir := quantum.RandomCircuit(8, 32, 5)
	cir.Measure(2)
	spilled := false
	for _, geo := range geometries {
		for _, workers := range []int{1, 3} {
			ref := newSim(t, 8, geo.ranks, geo.blockAmps, func(c *Config) {
				c.Workers = workers
			})
			sp := newSim(t, 8, geo.ranks, geo.blockAmps, func(c *Config) {
				c.Workers = workers
				spillCfg(t, 512)(c)
			})
			if err := ref.Run(cir); err != nil {
				t.Fatal(err)
			}
			if err := sp.Run(cir); err != nil {
				t.Fatal(err)
			}
			label := geo.name + "/spill"
			assertBitIdentical(t, ref, sp, label)
			if sumSpillWrites(sp) > 0 {
				spilled = true
			}
		}
	}
	if !spilled {
		t.Fatal("no geometry ever spilled; RAM budget too loose for the property to bite")
	}
}

// TestSpillSweepsBitIdentical: the sweep scheduler's single-pass
// execution must stay bit-identical to gate-at-a-time under the tiered
// store — the sweep planner's prefetch hints must not change results.
func TestSpillSweepsBitIdentical(t *testing.T) {
	cir := quantum.RandomCircuit(8, 40, 13)
	on, off := runSweepPair(t, cir, 2, 16, 2, spillCfg(t, 512))
	assertBitIdentical(t, on, off, "sweeps-on/spill vs sweeps-off/spill")
	if sumSpillWrites(on) == 0 && sumSpillWrites(off) == 0 {
		t.Fatal("neither sweep run spilled; property void")
	}
}

// TestSpillFootprintAccounting is the store-accounting property: after
// every step of an arbitrary gate / measure / save+load / reset
// sequence, each rank's Stats.CurrentFootprint must equal the store's
// Footprint() must equal Σ len(blob) over its blocks — for both store
// implementations.
func TestSpillFootprintAccounting(t *testing.T) {
	stores := []struct {
		name  string
		extra func(*Config)
	}{
		{"ram", nil},
		{"tiered", spillCfg(t, 512)},
	}
	for _, st := range stores {
		t.Run(st.name, func(t *testing.T) {
			s := newSim(t, 8, 2, 16, func(c *Config) {
				c.Workers = 2
				if st.extra != nil {
					st.extra(c)
				}
			})
			rng := rand.New(rand.NewSource(77))
			var ckpt bytes.Buffer
			if err := s.Save(&ckpt); err != nil {
				t.Fatal(err)
			}
			check := func(step string) {
				t.Helper()
				var total int64
				for ri, rs := range s.ranks {
					var sum int64
					for b := 0; b < s.blocksPerRank(); b++ {
						blob, err := rs.store.Peek(b)
						if err != nil {
							t.Fatalf("%s: rank %d block %d: %v", step, ri, b, err)
						}
						sum += int64(len(blob))
					}
					if fp := rs.store.Footprint(); fp != sum {
						t.Fatalf("%s: rank %d store footprint %d, Σ len(blob) %d", step, ri, fp, sum)
					}
					s.syncStoreStats(rs)
					if rs.stats.CurrentFootprint != sum {
						t.Fatalf("%s: rank %d stats footprint %d, Σ len(blob) %d", step, ri, rs.stats.CurrentFootprint, sum)
					}
					total += sum
				}
				if got := s.Stats().CurrentFootprint; got != total {
					t.Fatalf("%s: aggregate footprint %d, Σ ranks %d", step, got, total)
				}
			}
			check("init")
			for i := 0; i < 12; i++ {
				switch rng.Intn(4) {
				case 0:
					if err := s.Run(quantum.RandomCircuit(8, 6, rng.Int63())); err != nil {
						t.Fatal(err)
					}
					check("run")
				case 1:
					if err := s.Run(quantum.NewCircuit(8).H(rng.Intn(8)).Measure(rng.Intn(8))); err != nil {
						t.Fatal(err)
					}
					check("measure")
				case 2:
					if err := s.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
						t.Fatal(err)
					}
					check("load")
				case 3:
					if err := s.Reset(); err != nil {
						t.Fatal(err)
					}
					check("reset")
				}
			}
		})
	}
}

// TestSpillCheckpointRoundTrip: a partially spilled state must
// checkpoint and restore bit-identically — into another spill-enabled
// simulator and into a plain in-RAM one.
func TestSpillCheckpointRoundTrip(t *testing.T) {
	cir := quantum.RandomCircuit(8, 32, 3)
	src := newSim(t, 8, 2, 16, func(c *Config) { spillCfg(t, 512)(c) })
	if err := src.Run(cir); err != nil {
		t.Fatal(err)
	}
	if sumSpillWrites(src) == 0 {
		t.Fatal("source never spilled; round-trip property void")
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, dst := range []struct {
		name  string
		extra func(*Config)
	}{
		{"into-ram", nil},
		{"into-spill", spillCfg(t, 512)},
	} {
		d := newSim(t, 8, 2, 16, dst.extra)
		if err := d.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: %v", dst.name, err)
		}
		assertBitIdentical(t, src, d, dst.name)
	}
}

// TestSpillLoadClearsOverBudgetLatch: the over-budget latch presses on
// resident bytes, so a checkpoint saved by a simulator stuck at the
// loosest bound over budget restores cleanly into a spill-enabled
// simulator that keeps the resident set under the same budget.
func TestSpillLoadClearsOverBudgetLatch(t *testing.T) {
	mk := func(extra func(*Config)) *Simulator {
		return newSim(t, 8, 1, 16, func(c *Config) {
			c.MemoryBudget = 600
			c.ErrorLevels = []float64{1e-7}
			if extra != nil {
				extra(c)
			}
		})
	}
	src := mk(nil)
	if err := src.Run(quantum.RandomCircuit(8, 24, 9)); err != nil {
		t.Fatal(err)
	}
	if !src.OverBudget() {
		t.Fatalf("control stayed under budget (footprint %d); latch scenario void", src.CompressedFootprint())
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := mk(spillCfg(t, 512))
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.OverBudget() {
		t.Fatal("latch survived a load whose resident set fits the budget")
	}
	// And a round-trip back into an unspilled simulator re-derives it.
	back := mk(nil)
	if err := back.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !back.OverBudget() {
		t.Fatal("latch not re-derived loading an over-budget state into an in-RAM store")
	}
}

// TestSpillCompletesUnderBudget is the headline §3.7 property: a state
// whose compressed footprint exceeds the memory budget completes at
// level 0 by spilling — the control without spill escalates to the
// loosest bound and still ends over budget.
func TestSpillCompletesUnderBudget(t *testing.T) {
	cir := quantum.RandomCircuit(10, 40, 21)
	// Measure the lossless footprint and the largest single blob, then
	// pick a budget between them: big enough that the resident set
	// (ram budget + one in-flight blob) fits, small enough that the
	// whole state cannot.
	dry := newSim(t, 10, 1, 64, nil)
	if err := dry.Run(cir); err != nil {
		t.Fatal(err)
	}
	var footprint, maxBlob int64
	for b := 0; b < dry.blocksPerRank(); b++ {
		blob, err := dry.ranks[0].store.Peek(b)
		if err != nil {
			t.Fatal(err)
		}
		footprint += int64(len(blob))
		if int64(len(blob)) > maxBlob {
			maxBlob = int64(len(blob))
		}
	}
	budget := 2 * maxBlob
	if budget >= footprint/2 {
		t.Fatalf("geometry too coarse to spill meaningfully: max blob %d, footprint %d", maxBlob, footprint)
	}
	// Control: near-lossless ladder, no spill — must end over budget.
	ctl := newSim(t, 10, 1, 64, func(c *Config) {
		c.MemoryBudget = budget
		c.ErrorLevels = []float64{1e-7}
	})
	if err := ctl.Run(cir); err != nil {
		t.Fatal(err)
	}
	if !ctl.OverBudget() {
		t.Fatalf("control fit in %d bytes; budget not tight enough", budget)
	}
	// Spill run: same budget, tiered store — completes lossless.
	dir := t.TempDir()
	sp := newSim(t, 10, 1, 64, func(c *Config) {
		c.MemoryBudget = budget
		c.ErrorLevels = []float64{1e-7}
		c.SpillDir = dir
		c.SpillRAMBudget = budget
	})
	if err := sp.Run(cir); err != nil {
		t.Fatal(err)
	}
	if sp.OverBudget() {
		t.Fatal("spill run still over budget")
	}
	st := sp.Stats()
	if st.FinalLevel != 0 || st.Escalations != 0 {
		t.Fatalf("spill run escalated (level %d, %d escalations); want lossless completion", st.FinalLevel, st.Escalations)
	}
	if st.SpillWrites == 0 || st.SpilledBytes == 0 {
		t.Fatalf("spill run never wrote to disk (writes %d, spilled %d)", st.SpillWrites, st.SpilledBytes)
	}
	if st.MaxResident > budget+maxBlob {
		t.Fatalf("resident high-water %d exceeds budget %d + max blob %d", st.MaxResident, budget, maxBlob)
	}
	if st.MaxFootprint <= budget {
		t.Fatalf("max footprint %d never exceeded the budget %d; out-of-core property void", st.MaxFootprint, budget)
	}
	// Bit-identical to the unbudgeted dry run.
	assertBitIdentical(t, dry, sp, "spill vs unbudgeted")
	// Close removes the spill files.
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
}

// TestSpillConfigValidation: the config normalization rules around
// WithSpill's two knobs.
func TestSpillConfigValidation(t *testing.T) {
	if _, err := New(Config{Qubits: 4, Ranks: 1, BlockAmps: 4, SpillRAMBudget: -1}); err == nil {
		t.Fatal("negative spill RAM budget accepted")
	}
	if _, err := New(Config{Qubits: 4, Ranks: 1, BlockAmps: 4, SpillDir: t.TempDir()}); err == nil {
		t.Fatal("spill dir without any budget accepted")
	}
	// Dir without explicit RAM budget adopts MemoryBudget.
	s, err := New(Config{Qubits: 4, Ranks: 1, BlockAmps: 4,
		SpillDir: t.TempDir(), MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Budget without dir lands in os.TempDir.
	s, err = New(Config{Qubits: 4, Ranks: 1, BlockAmps: 4, SpillRAMBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// An unusable dir surfaces blockstore.ErrSpill from New.
	if _, err := New(Config{Qubits: 4, Ranks: 1, BlockAmps: 4,
		SpillDir: "/nonexistent/qcsim-spill", SpillRAMBudget: 1 << 20}); err == nil {
		t.Fatal("unwritable spill dir accepted")
	}
}
