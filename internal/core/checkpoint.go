package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"qcsim/internal/blockstore"
)

// Checkpointing (§3.5): the compressed blocks are written out as-is so a
// job killed by a wall-time limit can resume from the last gate
// boundary. The format is self-describing and checksummed. Both
// directions stream block-at-a-time through the block store: Save
// never needs the whole table resident (spilled blocks are read
// straight from the spill file via Peek), and Load stages incoming
// blocks into fresh stores that may themselves spill — a state larger
// than RAM checkpoints and restores without ever materializing in RAM.

var checkpointMagic = [8]byte{'Q', 'C', 'S', 'I', 'M', 'C', 'K', '1'}

// Save writes the full simulator state (geometry, ledger, measurement
// log, per-rank levels and compressed blocks) to w.
func (s *Simulator) Save(w io.Writer) error {
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{
		uint64(s.cfg.Qubits),
		uint64(s.rankBits),
		uint64(s.blockBits),
		uint64(s.offsetBits),
		math.Float64bits(s.ledger),
		uint64(s.gatesRun),
		uint64(len(s.measurements)),
	}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, m := range s.measurements {
		if err := binary.Write(mw, binary.LittleEndian, uint8(m)); err != nil {
			return err
		}
	}
	nb := s.blocksPerRank()
	for _, rs := range s.ranks {
		if err := binary.Write(mw, binary.LittleEndian, uint8(rs.level)); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(nb)); err != nil {
			return err
		}
		for b := 0; b < nb; b++ {
			// Peek, not Get: a checkpoint of a partially spilled state
			// must not thrash the resident set the next gates rely on.
			blob, err := rs.store.Peek(b)
			if err != nil {
				return err
			}
			if err := binary.Write(mw, binary.LittleEndian, uint32(len(blob))); err != nil {
				return err
			}
			if _, err := mw.Write(blob); err != nil {
				return err
			}
		}
	}
	// Trailing checksum (not itself checksummed).
	return binary.Write(w, binary.LittleEndian, h.Sum64())
}

// Load restores a checkpoint written by Save into this simulator. The
// simulator must have been built with the same Qubits, Ranks, and
// BlockAmps geometry (codecs may differ only if they can decode the
// stored blocks).
//
// Blocks stream into per-rank staging stores as they are read — under
// a spill configuration they may go straight to disk, so restoring
// never needs the whole table in RAM. Every blob is decode-validated
// on the way in, and the live state is swapped only after the
// trailing checksum verifies: any failure leaves the simulator
// exactly as it was.
func (s *Simulator) Load(r io.Reader) error {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)
	var magic [8]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("core: not a checkpoint (magic %q)", magic[:])
	}
	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(tr, binary.LittleEndian, &hdr[i]); err != nil {
			return fmt.Errorf("core: checkpoint header: %w", err)
		}
	}
	if int(hdr[0]) != s.cfg.Qubits || int(hdr[1]) != s.rankBits ||
		int(hdr[2]) != s.blockBits || int(hdr[3]) != s.offsetBits {
		return fmt.Errorf("core: checkpoint geometry (q=%d ρ=%d β=%d ω=%d) does not match simulator (q=%d ρ=%d β=%d ω=%d)",
			hdr[0], hdr[1], hdr[2], hdr[3], s.cfg.Qubits, s.rankBits, s.blockBits, s.offsetBits)
	}
	ledger := math.Float64frombits(hdr[4])
	gatesRun := int(hdr[5])
	nMeas := int(hdr[6])
	if nMeas < 0 || nMeas > gatesRun {
		return fmt.Errorf("core: checkpoint measurement count %d invalid", nMeas)
	}
	meas := make([]int, nMeas)
	for i := range meas {
		var m uint8
		if err := binary.Read(tr, binary.LittleEndian, &m); err != nil {
			return fmt.Errorf("core: checkpoint measurements: %w", err)
		}
		meas[i] = int(m)
	}
	levels := make([]int, len(s.ranks))
	staging := make([]blockstore.Store, 0, len(s.ranks))
	closeStaging := func() {
		for _, st := range staging {
			st.Close()
		}
	}
	scratch := make([]float64, 2*s.blockAmps())
	for ri := range s.ranks {
		var level uint8
		if err := binary.Read(tr, binary.LittleEndian, &level); err != nil {
			closeStaging()
			return fmt.Errorf("core: checkpoint rank %d: %w", ri, err)
		}
		if int(level) > len(s.cfg.ErrorLevels) {
			closeStaging()
			return fmt.Errorf("core: checkpoint level %d out of range", level)
		}
		var nb uint32
		if err := binary.Read(tr, binary.LittleEndian, &nb); err != nil {
			closeStaging()
			return fmt.Errorf("core: checkpoint rank %d: %w", ri, err)
		}
		if int(nb) != s.blocksPerRank() {
			closeStaging()
			return fmt.Errorf("core: checkpoint rank %d has %d blocks, want %d", ri, nb, s.blocksPerRank())
		}
		levels[ri] = int(level)
		st, err := s.newStore(ri)
		if err != nil {
			closeStaging()
			return err
		}
		staging = append(staging, st)
		for b := 0; b < int(nb); b++ {
			var bl uint32
			if err := binary.Read(tr, binary.LittleEndian, &bl); err != nil {
				closeStaging()
				return fmt.Errorf("core: checkpoint block length: %w", err)
			}
			if bl > 1<<30 {
				closeStaging()
				return fmt.Errorf("core: checkpoint block of %d bytes implausible", bl)
			}
			blob := make([]byte, bl)
			if _, err := io.ReadFull(tr, blob); err != nil {
				closeStaging()
				return fmt.Errorf("core: checkpoint block: %w", err)
			}
			// Validate on the way in — the blob may spill immediately,
			// and a corrupt checkpoint must be rejected before commit.
			if err := s.decodeBlob(blob, scratch); err != nil {
				closeStaging()
				return fmt.Errorf("core: checkpoint rank %d undecodable: %w", ri, err)
			}
			if err := st.Put(b, blob); err != nil {
				closeStaging()
				return err
			}
		}
	}
	want := h.Sum64()
	var got uint64
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		closeStaging()
		return fmt.Errorf("core: checkpoint checksum: %w", err)
	}
	if got != want {
		closeStaging()
		return fmt.Errorf("core: checkpoint checksum mismatch (file %#x, computed %#x)", got, want)
	}
	// Commit: swap each rank onto its staged store.
	s.version++
	s.ledger = ledger
	s.gatesRun = gatesRun
	s.measurements = meas
	for ri, rs := range s.ranks {
		rs.level = levels[ri]
		// The restored state replaces whatever ran before, so per-rank
		// accounting latched from the pre-restore timeline must not
		// survive: a stuck overBudget latch would make the next run
		// report the budget exceeded even though the restored footprint
		// fits, and FinalLevel must describe the restored ladder position
		// (levels only escalate, so the level at save time is the highest
		// the checkpointed timeline ever used).
		rs.stats.FinalLevel = levels[ri]
		// Fold the outgoing store's spill tally into the baseline so
		// the rank's cumulative counters survive the swap, then close
		// it (removing its spill file).
		rs.storeAcc = rs.storeAcc.Plus(rs.store.Stats().Minus(rs.storeBase))
		rs.storeBase = blockstore.Stats{}
		rs.store.Close()
		rs.store = staging[ri]
		// Re-derive the latch from the restored state itself: clear it
		// for a healthy checkpoint, but a state saved over budget at
		// the loosest bound is still over budget after the restore.
		// The budget presses on the resident bytes, so a restore into
		// a spill-enabled simulator can clear a latch the saving
		// (unspilled) simulator tripped.
		rs.overBudget = s.cfg.MemoryBudget > 0 && !s.cfg.Uncompressed &&
			rs.level == len(s.cfg.ErrorLevels) && rs.store.Resident() > s.cfg.MemoryBudget
		s.syncStoreStats(rs)
		if rs.stats.CurrentFootprint > rs.stats.MaxFootprint {
			rs.stats.MaxFootprint = rs.stats.CurrentFootprint
		}
	}
	return nil
}
