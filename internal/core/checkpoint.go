package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// Checkpointing (§3.5): the compressed blocks are written out as-is so a
// job killed by a wall-time limit can resume from the last gate
// boundary. The format is self-describing and checksummed.

var checkpointMagic = [8]byte{'Q', 'C', 'S', 'I', 'M', 'C', 'K', '1'}

// Save writes the full simulator state (geometry, ledger, measurement
// log, per-rank levels and compressed blocks) to w.
func (s *Simulator) Save(w io.Writer) error {
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{
		uint64(s.cfg.Qubits),
		uint64(s.rankBits),
		uint64(s.blockBits),
		uint64(s.offsetBits),
		math.Float64bits(s.ledger),
		uint64(s.gatesRun),
		uint64(len(s.measurements)),
	}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, m := range s.measurements {
		if err := binary.Write(mw, binary.LittleEndian, uint8(m)); err != nil {
			return err
		}
	}
	for _, rs := range s.ranks {
		if err := binary.Write(mw, binary.LittleEndian, uint8(rs.level)); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(rs.blocks))); err != nil {
			return err
		}
		for _, blob := range rs.blocks {
			if err := binary.Write(mw, binary.LittleEndian, uint32(len(blob))); err != nil {
				return err
			}
			if _, err := mw.Write(blob); err != nil {
				return err
			}
		}
	}
	// Trailing checksum (not itself checksummed).
	return binary.Write(w, binary.LittleEndian, h.Sum64())
}

// Load restores a checkpoint written by Save into this simulator. The
// simulator must have been built with the same Qubits, Ranks, and
// BlockAmps geometry (codecs may differ only if they can decode the
// stored blocks).
func (s *Simulator) Load(r io.Reader) error {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)
	var magic [8]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("core: not a checkpoint (magic %q)", magic[:])
	}
	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(tr, binary.LittleEndian, &hdr[i]); err != nil {
			return fmt.Errorf("core: checkpoint header: %w", err)
		}
	}
	if int(hdr[0]) != s.cfg.Qubits || int(hdr[1]) != s.rankBits ||
		int(hdr[2]) != s.blockBits || int(hdr[3]) != s.offsetBits {
		return fmt.Errorf("core: checkpoint geometry (q=%d ρ=%d β=%d ω=%d) does not match simulator (q=%d ρ=%d β=%d ω=%d)",
			hdr[0], hdr[1], hdr[2], hdr[3], s.cfg.Qubits, s.rankBits, s.blockBits, s.offsetBits)
	}
	ledger := math.Float64frombits(hdr[4])
	gatesRun := int(hdr[5])
	nMeas := int(hdr[6])
	if nMeas < 0 || nMeas > gatesRun {
		return fmt.Errorf("core: checkpoint measurement count %d invalid", nMeas)
	}
	meas := make([]int, nMeas)
	for i := range meas {
		var m uint8
		if err := binary.Read(tr, binary.LittleEndian, &m); err != nil {
			return fmt.Errorf("core: checkpoint measurements: %w", err)
		}
		meas[i] = int(m)
	}
	type rankImage struct {
		level  int
		blocks [][]byte
	}
	images := make([]rankImage, len(s.ranks))
	for ri := range s.ranks {
		var level uint8
		if err := binary.Read(tr, binary.LittleEndian, &level); err != nil {
			return fmt.Errorf("core: checkpoint rank %d: %w", ri, err)
		}
		if int(level) > len(s.cfg.ErrorLevels) {
			return fmt.Errorf("core: checkpoint level %d out of range", level)
		}
		var nb uint32
		if err := binary.Read(tr, binary.LittleEndian, &nb); err != nil {
			return fmt.Errorf("core: checkpoint rank %d: %w", ri, err)
		}
		if int(nb) != s.blocksPerRank() {
			return fmt.Errorf("core: checkpoint rank %d has %d blocks, want %d", ri, nb, s.blocksPerRank())
		}
		images[ri].level = int(level)
		images[ri].blocks = make([][]byte, nb)
		for b := range images[ri].blocks {
			var bl uint32
			if err := binary.Read(tr, binary.LittleEndian, &bl); err != nil {
				return fmt.Errorf("core: checkpoint block length: %w", err)
			}
			if bl > 1<<30 {
				return fmt.Errorf("core: checkpoint block of %d bytes implausible", bl)
			}
			blob := make([]byte, bl)
			if _, err := io.ReadFull(tr, blob); err != nil {
				return fmt.Errorf("core: checkpoint block: %w", err)
			}
			images[ri].blocks[b] = blob
		}
	}
	want := h.Sum64()
	var got uint64
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("core: checkpoint checksum: %w", err)
	}
	if got != want {
		return fmt.Errorf("core: checkpoint checksum mismatch (file %#x, computed %#x)", got, want)
	}
	// Validate every block decodes before committing anything.
	scratch := make([]float64, 2*s.blockAmps())
	for ri := range images {
		for _, blob := range images[ri].blocks {
			if err := s.decodeBlob(blob, scratch); err != nil {
				return fmt.Errorf("core: checkpoint rank %d undecodable: %w", ri, err)
			}
		}
	}
	// Commit.
	s.version++
	s.ledger = ledger
	s.gatesRun = gatesRun
	s.measurements = meas
	for ri, rs := range s.ranks {
		rs.level = images[ri].level
		// The restored state replaces whatever ran before, so per-rank
		// accounting latched from the pre-restore timeline must not
		// survive: a stuck overBudget latch would make the next run
		// report the budget exceeded even though the restored footprint
		// fits, and FinalLevel must describe the restored ladder position
		// (levels only escalate, so the level at save time is the highest
		// the checkpointed timeline ever used).
		rs.stats.FinalLevel = images[ri].level
		var footprint int64
		for b := range rs.blocks {
			rs.blocks[b] = images[ri].blocks[b]
			footprint += int64(len(rs.blocks[b]))
		}
		// Re-derive the latch from the restored state itself: clear it
		// for a healthy checkpoint, but a state saved over budget at
		// the loosest bound is still over budget after the restore.
		rs.overBudget = s.cfg.MemoryBudget > 0 && !s.cfg.Uncompressed &&
			rs.level == len(s.cfg.ErrorLevels) && footprint > s.cfg.MemoryBudget
		rs.stats.CurrentFootprint = footprint
		if footprint > rs.stats.MaxFootprint {
			rs.stats.MaxFootprint = footprint
		}
	}
	return nil
}
