package core

import (
	"compress/flate"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"qcsim/internal/compress"
	"qcsim/internal/compress/lossless"
	"qcsim/internal/quantum"
)

// workingLossless returns the default level-0 codec for tests that wrap
// it in a failure-injecting shim (Config hooks run before withDefaults,
// so Config.Lossless is still nil inside newSim's extra func).
func workingLossless() compress.Codec { return lossless.New(flate.BestSpeed, false) }

// runSweepPair executes the same circuit on two identically configured
// simulators, one with the sweep scheduler and one without, and returns
// both for inspection.
func runSweepPair(t *testing.T, cir *quantum.Circuit, ranks, blockAmps, workers int, extra func(*Config)) (on, off *Simulator) {
	t.Helper()
	mk := func(disable bool) *Simulator {
		return newSim(t, cir.N, ranks, blockAmps, func(c *Config) {
			c.Workers = workers
			c.DisableSweeps = disable
			if extra != nil {
				extra(c)
			}
		})
	}
	on, off = mk(false), mk(true)
	if err := on.Run(cir); err != nil {
		t.Fatalf("sweeps-on run: %v", err)
	}
	if err := off.Run(cir); err != nil {
		t.Fatalf("sweeps-off run: %v", err)
	}
	return on, off
}

// assertBitIdentical compares full states, measurement logs, and (when
// checkLedger) the fidelity ledgers of two simulators bit-for-bit.
func assertBitIdentical(t *testing.T, a, b *Simulator, label string) {
	t.Helper()
	sa, err := a.FullState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: amplitude %d differs: %v vs %v", label, i, sa[i], sb[i])
		}
	}
	ma, mb := a.Measurements(), b.Measurements()
	if len(ma) != len(mb) {
		t.Fatalf("%s: measurement counts differ: %v vs %v", label, ma, mb)
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("%s: measurement %d differs: %v vs %v", label, i, ma, mb)
		}
	}
}

// TestQuickSweepsBitIdentical is the sweep scheduler's master property:
// for ANY circuit (including intermediate measurements and controlled
// gates), ANY geometry, and ANY worker count, batched sweeps and
// gate-at-a-time execution produce bit-identical amplitudes,
// measurement outcomes, and ledgers under the lossless codec. Run under
// -race in CI, this doubles as the data-race check on the sweep
// executor's worker fan-out.
func TestQuickSweepsBitIdentical(t *testing.T) {
	f := func(seed int64, geomSel, workerSel, gateCount uint8) bool {
		qubits := 7
		geoms := []struct{ ranks, block int }{
			{1, 128}, {1, 16}, {2, 16}, {4, 8}, {2, 64},
		}
		g := geoms[int(geomSel)%len(geoms)]
		workers := 1 + int(workerSel)%4
		gates := 20 + int(gateCount)%60
		cir := quantum.RandomCircuit(qubits, gates, seed)
		cir.Measure(int(uint64(seed) % uint64(qubits)))
		on, off := runSweepPair(t, cir, g.ranks, g.block, workers, nil)
		assertBitIdentical(t, on, off, "sweeps on/off")
		if on.FidelityLowerBound() != off.FidelityLowerBound() {
			t.Logf("seed %d: lossless ledgers differ: %v vs %v", seed, on.FidelityLowerBound(), off.FidelityLowerBound())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepsBitIdenticalWithCache: the sweep-keyed block cache must not
// change any bits either.
func TestSweepsBitIdenticalWithCache(t *testing.T) {
	cir := quantum.Grover(5, 11, 2)
	on, off := runSweepPair(t, cir, 2, 8, 2, func(c *Config) { c.CacheLines = 64 })
	assertBitIdentical(t, on, off, "sweeps on/off with cache")
	if on.Stats().CacheLookups == 0 {
		t.Fatal("sweep path never consulted the cache")
	}
}

// TestSweepCodecReductionGrover is the ISSUE acceptance criterion: on
// the Grover example circuit the sweep scheduler must cut codec
// invocations at least 2× versus gate-at-a-time execution while
// producing bit-identical amplitudes under the lossless codec.
func TestSweepCodecReductionGrover(t *testing.T) {
	// The examples/grover workload at test scale: a real register plus
	// Toffoli-ladder ancillas, several amplification iterations.
	cir := quantum.Grover(6, 0x2D, quantum.GroverOptimalIterations(6))
	on, off := runSweepPair(t, cir, 1, 64, 2, nil)
	assertBitIdentical(t, on, off, "grover")

	stOn, stOff := on.Stats(), off.Stats()
	callsOn := stOn.CompressCalls + stOn.DecompressCalls
	callsOff := stOff.CompressCalls + stOff.DecompressCalls
	if callsOn == 0 || callsOff == 0 {
		t.Fatalf("codec call counters not tracked: on=%d off=%d", callsOn, callsOff)
	}
	if ratio := float64(callsOff) / float64(callsOn); ratio < 2 {
		t.Fatalf("sweeps reduced codec invocations only %.2fx (%d -> %d), want >= 2x", ratio, callsOff, callsOn)
	}
	if stOn.Sweeps == 0 || stOn.SweepGates <= stOn.Sweeps {
		t.Fatalf("sweep counters implausible: %d sweeps over %d gates", stOn.Sweeps, stOn.SweepGates)
	}
	if stOn.CodecPassesSaved == 0 {
		t.Fatal("no codec passes recorded as saved")
	}
	if stOff.Sweeps != 0 || stOff.CodecPassesSaved != 0 {
		t.Fatalf("sweeps-off run recorded sweep activity: %+v", stOff)
	}
	t.Logf("grover: %d codec calls gate-at-a-time, %d with sweeps (%.1fx), %d sweeps / %d gates, %d passes saved",
		callsOff, callsOn, float64(callsOff)/float64(callsOn), stOn.Sweeps, stOn.SweepGates, stOn.CodecPassesSaved)
}

// TestSweepLedgerTightens: under a lossy budget, one recompression per
// sweep means one (1-δ) ledger charge per sweep — the Eq. 11 bound must
// never be looser than gate-at-a-time's.
func TestSweepLedgerTightens(t *testing.T) {
	cir := quantum.QAOA(10, 2, 7)
	on, off := runSweepPair(t, cir, 2, 16, 2, func(c *Config) { c.MemoryBudget = 2048 })
	lOn, lOff := on.FidelityLowerBound(), off.FidelityLowerBound()
	if lOff >= 1 {
		t.Fatalf("budget never forced lossy compression (ledger %v); test is vacuous", lOff)
	}
	if lOn < lOff {
		t.Fatalf("sweeps loosened the fidelity bound: %v < %v", lOn, lOff)
	}
}

// TestSweepsDisabledByNoise: a noise channel must force gate-at-a-time
// execution (the depolarizing draw fires after every gate).
func TestSweepsDisabledByNoise(t *testing.T) {
	s := newSim(t, 6, 1, 16, nil)
	if err := s.SetNoise(&NoiseModel{Prob: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(quantum.NewCircuit(6).H(0).H(1).H(2)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Sweeps != 0 {
		t.Fatalf("noisy run still used the sweep path: %+v", st)
	}
}

// --- measurement error propagation (the second ISSUE bugfix) ---

// decompressFailCodec wraps a working codec but fails every Decompress,
// so construction (compress-only) succeeds and the first decode — e.g.
// a measurement's probability sweep — fails.
type decompressFailCodec struct{ compress.Codec }

func (decompressFailCodec) Decompress([]float64, []byte) error {
	return compress.ErrCorrupt
}

// compressFailAfterCodec works for the first n Compress calls (enough
// to survive Reset) and then fails, reaching the collapse phase of a
// measurement. The counter is atomic: compression runs on worker
// goroutines.
type compressFailAfterCodec struct {
	compress.Codec
	n *int64
}

func (c compressFailAfterCodec) Compress(dst []byte, data []float64, opt compress.Options) ([]byte, error) {
	if atomic.AddInt64(c.n, -1) < 0 {
		return nil, compress.ErrCorrupt
	}
	return c.Codec.Compress(dst, data, opt)
}

func TestMeasurementDecompressFailureIsWrappedError(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		s := newSim(t, 6, ranks, 8, func(c *Config) {
			c.Lossless = decompressFailCodec{workingLossless()}
			c.Workers = 2
		})
		// New succeeds (Reset only compresses); the measurement is the
		// first gate, so its probability sweep hits the failing decode.
		err := s.Run(quantum.NewCircuit(6).Measure(0))
		if err == nil {
			t.Fatalf("ranks=%d: measurement over failing codec succeeded", ranks)
		}
		if !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("ranks=%d: error does not wrap the codec error: %v", ranks, err)
		}
		if !strings.Contains(err.Error(), "measure qubit 0") {
			t.Fatalf("ranks=%d: error lacks measurement context: %v", ranks, err)
		}
		// The failure was agreed before the outcome draw: nothing
		// collapsed, nothing recorded, and the simulator still answers.
		if got := s.Measurements(); len(got) != 0 {
			t.Fatalf("ranks=%d: failed measurement recorded an outcome: %v", ranks, got)
		}
		if s.GatesRun() != 0 {
			t.Fatalf("ranks=%d: failed gate counted as executed", ranks)
		}
	}
}

func TestMeasurementCollapseFailureIsWrappedError(t *testing.T) {
	// Budget the codec so Reset's initial block compressions succeed and
	// the next compression — the collapse after the measurement — fails.
	calls := int64(1 << 10) // plenty for New's Reset
	sim := newSim(t, 5, 1, 8, func(c *Config) {
		c.Lossless = compressFailAfterCodec{workingLossless(), &calls}
	})
	atomic.StoreInt64(&calls, 0) // exhausted: the very next compress fails
	err := sim.Run(quantum.NewCircuit(5).Measure(1))
	if err == nil {
		t.Fatal("collapse over failing codec succeeded")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("error does not wrap the codec error: %v", err)
	}
	if !strings.Contains(err.Error(), "collapse") {
		t.Fatalf("error lacks collapse context: %v", err)
	}
}

// TestUnitaryCodecFailureReturnsError: the same no-panic contract on
// the unitary paths, including the cross-rank exchange, which must keep
// its SendRecv protocol alive on error instead of deadlocking peers.
func TestUnitaryCodecFailureReturnsError(t *testing.T) {
	// 6 qubits, 4 ranks, blockAmps 4: qubit 5 lives in the rank segment,
	// so H(5) is a cross-rank exchange over a failing decompressor.
	s := newSim(t, 6, 4, 4, func(c *Config) {
		c.Lossless = decompressFailCodec{workingLossless()}
	})
	err := s.Run(quantum.NewCircuit(6).H(5))
	if err == nil {
		t.Fatal("cross-rank gate over failing codec succeeded")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("error does not wrap the codec error: %v", err)
	}
	// Local path too.
	s2 := newSim(t, 6, 1, 8, func(c *Config) {
		c.Lossless = decompressFailCodec{workingLossless()}
	})
	if err := s2.Run(quantum.NewCircuit(6).H(0)); err == nil || !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("local gate error not propagated: %v", err)
	}
}
