package core

import "time"

// Stats is the per-rank (and aggregated) accounting that regenerates the
// paper's Table 2 breakdown: where the time went, how small the state
// stayed, and how well the block cache did.
type Stats struct {
	// Time breakdown (Table 2 rows).
	CompressTime   time.Duration
	DecompressTime time.Duration
	ComputeTime    time.Duration
	CommTime       time.Duration

	// Gates executed (unitary applications; measurements count too).
	Gates int

	// Block cache behaviour (§3.4).
	CacheLookups int64
	CacheHits    int64

	// Codec traffic: how many block encode/decode calls the engine
	// issued (cache hits and control-skipped blocks issue none). The
	// sweep scheduler exists to shrink these.
	CompressCalls   int64
	DecompressCalls int64

	// Sweep scheduler behaviour. Sweeps counts block-local sweeps
	// executed through the batched path and SweepGates the gates they
	// covered; CodecPassesSaved is the number of per-block
	// decompress+recompress round trips avoided versus gate-at-a-time
	// execution (k-1 per block actually processed in a k-gate sweep).
	Sweeps           int
	SweepGates       int
	CodecPassesSaved int64

	// Variant batching behaviour (RunBatch). CodecPassesShared counts
	// per-block codec round trips a variant avoided because the batch
	// memo had already produced the output for the same (op, level,
	// compressed input) — sharing across variants whose blocks have not
	// diverged, and across byte-identical blocks within one pass.
	// VariantCount is the batch width K of the most recent batched run
	// (0 when the state has only ever run solo).
	CodecPassesShared int64
	VariantCount      int

	// Footprint accounting. CurrentFootprint is Σ len(compressed
	// block) across both memory tiers; MaxFootprint is its high-water
	// mark, from which the minimum compression ratio of Table 2
	// derives. Both are maintained inside the block store and sampled
	// at gate boundaries.
	CurrentFootprint int64
	MaxFootprint     int64

	// Tiered block-store behaviour (all zero unless spilling is
	// enabled; the in-RAM store keeps every block resident, so
	// ResidentFootprint == CurrentFootprint there). ResidentFootprint
	// is the compressed bytes currently held in RAM and MaxResident its
	// gate-boundary high-water mark — the RSS proxy of the out-of-core
	// experiments. SpilledBytes is the gauge of bytes on disk right
	// now; SpillWrites/SpillReads count blocks written to and
	// synchronously read back from the spill file; PrefetchReads counts
	// blocks the async prefetcher staged ahead of demand and
	// PrefetchHits how many Gets a staged block saved from a disk
	// stall.
	ResidentFootprint int64
	MaxResident       int64
	SpilledBytes      int64
	SpillWrites       int64
	SpillReads        int64
	PrefetchReads     int64
	PrefetchHits      int64

	// FinalLevel is the error-bound level reached (0 = still
	// lossless).
	FinalLevel int

	// Escalations counts §3.7 bound relaxations.
	Escalations int
}

// TotalTime sums the tracked components.
func (s Stats) TotalTime() time.Duration {
	return s.CompressTime + s.DecompressTime + s.ComputeTime + s.CommTime
}

// Add accumulates o into s (for aggregating rank stats).
func (s Stats) Add(o Stats) Stats {
	s.CompressTime += o.CompressTime
	s.DecompressTime += o.DecompressTime
	s.ComputeTime += o.ComputeTime
	s.CommTime += o.CommTime
	if o.Gates > s.Gates {
		s.Gates = o.Gates
	}
	s.CacheLookups += o.CacheLookups
	s.CacheHits += o.CacheHits
	s.CompressCalls += o.CompressCalls
	s.DecompressCalls += o.DecompressCalls
	// Like Gates: every rank executes the same sweep schedule, so the
	// aggregate reports the schedule, not ranks × schedule.
	if o.Sweeps > s.Sweeps {
		s.Sweeps = o.Sweeps
	}
	if o.SweepGates > s.SweepGates {
		s.SweepGates = o.SweepGates
	}
	s.CodecPassesSaved += o.CodecPassesSaved
	s.CodecPassesShared += o.CodecPassesShared
	if o.VariantCount > s.VariantCount {
		s.VariantCount = o.VariantCount
	}
	s.CurrentFootprint += o.CurrentFootprint
	s.MaxFootprint += o.MaxFootprint
	s.ResidentFootprint += o.ResidentFootprint
	s.MaxResident += o.MaxResident
	s.SpilledBytes += o.SpilledBytes
	s.SpillWrites += o.SpillWrites
	s.SpillReads += o.SpillReads
	s.PrefetchReads += o.PrefetchReads
	s.PrefetchHits += o.PrefetchHits
	if o.FinalLevel > s.FinalLevel {
		s.FinalLevel = o.FinalLevel
	}
	s.Escalations += o.Escalations
	return s
}

// addShard folds one worker's stats shard into the rank totals after a
// fan-out: only the counters workers accumulate privately (time spent
// and cache traffic) — footprint, levels, and gate counts are tracked
// on the rank itself.
func (s *Stats) addShard(o Stats) {
	s.CompressTime += o.CompressTime
	s.DecompressTime += o.DecompressTime
	s.ComputeTime += o.ComputeTime
	s.CacheLookups += o.CacheLookups
	s.CacheHits += o.CacheHits
	s.CompressCalls += o.CompressCalls
	s.DecompressCalls += o.DecompressCalls
	s.CodecPassesSaved += o.CodecPassesSaved
	s.CodecPassesShared += o.CodecPassesShared
}

// MinCompressionRatio returns uncompressed-state-bytes / peak-footprint,
// the last row of Table 2. stateBytes is the full uncompressed size the
// stats cover.
func (s Stats) MinCompressionRatio(stateBytes float64) float64 {
	if s.MaxFootprint == 0 {
		return 0
	}
	return stateBytes / float64(s.MaxFootprint)
}
