package core

import (
	"math"
	"math/cmplx"
	"testing"

	"qcsim/internal/quantum"
)

// geometries covers all three target-segment cases (offset, block,
// rank) for an 8-qubit register.
var geometries = []struct {
	name      string
	ranks     int
	blockAmps int
}{
	{"1rank-1block", 1, 256},
	{"1rank-4blocks", 1, 64},
	{"1rank-32blocks", 1, 8},
	{"4ranks-4blocks", 4, 16},
	{"8ranks-8blocks", 8, 4},
	{"16ranks-2blocks", 16, 8},
}

func newSim(t *testing.T, qubits, ranks, blockAmps int, extra func(*Config)) *Simulator {
	t.Helper()
	cfg := Config{Qubits: qubits, Ranks: ranks, BlockAmps: blockAmps, Seed: 1}
	if extra != nil {
		extra(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// compareToReference runs c on both engines and checks amplitudes agree
// within tol.
func compareToReference(t *testing.T, s *Simulator, c *quantum.Circuit, tol float64) {
	t.Helper()
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	ref := quantum.NewState(c.N)
	ref.ApplyCircuit(c)
	got, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-ref.Amps[i]) > tol {
			t.Fatalf("amp[%d] = %v, want %v (|Δ| = %g)", i, got[i], ref.Amps[i], cmplx.Abs(got[i]-ref.Amps[i]))
		}
	}
}

func TestLosslessMatchesReferenceAllGeometries(t *testing.T) {
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			s := newSim(t, 8, g.ranks, g.blockAmps, nil)
			compareToReference(t, s, quantum.RandomCircuit(8, 120, 77), 1e-12)
		})
	}
}

func TestLosslessGHZAllGeometries(t *testing.T) {
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			s := newSim(t, 8, g.ranks, g.blockAmps, nil)
			compareToReference(t, s, quantum.GHZ(8), 1e-13)
		})
	}
}

func TestEveryTargetSegment(t *testing.T) {
	// One Hadamard per qubit walks the target through offset, block,
	// and rank segments; then X on each; compare exactly.
	s := newSim(t, 8, 4, 16, nil)
	c := quantum.NewCircuit(8)
	for q := 0; q < 8; q++ {
		c.H(q)
	}
	for q := 0; q < 8; q++ {
		c.X(q)
	}
	compareToReference(t, s, c, 1e-12)
}

func TestControlsInEverySegment(t *testing.T) {
	// 9 qubits, 8 ranks (3 rank bits), 2 block bits, 4 offset bits:
	// CNOTs with controls and targets in all segment combinations.
	c := quantum.NewCircuit(9)
	for q := 0; q < 9; q++ {
		c.H(q)
	}
	pairs := [][2]int{
		{0, 1}, {0, 5}, {0, 8}, // control in offset
		{4, 0}, {4, 5}, {4, 8}, // control in block
		{7, 0}, {7, 4}, {7, 8}, // control in rank
		{8, 0}, {5, 7},
	}
	for _, p := range pairs {
		c.CNOT(p[0], p[1])
	}
	c.Toffoli(0, 4, 8) // controls spanning offset+block, target in rank
	c.Toffoli(7, 8, 0) // controls in rank segment, target in offset
	s := newSim(t, 9, 8, 16, nil)
	compareToReference(t, s, c, 1e-12)
}

func TestQFTMatchesReference(t *testing.T) {
	s := newSim(t, 7, 4, 8, nil)
	compareToReference(t, s, quantum.QFT(7, 3), 1e-11)
}

func TestGroverMatchesReference(t *testing.T) {
	cir := quantum.Grover(5, 19, quantum.GroverOptimalIterations(5))
	s := newSim(t, cir.N, 2, 16, nil)
	compareToReference(t, s, cir, 1e-10)
}

func TestSupremacyMatchesReference(t *testing.T) {
	cir := quantum.Supremacy(3, 3, 8, 4)
	s := newSim(t, cir.N, 4, 16, nil)
	compareToReference(t, s, cir, 1e-11)
}

func TestQAOAMatchesReference(t *testing.T) {
	cir := quantum.QAOA(8, 2, 5)
	s := newSim(t, 8, 2, 32, nil)
	compareToReference(t, s, cir, 1e-11)
}

func TestUncompressedBaselineMatches(t *testing.T) {
	s := newSim(t, 8, 4, 16, func(c *Config) { c.Uncompressed = true })
	compareToReference(t, s, quantum.RandomCircuit(8, 100, 9), 1e-12)
	if s.Stats().CurrentFootprint < int64(MemoryRequirement(8)) {
		t.Fatalf("uncompressed footprint %d below state size", s.Stats().CurrentFootprint)
	}
}

func TestLossyFidelityWithinLedgerBound(t *testing.T) {
	// Force lossy compression with a tight budget; the measured
	// fidelity against the dense reference must respect the ledger.
	cir := quantum.QAOA(8, 2, 6)
	s := newSim(t, 8, 2, 32, func(c *Config) {
		c.MemoryBudget = 1024 // bytes per rank — forces escalation
	})
	if err := s.Run(cir); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FinalLevel == 0 {
		t.Fatal("budget did not force lossy compression")
	}
	bound := s.FidelityLowerBound()
	if bound >= 1 {
		t.Fatal("ledger did not move despite lossy compression")
	}
	ref := quantum.NewState(8)
	ref.ApplyCircuit(cir)
	got, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	f := quantum.FidelityVec(ref.Amps, got)
	// Normalize: lossy compression shrinks the norm slightly.
	n, err := s.Norm()
	if err != nil {
		t.Fatal(err)
	}
	f /= math.Sqrt(n)
	if f < bound-1e-9 {
		t.Fatalf("measured fidelity %v below ledger bound %v", f, bound)
	}
	if f > 1+1e-9 {
		t.Fatalf("fidelity %v > 1", f)
	}
}

func TestAdaptiveEscalationProgresses(t *testing.T) {
	s := newSim(t, 10, 1, 64, func(c *Config) { c.MemoryBudget = 512 })
	if err := s.Run(quantum.RandomCircuit(10, 150, 11)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Escalations == 0 || st.FinalLevel == 0 {
		t.Fatalf("no escalation under 512-byte budget: %+v", st)
	}
	if st.FinalLevel > len(DefaultErrorLevels) {
		t.Fatalf("level %d beyond configured levels", st.FinalLevel)
	}
}

func TestLedgerMatchesEq11(t *testing.T) {
	// With budget forcing level L for all gates, the ledger should be
	// close to (1-δ_L)^gates — and never above 1 or below the
	// all-gates-at-max-level worst case.
	s := newSim(t, 8, 1, 16, func(c *Config) { c.MemoryBudget = 1 }) // escalate immediately
	cir := quantum.RandomCircuit(8, 40, 13)
	if err := s.Run(cir); err != nil {
		t.Fatal(err)
	}
	led := s.FidelityLowerBound()
	worst := FidelityBound(constantBounds(1e-1, len(cir.Gates)))
	if led < worst-1e-12 {
		t.Fatalf("ledger %v below worst case %v", led, worst)
	}
	if led >= 1 {
		t.Fatalf("ledger %v did not decrease", led)
	}
}

func constantBounds(d float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = d
	}
	return b
}

func TestFidelityCurveMatchesClosedForm(t *testing.T) {
	for _, d := range DefaultErrorLevels {
		curve := FidelityCurve(d, 100)
		for i, f := range curve {
			want := math.Pow(1-d, float64(i+1))
			if math.Abs(f-want) > 1e-12 {
				t.Fatalf("curve(%g)[%d] = %v, want %v", d, i, f, want)
			}
		}
	}
}

func TestStateNormPreservedLossless(t *testing.T) {
	s := newSim(t, 8, 4, 16, nil)
	if err := s.Run(quantum.RandomCircuit(8, 60, 15)); err != nil {
		t.Fatal(err)
	}
	n, err := s.Norm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("norm = %v", n)
	}
}

func TestAmplitudeAccess(t *testing.T) {
	s := newSim(t, 6, 2, 8, nil)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	a0, err := s.Amplitude(0)
	if err != nil {
		t.Fatal(err)
	}
	a63, err := s.Amplitude(63)
	if err != nil {
		t.Fatal(err)
	}
	w := 1 / math.Sqrt2
	if cmplx.Abs(a0-complex(w, 0)) > 1e-12 || cmplx.Abs(a63-complex(w, 0)) > 1e-12 {
		t.Fatalf("GHZ amplitudes: %v %v", a0, a63)
	}
	if _, err := s.Amplitude(64); err == nil {
		t.Fatal("out-of-range amplitude accepted")
	}
}

func TestSetBasisState(t *testing.T) {
	s := newSim(t, 6, 2, 8, nil)
	if err := s.SetBasisState(37); err != nil {
		t.Fatal(err)
	}
	a, err := s.Amplitude(37)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(a-1) > 1e-12 {
		t.Fatalf("amp(37) = %v", a)
	}
	n, _ := s.Norm()
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("norm = %v", n)
	}
	if err := s.SetBasisState(64); err == nil {
		t.Fatal("out-of-range basis state accepted")
	}
}

func TestRunAccumulatesAcrossCalls(t *testing.T) {
	s := newSim(t, 4, 2, 4, nil)
	if err := s.Run(quantum.NewCircuit(4).H(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(quantum.NewCircuit(4).CNOT(0, 1)); err != nil {
		t.Fatal(err)
	}
	ref := quantum.NewState(4)
	ref.ApplyCircuit(quantum.NewCircuit(4).H(0).CNOT(0, 1))
	got, _ := s.FullState()
	for i := range got {
		if cmplx.Abs(got[i]-ref.Amps[i]) > 1e-12 {
			t.Fatalf("accumulated state wrong at %d", i)
		}
	}
	if s.GatesRun() != 2 {
		t.Fatalf("GatesRun = %d", s.GatesRun())
	}
}

func TestQubitMismatchRejected(t *testing.T) {
	s := newSim(t, 4, 1, 4, nil)
	if err := s.Run(quantum.NewCircuit(5).H(0)); err == nil {
		t.Fatal("mismatched circuit accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Qubits: 0},
		{Qubits: 70},
		{Qubits: 4, Ranks: 3},
		{Qubits: 4, Ranks: 32},      // no amplitudes per rank
		{Qubits: 4, BlockAmps: 3},   // not a power of two
		{Qubits: 4, CacheLines: -1}, // negative cache
		{Qubits: 4, ErrorLevels: []float64{1e-2, 1e-3}}, // not increasing
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestMemoryRequirementTable1(t *testing.T) {
	// Table 1: Theta's 0.8 PB → 45 qubits; Summit's 2.8 PB → 47.
	pb := math.Pow(2, 50)
	cases := []struct {
		mem  float64
		want int
	}{
		{2.8 * pb, 47},
		{1.38 * pb, 46},
		{1.31 * pb, 46},
		{0.8 * pb, 45},
	}
	for _, c := range cases {
		if got := MaxQubitsForMemory(c.mem); got != c.want {
			t.Fatalf("MaxQubitsForMemory(%g) = %d, want %d", c.mem, got, c.want)
		}
	}
	if MemoryRequirement(61) != math.Pow(2, 65) {
		t.Fatal("61-qubit requirement should be 32 EB = 2^65")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newSim(t, 8, 2, 16, nil)
	if err := s.Run(quantum.RandomCircuit(8, 80, 17)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CompressTime == 0 || st.DecompressTime == 0 {
		t.Fatalf("compression time not tracked: %+v", st)
	}
	if st.CurrentFootprint <= 0 || st.MaxFootprint < st.CurrentFootprint {
		t.Fatalf("footprint accounting wrong: %+v", st)
	}
	if st.Gates != 80 {
		t.Fatalf("gates = %d", st.Gates)
	}
	if s.CompressionRatio() <= 0 {
		t.Fatal("compression ratio not positive")
	}
}

func TestCommTimeOnlyWithCrossRankGates(t *testing.T) {
	// All gates on offset-segment qubits: no communication.
	s := newSim(t, 8, 4, 16, nil) // offset bits = 4
	c := quantum.NewCircuit(8)
	for i := 0; i < 10; i++ {
		c.H(i % 4).X((i + 1) % 4)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if moved := s.BytesMoved(); moved != 0 {
		t.Fatalf("local gates moved %d bytes across ranks", moved)
	}
	// A gate on the top qubit must communicate.
	s2 := newSim(t, 8, 4, 16, nil)
	if err := s2.Run(quantum.NewCircuit(8).H(7)); err != nil {
		t.Fatal(err)
	}
	if moved := s2.BytesMoved(); moved == 0 {
		t.Fatal("cross-rank gate moved no bytes")
	}
}
