package core

import (
	"fmt"
	"math"
	"math/rand"
)

// decodeBlob decompresses a stored block without touching rank stats —
// the inspection path, so reading the state never skews the Table 2
// time breakdown.
func (s *Simulator) decodeBlob(blob []byte, scratch []float64) error {
	if len(blob) == 0 {
		return fmt.Errorf("core: empty block")
	}
	switch blob[0] {
	case tagRaw:
		if len(blob) != 1+len(scratch)*8 {
			return fmt.Errorf("core: raw block size %d", len(blob))
		}
		for i := range scratch {
			scratch[i] = math.Float64frombits(leUint64(blob[1+i*8:]))
		}
		return nil
	case tagLossless:
		return s.cfg.Lossless.Decompress(scratch, blob[1:])
	case tagLossy:
		return s.cfg.Lossy.Decompress(scratch, blob[1:])
	default:
		return fmt.Errorf("core: unknown block tag %d", blob[0])
	}
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Amplitude returns ⟨idx|ψ⟩, decompressing only the containing block.
func (s *Simulator) Amplitude(idx uint64) (complex128, error) {
	if idx >= 1<<uint(s.cfg.Qubits) {
		return 0, fmt.Errorf("core: amplitude index %d out of range", idx)
	}
	r, b, o := s.locate(idx)
	scratch := make([]float64, 2*s.blockAmps())
	// Peek, not Get: inspection must not disturb the resident set a
	// tiered store keeps for the hot path.
	blob, err := s.ranks[r].store.Peek(b)
	if err != nil {
		return 0, err
	}
	if err := s.decodeBlob(blob, scratch); err != nil {
		return 0, err
	}
	return complex(scratch[2*o], scratch[2*o+1]), nil
}

// FullState decompresses the whole state vector (test scales only).
func (s *Simulator) FullState() ([]complex128, error) {
	if s.cfg.Qubits > 26 {
		return nil, fmt.Errorf("core: FullState on %d qubits would allocate %s", s.cfg.Qubits, fmtBytes(MemoryRequirement(s.cfg.Qubits)))
	}
	out := make([]complex128, 1<<uint(s.cfg.Qubits))
	scratch := make([]float64, 2*s.blockAmps())
	for r, rs := range s.ranks {
		for b := 0; b < s.blocksPerRank(); b++ {
			blob, err := rs.store.Peek(b)
			if err != nil {
				return nil, err
			}
			if err := s.decodeBlob(blob, scratch); err != nil {
				return nil, err
			}
			base := s.compose(r, b, 0)
			for o := 0; o < s.blockAmps(); o++ {
				out[base+uint64(o)] = complex(scratch[2*o], scratch[2*o+1])
			}
		}
	}
	return out, nil
}

// Norm returns Σ|aᵢ|² across the full compressed state.
func (s *Simulator) Norm() (float64, error) {
	var n float64
	scratch := make([]float64, 2*s.blockAmps())
	for _, rs := range s.ranks {
		for b := 0; b < s.blocksPerRank(); b++ {
			blob, err := rs.store.Peek(b)
			if err != nil {
				return 0, err
			}
			if err := s.decodeBlob(blob, scratch); err != nil {
				return 0, err
			}
			for _, v := range scratch {
				n += v * v
			}
		}
	}
	return n, nil
}

// ProbabilityOne returns P(qubit q = 1) without collapsing.
func (s *Simulator) ProbabilityOne(q int) (float64, error) {
	if q < 0 || q >= s.cfg.Qubits {
		return 0, fmt.Errorf("core: qubit %d out of range", q)
	}
	var p float64
	scratch := make([]float64, 2*s.blockAmps())
	for r, rs := range s.ranks {
		for b := 0; b < s.blocksPerRank(); b++ {
			base := s.compose(r, b, 0)
			if base&(1<<uint(q)) == 0 && q >= s.offsetBits {
				continue // whole block has q=0
			}
			blob, err := rs.store.Peek(b)
			if err != nil {
				return 0, err
			}
			if err := s.decodeBlob(blob, scratch); err != nil {
				return 0, err
			}
			for o := 0; o < s.blockAmps(); o++ {
				idx := base + uint64(o)
				if idx&(1<<uint(q)) == 0 {
					continue
				}
				re, im := scratch[2*o], scratch[2*o+1]
				p += re*re + im*im
			}
		}
	}
	return p, nil
}

// defaultSampleCacheBlocks sizes the decompressed-block LRU of the
// one-shot Sample convenience path; Sampler callers pick their own.
const defaultSampleCacheBlocks = 4

// Sample draws `shots` full-register outcomes from the compressed state
// without collapsing it, via a throwaway streaming Sampler — the state
// is never materialized, so sampling works at any register width. A
// nil rng falls back to the simulator's own seeded sampling stream, so
// deterministic sampling needs no caller-supplied randomness — and,
// because that stream is separate from the measurement-collapse stream,
// sampling never perturbs later measurement outcomes. Callers drawing
// repeatedly from an unchanged state should hold a NewSampler instead
// and amortize the CDF build.
func (s *Simulator) Sample(rng *rand.Rand, shots int) ([]uint64, error) {
	sp, err := s.NewSampler(defaultSampleCacheBlocks)
	if err != nil {
		return nil, err
	}
	return sp.Sample(rng, shots)
}

// Stats returns the aggregate across ranks, first refreshing each
// rank's footprint gauges and spill counters from its block store.
func (s *Simulator) Stats() Stats {
	var agg Stats
	for _, rs := range s.ranks {
		s.syncStoreStats(rs)
		agg = agg.Add(rs.stats)
	}
	return agg
}

// RankStats returns one rank's accounting.
func (s *Simulator) RankStats(r int) Stats {
	s.syncStoreStats(s.ranks[r])
	return s.ranks[r].stats
}

// CompressedFootprint returns the current total compressed bytes
// across ranks and both memory tiers.
func (s *Simulator) CompressedFootprint() int64 {
	var t int64
	for _, rs := range s.ranks {
		t += rs.store.Footprint()
	}
	return t
}

// CompressionRatio returns uncompressed-state-bytes over the current
// footprint.
func (s *Simulator) CompressionRatio() float64 {
	fp := s.CompressedFootprint()
	if fp == 0 {
		return 0
	}
	return MemoryRequirement(s.cfg.Qubits) / float64(fp)
}

// GatesRun returns the number of gates executed so far.
func (s *Simulator) GatesRun() int { return s.gatesRun }

// BytesMoved returns the cumulative cross-rank communication volume.
func (s *Simulator) BytesMoved() int64 { return s.bytesMoved }

// OverBudget reports whether, on any rank, a gate boundary found the
// compressed footprint above the memory budget with the §3.7 escalation
// ladder already exhausted — a whole gate ran at the loosest error
// bound and the state still did not fit, so the adaptive pipeline can
// no longer trade fidelity for space. The latch clears on Reset.
func (s *Simulator) OverBudget() bool {
	for _, rs := range s.ranks {
		if rs.overBudget {
			return true
		}
	}
	return false
}

func fmtBytes(b float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB", "PB", "EB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.1f %s", b, units[i])
}
