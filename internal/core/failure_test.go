package core

import (
	"bytes"
	"strings"
	"testing"

	"qcsim/internal/compress"
	"qcsim/internal/compress/szlike"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/quantum"
)

// Failure injection: the engine must fail loudly and cleanly, never
// silently corrupt state.

func TestCorruptedBlockFailsRun(t *testing.T) {
	s := newSim(t, 6, 2, 8, nil)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a stored block through the same store seam production
	// code uses (store-returned slices are read-only views, so the
	// corruption goes in as a fresh blob).
	blob, err := s.ranks[1].store.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	for i := range bad {
		bad[i] ^= 0xA5
	}
	if err := s.ranks[1].store.Put(0, bad); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(quantum.NewCircuit(6).H(0)); err == nil {
		t.Fatal("run succeeded over a corrupted block")
	}
}

func TestCorruptedBlockFailsInspection(t *testing.T) {
	s := newSim(t, 6, 1, 8, nil)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	if err := s.ranks[0].store.Put(2, []byte{0xFF, 0x00}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FullState(); err == nil {
		t.Fatal("FullState succeeded over garbage block")
	}
	if _, err := s.Norm(); err == nil {
		t.Fatal("Norm succeeded over garbage block")
	}
	if _, err := s.Amplitude(uint64(2 * 8)); err == nil {
		t.Fatal("Amplitude succeeded over garbage block")
	}
}

func TestCheckpointCodecMismatch(t *testing.T) {
	// A checkpoint written with one lossy codec cannot silently load
	// into a simulator configured with another: block magics differ.
	// A 1-byte budget escalates at the first gate boundary, so the
	// state is guaranteed to hold lossy (xortrunc-tagged) blocks by the
	// end of the run — no geometry or codec tuning can skip this path.
	mkA := func() *Simulator {
		s, err := New(Config{Qubits: 6, Ranks: 1, BlockAmps: 8, Seed: 1,
			Lossy: xortrunc.New(), MemoryBudget: 1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mkA()
	if err := a.Run(quantum.QFT(6, 4)); err != nil {
		t.Fatal(err)
	}
	if a.Stats().FinalLevel == 0 {
		t.Fatal("1-byte budget failed to force lossy blocks; mismatch path not exercised")
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Qubits: 6, Ranks: 1, BlockAmps: 8, Seed: 1,
		Lossy: szlike.NewA(), MemoryBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checkpoint with mismatched lossy codec loaded")
	} else if !strings.Contains(err.Error(), "undecodable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEmptyBlockRejected(t *testing.T) {
	s := newSim(t, 4, 1, 4, nil)
	if err := s.ranks[0].store.Put(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FullState(); err == nil {
		t.Fatal("nil block accepted")
	}
}

// failingCodec always errors on compression, to exercise the engine's
// error path out of mpi.Run.
type failingCodec struct{ compress.Codec }

func (failingCodec) Compress([]byte, []float64, compress.Options) ([]byte, error) {
	return nil, compress.ErrCorrupt
}

func TestCompressorFailurePropagates(t *testing.T) {
	_, err := New(Config{Qubits: 4, Ranks: 2, BlockAmps: 4, Lossless: failingCodec{}})
	if err == nil {
		t.Fatal("construction succeeded with a failing codec")
	}
}

func TestRunFailurePropagatesFromRank(t *testing.T) {
	// Build a healthy sim, then swap in a failing lossy codec and force
	// escalation: the rank panic must surface as an error, not a hang.
	s := newSim(t, 6, 2, 8, func(c *Config) {
		c.MemoryBudget = 1
		c.Lossy = failingCodec{}
	})
	err := s.Run(quantum.QFT(6, 2))
	if err == nil {
		t.Fatal("run succeeded with failing lossy codec under budget pressure")
	}
}
