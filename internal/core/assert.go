package core

import (
	"fmt"
	"math"
)

// Statistical assertions for quantum program debugging — the full-state
// capability the paper motivates (§1, §2.2, citing Huang & Martonosi's
// statistical assertions): because the simulator holds the entire state,
// assertions about qubits can be checked mid-circuit without sampling a
// physical device.

// AssertClassical checks that qubit q reads `value` with probability at
// least 1-tol, i.e. the qubit is (approximately) classical in the
// computational basis.
func (s *Simulator) AssertClassical(q, value int, tol float64) error {
	p1, err := s.ProbabilityOne(q)
	if err != nil {
		return err
	}
	p := p1
	if value == 0 {
		p = 1 - p1
	}
	if p < 1-tol {
		return fmt.Errorf("%w: P(q%d=%d) = %.6f < %.6f", ErrAssertFailed, q, value, p, 1-tol)
	}
	return nil
}

// AssertSuperposition checks that qubit q is in an (approximately)
// uniform superposition: P(1) within tol of 1/2.
func (s *Simulator) AssertSuperposition(q int, tol float64) error {
	p1, err := s.ProbabilityOne(q)
	if err != nil {
		return err
	}
	if math.Abs(p1-0.5) > tol {
		return fmt.Errorf("%w: P(q%d=1) = %.6f, not within %.3f of 1/2", ErrAssertFailed, q, p1, tol)
	}
	return nil
}

// AssertProduct checks that qubits a and b are (approximately)
// unentangled in the computational basis by comparing the joint
// distribution against the product of marginals (total-variation
// distance ≤ tol). A maximally entangled pair fails with distance 1/2.
func (s *Simulator) AssertProduct(a, b int, tol float64) error {
	joint, err := s.jointDistribution(a, b)
	if err != nil {
		return err
	}
	pa := joint[2] + joint[3] // P(a=1)
	pb := joint[1] + joint[3] // P(b=1)
	var tv float64
	for i := 0; i < 4; i++ {
		qa, qb := 1-pa, 1-pb
		if i&2 != 0 {
			qa = pa
		}
		if i&1 != 0 {
			qb = pb
		}
		tv += math.Abs(joint[i] - qa*qb)
	}
	tv /= 2
	if tv > tol {
		return fmt.Errorf("%w: qubits %d,%d entangled (TV distance %.6f > %.6f)", ErrAssertFailed, a, b, tv, tol)
	}
	return nil
}

// jointDistribution returns [P(00), P(01), P(10), P(11)] over qubits
// (a, b), with a the high bit.
func (s *Simulator) jointDistribution(a, b int) ([4]float64, error) {
	var joint [4]float64
	if a == b || a < 0 || b < 0 || a >= s.cfg.Qubits || b >= s.cfg.Qubits {
		return joint, fmt.Errorf("%w (%d, %d)", ErrInvalidPair, a, b)
	}
	scratch := make([]float64, 2*s.blockAmps())
	for r, rs := range s.ranks {
		for blk := 0; blk < s.blocksPerRank(); blk++ {
			blob, err := rs.store.Peek(blk)
			if err != nil {
				return joint, err
			}
			if err := s.decodeBlob(blob, scratch); err != nil {
				return joint, err
			}
			base := s.compose(r, blk, 0)
			for o := 0; o < s.blockAmps(); o++ {
				idx := base + uint64(o)
				k := 0
				if idx&(1<<uint(a)) != 0 {
					k |= 2
				}
				if idx&(1<<uint(b)) != 0 {
					k |= 1
				}
				re, im := scratch[2*o], scratch[2*o+1]
				joint[k] += re*re + im*im
			}
		}
	}
	return joint, nil
}
