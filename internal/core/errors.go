package core

import "errors"

// Sentinels rooting the engine's validation and assertion failures, so
// the facade can translate them with errors.Is instead of matching
// message text. Everything fmt.Errorf builds in this package wraps one
// of these (or a sentinel declared next to its subsystem, like
// ErrSamplerStale).
var (
	// ErrAssertFailed roots every statistical-assertion failure
	// (AssertClassical, AssertSuperposition, AssertProduct).
	ErrAssertFailed = errors.New("core: assertion failed")

	// ErrInvalidPair reports a joint-distribution request over an
	// out-of-range or degenerate (a == b) qubit pair.
	ErrInvalidPair = errors.New("core: invalid qubit pair")

	// ErrZeroMass reports a sampler build over a state whose total
	// probability mass is zero (fully decohered by lossy compression).
	ErrZeroMass = errors.New("core: sampler: state has zero total mass")

	// ErrNegativeShots reports a negative shot count.
	ErrNegativeShots = errors.New("core: negative shot count")

	// ErrBatchMismatch roots every RunBatch validation failure: empty
	// or ragged batches, nil variants, width or shape divergence, and
	// configuration drift between variants.
	ErrBatchMismatch = errors.New("core: variant batch mismatch")
)
