package core

import (
	"math"
	"testing"

	"qcsim/internal/quantum"
)

func TestExpectationZBasis(t *testing.T) {
	s := newSim(t, 4, 2, 4, nil)
	if err := s.Run(quantum.NewCircuit(4).X(1)); err != nil {
		t.Fatal(err)
	}
	z0, _ := s.ExpectationZ(0)
	z1, _ := s.ExpectationZ(1)
	if math.Abs(z0-1) > 1e-12 || math.Abs(z1+1) > 1e-12 {
		t.Fatalf("⟨Z0⟩=%v ⟨Z1⟩=%v", z0, z1)
	}
	if _, err := s.ExpectationZ(9); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
}

func TestExpectationZSuperposition(t *testing.T) {
	s := newSim(t, 3, 1, 4, nil)
	if err := s.Run(quantum.NewCircuit(3).H(0)); err != nil {
		t.Fatal(err)
	}
	z, _ := s.ExpectationZ(0)
	if math.Abs(z) > 1e-12 {
		t.Fatalf("⟨Z⟩ of H|0⟩ = %v", z)
	}
}

func TestExpectationZZBellState(t *testing.T) {
	s := newSim(t, 4, 2, 4, nil)
	if err := s.Run(quantum.NewCircuit(4).H(0).CNOT(0, 1)); err != nil {
		t.Fatal(err)
	}
	zz, err := s.ExpectationZZ(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zz-1) > 1e-12 {
		t.Fatalf("⟨Z0Z1⟩ of Bell pair = %v, want 1 (perfect correlation)", zz)
	}
	// Anti-correlated pair: X on one side.
	s2 := newSim(t, 4, 2, 4, nil)
	if err := s2.Run(quantum.NewCircuit(4).H(0).CNOT(0, 1).X(1)); err != nil {
		t.Fatal(err)
	}
	zz2, _ := s2.ExpectationZZ(0, 1)
	if math.Abs(zz2+1) > 1e-12 {
		t.Fatalf("anti-correlated ⟨ZZ⟩ = %v", zz2)
	}
}

func TestMaxCutEnergyMatchesReference(t *testing.T) {
	// QAOA on a known graph: compare against the dense reference's
	// direct computation.
	n := 8
	edges := quantum.RandomRegularGraph(n, 4, 9)
	cir := quantum.QAOA(n, 2, 9)
	s := newSim(t, n, 2, 16, nil)
	if err := s.Run(cir); err != nil {
		t.Fatal(err)
	}
	cutEdges := make([]CutEdge, len(edges))
	for i, e := range edges {
		cutEdges[i] = CutEdge{e.U, e.V}
	}
	got, err := s.MaxCutEnergy(cutEdges)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: Σ_z P(z)·cut(z).
	ref := quantum.NewState(n)
	ref.ApplyCircuit(cir)
	var want float64
	for z := range ref.Amps {
		p := ref.Probability(uint64(z))
		cut := 0
		for _, e := range edges {
			if (z>>uint(e.U))&1 != (z>>uint(e.V))&1 {
				cut++
			}
		}
		want += p * float64(cut)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxCutEnergy = %v, reference %v", got, want)
	}
	if _, err := s.MaxCutEnergy([]CutEdge{{1, 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
}
