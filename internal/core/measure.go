package core

import (
	"math"
	"time"

	"qcsim/internal/mpi"
)

// measureRank implements intermediate measurement (the capability the
// paper highlights over tensor-network simulators, §1): every rank
// accumulates its partial P(q=1) over decompressed blocks, the total is
// allreduced, rank 0 draws the outcome, and all ranks collapse and
// recompress their blocks.
func (s *Simulator) measureRank(comm *mpi.Comm, rs *rankState, q, gi int) int {
	qInOffset := q < s.offsetBits
	qInBlock := !qInOffset && q < s.offsetBits+s.blockBits
	var offMask uint64
	var blkMask, rankMask int
	switch {
	case qInOffset:
		offMask = 1 << uint(q)
	case qInBlock:
		blkMask = 1 << uint(q-s.offsetBits)
	default:
		rankMask = 1 << uint(q-s.offsetBits-s.blockBits)
	}

	// Phase 1: partial probability of reading |1⟩.
	var p1 float64
	if rankMask == 0 || rs.id&rankMask != 0 {
		for b := range rs.blocks {
			if blkMask != 0 && b&blkMask == 0 {
				continue // whole block has q=0
			}
			if err := s.decompressBlock(rs, rs.blocks[b], rs.scratchX); err != nil {
				panic(err)
			}
			start := time.Now()
			for o := 0; o < s.blockAmps(); o++ {
				if offMask != 0 && uint64(o)&offMask == 0 {
					continue
				}
				re, im := rs.scratchX[2*o], rs.scratchX[2*o+1]
				p1 += re*re + im*im
			}
			rs.stats.ComputeTime += time.Since(start)
		}
	}
	total := comm.AllreduceSum(p1)
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1 // lossy compression can push the norm slightly past 1
	}

	// Phase 2: rank 0 draws the outcome; everyone learns it.
	var pick float64
	if comm.Rank() == 0 {
		if s.rng.Float64() < total {
			pick = 1
		}
	}
	pick = comm.Bcast(0, pick)
	outcome := int(pick)
	keep := total
	if outcome == 0 {
		keep = 1 - total
	}
	if keep <= 0 {
		// Degenerate numerical edge: force the only possible outcome.
		outcome = 1 - outcome
		keep = 1 - keep
	}
	scale := 1 / math.Sqrt(keep)

	// Phase 3: collapse and renormalize every block.
	for b := range rs.blocks {
		matchBlock := true
		if blkMask != 0 {
			bit := 0
			if b&blkMask != 0 {
				bit = 1
			}
			matchBlock = bit == outcome
		}
		matchRank := true
		if rankMask != 0 {
			bit := 0
			if rs.id&rankMask != 0 {
				bit = 1
			}
			matchRank = bit == outcome
		}
		if err := s.decompressBlock(rs, rs.blocks[b], rs.scratchX); err != nil {
			panic(err)
		}
		start := time.Now()
		for o := 0; o < s.blockAmps(); o++ {
			match := matchBlock && matchRank
			if match && offMask != 0 {
				bit := 0
				if uint64(o)&offMask != 0 {
					bit = 1
				}
				match = bit == outcome
			}
			if match {
				rs.scratchX[2*o] *= scale
				rs.scratchX[2*o+1] *= scale
			} else {
				rs.scratchX[2*o] = 0
				rs.scratchX[2*o+1] = 0
			}
		}
		rs.stats.ComputeTime += time.Since(start)
		blob, err := s.compressBlock(rs, rs.scratchX)
		if err != nil {
			panic(err)
		}
		s.updateBlock(rs, b, blob)
	}
	s.noteLevel(rs, gi)
	return outcome
}

// Measurements returns the outcomes of every measurement gate executed
// so far, in order.
func (s *Simulator) Measurements() []int {
	return append([]int(nil), s.measurements...)
}
