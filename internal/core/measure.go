package core

import (
	"fmt"
	"math"
	"time"

	"qcsim/internal/mpi"
)

// measureRank implements intermediate measurement (the capability the
// paper highlights over tensor-network simulators, §1): every rank
// accumulates its partial P(q=1) over decompressed blocks, the total is
// allreduced, rank 0 draws the outcome, and all ranks collapse and
// recompress their blocks. Both block sweeps fan out across the worker
// pool; the probability reduction keeps per-block partials and sums
// them in block order, so the drawn outcome is bit-identical for every
// worker count.
//
// Codec failures are returned, not panicked: a decompression error in
// the probability phase is agreed on collectively (an error-flag
// allreduce keeps every rank's collective sequence aligned) BEFORE the
// outcome is drawn, so no rank collapses anything and the
// pre-measurement state stays fully inspectable. A failure in the
// collapse phase is returned to RunControlled, whose sweep error
// barrier stops all ranks at the gate boundary.
func (s *Simulator) measureRank(comm mpi.Comm, rs *rankState, q, gi int) (int, error) {
	qInOffset := q < s.offsetBits
	qInBlock := !qInOffset && q < s.offsetBits+s.blockBits
	var offMask uint64
	var blkMask, rankMask int
	switch {
	case qInOffset:
		offMask = 1 << uint(q)
	case qInBlock:
		blkMask = 1 << uint(q-s.offsetBits)
	default:
		rankMask = 1 << uint(q-s.offsetBits-s.blockBits)
	}
	lvl := rs.level
	ba := s.blockAmps()

	// Phase 1: partial probability of reading |1⟩, one slot per block.
	partials := make([]float64, s.blocksPerRank())
	var phase1Err error
	if rankMask == 0 || rs.id&rankMask != 0 {
		// blkMask is a single bit, so "any set" equals the all-set
		// filter hintBlocks applies.
		s.hintBlocks(rs, blkMask, 0)
		phase1Err = s.forBlocks(rs, func(w *workerState, b int) error {
			if blkMask != 0 && b&blkMask == 0 {
				return nil // whole block has q=0
			}
			blob, err := rs.store.Get(b)
			if err != nil {
				return err
			}
			if err := s.decompressBlock(blob, w.x, &w.stats); err != nil {
				return err
			}
			start := time.Now()
			var p float64
			for o := 0; o < ba; o++ {
				if offMask != 0 && uint64(o)&offMask == 0 {
					continue
				}
				re, im := w.x[2*o], w.x[2*o+1]
				p += re*re + im*im
			}
			partials[b] = p
			w.stats.ComputeTime += time.Since(start)
			return nil
		})
	}
	// Agree on phase-1 failure before any collective consumes data and
	// before the outcome is drawn: every rank runs the same collective
	// sequence whether or not its own blocks decoded, and on failure all
	// ranks return together with the state untouched.
	var errFlag float64
	if phase1Err != nil {
		errFlag = 1
	}
	if comm.AllreduceSum(errFlag) != 0 {
		if phase1Err != nil {
			return 0, fmt.Errorf("core: measure qubit %d: %w", q, phase1Err)
		}
		return 0, errPeerRankFailed
	}
	var p1 float64
	for _, p := range partials {
		p1 += p
	}
	total := comm.AllreduceSum(p1)
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1 // lossy compression can push the norm slightly past 1
	}

	// Phase 2: rank 0 draws the outcome; everyone learns it.
	var pick float64
	if comm.Rank() == 0 {
		if s.rng.Float64() < total {
			pick = 1
		}
	}
	pick = comm.Bcast(0, pick)
	outcome := int(pick)
	keep := total
	if outcome == 0 {
		keep = 1 - total
	}
	if keep <= 0 {
		// Degenerate numerical edge: force the only possible outcome.
		outcome = 1 - outcome
		keep = 1 - keep
	}
	scale := 1 / math.Sqrt(keep)

	// Phase 3: collapse and renormalize every block.
	s.hintBlocks(rs, 0, 0)
	err := s.forBlocks(rs, func(w *workerState, b int) error {
		matchBlock := true
		if blkMask != 0 {
			bit := 0
			if b&blkMask != 0 {
				bit = 1
			}
			matchBlock = bit == outcome
		}
		matchRank := true
		if rankMask != 0 {
			bit := 0
			if rs.id&rankMask != 0 {
				bit = 1
			}
			matchRank = bit == outcome
		}
		blob, err := rs.store.Get(b)
		if err != nil {
			return err
		}
		if err := s.decompressBlock(blob, w.x, &w.stats); err != nil {
			return err
		}
		start := time.Now()
		for o := 0; o < ba; o++ {
			match := matchBlock && matchRank
			if match && offMask != 0 {
				bit := 0
				if uint64(o)&offMask != 0 {
					bit = 1
				}
				match = bit == outcome
			}
			if match {
				w.x[2*o] *= scale
				w.x[2*o+1] *= scale
			} else {
				w.x[2*o] = 0
				w.x[2*o+1] = 0
			}
		}
		w.stats.ComputeTime += time.Since(start)
		out, err := s.compressBlock(lvl, w.x, &w.stats)
		if err != nil {
			return err
		}
		return s.updateBlock(rs, b, out)
	})
	if err != nil {
		return 0, fmt.Errorf("core: collapse after measuring qubit %d: %w", q, err)
	}
	s.noteLevel(rs, gi, lvl)
	s.maybeEscalate(rs)
	return outcome, nil
}

// Measurements returns the outcomes of every measurement gate executed
// so far, in order.
func (s *Simulator) Measurements() []int {
	return append([]int(nil), s.measurements...)
}

// MeasurementCount returns how many measurement outcomes have been
// recorded, without copying the log.
func (s *Simulator) MeasurementCount() int { return len(s.measurements) }
