package core

import (
	"qcsim/internal/quantum"
)

// The sweep scheduler: the paper's cost model (§3.1) pays a full
// decompress → apply → recompress pass over every compressed block for
// every gate, which is why its Table 2 time is dominated by codec work.
// Gate fusion (FuseGates) only merges same-qubit runs; a layer of
// single-qubit gates on different qubits — the common shape of
// Grover/QAOA layers — still pays one codec round trip per gate. But any
// gate whose target and controls all address offset bits acts
// identically on every block, so a run of k such gates can share one
// codec round trip per block: decompress once, apply all k unitaries to
// the scratch buffer, recompress once. Under the lossless codec the
// result is bit-identical to gate-at-a-time execution (decompress ∘
// compress is exact, so eliding the intermediate round trips changes no
// bits); under lossy codecs the state sees FEWER truncations, and the
// fidelity ledger charges one (1-δ) factor per sweep instead of per
// gate — the Eq. 11 bound only tightens.

// sweepsEnabled reports whether RunControlled may batch block-local
// runs. A live noise channel forces gate-at-a-time execution: the
// depolarizing draw happens after every gate, and an injected Pauli must
// observe the state with the preceding gate already applied. A
// Prob == 0 channel can never fire, so it does not cost the batching.
func (s *Simulator) sweepsEnabled() bool {
	return !s.cfg.DisableSweeps && !s.noiseActive()
}

// localGate is one gate of a sweep, pre-split into the offset-segment
// masks the inner loop needs (the planner guarantees no block- or
// rank-segment bits are involved).
type localGate struct {
	tMask   int
	offCtrl uint64
	u       quantum.Matrix2
}

// applySweepRank executes a block-local sweep of k gates on this rank's
// blocks in a single codec pass per block: decompress once, apply all k
// unitaries in circuit order, recompress once. The block loop fans out
// across the worker pool exactly like applyLocal; the block cache is
// keyed on the whole sweep (signature of the full gate run), so the
// §3.4 redundancy shortcut still applies, now amortizing k gates per
// hit. The fidelity ledger and the §3.7 escalation check are charged
// once per sweep — matching the single recompression that actually
// happened — against gate index giLedger (the sweep's last gate).
func (s *Simulator) applySweepRank(rs *rankState, gates []quantum.Gate, giLedger int) error {
	lvl := rs.level
	sig := quantum.SweepSignature(gates)
	ba := s.blockAmps()
	k := len(gates)
	lg := make([]localGate, k)
	for i, g := range gates {
		offCtrl, _, _ := s.splitControls(g.Controls)
		lg[i] = localGate{tMask: 1 << uint(g.Target), offCtrl: offCtrl, u: g.U}
	}
	err := s.runBlockPass(rs, sig, lvl, 0, int64(k-1), func(x []float64) {
		for _, g := range lg {
			for base := 0; base < ba; base += g.tMask << 1 {
				for o := base; o < base+g.tMask; o++ {
					if uint64(o)&g.offCtrl != g.offCtrl {
						continue
					}
					applyPair(g.u, x, o, o|g.tMask)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	rs.stats.Sweeps++
	rs.stats.SweepGates += k
	s.noteLevel(rs, giLedger, lvl)
	s.maybeEscalate(rs)
	return nil
}
