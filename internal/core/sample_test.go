package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"qcsim/internal/quantum"
)

// linearScanSample reimplements the pre-streaming Sample path as the
// reference for the bit-identity property: materialize the full vector,
// then compare each raw uniform draw against the un-normalized running
// mass in global index order — including the fall-through-to-0 bug the
// streaming sampler fixes, which is exactly what the bias regression
// test below exercises.
func linearScanSample(t *testing.T, s *Simulator, rng *rand.Rand, shots int) []uint64 {
	t.Helper()
	amps, err := s.FullState()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, shots)
	for k := range out {
		r := rng.Float64()
		var acc float64
		for i, a := range amps {
			acc += real(a)*real(a) + imag(a)*imag(a)
			if r < acc {
				out[k] = uint64(i)
				break
			}
		}
	}
	return out
}

// TestSamplerMatchesLinearScan: for the same seed the streaming sampler
// must select the same outcomes as the old full-vector scan, across the
// target-segment geometries, worker counts, and block storage codecs
// (raw, flate, flate+shuffle) — the property that gated swapping the
// Sample implementation.
func TestSamplerMatchesLinearScan(t *testing.T) {
	codecs := []struct {
		name  string
		extra func(*Config)
	}{
		{"lossless", nil},
		{"uncompressed", func(c *Config) { c.Uncompressed = true }},
		// A tight spill RAM budget forces the sampler's sorted-draw
		// prefetch path: same outcomes through the tiered store.
		{"spill", func(c *Config) {
			c.SpillDir = t.TempDir()
			c.SpillRAMBudget = 512
		}},
	}
	// A Hadamard layer plus a random tail: spreads mass across every
	// block while mixing single-qubit, cross-block, and cross-rank gates.
	cir := quantum.RandomCircuit(8, 24, 7)
	for _, geo := range geometries {
		for _, workers := range []int{1, 3} {
			for _, codec := range codecs {
				s := newSim(t, 8, geo.ranks, geo.blockAmps, func(c *Config) {
					c.Workers = workers
					if codec.extra != nil {
						codec.extra(c)
					}
				})
				if err := s.Run(cir); err != nil {
					t.Fatal(err)
				}
				const shots = 64
				ref := linearScanSample(t, s, rand.New(rand.NewSource(42)), shots)
				got, err := s.Sample(rand.New(rand.NewSource(42)), shots)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s/workers=%d/%s: shot %d: streaming %d, linear scan %d",
							geo.name, workers, codec.name, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestSamplerMatchesSampleStream: Sample with a nil rng must keep using
// the simulator's dedicated seeded sampling stream across calls, as the
// old path did.
func TestSamplerMatchesSampleStream(t *testing.T) {
	mk := func() *Simulator {
		s := newSim(t, 6, 1, 8, nil)
		if err := s.Run(quantum.GHZ(6)); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	av1, err := a.Sample(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	av2, err := a.Sample(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := b.Sample(nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bv {
		var want uint64
		if i < 10 {
			want = av1[i]
		} else {
			want = av2[i-10]
		}
		if bv[i] != want {
			t.Fatalf("shot %d: split calls drew %d, single call %d", i, want, bv[i])
		}
	}
}

// oddSupportLossyState builds a state whose support is exactly the odd
// basis indices (X on qubit 0, H everywhere else) under a deliberately
// coarse lossy codec, so the compressed norm lands well below 1 while
// the amplitude of |0...0⟩ stays exactly zero. Any sampled even index —
// in particular 0 — can only come from the fall-through bug.
func oddSupportLossyState(t *testing.T) *Simulator {
	t.Helper()
	s := newSim(t, 6, 1, 8, func(c *Config) {
		c.MemoryBudget = 1 // escalate at the first gate boundary
		c.ErrorLevels = []float64{0.4}
	})
	c := quantum.NewCircuit(6).X(0)
	for q := 1; q < 6; q++ {
		c.H(q)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	// Validate the scenario really exercises the bias: mass must have
	// been shed, and index 0 must carry none of it.
	norm, err := s.Norm()
	if err != nil {
		t.Fatal(err)
	}
	if norm >= 0.99 {
		t.Fatalf("lossy codec shed no mass (norm %v); bias scenario void", norm)
	}
	if a0, err := s.Amplitude(0); err != nil || a0 != 0 {
		t.Fatalf("amplitude(0) = %v, %v; want exactly 0", a0, err)
	}
	return s
}

// TestSampleLossyNormBiasFixed is the regression test for the
// fall-through bias: under a lossy codec the old linear scan resolved
// every draw past the accumulated (sub-1) mass to basis state 0,
// inflating |0...0⟩ in every lossy histogram. The reference
// implementation must reproduce that bias on this state (proving the
// scenario bites), and the streaming sampler must be structurally free
// of it: normalized draws can never land past the total mass.
func TestSampleLossyNormBiasFixed(t *testing.T) {
	s := oddSupportLossyState(t)
	const shots = 512
	ref := linearScanSample(t, s, rand.New(rand.NewSource(11)), shots)
	biased := 0
	for _, v := range ref {
		if v%2 == 0 {
			biased++
		}
	}
	if biased == 0 {
		t.Fatal("pre-fix reference produced no biased outcomes; scenario does not exercise the bug")
	}
	got, err := s.Sample(rand.New(rand.NewSource(11)), shots)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v%2 == 0 {
			t.Fatalf("shot %d: sampled even index %d, which has zero amplitude (lossy fall-through bias)", i, v)
		}
	}
	sp, err := s.NewSampler(2)
	if err != nil {
		t.Fatal(err)
	}
	if tm := sp.TotalMass(); tm >= 0.99 || tm <= 0 {
		t.Fatalf("TotalMass = %v, want the shed-mass norm in (0, 0.99)", tm)
	}
}

// TestSamplerStaleness: a Sampler is bound to the state it was built
// from; every mutation route (Run, Reset, Load) must invalidate it.
func TestSamplerStaleness(t *testing.T) {
	s := newSim(t, 6, 2, 8, nil)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := s.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		do   func() error
	}{
		{"run", func() error { return s.Run(quantum.NewCircuit(6).H(0)) }},
		{"reset", s.Reset},
		{"load", func() error { return s.Load(bytes.NewReader(ckpt.Bytes())) }},
	}
	for _, m := range mutate {
		sp, err := s.NewSampler(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Sample(nil, 4); err != nil {
			t.Fatalf("%s: fresh sampler failed: %v", m.name, err)
		}
		if err := m.do(); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if _, err := sp.Sample(nil, 4); !errors.Is(err, ErrSamplerStale) {
			t.Fatalf("%s: sampled from a stale sampler (err %v)", m.name, err)
		}
	}
}

// TestSamplerRejectsBadInput: negative shots and zero-mass states must
// error, not panic or mislead.
func TestSamplerRejectsBadInput(t *testing.T) {
	s := newSim(t, 4, 1, 4, nil)
	if _, err := s.Sample(nil, -1); err == nil {
		t.Fatal("negative shot count accepted")
	}
	sp, err := s.NewSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sp.Sample(nil, 0); err != nil || len(out) != 0 {
		t.Fatalf("zero shots: %v, %v", out, err)
	}
	// Corrupt a block: the CDF build must surface the codec error.
	if err := s.ranks[0].store.Put(1, []byte{0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewSampler(1); err == nil {
		t.Fatal("sampler built over a corrupt block")
	}
}

// TestSamplerLargeRegister: the point of the streaming path — drawing
// shots from a register whose state vector (4 GB at 28 qubits) could
// never be materialized. |0...0⟩ and a far-up basis state must both
// sample exactly, through compressed blocks alone.
func TestSamplerLargeRegister(t *testing.T) {
	s, err := New(Config{Qubits: 28, Ranks: 1, BlockAmps: 4096, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const target = uint64(1)<<27 | 12345
	if err := s.SetBasisState(target); err != nil {
		t.Fatal(err)
	}
	sp, err := s.NewSampler(2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sp.Sample(nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != target {
			t.Fatalf("shot %d: got %d, want %d", i, v, target)
		}
	}
	if tm := sp.TotalMass(); tm != 1 {
		t.Fatalf("TotalMass = %v on a basis state, want exactly 1", tm)
	}
}

// TestSamplerCacheAmortizes: clustered shots must hit the decoded-block
// LRU instead of re-running the codec. Observed indirectly: sampling a
// single-block-support state with a 1-line cache must still work and
// return only in-support outcomes.
func TestSamplerCacheAmortizes(t *testing.T) {
	s := newSim(t, 8, 1, 16, nil)
	if err := s.Run(quantum.NewCircuit(8).H(0).H(1)); err != nil {
		t.Fatal(err)
	}
	sp, err := s.NewSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sp.Sample(rand.New(rand.NewSource(3)), 256)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v >= 4 {
			t.Fatalf("shot %d: outcome %d outside the H(0)H(1) support", i, v)
		}
	}
}
