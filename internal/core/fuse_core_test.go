package core

import (
	"math/cmplx"
	"testing"

	"qcsim/internal/quantum"
)

func TestFuseGatesEquivalentState(t *testing.T) {
	cir := quantum.RandomCircuit(8, 200, 19)
	plain := newSim(t, 8, 2, 16, nil)
	fused := newSim(t, 8, 2, 16, func(c *Config) { c.FuseGates = true })
	if err := plain.Run(cir); err != nil {
		t.Fatal(err)
	}
	if err := fused.Run(cir); err != nil {
		t.Fatal(err)
	}
	a, _ := plain.FullState()
	b, _ := fused.FullState()
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-11 {
			t.Fatalf("fusion changed amplitude %d by %g", i, cmplx.Abs(a[i]-b[i]))
		}
	}
	if fused.GatesRun() >= plain.GatesRun() {
		t.Fatalf("fusion did not reduce executed gates: %d vs %d", fused.GatesRun(), plain.GatesRun())
	}
}

func TestFuseGatesImprovesLedger(t *testing.T) {
	// Fewer executed gates ⇒ fewer (1-δ) factors under a tight budget.
	cir := quantum.RandomCircuit(8, 150, 23)
	mk := func(fuse bool) *Simulator {
		return newSim(t, 8, 1, 32, func(c *Config) {
			c.MemoryBudget = 1 // force max escalation immediately
			c.FuseGates = fuse
		})
	}
	plain, fused := mk(false), mk(true)
	if err := plain.Run(cir); err != nil {
		t.Fatal(err)
	}
	if err := fused.Run(cir); err != nil {
		t.Fatal(err)
	}
	if fused.FidelityLowerBound() <= plain.FidelityLowerBound() {
		t.Fatalf("fused ledger %v not above plain %v",
			fused.FidelityLowerBound(), plain.FidelityLowerBound())
	}
}
