package core

import (
	"fmt"

	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// NoiseModel implements the paper's future-work direction (§6): folding
// stochastic device noise into the simulation alongside the (already
// uncorrelated) compression error. It is a quantum-trajectories
// depolarizing channel: after each gate, with probability Prob, a
// uniformly random Pauli is applied to the gate's target qubit.
type NoiseModel struct {
	// Prob is the per-gate depolarizing probability in [0, 1).
	Prob float64
}

// SetNoise installs (or, with nil, removes) the noise model. Every rank
// derives the same Pauli insertions from its deterministic noise stream,
// so the trajectory is consistent across the distributed state.
func (s *Simulator) SetNoise(m *NoiseModel) error {
	if m != nil && (m.Prob < 0 || m.Prob >= 1) {
		return fmt.Errorf("core: depolarizing probability %v out of [0,1)", m.Prob)
	}
	s.noise = m
	return nil
}

// noiseActive reports whether the depolarizing channel can ever fire.
// A Prob == 0 model is equivalent to no model at all, so the per-gate
// error-flag allreduce and the two rng draws the channel would cost are
// skipped entirely — the execution path (collectives, noise stream,
// stats) is identical to a nil model.
func (s *Simulator) noiseActive() bool {
	return s.noise != nil && s.noise.Prob > 0
}

// applyNoiseRank draws from the rank's noise stream — identical on every
// rank — and applies the chosen Pauli as a regular gate. All ranks draw
// the same number of variates per gate whether or not the Pauli fires,
// keeping the streams aligned. The draws happen here, before any block
// fan-out, and the Pauli application goes through the same worker-pool
// gate path as ordinary gates — no randomness is ever consumed inside a
// worker, which is what keeps the trajectory independent of Workers. A
// codec failure propagates to RunControlled's sweep error barrier like
// any other gate error.
func (s *Simulator) applyNoiseRank(comm mpi.Comm, rs *rankState, g quantum.Gate, gi int) error {
	u := rs.rng.Float64()
	pick := rs.rng.Intn(3)
	if u >= s.noise.Prob {
		return nil
	}
	var pauli quantum.Gate
	switch pick {
	case 0:
		pauli = quantum.Gate{Name: "noise-x", Target: g.Target, U: quantum.MatX}
	case 1:
		pauli = quantum.Gate{Name: "noise-y", Target: g.Target, U: quantum.MatY}
	default:
		pauli = quantum.Gate{Name: "noise-z", Target: g.Target, U: quantum.MatZ}
	}
	return s.applyGateRank(comm, rs, pauli, gi)
}
