package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"qcsim/internal/blockstore"
	"qcsim/internal/compress"
	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// Block storage tags: the first byte of every stored block identifies
// how it was compressed so checkpoints are self-describing.
const (
	tagLossless byte = 0
	tagLossy    byte = 1
	tagRaw      byte = 2
)

// Simulator is the compressed-state engine. Construct with New, run
// circuits with Run (repeatable — state persists across calls), inspect
// with Amplitude/FullState/Stats, persist with Save/Load.
type Simulator struct {
	cfg Config

	// Geometry (paper Fig. 3): global amplitude index =
	// [rank bits | block bits | offset bits].
	offsetBits int // log2(amplitudes per block)
	blockBits  int // log2(blocks per rank)
	rankBits   int // log2(ranks)

	ranks []*rankState

	gatesRun     int
	measurements []int
	bytesMoved   int64
	rng          *rand.Rand
	// sampleRng is the dedicated stream Sample falls back to when the
	// caller passes no rng. Keeping it separate from rng (which drives
	// measurement collapse) makes sampling side-effect-free: drawing
	// samples never perturbs later measurement outcomes.
	sampleRng *rand.Rand

	// ledger is the fidelity lower bound Π(1-δᵢ) over executed gates
	// (Eq. 11).
	ledger float64

	// version counts state mutations (runs, resets, checkpoint loads) so
	// a Sampler can detect that its CDF no longer describes the state.
	version uint64

	// gateLevel[gi] is the max error level any rank used while
	// executing gate gi of the current Run (atomic access).
	gateLevel []uint32

	noise *NoiseModel
}

// rankState is one rank's share: a block store holding nb compressed
// blocks plus a pool of worker scratch pairs (the MCDRAM working set
// of Eq. 8, one copy per worker). The store is internally
// synchronized and owns the footprint accounting; block slots need no
// further coordination — during one gate each block index is owned by
// exactly one worker.
type rankState struct {
	id      int
	store   blockstore.Store
	workers []*workerState
	level   int
	cache   *blockCache
	stats   Stats
	rng     *rand.Rand // per-rank noise stream (deterministic)
	// storeBase/storeAcc baseline the store's cumulative spill
	// counters against the rank Stats lifecycle: Reset zeroes
	// rs.stats but keeps the store, so counters report
	// acc + (store now − base); a checkpoint Load swaps the store,
	// folding the old one's tally into acc first.
	storeBase blockstore.Stats
	storeAcc  blockstore.Stats
	// overBudget latches when a gate boundary finds the footprint above
	// the memory budget with no escalation level left — a whole gate
	// ran at the loosest bound and the state still did not fit.
	overBudget bool
}

// workerState is one worker's private slice of the rank working set: a
// scratch buffer pair plus a stats shard that is merged into the rank
// totals after every fan-out (so the Table 2 accounting matches the
// sequential engine without any per-block locking). Buffers beyond
// worker 0's are allocated on first schedule, not in New — a simulator
// that never fans out (or a machine-wide default pool that the block
// count keeps from ever filling) pays for exactly one Eq. 8 pair, the
// same as the sequential engine.
type workerState struct {
	x, y  []float64
	stats Stats
}

// ensure allocates the worker's scratch pair on first use.
func (w *workerState) ensure(n int) {
	if w.x == nil {
		w.x = make([]float64, n)
		w.y = make([]float64, n)
	}
}

// w0 returns the worker whose buffers the sequential code paths
// (Reset, cross-rank exchange, checkpointing) borrow.
func (rs *rankState) w0() *workerState { return rs.workers[0] }

// New builds a Simulator initialized to |0...0⟩.
func New(cfg Config) (*Simulator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:       cfg,
		rankBits:  bits.TrailingZeros(uint(cfg.Ranks)),
		ledger:    1,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sampleRng: SampleStream(cfg.Seed),
	}
	perRank := cfg.Qubits - s.rankBits
	s.offsetBits = bits.TrailingZeros(uint(cfg.BlockAmps))
	if s.offsetBits > perRank {
		s.offsetBits = perRank
	}
	s.blockBits = perRank - s.offsetBits

	s.ranks = make([]*rankState, cfg.Ranks)
	for r := range s.ranks {
		rs := &rankState{
			id:      r,
			workers: make([]*workerState, cfg.Workers),
			cache:   newBlockCache(cfg.CacheLines),
			// The noise stream must be IDENTICAL on every rank: each
			// rank draws the same variates per gate, so all ranks
			// agree on whether (and which) Pauli fires — otherwise a
			// cross-rank noise gate deadlocks half the pairs.
			rng: rand.New(rand.NewSource(cfg.Seed ^ 0x9E3779B9)),
		}
		store, err := s.newStore(r)
		if err != nil {
			s.Close()
			return nil, err
		}
		rs.store = store
		for w := range rs.workers {
			rs.workers[w] = &workerState{}
		}
		// Worker 0's pair is the one the sequential paths (Reset,
		// cross-rank exchange) borrow; it always exists.
		rs.workers[0].ensure(2 * s.blockAmps())
		s.ranks[r] = rs
	}
	if err := s.Reset(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// newStore builds one rank's block table: the plain in-RAM table by
// default, the tiered RAM→disk store when the configuration enables
// spilling. Checkpoint Load uses it too, for its staging stores.
func (s *Simulator) newStore(rank int) (blockstore.Store, error) {
	nb := s.blocksPerRank()
	if !s.cfg.spillEnabled() {
		return blockstore.NewRAM(nb), nil
	}
	return blockstore.NewTiered(nb, s.cfg.SpillDir, fmt.Sprintf("rank%d", rank), s.cfg.SpillRAMBudget)
}

// Close releases the per-rank block stores — for a spill-enabled
// simulator, the spill files on disk. Idempotent; a no-op for the
// default in-RAM configuration. The simulator must not be used after
// Close.
func (s *Simulator) Close() error {
	var firstErr error
	for _, rs := range s.ranks {
		if rs == nil || rs.store == nil {
			continue
		}
		if err := rs.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// launcher returns the transport that runs the SPMD rank bodies: the
// configured one, defaulting to the in-process goroutine runtime.
func (s *Simulator) launcher() mpi.Launcher {
	if s.cfg.Launcher != nil {
		return s.cfg.Launcher
	}
	return mpi.Goroutines{}
}

// blockAmps returns the amplitudes per block.
func (s *Simulator) blockAmps() int { return 1 << uint(s.offsetBits) }

// blocksPerRank returns nb.
func (s *Simulator) blocksPerRank() int { return 1 << uint(s.blockBits) }

// Qubits returns the register width.
func (s *Simulator) Qubits() int { return s.cfg.Qubits }

// Config returns the effective (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Reset reinitializes the state to |0...0⟩, keeping stats at zero and
// the ledger at 1.
func (s *Simulator) Reset() error {
	s.version++
	for _, rs := range s.ranks {
		rs.level = 0
		rs.overBudget = false
		rs.stats = Stats{}
		// The store survives a Reset; re-baseline its cumulative spill
		// counters so the zeroed rank Stats start counting from here.
		rs.storeAcc = blockstore.Stats{}
		rs.storeBase = rs.store.Stats()
		for _, w := range rs.workers {
			w.stats = Stats{}
		}
		scratch := rs.w0().x
		for i := range scratch {
			scratch[i] = 0
		}
		// Every block except (rank 0, block 0) holds the same all-zero
		// content: compress it once and hand out copies, so a wide
		// register (2^28 amplitudes and beyond) initializes with at most
		// two codec calls per rank instead of one per block.
		zeroBlob, err := s.compressBlock(rs.level, scratch, &rs.stats)
		if err != nil {
			return err
		}
		for b := 0; b < s.blocksPerRank(); b++ {
			var blob []byte
			if rs.id == 0 && b == 0 {
				scratch[0] = 1 // amplitude of |0...0⟩
				blob, err = s.compressBlock(rs.level, scratch, &rs.stats)
				if err != nil {
					return err
				}
				scratch[0] = 0
			} else {
				blob = append([]byte(nil), zeroBlob...)
			}
			if err := rs.store.Put(b, blob); err != nil {
				return err
			}
		}
		s.syncStoreStats(rs)
		rs.stats.MaxFootprint = rs.stats.CurrentFootprint
		rs.stats.MaxResident = rs.stats.ResidentFootprint
	}
	s.ledger = 1
	s.gatesRun = 0
	s.measurements = nil
	return nil
}

// SetBasisState re-initializes to |idx⟩.
func (s *Simulator) SetBasisState(idx uint64) error {
	if idx >= 1<<uint(s.cfg.Qubits) {
		return fmt.Errorf("core: basis state %d out of range", idx)
	}
	if err := s.Reset(); err != nil {
		return err
	}
	if idx == 0 {
		return nil
	}
	r, b, o := s.locate(idx)
	rs := s.ranks[r]
	// Clear block (rank0,block0) then set the target block.
	zero := make([]float64, 2*s.blockAmps())
	blob0, err := s.compressBlock(s.ranks[0].level, zero, &s.ranks[0].stats)
	if err != nil {
		return err
	}
	if err := s.updateBlock(s.ranks[0], 0, blob0); err != nil {
		return err
	}
	zero[2*o] = 1
	blob, err := s.compressBlock(rs.level, zero, &rs.stats)
	if err != nil {
		return err
	}
	if err := s.updateBlock(rs, b, blob); err != nil {
		return err
	}
	s.maybeEscalate(s.ranks[0])
	if rs != s.ranks[0] {
		s.maybeEscalate(rs)
	}
	return nil
}

// locate splits a global amplitude index into (rank, block, offset) per
// the paper's Fig. 3 segmentation.
func (s *Simulator) locate(idx uint64) (rank, block, offset int) {
	offset = int(idx & uint64(s.blockAmps()-1))
	block = int(idx >> uint(s.offsetBits) & uint64(s.blocksPerRank()-1))
	rank = int(idx >> uint(s.offsetBits+s.blockBits))
	return rank, block, offset
}

// compose rebuilds a global index from segments.
func (s *Simulator) compose(rank, block, offset int) uint64 {
	return uint64(rank)<<uint(s.offsetBits+s.blockBits) |
		uint64(block)<<uint(s.offsetBits) | uint64(offset)
}

// compressBlock encodes scratch under the given error level, appending
// the codec tag. Timing is charged to st — a worker's shard on the
// parallel paths, the rank totals on sequential ones.
func (s *Simulator) compressBlock(level int, scratch []float64, st *Stats) ([]byte, error) {
	start := time.Now()
	st.CompressCalls++
	defer func() { st.CompressTime += time.Since(start) }()
	if s.cfg.Uncompressed {
		blob := make([]byte, 1+len(scratch)*8)
		blob[0] = tagRaw
		for i, v := range scratch {
			binary.LittleEndian.PutUint64(blob[1+i*8:], math.Float64bits(v))
		}
		return blob, nil
	}
	if level == 0 {
		blob, err := s.cfg.Lossless.Compress([]byte{tagLossless}, scratch, compress.Options{Mode: compress.Lossless})
		if err != nil {
			return nil, fmt.Errorf("core: lossless compress: %w", err)
		}
		return blob, nil
	}
	bound := s.cfg.ErrorLevels[level-1]
	blob, err := s.cfg.Lossy.Compress([]byte{tagLossy}, scratch, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
	if err != nil {
		return nil, fmt.Errorf("core: lossy compress: %w", err)
	}
	return blob, nil
}

// decompressBlock decodes a stored block into scratch, charging the
// timing to st.
func (s *Simulator) decompressBlock(blob []byte, scratch []float64, st *Stats) error {
	start := time.Now()
	st.DecompressCalls++
	defer func() { st.DecompressTime += time.Since(start) }()
	if len(blob) == 0 {
		return fmt.Errorf("core: empty block")
	}
	switch blob[0] {
	case tagRaw:
		if len(blob) != 1+len(scratch)*8 {
			return fmt.Errorf("core: raw block size %d", len(blob))
		}
		for i := range scratch {
			scratch[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[1+i*8:]))
		}
		return nil
	case tagLossless:
		return s.cfg.Lossless.Decompress(scratch, blob[1:])
	case tagLossy:
		return s.cfg.Lossy.Decompress(scratch, blob[1:])
	default:
		return fmt.Errorf("core: unknown block tag %d", blob[0])
	}
}

// updateBlock swaps in a freshly compressed block through the rank's
// store, which maintains the footprint accounting internally (workers
// racing on distinct block indices share the store's counters). The
// high-water mark is NOT sampled here: a mid-gate running peak would
// depend on block completion order and make MaxFootprint
// irreproducible under a worker pool — maybeEscalate samples the
// store at the gate boundary instead. The error is the spill tier's
// (always nil for the in-RAM store).
func (s *Simulator) updateBlock(rs *rankState, b int, blob []byte) error {
	return rs.store.Put(b, blob)
}

// syncStoreStats refreshes the rank Stats' footprint gauges and spill
// counters from the block store (see rankState.storeBase for the
// baselining). Called at gate boundaries and before Stats reads —
// never mid-fan-out, so the numbers are worker-schedule independent.
func (s *Simulator) syncStoreStats(rs *rankState) {
	cur := rs.store.Stats()
	d := rs.storeAcc.Plus(cur.Minus(rs.storeBase))
	rs.stats.CurrentFootprint = rs.store.Footprint()
	rs.stats.ResidentFootprint = rs.store.Resident()
	if rs.stats.ResidentFootprint > rs.stats.MaxResident {
		rs.stats.MaxResident = rs.stats.ResidentFootprint
	}
	rs.stats.SpilledBytes = cur.SpilledBytes
	rs.stats.SpillWrites = d.SpillWrites
	rs.stats.SpillReads = d.SpillReads
	rs.stats.PrefetchReads = d.PrefetchReads
	rs.stats.PrefetchHits = d.PrefetchHits
}

// hintBlocks announces an upcoming block visit order to a tiered
// store so its prefetcher can stage spilled blobs ahead of the pass,
// overlapping disk reads with codec work. Blocks failing the blkCtrl
// mask are not visited and not hinted; pair > 0 interleaves each
// block with its partner b|pair (the cross-block two-block working
// set). The in-RAM store wants no hints and the order slice is never
// built.
func (s *Simulator) hintBlocks(rs *rankState, blkCtrl, pair int) {
	if !rs.store.WantHints() {
		return
	}
	nb := s.blocksPerRank()
	order := make([]int, 0, nb)
	for b := 0; b < nb; b++ {
		if b&blkCtrl != blkCtrl {
			continue
		}
		if pair > 0 {
			if b&pair != 0 {
				continue
			}
			order = append(order, b, b|pair)
		} else {
			order = append(order, b)
		}
	}
	rs.store.PrefetchHint(order)
}

// maybeEscalate is the gate-boundary footprint accounting: it samples
// the MaxFootprint high-water mark and applies the §3.7 escalation
// ladder. Deciding once per gate — rather than inside every block
// update — makes escalation timing, every compressed bit, and the
// Table 2 peak-footprint row independent of the worker interleaving:
// the footprint sum after a gate does not depend on block completion
// order.
//
// With the tiered store the ladder gains its spill rung: the memory
// budget presses on the bytes RESIDENT in RAM, and the store has
// already been evicting cold blobs to disk throughout the gate — so a
// state whose compressed size exceeds the budget but fits on disk
// never escalates at all. Only when the resident set itself cannot be
// held under the budget (spill disabled, a spill RAM budget set above
// the memory budget, or a single blob larger than it) does the old
// ladder take over: relax the error bound one level per gate
// boundary, then latch overBudget when the loosest bound still does
// not fit.
func (s *Simulator) maybeEscalate(rs *rankState) {
	s.syncStoreStats(rs)
	if rs.stats.CurrentFootprint > rs.stats.MaxFootprint {
		rs.stats.MaxFootprint = rs.stats.CurrentFootprint
	}
	if s.cfg.MemoryBudget > 0 && rs.stats.ResidentFootprint > s.cfg.MemoryBudget && !s.cfg.Uncompressed {
		if rs.level < len(s.cfg.ErrorLevels) {
			rs.level++
			rs.stats.Escalations++
			if rs.level > rs.stats.FinalLevel {
				rs.stats.FinalLevel = rs.level
			}
		} else {
			rs.overBudget = true
		}
	}
}

// noteLevel records the level a rank used while executing gate gi, for
// the fidelity ledger.
func (s *Simulator) noteLevel(rs *rankState, gi, level int) {
	lvl := uint32(level)
	if level > rs.stats.FinalLevel {
		rs.stats.FinalLevel = level
	}
	for {
		cur := atomic.LoadUint32(&s.gateLevel[gi])
		if cur >= lvl || atomic.CompareAndSwapUint32(&s.gateLevel[gi], cur, lvl) {
			return
		}
	}
}

// forBlocks fans fn out over the rank's block indices on the worker
// pool. fn receives a worker whose scratch buffers it owns exclusively;
// shared rank state may only be touched through updateBlock and the
// (mutex-guarded) block cache. Block assignment is dynamic (an atomic
// counter), which is safe because no fan-out path depends on iteration
// order: per-block results are bit-identical for every worker count.
// After the fan-out the worker stats shards are merged into rs.stats.
func (s *Simulator) forBlocks(rs *rankState, fn func(w *workerState, b int) error) error {
	nb := s.blocksPerRank()
	nw := len(rs.workers)
	if nw > nb {
		nw = nb
	}
	var firstErr error
	if nw <= 1 {
		w := rs.w0()
		for b := 0; b < nb; b++ {
			if firstErr = fn(w, b); firstErr != nil {
				break
			}
		}
	} else {
		var (
			next int64 = -1
			fail int32
			once sync.Once
			wg   sync.WaitGroup
		)
		for i := 0; i < nw; i++ {
			w := rs.workers[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.ensure(2 * s.blockAmps())
				for atomic.LoadInt32(&fail) == 0 {
					b := atomic.AddInt64(&next, 1)
					if b >= int64(nb) {
						return
					}
					if err := fn(w, int(b)); err != nil {
						once.Do(func() { firstErr = err })
						atomic.StoreInt32(&fail, 1)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, w := range rs.workers {
		rs.stats.addShard(w.stats)
		w.stats = Stats{}
	}
	return firstErr
}

// RunControl carries the optional per-gate hooks RunControlled consults
// at gate boundaries. The zero value disables both hooks, making
// RunControlled identical to Run.
type RunControl struct {
	// PollAbort, when non-nil, is consulted on rank 0 before every sweep
	// (every gate when the sweep scheduler is off). A non-nil return
	// stops execution at that sweep boundary on every rank (the decision
	// is broadcast, so all ranks agree and no cross-rank exchange is
	// left half-paired) and RunControlled returns an error wrapping it.
	// Gates already executed are kept: state, stats, and the fidelity
	// ledger reflect exactly the completed prefix and the simulator
	// stays fully inspectable.
	PollAbort func() error
	// OnGate, when non-nil, is invoked on rank 0 after each gate
	// completes, with the gate's index, the total gate count of this run
	// (post-fusion), and the gate itself. It runs on the rank-0
	// goroutine and must not call back into the Simulator.
	OnGate func(gi, total int, g quantum.Gate)
}

// Run executes the circuit on the current state. It may be called
// repeatedly; state, stats, and the fidelity ledger accumulate.
func (s *Simulator) Run(c *quantum.Circuit) error {
	return s.RunControlled(c, RunControl{})
}

// errPeerRankFailed marks a rank that stopped because the sweep error
// barrier reported a failure on ANOTHER rank; RunControlled prefers the
// failing rank's real error over this placeholder.
var errPeerRankFailed = errors.New("core: gate failed on a peer rank")

// RunControlled is Run with sweep-boundary hooks: cooperative abort
// (PollAbort) and progress reporting (OnGate). With zero hooks the
// execution path — every collective, every compressed bit — is
// identical to Run.
//
// Execution iterates the sweep schedule: maximal runs of consecutive
// block-local gates execute through applySweepRank (one codec pass per
// block for the whole run), everything else gate-at-a-time. After every
// sweep an error barrier (an allreduce of per-rank failure flags) makes
// all ranks agree on whether any rank's codec failed, so a failure
// stops every rank at the same sweep boundary and surfaces as an error
// — never a panic and never a hung collective. On error the state
// reflects the completed prefix, except that the failing gate itself
// may be partially applied on some ranks; the simulator stays
// inspectable either way.
func (s *Simulator) RunControlled(c *quantum.Circuit, ctl RunControl) error {
	if c.N != s.cfg.Qubits {
		return fmt.Errorf("core: circuit has %d qubits, simulator %d", c.N, s.cfg.Qubits)
	}
	if c.Parametric() {
		return fmt.Errorf("core: circuit has unbound parameters; Bind it first")
	}
	if s.cfg.FuseGates {
		c = quantum.FuseSingleQubitGates(c)
	}
	if len(c.Gates) > 0 {
		// Any gate may mutate the state (even a failed run leaves a
		// completed prefix), so samplers built earlier are now stale.
		s.version++
	}
	var plan []quantum.Sweep
	if s.sweepsEnabled() {
		plan = quantum.PlanSweeps(c.Gates, s.offsetBits)
	} else {
		plan = quantum.SingletonSweeps(c.Gates)
	}
	s.gateLevel = make([]uint32, len(c.Gates))
	measured := make([][]int, s.cfg.Ranks)
	rankErrs := make([]error, s.cfg.Ranks)
	// abortErr and executed are written only by the rank-0 goroutine and
	// read after the launcher's completion establishes happens-before.
	var abortErr error
	var executed int
	comms, err := s.launcher().Launch(s.cfg.Ranks, func(comm mpi.Comm) {
		rs := s.ranks[comm.Rank()]
		ran := 0
		for _, sw := range plan {
			if ctl.PollAbort != nil {
				// Rank 0 decides; the broadcast makes every rank stop at
				// the same sweep boundary (a rank aborting unilaterally
				// would strand its cross-rank partners mid-exchange).
				var stop float64
				if comm.Rank() == 0 {
					if aerr := ctl.PollAbort(); aerr != nil {
						abortErr = aerr
						stop = 1
					}
				}
				if comm.Bcast(0, stop) != 0 {
					break
				}
			}
			var swErr error
			var swMeasured []int // outcomes held back until the barrier clears
			if sw.Local {
				swErr = s.applySweepRank(rs, c.Gates[sw.Start:sw.End], sw.End-1)
			} else {
				for gi := sw.Start; gi < sw.End && swErr == nil; gi++ {
					g := c.Gates[gi]
					if g.Kind == quantum.KindMeasure {
						out, merr := s.measureRank(comm, rs, g.Target, gi)
						if merr != nil {
							swErr = merr
						} else if comm.Rank() == 0 {
							swMeasured = append(swMeasured, out)
						}
					} else {
						swErr = s.applyGateRank(comm, rs, g, gi)
						if s.noiseActive() {
							// The noise Pauli may be a cross-rank gate, so a
							// rank that failed the unitary cannot just skip
							// it: agree on failure first, then either all
							// ranks apply noise or none do.
							var flag float64
							if swErr != nil {
								flag = 1
							}
							if comm.AllreduceSum(flag) != 0 {
								if swErr == nil {
									swErr = errPeerRankFailed
								}
							} else {
								swErr = s.applyNoiseRank(comm, rs, g, gi)
							}
						}
					}
				}
			}
			// Error barrier: every rank learns whether any rank failed
			// this sweep, so all stop at the same boundary.
			var flag float64
			if swErr != nil {
				flag = 1
			}
			if comm.AllreduceSum(flag) != 0 {
				if swErr == nil {
					swErr = errPeerRankFailed
				}
				rankErrs[comm.Rank()] = swErr
				break
			}
			ran += sw.Len()
			if comm.Rank() == 0 {
				measured[0] = append(measured[0], swMeasured...)
				if ctl.OnGate != nil {
					for gi := sw.Start; gi < sw.End; gi++ {
						ctl.OnGate(gi, len(c.Gates), c.Gates[gi])
					}
				}
			}
		}
		rs.stats.Gates += ran
		if comm.Rank() == 0 {
			executed = ran
		}
	})
	if err != nil {
		return err
	}
	for i, comm := range comms {
		if comm == nil {
			continue // remote rank: its accounting arrives via ApplyDeltas
		}
		s.ranks[i].stats.CommTime += comm.CommTime()
		s.bytesMoved += comm.BytesMoved()
	}
	s.measurements = append(s.measurements, measured[0]...)
	// Fold per-gate max levels into the ledger (Eq. 11). Gates past an
	// abort boundary were never executed, so their entries are still 0;
	// a k-gate sweep recompresses once and charges one factor, at its
	// last gate's index.
	for _, lvl := range s.gateLevel {
		if lvl > 0 {
			s.ledger *= 1 - s.cfg.ErrorLevels[lvl-1]
		}
	}
	s.gatesRun += executed
	var gateErr error
	for _, e := range rankErrs {
		if e != nil && (gateErr == nil || errors.Is(gateErr, errPeerRankFailed)) {
			gateErr = e
		}
	}
	if abortErr != nil {
		return fmt.Errorf("core: run aborted after %d of %d gates: %w", executed, len(c.Gates), abortErr)
	}
	if gateErr != nil {
		return fmt.Errorf("core: run failed after %d of %d gates: %w", executed, len(c.Gates), gateErr)
	}
	return nil
}

// splitControls partitions control qubits into offset-, block-, and
// rank-segment masks (§3.3's three cases for the control position).
func (s *Simulator) splitControls(controls []int) (offMask uint64, blkMask, rankMask int) {
	for _, c := range controls {
		switch {
		case c < s.offsetBits:
			offMask |= 1 << uint(c)
		case c < s.offsetBits+s.blockBits:
			blkMask |= 1 << uint(c-s.offsetBits)
		default:
			rankMask |= 1 << uint(c-s.offsetBits-s.blockBits)
		}
	}
	return offMask, blkMask, rankMask
}

// applyGateRank executes one unitary gate on this rank's blocks,
// dispatching on the target qubit's index segment (§3.3).
func (s *Simulator) applyGateRank(comm mpi.Comm, rs *rankState, g quantum.Gate, gi int) error {
	offCtrl, blkCtrl, rankCtrl := s.splitControls(g.Controls)
	if rs.id&rankCtrl != rankCtrl {
		// §3.3: control in the rank segment is |0⟩ here — the whole
		// rank is unmodified. Cross-rank partners share the control
		// bit, so no peer is left waiting.
		return nil
	}
	q := g.Target
	switch {
	case q < s.offsetBits:
		return s.applyLocal(rs, g, gi, offCtrl, blkCtrl)
	case q < s.offsetBits+s.blockBits:
		return s.applyCrossBlock(rs, g, gi, offCtrl, blkCtrl)
	default:
		return s.applyCrossRank(comm, rs, g, gi, offCtrl, blkCtrl)
	}
}

// runBlockPass fans one decompress → apply → recompress pass over the
// rank's blocks on the worker pool, with the §3.4 cache keyed on sig
// (single-block entries). Blocks failing the blkCtrl mask are untouched
// (§3.3: whole block unmodified); passesSaved is credited per block
// actually run through the codec — the sweep path's k-1 elided round
// trips, 0 for single-gate passes.
func (s *Simulator) runBlockPass(rs *rankState, sig string, lvl, blkCtrl int, passesSaved int64, apply func(x []float64)) error {
	s.hintBlocks(rs, blkCtrl, 0)
	return s.forBlocks(rs, func(w *workerState, b int) error {
		if b&blkCtrl != blkCtrl {
			return nil
		}
		cur, err := rs.store.Get(b)
		if err != nil {
			return err
		}
		key := ""
		if rs.cache.enabled() {
			key = cacheKey(sig, lvl, cur, nil)
			if out1, _, ok := rs.cache.get(key); ok {
				w.stats.CacheHits++
				w.stats.CacheLookups++
				return s.updateBlock(rs, b, append([]byte(nil), out1...))
			}
			w.stats.CacheLookups++
		}
		if err := s.decompressBlock(cur, w.x, &w.stats); err != nil {
			return err
		}
		start := time.Now()
		apply(w.x)
		w.stats.ComputeTime += time.Since(start)
		blob, err := s.compressBlock(lvl, w.x, &w.stats)
		if err != nil {
			return err
		}
		if err := s.updateBlock(rs, b, blob); err != nil {
			return err
		}
		if key != "" {
			rs.cache.put(key, blob, nil)
		}
		w.stats.CodecPassesSaved += passesSaved
		return nil
	})
}

// applyLocal handles targets inside the offset segment: both amplitudes
// of every pair live in the same block, so the block loop fans out
// across the worker pool with no cross-worker data dependencies.
func (s *Simulator) applyLocal(rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tMask := 1 << uint(g.Target)
	lvl := rs.level
	ba := s.blockAmps()
	err := s.runBlockPass(rs, g.Signature(), lvl, blkCtrl, 0, func(x []float64) {
		for base := 0; base < ba; base += tMask << 1 {
			for o := base; o < base+tMask; o++ {
				if uint64(o)&offCtrl != offCtrl {
					continue
				}
				applyPair(g.U, x, o, o|tMask)
			}
		}
	})
	if err != nil {
		return err
	}
	s.noteLevel(rs, gi, lvl)
	s.maybeEscalate(rs)
	return nil
}

// applyCrossBlock handles targets in the block segment: the pair spans
// two blocks of the same rank. Each worker decompresses one block pair
// at a time (the paper's two-block working set, §3.1, now per worker),
// and pairs never overlap, so the pair loop fans out safely.
func (s *Simulator) applyCrossBlock(rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tb := 1 << uint(g.Target-s.offsetBits)
	lvl := rs.level
	sig := g.Signature()
	ba := s.blockAmps()
	s.hintBlocks(rs, blkCtrl, tb)
	err := s.forBlocks(rs, func(w *workerState, b int) error {
		if b&tb != 0 || b&blkCtrl != blkCtrl {
			return nil
		}
		pb := b | tb
		curB, err := rs.store.Get(b)
		if err != nil {
			return err
		}
		curP, err := rs.store.Get(pb)
		if err != nil {
			return err
		}
		key := ""
		if rs.cache.enabled() {
			key = cacheKey(sig, lvl, curB, curP)
			if out1, out2, ok := rs.cache.get(key); ok {
				w.stats.CacheHits++
				w.stats.CacheLookups++
				if err := s.updateBlock(rs, b, append([]byte(nil), out1...)); err != nil {
					return err
				}
				return s.updateBlock(rs, pb, append([]byte(nil), out2...))
			}
			w.stats.CacheLookups++
		}
		if err := s.decompressBlock(curB, w.x, &w.stats); err != nil {
			return err
		}
		if err := s.decompressBlock(curP, w.y, &w.stats); err != nil {
			return err
		}
		start := time.Now()
		x, y := w.x, w.y
		for o := 0; o < ba; o++ {
			if uint64(o)&offCtrl != offCtrl {
				continue
			}
			applyPairSplit(g.U, x, y, o)
		}
		w.stats.ComputeTime += time.Since(start)
		blobX, err := s.compressBlock(lvl, w.x, &w.stats)
		if err != nil {
			return err
		}
		if err := s.updateBlock(rs, b, blobX); err != nil {
			return err
		}
		blobY, err := s.compressBlock(lvl, w.y, &w.stats)
		if err != nil {
			return err
		}
		if err := s.updateBlock(rs, pb, blobY); err != nil {
			return err
		}
		if key != "" {
			rs.cache.put(key, blobX, blobY)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.noteLevel(rs, gi, lvl)
	s.maybeEscalate(rs)
	return nil
}

// applyCrossRank handles targets in the rank segment: block pairs span
// two ranks and are exchanged (§3.3 third case). The loop stays
// sequential — the pairwise SendRecv protocol requires both ranks to
// walk their blocks in the same order, and the exchange, not the
// compute, dominates here. A codec failure must NOT bail out mid-loop:
// the peer would block forever in SendRecv while this rank sat at the
// sweep error barrier. Instead the rank keeps the exchange protocol
// alive for the remaining blocks (sending whatever is in scratch),
// skips the now-pointless codec and compute work, and reports the
// first error at the gate boundary, where the barrier stops all ranks.
func (s *Simulator) applyCrossRank(comm mpi.Comm, rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tr := 1 << uint(g.Target-s.offsetBits-s.blockBits)
	peer := rs.id ^ tr
	lowSide := rs.id&tr == 0 // this rank holds the target-bit-0 half
	lvl := rs.level
	nb := s.blocksPerRank()
	w := rs.w0()
	s.hintBlocks(rs, blkCtrl, 0)
	var firstErr error
	for b := 0; b < nb; b++ {
		if b&blkCtrl != blkCtrl {
			continue
		}
		if firstErr == nil {
			blob, err := rs.store.Get(b)
			if err == nil {
				err = s.decompressBlock(blob, w.x, &rs.stats)
			}
			if err != nil {
				firstErr = err
			}
		}
		comm.SendRecv(peer, w.x, w.y)
		if firstErr != nil {
			continue
		}
		start := time.Now()
		x, y := w.x, w.y
		ba := s.blockAmps()
		u := g.U
		for o := 0; o < ba; o++ {
			if uint64(o)&offCtrl != offCtrl {
				continue
			}
			re, im := 2*o, 2*o+1
			if lowSide {
				a0 := complex(x[re], x[im])
				a1 := complex(y[re], y[im])
				n0 := u[0][0]*a0 + u[0][1]*a1
				x[re], x[im] = real(n0), imag(n0)
			} else {
				a0 := complex(y[re], y[im])
				a1 := complex(x[re], x[im])
				n1 := u[1][0]*a0 + u[1][1]*a1
				x[re], x[im] = real(n1), imag(n1)
			}
		}
		rs.stats.ComputeTime += time.Since(start)
		blob, err := s.compressBlock(lvl, w.x, &rs.stats)
		if err != nil {
			firstErr = err
			continue
		}
		if err := s.updateBlock(rs, b, blob); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	s.noteLevel(rs, gi, lvl)
	s.maybeEscalate(rs)
	return nil
}

// applyPair applies u to the amplitude pair at indices (i, j) of one
// interleaved scratch buffer (paper Eq. 6).
func applyPair(u quantum.Matrix2, x []float64, i, j int) {
	a0 := complex(x[2*i], x[2*i+1])
	a1 := complex(x[2*j], x[2*j+1])
	n0 := u[0][0]*a0 + u[0][1]*a1
	n1 := u[1][0]*a0 + u[1][1]*a1
	x[2*i], x[2*i+1] = real(n0), imag(n0)
	x[2*j], x[2*j+1] = real(n1), imag(n1)
}

// applyPairSplit applies u to amplitude o of the low block x and the
// same offset of the high block y.
func applyPairSplit(u quantum.Matrix2, x, y []float64, o int) {
	re, im := 2*o, 2*o+1
	a0 := complex(x[re], x[im])
	a1 := complex(y[re], y[im])
	n0 := u[0][0]*a0 + u[0][1]*a1
	n1 := u[1][0]*a0 + u[1][1]*a1
	x[re], x[im] = real(n0), imag(n0)
	y[re], y[im] = real(n1), imag(n1)
}

// SampleStream derives the dedicated seeded sampling rng from a
// simulator seed. It is the single source of the derivation for every
// backend — the facade's MPS engine uses it too, so WithSeed fixes an
// equivalent sampling-stream contract regardless of engine.
func SampleStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
}
