package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"time"

	"qcsim/internal/compress"
	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// Block storage tags: the first byte of every stored block identifies
// how it was compressed so checkpoints are self-describing.
const (
	tagLossless byte = 0
	tagLossy    byte = 1
	tagRaw      byte = 2
)

// Simulator is the compressed-state engine. Construct with New, run
// circuits with Run (repeatable — state persists across calls), inspect
// with Amplitude/FullState/Stats, persist with Save/Load.
type Simulator struct {
	cfg Config

	// Geometry (paper Fig. 3): global amplitude index =
	// [rank bits | block bits | offset bits].
	offsetBits int // log2(amplitudes per block)
	blockBits  int // log2(blocks per rank)
	rankBits   int // log2(ranks)

	ranks []*rankState

	gatesRun     int
	measurements []int
	bytesMoved   int64
	rng          *rand.Rand

	// ledger is the fidelity lower bound Π(1-δᵢ) over executed gates
	// (Eq. 11).
	ledger float64

	// gateLevel[gi] is the max error level any rank used while
	// executing gate gi of the current Run (atomic access).
	gateLevel []uint32

	noise *NoiseModel
}

// rankState is one rank's share: nb compressed blocks plus the two
// scratch buffers of Eq. 8 (the MCDRAM working set).
type rankState struct {
	id       int
	blocks   [][]byte
	scratchX []float64
	scratchY []float64
	level    int
	cache    *blockCache
	stats    Stats
	rng      *rand.Rand // per-rank noise stream (deterministic)
}

// New builds a Simulator initialized to |0...0⟩.
func New(cfg Config) (*Simulator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:      cfg,
		rankBits: bits.TrailingZeros(uint(cfg.Ranks)),
		ledger:   1,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	perRank := cfg.Qubits - s.rankBits
	s.offsetBits = bits.TrailingZeros(uint(cfg.BlockAmps))
	if s.offsetBits > perRank {
		s.offsetBits = perRank
	}
	s.blockBits = perRank - s.offsetBits
	nb := 1 << uint(s.blockBits)

	s.ranks = make([]*rankState, cfg.Ranks)
	for r := range s.ranks {
		rs := &rankState{
			id:       r,
			blocks:   make([][]byte, nb),
			scratchX: make([]float64, 2*s.blockAmps()),
			scratchY: make([]float64, 2*s.blockAmps()),
			cache:    newBlockCache(cfg.CacheLines),
			// The noise stream must be IDENTICAL on every rank: each
			// rank draws the same variates per gate, so all ranks
			// agree on whether (and which) Pauli fires — otherwise a
			// cross-rank noise gate deadlocks half the pairs.
			rng: rand.New(rand.NewSource(cfg.Seed ^ 0x9E3779B9)),
		}
		s.ranks[r] = rs
	}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// blockAmps returns the amplitudes per block.
func (s *Simulator) blockAmps() int { return 1 << uint(s.offsetBits) }

// blocksPerRank returns nb.
func (s *Simulator) blocksPerRank() int { return 1 << uint(s.blockBits) }

// Qubits returns the register width.
func (s *Simulator) Qubits() int { return s.cfg.Qubits }

// Config returns the effective (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Reset reinitializes the state to |0...0⟩, keeping stats at zero and
// the ledger at 1.
func (s *Simulator) Reset() error {
	for _, rs := range s.ranks {
		rs.level = 0
		rs.stats = Stats{}
		for i := range rs.scratchX {
			rs.scratchX[i] = 0
		}
		var footprint int64
		for b := range rs.blocks {
			if rs.id == 0 && b == 0 {
				rs.scratchX[0] = 1 // amplitude of |0...0⟩
			}
			blob, err := s.compressBlock(rs, rs.scratchX)
			if err != nil {
				return err
			}
			rs.blocks[b] = blob
			footprint += int64(len(blob))
			if rs.id == 0 && b == 0 {
				rs.scratchX[0] = 0
			}
		}
		rs.stats.CurrentFootprint = footprint
		rs.stats.MaxFootprint = footprint
	}
	s.ledger = 1
	s.gatesRun = 0
	s.measurements = nil
	return nil
}

// SetBasisState re-initializes to |idx⟩.
func (s *Simulator) SetBasisState(idx uint64) error {
	if idx >= 1<<uint(s.cfg.Qubits) {
		return fmt.Errorf("core: basis state %d out of range", idx)
	}
	if err := s.Reset(); err != nil {
		return err
	}
	if idx == 0 {
		return nil
	}
	r, b, o := s.locate(idx)
	rs := s.ranks[r]
	// Clear block (rank0,block0) then set the target block.
	zero := make([]float64, 2*s.blockAmps())
	blob0, err := s.compressBlock(s.ranks[0], zero)
	if err != nil {
		return err
	}
	s.updateBlock(s.ranks[0], 0, blob0)
	zero[2*o] = 1
	blob, err := s.compressBlock(rs, zero)
	if err != nil {
		return err
	}
	s.updateBlock(rs, b, blob)
	return nil
}

// locate splits a global amplitude index into (rank, block, offset) per
// the paper's Fig. 3 segmentation.
func (s *Simulator) locate(idx uint64) (rank, block, offset int) {
	offset = int(idx & uint64(s.blockAmps()-1))
	block = int(idx >> uint(s.offsetBits) & uint64(s.blocksPerRank()-1))
	rank = int(idx >> uint(s.offsetBits+s.blockBits))
	return rank, block, offset
}

// compose rebuilds a global index from segments.
func (s *Simulator) compose(rank, block, offset int) uint64 {
	return uint64(rank)<<uint(s.offsetBits+s.blockBits) |
		uint64(block)<<uint(s.offsetBits) | uint64(offset)
}

// compressBlock encodes scratch under the rank's current level,
// appending the codec tag.
func (s *Simulator) compressBlock(rs *rankState, scratch []float64) ([]byte, error) {
	start := time.Now()
	defer func() { rs.stats.CompressTime += time.Since(start) }()
	if s.cfg.Uncompressed {
		blob := make([]byte, 1+len(scratch)*8)
		blob[0] = tagRaw
		for i, v := range scratch {
			binary.LittleEndian.PutUint64(blob[1+i*8:], math.Float64bits(v))
		}
		return blob, nil
	}
	if rs.level == 0 {
		blob, err := s.cfg.Lossless.Compress([]byte{tagLossless}, scratch, compress.Options{Mode: compress.Lossless})
		if err != nil {
			return nil, fmt.Errorf("core: lossless compress: %w", err)
		}
		return blob, nil
	}
	bound := s.cfg.ErrorLevels[rs.level-1]
	blob, err := s.cfg.Lossy.Compress([]byte{tagLossy}, scratch, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
	if err != nil {
		return nil, fmt.Errorf("core: lossy compress: %w", err)
	}
	return blob, nil
}

// decompressBlock decodes a stored block into scratch.
func (s *Simulator) decompressBlock(rs *rankState, blob []byte, scratch []float64) error {
	start := time.Now()
	defer func() { rs.stats.DecompressTime += time.Since(start) }()
	if len(blob) == 0 {
		return fmt.Errorf("core: empty block")
	}
	switch blob[0] {
	case tagRaw:
		if len(blob) != 1+len(scratch)*8 {
			return fmt.Errorf("core: raw block size %d", len(blob))
		}
		for i := range scratch {
			scratch[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[1+i*8:]))
		}
		return nil
	case tagLossless:
		return s.cfg.Lossless.Decompress(scratch, blob[1:])
	case tagLossy:
		return s.cfg.Lossy.Decompress(scratch, blob[1:])
	default:
		return fmt.Errorf("core: unknown block tag %d", blob[0])
	}
}

// updateBlock swaps in a freshly compressed block, maintaining footprint
// accounting and the §3.7 escalation rule.
func (s *Simulator) updateBlock(rs *rankState, b int, blob []byte) {
	rs.stats.CurrentFootprint += int64(len(blob)) - int64(len(rs.blocks[b]))
	rs.blocks[b] = blob
	if rs.stats.CurrentFootprint > rs.stats.MaxFootprint {
		rs.stats.MaxFootprint = rs.stats.CurrentFootprint
	}
	if s.cfg.MemoryBudget > 0 && rs.stats.CurrentFootprint > s.cfg.MemoryBudget &&
		rs.level < len(s.cfg.ErrorLevels) && !s.cfg.Uncompressed {
		rs.level++
		rs.stats.Escalations++
		if rs.level > rs.stats.FinalLevel {
			rs.stats.FinalLevel = rs.level
		}
	}
}

// noteLevel records the level a rank used while executing gate gi, for
// the fidelity ledger.
func (s *Simulator) noteLevel(rs *rankState, gi int) {
	lvl := uint32(rs.level)
	if rs.level > rs.stats.FinalLevel {
		rs.stats.FinalLevel = rs.level
	}
	for {
		cur := atomic.LoadUint32(&s.gateLevel[gi])
		if cur >= lvl || atomic.CompareAndSwapUint32(&s.gateLevel[gi], cur, lvl) {
			return
		}
	}
}

// Run executes the circuit on the current state. It may be called
// repeatedly; state, stats, and the fidelity ledger accumulate.
func (s *Simulator) Run(c *quantum.Circuit) error {
	if c.N != s.cfg.Qubits {
		return fmt.Errorf("core: circuit has %d qubits, simulator %d", c.N, s.cfg.Qubits)
	}
	if s.cfg.FuseGates {
		c = quantum.FuseSingleQubitGates(c)
	}
	s.gateLevel = make([]uint32, len(c.Gates))
	measured := make([][]int, s.cfg.Ranks)
	comms, err := mpi.Run(s.cfg.Ranks, func(comm *mpi.Comm) {
		rs := s.ranks[comm.Rank()]
		for gi, g := range c.Gates {
			if g.Kind == quantum.KindMeasure {
				out := s.measureRank(comm, rs, g.Target, gi)
				if comm.Rank() == 0 {
					measured[0] = append(measured[0], out)
				}
				continue
			}
			if err := s.applyGateRank(comm, rs, g, gi); err != nil {
				panic(err)
			}
			if s.noise != nil {
				s.applyNoiseRank(comm, rs, g, gi)
			}
		}
		rs.stats.Gates += len(c.Gates)
	})
	if err != nil {
		return err
	}
	for i, comm := range comms {
		s.ranks[i].stats.CommTime += comm.CommTime()
		s.bytesMoved += comm.BytesMoved()
	}
	s.measurements = append(s.measurements, measured[0]...)
	// Fold per-gate max levels into the ledger (Eq. 11).
	for _, lvl := range s.gateLevel {
		if lvl > 0 {
			s.ledger *= 1 - s.cfg.ErrorLevels[lvl-1]
		}
	}
	s.gatesRun += len(c.Gates)
	return nil
}

// splitControls partitions control qubits into offset-, block-, and
// rank-segment masks (§3.3's three cases for the control position).
func (s *Simulator) splitControls(controls []int) (offMask uint64, blkMask, rankMask int) {
	for _, c := range controls {
		switch {
		case c < s.offsetBits:
			offMask |= 1 << uint(c)
		case c < s.offsetBits+s.blockBits:
			blkMask |= 1 << uint(c-s.offsetBits)
		default:
			rankMask |= 1 << uint(c-s.offsetBits-s.blockBits)
		}
	}
	return offMask, blkMask, rankMask
}

// applyGateRank executes one unitary gate on this rank's blocks,
// dispatching on the target qubit's index segment (§3.3).
func (s *Simulator) applyGateRank(comm *mpi.Comm, rs *rankState, g quantum.Gate, gi int) error {
	offCtrl, blkCtrl, rankCtrl := s.splitControls(g.Controls)
	if rs.id&rankCtrl != rankCtrl {
		// §3.3: control in the rank segment is |0⟩ here — the whole
		// rank is unmodified. Cross-rank partners share the control
		// bit, so no peer is left waiting.
		return nil
	}
	q := g.Target
	switch {
	case q < s.offsetBits:
		return s.applyLocal(rs, g, gi, offCtrl, blkCtrl)
	case q < s.offsetBits+s.blockBits:
		return s.applyCrossBlock(rs, g, gi, offCtrl, blkCtrl)
	default:
		return s.applyCrossRank(comm, rs, g, gi, offCtrl, blkCtrl)
	}
}

// applyLocal handles targets inside the offset segment: both amplitudes
// of every pair live in the same block.
func (s *Simulator) applyLocal(rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tMask := 1 << uint(g.Target)
	nb := s.blocksPerRank()
	for b := 0; b < nb; b++ {
		if b&blkCtrl != blkCtrl {
			continue // §3.3: whole block unmodified
		}
		key := ""
		if rs.cache != nil {
			key = cacheKey(g.Signature(), rs.level, rs.blocks[b], nil)
			if out1, _, ok := rs.cache.get(key); ok {
				rs.stats.CacheHits++
				rs.stats.CacheLookups++
				s.updateBlock(rs, b, append([]byte(nil), out1...))
				s.noteLevel(rs, gi)
				continue
			}
			rs.stats.CacheLookups++
		}
		if err := s.decompressBlock(rs, rs.blocks[b], rs.scratchX); err != nil {
			return err
		}
		start := time.Now()
		x := rs.scratchX
		ba := s.blockAmps()
		for base := 0; base < ba; base += tMask << 1 {
			for o := base; o < base+tMask; o++ {
				if uint64(o)&offCtrl != offCtrl {
					continue
				}
				applyPair(g.U, x, o, o|tMask)
			}
		}
		rs.stats.ComputeTime += time.Since(start)
		blob, err := s.compressBlock(rs, rs.scratchX)
		if err != nil {
			return err
		}
		s.updateBlock(rs, b, blob)
		s.noteLevel(rs, gi)
		if rs.cache != nil {
			rs.cache.put(key, blob, nil)
		}
	}
	return nil
}

// applyCrossBlock handles targets in the block segment: the pair spans
// two blocks of the same rank (at most two decompressed at once, §3.1).
func (s *Simulator) applyCrossBlock(rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tb := 1 << uint(g.Target-s.offsetBits)
	nb := s.blocksPerRank()
	for b := 0; b < nb; b++ {
		if b&tb != 0 || b&blkCtrl != blkCtrl {
			continue
		}
		pb := b | tb
		key := ""
		if rs.cache != nil {
			key = cacheKey(g.Signature(), rs.level, rs.blocks[b], rs.blocks[pb])
			if out1, out2, ok := rs.cache.get(key); ok {
				rs.stats.CacheHits++
				rs.stats.CacheLookups++
				s.updateBlock(rs, b, append([]byte(nil), out1...))
				s.updateBlock(rs, pb, append([]byte(nil), out2...))
				s.noteLevel(rs, gi)
				continue
			}
			rs.stats.CacheLookups++
		}
		if err := s.decompressBlock(rs, rs.blocks[b], rs.scratchX); err != nil {
			return err
		}
		if err := s.decompressBlock(rs, rs.blocks[pb], rs.scratchY); err != nil {
			return err
		}
		start := time.Now()
		x, y := rs.scratchX, rs.scratchY
		ba := s.blockAmps()
		for o := 0; o < ba; o++ {
			if uint64(o)&offCtrl != offCtrl {
				continue
			}
			applyPairSplit(g.U, x, y, o)
		}
		rs.stats.ComputeTime += time.Since(start)
		blobX, err := s.compressBlock(rs, rs.scratchX)
		if err != nil {
			return err
		}
		s.updateBlock(rs, b, blobX)
		blobY, err := s.compressBlock(rs, rs.scratchY)
		if err != nil {
			return err
		}
		s.updateBlock(rs, pb, blobY)
		s.noteLevel(rs, gi)
		if rs.cache != nil {
			rs.cache.put(key, blobX, blobY)
		}
	}
	return nil
}

// applyCrossRank handles targets in the rank segment: block pairs span
// two ranks and are exchanged (§3.3 third case).
func (s *Simulator) applyCrossRank(comm *mpi.Comm, rs *rankState, g quantum.Gate, gi int, offCtrl uint64, blkCtrl int) error {
	tr := 1 << uint(g.Target-s.offsetBits-s.blockBits)
	peer := rs.id ^ tr
	lowSide := rs.id&tr == 0 // this rank holds the target-bit-0 half
	nb := s.blocksPerRank()
	for b := 0; b < nb; b++ {
		if b&blkCtrl != blkCtrl {
			continue
		}
		if err := s.decompressBlock(rs, rs.blocks[b], rs.scratchX); err != nil {
			return err
		}
		comm.SendRecv(peer, rs.scratchX, rs.scratchY)
		start := time.Now()
		x, y := rs.scratchX, rs.scratchY
		ba := s.blockAmps()
		u := g.U
		for o := 0; o < ba; o++ {
			if uint64(o)&offCtrl != offCtrl {
				continue
			}
			re, im := 2*o, 2*o+1
			if lowSide {
				a0 := complex(x[re], x[im])
				a1 := complex(y[re], y[im])
				n0 := u[0][0]*a0 + u[0][1]*a1
				x[re], x[im] = real(n0), imag(n0)
			} else {
				a0 := complex(y[re], y[im])
				a1 := complex(x[re], x[im])
				n1 := u[1][0]*a0 + u[1][1]*a1
				x[re], x[im] = real(n1), imag(n1)
			}
		}
		rs.stats.ComputeTime += time.Since(start)
		blob, err := s.compressBlock(rs, rs.scratchX)
		if err != nil {
			return err
		}
		s.updateBlock(rs, b, blob)
		s.noteLevel(rs, gi)
	}
	return nil
}

// applyPair applies u to the amplitude pair at indices (i, j) of one
// interleaved scratch buffer (paper Eq. 6).
func applyPair(u quantum.Matrix2, x []float64, i, j int) {
	a0 := complex(x[2*i], x[2*i+1])
	a1 := complex(x[2*j], x[2*j+1])
	n0 := u[0][0]*a0 + u[0][1]*a1
	n1 := u[1][0]*a0 + u[1][1]*a1
	x[2*i], x[2*i+1] = real(n0), imag(n0)
	x[2*j], x[2*j+1] = real(n1), imag(n1)
}

// applyPairSplit applies u to amplitude o of the low block x and the
// same offset of the high block y.
func applyPairSplit(u quantum.Matrix2, x, y []float64, o int) {
	re, im := 2*o, 2*o+1
	a0 := complex(x[re], x[im])
	a1 := complex(y[re], y[im])
	n0 := u[0][0]*a0 + u[0][1]*a1
	n1 := u[1][0]*a0 + u[1][1]*a1
	x[re], x[im] = real(n0), imag(n0)
	y[re], y[im] = real(n1), imag(n1)
}
