// Package core implements the paper's contribution: a full-state
// Schrödinger-style quantum circuit simulator that keeps the state
// vector compressed in memory at all times (§3).
//
// The 2^n amplitudes are partitioned across R = 2^ρ ranks; each rank's
// slice is split into nb blocks of B amplitudes, every block stored in
// compressed form. A gate decompresses at most two blocks per rank into
// pre-allocated scratch buffers (the paper's MCDRAM working set, Eq. 8),
// applies the 2×2 unitary to the amplitude pairs, and recompresses.
// A hybrid adaptive pipeline (§3.7) starts lossless and relaxes through
// pointwise-relative bounds 1E-5 → 1E-1 whenever the compressed
// footprint exceeds the memory budget, while the fidelity ledger tracks
// the lower bound Π(1-δᵢ) (Eq. 11). A 64-line LRU compressed-block
// cache (§3.4) short-circuits repeated (gate, block-pair) computations.
package core

import (
	"compress/flate"
	"fmt"
	"math/bits"
	"os"
	"runtime"

	"qcsim/internal/compress"
	"qcsim/internal/compress/lossless"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/mpi"
)

// DefaultErrorLevels are the paper's five pointwise relative error
// bounds, tightest first (§3.7). Level 0 is always the lossless stage.
var DefaultErrorLevels = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Config parameterizes a Simulator.
type Config struct {
	// Qubits is the register width n; the simulator stores 2^n
	// amplitudes (2^(n+4) bytes uncompressed, the paper's Table 1
	// arithmetic).
	Qubits int
	// Ranks is the number of SPMD ranks (power of two). Defaults to 1.
	Ranks int
	// Workers is the intra-rank worker-pool width: how many goroutines
	// fan out over one rank's block loop (the analog of the paper's 64
	// OpenMP threads per MPI rank). Each worker owns a private scratch
	// pair allocated on first schedule, so a rank that actually fans
	// out holds up to Workers copies of the Eq. 8 working set
	// (32·BlockAmps bytes each) — uncompressed scratch that, like the
	// paper's MCDRAM buffers, is NOT charged against MemoryBudget.
	// Results are bit-identical for every worker count. Defaults to
	// runtime.NumCPU()/Ranks, min 1; clamped to the block count.
	Workers int
	// BlockAmps is the number of amplitudes per block (power of two;
	// the paper uses 2^20 = 16 MB blocks). It is clamped to the
	// per-rank slice size. Defaults to 4096 — laptop-scale blocks.
	BlockAmps int
	// Lossless is the level-0 codec. Defaults to the flate-backed
	// Zstd substitute.
	Lossless compress.Codec
	// Lossy is the error-bounded codec for levels ≥ 1. Defaults to
	// Solution C (xortrunc).
	Lossy compress.Codec
	// ErrorLevels are the lossy bounds in escalation order. Defaults
	// to DefaultErrorLevels.
	ErrorLevels []float64
	// MemoryBudget caps the per-rank compressed footprint in bytes;
	// exceeding it escalates the error level (§3.7). 0 means
	// unlimited (the simulation stays lossless).
	MemoryBudget int64
	// CacheLines enables the compressed block cache with this many LRU
	// lines when > 0 (the paper uses 64).
	CacheLines int
	// Uncompressed disables compression entirely: blocks are stored
	// raw. This is the Intel-QS-equivalent baseline used by the
	// overhead and scaling experiments.
	Uncompressed bool
	// FuseGates folds runs of adjacent single-qubit gates on the same
	// target into one unitary before execution, cutting the per-gate
	// decompress/recompress sweeps (and the Eq. 11 ledger charges)
	// proportionally.
	FuseGates bool
	// SpillDir enables the tiered RAM→disk block store: cold compressed
	// blocks evict to a per-rank spill file in this directory once the
	// resident bytes exceed SpillRAMBudget, and the sweep scheduler's
	// and sampler's block orders drive async prefetch. Setting either
	// spill field enables the tier: an empty SpillDir with
	// SpillRAMBudget > 0 falls back to os.TempDir().
	SpillDir string
	// SpillRAMBudget caps the compressed bytes a rank keeps RESIDENT in
	// RAM when spilling is enabled; the rest of the footprint lives in
	// the spill file. 0 with SpillDir set defaults to MemoryBudget, so
	// spilling becomes the escalation ladder's first rung: the state
	// trades disk for fidelity instead of relaxing the error bound.
	// Negative is invalid.
	SpillRAMBudget int64
	// Launcher runs the SPMD rank bodies. nil selects the in-process
	// goroutine runtime (mpi.Goroutines), where every rank is a
	// goroutine of this process. A distributed transport installs a
	// launcher that runs exactly this process's rank and returns nil
	// Comm entries for remote ranks — their accounting travels back
	// out of band (see InstallRank / ExportDelta / ApplyDeltas).
	Launcher mpi.Launcher
	// DisableSweeps turns off the sweep scheduler, which by default
	// batches maximal runs of consecutive block-local gates (target and
	// controls all in the offset segment) into one decompress →
	// apply-all → recompress pass per block. Sweeps are bit-identical to
	// gate-at-a-time execution under the lossless codec and only tighten
	// the Eq. 11 ledger under lossy codecs (one recompression — hence
	// one (1-δ) charge — per sweep instead of per gate). The zero value
	// leaves sweeps ON; set this only to reproduce the paper's exact
	// one-pass-per-gate cost model.
	DisableSweeps bool
	// Seed drives measurement collapse randomness.
	Seed int64
}

// Validate checks the configuration without allocating any state — the
// facade's auto backend uses it to fail fast at construction while
// deferring the (possibly enormous) state allocation to the first Run.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// ValidatedDefaults returns a validated copy with every default
// applied (codec selection, block and worker clamping, spill
// normalization) without allocating any state — the planning view of
// a configuration behind the facade's EstimateCircuit admission hook.
func (c Config) ValidatedDefaults() (Config, error) {
	return c.withDefaults()
}

// withDefaults returns a validated copy with defaults applied.
func (c Config) withDefaults() (Config, error) {
	if c.Qubits < 1 || c.Qubits > 62 {
		return c, fmt.Errorf("core: qubits %d out of range", c.Qubits)
	}
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Ranks < 1 || bits.OnesCount(uint(c.Ranks)) != 1 {
		return c, fmt.Errorf("core: ranks %d must be a power of two", c.Ranks)
	}
	perRank := c.Qubits - bits.TrailingZeros(uint(c.Ranks))
	if perRank < 1 {
		return c, fmt.Errorf("core: %d ranks leave no amplitudes per rank for %d qubits", c.Ranks, c.Qubits)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("core: negative workers")
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU() / c.Ranks
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.BlockAmps == 0 {
		c.BlockAmps = 4096
	}
	if c.BlockAmps < 2 || bits.OnesCount(uint(c.BlockAmps)) != 1 {
		return c, fmt.Errorf("core: block size %d must be a power of two ≥ 2", c.BlockAmps)
	}
	if c.BlockAmps > 1<<uint(perRank) {
		c.BlockAmps = 1 << uint(perRank)
	}
	// A worker beyond the block count can never be scheduled; clamping
	// here keeps New from allocating scratch pairs (2×16 MB each at
	// paper-scale blocks) that the fan-out could never touch.
	if nb := (1 << uint(perRank)) / c.BlockAmps; c.Workers > nb {
		c.Workers = nb
	}
	if c.Lossless == nil {
		c.Lossless = lossless.New(flate.BestSpeed, false)
	}
	if c.Lossy == nil {
		c.Lossy = xortrunc.New()
	}
	if c.ErrorLevels == nil {
		c.ErrorLevels = DefaultErrorLevels
	}
	for i := 1; i < len(c.ErrorLevels); i++ {
		if c.ErrorLevels[i] <= c.ErrorLevels[i-1] {
			return c, fmt.Errorf("core: error levels must be strictly increasing")
		}
	}
	if c.CacheLines < 0 {
		return c, fmt.Errorf("core: negative cache lines")
	}
	if c.SpillRAMBudget < 0 {
		return c, fmt.Errorf("core: negative spill RAM budget")
	}
	if c.SpillDir != "" && c.SpillRAMBudget == 0 {
		c.SpillRAMBudget = c.MemoryBudget
		if c.SpillRAMBudget == 0 {
			return c, fmt.Errorf("core: spill dir set but no RAM budget to spill against (set SpillRAMBudget or MemoryBudget)")
		}
	}
	if c.SpillRAMBudget > 0 && c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	return c, nil
}

// spillEnabled reports whether the tiered RAM→disk store is active
// (withDefaults normalizes the two spill fields together).
func (c Config) spillEnabled() bool { return c.SpillRAMBudget > 0 }

// MemoryRequirement returns the uncompressed state size in bytes for n
// qubits: 2^(n+4) (double-precision complex amplitudes), the arithmetic
// behind the paper's Table 1.
func MemoryRequirement(n int) float64 {
	// Computed in floating point so 61-qubit exabyte-scale numbers
	// do not overflow int64 printing paths.
	v := 1.0
	for i := 0; i < n+4; i++ {
		v *= 2
	}
	return v
}

// MaxQubitsForMemory returns the largest register a machine with `bytes`
// of memory can simulate without compression (Table 1's Max Qubits
// column).
func MaxQubitsForMemory(bytes float64) int {
	n := 0
	for MemoryRequirement(n+1) <= bytes {
		n++
	}
	return n
}
