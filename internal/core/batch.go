package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qcsim/internal/blockstore"
	"qcsim/internal/mpi"
	"qcsim/internal/quantum"
)

// Variant-batched execution: one run drives K state variants — K
// bindings of one circuit shape — in lockstep. The schedule is planned
// once (shapes are identical, and PlanSweeps reads only shape), and
// every pass walks the blocks index-first: for block b, all K variants
// are processed back to back, with a content-addressed memo keyed on
// (op signature, error level, compressed input) deduplicating codec
// work across variants whose blocks have not diverged yet. A
// parameter-shift batch — K-1 variants each differing from the base in
// a single gate — shares the entire pre-divergence prefix, so it costs
// ~1× codec traffic there instead of K×.
//
// The results are bit-identical to running each variant alone: a memo
// hit hands back the exact blob the (deterministic) codec produced for
// the same signature, level, and input bytes.

// VariantSeed derives the seed of batch variant v from a base seed.
// Variant 0 keeps the base seed — its samplers and measurement streams
// match a solo run of the parent simulator exactly — and later
// variants decorrelate by a splitmix-style odd multiplier.
func VariantSeed(base int64, v int) int64 {
	if v == 0 {
		return base
	}
	return base ^ int64(uint64(v)*0x9E3779B97F4A7C15)
}

// Clone builds an independent simulator with the same configuration
// (seeded with seed) holding a copy of the current state: compressed
// blocks are copied blob-for-blob, the per-rank error levels, fidelity
// ledger, gate count, and measurement log carry over, and the stats
// start fresh from the cloned footprint. The clone owns its stores
// (and, under a spill configuration, its own spill files) and must be
// Closed like any simulator.
func (s *Simulator) Clone(seed int64) (*Simulator, error) {
	cfg := s.cfg
	cfg.Seed = seed
	clone, err := New(cfg)
	if err != nil {
		return nil, err
	}
	clone.noise = s.noise
	for ri, rs := range s.ranks {
		crs := clone.ranks[ri]
		crs.level = rs.level
		crs.overBudget = rs.overBudget
		crs.stats = Stats{FinalLevel: rs.level}
		crs.storeAcc = blockstore.Stats{}
		crs.storeBase = crs.store.Stats()
		for b := 0; b < s.blocksPerRank(); b++ {
			blob, err := rs.store.Peek(b)
			if err != nil {
				clone.Close()
				return nil, err
			}
			if err := crs.store.Put(b, append([]byte(nil), blob...)); err != nil {
				clone.Close()
				return nil, err
			}
		}
		clone.syncStoreStats(crs)
		crs.stats.MaxFootprint = crs.stats.CurrentFootprint
		crs.stats.MaxResident = crs.stats.ResidentFootprint
	}
	clone.ledger = s.ledger
	clone.gatesRun = s.gatesRun
	clone.measurements = append([]int(nil), s.measurements...)
	return clone, nil
}

// RunBatch executes circuits[v] on sims[v] for every v in one batched
// run. All simulators must share one geometry and configuration (use
// Clone) and all circuits one shape (use quantum.Circuit.Bind on one
// parametric circuit); K == 1 degenerates to RunControlled.
//
// Measurement gates and a live noise channel break lockstep — both
// consume per-variant randomness mid-circuit — so those batches run
// variant-at-a-time with no codec sharing (VariantCount still records
// K). Everything else runs block-index-first with cross-variant codec
// deduplication; Stats gains CodecPassesShared and VariantCount.
//
// ctl hooks fire once per batch, not per variant: PollAbort stops all
// K variants at the same sweep boundary, OnGate reports batch progress
// against variant 0's gates.
func RunBatch(sims []*Simulator, circuits []*quantum.Circuit, ctl RunControl) error {
	if len(sims) == 0 {
		return fmt.Errorf("%w: empty batch", ErrBatchMismatch)
	}
	if len(sims) != len(circuits) {
		return fmt.Errorf("%w: %d simulators for %d circuits", ErrBatchMismatch, len(sims), len(circuits))
	}
	s0 := sims[0]
	for v, s := range sims {
		if s == nil || circuits[v] == nil {
			return fmt.Errorf("%w: nil simulator or circuit at variant %d", ErrBatchMismatch, v)
		}
		if circuits[v].N != s.cfg.Qubits {
			return fmt.Errorf("%w: variant %d circuit has %d qubits, simulator %d", ErrBatchMismatch, v, circuits[v].N, s.cfg.Qubits)
		}
		if circuits[v].Parametric() {
			return fmt.Errorf("%w: variant %d circuit has unbound parameters; Bind it first", ErrBatchMismatch, v)
		}
		if v > 0 {
			if err := sameBatchConfig(s0, s); err != nil {
				return fmt.Errorf("variant %d: %w", v, err)
			}
			if !quantum.SameShape(circuits[v], circuits[0]) {
				return fmt.Errorf("%w: variant %d circuit shape differs from variant 0 (lockstep needs one shape)", ErrBatchMismatch, v)
			}
		}
	}
	if len(sims) == 1 {
		return s0.RunControlled(circuits[0], ctl)
	}

	lockstep := true
	for _, s := range sims {
		if s.noiseActive() {
			lockstep = false
		}
	}
	for _, g := range circuits[0].Gates {
		if g.Kind == quantum.KindMeasure {
			lockstep = false
			break
		}
	}
	if !lockstep {
		// Per-variant randomness (measurement collapse, noise Paulis)
		// makes the variants' states diverge unpredictably; run them
		// one at a time so each consumes exactly its own streams.
		var firstErr error
		for v, s := range sims {
			if err := s.RunControlled(circuits[v], ctl); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, s := range sims {
			for _, rs := range s.ranks {
				rs.stats.VariantCount = len(sims)
			}
		}
		return firstErr
	}
	return runBatchLockstep(sims, circuits, ctl)
}

// sameBatchConfig verifies two simulators can run in lockstep: the
// block geometry, codec ladder, and scheduling switches must agree —
// Clone guarantees all of it.
func sameBatchConfig(a, b *Simulator) error {
	switch {
	case a.cfg.Qubits != b.cfg.Qubits,
		a.cfg.Ranks != b.cfg.Ranks,
		a.offsetBits != b.offsetBits,
		a.cfg.Uncompressed != b.cfg.Uncompressed,
		a.cfg.DisableSweeps != b.cfg.DisableSweeps,
		a.cfg.FuseGates != b.cfg.FuseGates,
		a.cfg.MemoryBudget != b.cfg.MemoryBudget:
		return fmt.Errorf("%w: simulator configuration differs from variant 0", ErrBatchMismatch)
	}
	if len(a.cfg.ErrorLevels) != len(b.cfg.ErrorLevels) {
		return fmt.Errorf("%w: error-level ladder differs from variant 0", ErrBatchMismatch)
	}
	for i := range a.cfg.ErrorLevels {
		if a.cfg.ErrorLevels[i] != b.cfg.ErrorLevels[i] {
			return fmt.Errorf("%w: error-level ladder differs from variant 0", ErrBatchMismatch)
		}
	}
	return nil
}

// runBatchLockstep is the batched analogue of RunControlled: one sweep
// plan, one set of SPMD ranks, one error barrier per sweep — K states.
func runBatchLockstep(sims []*Simulator, circuits []*quantum.Circuit, ctl RunControl) error {
	s0 := sims[0]
	K := len(sims)
	// Fuse per variant. Fusion decisions read only gate structure
	// (kind, target, controls), which is identical across bindings, so
	// the shapes stay aligned; the check below is a tripwire.
	cs := make([]*quantum.Circuit, K)
	for v, c := range circuits {
		if sims[v].cfg.FuseGates {
			c = quantum.FuseSingleQubitGates(c)
		}
		cs[v] = c
	}
	for v := 1; v < K; v++ {
		if !quantum.SameShape(cs[v], cs[0]) {
			return fmt.Errorf("%w: variant %d shape diverged after fusion", ErrBatchMismatch, v)
		}
	}
	nGates := len(cs[0].Gates)
	if nGates > 0 {
		for _, s := range sims {
			s.version++
		}
	}
	var plan []quantum.Sweep
	if s0.sweepsEnabled() {
		plan = quantum.PlanSweeps(cs[0].Gates, s0.offsetBits)
	} else {
		plan = quantum.SingletonSweeps(cs[0].Gates)
	}
	for _, s := range sims {
		s.gateLevel = make([]uint32, nGates)
	}
	rankErrs := make([]error, s0.cfg.Ranks)
	var abortErr error
	var executed int
	comms, err := s0.launcher().Launch(s0.cfg.Ranks, func(comm mpi.Comm) {
		r := comm.Rank()
		ran := 0
		for _, sw := range plan {
			if ctl.PollAbort != nil {
				var stop float64
				if r == 0 {
					if aerr := ctl.PollAbort(); aerr != nil {
						abortErr = aerr
						stop = 1
					}
				}
				if comm.Bcast(0, stop) != 0 {
					break
				}
			}
			var swErr error
			if sw.Local {
				swErr = batchSweepRank(sims, cs, r, sw)
			} else {
				// Non-local sweeps are singletons by construction.
				for gi := sw.Start; gi < sw.End; gi++ {
					if gerr := batchGateRank(comm, sims, cs, r, gi); gerr != nil && swErr == nil {
						swErr = gerr
					}
				}
			}
			var flag float64
			if swErr != nil {
				flag = 1
			}
			if comm.AllreduceSum(flag) != 0 {
				if swErr == nil {
					swErr = errPeerRankFailed
				}
				rankErrs[r] = swErr
				break
			}
			ran += sw.Len()
			if r == 0 && ctl.OnGate != nil {
				for gi := sw.Start; gi < sw.End; gi++ {
					ctl.OnGate(gi, nGates, cs[0].Gates[gi])
				}
			}
		}
		for _, s := range sims {
			s.ranks[r].stats.Gates += ran
			s.ranks[r].stats.VariantCount = K
		}
		if r == 0 {
			executed = ran
		}
	})
	if err != nil {
		return err
	}
	// One set of comms served the whole batch; the communication time
	// and traffic are charged to variant 0.
	for i, comm := range comms {
		if comm == nil {
			continue
		}
		s0.ranks[i].stats.CommTime += comm.CommTime()
		s0.bytesMoved += comm.BytesMoved()
	}
	for _, s := range sims {
		for _, lvl := range s.gateLevel {
			if lvl > 0 {
				s.ledger *= 1 - s.cfg.ErrorLevels[lvl-1]
			}
		}
		s.gatesRun += executed
	}
	var gateErr error
	for _, e := range rankErrs {
		if e != nil && (gateErr == nil || errors.Is(gateErr, errPeerRankFailed)) {
			gateErr = e
		}
	}
	if abortErr != nil {
		return fmt.Errorf("core: batched run aborted after %d of %d gates: %w", executed, nGates, abortErr)
	}
	if gateErr != nil {
		return fmt.Errorf("core: batched run failed after %d of %d gates: %w", executed, nGates, gateErr)
	}
	return nil
}

// batchGateRank executes one non-block-local gate for all K variants on
// rank r, dispatching on the (shared) target segment.
func batchGateRank(comm mpi.Comm, sims []*Simulator, cs []*quantum.Circuit, r, gi int) error {
	s0 := sims[0]
	g0 := cs[0].Gates[gi]
	offCtrl, blkCtrl, rankCtrl := s0.splitControls(g0.Controls)
	if r&rankCtrl != rankCtrl {
		return nil
	}
	q := g0.Target
	switch {
	case q < s0.offsetBits:
		return batchLocalGate(sims, cs, r, gi, offCtrl, blkCtrl)
	case q < s0.offsetBits+s0.blockBits:
		return batchCrossBlock(sims, cs, r, gi, offCtrl, blkCtrl)
	default:
		// Cross-rank: the block exchange dominates and the SendRecv
		// protocol is already sequential per variant; no codec sharing.
		// Every variant's exchange must run even after an earlier
		// variant failed — the peer rank cannot know, and skipping
		// would strand it mid-protocol. applyCrossRank itself keeps the
		// exchange alive internally on error.
		var firstErr error
		for v, s := range sims {
			if err := s.applyCrossRank(comm, s.ranks[r], cs[v].Gates[gi], gi, offCtrl, blkCtrl); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
}

// batchSweepRank executes one block-local sweep for all K variants in a
// single block-index-first pass.
func batchSweepRank(sims []*Simulator, cs []*quantum.Circuit, r int, sw quantum.Sweep) error {
	s0 := sims[0]
	K := len(sims)
	k := sw.Len()
	ba := s0.blockAmps()
	sigs := make([]string, K)
	lvls := make([]int, K)
	appliers := make([]func([]float64), K)
	for v, s := range sims {
		gates := cs[v].Gates[sw.Start:sw.End]
		sigs[v] = quantum.SweepSignature(gates)
		lvls[v] = s.ranks[r].level
		lg := make([]localGate, k)
		for i, g := range gates {
			offCtrl, _, _ := s.splitControls(g.Controls)
			lg[i] = localGate{tMask: 1 << uint(g.Target), offCtrl: offCtrl, u: g.U}
		}
		appliers[v] = func(x []float64) {
			for _, g := range lg {
				for base := 0; base < ba; base += g.tMask << 1 {
					for o := base; o < base+g.tMask; o++ {
						if uint64(o)&g.offCtrl != g.offCtrl {
							continue
						}
						applyPair(g.u, x, o, o|g.tMask)
					}
				}
			}
		}
	}
	if err := batchBlockPass(sims, r, sigs, lvls, appliers, 0, int64(k-1)); err != nil {
		return err
	}
	for v, s := range sims {
		rs := s.ranks[r]
		rs.stats.Sweeps++
		rs.stats.SweepGates += k
		s.noteLevel(rs, sw.End-1, lvls[v])
		s.maybeEscalate(rs)
	}
	return nil
}

// batchLocalGate executes one offset-segment-target gate (a singleton
// sweep with block/rank controls, or any gate with sweeps disabled) for
// all K variants in one shared pass.
func batchLocalGate(sims []*Simulator, cs []*quantum.Circuit, r, gi int, offCtrl uint64, blkCtrl int) error {
	s0 := sims[0]
	K := len(sims)
	ba := s0.blockAmps()
	tMask := 1 << uint(cs[0].Gates[gi].Target)
	sigs := make([]string, K)
	lvls := make([]int, K)
	appliers := make([]func([]float64), K)
	for v, s := range sims {
		g := cs[v].Gates[gi]
		sigs[v] = g.Signature()
		lvls[v] = s.ranks[r].level
		u := g.U
		appliers[v] = func(x []float64) {
			for base := 0; base < ba; base += tMask << 1 {
				for o := base; o < base+tMask; o++ {
					if uint64(o)&offCtrl != offCtrl {
						continue
					}
					applyPair(u, x, o, o|tMask)
				}
			}
		}
	}
	if err := batchBlockPass(sims, r, sigs, lvls, appliers, blkCtrl, 0); err != nil {
		return err
	}
	for v, s := range sims {
		rs := s.ranks[r]
		s.noteLevel(rs, gi, lvls[v])
		s.maybeEscalate(rs)
	}
	return nil
}

// batchMemo is the per-pass content-addressed dedup table: (signature,
// level, compressed input blob(s)) → compressed output blob(s). Two
// variants whose blocks have not diverged — or two byte-identical
// blocks within one variant — resolve to the same key, and the second
// lookup reuses the first's output instead of paying the codec. Workers
// racing on the same key may both compute (benign: deterministic codecs
// make the results identical); cross-VARIANT sharing never races, since
// one worker owns all K variants of its block.
type batchMemo struct {
	mu sync.Mutex
	m  map[string]memoEntry
}

type memoEntry struct{ out1, out2 []byte }

func (m *batchMemo) get(key string) (memoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.m[key]
	return e, ok
}

func (m *batchMemo) put(key string, out1, out2 []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[key] = memoEntry{out1: out1, out2: out2}
}

// batchBlockPass fans one decompress → apply-K-variants → recompress
// pass over rank r's blocks, block-index-first: each block is processed
// for all K variants back to back by one worker, so the memo turns
// undiverged variants into copies. Codec calls are charged to the
// variant that actually issued them; a memo hit charges the saved
// variant's CodecPassesShared instead. The per-rank §3.4 block cache is
// not consulted — the memo subsumes it within a pass, and feeding K
// variants' traffic through one LRU would thrash its probation logic.
func batchBlockPass(sims []*Simulator, r int, sigs []string, lvls []int, appliers []func([]float64), blkCtrl int, passesSaved int64) error {
	s0 := sims[0]
	rs0 := s0.ranks[r]
	K := len(sims)
	for _, s := range sims {
		s.hintBlocks(s.ranks[r], blkCtrl, 0)
	}
	memo := &batchMemo{m: make(map[string]memoEntry)}
	nb := s0.blocksPerRank()
	nw := len(rs0.workers)
	if nw > nb {
		nw = nb
	}
	// Per-worker, per-variant stat shards (the rank's own worker shards
	// would attribute every variant's codec work to variant 0).
	shards := make([][]Stats, nw)
	for i := range shards {
		shards[i] = make([]Stats, K)
	}
	process := func(w *workerState, shard []Stats, b int) error {
		if b&blkCtrl != blkCtrl {
			return nil
		}
		for v, s := range sims {
			rs := s.ranks[r]
			cur, err := rs.store.Get(b)
			if err != nil {
				return err
			}
			key := cacheKey(sigs[v], lvls[v], cur, nil)
			if e, ok := memo.get(key); ok {
				if err := s.updateBlock(rs, b, append([]byte(nil), e.out1...)); err != nil {
					return err
				}
				shard[v].CodecPassesShared++
				continue
			}
			st := &shard[v]
			if err := s.decompressBlock(cur, w.x, st); err != nil {
				return err
			}
			start := time.Now()
			appliers[v](w.x)
			st.ComputeTime += time.Since(start)
			blob, err := s.compressBlock(lvls[v], w.x, st)
			if err != nil {
				return err
			}
			if err := s.updateBlock(rs, b, blob); err != nil {
				return err
			}
			memo.put(key, blob, nil)
			st.CodecPassesSaved += passesSaved
		}
		return nil
	}
	firstErr := batchForBlocks(rs0, nw, nb, s0.blockAmps(), shards, process)
	for i := 0; i < nw; i++ {
		for v, s := range sims {
			s.ranks[r].stats.addShard(shards[i][v])
		}
	}
	return firstErr
}

// batchForBlocks is forBlocks with per-variant shards: dynamic block
// assignment over variant 0's worker pool, bit-identical results for
// every worker count (no path depends on iteration order).
func batchForBlocks(rs0 *rankState, nw, nb, blockAmps int, shards [][]Stats, process func(w *workerState, shard []Stats, b int) error) error {
	var firstErr error
	if nw <= 1 {
		w := rs0.w0()
		for b := 0; b < nb; b++ {
			if firstErr = process(w, shards[0], b); firstErr != nil {
				break
			}
		}
		return firstErr
	}
	var (
		next int64 = -1
		fail int32
		once sync.Once
		wg   sync.WaitGroup
	)
	for i := 0; i < nw; i++ {
		w := rs0.workers[i]
		shard := shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.ensure(2 * blockAmps)
			for atomic.LoadInt32(&fail) == 0 {
				b := atomic.AddInt64(&next, 1)
				if b >= int64(nb) {
					return
				}
				if err := process(w, shard, int(b)); err != nil {
					once.Do(func() { firstErr = err })
					atomic.StoreInt32(&fail, 1)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// batchCrossBlock executes one block-segment-target gate for all K
// variants: each worker owns a block pair at a time (two blobs per memo
// key), all K variants of the pair back to back.
func batchCrossBlock(sims []*Simulator, cs []*quantum.Circuit, r, gi int, offCtrl uint64, blkCtrl int) error {
	s0 := sims[0]
	K := len(sims)
	ba := s0.blockAmps()
	g0 := cs[0].Gates[gi]
	tb := 1 << uint(g0.Target-s0.offsetBits)
	sigs := make([]string, K)
	lvls := make([]int, K)
	us := make([]quantum.Matrix2, K)
	for v, s := range sims {
		sigs[v] = cs[v].Gates[gi].Signature()
		lvls[v] = s.ranks[r].level
		us[v] = cs[v].Gates[gi].U
	}
	for _, s := range sims {
		s.hintBlocks(s.ranks[r], blkCtrl, tb)
	}
	memo := &batchMemo{m: make(map[string]memoEntry)}
	rs0 := s0.ranks[r]
	nb := s0.blocksPerRank()
	nw := len(rs0.workers)
	if nw > nb {
		nw = nb
	}
	shards := make([][]Stats, nw)
	for i := range shards {
		shards[i] = make([]Stats, K)
	}
	process := func(w *workerState, shard []Stats, b int) error {
		if b&tb != 0 || b&blkCtrl != blkCtrl {
			return nil
		}
		pb := b | tb
		for v, s := range sims {
			rs := s.ranks[r]
			curB, err := rs.store.Get(b)
			if err != nil {
				return err
			}
			curP, err := rs.store.Get(pb)
			if err != nil {
				return err
			}
			key := cacheKey(sigs[v], lvls[v], curB, curP)
			if e, ok := memo.get(key); ok {
				if err := s.updateBlock(rs, b, append([]byte(nil), e.out1...)); err != nil {
					return err
				}
				if err := s.updateBlock(rs, pb, append([]byte(nil), e.out2...)); err != nil {
					return err
				}
				shard[v].CodecPassesShared += 2
				continue
			}
			st := &shard[v]
			if err := s.decompressBlock(curB, w.x, st); err != nil {
				return err
			}
			if err := s.decompressBlock(curP, w.y, st); err != nil {
				return err
			}
			start := time.Now()
			x, y := w.x, w.y
			for o := 0; o < ba; o++ {
				if uint64(o)&offCtrl != offCtrl {
					continue
				}
				applyPairSplit(us[v], x, y, o)
			}
			st.ComputeTime += time.Since(start)
			blobX, err := s.compressBlock(lvls[v], w.x, st)
			if err != nil {
				return err
			}
			if err := s.updateBlock(rs, b, blobX); err != nil {
				return err
			}
			blobY, err := s.compressBlock(lvls[v], w.y, st)
			if err != nil {
				return err
			}
			if err := s.updateBlock(rs, pb, blobY); err != nil {
				return err
			}
			memo.put(key, blobX, blobY)
		}
		return nil
	}
	firstErr := batchForBlocks(rs0, nw, nb, ba, shards, process)
	for i := 0; i < nw; i++ {
		for v, s := range sims {
			s.ranks[r].stats.addShard(shards[i][v])
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for v, s := range sims {
		rs := s.ranks[r]
		s.noteLevel(rs, gi, lvls[v])
		s.maybeEscalate(rs)
	}
	return nil
}
