package core

// FidelityLowerBound returns the running lower bound on the simulation
// fidelity, Π(1-δᵢ) over all gates executed so far (paper Eq. 11): each
// gate contributes the loosest error bound any rank used while executing
// it, or nothing when every rank was still lossless.
func (s *Simulator) FidelityLowerBound() float64 { return s.ledger }

// FidelityBound computes the paper's Eq. 11 analytically for a given
// sequence of per-gate error bounds (0 = lossless gate). The Fig. 6
// curves are FidelityBound over constant-bound gate sequences.
func FidelityBound(gateBounds []float64) float64 {
	f := 1.0
	for _, d := range gateBounds {
		f *= 1 - d
	}
	return f
}

// FidelityCurve returns Eq. 11 evaluated after 1..gates gates at a
// constant per-gate bound δ — one Fig. 6 series.
func FidelityCurve(delta float64, gates int) []float64 {
	out := make([]float64, gates)
	f := 1.0
	for i := 0; i < gates; i++ {
		f *= 1 - delta
		out[i] = f
	}
	return out
}
