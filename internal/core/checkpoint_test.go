package core

import (
	"bytes"
	"testing"

	"qcsim/internal/quantum"
)

func TestCheckpointRoundTrip(t *testing.T) {
	// Run half a deep circuit, checkpoint, resume in a fresh simulator
	// (§3.5's wall-time workflow), finish, and compare against an
	// uninterrupted run.
	full := quantum.QFT(8, 21)
	half := len(full.Gates) / 2
	first := &quantum.Circuit{N: 8, Gates: full.Gates[:half]}
	second := &quantum.Circuit{N: 8, Gates: full.Gates[half:]}

	s1 := newSim(t, 8, 2, 16, nil)
	if err := s1.Run(first); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := newSim(t, 8, 2, 16, nil)
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.GatesRun() != half {
		t.Fatalf("restored GatesRun = %d, want %d", s2.GatesRun(), half)
	}
	if err := s2.Run(second); err != nil {
		t.Fatal(err)
	}

	sFull := newSim(t, 8, 2, 16, nil)
	if err := sFull.Run(full); err != nil {
		t.Fatal(err)
	}
	a, _ := s2.FullState()
	b, _ := sFull.FullState()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resumed state differs at %d", i)
		}
	}
}

func TestCheckpointPreservesLedgerAndMeasurements(t *testing.T) {
	s := newSim(t, 6, 1, 8, func(c *Config) { c.MemoryBudget = 256 })
	c := quantum.NewCircuit(6)
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	c.Measure(0)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newSim(t, 6, 1, 8, func(c *Config) { c.MemoryBudget = 256 })
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.FidelityLowerBound() != s.FidelityLowerBound() {
		t.Fatalf("ledger lost: %v vs %v", s2.FidelityLowerBound(), s.FidelityLowerBound())
	}
	m1, m2 := s.Measurements(), s2.Measurements()
	if len(m1) != 1 || len(m2) != 1 || m1[0] != m2[0] {
		t.Fatalf("measurements lost: %v vs %v", m1, m2)
	}
}

// TestLoadClearsOverBudgetLatch: restoring a checkpoint replaces the
// state, so the per-rank over-budget latch (and the FinalLevel
// high-water mark) from the pre-restore timeline must not survive Load
// — a healthy checkpoint used to load with OverBudget() still true,
// making the next run report a phantom budget failure.
func TestLoadClearsOverBudgetLatch(t *testing.T) {
	mk := func(budget int64) *Simulator {
		return newSim(t, 6, 2, 8, func(c *Config) {
			c.MemoryBudget = budget
			c.ErrorLevels = []float64{1e-4}
		})
	}
	s := mk(400)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	if s.OverBudget() {
		t.Fatal("GHZ run over budget; healthy-checkpoint precondition void")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	savedLevel := s.Stats().FinalLevel

	// Escalate past the single-level ladder: a dense, phase-varied state
	// cannot fit 400 bytes at any level.
	for i := 0; i < 4 && !s.OverBudget(); i++ {
		if err := s.Run(quantum.QFT(6, int64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	if !s.OverBudget() {
		t.Fatal("ladder never exhausted; latch scenario void")
	}

	if err := s.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s.OverBudget() {
		t.Fatal("restored a healthy checkpoint but the over-budget latch survived")
	}
	if got := s.Stats().FinalLevel; got != savedLevel {
		t.Fatalf("restored FinalLevel = %d, want the checkpoint's %d", got, savedLevel)
	}
	// The restored state must run cleanly and stay within budget.
	if err := s.Run(quantum.NewCircuit(6).H(0).H(0)); err != nil {
		t.Fatal(err)
	}
	if s.OverBudget() {
		t.Fatal("post-restore run of a tiny-support state tripped the budget")
	}
}

// TestLoadRelatchesOverBudgetCheckpoint is the other side of the latch
// contract: a state SAVED over budget at the loosest bound is still
// over budget after the restore, so Load must re-derive the latch from
// the restored footprint instead of clearing it unconditionally.
func TestLoadRelatchesOverBudgetCheckpoint(t *testing.T) {
	mk := func() *Simulator {
		return newSim(t, 6, 2, 8, func(c *Config) {
			c.MemoryBudget = 200
			c.ErrorLevels = []float64{1e-4}
		})
	}
	s := mk()
	for i := 0; i < 4 && !s.OverBudget(); i++ {
		if err := s.Run(quantum.QFT(6, int64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	if !s.OverBudget() {
		t.Fatal("ladder never exhausted; over-budget checkpoint scenario void")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := mk()
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !s2.OverBudget() {
		t.Fatal("restored an over-budget checkpoint but OverBudget() reports healthy")
	}
}

func TestCheckpointGeometryMismatch(t *testing.T) {
	s := newSim(t, 6, 2, 8, nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrongQubits := newSim(t, 7, 2, 8, nil)
	if err := wrongQubits.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
	wrongRanks := newSim(t, 6, 4, 8, nil)
	if err := wrongRanks.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	s := newSim(t, 6, 1, 8, nil)
	if err := s.Run(quantum.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle: the checksum must catch it.
	raw := buf.Bytes()
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)/2] ^= 0xFF
	s2 := newSim(t, 6, 1, 8, nil)
	if err := s2.Load(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	// Truncation must also fail cleanly.
	if err := s2.Load(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	// Not-a-checkpoint input.
	if err := s2.Load(bytes.NewReader([]byte("definitely not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A failed load must leave the simulator usable.
	if err := s2.Run(quantum.GHZ(6)); err != nil {
		t.Fatalf("simulator broken after failed load: %v", err)
	}
}
