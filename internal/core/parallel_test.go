package core

import (
	"testing"
	"testing/quick"

	"qcsim/internal/quantum"
)

// The worker pool's contract: amplitudes, measurement outcomes, and the
// fidelity ledger are bit-identical for every worker count. These tests
// are the ones `go test -race` leans on — Workers > 1 forces the
// fan-out paths even on a single-CPU machine.

// runWorkload executes a measurement-heavy lossy workload at the given
// worker count and returns the simulator for inspection.
func runWorkload(t *testing.T, workers int, budget int64, cache int) *Simulator {
	t.Helper()
	s := newSim(t, 8, 2, 16, func(c *Config) {
		c.Workers = workers
		c.MemoryBudget = budget
		c.CacheLines = cache
	})
	c := quantum.RandomCircuit(8, 80, 21)
	c.Measure(2)
	c.Measure(6)
	if err := s.SetNoise(&NoiseModel{Prob: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkersBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
		cache  int
	}{
		{"lossless", 0, 0},
		{"lossless-cache", 0, 64},
		{"lossy", 2048, 0},
		{"lossy-cache", 2048, 64},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s1 := runWorkload(t, 1, tc.budget, tc.cache)
			s4 := runWorkload(t, 4, tc.budget, tc.cache)
			a1, err := s1.FullState()
			if err != nil {
				t.Fatal(err)
			}
			a4, err := s4.FullState()
			if err != nil {
				t.Fatal(err)
			}
			for i := range a1 {
				if a1[i] != a4[i] {
					t.Fatalf("amplitude %d differs across worker counts: %v vs %v", i, a1[i], a4[i])
				}
			}
			m1, m4 := s1.Measurements(), s4.Measurements()
			if len(m1) != len(m4) {
				t.Fatalf("measurement counts differ: %v vs %v", m1, m4)
			}
			for i := range m1 {
				if m1[i] != m4[i] {
					t.Fatalf("measurement %d differs: %v vs %v", i, m1, m4)
				}
			}
			if l1, l4 := s1.FidelityLowerBound(), s4.FidelityLowerBound(); l1 != l4 {
				t.Fatalf("ledger differs across worker counts: %v vs %v", l1, l4)
			}
			if e1, e4 := s1.Stats().Escalations, s4.Stats().Escalations; e1 != e4 {
				t.Fatalf("escalation counts differ: %d vs %d", e1, e4)
			}
		})
	}
}

// TestQuickWorkersDeterministic is the property-test form: ANY circuit,
// ANY geometry, ANY worker count in 1..8 — same bits out.
func TestQuickWorkersDeterministic(t *testing.T) {
	f := func(seed int64, geomSel, workerSel, gateCount uint8) bool {
		qubits := 7
		geoms := []struct{ ranks, block int }{
			{1, 128}, {1, 16}, {2, 16}, {4, 8}, {2, 64},
		}
		g := geoms[int(geomSel)%len(geoms)]
		workers := 2 + int(workerSel)%7
		gates := 20 + int(gateCount)%60
		cir := quantum.RandomCircuit(qubits, gates, seed)
		cir.Measure(int(uint64(seed) % uint64(qubits)))
		run := func(w int) *Simulator {
			s, err := New(Config{Qubits: qubits, Ranks: g.ranks, BlockAmps: g.block, Seed: 9, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(cir); err != nil {
				t.Fatal(err)
			}
			return s
		}
		s1, sN := run(1), run(workers)
		a1, err := s1.FullState()
		if err != nil {
			t.Fatal(err)
		}
		aN, err := sN.FullState()
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1 {
			if a1[i] != aN[i] {
				t.Logf("seed %d geom %+v workers %d: amplitude %d differs", seed, g, workers, i)
				return false
			}
		}
		o1, oN := s1.Measurements(), sN.Measurements()
		if len(o1) != len(oN) || o1[0] != oN[0] {
			t.Logf("seed %d: measurements differ: %v vs %v", seed, o1, oN)
			return false
		}
		return s1.FidelityLowerBound() == sN.FidelityLowerBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersMoreThanBlocks: the pool is clamped to the block count, so
// oversubscription is legal and still exact.
func TestWorkersMoreThanBlocks(t *testing.T) {
	s := newSim(t, 6, 1, 16, func(c *Config) { c.Workers = 32 }) // 4 blocks, 32 workers
	compareToReference(t, s, quantum.RandomCircuit(6, 60, 31), 1e-12)
}

// TestWorkerStatsAccounting: the shard merge must preserve the Table 2
// accounting when the block loop runs parallel.
func TestWorkerStatsAccounting(t *testing.T) {
	s := newSim(t, 8, 1, 16, func(c *Config) { c.Workers = 4 })
	if err := s.Run(quantum.RandomCircuit(8, 60, 41)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CompressTime == 0 || st.DecompressTime == 0 || st.ComputeTime == 0 {
		t.Fatalf("worker time shards not merged into rank stats: %+v", st)
	}
	for _, rs := range s.ranks {
		for _, w := range rs.workers {
			if w.stats != (Stats{}) {
				t.Fatalf("worker shard not drained after fan-out: %+v", w.stats)
			}
		}
	}
}

// TestWorkerErrorPropagates: a codec failure inside a worker goroutine
// must surface as an error from Run, not a hang or a crash.
func TestWorkerErrorPropagates(t *testing.T) {
	s := newSim(t, 8, 1, 16, func(c *Config) {
		c.Workers = 4
		c.MemoryBudget = 1
		c.Lossy = failingCodec{}
	})
	if err := s.Run(quantum.QFT(8, 2)); err == nil {
		t.Fatal("run succeeded with failing lossy codec under budget pressure")
	}
}
