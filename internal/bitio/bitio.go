// Package bitio provides bit-granular writers and readers used by the
// compression codecs in this repository (bit-plane truncation, Huffman
// codes, embedded coding). The writer packs bits MSB-first into a byte
// slice; the reader consumes the same layout.
package bitio

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader methods when the underlying buffer
// does not contain the requested number of bits.
var ErrShortBuffer = errors.New("bitio: short buffer")

// Writer accumulates bits MSB-first. The zero value is ready to use.
type Writer struct {
	buf  []byte
	bitN uint8 // number of bits already used in the last byte (0..7)
}

// NewWriter returns a Writer whose internal buffer has the given capacity
// hint in bytes.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Reset clears the writer, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.bitN = 0
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	if w.bitN == 0 {
		w.buf = append(w.buf, 0)
	}
	if b&1 != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.bitN)
	}
	w.bitN = (w.bitN + 1) & 7
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	for n >= 8 && w.bitN == 0 {
		n -= 8
		w.buf = append(w.buf, byte(v>>n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// WriteBytes appends whole bytes. It is fastest when the writer is
// byte-aligned.
func (w *Writer) WriteBytes(p []byte) {
	if w.bitN == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	w.bitN = 0
}

// BitLen reports the total number of bits written.
func (w *Writer) BitLen() int {
	n := len(w.buf) * 8
	if w.bitN != 0 {
		n -= 8 - int(w.bitN)
	}
	return n
}

// Bytes returns the packed buffer. Trailing bits of the final byte are zero.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int   // next byte index
	bitN uint8 // bits already consumed from buf[pos] (0..7)
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrShortBuffer
	}
	b := uint(r.buf[r.pos]>>(7-r.bitN)) & 1
	r.bitN++
	if r.bitN == 8 {
		r.bitN = 0
		r.pos++
	}
	return b, nil
}

// ReadBits reads n bits (n ≤ 64), most significant first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	var v uint64
	// Fast path: byte-aligned whole bytes.
	for n >= 8 && r.bitN == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrShortBuffer
		}
		v = v<<8 | uint64(r.buf[r.pos])
		r.pos++
		n -= 8
	}
	for ; n > 0; n-- {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadBytes reads whole bytes into p.
func (r *Reader) ReadBytes(p []byte) error {
	if r.bitN == 0 {
		if r.pos+len(p) > len(r.buf) {
			return ErrShortBuffer
		}
		copy(p, r.buf[r.pos:])
		r.pos += len(p)
		return nil
	}
	for i := range p {
		v, err := r.ReadBits(8)
		if err != nil {
			return err
		}
		p[i] = byte(v)
	}
	return nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	if r.bitN != 0 {
		r.bitN = 0
		r.pos++
	}
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int {
	n := (len(r.buf) - r.pos) * 8
	n -= int(r.bitN)
	if n < 0 {
		return 0
	}
	return n
}
