package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	w := NewWriter(4)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v uint64
		n uint
	}{
		{0, 1}, {1, 1}, {0b101, 3}, {0xFF, 8}, {0x1234, 16},
		{0xDEADBEEF, 32}, {0xFFFFFFFFFFFFFFFF, 64}, {42, 7}, {0, 64},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %#x want %#x", i, got, c.v)
		}
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(123, 0) // no-op
	w.WriteBits(1, 1)
	if w.BitLen() != 1 {
		t.Fatalf("BitLen = %d, want 1", w.BitLen())
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(8)
	if w.BitLen() != 0 {
		t.Fatalf("empty BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d, want 13", w.BitLen())
	}
	w.WriteBits(0, 3)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d, want 16", w.BitLen())
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(8)
	w.WriteBytes([]byte{1, 2, 3})
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("got %v", w.Bytes())
	}
	r := NewReader(w.Bytes())
	p := make([]byte, 3)
	if err := r.ReadBytes(p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("got %v", p)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(8)
	w.WriteBit(1)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit lost")
	}
	p := make([]byte, 2)
	if err := r.ReadBytes(p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{0xAB, 0xCD}) {
		t.Fatalf("got %v", p)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b101, 3)
	w.Align()
	w.WriteBits(0xFF, 8)
	r := NewReader(w.Bytes())
	v, _ := r.ReadBits(3)
	if v != 0b101 {
		t.Fatalf("prefix = %b", v)
	}
	r.Align()
	v, _ = r.ReadBits(8)
	if v != 0xFF {
		t.Fatalf("aligned byte = %#x", v)
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(16); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	r2 := NewReader(nil)
	if _, err := r2.ReadBit(); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	r3 := NewReader([]byte{1, 2})
	if err := r3.ReadBytes(make([]byte, 3)); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBits(3, 2)
	if w.BitLen() != 2 {
		t.Fatalf("BitLen after reset = %d", w.BitLen())
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthSeed int64) bool {
		rng := rand.New(rand.NewSource(widthSeed))
		widths := make([]uint, len(vals))
		masked := make([]uint64, len(vals))
		w := NewWriter(len(vals) * 8)
		for i, v := range vals {
			n := uint(rng.Intn(64) + 1)
			widths[i] = n
			if n < 64 {
				v &= (1 << n) - 1
			}
			masked[i] = v
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != masked[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&8191 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 23)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 8192; i++ {
		w.WriteBits(uint64(i), 23)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(buf)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 23 {
			r = NewReader(buf)
		}
		r.ReadBits(23)
	}
}
