package harness

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExperimentsRunSmall(t *testing.T) {
	opt := Small()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opt); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table2"); !ok {
		t.Fatal("table2 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	if len(IDs()) != len(Experiments()) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1Rows()
	want := map[string]int{"Summit": 47, "Sierra": 46, "Sunway TaihuLight": 46, "Theta": 45}
	for _, r := range rows {
		if want[r.System] != r.MaxQubits {
			t.Errorf("%s: max qubits %d, paper says %d", r.System, r.MaxQubits, want[r.System])
		}
	}
}

// ratioOf finds a measurement in a result set.
func ratioOf(rs []RatioResult, dataset, codec string, bound float64) (float64, bool) {
	for _, r := range rs {
		if r.Dataset == dataset && r.Codec == codec && r.Bound == bound {
			return r.Ratio, true
		}
	}
	return 0, false
}

func TestFig7Shape_SZBeatsZFP(t *testing.T) {
	// Paper Fig. 7: SZ leads ZFP by a wide margin at every bound.
	opt := Small()
	rs, err := Fig7Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	total := 0
	for _, ds := range []string{"qaoa_11", "sup_11"} {
		for _, b := range paperBounds {
			sz, ok1 := ratioOf(rs, ds, "sz-a", b)
			zfp, ok2 := ratioOf(rs, ds, "zfp-like", b)
			if !ok1 || !ok2 {
				t.Fatalf("missing measurements for %s bound %g", ds, b)
			}
			total++
			if sz > zfp {
				wins++
			}
		}
	}
	if wins < total*8/10 {
		t.Fatalf("SZ beat ZFP in only %d/%d settings", wins, total)
	}
}

func TestFig8Shape_SZLeads(t *testing.T) {
	opt := Small()
	rs, err := Fig8Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	// SZ should lead ZFP at the loose-to-moderate bounds where the
	// prediction model has headroom (at 1e-4/1e-5 on our laptop-scale
	// snapshots the log-quantizer saturates into literals — see
	// EXPERIMENTS.md).
	wins, total := 0, 0
	for _, ds := range []string{"qaoa_11", "sup_11"} {
		for _, b := range []float64{1e-1, 1e-2, 1e-3} {
			sz, ok := ratioOf(rs, ds, "sz-a", b)
			if !ok {
				t.Fatalf("missing sz for %s %g", ds, b)
			}
			zfp, _ := ratioOf(rs, ds, "zfp-like", b)
			total++
			if sz > zfp*0.95 {
				wins++
			}
		}
	}
	if wins < total*5/6 {
		t.Fatalf("SZ led ZFP in only %d/%d loose-bound settings", wins, total)
	}
	// FPZIP must trail SZ overall (paper Fig. 8).
	var szSum, fpSum float64
	for _, b := range paperBounds {
		sz, _ := ratioOf(rs, "qaoa_11", "sz-a", b)
		fp, _ := ratioOf(rs, "qaoa_11", "fpzip-like", b)
		szSum += sz
		fpSum += fp
	}
	if szSum <= fpSum {
		t.Fatalf("FPZIP (%.1f total) should trail SZ (%.1f total)", fpSum, szSum)
	}
}

func TestFig10Shape_SolutionCDCompetitive(t *testing.T) {
	// Paper Fig. 10: Solutions C/D lead A/B by ~30-50% on quantum data.
	opt := Small()
	rs, err := Fig10Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	cWins, total := 0, 0
	for _, ds := range []string{"qaoa_11", "sup_11"} {
		for _, b := range paperBounds {
			a, _ := ratioOf(rs, ds, "sz-a", b)
			c, _ := ratioOf(rs, ds, "xor-c", b)
			if a == 0 || c == 0 {
				t.Fatalf("missing ratios for %s %g", ds, b)
			}
			total++
			if c > a*0.9 { // C at least competitive, usually ahead
				cWins++
			}
		}
	}
	if cWins < total*7/10 {
		t.Fatalf("Solution C competitive in only %d/%d settings", cWins, total)
	}
}

func TestFig11Shape_CFasterThanA(t *testing.T) {
	// Paper Fig. 11: Solutions C/D run much faster than A/B (they skip
	// prediction, quantization, and Huffman).
	opt := Small()
	rs, err := Fig11Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	var aC, aA, dC, dA float64
	var nC, nA int
	for _, r := range rs {
		switch r.Codec {
		case "xor-c":
			aC += r.CompressMB
			dC += r.DecompMB
			nC++
		case "sz-a":
			aA += r.CompressMB
			dA += r.DecompMB
			nA++
		}
	}
	if nC == 0 || nA == 0 {
		t.Fatal("missing solutions in rate results")
	}
	if aC/float64(nC) <= aA/float64(nA) {
		t.Fatalf("Solution C compression (%.1f MB/s) not faster than A (%.1f MB/s)",
			aC/float64(nC), aA/float64(nA))
	}
}

func TestFig12Shape_BoundsRespected(t *testing.T) {
	opt := Small()
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range Solutions() {
			for _, b := range paperBounds {
				maxes, err := BlockErrors(snap.Data, codec, b, opt.SnapshotBlock)
				if err != nil {
					t.Fatal(err)
				}
				for i, m := range maxes {
					if m > b*(1+1e-9) {
						t.Fatalf("%s %s bound %g: block %d max error %g", snap.Name, codec.Name(), b, i, m)
					}
				}
			}
		}
	}
}

func TestFig14Shape_UncorrelatedAndOverPreserved(t *testing.T) {
	opt := Small()
	rs, err := Fig14Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rs {
		if math.Abs(r.AutoCorr) > 0.05 {
			t.Errorf("%s bound %g: lag-1 autocorrelation %g too large", r.Dataset, r.Bound, r.AutoCorr)
		}
		if r.MeanFrac > 0.75 {
			t.Errorf("%s bound %g: mean error %.2f of bound — no over-preservation", r.Dataset, r.Bound, r.MeanFrac)
		}
	}
}

func TestFig15Shape_TimeGrowsWithQubits(t *testing.T) {
	opt := Small()
	rs, err := Fig15Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 2 {
		t.Fatal("too few points")
	}
	if rs[len(rs)-1].Elapsed <= rs[0].Elapsed {
		t.Fatalf("runtime did not grow: %v -> %v", rs[0].Elapsed, rs[len(rs)-1].Elapsed)
	}
}

func TestWorkerScalingShape(t *testing.T) {
	opt := Small()
	rs, err := WorkerScalingResults(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for w := 1; w <= opt.MaxWorkers; w *= 2 {
		want++
	}
	if len(rs) != want {
		t.Fatalf("got %d points, want %d", len(rs), want)
	}
	for i, r := range rs {
		if r.Workers != 1<<uint(i) {
			t.Fatalf("point %d has workers=%d", i, r.Workers)
		}
		if r.Elapsed <= 0 || r.Speedup <= 0 {
			t.Fatalf("point %d not measured: %+v", i, r)
		}
	}
}

// TestSweepShape: the sweep experiment must show a real codec-traffic
// reduction on both workloads (the ISSUE's ≥2× Grover criterion is
// asserted at engine level in internal/core; here we check the harness
// surfaces coherent numbers).
func TestSweepShape(t *testing.T) {
	opt := Small()
	rows, err := SweepResults(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected Grover and QAOA rows, got %v", rows)
	}
	for _, r := range rows {
		if r.CodecCallsOn >= r.CodecCallsOff {
			t.Errorf("%s: sweeps did not reduce codec calls (%d -> %d)", r.Benchmark, r.CodecCallsOff, r.CodecCallsOn)
		}
		if r.Sweeps == 0 || r.SweepGates < r.Sweeps || r.PassesSaved == 0 {
			t.Errorf("%s: implausible sweep counters: %+v", r.Benchmark, r)
		}
	}
	grover := rows[0]
	if grover.Reduction < 2 {
		t.Errorf("Grover codec reduction %.2fx below the 2x target", grover.Reduction)
	}
}

// TestBatchShape: the variant-batching experiment is the PR's
// acceptance measurement — the K-variant parameter-shift batch must
// issue at least 2× fewer run-phase codec calls per variant than K
// sequential runs on the QAOA workload (K ≥ 8 even at the small
// scale), with coherent counters.
func TestBatchShape(t *testing.T) {
	opt := Small()
	rows, err := BatchResults(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected QAOA and VQE rows, got %v", rows)
	}
	for _, r := range rows {
		if r.Variants < 8 {
			t.Errorf("%s: batch width %d below the K>=8 target", r.Benchmark, r.Variants)
		}
		if r.CodecCallsBatch >= r.CodecCallsSolo {
			t.Errorf("%s: batching did not reduce codec calls (%d -> %d)",
				r.Benchmark, r.CodecCallsSolo, r.CodecCallsBatch)
		}
		if r.PassesShared == 0 {
			t.Errorf("%s: no codec passes shared: %+v", r.Benchmark, r)
		}
		if r.PerVariantBatch >= r.PerVariantSolo {
			t.Errorf("%s: per-variant codec cost did not drop: %+v", r.Benchmark, r)
		}
	}
	qaoa := rows[0]
	if !strings.HasPrefix(qaoa.Benchmark, "QAOA") {
		t.Fatalf("first row is not QAOA: %+v", qaoa)
	}
	if qaoa.Reduction < 2 {
		t.Errorf("QAOA batch codec reduction %.2fx below the 2x acceptance target", qaoa.Reduction)
	}
}

func TestTable2Shapes(t *testing.T) {
	opt := Small()
	rows, err := Table2Results(opt)
	if err != nil {
		t.Fatal(err)
	}
	byPrefix := func(p string) *Table2Row {
		for i := range rows {
			if strings.HasPrefix(rows[i].Benchmark, p) {
				return &rows[i]
			}
		}
		return nil
	}
	grover := byPrefix("Grover")
	rcs := byPrefix("RCS")
	qft := byPrefix("QFT")
	if grover == nil || rcs == nil || qft == nil {
		t.Fatalf("missing benchmarks in %v", rows)
	}
	// Paper's headline shape: Grover ≫ QFT > supremacy in
	// compressibility.
	if grover.MinRatio <= rcs.MinRatio {
		t.Errorf("Grover min ratio %.2f not above supremacy %.2f", grover.MinRatio, rcs.MinRatio)
	}
	if qft.MinRatio <= 0 || grover.MinRatio <= 0 {
		t.Errorf("ratios not positive: %+v", rows)
	}
	// Fidelity: every row must stay within [ledger, 1].
	for _, r := range rows {
		if r.Fidelity == 0 {
			continue
		}
		if r.Fidelity < r.FidelityLow-1e-9 {
			t.Errorf("%s: fidelity %.4f below ledger %.4f", r.Benchmark, r.Fidelity, r.FidelityLow)
		}
		if r.Fidelity > 1+1e-9 {
			t.Errorf("%s: fidelity %.4f above 1", r.Benchmark, r.Fidelity)
		}
		if r.Fidelity < 0.85 {
			t.Errorf("%s: fidelity %.4f below the paper's regime", r.Benchmark, r.Fidelity)
		}
	}
	// Time breakdown percentages sum to ~100.
	for _, r := range rows {
		sum := r.CompressPct + r.DecompressPct + r.CommPct + r.ComputePct
		if math.Abs(sum-100) > 1 {
			t.Errorf("%s: breakdown sums to %.1f%%", r.Benchmark, sum)
		}
	}
}

func TestGridFor(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 12: {3, 4}, 11: {1, 11}, 9: {3, 3}}
	for n, want := range cases {
		r, c := gridFor(n)
		if r != want[0] || c != want[1] {
			t.Errorf("gridFor(%d) = %d,%d", n, r, c)
		}
	}
}

func TestExportCSV(t *testing.T) {
	dir := t.TempDir()
	if err := ExportCSV(dir, Small()); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig7_abs_ratio.csv", "fig8_rel_ratio.csv", "fig10_solutions_ratio.csv", "fig11_rates.csv", "table2.csv", "fig6_fidelity_bounds.csv", "fig16_strong_scaling.csv", "fig16w_worker_scaling.csv", "sweep_codec_reduction.csv", "sampling.csv", "crossover.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Fatalf("%s has only %d lines", f, lines)
		}
	}
}

func TestSamplingShape(t *testing.T) {
	rows, err := SamplingResults(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want GHZ and QAOA rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Shots != Small().SampleShots || r.Distinct < 1 || r.Distinct > r.Shots {
			t.Fatalf("malformed row: %+v", r)
		}
		if r.TotalMass < 0.999 || r.TotalMass > 1.001 {
			t.Fatalf("%s: lossless total mass %v, want ~1", r.Benchmark, r.TotalMass)
		}
		if r.Speedup <= 0 {
			t.Fatalf("%s: speedup %v", r.Benchmark, r.Speedup)
		}
	}
	// GHZ concentrates on two outcomes; the sampler must see exactly that.
	if rows[0].Distinct != 2 {
		t.Fatalf("GHZ drew %d distinct outcomes, want 2", rows[0].Distinct)
	}
}

func TestCrossoverShape(t *testing.T) {
	opt := Small()
	rows, err := CrossoverResults(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opt.CrossoverDepths) {
		t.Fatalf("want one row per depth, got %d", len(rows))
	}
	for i, r := range rows {
		if r.Depth != opt.CrossoverDepths[i] || r.Gates == 0 {
			t.Fatalf("malformed row: %+v", r)
		}
		// The structural estimate is an upper bound on the bond
		// dimension the run actually reached (capped by χ).
		if r.MPSMaxBond > r.EstBond && r.EstBond <= opt.BondDim {
			t.Fatalf("depth %d: actual bond %d exceeds estimate %d", r.Depth, r.MPSMaxBond, r.EstBond)
		}
		if r.MPSFidelity <= 0 || r.MPSFidelity > 1 || r.CompFidelity != 1 {
			t.Fatalf("depth %d: fidelities mps=%v comp=%v", r.Depth, r.MPSFidelity, r.CompFidelity)
		}
		if r.TimeWinner == "" || r.Auto == "" {
			t.Fatalf("depth %d: missing verdicts: %+v", r.Depth, r)
		}
	}
	// Entanglement grows monotonically with depth in a brickwork
	// circuit, so the estimate must too (until it saturates).
	for i := 1; i < len(rows); i++ {
		if rows[i].EstBond < rows[i-1].EstBond {
			t.Fatalf("estimate fell with depth: %d then %d", rows[i-1].EstBond, rows[i].EstBond)
		}
	}
	// Restricting the sweep to one engine leaves the other's cells zero.
	opt.Backend = "mps"
	only, err := CrossoverResults(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range only {
		if r.CompTime != 0 || r.CompMem != 0 {
			t.Fatalf("compressed cells populated in an mps-only sweep: %+v", r)
		}
		if r.TimeWinner != "mps" {
			t.Fatalf("winner %q in an mps-only sweep", r.TimeWinner)
		}
	}
}
