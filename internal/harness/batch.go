package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

// The batch experiment measures what variant-batched execution saves: a
// parameter-shift evaluation batch (the base binding plus ±π/2 shifts
// of the trailing gate occurrences — the mixer layer, whose variants
// share the longest common prefix) run once through core.RunBatch, vs
// the same K circuits run sequentially on fresh simulators. The
// content-addressed batch cache decompresses and recompresses each
// distinct block blob once per pass instead of once per variant, so the
// run-phase codec calls per variant drop in proportion to how long the
// variants stay undiverged.

// BatchRow is one workload measurement of the variant-batching
// experiment.
type BatchRow struct {
	Benchmark string
	Qubits    int
	// Gates is the per-variant gate count (all variants share a shape).
	Gates int
	// Variants is the batch width K = 1 base + 2·shifted occurrences.
	Variants int

	// CodecCallsSolo and CodecCallsBatch count run-phase
	// compress+decompress invocations (initialization excluded): the K
	// sequential runs summed, and the one lockstep batch.
	CodecCallsSolo  int64
	CodecCallsBatch int64
	// PerVariantSolo/Batch are the same counts divided by K.
	PerVariantSolo  float64
	PerVariantBatch float64
	// Reduction is CodecCallsSolo / CodecCallsBatch — deterministic at
	// the single-worker configuration this experiment pins.
	Reduction float64
	// PassesShared counts codec passes served from the batch cache
	// instead of re-run (summed over variants).
	PassesShared int64

	ElapsedSolo  time.Duration
	ElapsedBatch time.Duration
}

// batchWorkloads builds the parameterized ansatz workloads: the QAOA
// MAXCUT ansatz at the largest Table 2 width, and the hardware-efficient
// VQE ansatz at the same width.
func batchWorkloads(opt Options) []struct {
	name   string
	ansatz *quantum.Circuit
	values []float64
} {
	var n int
	for _, q := range opt.QAOAQubits {
		if q > n {
			n = q
		}
	}
	vqe := quantum.VQEAnsatz(n, 1)
	vqeVals := make([]float64, vqe.NumParams())
	for i := range vqeVals {
		vqeVals[i] = 0.1 * float64(i+1)
	}
	return []struct {
		name   string
		ansatz *quantum.Circuit
		values []float64
	}{
		{fmt.Sprintf("QAOA-%dq", n), quantum.QAOAAnsatz(n, 1, 2020), quantum.QAOAAngles(1, 2020)},
		{fmt.Sprintf("VQE-%dq", n), vqe, vqeVals},
	}
}

// batchCircuits binds the parameter-shift schedule: the base binding
// first, then the ±π/2 pair for each of the LAST `shifts` parametric
// occurrences. Trailing occurrences (QAOA's mixer layer) are the ones
// whose shifted variants share the longest prefix with the base run —
// the regime the batch cache exists for; shifting the leading
// occurrences instead diverges the variants immediately and shares
// almost nothing.
func batchCircuits(ansatz *quantum.Circuit, values []float64, shifts int) ([]*quantum.Circuit, error) {
	occs := ansatz.ParamOccurrences()
	if shifts > len(occs) {
		shifts = len(occs)
	}
	circuits := make([]*quantum.Circuit, 0, 1+2*shifts)
	base, err := ansatz.Bind(values)
	if err != nil {
		return nil, err
	}
	circuits = append(circuits, base)
	for i := 0; i < shifts; i++ {
		occ := occs[len(occs)-1-i]
		plus, err := ansatz.BindShift(values, occ.Gate, math.Pi/2)
		if err != nil {
			return nil, err
		}
		minus, err := ansatz.BindShift(values, occ.Gate, -math.Pi/2)
		if err != nil {
			return nil, err
		}
		circuits = append(circuits, plus, minus)
	}
	return circuits, nil
}

// BatchResults runs each workload's parameter-shift schedule twice —
// K sequential solo runs, then one lockstep RunBatch — and reports the
// codec-call reduction. Both sides run single-worker so every counter
// is deterministic (the batch cache's hit pattern is scheduling-free at
// one worker), and variant v carries VariantSeed(seed, v) on both sides
// so the amplitudes are bit-identical pair by pair.
func BatchResults(opt Options) ([]BatchRow, error) {
	const seed = 7
	var rows []BatchRow
	for _, wl := range batchWorkloads(opt) {
		circuits, err := batchCircuits(wl.ansatz, wl.values, opt.BatchShifts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		k := len(circuits)
		cfg := core.Config{
			Qubits:        wl.ansatz.N,
			Ranks:         1,
			BlockAmps:     opt.BlockAmps,
			Workers:       1,
			Seed:          seed,
			DisableSweeps: opt.DisableSweeps,
		}

		// K sequential runs on fresh simulators.
		var callsSolo int64
		startSolo := time.Now()
		for v, c := range circuits {
			scfg := cfg
			scfg.Seed = core.VariantSeed(seed, v)
			s, err := core.New(scfg)
			if err != nil {
				return nil, err
			}
			base := s.Stats()
			if err := s.Run(c); err != nil {
				s.Close()
				return nil, fmt.Errorf("%s solo variant %d: %w", wl.name, v, err)
			}
			st := s.Stats()
			callsSolo += (st.CompressCalls - base.CompressCalls) +
				(st.DecompressCalls - base.DecompressCalls)
			s.Close()
		}
		elapsedSolo := time.Since(startSolo)

		// One lockstep batch: K clones of one parent, run together.
		parent, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		sims := make([]*core.Simulator, k)
		bases := make([]core.Stats, k)
		startBatch := time.Now()
		for v := range sims {
			clone, err := parent.Clone(core.VariantSeed(seed, v))
			if err != nil {
				return nil, err
			}
			sims[v] = clone
			bases[v] = clone.Stats()
		}
		runErr := core.RunBatch(sims, circuits, core.RunControl{})
		elapsedBatch := time.Since(startBatch)
		var callsBatch, shared int64
		for v, s := range sims {
			st := s.Stats()
			callsBatch += (st.CompressCalls - bases[v].CompressCalls) +
				(st.DecompressCalls - bases[v].DecompressCalls)
			shared += st.CodecPassesShared
			s.Close()
		}
		parent.Close()
		if runErr != nil {
			return nil, fmt.Errorf("%s batch: %w", wl.name, runErr)
		}

		row := BatchRow{
			Benchmark:       wl.name,
			Qubits:          wl.ansatz.N,
			Gates:           len(circuits[0].Gates),
			Variants:        k,
			CodecCallsSolo:  callsSolo,
			CodecCallsBatch: callsBatch,
			PerVariantSolo:  float64(callsSolo) / float64(k),
			PerVariantBatch: float64(callsBatch) / float64(k),
			PassesShared:    shared,
			ElapsedSolo:     elapsedSolo,
			ElapsedBatch:    elapsedBatch,
		}
		if callsBatch > 0 {
			row.Reduction = float64(callsSolo) / float64(callsBatch)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runBatchExp(w io.Writer, opt Options) error {
	header(w, "Variant batching: lockstep parameter-shift batch vs K sequential runs")
	rows, err := BatchResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "benchmark\tqubits\tgates\tvariants\tcodec calls (solo×K)\tcodec calls (batch)\tper-variant solo\tper-variant batch\treduction\tpasses shared\ttime solo\ttime batch")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1fx\t%d\t%v\t%v\n",
			r.Benchmark, r.Qubits, r.Gates, r.Variants,
			r.CodecCallsSolo, r.CodecCallsBatch,
			r.PerVariantSolo, r.PerVariantBatch, r.Reduction, r.PassesShared,
			r.ElapsedSolo.Round(time.Millisecond), r.ElapsedBatch.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(amplitudes bit-identical batch vs solo, variant by variant; the reduction is codec work the batch cache deduplicated)")
	return nil
}
