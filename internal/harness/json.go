package harness

import (
	"encoding/json"
	"io"
	"os"
)

// JSON snapshot: a machine-readable bundle of the cheap structured
// experiments, versioned so committed BENCH_N.json files from
// successive changes can be diffed. Only the experiments whose rows
// carry performance-shaped numbers are included — the compression
// figures live in the CSV export.

// SnapshotSchema versions the BenchSnapshot layout.
const SnapshotSchema = 1

// BenchSnapshot bundles one harness run's structured results. (Not to
// be confused with the state-snapshot datasets of the compression
// experiments — see snapshots.go.)
type BenchSnapshot struct {
	Schema    int            `json:"schema"`
	Options   Options        `json:"options"`
	Sweep     []SweepRow     `json:"sweep"`
	Batch     []BatchRow     `json:"batch"`
	Sampling  []SamplingRow  `json:"sampling"`
	Crossover []CrossoverRow `json:"crossover"`
	Spill     []SpillRow     `json:"spill"`
}

// BuildSnapshot runs the snapshot experiments at the given scale.
func BuildSnapshot(opt Options) (*BenchSnapshot, error) {
	sweep, err := SweepResults(opt)
	if err != nil {
		return nil, err
	}
	batch, err := BatchResults(opt)
	if err != nil {
		return nil, err
	}
	sampling, err := SamplingResults(opt)
	if err != nil {
		return nil, err
	}
	crossover, err := CrossoverResults(opt)
	if err != nil {
		return nil, err
	}
	spill, err := SpillResults(opt)
	if err != nil {
		return nil, err
	}
	return &BenchSnapshot{
		Schema:    SnapshotSchema,
		Options:   opt,
		Sweep:     sweep,
		Batch:     batch,
		Sampling:  sampling,
		Crossover: crossover,
		Spill:     spill,
	}, nil
}

// WriteJSON builds a BenchSnapshot and writes it, indented, to w.
func WriteJSON(w io.Writer, opt Options) error {
	snap, err := BuildSnapshot(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteJSONFile is WriteJSON to a named file.
func WriteJSONFile(path string, opt Options) error {
	snap, err := BuildSnapshot(opt)
	if err != nil {
		return err
	}
	return WriteSnapshotFile(path, snap)
}

// WriteSnapshotFile writes an already-built snapshot to path,
// indented — the build-once path for tools that both persist and diff
// one run.
func WriteSnapshotFile(path string, snap *BenchSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
