package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

// SpillRow is one workload of the out-of-core experiment: the same
// circuit run against a memory budget a fraction of its lossless
// compressed footprint, once without the spill tier (the §3.7 ladder
// escalates and still ends over budget) and once with it (the run
// completes lossless with the resident set — the RSS proxy — held
// under the budget and the overflow on disk).
type SpillRow struct {
	Benchmark string
	Qubits    int
	Gates     int

	// Footprint is the lossless compressed footprint of the final
	// state (the dry run); Budget is the resident cap both runs press
	// against.
	Footprint int64
	Budget    int64

	// Control run (no spill): where the escalation ladder ended.
	ControlOverBudget bool
	ControlFinalLevel int
	ControlElapsed    time.Duration

	// Spill run.
	MaxResident     int64 // resident high-water: the RSS proxy
	SpilledBytes    int64 // on disk at the end of the run
	SpillWrites     int64
	SpillReads      int64 // demand (synchronous) reads
	PrefetchHits    int64 // reads the prefetcher absorbed
	HitRate         float64
	SpillElapsed    time.Duration
	SpillOverBudget bool
	SpillFinalLevel int
}

// spillWorkloads: QFT spreads mass across every block (no block is
// cold), making it the spill tier's worst case; the random circuit is
// the generic dense workload.
func spillWorkloads(opt Options) []struct {
	name string
	cir  *quantum.Circuit
} {
	return []struct {
		name string
		cir  *quantum.Circuit
	}{
		{fmt.Sprintf("QFT-%dq", opt.QFTQubits), quantum.QFT(opt.QFTQubits, 2019)},
		{fmt.Sprintf("Random-%dq", opt.QFTQubits), quantum.RandomCircuit(opt.QFTQubits, 8*opt.QFTQubits, 2019)},
	}
}

// SpillResults runs each workload three times: a dry run to measure
// the lossless footprint, a no-spill control under a quarter of it,
// and a spill run under the same budget.
func SpillResults(opt Options) ([]SpillRow, error) {
	var rows []SpillRow
	for _, wl := range spillWorkloads(opt) {
		mk := func(extra func(*core.Config)) (*core.Simulator, error) {
			cfg := core.Config{
				Qubits:    wl.cir.N,
				Ranks:     1,
				BlockAmps: opt.BlockAmps,
				Workers:   opt.Workers,
				Seed:      7,
				// Near-lossless ladder: escalation cannot shrink the
				// state under the budget, so the control's only way out
				// is over budget and the spill run's only way out is
				// through the disk.
				ErrorLevels: []float64{1e-7},
			}
			if extra != nil {
				extra(&cfg)
			}
			return core.New(cfg)
		}
		dry, err := mk(nil)
		if err != nil {
			return nil, fmt.Errorf("%s dry: %w", wl.name, err)
		}
		if err := dry.Run(wl.cir); err != nil {
			return nil, fmt.Errorf("%s dry: %w", wl.name, err)
		}
		footprint := dry.CompressedFootprint()
		budget := footprint / 4
		dry.Close()

		ctl, err := mk(func(c *core.Config) { c.MemoryBudget = budget })
		if err != nil {
			return nil, fmt.Errorf("%s control: %w", wl.name, err)
		}
		start := time.Now()
		if err := ctl.Run(wl.cir); err != nil {
			return nil, fmt.Errorf("%s control: %w", wl.name, err)
		}
		ctlElapsed := time.Since(start)
		ctlStats := ctl.Stats()
		ctlOver := ctl.OverBudget()
		ctl.Close()

		dir, err := os.MkdirTemp("", "qcsim-spill-exp-")
		if err != nil {
			return nil, err
		}
		sp, err := mk(func(c *core.Config) {
			c.MemoryBudget = budget
			c.SpillDir = dir
			c.SpillRAMBudget = budget
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("%s spill: %w", wl.name, err)
		}
		start = time.Now()
		runErr := sp.Run(wl.cir)
		spElapsed := time.Since(start)
		st := sp.Stats()
		spOver := sp.OverBudget()
		sp.Close()
		os.RemoveAll(dir)
		if runErr != nil {
			return nil, fmt.Errorf("%s spill: %w", wl.name, runErr)
		}

		row := SpillRow{
			Benchmark:         wl.name,
			Qubits:            wl.cir.N,
			Gates:             len(wl.cir.Gates),
			Footprint:         footprint,
			Budget:            budget,
			ControlOverBudget: ctlOver,
			ControlFinalLevel: ctlStats.FinalLevel,
			ControlElapsed:    ctlElapsed,
			MaxResident:       st.MaxResident,
			SpilledBytes:      st.SpilledBytes,
			SpillWrites:       st.SpillWrites,
			SpillReads:        st.SpillReads,
			PrefetchHits:      st.PrefetchHits,
			SpillElapsed:      spElapsed,
			SpillOverBudget:   spOver,
			SpillFinalLevel:   st.FinalLevel,
		}
		if total := st.PrefetchHits + st.SpillReads; total > 0 {
			row.HitRate = float64(st.PrefetchHits) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runSpill(w io.Writer, opt Options) error {
	header(w, "Spill tier: out-of-core states under a resident-memory budget")
	rows, err := SpillResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "benchmark\tqubits\tfootprint\tbudget\tcontrol\tspill run\tresident max\ton disk\twrites\tdemand reads\tprefetch hits\thit rate\ttime ctl\ttime spill")
	for _, r := range rows {
		ctl := fmt.Sprintf("level %d", r.ControlFinalLevel)
		if r.ControlOverBudget {
			ctl = "OVER BUDGET"
		}
		spr := fmt.Sprintf("level %d", r.SpillFinalLevel)
		if r.SpillOverBudget {
			spr = "OVER BUDGET"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%.0f%%\t%v\t%v\n",
			r.Benchmark, r.Qubits,
			stats.FormatBytes(float64(r.Footprint)), stats.FormatBytes(float64(r.Budget)),
			ctl, spr,
			stats.FormatBytes(float64(r.MaxResident)), stats.FormatBytes(float64(r.SpilledBytes)),
			r.SpillWrites, r.SpillReads, r.PrefetchHits, 100*r.HitRate,
			r.ControlElapsed.Round(time.Millisecond), r.SpillElapsed.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(the control escalates the §3.7 ladder and still ends over budget; the spill run completes lossless with the resident set capped)")
	return nil
}
