package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

// The sampling experiment measures the streaming compressed-domain
// sampler against the readout path the engine originally shipped:
// decompress the whole 2^n-amplitude vector and linearly scan it once
// per shot. The streaming sampler pays one block pass to build a
// two-level CDF, then O(log blocks + blockAmps) per shot — and, unlike
// the scan, it normalizes draws by the true total mass, so lossy runs
// sample the state's actual distribution.

// SamplingRow is one workload × shot-count measurement.
type SamplingRow struct {
	Benchmark string
	Qubits    int
	Shots     int
	// Distinct is the number of distinct outcomes the streaming draw
	// produced (a cheap sanity signal that mass is spread, not a metric
	// from the paper).
	Distinct  int
	TotalMass float64
	// BuildTime is the one-off CDF construction (the block pass);
	// DrawTime covers the shots themselves.
	BuildTime time.Duration
	DrawTime  time.Duration
	// ScanTime is the old path: materialize the full vector, then one
	// linear scan per shot.
	ScanTime time.Duration
	Speedup  float64 // ScanTime / (BuildTime + DrawTime)
}

// samplingWorkloads are readout-heavy states: GHZ (two-point support,
// the sampler's best case) and QAOA (dense support, its worst case).
func samplingWorkloads(opt Options) []struct {
	name string
	cir  *quantum.Circuit
} {
	var qaoaN int
	for _, n := range opt.QAOAQubits {
		if n > qaoaN {
			qaoaN = n
		}
	}
	return []struct {
		name string
		cir  *quantum.Circuit
	}{
		{fmt.Sprintf("GHZ-%dq", opt.Fig16Qubits), quantum.GHZ(opt.Fig16Qubits)},
		{fmt.Sprintf("QAOA-%dq", qaoaN), quantum.QAOA(qaoaN, 2, 2020)},
	}
}

// SamplingResults runs each workload once and draws opt.SampleShots
// outcomes through both readout paths. Both draws use identically
// seeded streams, so at these (lossless) scales the outcome sequences
// are bit-identical and the comparison isolates pure readout cost.
func SamplingResults(opt Options) ([]SamplingRow, error) {
	var rows []SamplingRow
	for _, wl := range samplingWorkloads(opt) {
		s, err := core.New(core.Config{
			Qubits:    wl.cir.N,
			Ranks:     1,
			BlockAmps: opt.BlockAmps,
			Workers:   opt.Workers,
			Seed:      7,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		if err := s.Run(wl.cir); err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}

		start := time.Now()
		sp, err := s.NewSampler(8)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		build := time.Since(start)
		start = time.Now()
		shots, err := sp.Sample(rand.New(rand.NewSource(2019)), opt.SampleShots)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		draw := time.Since(start)

		start = time.Now()
		ref, err := linearScanSample(s, rand.New(rand.NewSource(2019)), opt.SampleShots)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		scan := time.Since(start)
		for i := range ref {
			if shots[i] != ref[i] {
				return nil, fmt.Errorf("%s: shot %d diverges (streaming %d, scan %d)", wl.name, i, shots[i], ref[i])
			}
		}

		distinct := make(map[uint64]struct{}, len(shots))
		for _, v := range shots {
			distinct[v] = struct{}{}
		}
		row := SamplingRow{
			Benchmark: wl.name,
			Qubits:    wl.cir.N,
			Shots:     opt.SampleShots,
			Distinct:  len(distinct),
			TotalMass: sp.TotalMass(),
			BuildTime: build,
			DrawTime:  draw,
			ScanTime:  scan,
		}
		if c := build + draw; c > 0 {
			row.Speedup = float64(scan) / float64(c)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// linearScanSample is the engine's original readout path, kept here as
// the experiment's baseline: O(shots · 2^n) with raw (un-normalized)
// draws. It is only runnable at scales where the full vector fits.
func linearScanSample(s *core.Simulator, rng *rand.Rand, shots int) ([]uint64, error) {
	amps, err := s.FullState()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, shots)
	for k := range out {
		r := rng.Float64()
		var acc float64
		for i, a := range amps {
			acc += real(a)*real(a) + imag(a)*imag(a)
			if r < acc {
				out[k] = uint64(i)
				break
			}
		}
	}
	return out, nil
}

func runSampling(w io.Writer, opt Options) error {
	header(w, "Sampling: streaming compressed-domain sampler vs full-vector scan")
	rows, err := SamplingResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "benchmark\tqubits\tshots\tdistinct\ttotal mass\tbuild\tdraw\tfull scan\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.6f\t%v\t%v\t%v\t%.1fx\n",
			r.Benchmark, r.Qubits, r.Shots, r.Distinct, r.TotalMass,
			r.BuildTime.Round(time.Microsecond), r.DrawTime.Round(time.Microsecond),
			r.ScanTime.Round(time.Microsecond), r.Speedup)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(identical outcome sequences both paths; the streaming path never materializes the vector)")
	return nil
}
