package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"qcsim/internal/compress"
	"qcsim/internal/compress/fpziplike"
	"qcsim/internal/compress/szlike"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/compress/zfplike"
	"qcsim/internal/stats"
)

// paperBounds are the five error levels every compression figure sweeps.
var paperBounds = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}

// RatioResult is one (codec, bound) compression-ratio measurement.
type RatioResult struct {
	Dataset string
	Codec   string
	Bound   float64
	Ratio   float64
}

// MeasureRatios compresses every block of data with codec under each
// bound and returns overall ratios. Absolute bounds are taken relative
// to each block's value range (§4.1).
func MeasureRatios(name string, data []float64, codec compress.Codec, mode compress.ErrorMode, bounds []float64, blockSize int) ([]RatioResult, error) {
	var out []RatioResult
	for _, b := range bounds {
		var compressed int
		for _, blk := range blocks(data, blockSize) {
			opt := compress.Options{Mode: mode, Bound: b}
			if mode == compress.Absolute {
				r := valueRange(blk)
				if r == 0 {
					r = 1
				}
				opt.Bound = b * r
			}
			payload, err := codec.Compress(nil, blk, opt)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", codec.Name(), name, err)
			}
			compressed += len(payload)
		}
		out = append(out, RatioResult{Dataset: name, Codec: codec.Name(), Bound: b, Ratio: compress.Ratio(len(data), compressed)})
	}
	return out, nil
}

// Fig7Results computes the SZ-vs-ZFP absolute-error comparison.
func Fig7Results(opt Options) ([]RatioResult, error) {
	var all []RatioResult
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range []compress.Codec{szlike.NewA(), zfplike.New()} {
			rs, err := MeasureRatios(snap.Name, snap.Data, codec, compress.Absolute, paperBounds, opt.SnapshotBlock)
			if err != nil {
				return nil, err
			}
			all = append(all, rs...)
		}
	}
	return all, nil
}

func runFig7(w io.Writer, opt Options) error {
	header(w, "Fig. 7: compression ratio, SZ vs ZFP (absolute error, fraction of block range)")
	rs, err := Fig7Results(opt)
	if err != nil {
		return err
	}
	printRatios(w, rs)
	return nil
}

// Fig8Results computes the SZ/FPZIP/ZFP pointwise-relative comparison.
// FPZIP runs at the paper's precisions 16/18/22/24/28.
func Fig8Results(opt Options) ([]RatioResult, error) {
	precisions := []int{16, 18, 22, 24, 28}
	var all []RatioResult
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range []compress.Codec{szlike.NewA(), zfplike.New()} {
			rs, err := MeasureRatios(snap.Name, snap.Data, codec, compress.PointwiseRelative, paperBounds, opt.SnapshotBlock)
			if err != nil {
				return nil, err
			}
			all = append(all, rs...)
		}
		for i, prec := range precisions {
			codec := fpziplike.NewPrecision(prec)
			rs, err := MeasureRatios(snap.Name, snap.Data, codec, compress.PointwiseRelative, paperBounds[i:i+1], opt.SnapshotBlock)
			if err != nil {
				return nil, err
			}
			rs[0].Codec = "fpzip-like"
			all = append(all, rs...)
		}
	}
	return all, nil
}

func runFig8(w io.Writer, opt Options) error {
	header(w, "Fig. 8: compression ratio, SZ vs FPZIP vs ZFP (pointwise relative error)")
	rs, err := Fig8Results(opt)
	if err != nil {
		return err
	}
	printRatios(w, rs)
	return nil
}

func runFig9(w io.Writer, opt Options) error {
	header(w, "Fig. 9: quantum state data are spiky (windows of raw values)")
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		fmt.Fprintf(w, "\n%s: %d values\n", snap.Name, len(snap.Data))
		for _, start := range []int{1000, 2000} {
			if start+8 > len(snap.Data) {
				continue
			}
			fmt.Fprintf(w, "  idx %d..%d:", start, start+7)
			for _, v := range snap.Data[start : start+8] {
				fmt.Fprintf(w, " % .3e", v)
			}
			fmt.Fprintln(w)
		}
		// Spikiness indicator: mean |Δ| between neighbors relative to
		// the mean |value| — ≫1 means no smoothness for predictors.
		var sumD, sumV float64
		for i := 1; i < len(snap.Data); i++ {
			sumD += math.Abs(snap.Data[i] - snap.Data[i-1])
			sumV += math.Abs(snap.Data[i])
		}
		fmt.Fprintf(w, "  spikiness (mean|Δ| / mean|v|) = %.2f\n", sumD/sumV)
	}
	return nil
}

// Solutions returns the paper's four candidate compressors (§4.2).
func Solutions() []compress.Codec {
	return []compress.Codec{szlike.NewA(), szlike.NewB(), xortrunc.New(), xortrunc.NewShuffled()}
}

// SolutionLabel maps codec names to the paper's Solution letters.
func SolutionLabel(name string) string {
	switch name {
	case "sz-a":
		return "Sol.A"
	case "sz-b":
		return "Sol.B"
	case "xor-c":
		return "Sol.C"
	case "xor-d":
		return "Sol.D"
	default:
		return name
	}
}

// Fig10Results computes the Solutions A-D ratio comparison.
func Fig10Results(opt Options) ([]RatioResult, error) {
	var all []RatioResult
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range Solutions() {
			rs, err := MeasureRatios(snap.Name, snap.Data, codec, compress.PointwiseRelative, paperBounds, opt.SnapshotBlock)
			if err != nil {
				return nil, err
			}
			all = append(all, rs...)
		}
	}
	return all, nil
}

func runFig10(w io.Writer, opt Options) error {
	header(w, "Fig. 10: compression ratio of Solutions A-D (pointwise relative error)")
	rs, err := Fig10Results(opt)
	if err != nil {
		return err
	}
	for i := range rs {
		rs[i].Codec = SolutionLabel(rs[i].Codec)
	}
	printRatios(w, rs)
	return nil
}

// RateResult is one (codec, bound) throughput measurement.
type RateResult struct {
	Dataset    string
	Codec      string
	Bound      float64
	CompressMB float64 // MB/s
	DecompMB   float64 // MB/s
}

// MeasureRates times compression and decompression of data per bound.
func MeasureRates(name string, data []float64, codec compress.Codec, bounds []float64, blockSize int) ([]RateResult, error) {
	var out []RateResult
	mb := float64(len(data)*8) / (1 << 20)
	for _, b := range bounds {
		opt := compress.Options{Mode: compress.PointwiseRelative, Bound: b}
		blks := blocks(data, blockSize)
		payloads := make([][]byte, len(blks))
		start := time.Now()
		for i, blk := range blks {
			p, err := codec.Compress(nil, blk, opt)
			if err != nil {
				return nil, err
			}
			payloads[i] = p
		}
		ct := time.Since(start)
		start = time.Now()
		for i, blk := range blks {
			buf := make([]float64, len(blk))
			if err := codec.Decompress(buf, payloads[i]); err != nil {
				return nil, err
			}
		}
		dt := time.Since(start)
		out = append(out, RateResult{
			Dataset:    name,
			Codec:      codec.Name(),
			Bound:      b,
			CompressMB: mb / ct.Seconds(),
			DecompMB:   mb / dt.Seconds(),
		})
	}
	return out, nil
}

// Fig11Results measures rates for Solutions A-D on both snapshots.
func Fig11Results(opt Options) ([]RateResult, error) {
	var all []RateResult
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range Solutions() {
			rs, err := MeasureRates(snap.Name, snap.Data, codec, paperBounds, opt.SnapshotBlock)
			if err != nil {
				return nil, err
			}
			all = append(all, rs...)
		}
	}
	return all, nil
}

func runFig11(w io.Writer, opt Options) error {
	header(w, "Fig. 11: compression/decompression rates of Solutions A-D (MB/s, single core)")
	rs, err := Fig11Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tsolution\tbound\tcompress MB/s\tdecompress MB/s")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%s\t%.0e\t%.1f\t%.1f\n", r.Dataset, SolutionLabel(r.Codec), r.Bound, r.CompressMB, r.DecompMB)
	}
	return tw.Flush()
}

// BlockErrors returns the max pointwise relative error of each block
// after a compress/decompress round trip.
func BlockErrors(data []float64, codec compress.Codec, bound float64, blockSize int) ([]float64, error) {
	var maxes []float64
	for _, blk := range blocks(data, blockSize) {
		payload, err := codec.Compress(nil, blk, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(blk))
		if err := codec.Decompress(out, payload); err != nil {
			return nil, err
		}
		var m float64
		for i := range blk {
			if blk[i] == 0 {
				continue
			}
			if e := math.Abs(blk[i]-out[i]) / math.Abs(blk[i]); e > m {
				m = e
			}
		}
		maxes = append(maxes, m)
	}
	return maxes, nil
}

func runFig12(w io.Writer, opt Options) error {
	header(w, "Fig. 12: per-block max pointwise relative error (quantile summary of the CDF)")
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tsolution\tbound\tp25\tp50\tp75\tmax\twithin bound")
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, codec := range Solutions() {
			for _, b := range paperBounds {
				maxes, err := BlockErrors(snap.Data, codec, b, opt.SnapshotBlock)
				if err != nil {
					return err
				}
				sort.Float64s(maxes)
				q := func(p float64) float64 { return stats.Quantile(maxes, p) }
				worst := maxes[len(maxes)-1]
				ok := "yes"
				if worst > b {
					ok = "NO"
				}
				fmt.Fprintf(tw, "%s\t%s\t%.0e\t%.2e\t%.2e\t%.2e\t%.2e\t%s\n",
					snap.Name, SolutionLabel(codec.Name()), b, q(0.25), q(0.5), q(0.75), worst, ok)
			}
		}
	}
	return tw.Flush()
}

func runFig13(w io.Writer, _ Options) error {
	header(w, "Fig. 13: discrete truncation errors — the paper's 3.9921875 example")
	const v = 3.9921875
	tw := newTable(w)
	fmt.Fprintln(tw, "kept mantissa bits\tvalue\trelative error")
	bits := math.Float64bits(v)
	for m := 7; m >= 2; m-- {
		mask := ^uint64(0) << uint(52-m)
		tv := math.Float64frombits(bits & mask)
		fmt.Fprintf(tw, "%d\t%.7f\t%.6f\n", m, tv, (v-tv)/v)
	}
	tw.Flush()
	fmt.Fprintln(w, "With ε = 0.01 Solution C keeps 19 leading bits (Eq. 12); the achieved error is")
	fmt.Fprintln(w, "below the bound because truncation snaps to the nearest coarser bit plane.")
	return nil
}

// Fig14Result summarizes the Solution-C error distribution analysis.
type Fig14Result struct {
	Dataset  string
	Bound    float64
	KS       float64 // Kolmogorov–Smirnov distance from uniform
	AutoCorr float64 // lag-1 autocorrelation of signed relative errors
	MeanFrac float64 // mean achieved error / bound (over-preservation)
}

// Fig14Results analyses Solution C's normalized errors per §4.2.
func Fig14Results(opt Options) ([]Fig14Result, error) {
	codec := xortrunc.New()
	var out []Fig14Result
	for _, kind := range []string{"qaoa", "sup"} {
		snap := snapshot(kind, opt.SnapshotQubits)
		for _, b := range paperBounds {
			payload, err := codec.Compress(nil, snap.Data, compress.Options{Mode: compress.PointwiseRelative, Bound: b})
			if err != nil {
				return nil, err
			}
			dec := make([]float64, len(snap.Data))
			if err := codec.Decompress(dec, payload); err != nil {
				return nil, err
			}
			var norm, signed []float64
			for i := range snap.Data {
				if snap.Data[i] == 0 {
					continue
				}
				e := (snap.Data[i] - dec[i]) / snap.Data[i]
				signed = append(signed, e)
				norm = append(norm, math.Abs(e)/b)
			}
			if len(norm) == 0 {
				continue
			}
			_, hi := stats.MinMax(norm)
			if hi == 0 {
				hi = 1
			}
			out = append(out, Fig14Result{
				Dataset:  snap.Name,
				Bound:    b,
				KS:       stats.UniformityKS(norm, 0, hi),
				AutoCorr: stats.Lag1Autocorrelation(signed),
				MeanFrac: stats.Mean(norm),
			})
		}
	}
	return out, nil
}

func runFig14(w io.Writer, opt Options) error {
	header(w, "Fig. 14: Solution C normalized errors — uniformity, over-preservation, uncorrelatedness")
	rs, err := Fig14Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tbound\tKS vs uniform\tlag-1 autocorr\tmean |err|/bound")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%.0e\t%.4f\t%+.2e\t%.3f\n", r.Dataset, r.Bound, r.KS, r.AutoCorr, r.MeanFrac)
	}
	return tw.Flush()
}

// printRatios renders ratio results grouped by dataset and codec.
func printRatios(w io.Writer, rs []RatioResult) {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tcodec\tbound\tratio")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%s\t%.0e\t%.2f\n", r.Dataset, r.Codec, r.Bound, r.Ratio)
	}
	tw.Flush()
}
