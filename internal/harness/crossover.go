package harness

import (
	"fmt"
	"io"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/mps"
	"qcsim/internal/quantum"
)

// The crossover experiment is the paper's §2.2 comparison — compressed
// full-state simulation vs tensor networks — run as a reproducible
// artifact. It sweeps the entanglement depth of a brickwork circuit and
// records, at every depth, what each backend pays in time, memory, and
// fidelity. At shallow depth the MPS wins by orders of magnitude in
// memory (polynomial vs 2^n); as the circuit's Schmidt rank outgrows
// the bond-dimension cap χ, the MPS starts truncating (its fidelity
// ledger drops below 1) while the compressed engine keeps an exact
// state — the crossover the paper argues motivates full-state methods.

// CrossoverRow is one entanglement depth of the sweep, with both
// backends' costs side by side.
type CrossoverRow struct {
	Depth  int
	Qubits int
	Gates  int
	// EstBond is the planner's structural bond-dimension estimate
	// (quantum.EstimateBondDim); Auto is the backend an auto simulator
	// with this χ budget would pick.
	EstBond int
	Auto    string
	// MPS backend costs (zero values when the sweep is restricted to
	// the compressed backend).
	MPSTime     time.Duration
	MPSMem      int64
	MPSFidelity float64
	MPSMaxBond  int
	// Compressed backend costs.
	CompTime     time.Duration
	CompMem      int64
	CompFidelity float64
	// TimeWinner names the faster backend at full fidelity on both
	// sides, or the only one run; "compressed (fidelity)" marks depths
	// where the MPS was faster but truncating.
	TimeWinner string
}

// CrossoverResults sweeps opt.CrossoverDepths on a brickwork circuit of
// opt.CrossoverQubits qubits, running the backends opt.Backend selects
// ("mps", "compressed", or both for anything else).
func CrossoverResults(opt Options) ([]CrossoverRow, error) {
	n := opt.CrossoverQubits
	chi := opt.BondDim
	runMPS := opt.Backend != "compressed"
	runComp := opt.Backend != "mps"
	var rows []CrossoverRow
	for _, depth := range opt.CrossoverDepths {
		cir := quantum.Brickwork(n, depth, 1789+int64(depth))
		row := CrossoverRow{
			Depth:   depth,
			Qubits:  n,
			Gates:   len(cir.Gates),
			EstBond: quantum.EstimateBondDim(cir),
		}
		// Mirror the facade's auto rule: MPS-runnable gates AND the
		// bond estimate within budget (brickwork is always runnable,
		// but the column must not claim more than the facade would).
		row.Auto = "compressed"
		if ok, _ := quantum.MPSCompatible(cir); ok && row.EstBond <= chi {
			row.Auto = "mps"
		}

		if runMPS {
			st, err := mps.New(n, chi)
			if err != nil {
				return nil, fmt.Errorf("crossover depth %d: %w", depth, err)
			}
			start := time.Now()
			if err := st.ApplyCircuit(cir); err != nil {
				return nil, fmt.Errorf("crossover depth %d (mps): %w", depth, err)
			}
			row.MPSTime = time.Since(start)
			row.MPSMem = st.MemoryBytes()
			row.MPSFidelity = st.FidelityLowerBound()
			row.MPSMaxBond = st.MaxBond()
		}

		if runComp {
			s, err := core.New(core.Config{
				Qubits:    n,
				Ranks:     1,
				BlockAmps: opt.BlockAmps,
				Workers:   opt.Workers,
				Seed:      7,
			})
			if err != nil {
				return nil, fmt.Errorf("crossover depth %d: %w", depth, err)
			}
			start := time.Now()
			if err := s.Run(cir); err != nil {
				return nil, fmt.Errorf("crossover depth %d (compressed): %w", depth, err)
			}
			row.CompTime = time.Since(start)
			row.CompMem = s.CompressedFootprint()
			row.CompFidelity = s.FidelityLowerBound()
		}

		switch {
		case runMPS && !runComp:
			row.TimeWinner = "mps"
		case runComp && !runMPS:
			row.TimeWinner = "compressed"
		case row.MPSTime <= row.CompTime && row.MPSFidelity >= 0.9999:
			row.TimeWinner = "mps"
		case row.MPSTime > row.CompTime:
			row.TimeWinner = "compressed"
		default:
			row.TimeWinner = "compressed (fidelity)"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runCrossover(w io.Writer, opt Options) error {
	header(w, "Crossover: compressed full-state vs MPS over entanglement depth (§2.2)")
	rows, err := CrossoverResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "depth\tgates\test χ\tauto picks\tmps time\tmps mem\tmps fidelity\tmax bond\tcomp time\tcomp mem\twinner")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%v\t%d\t%.4f\t%d\t%v\t%d\t%s\n",
			r.Depth, r.Gates, r.EstBond, r.Auto,
			r.MPSTime.Round(time.Microsecond), r.MPSMem, r.MPSFidelity, r.MPSMaxBond,
			r.CompTime.Round(time.Microsecond), r.CompMem, r.TimeWinner)
	}
	tw.Flush()
	fmt.Fprintf(w, "\n(%d qubits, bond-dimension cap χ=%d; mps fidelity < 1 marks truncating depths)\n",
		opt.CrossoverQubits, opt.BondDim)
	return nil
}
