package harness

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func baselineSnapshot() *BenchSnapshot {
	return &BenchSnapshot{
		Schema:  SnapshotSchema,
		Options: Small(),
		// Durations sit above minGateDuration so the timing-ratio gates
		// are live in these tests, not floored out.
		Sweep: []SweepRow{{
			Benchmark: "Grover-7q", Reduction: 100,
			ElapsedOff: 10 * time.Second, ElapsedOn: time.Second,
		}},
		Batch:    []BatchRow{{Benchmark: "QAOA-10q", Variants: 9, Reduction: 7}},
		Sampling: []SamplingRow{{Benchmark: "GHZ-11q", Speedup: 50, ScanTime: 10 * time.Second}},
		Crossover: []CrossoverRow{{
			Depth: 2, EstBond: 4, Auto: "mps",
		}},
		Spill: []SpillRow{{
			Benchmark: "QFT-10", SpillOverBudget: false, SpillFinalLevel: 0,
			ControlElapsed: time.Second, SpillElapsed: 1500 * time.Millisecond,
		}},
	}
}

func TestDiffSnapshotsCleanWithinTolerance(t *testing.T) {
	old := baselineSnapshot()
	fresh := baselineSnapshot()
	// Small moves inside 20%: not regressions.
	fresh.Sweep[0].Reduction = 90
	fresh.Sweep[0].ElapsedOn = 1100 * time.Millisecond
	fresh.Sampling[0].Speedup = 45
	fresh.Spill[0].SpillElapsed = 1600 * time.Millisecond
	regs, err := DiffSnapshots(old, fresh, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestDiffSnapshotsCatchesRegressions(t *testing.T) {
	old := baselineSnapshot()
	fresh := baselineSnapshot()
	fresh.Sweep[0].Reduction = 50                 // reduction halved
	fresh.Batch[0].Reduction = 2                  // batch cache sharing collapsed
	fresh.Batch[0].Variants = 5                   // batch width drifted
	fresh.Sampling[0].Speedup = 10                // sampler speedup collapsed
	fresh.Crossover[0].Auto = "compressed"        // routing flipped
	fresh.Spill[0].SpillOverBudget = true         // spill tier broke
	fresh.Spill[0].SpillElapsed = 4 * time.Second // spill cost blew up
	regs, err := DiffSnapshots(old, fresh, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"sweep/Grover-7q|reduction":   false,
		"batch/QAOA-10q|reduction":    false,
		"batch/QAOA-10q|variants":     false,
		"sampling/GHZ-11q|speedup":    false,
		"crossover/depth-2|auto-pick": false,
		"spill/QFT-10|over-budget":    false,
		"spill/QFT-10|spill-cost":     false,
	}
	for _, r := range regs {
		key := r.Row + "|" + r.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected regression %v", r)
			continue
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("expected regression %s not reported", key)
		}
	}
}

func TestDiffSnapshotsMissingRow(t *testing.T) {
	old := baselineSnapshot()
	fresh := baselineSnapshot()
	fresh.Sweep = nil
	regs, err := DiffSnapshots(old, fresh, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "row" || !strings.HasPrefix(regs[0].Row, "sweep/") {
		t.Fatalf("want one missing-row regression, got %v", regs)
	}
}

func TestDiffSnapshotsScaleMismatch(t *testing.T) {
	old := baselineSnapshot()
	fresh := baselineSnapshot()
	fresh.Options.BlockAmps = old.Options.BlockAmps * 2
	if _, err := DiffSnapshots(old, fresh, 0.20); err == nil {
		t.Fatal("differently-scaled snapshots must not diff cleanly")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	snap := baselineSnapshot()
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := DiffSnapshots(snap, back, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("round-tripped snapshot must diff clean, got %v", regs)
	}
}
