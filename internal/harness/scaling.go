package harness

import (
	"fmt"
	"io"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

// Table1Row is one machine of the paper's Table 1.
type Table1Row struct {
	System    string
	MemoryPB  float64
	MaxQubits int
}

// Table1Rows evaluates the Table 1 arithmetic: a machine with M bytes
// fully simulates n qubits iff 2^(n+4) ≤ M.
func Table1Rows() []Table1Row {
	machines := []struct {
		name string
		pb   float64
	}{
		{"Summit", 2.8},
		{"Sierra", 1.38},
		{"Sunway TaihuLight", 1.31},
		{"Theta", 0.8},
	}
	pb := float64(uint64(1) << 50)
	rows := make([]Table1Row, len(machines))
	for i, m := range machines {
		rows[i] = Table1Row{System: m.name, MemoryPB: m.pb, MaxQubits: core.MaxQubitsForMemory(m.pb * pb)}
	}
	return rows
}

func runTable1(w io.Writer, _ Options) error {
	header(w, "Table 1: supercomputers and the max qubits they can fully simulate")
	tw := newTable(w)
	fmt.Fprintln(tw, "System\tMemory (PB)\tMax Qubits")
	for _, r := range Table1Rows() {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\n", r.System, r.MemoryPB, r.MaxQubits)
	}
	tw.Flush()
	fmt.Fprintf(w, "(2^(n+4) bytes per n-qubit state; 61 qubits would need %s)\n",
		stats.FormatBytes(core.MemoryRequirement(61)))
	return nil
}

// Fig5Config is one ranks×workers configuration of the Fig. 5 sweep.
type Fig5Config struct {
	Ranks      int
	Normalized float64 // execution time relative to the first config
	Elapsed    time.Duration
}

// rankSweepWorkers pins the pool width for experiments that sweep rank
// counts: the core default (NumCPU/Ranks) would hold total parallelism
// constant across the sweep and flatten the curve the figure exists to
// show, so an unset Workers means one worker per rank here.
func rankSweepWorkers(opt Options) int {
	if opt.Workers == 0 {
		return 1
	}
	return opt.Workers
}

// Fig5Results sweeps rank counts for a fixed random-circuit workload.
// The paper varies ranks×threads per node at fixed hardware; our analog
// varies rank counts at a fixed goroutine budget.
func Fig5Results(opt Options) ([]Fig5Config, error) {
	cir := quantum.RandomCircuit(opt.Fig5Qubits, 120, 35)
	var out []Fig5Config
	maxRanks := 1 << 3
	if 1<<uint(opt.Fig5Qubits-3) < maxRanks {
		maxRanks = 1 << uint(opt.Fig5Qubits-3)
	}
	for ranks := 1; ranks <= maxRanks; ranks *= 2 {
		s, err := core.New(core.Config{Qubits: opt.Fig5Qubits, Ranks: ranks, BlockAmps: opt.BlockAmps, Workers: rankSweepWorkers(opt), Seed: 1, DisableSweeps: opt.DisableSweeps})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.Run(cir); err != nil {
			return nil, err
		}
		out = append(out, Fig5Config{Ranks: ranks, Elapsed: time.Since(start)})
	}
	base := out[0].Elapsed.Seconds()
	for i := range out {
		out[i].Normalized = out[i].Elapsed.Seconds() / base
	}
	return out, nil
}

func runFig5(w io.Writer, opt Options) error {
	header(w, fmt.Sprintf("Fig. 5: normalized execution time, %d-qubit random circuit, varying ranks", opt.Fig5Qubits))
	rs, err := Fig5Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "ranks\telapsed\tnormalized")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%v\t%.1f%%\n", r.Ranks, r.Elapsed.Round(time.Millisecond), 100*r.Normalized)
	}
	return tw.Flush()
}

func runFig6(w io.Writer, _ Options) error {
	header(w, "Fig. 6: fidelity lower bound vs number of gates (Eq. 11)")
	gateCounts := []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}
	tw := newTable(w)
	fmt.Fprint(tw, "gates")
	for _, d := range core.DefaultErrorLevels {
		fmt.Fprintf(tw, "\tPWR=%.0e", d)
	}
	fmt.Fprintln(tw)
	for _, g := range gateCounts {
		fmt.Fprintf(tw, "%d", g)
		for _, d := range core.DefaultErrorLevels {
			fmt.Fprintf(tw, "\t%.4f", core.FidelityBound(constBounds(d, g)))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func constBounds(d float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = d
	}
	return b
}

// Fig15Point is one qubit-count measurement of the single-node sweep.
type Fig15Point struct {
	Qubits     int
	Elapsed    time.Duration
	Normalized float64
}

// Fig15Results times a Hadamard layer per qubit count on one rank.
func Fig15Results(opt Options) ([]Fig15Point, error) {
	var out []Fig15Point
	for n := opt.Fig15MinQubits; n <= opt.Fig15MaxQubits; n++ {
		s, err := core.New(core.Config{Qubits: n, Ranks: 1, BlockAmps: opt.BlockAmps, Workers: opt.Workers, Seed: 1, DisableSweeps: opt.DisableSweeps})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.Run(quantum.HadamardAll(n)); err != nil {
			return nil, err
		}
		out = append(out, Fig15Point{Qubits: n, Elapsed: time.Since(start)})
	}
	base := out[0].Elapsed.Seconds()
	for i := range out {
		out[i].Normalized = out[i].Elapsed.Seconds() / base
	}
	return out, nil
}

func runFig15(w io.Writer, opt Options) error {
	header(w, "Fig. 15: single-node execution time vs simulation size (Hadamard layer)")
	rs, err := Fig15Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "qubits\telapsed\tnormalized")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%v\t%.1f%%\n", r.Qubits, r.Elapsed.Round(time.Millisecond), 100*r.Normalized)
	}
	return tw.Flush()
}

// Fig16Point is one rank-count measurement of the strong-scaling run.
type Fig16Point struct {
	Ranks   int
	Elapsed time.Duration
	Speedup float64
}

// Fig16Results measures strong scaling of a Hadamard layer at fixed
// problem size.
func Fig16Results(opt Options) ([]Fig16Point, error) {
	cir := quantum.HadamardAll(opt.Fig16Qubits)
	var out []Fig16Point
	for ranks := 1; ranks <= opt.Fig16MaxRanks; ranks *= 2 {
		s, err := core.New(core.Config{Qubits: opt.Fig16Qubits, Ranks: ranks, BlockAmps: opt.BlockAmps, Workers: rankSweepWorkers(opt), Seed: 1, DisableSweeps: opt.DisableSweeps})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.Run(cir); err != nil {
			return nil, err
		}
		out = append(out, Fig16Point{Ranks: ranks, Elapsed: time.Since(start)})
	}
	base := out[0].Elapsed.Seconds()
	for i := range out {
		out[i].Speedup = base / out[i].Elapsed.Seconds()
	}
	return out, nil
}

func runFig16(w io.Writer, opt Options) error {
	header(w, fmt.Sprintf("Fig. 16: strong scaling, %d-qubit Hadamard layer", opt.Fig16Qubits))
	rs, err := Fig16Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "ranks\telapsed\tspeedup vs 1 rank\tideal")
	for i, r := range rs {
		fmt.Fprintf(tw, "%d\t%v\t%.2f\t%d\n", r.Ranks, r.Elapsed.Round(time.Millisecond), r.Speedup, 1<<uint(i))
	}
	return tw.Flush()
}

// WorkerScalingPoint is one pool-width measurement of the intra-rank
// scaling run — the in-process analog of the paper's 64 OpenMP threads
// per MPI rank.
type WorkerScalingPoint struct {
	Workers int
	Elapsed time.Duration
	Speedup float64
}

// WorkerScalingResults measures the same fixed workload as Fig. 16 at
// one rank while widening the worker pool over the block loop. The
// final states are bit-identical across the sweep (the pool's
// determinism contract), so every point does the same arithmetic.
func WorkerScalingResults(opt Options) ([]WorkerScalingPoint, error) {
	cir := quantum.HadamardAll(opt.Fig16Qubits)
	maxW := opt.MaxWorkers
	if maxW < 1 {
		maxW = 1
	}
	var out []WorkerScalingPoint
	for workers := 1; workers <= maxW; workers *= 2 {
		s, err := core.New(core.Config{Qubits: opt.Fig16Qubits, Ranks: 1, BlockAmps: opt.BlockAmps, Workers: workers, Seed: 1, DisableSweeps: opt.DisableSweeps})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.Run(cir); err != nil {
			return nil, err
		}
		out = append(out, WorkerScalingPoint{Workers: workers, Elapsed: time.Since(start)})
	}
	base := out[0].Elapsed.Seconds()
	for i := range out {
		out[i].Speedup = base / out[i].Elapsed.Seconds()
	}
	return out, nil
}

func runFig16Workers(w io.Writer, opt Options) error {
	header(w, fmt.Sprintf("Fig. 16b: intra-rank worker scaling, %d-qubit Hadamard layer, 1 rank", opt.Fig16Qubits))
	rs, err := WorkerScalingResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "workers\telapsed\tspeedup vs 1 worker\tideal")
	for i, r := range rs {
		fmt.Fprintf(tw, "%d\t%v\t%.2f\t%d\n", r.Workers, r.Elapsed.Round(time.Millisecond), r.Speedup, 1<<uint(i))
	}
	return tw.Flush()
}
