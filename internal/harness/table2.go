package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

// Table2Row is one benchmark column of the paper's Table 2.
type Table2Row struct {
	Benchmark   string
	Qubits      int
	Gates       int
	Ranks       int
	MemRequired float64 // uncompressed state bytes
	MemBudget   int64   // total budget across ranks (0 = unlimited)

	TotalTime     time.Duration
	CompressPct   float64
	DecompressPct float64
	CommPct       float64
	ComputePct    float64
	TimePerGate   time.Duration

	Fidelity    float64 // measured vs dense reference (test scales)
	FidelityLow float64 // ledger lower bound (Eq. 11)
	MinRatio    float64 // Table 2's last row
	FinalLevel  int
	Escalations int
}

// table2Workloads builds the scaled Table 2 benchmark set.
func table2Workloads(opt Options) []struct {
	name   string
	cir    *quantum.Circuit
	budget float64 // fraction of uncompressed requirement per run; 0 = default
} {
	var ws []struct {
		name   string
		cir    *quantum.Circuit
		budget float64
	}
	add := func(name string, cir *quantum.Circuit, budget float64) {
		ws = append(ws, struct {
			name   string
			cir    *quantum.Circuit
			budget float64
		}{name, cir, budget})
	}
	// Grover: the paper runs it at 0.002%-1.17% of the requirement —
	// its state is extremely compressible. We give it 10% to leave the
	// lossless stage room, and it typically never needs lossy.
	add(fmt.Sprintf("Grover-%dq", quantum.GroverQubits(opt.GroverSearch)),
		quantum.Grover(opt.GroverSearch, 0x2D>>uint(max(0, 6-opt.GroverSearch)), 1), 0.10)
	for _, grid := range opt.SupremacyGrids {
		add(fmt.Sprintf("RCS-%dx%d", grid[0], grid[1]),
			quantum.Supremacy(grid[0], grid[1], opt.SupremacyDepth, 2019), 0.375)
	}
	for _, n := range opt.QAOAQubits {
		add(fmt.Sprintf("QAOA-%dq", n), quantum.QAOA(n, 2, 2020), 0.375)
	}
	add(fmt.Sprintf("QFT-%dq", opt.QFTQubits), quantum.QFT(opt.QFTQubits, 2021), 0.1875)
	return ws
}

// Table2Results runs every benchmark under its memory budget.
func Table2Results(opt Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, wl := range table2Workloads(opt) {
		row, err := runTable2Benchmark(wl.name, wl.cir, wl.budget, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable2Benchmark(name string, cir *quantum.Circuit, budgetFrac float64, opt Options) (Table2Row, error) {
	ranks := opt.Table2Ranks
	for 1<<uint(cir.N-1) < ranks*opt.BlockAmps && ranks > 1 {
		ranks /= 2
	}
	req := core.MemoryRequirement(cir.N)
	var perRank int64
	if budgetFrac > 0 {
		perRank = int64(req * budgetFrac / float64(ranks))
	}
	s, err := core.New(core.Config{
		Qubits:        cir.N,
		Ranks:         ranks,
		BlockAmps:     opt.BlockAmps,
		MemoryBudget:  perRank,
		CacheLines:    64,
		Workers:       opt.Workers,
		Seed:          7,
		DisableSweeps: opt.DisableSweeps,
	})
	if err != nil {
		return Table2Row{}, err
	}
	start := time.Now()
	if err := s.Run(cir); err != nil {
		return Table2Row{}, err
	}
	elapsed := time.Since(start)

	st := s.Stats()
	tot := st.TotalTime().Seconds()
	if tot == 0 {
		tot = 1
	}
	row := Table2Row{
		Benchmark:     name,
		Qubits:        cir.N,
		Gates:         len(cir.Gates),
		Ranks:         ranks,
		MemRequired:   req,
		MemBudget:     perRank * int64(ranks),
		TotalTime:     elapsed,
		CompressPct:   100 * st.CompressTime.Seconds() / tot,
		DecompressPct: 100 * st.DecompressTime.Seconds() / tot,
		CommPct:       100 * st.CommTime.Seconds() / tot,
		ComputePct:    100 * st.ComputeTime.Seconds() / tot,
		TimePerGate:   elapsed / time.Duration(len(cir.Gates)),
		FidelityLow:   s.FidelityLowerBound(),
		MinRatio:      st.MinCompressionRatio(req),
		FinalLevel:    st.FinalLevel,
		Escalations:   st.Escalations,
	}
	// Measured fidelity against the dense reference at test scales.
	if cir.N <= 20 {
		ref := quantum.NewState(cir.N)
		ref.ApplyCircuit(cir)
		got, err := s.FullState()
		if err != nil {
			return Table2Row{}, err
		}
		f := quantum.FidelityVec(ref.Amps, got)
		n, err := s.Norm()
		if err != nil {
			return Table2Row{}, err
		}
		if n > 0 {
			f /= math.Sqrt(n)
		}
		row.Fidelity = f
	}
	return row, nil
}

func runTable2(w io.Writer, opt Options) error {
	header(w, "Table 2: benchmark results (scaled; see DESIGN.md substitutions)")
	rows, err := Table2Results(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "benchmark\tqubits\tgates\tranks\tmem req\tbudget\ttotal time\tcompr%\tdecompr%\tcomm%\tcompute%\tt/gate\tfidelity\tledger\tmin ratio")
	for _, r := range rows {
		budget := "unbounded"
		if r.MemBudget > 0 {
			budget = stats.FormatBytes(float64(r.MemBudget))
		}
		fid := "n/a"
		if r.Fidelity > 0 {
			fid = fmt.Sprintf("%.3f", r.Fidelity)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%v\t%.1f\t%.1f\t%.1f\t%.1f\t%v\t%s\t%.3f\t%.2f\n",
			r.Benchmark, r.Qubits, r.Gates, r.Ranks,
			stats.FormatBytes(r.MemRequired), budget,
			r.TotalTime.Round(time.Millisecond),
			r.CompressPct, r.DecompressPct, r.CommPct, r.ComputePct,
			r.TimePerGate.Round(time.Microsecond),
			fid, r.FidelityLow, r.MinRatio)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nShape targets (paper): Grover compresses orders of magnitude better than the")
	fmt.Fprintln(w, "rest; supremacy circuits compress worst; QFT in between; fidelity stays high.")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
