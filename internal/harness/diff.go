package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"
)

// Bench-regression gating: committed BENCH_N.json snapshots are diffed
// against a fresh run so the speed claims in CHANGES.md stay
// regression-gated rather than anecdotal. Raw elapsed times are NOT
// comparable across machines (the committed baseline and the CI runner
// differ in absolute speed), so every tracked metric is either a
// deterministic counter (codec-call reductions, escalation levels,
// routing decisions) or a dimensionless within-run ratio (sweep
// speedup, sampler speedup, spill-vs-control elapsed) — both survive a
// hardware change, and a >tol move in the harmful direction is a real
// regression, not runner noise.
//
// The deterministic counters are gated unconditionally. The timing
// ratios are gated only when the measured durations on BOTH sides sit
// above minGateDuration: sub-millisecond rows at the -small scale vary
// ±50% run to run, so a 20% gate on them would flag noise, not
// regressions. The counters still cover those rows — codec-call
// reduction IS the sweep scheduler's speed claim, measured exactly.

// minGateDuration is the noise floor for timing-ratio gates: a ratio
// is compared only when the slower side of both snapshots took at
// least this long, which puts the run-to-run jitter well under the
// tolerance.
const minGateDuration = 250 * time.Millisecond

// Regression is one tracked metric that moved past the tolerance in
// the harmful direction between two snapshots.
type Regression struct {
	// Row names the workload, e.g. "sweep/Grover-7q" or "spill/QFT-10".
	Row string
	// Metric names the tracked quantity, e.g. "speedup" or "reduction".
	Metric string
	// Old and New are the baseline and fresh values.
	Old, New float64
	// Detail is a human-readable explanation of the failure.
	Detail string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.3g -> %.3g (%s)", r.Row, r.Metric, r.Old, r.New, r.Detail)
}

// ReadSnapshot parses a BENCH_N.json snapshot file.
func ReadSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("harness: snapshot %s: %w", path, err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("harness: snapshot %s has schema %d, want %d", path, snap.Schema, SnapshotSchema)
	}
	return &snap, nil
}

// DiffSnapshots compares the tracked rows of a fresh snapshot against
// a committed baseline and returns every regression beyond tol (0.20
// = a 20% move in the harmful direction). The two snapshots must have
// been produced at the same Options scale; comparing different scales
// is an error, not a clean bill.
func DiffSnapshots(old, fresh *BenchSnapshot, tol float64) ([]Regression, error) {
	if !reflect.DeepEqual(old.Options, fresh.Options) {
		return nil, fmt.Errorf("harness: snapshot scales differ (baseline %+v, fresh %+v)", old.Options, fresh.Options)
	}
	var regs []Regression
	add := func(row, metric string, oldV, newV float64, detail string) {
		regs = append(regs, Regression{Row: row, Metric: metric, Old: oldV, New: newV, Detail: detail})
	}
	// higherBetter flags newV < oldV·(1-tol); tolerated otherwise.
	higherBetter := func(row, metric string, oldV, newV float64) {
		if oldV > 0 && newV < oldV*(1-tol) {
			add(row, metric, oldV, newV, fmt.Sprintf("dropped more than %.0f%%", tol*100))
		}
	}

	sweepOld := make(map[string]SweepRow, len(old.Sweep))
	for _, r := range old.Sweep {
		sweepOld[r.Benchmark] = r
	}
	for _, n := range fresh.Sweep {
		o, ok := sweepOld[n.Benchmark]
		if !ok {
			continue // new workload: nothing to gate against
		}
		delete(sweepOld, n.Benchmark)
		// Codec-call reduction is deterministic — a drop means the
		// scheduler batches less than it used to.
		higherBetter("sweep/"+n.Benchmark, "reduction", o.Reduction, n.Reduction)
		if o.ElapsedOn > 0 && n.ElapsedOn > 0 &&
			o.ElapsedOff >= minGateDuration && n.ElapsedOff >= minGateDuration {
			higherBetter("sweep/"+n.Benchmark, "speedup",
				float64(o.ElapsedOff)/float64(o.ElapsedOn),
				float64(n.ElapsedOff)/float64(n.ElapsedOn))
		}
	}
	for name := range sweepOld {
		add("sweep/"+name, "row", 1, 0, "tracked row missing from fresh snapshot")
	}

	batchOld := make(map[string]BatchRow, len(old.Batch))
	for _, r := range old.Batch {
		batchOld[r.Benchmark] = r
	}
	for _, n := range fresh.Batch {
		o, ok := batchOld[n.Benchmark]
		if !ok {
			continue
		}
		delete(batchOld, n.Benchmark)
		// The codec-call reduction is deterministic (single-worker batch
		// experiment) — a drop means the batch cache shares less work.
		higherBetter("batch/"+n.Benchmark, "reduction", o.Reduction, n.Reduction)
		if n.Variants != o.Variants {
			add("batch/"+n.Benchmark, "variants", float64(o.Variants), float64(n.Variants),
				"batch width changed at the same scale")
		}
	}
	for name := range batchOld {
		add("batch/"+name, "row", 1, 0, "tracked row missing from fresh snapshot")
	}

	samplingOld := make(map[string]SamplingRow, len(old.Sampling))
	for _, r := range old.Sampling {
		samplingOld[r.Benchmark] = r
	}
	for _, n := range fresh.Sampling {
		o, ok := samplingOld[n.Benchmark]
		if !ok {
			continue
		}
		delete(samplingOld, n.Benchmark)
		if o.ScanTime >= minGateDuration && n.ScanTime >= minGateDuration {
			higherBetter("sampling/"+n.Benchmark, "speedup", o.Speedup, n.Speedup)
		}
	}
	for name := range samplingOld {
		add("sampling/"+name, "row", 1, 0, "tracked row missing from fresh snapshot")
	}

	crossOld := make(map[int]CrossoverRow, len(old.Crossover))
	for _, r := range old.Crossover {
		crossOld[r.Depth] = r
	}
	for _, n := range fresh.Crossover {
		o, ok := crossOld[n.Depth]
		if !ok {
			continue
		}
		delete(crossOld, n.Depth)
		row := fmt.Sprintf("crossover/depth-%d", n.Depth)
		// Structural outputs are deterministic: the bond estimate and
		// the auto router's pick must not drift.
		if n.EstBond != o.EstBond {
			add(row, "est-bond", float64(o.EstBond), float64(n.EstBond), "structural bond estimate changed")
		}
		if n.Auto != o.Auto {
			add(row, "auto-pick", 0, 0, fmt.Sprintf("auto routing flipped %s -> %s", o.Auto, n.Auto))
		}
	}
	for depth := range crossOld {
		add(fmt.Sprintf("crossover/depth-%d", depth), "row", 1, 0, "tracked row missing from fresh snapshot")
	}

	spillOld := make(map[string]SpillRow, len(old.Spill))
	for _, r := range old.Spill {
		spillOld[r.Benchmark] = r
	}
	for _, n := range fresh.Spill {
		o, ok := spillOld[n.Benchmark]
		if !ok {
			continue
		}
		delete(spillOld, n.Benchmark)
		row := "spill/" + n.Benchmark
		// The spill tier's whole claim: the budgeted run completes
		// without tripping the ladder.
		if !o.SpillOverBudget && n.SpillOverBudget {
			add(row, "over-budget", 0, 1, "spill run now exceeds the budget")
		}
		if n.SpillFinalLevel > o.SpillFinalLevel {
			add(row, "final-level", float64(o.SpillFinalLevel), float64(n.SpillFinalLevel), "spill run now escalates further")
		}
		// Within-run cost ratio: spill elapsed relative to the
		// unspilled control on the same machine. Lower is better.
		if o.ControlElapsed >= minGateDuration && n.ControlElapsed >= minGateDuration && o.SpillElapsed > 0 {
			oldRatio := float64(o.SpillElapsed) / float64(o.ControlElapsed)
			newRatio := float64(n.SpillElapsed) / float64(n.ControlElapsed)
			if newRatio > oldRatio*(1+tol) {
				add(row, "spill-cost", oldRatio, newRatio, fmt.Sprintf("spill/control elapsed ratio grew more than %.0f%%", tol*100))
			}
		}
	}
	for name := range spillOld {
		add("spill/"+name, "row", 1, 0, "tracked row missing from fresh snapshot")
	}
	return regs, nil
}
