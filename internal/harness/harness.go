// Package harness regenerates every table and figure of the paper's
// evaluation (§5) at laptop scale: the same workloads, the same
// comparisons, the same output rows — with qubit counts scaled down per
// the substitutions documented in DESIGN.md. Each experiment prints a
// paper-style table and returns a machine-readable result the tests and
// benchmarks assert shape properties on.
package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Options scales the experiments. Default() matches the committed
// EXPERIMENTS.md numbers; Small() keeps CI fast.
type Options struct {
	// SnapshotQubits sizes the qaoa_N / sup_N state snapshots used by
	// the compression experiments (paper: 36).
	SnapshotQubits int
	// SnapshotBlock is the per-block value count when splitting
	// snapshots for per-block statistics (paper: 2^21 doubles).
	SnapshotBlock int
	// Fig5Qubits sizes the rank-configuration sweep (paper: 35).
	Fig5Qubits int
	// Fig15MinQubits..Fig15MaxQubits bound the single-node scaling
	// sweep (paper: 34..40).
	Fig15MinQubits, Fig15MaxQubits int
	// Fig16Qubits sizes the strong-scaling run (paper: 51).
	Fig16Qubits int
	// Fig16MaxRanks is the largest rank count (paper: 512 nodes).
	Fig16MaxRanks int
	// Table2Scale shrinks the Table 2 benchmarks: Grover search
	// register, supremacy grid, QAOA width, QFT width.
	GroverSearch   int
	SupremacyGrids [][2]int
	QAOAQubits     []int
	QFTQubits      int
	SupremacyDepth int
	// Ranks used by Table 2 runs.
	Table2Ranks int
	// BlockAmps for simulator runs.
	BlockAmps int
	// Workers is the per-rank worker-pool width simulator runs use
	// (0 = the core default, runtime.NumCPU()/Ranks).
	Workers int
	// MaxWorkers is the largest pool width in the worker-scaling sweep
	// (the intra-rank analog of Fig. 16; the paper runs 64 OpenMP
	// threads per MPI rank).
	MaxWorkers int
	// DisableSweeps turns the sweep scheduler off in simulator runs,
	// reproducing the paper's one-codec-pass-per-gate cost model (the
	// "sweep" experiment compares both modes regardless).
	DisableSweeps bool
	// SampleShots is the shot count of the sampling experiment.
	SampleShots int
	// CrossoverQubits and CrossoverDepths shape the backend-crossover
	// sweep: a brickwork circuit of each depth on that many qubits.
	CrossoverQubits int
	CrossoverDepths []int
	// BondDim is the MPS bond-dimension cap χ used by the crossover
	// experiment (and the auto-selection threshold it reports).
	BondDim int
	// Backend restricts the crossover sweep to one engine ("mps" or
	// "compressed"); anything else runs both sides of the comparison.
	Backend string
	// BatchShifts is how many trailing parameter occurrences the batch
	// experiment shifts by ±π/2: the lockstep batch width is
	// K = 1 + 2·BatchShifts.
	BatchShifts int
}

// Default returns the committed experiment scale.
func Default() Options {
	return Options{
		SnapshotQubits:  16,
		SnapshotBlock:   4096,
		Fig5Qubits:      14,
		Fig15MinQubits:  12,
		Fig15MaxQubits:  18,
		Fig16Qubits:     16,
		Fig16MaxRanks:   8,
		GroverSearch:    8,
		SupremacyGrids:  [][2]int{{4, 4}, {3, 5}, {3, 4}},
		QAOAQubits:      []int{16, 14},
		QFTQubits:       14,
		SupremacyDepth:  11,
		Table2Ranks:     4,
		BlockAmps:       1024,
		MaxWorkers:      8,
		SampleShots:     4096,
		CrossoverQubits: 16,
		CrossoverDepths: []int{1, 2, 4, 6, 8, 10, 12},
		BondDim:         32,
		BatchShifts:     12,
	}
}

// Small returns a fast scale for tests.
func Small() Options {
	return Options{
		SnapshotQubits:  11,
		SnapshotBlock:   512,
		Fig5Qubits:      10,
		Fig15MinQubits:  8,
		Fig15MaxQubits:  11,
		Fig16Qubits:     11,
		Fig16MaxRanks:   4,
		GroverSearch:    5,
		SupremacyGrids:  [][2]int{{3, 3}},
		QAOAQubits:      []int{10},
		QFTQubits:       10,
		SupremacyDepth:  8,
		Table2Ranks:     2,
		BlockAmps:       128,
		MaxWorkers:      4,
		SampleShots:     256,
		CrossoverQubits: 10,
		CrossoverDepths: []int{1, 2, 4, 6},
		BondDim:         8,
		BatchShifts:     4,
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: supercomputer memory vs max fully-simulable qubits", runTable1},
		{"fig5", "Fig. 5: normalized execution time across rank configurations", runFig5},
		{"fig6", "Fig. 6: fidelity lower bounds vs gate count (Eq. 11)", runFig6},
		{"fig7", "Fig. 7: compression ratio, SZ vs ZFP (absolute error)", runFig7},
		{"fig8", "Fig. 8: compression ratio, SZ vs FPZIP vs ZFP (relative error)", runFig8},
		{"fig9", "Fig. 9: spikiness of quantum state data", runFig9},
		{"fig10", "Fig. 10: compression ratio of Solutions A-D", runFig10},
		{"fig11", "Fig. 11: compression/decompression rates of Solutions A-D", runFig11},
		{"fig12", "Fig. 12: distribution of per-block max pointwise relative errors", runFig12},
		{"fig13", "Fig. 13: discrete truncation errors (worked example)", runFig13},
		{"fig14", "Fig. 14: normalized error distribution and autocorrelation (Solution C)", runFig14},
		{"fig15", "Fig. 15: single-node execution time vs qubit count", runFig15},
		{"fig16", "Fig. 16: strong scaling of a Hadamard layer", runFig16},
		{"fig16w", "Fig. 16b: intra-rank worker-pool scaling (paper: OpenMP threads per rank)", runFig16Workers},
		{"sweep", "Sweep scheduler: codec passes per run of block-local gates (Grover, QAOA)", runSweep},
		{"batch", "Variant batching: lockstep parameter-shift batch vs K sequential runs (QAOA, VQE)", runBatchExp},
		{"sampling", "Sampling: streaming compressed-domain sampler vs full-vector scan (GHZ, QAOA)", runSampling},
		{"spill", "Spill tier: out-of-core completion under a resident-memory budget (QFT, random)", runSpill},
		{"crossover", "Crossover: compressed full-state vs MPS backend over entanglement depth (§2.2)", runCrossover},
		{"table2", "Table 2: full benchmark results with time breakdown", runTable2},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// newTable returns a tabwriter for aligned paper-style output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
