package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: each experiment's structured results can be written as a
// CSV file for external plotting, mirroring the paper's figures.

// WriteRatioCSV writes RatioResults as dataset,codec,bound,ratio rows.
func WriteRatioCSV(w io.Writer, rs []RatioResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "codec", "bound", "ratio"}); err != nil {
		return err
	}
	for _, r := range rs {
		rec := []string{r.Dataset, r.Codec, fmtF(r.Bound), fmtF(r.Ratio)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRateCSV writes RateResults.
func WriteRateCSV(w io.Writer, rs []RateResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "codec", "bound", "compress_mb_s", "decompress_mb_s"}); err != nil {
		return err
	}
	for _, r := range rs {
		rec := []string{r.Dataset, r.Codec, fmtF(r.Bound), fmtF(r.CompressMB), fmtF(r.DecompMB)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes Table2Rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	hdr := []string{"benchmark", "qubits", "gates", "ranks", "mem_required_bytes",
		"mem_budget_bytes", "total_seconds", "compress_pct", "decompress_pct",
		"comm_pct", "compute_pct", "fidelity", "fidelity_lower_bound", "min_ratio"}
	if err := cw.Write(hdr); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Benchmark, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates), strconv.Itoa(r.Ranks),
			fmtF(r.MemRequired), strconv.FormatInt(r.MemBudget, 10),
			fmtF(r.TotalTime.Seconds()), fmtF(r.CompressPct), fmtF(r.DecompressPct),
			fmtF(r.CommPct), fmtF(r.ComputePct), fmtF(r.Fidelity), fmtF(r.FidelityLow), fmtF(r.MinRatio),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV writes one scaling sweep (rank or worker) as
// x,elapsed_seconds,relative rows, where relative is the sweep's own
// normalization (normalized time for Figs. 5/15, speedup for 16/16b).
func WriteScalingCSV(w io.Writer, xName, relName string, xs []int, elapsed []float64, rel []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{xName, "elapsed_seconds", relName}); err != nil {
		return err
	}
	for i := range xs {
		if err := cw.Write([]string{strconv.Itoa(xs[i]), fmtF(elapsed[i]), fmtF(rel[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpillCSV writes SpillResults: the resident high-water is the
// RSS proxy, spilled_bytes the on-disk overflow, hit_rate the fraction
// of disk reads the prefetcher absorbed.
func WriteSpillCSV(w io.Writer, rows []SpillRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "qubits", "gates", "footprint_bytes",
		"budget_bytes", "control_over_budget", "control_final_level", "control_seconds",
		"max_resident_bytes", "spilled_bytes", "spill_writes", "spill_reads",
		"prefetch_hits", "hit_rate", "spill_seconds", "spill_over_budget",
		"spill_final_level"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
			strconv.FormatInt(r.Footprint, 10), strconv.FormatInt(r.Budget, 10),
			strconv.FormatBool(r.ControlOverBudget), strconv.Itoa(r.ControlFinalLevel),
			fmtF(r.ControlElapsed.Seconds()),
			strconv.FormatInt(r.MaxResident, 10), strconv.FormatInt(r.SpilledBytes, 10),
			strconv.FormatInt(r.SpillWrites, 10), strconv.FormatInt(r.SpillReads, 10),
			strconv.FormatInt(r.PrefetchHits, 10), fmtF(r.HitRate),
			fmtF(r.SpillElapsed.Seconds()), strconv.FormatBool(r.SpillOverBudget),
			strconv.Itoa(r.SpillFinalLevel)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV runs the data-producing experiments and writes one CSV per
// figure into dir.
func ExportCSV(dir string, opt Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, f func(w io.Writer) error) error {
		fp, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := f(fp); err != nil {
			fp.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		return fp.Close()
	}
	fig7, err := Fig7Results(opt)
	if err != nil {
		return err
	}
	if err := write("fig7_abs_ratio.csv", func(w io.Writer) error { return WriteRatioCSV(w, fig7) }); err != nil {
		return err
	}
	fig8, err := Fig8Results(opt)
	if err != nil {
		return err
	}
	if err := write("fig8_rel_ratio.csv", func(w io.Writer) error { return WriteRatioCSV(w, fig8) }); err != nil {
		return err
	}
	fig10, err := Fig10Results(opt)
	if err != nil {
		return err
	}
	if err := write("fig10_solutions_ratio.csv", func(w io.Writer) error { return WriteRatioCSV(w, fig10) }); err != nil {
		return err
	}
	fig11, err := Fig11Results(opt)
	if err != nil {
		return err
	}
	if err := write("fig11_rates.csv", func(w io.Writer) error { return WriteRateCSV(w, fig11) }); err != nil {
		return err
	}
	t2, err := Table2Results(opt)
	if err != nil {
		return err
	}
	if err := write("table2.csv", func(w io.Writer) error { return WriteTable2CSV(w, t2) }); err != nil {
		return err
	}
	fig16, err := Fig16Results(opt)
	if err != nil {
		return err
	}
	if err := write("fig16_strong_scaling.csv", func(w io.Writer) error {
		xs := make([]int, len(fig16))
		el := make([]float64, len(fig16))
		rel := make([]float64, len(fig16))
		for i, r := range fig16 {
			xs[i], el[i], rel[i] = r.Ranks, r.Elapsed.Seconds(), r.Speedup
		}
		return WriteScalingCSV(w, "ranks", "speedup", xs, el, rel)
	}); err != nil {
		return err
	}
	fig16w, err := WorkerScalingResults(opt)
	if err != nil {
		return err
	}
	if err := write("fig16w_worker_scaling.csv", func(w io.Writer) error {
		xs := make([]int, len(fig16w))
		el := make([]float64, len(fig16w))
		rel := make([]float64, len(fig16w))
		for i, r := range fig16w {
			xs[i], el[i], rel[i] = r.Workers, r.Elapsed.Seconds(), r.Speedup
		}
		return WriteScalingCSV(w, "workers", "speedup", xs, el, rel)
	}); err != nil {
		return err
	}
	sweep, err := SweepResults(opt)
	if err != nil {
		return err
	}
	if err := write("sweep_codec_reduction.csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"benchmark", "qubits", "gates", "codec_calls_off",
			"codec_calls_on", "reduction", "sweeps", "sweep_gates", "passes_saved",
			"elapsed_off_seconds", "elapsed_on_seconds"}); err != nil {
			return err
		}
		for _, r := range sweep {
			rec := []string{r.Benchmark, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
				strconv.FormatInt(r.CodecCallsOff, 10), strconv.FormatInt(r.CodecCallsOn, 10),
				fmtF(r.Reduction), strconv.Itoa(r.Sweeps), strconv.Itoa(r.SweepGates),
				strconv.FormatInt(r.PassesSaved, 10),
				fmtF(r.ElapsedOff.Seconds()), fmtF(r.ElapsedOn.Seconds())}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	batch, err := BatchResults(opt)
	if err != nil {
		return err
	}
	if err := write("batch.csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"benchmark", "qubits", "gates", "variants",
			"codec_calls_solo", "codec_calls_batch", "per_variant_solo",
			"per_variant_batch", "reduction", "passes_shared",
			"elapsed_solo_seconds", "elapsed_batch_seconds"}); err != nil {
			return err
		}
		for _, r := range batch {
			rec := []string{r.Benchmark, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
				strconv.Itoa(r.Variants),
				strconv.FormatInt(r.CodecCallsSolo, 10), strconv.FormatInt(r.CodecCallsBatch, 10),
				fmtF(r.PerVariantSolo), fmtF(r.PerVariantBatch),
				fmtF(r.Reduction), strconv.FormatInt(r.PassesShared, 10),
				fmtF(r.ElapsedSolo.Seconds()), fmtF(r.ElapsedBatch.Seconds())}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	sampling, err := SamplingResults(opt)
	if err != nil {
		return err
	}
	if err := write("sampling.csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"benchmark", "qubits", "shots", "distinct", "total_mass",
			"build_seconds", "draw_seconds", "scan_seconds", "speedup"}); err != nil {
			return err
		}
		for _, r := range sampling {
			rec := []string{r.Benchmark, strconv.Itoa(r.Qubits), strconv.Itoa(r.Shots),
				strconv.Itoa(r.Distinct), fmtF(r.TotalMass),
				fmtF(r.BuildTime.Seconds()), fmtF(r.DrawTime.Seconds()),
				fmtF(r.ScanTime.Seconds()), fmtF(r.Speedup)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	spill, err := SpillResults(opt)
	if err != nil {
		return err
	}
	if err := write("spill.csv", func(w io.Writer) error { return WriteSpillCSV(w, spill) }); err != nil {
		return err
	}
	crossover, err := CrossoverResults(opt)
	if err != nil {
		return err
	}
	if err := write("crossover.csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"depth", "qubits", "gates", "est_bond", "auto_picks",
			"mps_seconds", "mps_bytes", "mps_fidelity", "mps_max_bond",
			"compressed_seconds", "compressed_bytes", "compressed_fidelity", "winner"}); err != nil {
			return err
		}
		for _, r := range crossover {
			rec := []string{strconv.Itoa(r.Depth), strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
				strconv.Itoa(r.EstBond), r.Auto,
				fmtF(r.MPSTime.Seconds()), strconv.FormatInt(r.MPSMem, 10),
				fmtF(r.MPSFidelity), strconv.Itoa(r.MPSMaxBond),
				fmtF(r.CompTime.Seconds()), strconv.FormatInt(r.CompMem, 10),
				fmtF(r.CompFidelity), r.TimeWinner}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	// Fig. 6 is closed-form; export the curves too.
	return write("fig6_fidelity_bounds.csv", func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"gates", "bound", "fidelity_lower_bound"}); err != nil {
			return err
		}
		for _, d := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
			f := 1.0
			for g := 1; g <= 5000; g++ {
				f *= 1 - d
				if g%250 == 0 {
					if err := cw.Write([]string{strconv.Itoa(g), fmtF(d), fmtF(f)}); err != nil {
						return err
					}
				}
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
