package harness

import (
	"fmt"
	"sync"

	"qcsim/internal/quantum"
)

// Snapshot is a raw state-vector image (interleaved re/im float64) of a
// benchmark circuit — the qaoa_N / sup_N datasets of §4.1.
type Snapshot struct {
	Name string
	Data []float64
}

var (
	snapMu    sync.Mutex
	snapCache = map[string][]float64{}
)

// snapshot runs the named circuit on the dense reference simulator and
// returns its final state as interleaved float64 (cached per size —
// the compression experiments reuse the same datasets repeatedly).
func snapshot(kind string, qubits int) Snapshot {
	key := fmt.Sprintf("%s_%d", kind, qubits)
	snapMu.Lock()
	defer snapMu.Unlock()
	if data, ok := snapCache[key]; ok {
		return Snapshot{Name: key, Data: data}
	}
	var c *quantum.Circuit
	switch kind {
	case "qaoa":
		c = quantum.QAOA(qubits, 2, 20190001)
	case "sup":
		rows, cols := gridFor(qubits)
		c = quantum.Supremacy(rows, cols, 11, 20190002)
	default:
		panic("harness: unknown snapshot kind " + kind)
	}
	st := quantum.NewState(c.N)
	st.ApplyCircuit(c)
	data := make([]float64, 2*len(st.Amps))
	for i, a := range st.Amps {
		data[2*i] = real(a)
		data[2*i+1] = imag(a)
	}
	snapCache[key] = data
	return Snapshot{Name: key, Data: data}
}

// gridFor factors a qubit count into the most square rows×cols grid.
func gridFor(n int) (rows, cols int) {
	best := [2]int{1, n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = [2]int{r, n / r}
		}
	}
	return best[0], best[1]
}

// blocks splits data into consecutive blocks of `size` values (the last
// block may be shorter).
func blocks(data []float64, size int) [][]float64 {
	var out [][]float64
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// valueRange returns max-min over a block (the paper's range-relative
// absolute bound basis).
func valueRange(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
