package harness

import (
	"fmt"
	"io"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

// SweepRow is one workload × scheduler-mode measurement of the sweep
// experiment: how much codec traffic the sweep scheduler removes from
// the Grover and QAOA example circuits, whose layers of single-qubit
// gates on different qubits pay one codec round trip per gate under the
// paper's cost model.
type SweepRow struct {
	Benchmark string
	Qubits    int
	Gates     int

	CodecCallsOff int64 // compress+decompress invocations, gate-at-a-time
	CodecCallsOn  int64 // same with the sweep scheduler
	Reduction     float64
	Sweeps        int
	SweepGates    int
	PassesSaved   int64
	ElapsedOff    time.Duration
	ElapsedOn     time.Duration
}

// sweepWorkloads scales the example circuits the experiment measures:
// the examples/grover search and the examples/qaoa MAXCUT instance.
func sweepWorkloads(opt Options) []struct {
	name string
	cir  *quantum.Circuit
} {
	grover := quantum.Grover(opt.GroverSearch,
		0x2D>>uint(max(0, 6-opt.GroverSearch)),
		quantum.GroverOptimalIterations(opt.GroverSearch))
	var qaoaN int
	for _, n := range opt.QAOAQubits {
		if n > qaoaN {
			qaoaN = n
		}
	}
	return []struct {
		name string
		cir  *quantum.Circuit
	}{
		{fmt.Sprintf("Grover-%dq", grover.N), grover},
		{fmt.Sprintf("QAOA-%dq", qaoaN), quantum.QAOA(qaoaN, 2, 2020)},
	}
}

// SweepResults runs each workload twice — sweeps off, then on — under
// identical lossless configurations and reports the codec-invocation
// reduction. The amplitudes are bit-identical across the pair (the
// scheduler's contract), so the comparison isolates pure codec traffic.
func SweepResults(opt Options) ([]SweepRow, error) {
	var rows []SweepRow
	for _, wl := range sweepWorkloads(opt) {
		run := func(disable bool) (core.Stats, time.Duration, error) {
			s, err := core.New(core.Config{
				Qubits:        wl.cir.N,
				Ranks:         1,
				BlockAmps:     opt.BlockAmps,
				Workers:       opt.Workers,
				Seed:          7,
				DisableSweeps: disable,
			})
			if err != nil {
				return core.Stats{}, 0, err
			}
			// Snapshot after New's Reset so the reported codec traffic
			// covers the run alone, not the per-block initialization
			// compressions neither mode can elide.
			base := s.Stats()
			start := time.Now()
			if err := s.Run(wl.cir); err != nil {
				return core.Stats{}, 0, err
			}
			elapsed := time.Since(start)
			st := s.Stats()
			st.CompressCalls -= base.CompressCalls
			st.DecompressCalls -= base.DecompressCalls
			return st, elapsed, nil
		}
		stOff, elOff, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("%s sweeps-off: %w", wl.name, err)
		}
		stOn, elOn, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("%s sweeps-on: %w", wl.name, err)
		}
		callsOff := stOff.CompressCalls + stOff.DecompressCalls
		callsOn := stOn.CompressCalls + stOn.DecompressCalls
		row := SweepRow{
			Benchmark:     wl.name,
			Qubits:        wl.cir.N,
			Gates:         len(wl.cir.Gates),
			CodecCallsOff: callsOff,
			CodecCallsOn:  callsOn,
			Sweeps:        stOn.Sweeps,
			SweepGates:    stOn.SweepGates,
			PassesSaved:   stOn.CodecPassesSaved,
			ElapsedOff:    elOff,
			ElapsedOn:     elOn,
		}
		if callsOn > 0 {
			row.Reduction = float64(callsOff) / float64(callsOn)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runSweep(w io.Writer, opt Options) error {
	header(w, "Sweep scheduler: one codec pass per run of block-local gates")
	rows, err := SweepResults(opt)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "benchmark\tqubits\tgates\tcodec calls (off)\tcodec calls (on)\treduction\tsweeps\tsweep gates\tpasses saved\ttime off\ttime on")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1fx\t%d\t%d\t%d\t%v\t%v\n",
			r.Benchmark, r.Qubits, r.Gates,
			r.CodecCallsOff, r.CodecCallsOn, r.Reduction,
			r.Sweeps, r.SweepGates, r.PassesSaved,
			r.ElapsedOff.Round(time.Millisecond), r.ElapsedOn.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(identical amplitudes both modes; the reduction is pure codec traffic removed)")
	return nil
}
