// Package mpi is the repository's stand-in for the Message Passing
// Interface runtime the paper uses on Theta: an in-process SPMD runtime
// where each "rank" is a goroutine and the collectives (pairwise
// exchange, barrier, allreduce, broadcast) run over channels.
//
// The simulator's index arithmetic — which rank owns which amplitudes,
// when whole blocks must be exchanged between rank pairs (paper Fig. 3) —
// is identical to the MPI version, so every distributed code path of the
// paper executes here, just inside one address space. Each Comm tracks
// the wall-clock time it spends blocked in communication, which feeds the
// Table 2 time breakdown.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// World owns the shared state of one SPMD execution.
type World struct {
	size    int
	mailbox []chan []float64 // mailbox[to*size+from]
	barrier *barrier
	reduce  []float64
	reduceI []uint64
	bcast   []float64
	done    chan struct{} // closed when any rank dies
	once    sync.Once
	// bufPool recycles SendRecv payload buffers across exchanges. The
	// sender checks a buffer out and the RECEIVER returns it after
	// copying — the sender may already be composing its next exchange
	// while the receiver still reads the previous payload, so a
	// per-sender buffer would race; routing the return through a shared
	// free list keeps every buffer single-owner at all times. A full
	// pool drops returns (GC takes them), an empty one allocates.
	bufPool chan []float64
}

// getBuf checks a payload buffer of length n out of the pool,
// allocating when the pool is empty or its buffer is too small.
func (w *World) getBuf(n int) []float64 {
	select {
	case b := <-w.bufPool:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]float64, n)
}

// putBuf returns a buffer to the pool (dropped if the pool is full).
func (w *World) putBuf(b []float64) {
	select {
	case w.bufPool <- b:
	default:
	}
}

func (w *World) abort() {
	w.once.Do(func() { close(w.done) })
	w.barrier.abort()
}

// Comm is one rank's handle on the World.
type Comm struct {
	w    *World
	rank int

	commTime time.Duration
	sends    int
	bytes    int64
}

// Run executes body on size ranks concurrently and waits for all of them.
// size must be a power of two ≥ 1 (the simulator's state partitioning
// requires it). A panic in any rank is recovered and returned as an
// error after all ranks finish or unblock.
func Run(size int, body func(*Comm)) ([]*Comm, error) {
	if size < 1 || size&(size-1) != 0 {
		return nil, fmt.Errorf("mpi: size %d is not a power of two", size)
	}
	w := &World{
		size:    size,
		mailbox: make([]chan []float64, size*size),
		barrier: newBarrier(size),
		reduce:  make([]float64, size),
		reduceI: make([]uint64, size),
		bcast:   make([]float64, size),
		done:    make(chan struct{}),
		bufPool: make(chan []float64, 2*size),
	}
	for i := range w.mailbox {
		w.mailbox[i] = make(chan []float64, 1)
	}
	comms := make([]*Comm, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		comms[r] = &Comm{w: w, rank: r}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					// Unblock peers that may be waiting on this rank.
					w.abort()
				}
			}()
			body(comms[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return comms, err
		}
	}
	if w.barrier.aborted() {
		return comms, fmt.Errorf("mpi: barrier aborted")
	}
	return comms, nil
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// CommTime returns the cumulative wall-clock time this rank has spent
// blocked in communication calls.
func (c *Comm) CommTime() time.Duration { return c.commTime }

// BytesMoved returns the cumulative payload volume this rank has sent.
func (c *Comm) BytesMoved() int64 { return c.bytes }

// SendRecv exchanges float64 payloads with peer: send is delivered to
// peer and the peer's payload is copied into recv (which must have the
// peer's send length). Both sides must call SendRecv with each other as
// peer; mismatched pairings deadlock, as in MPI.
func (c *Comm) SendRecv(peer int, send, recv []float64) {
	if peer == c.rank {
		copy(recv, send)
		return
	}
	start := time.Now()
	// Copy out so the receiver never aliases our live buffer. The copy
	// goes into a pooled buffer that the receiver returns after reading,
	// so steady-state exchange traffic allocates nothing.
	out := c.w.getBuf(len(send))
	copy(out, send)
	select {
	case c.w.mailbox[peer*c.w.size+c.rank] <- out:
	case <-c.w.done:
		panic("mpi: send aborted (peer rank died)")
	}
	var in []float64
	select {
	case in = <-c.w.mailbox[c.rank*c.w.size+peer]:
	case <-c.w.done:
		panic("mpi: recv aborted (peer rank died)")
	}
	if len(in) != len(recv) {
		panic(fmt.Sprintf("mpi: rank %d expected %d values from %d, got %d", c.rank, len(recv), peer, len(in)))
	}
	copy(recv, in)
	c.w.putBuf(in)
	c.sends++
	c.bytes += int64(len(send) * 8)
	c.commTime += time.Since(start)
}

// Barrier blocks until every rank reaches it.
func (c *Comm) Barrier() {
	start := time.Now()
	c.w.barrier.await()
	c.commTime += time.Since(start)
}

// AllreduceSum returns the sum of x across all ranks. Every rank must
// call it.
func (c *Comm) AllreduceSum(x float64) float64 {
	start := time.Now()
	c.w.reduce[c.rank] = x
	c.w.barrier.await()
	var s float64
	for _, v := range c.w.reduce {
		s += v
	}
	c.w.barrier.await() // protect reduce slots from the next round
	c.commTime += time.Since(start)
	return s
}

// AllreduceMax returns the max of x across all ranks.
func (c *Comm) AllreduceMax(x uint64) uint64 {
	start := time.Now()
	c.w.reduceI[c.rank] = x
	c.w.barrier.await()
	var m uint64
	for _, v := range c.w.reduceI {
		if v > m {
			m = v
		}
	}
	c.w.barrier.await()
	c.commTime += time.Since(start)
	return m
}

// Bcast distributes root's x to every rank and returns it.
func (c *Comm) Bcast(root int, x float64) float64 {
	start := time.Now()
	if c.rank == root {
		c.w.bcast[0] = x
	}
	c.w.barrier.await()
	v := c.w.bcast[0]
	c.w.barrier.await()
	c.commTime += time.Since(start)
	return v
}

// barrier is a reusable sense-reversing barrier that can be aborted when
// a rank dies, unblocking the survivors.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	count  int
	sense  bool
	broken bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic("mpi: barrier aborted (peer rank died)")
	}
	sense := b.sense
	b.count++
	if b.count == b.size {
		b.count = 0
		b.sense = !b.sense
		b.cond.Broadcast()
		return
	}
	for b.sense == sense && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic("mpi: barrier aborted (peer rank died)")
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) aborted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}
