// Package mpi is the repository's stand-in for the Message Passing
// Interface runtime the paper uses on Theta: an SPMD rank runtime whose
// default transport runs every "rank" as a goroutine and the
// collectives (pairwise exchange, barrier, allreduce, broadcast) over
// channels.
//
// The simulator's index arithmetic — which rank owns which amplitudes,
// when whole blocks must be exchanged between rank pairs (paper Fig. 3) —
// is identical to the MPI version, so every distributed code path of the
// paper executes here, just inside one address space. Each Comm tracks
// the wall-clock time it spends blocked in communication, which feeds the
// Table 2 time breakdown.
//
// Comm is an interface so the engine can run unchanged over other
// transports: qcsim/internal/mpi/tcpnet implements the same contract
// with real processes as ranks over TCP. Every implementation must
// preserve two invariants the engine depends on:
//
//   - Reduction order: AllreduceSum adds the per-rank contributions in
//     rank order 0..Size-1 (float addition is not associative; a
//     transport that reduced in a different order would break the
//     repo's cross-geometry bit-identity guarantee).
//   - Failure semantics: when a rank dies mid-collective, every peer
//     blocked on it must unblock by panicking with an error wrapping
//     ErrRankDied — never deadlock. The runtime recovers rank panics
//     and returns them from Launch.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrRankDied is the typed root of every abort a transport raises when
// a peer rank dies mid-collective. Rank bodies observe it as a panic
// value (an error wrapping this sentinel); Launch recovers those and
// returns them, so callers branch with errors.Is(err, mpi.ErrRankDied).
var ErrRankDied = errors.New("mpi: peer rank died")

// Comm is one rank's handle on an SPMD execution: identity, the
// pairwise exchange primitive, the collectives, and the communication
// accounting. All collective calls must be made by every rank in the
// same order (standard MPI discipline); a mismatch deadlocks on a
// healthy world and aborts on a dying one.
type Comm interface {
	// Rank returns this rank's id in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// SendRecv exchanges float64 payloads with peer: send is delivered
	// to peer and the peer's payload is copied into recv (which must
	// have the peer's send length — a mismatch panics). Both sides must
	// call SendRecv with each other as peer. peer == Rank() is a local
	// exchange with the same length contract.
	SendRecv(peer int, send, recv []float64)
	// Barrier blocks until every rank reaches it.
	Barrier()
	// AllreduceSum returns the sum of x across all ranks, added in rank
	// order. Every rank must call it.
	AllreduceSum(x float64) float64
	// AllreduceMax returns the max of x across all ranks.
	AllreduceMax(x uint64) uint64
	// Bcast distributes root's x to every rank and returns it.
	Bcast(root int, x float64) float64
	// CommTime returns the cumulative wall-clock time this rank has
	// spent blocked in communication calls.
	CommTime() time.Duration
	// BytesMoved returns the cumulative SendRecv payload volume this
	// rank has sent (self-exchanges included; collective control
	// traffic is not counted, matching the in-process transport).
	BytesMoved() int64
}

// Launcher runs one SPMD execution. The default (Goroutines) runs all
// ranks as goroutines in this process and returns every rank's Comm; a
// distributed transport runs only the local process's rank and returns
// nil entries for remote ranks, whose accounting travels back out of
// band. Callers must skip nil Comms when harvesting accounting.
type Launcher interface {
	Launch(size int, body func(Comm)) ([]Comm, error)
}

// Goroutines is the default in-process Launcher: Run.
type Goroutines struct{}

// Launch implements Launcher via Run.
func (Goroutines) Launch(size int, body func(Comm)) ([]Comm, error) {
	return Run(size, body)
}

// World owns the shared state of one in-process SPMD execution.
type World struct {
	size    int
	mailbox []chan []float64 // mailbox[to*size+from]
	barrier *barrier
	reduce  []float64
	reduceI []uint64
	bcast   []float64
	done    chan struct{} // closed when any rank dies
	once    sync.Once
	// bufPool recycles SendRecv payload buffers across exchanges. The
	// sender checks a buffer out and the RECEIVER returns it after
	// copying — the sender may already be composing its next exchange
	// while the receiver still reads the previous payload, so a
	// per-sender buffer would race; routing the return through a shared
	// free list keeps every buffer single-owner at all times. A full
	// pool drops returns (GC takes them), an empty one allocates.
	bufPool chan []float64
}

// getBuf checks a payload buffer of length n out of the pool,
// allocating when the pool is empty or its buffer is too small.
func (w *World) getBuf(n int) []float64 {
	select {
	case b := <-w.bufPool:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]float64, n)
}

// putBuf returns a buffer to the pool (dropped if the pool is full).
func (w *World) putBuf(b []float64) {
	select {
	case w.bufPool <- b:
	default:
	}
}

func (w *World) abort() {
	w.once.Do(func() { close(w.done) })
	w.barrier.abort()
}

// worldComm is the in-process Comm: one rank's handle on a World.
type worldComm struct {
	w    *World
	rank int

	commTime time.Duration
	sends    int
	bytes    int64
}

// Run executes body on size goroutine ranks concurrently and waits for
// all of them. size must be a power of two ≥ 1 (the simulator's state
// partitioning requires it). A panic in any rank is recovered and
// returned as an error after all ranks finish or unblock; when several
// ranks fail concurrently, the errors are joined so none is masked.
func Run(size int, body func(Comm)) ([]Comm, error) {
	if size < 1 || size&(size-1) != 0 {
		return nil, fmt.Errorf("mpi: size %d is not a power of two", size)
	}
	w := &World{
		size:    size,
		mailbox: make([]chan []float64, size*size),
		barrier: newBarrier(size),
		reduce:  make([]float64, size),
		reduceI: make([]uint64, size),
		bcast:   make([]float64, size),
		done:    make(chan struct{}),
		bufPool: make(chan []float64, 2*size),
	}
	for i := range w.mailbox {
		w.mailbox[i] = make(chan []float64, 1)
	}
	comms := make([]Comm, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		c := &worldComm{w: w, rank: r}
		comms[r] = c
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if perr, ok := p.(error); ok {
						// Keep the chain: abort panics carry ErrRankDied.
						errs[r] = fmt.Errorf("mpi: rank %d panicked: %w", r, perr)
					} else {
						errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					}
					// Unblock peers that may be waiting on this rank.
					w.abort()
				}
			}()
			body(c)
		}(r)
	}
	wg.Wait()
	// Join every rank's failure: one rank's panic aborts the others
	// mid-collective, and reporting only the lowest-ranked error used
	// to mask concurrent root causes on higher ranks.
	if err := errors.Join(errs...); err != nil {
		return comms, err
	}
	if w.barrier.aborted() {
		// Defensive: abort() is only reachable from a rank panic today,
		// so a recorded error always accompanies a broken barrier.
		return comms, fmt.Errorf("mpi: barrier aborted: %w", ErrRankDied)
	}
	return comms, nil
}

// Rank returns this rank's id in [0, Size).
func (c *worldComm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *worldComm) Size() int { return c.w.size }

// CommTime returns the cumulative wall-clock time this rank has spent
// blocked in communication calls.
func (c *worldComm) CommTime() time.Duration { return c.commTime }

// BytesMoved returns the cumulative payload volume this rank has sent.
func (c *worldComm) BytesMoved() int64 { return c.bytes }

// SendRecv exchanges float64 payloads with peer. A self-exchange
// (peer == rank) enforces the same length contract as the cross-rank
// path and counts toward sends/bytes — the caller asked for a real
// exchange and the transport merely short-circuited the wire, so the
// Table 2 communication volume stays transport-independent.
func (c *worldComm) SendRecv(peer int, send, recv []float64) {
	if len(send) != len(recv) {
		// The cross-rank path would catch a mismatch on delivery; check
		// up front so the self-exchange cannot silently truncate.
		panic(fmt.Sprintf("mpi: rank %d expected %d values from %d, got %d", c.rank, len(recv), peer, len(send)))
	}
	if peer == c.rank {
		copy(recv, send)
		c.sends++
		c.bytes += int64(len(send) * 8)
		return
	}
	start := time.Now()
	// Copy out so the receiver never aliases our live buffer. The copy
	// goes into a pooled buffer that the receiver returns after reading,
	// so steady-state exchange traffic allocates nothing.
	out := c.w.getBuf(len(send))
	copy(out, send)
	select {
	case c.w.mailbox[peer*c.w.size+c.rank] <- out:
	case <-c.w.done:
		panic(fmt.Errorf("mpi: send aborted: %w", ErrRankDied))
	}
	var in []float64
	select {
	case in = <-c.w.mailbox[c.rank*c.w.size+peer]:
	case <-c.w.done:
		panic(fmt.Errorf("mpi: recv aborted: %w", ErrRankDied))
	}
	if len(in) != len(recv) {
		panic(fmt.Sprintf("mpi: rank %d expected %d values from %d, got %d", c.rank, len(recv), peer, len(in)))
	}
	copy(recv, in)
	c.w.putBuf(in)
	c.sends++
	c.bytes += int64(len(send) * 8)
	c.commTime += time.Since(start)
}

// Barrier blocks until every rank reaches it.
func (c *worldComm) Barrier() {
	start := time.Now()
	c.w.barrier.await()
	c.commTime += time.Since(start)
}

// AllreduceSum returns the sum of x across all ranks, added in rank
// order. Every rank must call it.
func (c *worldComm) AllreduceSum(x float64) float64 {
	start := time.Now()
	c.w.reduce[c.rank] = x
	c.w.barrier.await()
	var s float64
	for _, v := range c.w.reduce {
		s += v
	}
	c.w.barrier.await() // protect reduce slots from the next round
	c.commTime += time.Since(start)
	return s
}

// AllreduceMax returns the max of x across all ranks.
func (c *worldComm) AllreduceMax(x uint64) uint64 {
	start := time.Now()
	c.w.reduceI[c.rank] = x
	c.w.barrier.await()
	var m uint64
	for _, v := range c.w.reduceI {
		if v > m {
			m = v
		}
	}
	c.w.barrier.await()
	c.commTime += time.Since(start)
	return m
}

// Bcast distributes root's x to every rank and returns it.
func (c *worldComm) Bcast(root int, x float64) float64 {
	start := time.Now()
	if c.rank == root {
		c.w.bcast[0] = x
	}
	c.w.barrier.await()
	v := c.w.bcast[0]
	c.w.barrier.await()
	c.commTime += time.Since(start)
	return v
}

// barrier is a reusable sense-reversing barrier that can be aborted when
// a rank dies, unblocking the survivors.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	count  int
	sense  bool
	broken bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic(fmt.Errorf("mpi: barrier aborted: %w", ErrRankDied))
	}
	sense := b.sense
	b.count++
	if b.count == b.size {
		b.count = 0
		b.sense = !b.sense
		b.cond.Broadcast()
		return
	}
	for b.sense == sense && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic(fmt.Errorf("mpi: barrier aborted: %w", ErrRankDied))
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) aborted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}
