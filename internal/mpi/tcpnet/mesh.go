package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"qcsim/internal/mpi"
)

// Mesh connects this process into a fully-connected rank mesh and
// returns its Comm. ln is this rank's own listener (already bound);
// addrs[i] is rank i's listen address, so len(addrs) is the mesh size.
// Each rank dials every lower rank — identifying itself with a 4-byte
// big-endian rank header — and accepts one connection from every
// higher rank. Dials retry until the deadline, because peers come up
// in arbitrary order; a dial succeeds as soon as the peer's listener
// exists, even before that peer reaches its accept loop (the kernel
// backlog holds the connection and the header bytes). On any failure
// every link made so far is closed and an error is returned.
func Mesh(ln net.Listener, rank int, addrs []string, deadline time.Time) (*Comm, error) {
	size := len(addrs)
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("tcpnet: mesh size %d is not a power of two", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcpnet: rank %d out of range for size %d", rank, size)
	}
	c := &Comm{rank: rank, size: size, peers: make([]*peer, size)}
	fail := func(err error) (*Comm, error) {
		c.Close()
		return nil, err
	}

	// Dial every lower rank, announcing who we are.
	for lower := 0; lower < rank; lower++ {
		conn, err := dialRetry(addrs[lower], deadline)
		if err != nil {
			return fail(fmt.Errorf("tcpnet: rank %d dialing rank %d at %s: %w", rank, lower, addrs[lower], err))
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			conn.Close()
			return fail(fmt.Errorf("tcpnet: rank %d greeting rank %d: %w", rank, lower, err))
		}
		c.peers[lower] = &peer{conn: conn}
	}

	// Accept one connection from every higher rank, in whatever order
	// they arrive.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for need := size - 1 - rank; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("tcpnet: rank %d accepting peers: %w", rank, err))
		}
		conn.SetReadDeadline(deadline)
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			conn.Close()
			return fail(fmt.Errorf("tcpnet: rank %d reading peer greeting: %w", rank, err))
		}
		pr := int(binary.BigEndian.Uint32(hdr[:]))
		if pr <= rank || pr >= size {
			conn.Close()
			return fail(fmt.Errorf("tcpnet: rank %d greeted by out-of-range rank %d", rank, pr))
		}
		if c.peers[pr] != nil {
			conn.Close()
			return fail(fmt.Errorf("tcpnet: rank %d greeted twice by rank %d", rank, pr))
		}
		conn.SetReadDeadline(time.Time{})
		c.peers[pr] = &peer{conn: conn}
	}
	for _, p := range c.peers {
		if p != nil {
			if tc, ok := p.conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
		}
	}
	return c, nil
}

// dialRetry dials addr until it connects or the deadline passes. The
// retry loop papers over the startup race where a peer's listener is
// not bound yet.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("deadline passed")
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
}

// Launcher adapts a meshed Comm to the mpi.Launcher seam: it runs the
// rank body for the one rank that lives in this process. The returned
// slice has the Comm at this rank's index and nil everywhere else —
// callers treat nil entries as "remote rank, accounting arrives out of
// band". If the body panics, the mesh is torn down (cascading
// mpi.ErrRankDied to every peer) and the panic is returned as an
// error, wrapped so errors.Is still sees sentinel causes.
type Launcher struct {
	comm *Comm
}

// NewLauncher wraps a meshed Comm.
func NewLauncher(c *Comm) *Launcher { return &Launcher{comm: c} }

// Launch implements mpi.Launcher for the single local rank.
func (l *Launcher) Launch(size int, body func(mpi.Comm)) (comms []mpi.Comm, err error) {
	if size != l.comm.size {
		return nil, fmt.Errorf("tcpnet: launch size %d does not match mesh size %d", size, l.comm.size)
	}
	comms = make([]mpi.Comm, size)
	comms[l.comm.rank] = l.comm
	defer func() {
		if r := recover(); r != nil {
			l.comm.Close()
			if e, ok := r.(error); ok {
				err = fmt.Errorf("tcpnet: rank %d panicked: %w", l.comm.rank, e)
			} else {
				err = fmt.Errorf("tcpnet: rank %d panicked: %v", l.comm.rank, r)
			}
		}
	}()
	body(l.comm)
	return comms, nil
}
