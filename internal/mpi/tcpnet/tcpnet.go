// Package tcpnet implements the mpi transport contract over real
// processes: each rank lives in its own OS process and talks to every
// peer over a persistent TCP connection carrying length-prefixed
// 8-byte-word frames. The package honors the two invariants the
// contract documents:
//
//   - Reductions combine contributions in rank order 0..Size-1. Every
//     collective is an allgather (a log-free XOR-scheduled full
//     exchange) followed by a local fold over the gathered values in
//     rank order, so AllreduceSum is bit-identical to the in-process
//     transport's ordered sum and AllreduceMax/Bcast are exact.
//   - A dying rank unblocks everyone. Any I/O error on any peer link
//     closes every link this rank holds (the close cascades peer to
//     peer across the mesh) and panics with an error wrapping
//     mpi.ErrRankDied, so no collective ever deadlocks on a dead
//     process.
//
// Wire format: every message is [uint32 big-endian word count] followed
// by count little-endian 8-byte words. Words carry math.Float64bits for
// amplitude traffic and raw uint64s for AllreduceMax, so no value is
// ever round-tripped through a lossy representation.
//
// Accounting mirrors the in-process transport: user SendRecv calls
// count toward sends and BytesMoved (self-exchange included), while the
// exchanges backing collectives count only toward CommTime — so the
// paper's Table 2 communication volume is transport-independent.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"qcsim/internal/mpi"
)

// Comm is one process's live rank. It implements mpi.Comm. A Comm is
// built by Mesh and is not safe for concurrent use by multiple
// goroutines — like the in-process transport, one goroutine owns the
// rank body.
type Comm struct {
	rank  int
	size  int
	peers []*peer // indexed by rank; peers[rank] == nil

	closeOnce sync.Once

	commTime time.Duration
	sends    int
	bytes    int64
}

// peer is one persistent duplex link. The write and read scratch
// buffers are separate because an exchange writes and reads
// concurrently.
type peer struct {
	conn net.Conn
	wbuf []byte
	rbuf []byte
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the mesh.
func (c *Comm) Size() int { return c.size }

// CommTime returns the cumulative wall time this rank has spent inside
// collectives and cross-process exchanges.
func (c *Comm) CommTime() time.Duration { return c.commTime }

// BytesMoved returns the payload bytes this rank has sent through
// SendRecv.
func (c *Comm) BytesMoved() int64 { return c.bytes }

// Close tears down every peer link. It is idempotent and safe to call
// from any goroutine; peers blocked on this rank observe the close as
// a read error and die with mpi.ErrRankDied.
func (c *Comm) Close() error {
	c.closeOnce.Do(func() {
		for _, p := range c.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	return nil
}

// die tears down the whole mesh from this rank's point of view and
// panics with the transport's failure sentinel. Closing every link
// (not just the failed one) is what makes the failure cascade: each
// peer's next read fails, it dies too, and every rank in the mesh
// surfaces mpi.ErrRankDied instead of deadlocking.
func (c *Comm) die(op string, err error) {
	c.Close()
	panic(fmt.Errorf("tcpnet: rank %d: %s: %v: %w", c.rank, op, err, mpi.ErrRankDied))
}

// grow returns buf resized to n bytes, reallocating only when needed.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// exchangeWords performs one full-duplex exchange with a peer: it
// frames and writes out while concurrently reading the peer's frame
// into in. Both sides of an XOR-scheduled pair run this
// simultaneously, so neither write can block on a full kernel buffer
// while the other side waits — the concurrent reader always drains.
// Any I/O failure kills the mesh via die; a frame whose word count
// differs from len(in) is a contract violation and panics with the
// transport-standard length message after tearing the mesh down.
func (c *Comm) exchangeWords(peerRank int, out, in []uint64) {
	p := c.peers[peerRank]
	p.wbuf = grow(p.wbuf, 4+8*len(out))
	binary.BigEndian.PutUint32(p.wbuf, uint32(len(out)))
	for i, w := range out {
		binary.LittleEndian.PutUint64(p.wbuf[4+8*i:], w)
	}
	wdone := make(chan error, 1)
	go func() {
		_, err := p.conn.Write(p.wbuf)
		wdone <- err
	}()

	var hdr [4]byte
	if _, err := io.ReadFull(p.conn, hdr[:]); err != nil {
		p.conn.Close() // unblock our writer goroutine too
		<-wdone
		c.die(fmt.Sprintf("recv header from rank %d", peerRank), err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n != len(in) {
		c.Close()
		<-wdone
		panic(fmt.Sprintf("tcpnet: rank %d expected %d values from %d, got %d", c.rank, len(in), peerRank, n))
	}
	p.rbuf = grow(p.rbuf, 8*n)
	if _, err := io.ReadFull(p.conn, p.rbuf); err != nil {
		p.conn.Close()
		<-wdone
		c.die(fmt.Sprintf("recv payload from rank %d", peerRank), err)
	}
	for i := range in {
		in[i] = binary.LittleEndian.Uint64(p.rbuf[8*i:])
	}
	if err := <-wdone; err != nil {
		c.die(fmt.Sprintf("send to rank %d", peerRank), err)
	}
}

// SendRecv exchanges payloads with a peer rank. The arriving message
// must have exactly len(recv) values or SendRecv panics — a mismatch
// is a protocol bug, not a runtime condition. A self-exchange is a
// local copy that still counts toward sends and BytesMoved, keeping
// traffic accounting transport-independent.
func (c *Comm) SendRecv(peerRank int, send, recv []float64) {
	if peerRank == c.rank {
		if len(send) != len(recv) {
			panic(fmt.Sprintf("tcpnet: rank %d expected %d values from %d, got %d", c.rank, len(recv), peerRank, len(send)))
		}
		copy(recv, send)
		c.sends++
		c.bytes += int64(len(send) * 8)
		return
	}
	start := time.Now()
	p := c.peers[peerRank]
	p.wbuf = grow(p.wbuf, 4+8*len(send))
	binary.BigEndian.PutUint32(p.wbuf, uint32(len(send)))
	for i, f := range send {
		binary.LittleEndian.PutUint64(p.wbuf[4+8*i:], math.Float64bits(f))
	}
	wdone := make(chan error, 1)
	go func() {
		_, err := p.conn.Write(p.wbuf)
		wdone <- err
	}()
	var hdr [4]byte
	if _, err := io.ReadFull(p.conn, hdr[:]); err != nil {
		p.conn.Close()
		<-wdone
		c.die(fmt.Sprintf("recv header from rank %d", peerRank), err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n != len(recv) {
		c.Close()
		<-wdone
		panic(fmt.Sprintf("tcpnet: rank %d expected %d values from %d, got %d", c.rank, len(recv), peerRank, n))
	}
	p.rbuf = grow(p.rbuf, 8*n)
	if _, err := io.ReadFull(p.conn, p.rbuf); err != nil {
		p.conn.Close()
		<-wdone
		c.die(fmt.Sprintf("recv payload from rank %d", peerRank), err)
	}
	for i := range recv {
		recv[i] = math.Float64frombits(binary.LittleEndian.Uint64(p.rbuf[8*i:]))
	}
	if err := <-wdone; err != nil {
		c.die(fmt.Sprintf("send to rank %d", peerRank), err)
	}
	c.sends++
	c.bytes += int64(len(send) * 8)
	c.commTime += time.Since(start)
}

// allgatherWord gives every rank every rank's word. The schedule pairs
// rank r with r^d for d = 1..size-1; both members of a pair exchange
// simultaneously, the pairing is a perfect matching at every step
// (size is a power of two), and no step depends on another — so the
// sweep is deadlock-free without any ordering negotiation.
func (c *Comm) allgatherWord(x uint64) []uint64 {
	vals := make([]uint64, c.size)
	vals[c.rank] = x
	out := [1]uint64{x}
	var in [1]uint64
	for d := 1; d < c.size; d++ {
		pr := c.rank ^ d
		c.exchangeWords(pr, out[:], in[:])
		vals[pr] = in[0]
	}
	return vals
}

// Barrier blocks until every rank arrives. The full exchange doubles
// as the rendezvous: a rank returns only after hearing from every
// peer, and a dead peer surfaces as mpi.ErrRankDied.
func (c *Comm) Barrier() {
	start := time.Now()
	c.allgatherWord(0)
	c.commTime += time.Since(start)
}

// AllreduceSum returns the sum of every rank's contribution, added in
// rank order 0..Size-1 — bit-identical to the in-process transport,
// which matters because float addition is not associative.
func (c *Comm) AllreduceSum(x float64) float64 {
	start := time.Now()
	vals := c.allgatherWord(math.Float64bits(x))
	c.commTime += time.Since(start)
	var sum float64
	for _, v := range vals {
		sum += math.Float64frombits(v)
	}
	return sum
}

// AllreduceMax returns the maximum of every rank's value. The words
// travel as raw uint64s, never through a float representation.
func (c *Comm) AllreduceMax(x uint64) uint64 {
	start := time.Now()
	vals := c.allgatherWord(x)
	c.commTime += time.Since(start)
	max := vals[0]
	for _, v := range vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Bcast distributes root's value to every rank.
func (c *Comm) Bcast(root int, x float64) float64 {
	start := time.Now()
	vals := c.allgatherWord(math.Float64bits(x))
	c.commTime += time.Since(start)
	return math.Float64frombits(vals[root])
}
