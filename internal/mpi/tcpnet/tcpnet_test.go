package tcpnet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qcsim/internal/mpi"
)

// startMesh builds a size-rank loopback mesh, one goroutine per rank
// standing in for one process per rank.
func startMesh(t *testing.T, size int) []*Comm {
	t.Helper()
	lns := make([]net.Listener, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	comms := make([]*Comm, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	deadline := time.Now().Add(5 * time.Second)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], errs[r] = Mesh(lns[r], r, addrs, deadline)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("mesh rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
		for _, ln := range lns {
			ln.Close()
		}
	})
	return comms
}

// run executes one body per rank and returns each rank's recovered
// panic (nil when the body returned normally).
func run(comms []*Comm, body func(c *Comm)) []any {
	panics := make([]any, len(comms))
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			body(c)
		}(i, c)
	}
	wg.Wait()
	return panics
}

// TestCollectivesMatchInProcess runs the same contributions through
// the goroutine transport and the TCP transport and requires
// bit-identical results — the ordered-reduction invariant that keeps
// distributed runs byte-identical to in-process runs.
func TestCollectivesMatchInProcess(t *testing.T) {
	const size = 4
	// Values chosen so that summing in a different order changes the
	// low bits.
	vals := []float64{0.1, 1e17, -1e17, 0.3}
	maxes := []uint64{7, 42, 3, 42}

	wantSum := make([]uint64, size)
	wantMax := make([]uint64, size)
	wantB := make([]uint64, size)
	if _, err := mpi.Run(size, func(c mpi.Comm) {
		r := c.Rank()
		wantSum[r] = math.Float64bits(c.AllreduceSum(vals[r]))
		wantMax[r] = c.AllreduceMax(maxes[r])
		wantB[r] = math.Float64bits(c.Bcast(2, vals[r]))
	}); err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	comms := startMesh(t, size)
	gotSum := make([]uint64, size)
	gotMax := make([]uint64, size)
	gotB := make([]uint64, size)
	for _, p := range run(comms, func(c *Comm) {
		r := c.Rank()
		gotSum[r] = math.Float64bits(c.AllreduceSum(vals[r]))
		gotMax[r] = c.AllreduceMax(maxes[r])
		gotB[r] = math.Float64bits(c.Bcast(2, vals[r]))
	}) {
		if p != nil {
			t.Fatalf("tcp rank panicked: %v", p)
		}
	}
	for r := 0; r < size; r++ {
		if gotSum[r] != wantSum[r] {
			t.Errorf("rank %d AllreduceSum bits: tcp %x, in-process %x", r, gotSum[r], wantSum[r])
		}
		if gotMax[r] != wantMax[r] {
			t.Errorf("rank %d AllreduceMax: tcp %d, in-process %d", r, gotMax[r], wantMax[r])
		}
		if gotB[r] != wantB[r] {
			t.Errorf("rank %d Bcast bits: tcp %x, in-process %x", r, gotB[r], wantB[r])
		}
	}
}

func TestSendRecvExchangesPayloads(t *testing.T) {
	comms := startMesh(t, 2)
	recvs := make([][]float64, 2)
	for _, p := range run(comms, func(c *Comm) {
		send := []float64{float64(c.Rank()) + 0.25, -1}
		recv := make([]float64, 2)
		c.SendRecv(1-c.Rank(), send, recv)
		recvs[c.Rank()] = recv
	}) {
		if p != nil {
			t.Fatalf("rank panicked: %v", p)
		}
	}
	if recvs[0][0] != 1.25 || recvs[1][0] != 0.25 {
		t.Fatalf("wrong payloads exchanged: %v", recvs)
	}
	if got := comms[0].BytesMoved(); got != 16 {
		t.Fatalf("BytesMoved = %d, want 16", got)
	}
}

func TestSendRecvSelfCountsTraffic(t *testing.T) {
	comms := startMesh(t, 2)
	buf := make([]float64, 100)
	comms[0].SendRecv(0, buf, buf)
	if got := comms[0].BytesMoved(); got != 800 {
		t.Fatalf("self-exchange BytesMoved = %d, want 800", got)
	}
}

func TestSendRecvLengthContract(t *testing.T) {
	comms := startMesh(t, 2)
	panics := run(comms, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendRecv(1, make([]float64, 3), make([]float64, 3))
		} else {
			c.SendRecv(0, make([]float64, 3), make([]float64, 2))
		}
	})
	msg, ok := panics[1].(string)
	if !ok || !strings.Contains(msg, "expected 2 values from 0, got 3") {
		t.Fatalf("rank 1 panic = %v, want length-contract message", panics[1])
	}
}

// TestRankDeathUnblocksCollectives kills one rank's links mid-run and
// requires every surviving rank to surface mpi.ErrRankDied from every
// collective, within a bound, never deadlocking — the transport
// contract's failure invariant, here over real sockets.
func TestRankDeathUnblocksCollectives(t *testing.T) {
	const size = 4
	cases := []struct {
		name string
		call func(c *Comm)
	}{
		{"SendRecv", func(c *Comm) {
			buf := make([]float64, 8)
			c.SendRecv(size-1, buf, buf)
		}},
		{"Barrier", func(c *Comm) { c.Barrier() }},
		{"AllreduceSum", func(c *Comm) { c.AllreduceSum(1) }},
		{"AllreduceMax", func(c *Comm) { c.AllreduceMax(1) }},
		{"Bcast", func(c *Comm) { c.Bcast(0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comms := startMesh(t, size)
			start := time.Now()
			panics := run(comms, func(c *Comm) {
				if c.Rank() == size-1 {
					// Simulate process death: the kernel closes a dead
					// process's sockets; Close is the same observable event.
					c.Close()
					return
				}
				tc.call(c)
			})
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("collectives took %v to unblock", d)
			}
			for r := 0; r < size-1; r++ {
				err, ok := panics[r].(error)
				if !ok {
					t.Fatalf("rank %d: panic = %v, want error", r, panics[r])
				}
				if !errors.Is(err, mpi.ErrRankDied) {
					t.Fatalf("rank %d: %v does not wrap mpi.ErrRankDied", r, err)
				}
			}
		})
	}
}

// TestLauncherRecoversBodyPanic checks the Launcher seam: a panicking
// body comes back as an error that preserves wrapped sentinels, and
// the mesh is torn down so peers die instead of hanging.
func TestLauncherRecoversBodyPanic(t *testing.T) {
	comms := startMesh(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			_, errs[i] = NewLauncher(c).Launch(2, func(mc mpi.Comm) {
				if mc.Rank() == 1 {
					panic(fmt.Errorf("deliberate: %w", mpi.ErrRankDied))
				}
				mc.Barrier()
			})
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, mpi.ErrRankDied) {
			t.Fatalf("rank %d: %v does not wrap mpi.ErrRankDied", i, err)
		}
	}
	if _, err := NewLauncher(comms[0]).Launch(4, func(mpi.Comm) {}); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}
