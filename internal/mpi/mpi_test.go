package mpi

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSizeValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 12} {
		if _, err := Run(bad, func(Comm) {}); err == nil {
			t.Fatalf("size %d accepted", bad)
		}
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [8]int32
	_, err := Run(8, func(c Comm) {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestSendRecvPairwise(t *testing.T) {
	_, err := Run(4, func(c Comm) {
		peer := c.Rank() ^ 1
		send := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		recv := make([]float64, 2)
		c.SendRecv(peer, send, recv)
		if recv[0] != float64(peer) || recv[1] != float64(peer*10) {
			t.Errorf("rank %d got %v from %d", c.Rank(), recv, peer)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvSelf(t *testing.T) {
	_, err := Run(1, func(c Comm) {
		send := []float64{1, 2, 3}
		recv := make([]float64, 3)
		c.SendRecv(0, send, recv)
		if recv[1] != 2 {
			t.Errorf("self exchange got %v", recv)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendRecvPoolNoCrossTalk stresses the payload buffer pool: four
// ranks exchange per-iteration-distinct payloads for many rounds, so a
// buffer recycled while its receiver still reads it — or handed to two
// senders at once — produces a wrong value (and a -race report).
func TestSendRecvPoolNoCrossTalk(t *testing.T) {
	const rounds, n = 200, 64
	_, err := Run(4, func(c Comm) {
		peer := c.Rank() ^ 1
		send := make([]float64, n)
		recv := make([]float64, n)
		for it := 0; it < rounds; it++ {
			for i := range send {
				send[i] = float64(c.Rank()*1_000_000 + it*1000 + i)
			}
			c.SendRecv(peer, send, recv)
			for i := range recv {
				if want := float64(peer*1_000_000 + it*1000 + i); recv[i] != want {
					t.Errorf("rank %d round %d: recv[%d] = %v, want %v", c.Rank(), it, i, recv[i], want)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSendRecvAllocs measures the per-exchange allocation cost:
// with the pooled payload buffers, steady-state SendRecv traffic must
// not allocate per call.
func BenchmarkSendRecvAllocs(b *testing.B) {
	payload := make([]float64, 4096)
	b.SetBytes(int64(len(payload) * 8))
	b.ReportAllocs()
	_, err := Run(2, func(c Comm) {
		recv := make([]float64, len(payload))
		for i := 0; i < b.N; i++ {
			c.SendRecv(c.Rank()^1, payload, recv)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestSendRecvNoAliasing(t *testing.T) {
	_, err := Run(2, func(c Comm) {
		send := []float64{float64(c.Rank())}
		recv := make([]float64, 1)
		c.SendRecv(c.Rank()^1, send, recv)
		send[0] = -99 // mutating after the call must not affect the peer
		c.Barrier()
		if recv[0] != float64(c.Rank()^1) {
			t.Errorf("rank %d: aliased buffer, recv=%v", c.Rank(), recv)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvManyRounds(t *testing.T) {
	const rounds = 200
	_, err := Run(8, func(c Comm) {
		recv := make([]float64, 1)
		for i := 0; i < rounds; i++ {
			peer := c.Rank() ^ (1 << (i % 3))
			c.SendRecv(peer, []float64{float64(c.Rank()*rounds + i)}, recv)
			if recv[0] != float64(peer*rounds+i) {
				t.Errorf("round %d: rank %d got %v", i, c.Rank(), recv[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var phase int32
	_, err := Run(4, func(c Comm) {
		atomic.AddInt32(&phase, 1)
		c.Barrier()
		if atomic.LoadInt32(&phase) != 4 {
			t.Errorf("rank %d passed barrier with phase %d", c.Rank(), phase)
		}
		c.Barrier()
		atomic.AddInt32(&phase, 1)
		c.Barrier()
		if atomic.LoadInt32(&phase) != 8 {
			t.Errorf("rank %d: second phase %d", c.Rank(), phase)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	_, err := Run(8, func(c Comm) {
		got := c.AllreduceSum(float64(c.Rank() + 1))
		if got != 36 { // 1+2+...+8
			t.Errorf("rank %d: sum %v", c.Rank(), got)
		}
		// Back-to-back reductions must not interfere.
		got2 := c.AllreduceSum(1)
		if got2 != 8 {
			t.Errorf("rank %d: second sum %v", c.Rank(), got2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMax(t *testing.T) {
	_, err := Run(4, func(c Comm) {
		got := c.AllreduceMax(uint64(c.Rank() * 7))
		if got != 21 {
			t.Errorf("rank %d: max %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(4, func(c Comm) {
		v := c.Bcast(2, float64(c.Rank())*math.Pi)
		if v != 2*math.Pi {
			t.Errorf("rank %d: bcast %v", c.Rank(), v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	start := time.Now()
	_, err := Run(4, func(c Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block; the abort must free them.
		c.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "abort") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abort did not unblock peers promptly")
	}
}

func TestPanicUnblocksSendRecv(t *testing.T) {
	_, err := Run(2, func(c Comm) {
		if c.Rank() == 0 {
			panic("rank0 died")
		}
		recv := make([]float64, 1)
		c.SendRecv(0, []float64{1}, recv) // would deadlock without abort
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestCommTimeAccounted(t *testing.T) {
	comms, err := Run(2, func(c Comm) {
		if c.Rank() == 0 {
			time.Sleep(30 * time.Millisecond) // make rank 1 wait
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if comms[1].CommTime() < 20*time.Millisecond {
		t.Fatalf("rank 1 comm time %v, expected ≥ 20ms of barrier wait", comms[1].CommTime())
	}
}

func TestBytesMoved(t *testing.T) {
	comms, err := Run(2, func(c Comm) {
		recv := make([]float64, 100)
		c.SendRecv(c.Rank()^1, make([]float64, 100), recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if comms[0].BytesMoved() != 800 {
		t.Fatalf("BytesMoved = %d", comms[0].BytesMoved())
	}
}

func TestSingleRankCollectives(t *testing.T) {
	_, err := Run(1, func(c Comm) {
		if s := c.AllreduceSum(5); s != 5 {
			t.Errorf("sum %v", s)
		}
		if v := c.Bcast(0, 7); v != 7 {
			t.Errorf("bcast %v", v)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksStress(t *testing.T) {
	_, err := Run(32, func(c Comm) {
		for i := 0; i < 50; i++ {
			s := c.AllreduceSum(1)
			if s != 32 {
				t.Errorf("sum %v", s)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendRecvSelfLengthMismatch: the self-exchange path must enforce
// the same length contract as the cross-rank path instead of silently
// truncating via copy.
func TestSendRecvSelfLengthMismatch(t *testing.T) {
	_, err := Run(1, func(c Comm) {
		recv := make([]float64, 2)
		c.SendRecv(0, []float64{1, 2, 3}, recv)
	})
	if err == nil || !strings.Contains(err.Error(), "expected 2 values") {
		t.Fatalf("err = %v, want length-contract panic", err)
	}
}

// TestSendRecvSelfAccounting: self-exchanges are real exchanges the
// caller asked for — the transport short-circuits the wire but the
// sends/bytes accounting must still see them, so BytesMoved is
// independent of whether a pairing happens to be local.
func TestSendRecvSelfAccounting(t *testing.T) {
	comms, err := Run(1, func(c Comm) {
		buf := make([]float64, 100)
		c.SendRecv(0, buf, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := comms[0].BytesMoved(); got != 800 {
		t.Fatalf("self-exchange BytesMoved = %d, want 800", got)
	}
}

// TestRunJoinsConcurrentPanics: when several ranks fail at once, Run
// must report all of them, not just the lowest-ranked one.
func TestRunJoinsConcurrentPanics(t *testing.T) {
	_, err := Run(2, func(c Comm) {
		if c.Rank() == 0 {
			panic("boom-zero")
		}
		panic("boom-one")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"rank 0", "boom-zero", "rank 1", "boom-one"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %v, missing %q", err, want)
		}
	}
}

// TestRankDeathUnblocksCollectives: a rank dying before (or during) any
// collective must unblock every peer with an error wrapping ErrRankDied
// — never deadlock — and Run must surface every survivor's abort.
func TestRankDeathUnblocksCollectives(t *testing.T) {
	collectives := []struct {
		name string
		call func(c Comm)
	}{
		{"SendRecv", func(c Comm) {
			buf := make([]float64, 8)
			c.SendRecv(3, buf, buf)
		}},
		{"Barrier", func(c Comm) { c.Barrier() }},
		{"AllreduceSum", func(c Comm) { c.AllreduceSum(1) }},
		{"AllreduceMax", func(c Comm) { c.AllreduceMax(1) }},
		{"Bcast", func(c Comm) { c.Bcast(0, 1) }},
	}
	for _, tc := range collectives {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, err := Run(4, func(c Comm) {
				if c.Rank() == 3 {
					panic("rank 3 died")
				}
				tc.call(c)
			})
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrRankDied) {
				t.Fatalf("err = %v, want ErrRankDied in the chain", err)
			}
			for _, want := range []string{"rank 0", "rank 1", "rank 2", "rank 3"} {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("err = %v, missing survivor %q", err, want)
				}
			}
			if time.Since(start) > 5*time.Second {
				t.Fatal("abort did not unblock peers promptly")
			}
		})
	}
}
