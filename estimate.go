package qcsim

import (
	"fmt"

	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

// Estimate is the admission-planning view of a circuit: everything a
// serving layer needs to price a job BEFORE allocating any state. It
// is the explicit facade hook over the internal planners
// (quantum.EstimateBondDim, the codec footprint model, the backend
// auto-router) so multi-tenant admission control never reaches into
// internal packages.
//
// The numbers are upper bounds, not measurements: BondDim is the
// structural Schmidt-rank bound (each two-qubit gate at most doubles
// the rank across the cuts it straddles, capped by the smaller cut
// side's Hilbert dimension), MPSBytes is the tensor storage an exact
// MPS run at the capped χ would hold, and UncompressedBytes is the
// 2^(n+4) dense worst case the compressed engine degrades toward under
// adversarial (incompressible) states. A budget that admits
// UncompressedBytes can never be blown by the job; real compressed
// footprints are usually far smaller.
type Estimate struct {
	// Qubits and Gates describe the job's shape.
	Qubits int
	Gates  int

	// BondDim is the structural upper bound on the MPS bond dimension
	// an exact run needs (quantum.EstimateBondDim), saturating at 2^30.
	BondDim int
	// MPSRunnable reports whether every gate is runnable on the MPS
	// backend (no measurement collapse, at most one control) AND the
	// options permit it (no noise, not the uncompressed baseline).
	MPSRunnable bool
	// Backend is the engine WithBackend("auto") would pick for this
	// circuit under these options: BackendMPS iff MPSRunnable and
	// BondDim fits the (possibly WithBondDim-overridden) χ cap,
	// BackendCompressed otherwise.
	Backend string

	// Variants is the batch width K the estimate covers (WithVariants;
	// 1 for a solo run). A K-variant RunBatch holds K state copies, so
	// UncompressedBytes below is already scaled by K, and K > 1 pins
	// the job to the compressed backend — lockstep batching is
	// compressed-only.
	Variants int

	// UncompressedBytes is the dense state size Variants·2^(n+4) — the
	// compressed engine's worst-case footprint, and the working-set
	// ceiling an admission budget must cover to be unconditionally
	// safe. float64 because 60+-qubit registers overflow int64.
	UncompressedBytes float64
	// MPSBytes is the tensor storage of an exact MPS run at the capped
	// bond dimension min(BondDim, χ): Σᵢ 16·2·χᵢ₋₁·χᵢ bytes with the
	// per-cut caps applied. Meaningful only when MPSRunnable.
	MPSBytes int64
	// BlockBytes is one decompressed block's scratch size 16·BlockAmps
	// — the minimum resident budget a spill-tier run needs per worker.
	BlockBytes int64
}

// EstimateCircuit prices a prospective (qubits, circuit, options) job
// without allocating any state: the options are validated exactly as
// New would (ErrBadConfig / ErrUnknownCodec on bad ones), but no
// engine, block table, or spill file is created. Serving layers use it
// to reject or route jobs (mps / compressed / compressed+spill) before
// committing memory; see the qcserve admission controller.
func EstimateCircuit(qubits int, c *circuit.Circuit, opts ...Option) (*Estimate, error) {
	var st settings
	for _, o := range opts {
		if o != nil {
			o(&st)
		}
	}
	cfg, noiseProb, err := st.resolve(qubits)
	if err != nil {
		return nil, err
	}
	// Validate applies defaults (block clamping, worker clamping)
	// without touching state; re-resolve them for the block arithmetic.
	vcfg, err := cfg.ValidatedDefaults()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadConfig)
	}
	if c.N != qubits {
		return nil, fmt.Errorf("%w: circuit has %d qubits, estimate for %d", ErrCircuitMismatch, c.N, qubits)
	}
	chi := st.bondDim
	if chi == 0 {
		chi = DefaultBondDim
	}
	est := &Estimate{
		Qubits:            qubits,
		Gates:             len(c.Gates),
		BondDim:           quantum.EstimateBondDim(c),
		Variants:          st.variants,
		UncompressedBytes: float64(st.variants) * core.MemoryRequirement(qubits),
		BlockBytes:        16 * int64(vcfg.BlockAmps),
	}
	ok, _ := quantum.MPSCompatible(c)
	est.MPSRunnable = ok && noiseProb == 0 && !vcfg.Uncompressed && st.variants == 1
	if est.MPSRunnable && est.BondDim <= chi {
		est.Backend = BackendMPS
	} else {
		est.Backend = BackendCompressed
	}
	est.MPSBytes = mpsBytesEstimate(qubits, est.BondDim, chi)
	return est, nil
}

// mpsBytesEstimate sums the complex128 tensor storage of an n-site MPS
// whose bond at cut i is min(est, χ, 2^min(i+1, n-1-i)): 16·2·χL·χR
// bytes per site tensor.
func mpsBytesEstimate(n, est, chi int) int64 {
	if n < 1 {
		return 0
	}
	if est > chi {
		est = chi
	}
	bond := func(cut int) int64 { // bond dimension across cut (cut = -1 and n-1 are the open ends)
		if cut < 0 || cut >= n-1 {
			return 1
		}
		side := cut + 1
		if s := n - 1 - cut; s < side {
			side = s
		}
		b := int64(est)
		if side < 62 && int64(1)<<uint(side) < b {
			b = int64(1) << uint(side)
		}
		return b
	}
	var total int64
	for i := 0; i < n; i++ {
		total += 16 * 2 * bond(i-1) * bond(i)
	}
	return total
}
