package qcsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"qcsim/circuit"
	"qcsim/internal/core"
)

// Variational workloads: one parametric circuit shape, executed at K
// parameter bindings in a single batched run. RunBatch drives all K
// state variants in lockstep through the compressed engine — every
// compressed block is decoded once per distinct content, not once per
// variant — and Gradient builds the parameter-shift batch for a
// diagonal observable on top of it.

// ZTerm is one weighted single-qubit Pauli-Z term W·Z_Q of a diagonal
// observable.
type ZTerm = core.ZTerm

// ZZTerm is one weighted two-qubit correlator term W·Z_A·Z_B.
type ZZTerm = core.ZZTerm

// Observable is a diagonal (computational-basis) observable
// Const + Σ W·Z_Q + Σ W·Z_A·Z_B — the energy functional variational
// workloads optimize. Evaluation is a single pass over the compressed
// state regardless of the number of terms.
type Observable struct {
	Const float64
	Z     []ZTerm
	ZZ    []ZZTerm
}

// MaxCutObservable is the MAXCUT objective Σ_edges (1 - Z_u Z_v)/2 as
// an Observable, so Gradient(…, MaxCutObservable(edges)) optimizes the
// same quantity MaxCutEnergy reports.
func MaxCutObservable(edges []circuit.Edge) Observable {
	obs := Observable{Const: float64(len(edges)) / 2}
	for _, e := range edges {
		obs.ZZ = append(obs.ZZ, ZZTerm{A: e.U, B: e.V, W: -0.5})
	}
	return obs
}

// RunBatch executes the parametric circuit c at every binding in one
// batched run and returns one Result per binding, in order.
//
// Each variant starts from a clone of the simulator's CURRENT state —
// the simulator's own state is never mutated — and runs with the seed
// core.VariantSeed(seed, v): variant 0 keeps the simulator's seed, so
// its outcome is bit-identical to what Run(c.Bind(bindings[0])) would
// have produced on a fresh simulator with the same history.
//
// Variants whose compressed blocks have not diverged (the shared prefix
// before bindings differ, and parameter-shift pairs that differ in one
// late gate) share codec work through a content-addressed memo instead
// of paying K× traffic; Stats reports CodecPassesShared and
// VariantCount. Circuits with measurement gates, and simulators with a
// live noise channel, fall back to variant-at-a-time execution — each
// variant still consumes exactly its own random streams.
//
// The variant simulators stay alive for inspection through
// BatchVariants until the next RunBatch/Gradient call or Close.
// Compressed backend only: the mps backend reports ErrUnsupportedOp;
// on an undecided auto simulator a batch closes the decision on the
// compressed engine.
func (s *Simulator) RunBatch(ctx context.Context, c *circuit.Circuit, bindings [][]float64) ([]Result, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadConfig)
	}
	if c.N != s.qubits {
		return nil, fmt.Errorf("%w: circuit has %d qubits, simulator %d", ErrCircuitMismatch, c.N, s.qubits)
	}
	if len(bindings) == 0 {
		return nil, fmt.Errorf("%w: empty binding list", ErrBadConfig)
	}
	circuits := make([]*circuit.Circuit, len(bindings))
	for v, vals := range bindings {
		bound, err := c.Bind(vals)
		if err != nil {
			return nil, fmt.Errorf("%w: binding %d: %v", ErrBadConfig, v, err)
		}
		circuits[v] = bound
	}
	sims, results, runErr := s.runBatchCircuits(ctx, circuits)
	s.retainBatch(sims)
	if runErr != nil {
		return results, runErr
	}
	for v, cs := range sims {
		if cs.OverBudget() {
			return results, fmt.Errorf("%w: variant %d footprint %s after %d escalations", ErrBudgetExceeded,
				v, FormatBytes(float64(results[v].Footprint)), results[v].Stats.Escalations)
		}
	}
	return results, nil
}

// BatchVariants returns handles on the K variant states of the most
// recent RunBatch call, in binding order — each a read-only-by-
// convention Simulator for inspection (Amplitude, ExpectationZZ,
// Sample, ...). The handles are owned by the parent: they are closed by
// the next RunBatch/Gradient call and by Close. Nil before any batch.
func (s *Simulator) BatchVariants() []*Simulator {
	return s.batch
}

// retainBatch wraps the variant engines as facade handles, replacing
// (and closing) the previous batch.
func (s *Simulator) retainBatch(sims []*core.Simulator) {
	s.closeBatch()
	if sims == nil {
		return
	}
	s.batch = make([]*Simulator, len(sims))
	for v, cs := range sims {
		s.batch[v] = &Simulator{
			qubits:      s.qubits,
			be:          compressedBackend{cs},
			sampleCache: s.sampleCache,
		}
	}
}

// closeBatch tears down the retained variants of the previous batch.
func (s *Simulator) closeBatch() {
	for _, v := range s.batch {
		v.Close()
	}
	s.batch = nil
}

// GradientResult is the outcome of one parameter-shift gradient
// evaluation.
type GradientResult struct {
	// Energy is ⟨ψ(values)|O|ψ(values)⟩ at the unshifted binding.
	Energy float64
	// Grad is ∂Energy/∂values[i] per parameter, by the parameter-shift
	// rule (exact for the RX/RY/RZ/Phase rotation gates the parametric
	// builders emit, not a finite difference).
	Grad []float64
	// Evaluations is the batch width the gradient cost: 1 + 2 per
	// parameter occurrence in the circuit.
	Evaluations int
}

// Gradient evaluates the energy of the diagonal observable obs at
// `values` and its gradient with respect to every parameter, via the
// parameter-shift rule: for each occurrence o of a parameter in the
// circuit, grad += Scale·(E(θ_o+π/2) − E(θ_o−π/2))/2. All 1+2·#occ
// circuit variants execute as ONE RunBatch — and since each shifted
// variant differs from the base in a single gate, the batch memo
// collapses most of their codec traffic into the base variant's.
//
// The simulator's own state is the batch's common starting point and is
// not mutated. Variant states are torn down before returning (a
// gradient's K can reach hundreds); use RunBatch directly to keep
// variants for inspection.
func (s *Simulator) Gradient(ctx context.Context, c *circuit.Circuit, values []float64, obs Observable) (*GradientResult, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadConfig)
	}
	if c.N != s.qubits {
		return nil, fmt.Errorf("%w: circuit has %d qubits, simulator %d", ErrCircuitMismatch, c.N, s.qubits)
	}
	occs := c.ParamOccurrences()
	if len(occs) == 0 {
		return nil, fmt.Errorf("%w: circuit has no parameters to differentiate", ErrBadConfig)
	}
	circuits := make([]*circuit.Circuit, 0, 1+2*len(occs))
	base, err := c.Bind(values)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	circuits = append(circuits, base)
	for _, occ := range occs {
		plus, err := c.BindShift(values, occ.Gate, math.Pi/2)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		minus, err := c.BindShift(values, occ.Gate, -math.Pi/2)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		circuits = append(circuits, plus, minus)
	}
	sims, _, runErr := s.runBatchCircuits(ctx, circuits)
	defer func() {
		for _, cs := range sims {
			if cs != nil {
				cs.Close()
			}
		}
	}()
	if runErr != nil {
		return nil, runErr
	}
	energies := make([]float64, len(sims))
	for v, cs := range sims {
		e, err := cs.DiagonalExpectation(obs.Z, obs.ZZ)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidQubit, err)
		}
		energies[v] = e + obs.Const
	}
	grad := make([]float64, c.NumParams())
	for i, occ := range occs {
		grad[occ.Index] += occ.Scale * (energies[1+2*i] - energies[2+2*i]) / 2
	}
	return &GradientResult{Energy: energies[0], Grad: grad, Evaluations: len(circuits)}, nil
}

// runBatchCircuits clones one variant engine per (already bound)
// circuit off the current state, seeds them with core.VariantSeed, and
// executes the batch. The returned engines are live (also on error —
// the completed prefix stays inspectable); the caller owns them.
func (s *Simulator) runBatchCircuits(ctx context.Context, circuits []*circuit.Circuit) ([]*core.Simulator, []Result, error) {
	be, err := s.compressedOnly()
	if err != nil {
		return nil, nil, err
	}
	if _, dist := be.(*distBackend); dist {
		return nil, nil, fmt.Errorf("%w: batched execution (RunBatch, Gradient) is in-process only; the %s transport cannot run variant batches — build the simulator without WithTransport",
			ErrUnsupportedOp, TransportTCP)
	}
	cb, ok := be.(compressedBackend)
	if !ok {
		return nil, nil, fmt.Errorf("%w: batched execution requires the compressed backend", ErrUnsupportedOp)
	}
	eng := cb.Simulator
	baseSeed := eng.Config().Seed
	sims := make([]*core.Simulator, len(circuits))
	gatesBefore := make([]int, len(circuits))
	measBefore := make([]int, len(circuits))
	for v := range circuits {
		clone, err := eng.Clone(core.VariantSeed(baseSeed, v))
		if err != nil {
			for _, cs := range sims[:v] {
				cs.Close()
			}
			return nil, nil, fmt.Errorf("%w: cloning variant %d: %v", ErrBadConfig, v, err)
		}
		sims[v] = clone
		gatesBefore[v] = clone.GatesRun()
		measBefore[v] = clone.MeasurementCount()
	}
	var ctl core.RunControl
	if ctx == nil {
		//qclint:allow ctxflow nil ctx is the facade's documented "run uncancelled" default
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		ctl.PollAbort = ctx.Err
	}
	runErr := core.RunBatch(sims, circuits, ctl)
	if errors.Is(runErr, core.ErrBatchMismatch) {
		// Batch validation failures are configuration errors at the
		// public surface, same as their single-variant analogues.
		runErr = fmt.Errorf("%w: %v", ErrBadConfig, runErr)
	}
	results := make([]Result, len(sims))
	for v, cs := range sims {
		all := cs.Measurements()
		results[v] = Result{
			Gates:              cs.GatesRun() - gatesBefore[v],
			Measurements:       all[measBefore[v]:],
			FidelityLowerBound: cs.FidelityLowerBound(),
			Footprint:          cs.CompressedFootprint(),
			CompressionRatio:   cs.CompressionRatio(),
			Stats:              cs.Stats(),
		}
	}
	return sims, results, runErr
}
