package qcsim

import (
	"context"
	"errors"
	"math"
	"testing"

	"qcsim/circuit"
	"qcsim/internal/core"
)

// TestRunBatchMatchesSequentialRuns is the satellite property: a
// K-binding RunBatch is bit-identical to K sequential Runs of the bound
// circuits on fresh simulators carrying the per-variant seeds — across
// geometries, worker counts, codecs, and sweep settings. Run under
// -race in CI it doubles as the race check on the facade batch path.
func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	const qubits, p, k = 6, 1, 3
	ansatz := circuit.QAOAAnsatz(qubits, p, 2)
	bindings := make([][]float64, k)
	for v := range bindings {
		bindings[v] = circuit.QAOAAngles(p, int64(2+v))
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"solo-rank", []Option{WithRanks(1), WithBlockAmps(16), WithWorkers(1)}},
		{"multi-rank", []Option{WithRanks(2), WithBlockAmps(8), WithWorkers(3)}},
		{"four-ranks", []Option{WithRanks(4), WithBlockAmps(4), WithWorkers(2)}},
		{"sweeps-off", []Option{WithRanks(1), WithBlockAmps(16), WithWorkers(2), WithSweeps(false)}},
		{"lossy-szb", []Option{WithRanks(1), WithBlockAmps(16), WithWorkers(2),
			WithMemoryBudget(512), WithCodec("sz-b")}},
		{"lossy-xord", []Option{WithRanks(2), WithBlockAmps(8), WithWorkers(1),
			WithMemoryBudget(512), WithCodec("xor-d")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]Option{WithSeed(5)}, tc.opts...)
			sim, err := New(qubits, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			// A tight lossy budget may legitimately end over budget — the
			// batch must then report it exactly like the solo runs do.
			results, err := sim.RunBatch(context.Background(), ansatz, bindings)
			if err != nil && !errors.Is(err, ErrBudgetExceeded) {
				t.Fatal(err)
			}
			batchOver := errors.Is(err, ErrBudgetExceeded)
			variants := sim.BatchVariants()
			if len(results) != k || len(variants) != k {
				t.Fatalf("got %d results / %d variants, want %d", len(results), len(variants), k)
			}
			for v := 0; v < k; v++ {
				soloOpts := append([]Option{WithSeed(core.VariantSeed(5, v))}, tc.opts...)
				solo, err := New(qubits, soloOpts...)
				if err != nil {
					t.Fatal(err)
				}
				defer solo.Close()
				bound, err := ansatz.Bind(bindings[v])
				if err != nil {
					t.Fatal(err)
				}
				soloRes, err := solo.Run(context.Background(), bound)
				if err != nil && !errors.Is(err, ErrBudgetExceeded) {
					t.Fatal(err)
				}
				if v == 0 && batchOver != errors.Is(err, ErrBudgetExceeded) {
					t.Fatalf("over-budget disagreement: batch %v vs solo %v", batchOver, err)
				}
				bs, err := variants[v].FullState()
				if err != nil {
					t.Fatal(err)
				}
				ss, err := solo.FullState()
				if err != nil {
					t.Fatal(err)
				}
				for i := range bs {
					if bs[i] != ss[i] {
						t.Fatalf("variant %d amplitude %d: batch %v vs solo %v", v, i, bs[i], ss[i])
					}
				}
				if results[v].Gates != soloRes.Gates {
					t.Fatalf("variant %d gates: %d vs %d", v, results[v].Gates, soloRes.Gates)
				}
				if results[v].FidelityLowerBound != soloRes.FidelityLowerBound {
					t.Fatalf("variant %d ledger: %v vs %v", v, results[v].FidelityLowerBound, soloRes.FidelityLowerBound)
				}
				if results[v].Stats.VariantCount != k {
					t.Fatalf("variant %d VariantCount = %d", v, results[v].Stats.VariantCount)
				}
			}
		})
	}
}

// TestRunBatchLeavesParentUntouched: the batch runs on clones; the
// parent simulator's state and stats stay put, and its seed stream is
// not consumed.
func TestRunBatchLeavesParentUntouched(t *testing.T) {
	sim, err := New(5, WithSeed(9), WithBlockAmps(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ansatz := circuit.VQEAnsatz(5, 1)
	before := sim.Snapshot()
	if _, err := sim.RunBatch(context.Background(), ansatz,
		[][]float64{make([]float64, ansatz.NumParams()), quaverVals(ansatz.NumParams())}); err != nil {
		t.Fatal(err)
	}
	after := sim.Snapshot()
	if after.GatesRun != before.GatesRun {
		t.Fatalf("batch mutated parent gate count: %d -> %d", before.GatesRun, after.GatesRun)
	}
	if amp, err := sim.Amplitude(0); err != nil || amp != 1 {
		t.Fatalf("parent state mutated: amp=%v err=%v", amp, err)
	}
}

func quaverVals(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.1 * float64(i+1)
	}
	return vals
}

// TestBatchVariantsLifecycle: variants stay inspectable until the next
// batch, and parent Close closes them.
func TestBatchVariantsLifecycle(t *testing.T) {
	sim, err := New(4, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ansatz := circuit.VQEAnsatz(4, 1)
	if _, err := sim.RunBatch(context.Background(), ansatz,
		[][]float64{quaverVals(ansatz.NumParams())}); err != nil {
		t.Fatal(err)
	}
	vs := sim.BatchVariants()
	if len(vs) != 1 {
		t.Fatalf("%d variants retained", len(vs))
	}
	if _, err := vs[0].ExpectationZZ(0, 1); err != nil {
		t.Fatalf("variant not inspectable: %v", err)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := vs[0].Norm(); !errors.Is(err, ErrClosed) {
		t.Fatalf("variant survived parent Close: %v", err)
	}
	if sim.BatchVariants() != nil {
		t.Fatal("closed simulator still lists variants")
	}
}

// TestGradientMatchesFiniteDifference: the parameter-shift gradient of
// the MAXCUT energy must agree with a central finite difference to
// numerical accuracy.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	const qubits, p = 6, 1
	edges := circuit.RandomRegularGraph(qubits, 4, 7)
	ansatz := circuit.QAOAAnsatzGraph(qubits, p, edges)
	values := circuit.QAOAAngles(p, 7)
	obs := MaxCutObservable(edges)

	sim, err := New(qubits, WithSeed(1), WithBlockAmps(16))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	res, err := sim.Gradient(context.Background(), ansatz, values, obs)
	if err != nil {
		t.Fatal(err)
	}
	occs := ansatz.ParamOccurrences()
	if res.Evaluations != 1+2*len(occs) {
		t.Fatalf("Evaluations = %d, want %d", res.Evaluations, 1+2*len(occs))
	}

	energyAt := func(vals []float64) float64 {
		s, err := New(qubits, WithSeed(1), WithBlockAmps(16))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		bound, err := ansatz.Bind(vals)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background(), bound); err != nil {
			t.Fatal(err)
		}
		e, err := s.MaxCutEnergy(edges)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if got := energyAt(values); math.Abs(got-res.Energy) > 1e-9 {
		t.Fatalf("Energy = %v, direct evaluation %v", res.Energy, got)
	}
	const eps = 1e-5
	for i := range values {
		up := append([]float64(nil), values...)
		dn := append([]float64(nil), values...)
		up[i] += eps
		dn[i] -= eps
		fd := (energyAt(up) - energyAt(dn)) / (2 * eps)
		if math.Abs(fd-res.Grad[i]) > 1e-4 {
			t.Fatalf("grad[%d] = %v, finite difference %v", i, res.Grad[i], fd)
		}
	}
}

// TestRunBatchOnMPSUnsupported: lockstep batching is compressed-only.
func TestRunBatchOnMPSUnsupported(t *testing.T) {
	sim, err := New(4, WithBackend(BackendMPS))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ansatz := circuit.VQEAnsatz(4, 1)
	if _, err := sim.RunBatch(context.Background(), ansatz,
		[][]float64{make([]float64, ansatz.NumParams())}); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("RunBatch on mps: got %v, want ErrUnsupportedOp", err)
	}
}

// TestRunBatchValidation covers the facade-level rejections.
func TestRunBatchValidation(t *testing.T) {
	sim, err := New(4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ansatz := circuit.VQEAnsatz(4, 1)
	if _, err := sim.RunBatch(context.Background(), nil, [][]float64{{}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil circuit: %v", err)
	}
	if _, err := sim.RunBatch(context.Background(), ansatz, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty bindings: %v", err)
	}
	if _, err := sim.RunBatch(context.Background(), ansatz, [][]float64{{0.1}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("short binding: %v", err)
	}
	if _, err := sim.RunBatch(context.Background(), circuit.VQEAnsatz(5, 1),
		[][]float64{make([]float64, 10)}); !errors.Is(err, ErrCircuitMismatch) {
		t.Fatalf("width mismatch: %v", err)
	}
	if _, err := sim.Gradient(context.Background(), circuit.GHZ(4), nil,
		MaxCutObservable(nil)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("gradient of parameterless circuit: %v", err)
	}
}

// TestWithVariantsEstimate: the variant knob scales the worst-case
// footprint and pins the job to the compressed backend.
func TestWithVariantsEstimate(t *testing.T) {
	ansatz := circuit.VQEAnsatz(6, 1)
	bound, err := ansatz.Bind(make([]float64, ansatz.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := EstimateCircuit(6, bound)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Variants != 1 {
		t.Fatalf("default Variants = %d", solo.Variants)
	}
	batch, err := EstimateCircuit(6, bound, WithVariants(9))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Variants != 9 {
		t.Fatalf("Variants = %d, want 9", batch.Variants)
	}
	if batch.UncompressedBytes != 9*solo.UncompressedBytes {
		t.Fatalf("UncompressedBytes %v, want 9x %v", batch.UncompressedBytes, solo.UncompressedBytes)
	}
	if batch.MPSRunnable || batch.Backend != BackendCompressed {
		t.Fatalf("batch estimate not pinned to compressed: %+v", batch)
	}
	if _, err := EstimateCircuit(6, bound, WithVariants(-1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative variants: %v", err)
	}
	if _, err := New(6, WithVariants(0)); err != nil {
		t.Fatalf("WithVariants(0) as default rejected by New: %v", err)
	}
}
