// Benchmarks regenerating every table and figure of the paper's
// evaluation. Custom metrics (compression ratios, fidelity bounds,
// speedups) are attached via b.ReportMetric so `go test -bench=.`
// reproduces the numbers EXPERIMENTS.md records.
package qcsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"qcsim/internal/compress"
	"qcsim/internal/compress/fpziplike"
	"qcsim/internal/compress/szlike"
	"qcsim/internal/compress/xortrunc"
	"qcsim/internal/compress/zfplike"
	"qcsim/internal/core"
	"qcsim/internal/harness"
	"qcsim/internal/mps"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

// benchOptions is the committed benchmark scale (between harness.Small
// and harness.Default to keep -bench=. minutes, not hours).
func benchOptions() harness.Options {
	opt := harness.Default()
	opt.SnapshotQubits = 14
	opt.Fig5Qubits = 12
	opt.Fig15MinQubits = 10
	opt.Fig15MaxQubits = 14
	opt.Fig16Qubits = 14
	opt.GroverSearch = 6
	opt.SupremacyGrids = [][2]int{{3, 4}}
	opt.QAOAQubits = []int{12}
	opt.QFTQubits = 12
	opt.BlockAmps = 512
	return opt
}

// snapshotData builds the qaoa_N / sup_N state snapshots used by the
// codec benchmarks (same construction as the harness).
func snapshotData(b *testing.B, kind string, qubits int) []float64 {
	b.Helper()
	var c *quantum.Circuit
	switch kind {
	case "qaoa":
		c = quantum.QAOA(qubits, 2, 20190001)
	default:
		c = quantum.Supremacy(3, qubits/3, 11, 20190002)
	}
	st := quantum.NewState(c.N)
	st.ApplyCircuit(c)
	data := make([]float64, 2*len(st.Amps))
	for i, a := range st.Amps {
		data[2*i] = real(a)
		data[2*i+1] = imag(a)
	}
	return data
}

// --- Table 1 ---

func BenchmarkTable1MaxQubits(b *testing.B) {
	pb := float64(uint64(1) << 50)
	var n int
	for i := 0; i < b.N; i++ {
		n = core.MaxQubitsForMemory(0.8 * pb)
	}
	b.ReportMetric(float64(n), "theta-max-qubits")
}

// --- Fig. 5: rank configuration sweep ---

func BenchmarkFig5RankConfig(b *testing.B) {
	opt := benchOptions()
	cir := quantum.RandomCircuit(opt.Fig5Qubits, 60, 35)
	for _, ranks := range []int{1, 2, 4, 8} {
		ranks := ranks
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: opt.Fig5Qubits, Ranks: ranks, BlockAmps: opt.BlockAmps})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 6: fidelity bound curves ---

func BenchmarkFig6FidelityBound(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		f = core.FidelityCurve(1e-3, 5000)[4999]
	}
	b.ReportMetric(f, "fidelity@5000gates")
}

// --- Figs. 7, 8, 10: compression ratios ---

func benchRatio(b *testing.B, codec compress.Codec, data []float64, opt compress.Options) {
	b.Helper()
	b.SetBytes(int64(len(data) * 8))
	var payload []byte
	var err error
	for i := 0; i < b.N; i++ {
		payload, err = codec.Compress(payload[:0], data, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(compress.Ratio(len(data), len(payload)), "ratio")
}

func BenchmarkFig7AbsRatio(b *testing.B) {
	opt := benchOptions()
	for _, kind := range []string{"qaoa", "sup"} {
		data := snapshotData(b, kind, opt.SnapshotQubits)
		r := valueRangeOf(data)
		for _, codec := range []compress.Codec{szlike.NewA(), zfplike.New()} {
			for _, bound := range []float64{1e-2, 1e-4} {
				codec, bound := codec, bound
				b.Run(fmt.Sprintf("%s/%s/abs=%.0e", kind, codec.Name(), bound), func(b *testing.B) {
					benchRatio(b, codec, data, compress.Options{Mode: compress.Absolute, Bound: bound * r})
				})
			}
		}
	}
}

func BenchmarkFig8RelRatio(b *testing.B) {
	opt := benchOptions()
	for _, kind := range []string{"qaoa", "sup"} {
		data := snapshotData(b, kind, opt.SnapshotQubits)
		codecs := []compress.Codec{szlike.NewA(), zfplike.New(), fpziplike.New()}
		for _, codec := range codecs {
			for _, bound := range []float64{1e-2, 1e-4} {
				codec, bound := codec, bound
				b.Run(fmt.Sprintf("%s/%s/pwr=%.0e", kind, codec.Name(), bound), func(b *testing.B) {
					benchRatio(b, codec, data, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
				})
			}
		}
	}
}

func BenchmarkFig10SolutionRatio(b *testing.B) {
	opt := benchOptions()
	for _, kind := range []string{"qaoa", "sup"} {
		data := snapshotData(b, kind, opt.SnapshotQubits)
		for _, codec := range harness.Solutions() {
			for _, bound := range []float64{1e-2, 1e-4} {
				codec, bound := codec, bound
				b.Run(fmt.Sprintf("%s/%s/pwr=%.0e", kind, harness.SolutionLabel(codec.Name()), bound), func(b *testing.B) {
					benchRatio(b, codec, data, compress.Options{Mode: compress.PointwiseRelative, Bound: bound})
				})
			}
		}
	}
}

// --- Fig. 11: compression and decompression rates ---

func BenchmarkFig11Rates(b *testing.B) {
	opt := benchOptions()
	data := snapshotData(b, "qaoa", opt.SnapshotQubits)
	copt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	for _, codec := range harness.Solutions() {
		codec := codec
		b.Run("compress/"+harness.SolutionLabel(codec.Name()), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			var payload []byte
			var err error
			for i := 0; i < b.N; i++ {
				payload, err = codec.Compress(payload[:0], data, copt)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decompress/"+harness.SolutionLabel(codec.Name()), func(b *testing.B) {
			payload, err := codec.Compress(nil, data, copt)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, len(data))
			b.SetBytes(int64(len(data) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := codec.Decompress(out, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 12: per-block error distribution ---

func BenchmarkFig12ErrorCDF(b *testing.B) {
	opt := benchOptions()
	data := snapshotData(b, "sup", opt.SnapshotQubits)
	var worst float64
	for i := 0; i < b.N; i++ {
		maxes, err := harness.BlockErrors(data, xortrunc.New(), 1e-3, 4096)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, m := range maxes {
			if m > worst {
				worst = m
			}
		}
	}
	b.ReportMetric(worst, "max-block-error")
}

// --- Fig. 14: uncorrelatedness of Solution C errors ---

func BenchmarkFig14Autocorr(b *testing.B) {
	opt := benchOptions()
	data := snapshotData(b, "qaoa", opt.SnapshotQubits)
	codec := xortrunc.New()
	copt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	payload, err := codec.Compress(nil, data, copt)
	if err != nil {
		b.Fatal(err)
	}
	dec := make([]float64, len(data))
	if err := codec.Decompress(dec, payload); err != nil {
		b.Fatal(err)
	}
	errs := make([]float64, 0, len(data))
	for i := range data {
		if data[i] != 0 {
			errs = append(errs, (data[i]-dec[i])/data[i])
		}
	}
	var r float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = stats.Lag1Autocorrelation(errs)
	}
	b.ReportMetric(r, "lag1-autocorr")
}

// --- Fig. 15: runtime vs qubit count ---

func BenchmarkFig15QubitScaling(b *testing.B) {
	opt := benchOptions()
	for n := opt.Fig15MinQubits; n <= opt.Fig15MaxQubits; n += 2 {
		n := n
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			cir := quantum.HadamardAll(n)
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: n, Ranks: 1, BlockAmps: opt.BlockAmps})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 16: strong scaling ---

func BenchmarkFig16StrongScaling(b *testing.B) {
	opt := benchOptions()
	cir := quantum.HadamardAll(opt.Fig16Qubits)
	for _, ranks := range []int{1, 2, 4, 8} {
		ranks := ranks
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: opt.Fig16Qubits, Ranks: ranks, BlockAmps: opt.BlockAmps})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 16b: intra-rank worker-pool scaling ---

// workerBenchCircuit is applyLocal-heavy: every target sits in the
// offset segment, so each gate is a pure decompress/compute/recompress
// sweep over all blocks — exactly the loop the worker pool fans out.
func workerBenchCircuit(qubits, offsetQubits, layers int) *quantum.Circuit {
	c := quantum.NewCircuit(qubits)
	for l := 0; l < layers; l++ {
		for q := 0; q < offsetQubits; q++ {
			if l%2 == 0 {
				c.H(q)
			} else {
				c.T(q)
			}
		}
	}
	return c
}

// BenchmarkWorkerScaling compares Workers=1 against wider pools on the
// same workload and reports the measured speedup (the states are
// bit-identical across the sweep). BlockAmps=512 on 14 qubits leaves 9
// offset bits and 32 blocks per rank to fan out; pool widths are capped
// there because core clamps Workers to the block count. Only Run is
// timed — construction and the (serial) Reset stay outside the clock so
// the speedup metric reflects the gate loop alone.
func BenchmarkWorkerScaling(b *testing.B) {
	const qubits, blockAmps = 14, 512
	nb := (1 << qubits) / blockAmps
	cir := workerBenchCircuit(qubits, 9, 8)
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		if n > nb {
			n = nb
		}
		if n > widths[len(widths)-1] {
			widths = append(widths, n)
		}
	}
	var baseline float64 // run-only ns/op at Workers=1, set by the first sub-benchmark
	for _, workers := range widths {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, err := core.New(core.Config{Qubits: qubits, Ranks: 1, BlockAmps: blockAmps, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			var running time.Duration
			for i := 0; i < b.N; i++ {
				if err := s.Reset(); err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
				running += time.Since(start)
			}
			nsPerOp := float64(running.Nanoseconds()) / float64(b.N)
			b.ReportMetric(nsPerOp, "run-ns/op")
			if workers == 1 {
				baseline = nsPerOp
			} else if baseline > 0 {
				b.ReportMetric(baseline/nsPerOp, "speedup-vs-1-worker")
			}
		})
	}
}

// BenchmarkSweepScheduler measures the sweep scheduler on the Grover
// and QAOA example circuits: sweeps-off reproduces the paper's
// one-codec-pass-per-gate cost model, sweeps-on batches each run of
// block-local gates into one pass per block. The amplitudes are
// bit-identical across each pair; the reported codec-call counts and
// speedup isolate the removed codec traffic. Only Run is timed.
func BenchmarkSweepScheduler(b *testing.B) {
	opt := benchOptions()
	workloads := []struct {
		name string
		cir  *quantum.Circuit
	}{
		{"Grover", quantum.Grover(opt.GroverSearch, 0x2D, quantum.GroverOptimalIterations(opt.GroverSearch))},
		{"QAOA", quantum.QAOA(opt.QAOAQubits[0], 2, 2020)},
	}
	for _, wl := range workloads {
		wl := wl
		var baseline float64 // sweeps-off run-ns/op, set by the first sub-benchmark
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"off", true}, {"on", false}} {
			mode := mode
			b.Run(fmt.Sprintf("%s/sweeps=%s", wl.name, mode.name), func(b *testing.B) {
				s, err := core.New(core.Config{
					Qubits: wl.cir.N, Ranks: 1, BlockAmps: opt.BlockAmps,
					DisableSweeps: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				var running time.Duration
				var base core.Stats // after the final Reset: its per-block compressions only
				for i := 0; i < b.N; i++ {
					if err := s.Reset(); err != nil {
						b.Fatal(err)
					}
					base = s.Stats()
					start := time.Now()
					if err := s.Run(wl.cir); err != nil {
						b.Fatal(err)
					}
					running += time.Since(start)
				}
				// Reset zeroes the rank stats, so st minus the post-Reset
				// baseline is the final iteration's run-only codec traffic.
				st := s.Stats()
				runCalls := st.CompressCalls - base.CompressCalls + st.DecompressCalls - base.DecompressCalls
				nsPerOp := float64(running.Nanoseconds()) / float64(b.N)
				b.ReportMetric(nsPerOp, "run-ns/op")
				b.ReportMetric(float64(runCalls), "codec-calls/op")
				if mode.disable {
					baseline = nsPerOp
				} else {
					if baseline > 0 {
						b.ReportMetric(baseline/nsPerOp, "speedup-vs-no-sweeps")
					}
					b.ReportMetric(float64(st.CodecPassesSaved), "codec-passes-saved/op")
				}
			})
		}
	}
}

// --- Sampling: streaming compressed-domain readout ---

// BenchmarkSampler compares shot-based readout paths on a 20-qubit
// uniform superposition × 1024 shots: "fullscan" reimplements the
// engine's original path (decompress the whole 2^20-amplitude vector,
// linear-scan it once per shot), "streaming" builds the block-level CDF
// once and resolves each shot by binary search + one block decompress
// through the sampler's LRU. The reported speedup is the tentpole
// metric (target ≥10×); outcomes are bit-identical between the modes
// for the same seed.
func BenchmarkSampler(b *testing.B) {
	const qubits, blockAmps, shots = 20, 4096, 1024
	s, err := core.New(core.Config{Qubits: qubits, Ranks: 1, BlockAmps: blockAmps, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(quantum.HadamardAll(qubits)); err != nil {
		b.Fatal(err)
	}
	fullscan := func(rng *rand.Rand) []uint64 {
		amps, err := s.FullState()
		if err != nil {
			b.Fatal(err)
		}
		out := make([]uint64, shots)
		for k := range out {
			r := rng.Float64()
			var acc float64
			for i, a := range amps {
				acc += real(a)*real(a) + imag(a)*imag(a)
				if r < acc {
					out[k] = uint64(i)
					break
				}
			}
		}
		return out
	}
	streaming := func(rng *rand.Rand) []uint64 {
		sp, err := s.NewSampler(8)
		if err != nil {
			b.Fatal(err)
		}
		out, err := sp.Sample(rng, shots)
		if err != nil {
			b.Fatal(err)
		}
		return out
	}
	ref := fullscan(rand.New(rand.NewSource(9)))
	got := streaming(rand.New(rand.NewSource(9)))
	for i := range ref {
		if ref[i] != got[i] {
			b.Fatalf("shot %d diverges: fullscan %d, streaming %d", i, ref[i], got[i])
		}
	}
	var baseline float64 // fullscan ns/op, set by the first sub-benchmark
	for _, mode := range []struct {
		name string
		draw func(*rand.Rand) []uint64
	}{{"fullscan", fullscan}, {"streaming", streaming}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mode.draw(rand.New(rand.NewSource(int64(i))))
			}
			nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			b.ReportMetric(nsPerOp, "draw-ns/op")
			if mode.name == "fullscan" {
				baseline = nsPerOp
			} else if baseline > 0 {
				b.ReportMetric(baseline/nsPerOp, "speedup-vs-fullscan")
			}
		})
	}
}

// --- Table 2: full benchmark runs ---

func BenchmarkTable2(b *testing.B) {
	opt := benchOptions()
	workloads := []struct {
		name   string
		cir    *quantum.Circuit
		budget float64
	}{
		{"Grover", quantum.Grover(opt.GroverSearch, 0x2D, 1), 0.10},
		{"RCS", quantum.Supremacy(3, 4, opt.SupremacyDepth, 2019), 0.375},
		{"QAOA", quantum.QAOA(12, 2, 2020), 0.375},
		{"QFT", quantum.QFT(opt.QFTQubits, 2021), 0.1875},
	}
	for _, wl := range workloads {
		wl := wl
		b.Run(wl.name, func(b *testing.B) {
			req := core.MemoryRequirement(wl.cir.N)
			var ratio, ledger float64
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{
					Qubits:       wl.cir.N,
					Ranks:        2,
					BlockAmps:    opt.BlockAmps,
					MemoryBudget: int64(req * wl.budget / 2),
					CacheLines:   64,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(wl.cir); err != nil {
					b.Fatal(err)
				}
				ratio = s.Stats().MinCompressionRatio(req)
				ledger = s.FidelityLowerBound()
			}
			b.ReportMetric(ratio, "min-ratio")
			b.ReportMetric(ledger, "fidelity-bound")
		})
	}
}

// --- Ablations (DESIGN.md design choices) ---

// BenchmarkAblationCache quantifies the §3.4 block cache on a
// redundancy-heavy workload.
func BenchmarkAblationCache(b *testing.B) {
	cir := quantum.Grover(6, 0x15, 2)
	for _, lines := range []int{0, 64} {
		lines := lines
		b.Run(fmt.Sprintf("cache=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: cir.N, Ranks: 1, BlockAmps: 128, CacheLines: lines})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShuffle isolates Solution D's reshuffle step.
func BenchmarkAblationShuffle(b *testing.B) {
	data := snapshotData(b, "qaoa", 14)
	copt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	for _, shuffle := range []bool{false, true} {
		codec := &xortrunc.Codec{Shuffle: shuffle}
		b.Run(fmt.Sprintf("shuffle=%v", shuffle), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			var payload []byte
			var err error
			for i := 0; i < b.N; i++ {
				payload, err = codec.Compress(payload[:0], data, copt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(data), len(payload)), "ratio")
		})
	}
}

// BenchmarkAblationLosslessStage isolates the final dictionary pass of
// Solution C.
func BenchmarkAblationLosslessStage(b *testing.B) {
	data := snapshotData(b, "sup", 14)
	copt := compress.Options{Mode: compress.PointwiseRelative, Bound: 1e-3}
	for _, disable := range []bool{false, true} {
		codec := &xortrunc.Codec{DisableLossless: disable}
		b.Run(fmt.Sprintf("flate-off=%v", disable), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			var payload []byte
			var err error
			for i := 0; i < b.N; i++ {
				payload, err = codec.Compress(payload[:0], data, copt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(data), len(payload)), "ratio")
		})
	}
}

// BenchmarkAblationGateFusion quantifies single-qubit gate fusion: the
// same circuit with and without folding adjacent single-qubit gates
// before execution.
func BenchmarkAblationGateFusion(b *testing.B) {
	cir := quantum.RandomCircuit(14, 120, 9)
	for _, fuse := range []bool{false, true} {
		fuse := fuse
		b.Run(fmt.Sprintf("fuse=%v", fuse), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: 14, Ranks: 2, BlockAmps: 1024, FuseGates: fuse})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParadigms compares the three simulation paradigms of the
// paper's §2.2 on a low-entanglement workload (GHZ): tensor network
// (MPS), compressed full state, and uncompressed full state.
func BenchmarkParadigms(b *testing.B) {
	const n = 14
	cir := quantum.GHZ(n)
	b.Run("mps-chi2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := mps.New(n, 2)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.ApplyCircuit(cir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.New(core.Config{Qubits: n, Ranks: 1, BlockAmps: 1024})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(cir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncompressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.New(core.Config{Qubits: n, Ranks: 1, BlockAmps: 1024, Uncompressed: true})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(cir); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUncompressedBaseline compares the compressed engine to the
// Intel-QS-style uncompressed substrate (the paper's time-for-memory
// trade).
func BenchmarkUncompressedBaseline(b *testing.B) {
	cir := quantum.RandomCircuit(14, 40, 3)
	for _, uncompressed := range []bool{true, false} {
		uncompressed := uncompressed
		name := "compressed"
		if uncompressed {
			name = "uncompressed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(core.Config{Qubits: 14, Ranks: 2, BlockAmps: 1024, Uncompressed: uncompressed})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(cir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func valueRangeOf(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
