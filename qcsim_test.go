package qcsim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"qcsim/circuit"
	"qcsim/internal/core"
)

// TestOptionRoundTrip checks that every functional option lands in the
// engine configuration the facade resolves.
func TestOptionRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		opts  []Option
		check func(core.Config) bool
	}{
		{"WithRanks", []Option{WithRanks(2)}, func(c core.Config) bool { return c.Ranks == 2 }},
		// Workers are clamped to the per-rank block count, so give the
		// pool enough blocks to keep the requested width.
		{"WithWorkers", []Option{WithWorkers(3), WithBlockAmps(64)}, func(c core.Config) bool { return c.Workers == 3 }},
		{"WithBlockAmps", []Option{WithBlockAmps(128)}, func(c core.Config) bool { return c.BlockAmps == 128 }},
		{"WithMemoryBudget", []Option{WithMemoryBudget(1 << 20)}, func(c core.Config) bool { return c.MemoryBudget == 1<<20 }},
		{"WithErrorLevels", []Option{WithErrorLevels(1e-4, 1e-2)}, func(c core.Config) bool {
			return len(c.ErrorLevels) == 2 && c.ErrorLevels[0] == 1e-4 && c.ErrorLevels[1] == 1e-2
		}},
		{"WithCodec", []Option{WithCodec("sz-b")}, func(c core.Config) bool { return c.Lossy != nil && c.Lossy.Name() == "sz-b" }},
		{"WithCodecAlias", []Option{WithCodec("solution-d")}, func(c core.Config) bool { return c.Lossy != nil && c.Lossy.Name() == "xor-d" }},
		{"WithCache", []Option{WithCache(8)}, func(c core.Config) bool { return c.CacheLines == 8 }},
		{"WithSeed", []Option{WithSeed(99)}, func(c core.Config) bool { return c.Seed == 99 }},
		{"WithGateFusion", []Option{WithGateFusion(true)}, func(c core.Config) bool { return c.FuseGates }},
		{"WithSweepsDefaultOn", nil, func(c core.Config) bool { return !c.DisableSweeps }},
		{"WithSweepsOff", []Option{WithSweeps(false)}, func(c core.Config) bool { return c.DisableSweeps }},
		{"WithSweepsOn", []Option{WithSweeps(false), WithSweeps(true)}, func(c core.Config) bool { return !c.DisableSweeps }},
		{"WithUncompressed", []Option{WithUncompressed(true)}, func(c core.Config) bool { return c.Uncompressed }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := New(10, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if cfg := sim.be.(compressedBackend).Config(); !tc.check(cfg) {
				t.Fatalf("option did not round-trip into core.Config: %+v", cfg)
			}
		})
	}
	// WithNoise has no core.Config field (it installs a NoiseModel);
	// verify the valid range constructs and determinism holds.
	sim, err := New(6, WithNoise(0.2), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), circuit.GHZ(6)); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeMatchesCore is the acceptance property: qcsim.New + Run
// reproduce bit-identical amplitudes, measurement outcomes, and the
// fidelity ledger versus driving internal/core directly with the same
// configuration and seed.
func TestFacadeMatchesCore(t *testing.T) {
	const n, seed = 10, 12345
	cir := circuit.RandomCircuit(n, 80, 7)
	cir.Measure(3)
	cir.H(0).CNOT(0, 9) // keep evolving the collapsed state
	req := MemoryRequirement(n)
	budget := int64(req * 0.25 / 2)

	facade, err := New(n,
		WithRanks(2), WithBlockAmps(256), WithMemoryBudget(budget),
		WithCache(16), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := facade.Run(context.Background(), cir)
	if err != nil && !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal(err)
	}

	direct, err := core.New(core.Config{
		Qubits: n, Ranks: 2, BlockAmps: 256, MemoryBudget: budget,
		CacheLines: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Run(cir); err != nil {
		t.Fatal(err)
	}

	fa, err := facade.FullState()
	if err != nil {
		t.Fatal(err)
	}
	da, err := direct.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if fa[i] != da[i] {
			t.Fatalf("amplitude %d diverges: facade %v, core %v", i, fa[i], da[i])
		}
	}
	if got, want := facade.FidelityLowerBound(), direct.FidelityLowerBound(); got != want {
		t.Fatalf("ledger diverges: facade %v, core %v", got, want)
	}
	fm, dm := facade.Measurements(), direct.Measurements()
	if len(fm) != len(dm) {
		t.Fatalf("measurement counts diverge: %d vs %d", len(fm), len(dm))
	}
	for i := range fm {
		if fm[i] != dm[i] {
			t.Fatalf("measurement %d diverges: %d vs %d", i, fm[i], dm[i])
		}
	}
	if res.Gates != direct.GatesRun() {
		t.Fatalf("gates executed diverge: %d vs %d", res.Gates, direct.GatesRun())
	}
}

// TestRunCancellation aborts mid-circuit via the context and checks the
// run stops between gates with a wrapped context.Canceled, leaving the
// simulator fully inspectable.
func TestRunCancellation(t *testing.T) {
	const n = 12
	c := circuit.New(n)
	for i := 0; i < 20; i++ {
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	total := len(c.Gates)

	sim, err := New(n, WithRanks(2), WithBlockAmps(256), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 5
	res, err := sim.RunProgress(ctx, c, func(ev ProgressEvent) {
		if ev.Gate == stopAfter-1 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil result")
	}
	if res.Gates < stopAfter || res.Gates >= total {
		t.Fatalf("executed %d gates, want a strict prefix ≥ %d of %d", res.Gates, stopAfter, total)
	}
	if sim.GatesRun() != res.Gates {
		t.Fatalf("GatesRun %d != result gates %d", sim.GatesRun(), res.Gates)
	}
	// The simulator must still be inspectable and normalized.
	norm, err := sim.Norm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm %v after cancellation", norm)
	}
	if _, err := sim.Amplitude(0); err != nil {
		t.Fatal(err)
	}
	// And it can finish the remaining gates on a fresh context.
	rest := &circuit.Circuit{N: n, Gates: c.Gates[res.Gates:]}
	if _, err := sim.Run(context.Background(), rest); err != nil {
		t.Fatal(err)
	}
	if sim.GatesRun() != total {
		t.Fatalf("resumed run executed %d total gates, want %d", sim.GatesRun(), total)
	}
	// 40 H layers = identity: back to |0...0⟩ up to float error.
	a0, err := sim.Amplitude(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(a0)-1) > 1e-6 || math.Abs(imag(a0)) > 1e-6 {
		t.Fatalf("⟨0|ψ⟩ = %v after resumed identity circuit", a0)
	}
}

// TestPreCancelledContext: a context cancelled before Run starts must
// execute zero gates.
func TestPreCancelledContext(t *testing.T) {
	sim, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sim.Run(ctx, circuit.GHZ(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res.Gates != 0 || sim.GatesRun() != 0 {
		t.Fatalf("pre-cancelled run executed %d gates", res.Gates)
	}
}

// TestBackgroundContextIdentical: Run with context.Background must be
// bit-identical to the hook-free engine path (no abort broadcasts).
func TestBackgroundContextIdentical(t *testing.T) {
	cir := circuit.RandomCircuit(8, 40, 3)
	a, err := New(8, WithRanks(2), WithBlockAmps(64), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(context.Background(), cir); err != nil {
		t.Fatal(err)
	}
	b, err := core.New(core.Config{Qubits: 8, Ranks: 2, BlockAmps: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(cir); err != nil {
		t.Fatal(err)
	}
	av, _ := a.FullState()
	bv, _ := b.FullState()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("amplitude %d diverges under background context", i)
		}
	}
}

// TestRunProgressEvents checks every gate reports exactly one event in
// order.
func TestRunProgressEvents(t *testing.T) {
	cir := circuit.GHZ(6)
	sim, err := New(6, WithRanks(2), WithBlockAmps(8))
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	res, err := sim.RunProgress(context.Background(), cir, func(ev ProgressEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Gates || res.Gates != len(cir.Gates) {
		t.Fatalf("%d events for %d gates", len(events), res.Gates)
	}
	for i, ev := range events {
		if ev.Gate != i || ev.Total != len(cir.Gates) || ev.Name == "" {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}
}

// TestBudgetExceeded forces the escalation ladder to exhaust and checks
// the sentinel plus that the simulator stays inspectable.
func TestBudgetExceeded(t *testing.T) {
	sim, err := New(10, WithBlockAmps(64), WithMemoryBudget(1), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// Escalation is decided once per sweep: the first Hadamard layer
	// climbs the ladder, the second exhausts it.
	if _, err := sim.Run(context.Background(), circuit.HadamardAll(10)); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), circuit.HadamardAll(10))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error %v does not wrap ErrBudgetExceeded", err)
	}
	if res == nil || res.Stats.Escalations == 0 || res.FidelityLowerBound >= 1 {
		t.Fatalf("result does not reflect the lossy run: %+v", res)
	}
	norm, err := sim.Norm()
	if err != nil {
		t.Fatal(err)
	}
	// The loosest bound is 1e-1 pointwise-relative: the norm survives
	// within that slack.
	if math.Abs(norm-1) > 0.5 {
		t.Fatalf("norm %v after over-budget run", norm)
	}
}

// TestSnapshotAndResultAgree cross-checks the two inspection surfaces.
func TestSnapshotAndResultAgree(t *testing.T) {
	sim, err := New(8, WithRanks(2), WithBlockAmps(32), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.QFT(8, 11)
	c.Measure(0)
	res, err := sim.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	snap := sim.Snapshot()
	if snap.GatesRun != res.Gates {
		t.Fatalf("snapshot gates %d, result %d", snap.GatesRun, res.Gates)
	}
	if snap.FidelityLowerBound != res.FidelityLowerBound {
		t.Fatal("fidelity mismatch between snapshot and result")
	}
	if snap.Footprint != res.Footprint {
		t.Fatal("footprint mismatch between snapshot and result")
	}
	if len(snap.Measurements) != 1 || len(res.Measurements) != 1 ||
		snap.Measurements[0] != res.Measurements[0] {
		t.Fatalf("measurements diverge: snapshot %v, result %v", snap.Measurements, res.Measurements)
	}
	if snap.Qubits != 8 || snap.MaxFootprint == 0 {
		t.Fatalf("snapshot malformed: %+v", snap)
	}
}

// TestSampleSeededDeterministic: Sample uses the simulator's own seeded
// stream — same seed, same draws; no caller rng anywhere.
func TestSampleSeededDeterministic(t *testing.T) {
	draw := func() []uint64 {
		sim, err := New(8, WithSeed(31))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(context.Background(), circuit.HadamardAll(8)); err != nil {
			t.Fatal(err)
		}
		out, err := sim.Sample(64)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverges: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSampleDoesNotPerturbMeasurements: sampling is a pure read — it
// draws from a dedicated stream, so measurement outcomes after a
// Sample call match a run that never sampled.
func TestSampleDoesNotPerturbMeasurements(t *testing.T) {
	outcomes := func(sample bool) []int {
		sim, err := New(6, WithSeed(17))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(context.Background(), circuit.HadamardAll(6)); err != nil {
			t.Fatal(err)
		}
		if sample {
			if _, err := sim.Sample(32); err != nil {
				t.Fatal(err)
			}
		}
		c := circuit.New(6)
		for q := 0; q < 6; q++ {
			c.Measure(q)
		}
		res, err := sim.Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Measurements
	}
	plain, sampled := outcomes(false), outcomes(true)
	for i := range plain {
		if plain[i] != sampled[i] {
			t.Fatalf("measurement %d perturbed by sampling: %d vs %d", i, plain[i], sampled[i])
		}
	}
}

// TestSaveLoadThroughFacade round-trips a checkpoint.
func TestSaveLoadThroughFacade(t *testing.T) {
	sim, err := New(8, WithRanks(2), WithBlockAmps(32), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), circuit.QFT(8, 2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(8, WithRanks(2), WithBlockAmps(32), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a, _ := sim.FullState()
	b, _ := restored.FullState()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("amplitude %d diverges after checkpoint round-trip", i)
		}
	}
	if restored.GatesRun() != sim.GatesRun() {
		t.Fatal("gate counter not restored")
	}
}

// TestSweepSchedulerFacade: sweeps are on by default, surface their
// counters through Stats, and match sweeps-off execution bit-for-bit.
func TestSweepSchedulerFacade(t *testing.T) {
	cir := circuit.Grover(5, 11, circuit.GroverOptimalIterations(5))
	run := func(opts ...Option) (*Simulator, *Result) {
		t.Helper()
		sim, err := New(cir.N, append([]Option{WithBlockAmps(16), WithSeed(4)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(context.Background(), cir)
		if err != nil {
			t.Fatal(err)
		}
		return sim, res
	}
	simOn, resOn := run()
	simOff, resOff := run(WithSweeps(false))

	if resOn.Stats.Sweeps == 0 || resOn.Stats.CodecPassesSaved == 0 {
		t.Fatalf("default run reports no sweep activity: %+v", resOn.Stats)
	}
	if resOff.Stats.Sweeps != 0 {
		t.Fatalf("WithSweeps(false) still swept: %+v", resOff.Stats)
	}
	callsOn := resOn.Stats.CompressCalls + resOn.Stats.DecompressCalls
	callsOff := resOff.Stats.CompressCalls + resOff.Stats.DecompressCalls
	if callsOn >= callsOff {
		t.Fatalf("sweeps did not reduce codec invocations: %d vs %d", callsOn, callsOff)
	}
	a, err := simOn.FullState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := simOff.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("amplitude %d differs between sweeps on and off", i)
		}
	}
}

// TestSamplerHandle: the Sampler builds its tables once and then draws
// repeatedly from the simulator's sampling stream — split calls match
// one big Sample call, and the WithSampleCache option round-trips.
func TestSamplerHandle(t *testing.T) {
	mk := func() *Simulator {
		sim, err := New(8, WithSeed(21), WithBlockAmps(16), WithSampleCache(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(context.Background(), circuit.HadamardAll(8)); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	a, b := mk(), mk()
	if a.sampleCache != 2 {
		t.Fatalf("WithSampleCache(2) did not round-trip: %d", a.sampleCache)
	}
	if z, err := New(4, WithSampleCache(0)); err != nil || z.sampleCache != 1 {
		t.Fatalf("WithSampleCache(0) should clamp to 1, got %d (%v)", z.sampleCache, err)
	}
	if d, err := New(4); err != nil || d.sampleCache != DefaultSampleCache {
		t.Fatalf("default sample cache = %d, want %d (%v)", d.sampleCache, DefaultSampleCache, err)
	}
	sp, err := a.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if tm := sp.TotalMass(); math.Abs(tm-1) > 1e-9 {
		t.Fatalf("lossless TotalMass = %v, want ~1", tm)
	}
	s1, err := sp.Sample(16)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sp.Sample(16)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := b.Sample(32)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range whole {
		var got uint64
		if i < 16 {
			got = s1[i]
		} else {
			got = s2[i-16]
		}
		if got != want {
			t.Fatalf("shot %d: sampler handle drew %d, Sample drew %d", i, got, want)
		}
	}
	if _, err := sp.Sample(-1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative shots: %v", err)
	}
}

// TestSampleBeyondFullStateLimit is the tentpole acceptance check at the
// facade: a register too wide for FullState still supports shot-based
// readout, because the sampler streams from the compressed blocks.
func TestSampleBeyondFullStateLimit(t *testing.T) {
	sim, err := New(28, WithBlockAmps(4096), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.FullState(); !errors.Is(err, ErrStateTooLarge) {
		t.Fatalf("FullState at 28 qubits: %v, want ErrStateTooLarge", err)
	}
	out, err := sim.Sample(8)
	if err != nil {
		t.Fatalf("streaming Sample failed at 28 qubits: %v", err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("shot %d of |0...0⟩ = %d", i, v)
		}
	}
}

// TestLoadClearsBudgetLatchFacade: restoring a healthy checkpoint after
// a run exhausted the escalation ladder must not leave Run reporting a
// phantom ErrBudgetExceeded.
func TestLoadClearsBudgetLatchFacade(t *testing.T) {
	ctx := context.Background()
	sim, err := New(8, WithBlockAmps(32), WithSeed(2), WithMemoryBudget(700), WithErrorLevels(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctx, circuit.GHZ(8)); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var over error
	for i := 0; i < 4 && over == nil; i++ {
		_, over = sim.Run(ctx, circuit.QFT(8, int64(40+i)))
	}
	if !errors.Is(over, ErrBudgetExceeded) {
		t.Fatalf("could not exhaust the ladder: %v", over)
	}
	if err := sim.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctx, circuit.New(8).H(0).H(0)); err != nil {
		t.Fatalf("run after restoring a healthy checkpoint: %v", err)
	}
}
