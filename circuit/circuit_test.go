package circuit_test

import (
	"strings"
	"testing"

	"qcsim/circuit"
)

// serialize renders a circuit in the .qc text format, the package's
// canonical gate-for-gate comparison form.
func serialize(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var b strings.Builder
	if err := circuit.Serialize(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestQAOAAnsatzBindReproducesFixedQAOA(t *testing.T) {
	cases := []struct {
		n, p int
		seed int64
	}{
		{6, 1, 1},
		{8, 2, 7},
		{10, 3, 2020},
	}
	for _, tc := range cases {
		ansatz := circuit.QAOAAnsatz(tc.n, tc.p, tc.seed)
		if got, want := ansatz.NumParams(), 2*tc.p; got != want {
			t.Errorf("QAOAAnsatz(%d,%d) NumParams = %d, want %d", tc.n, tc.p, got, want)
		}
		bound, err := ansatz.Bind(circuit.QAOAAngles(tc.p, tc.seed))
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		fixed := circuit.QAOA(tc.n, tc.p, tc.seed)
		if got, want := serialize(t, bound), serialize(t, fixed); got != want {
			t.Errorf("QAOAAnsatz(%d,%d,%d) bound at QAOAAngles differs from QAOA:\n%s\nvs\n%s",
				tc.n, tc.p, tc.seed, got, want)
		}
	}
}

func TestQAOAAnsatzGraphMatchesSeededGraph(t *testing.T) {
	const n, p = 8, 2
	const seed = 11
	edges := circuit.RandomRegularGraph(n, 4, seed)
	if len(edges) != n*4/2 {
		t.Fatalf("RandomRegularGraph(%d, 4): %d edges, want %d", n, len(edges), n*4/2)
	}
	explicit := circuit.QAOAAnsatzGraph(n, p, edges)
	seeded := circuit.QAOAAnsatz(n, p, seed)
	if !circuit.SameShape(explicit, seeded) {
		t.Error("ansatz over the seeded graph's own edge list must share the seeded ansatz's shape")
	}
}

func TestVQEAnsatzParamCount(t *testing.T) {
	cases := []struct {
		n, layers, want int
	}{
		{4, 1, 8},
		{6, 2, 18},
		{10, 3, 40},
	}
	for _, tc := range cases {
		a := circuit.VQEAnsatz(tc.n, tc.layers)
		if got := a.NumParams(); got != tc.want {
			t.Errorf("VQEAnsatz(%d,%d) NumParams = %d, want %d", tc.n, tc.layers, got, tc.want)
		}
	}
}

func TestShapeStableAcrossBindings(t *testing.T) {
	ansatz := circuit.QAOAAnsatz(8, 2, 3)
	angles := []struct{ vals []float64 }{
		{circuit.QAOAAngles(2, 3)},
		{[]float64{0.1, 0.2, 0.3, 0.4}},
		{[]float64{1.5, -0.7, 0.0, 2.2}},
	}
	var sig string
	for i, a := range angles {
		bound, err := ansatz.Bind(a.vals)
		if err != nil {
			t.Fatal(err)
		}
		if !circuit.SameShape(ansatz, bound) {
			t.Fatalf("binding %d changed the shape", i)
		}
		if s := circuit.ShapeSignature(bound); sig == "" {
			sig = s
		} else if s != sig {
			t.Fatalf("binding %d has signature %q, want %q", i, s, sig)
		}
	}
	if other := circuit.VQEAnsatz(8, 2); circuit.SameShape(ansatz, other) {
		t.Error("QAOA and VQE ansatz must not share a shape signature")
	}
}

func TestBindRejectsShortVector(t *testing.T) {
	ansatz := circuit.QAOAAnsatz(6, 2, 1) // 4 params
	if _, err := ansatz.Bind([]float64{0.1}); err == nil {
		t.Error("Bind with too few values must fail")
	}
}
