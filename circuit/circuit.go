// Package circuit is the public circuit-construction surface of the
// qcsim module: gate-list circuits with chainable builder methods, the
// benchmark circuit generators the paper evaluates (Grover, random
// circuit sampling, QAOA, QFT), textbook algorithms, and a text
// serialization format.
//
// The types are aliases of the engine's internal representation, so a
// *circuit.Circuit feeds qcsim.Simulator.Run directly with no
// conversion. Build circuits either with the chainable methods:
//
//	c := circuit.New(3).H(0).CNOT(0, 1).CNOT(1, 2).Measure(2)
//
// or with a generator:
//
//	c := circuit.Grover(8, 0xA7, circuit.GroverOptimalIterations(8))
package circuit

import (
	"io"

	"qcsim/internal/quantum"
)

// Circuit is an ordered gate list over N qubits. Builder methods (H, X,
// CNOT, Toffoli, Measure, ...) append gates and return the circuit for
// chaining.
type Circuit = quantum.Circuit

// Gate is one element of a Circuit: a named 2×2 unitary with a target
// and optional control qubits, or a computational-basis measurement.
type Gate = quantum.Gate

// GateKind discriminates unitary gates from measurements.
type GateKind = quantum.GateKind

// KindUnitary and KindMeasure are the Gate.Kind values.
const (
	KindUnitary = quantum.KindUnitary
	KindMeasure = quantum.KindMeasure
)

// Matrix2 is a 2×2 complex matrix in row-major order — the single-qubit
// unitary applied by Circuit.Apply.
type Matrix2 = quantum.Matrix2

// Edge is an undirected graph edge, used by the QAOA/MAXCUT helpers.
type Edge = quantum.Edge

// Standard single-qubit gate matrices for Circuit.Apply and
// Circuit.ApplyControlled.
var (
	MatI     = quantum.MatI
	MatX     = quantum.MatX
	MatY     = quantum.MatY
	MatZ     = quantum.MatZ
	MatH     = quantum.MatH
	MatS     = quantum.MatS
	MatSdg   = quantum.MatSdg
	MatT     = quantum.MatT
	MatTdg   = quantum.MatTdg
	MatSqrtX = quantum.MatSqrtX
	MatSqrtY = quantum.MatSqrtY
)

// New returns an empty circuit on n qubits. It panics if n < 1.
func New(n int) *Circuit { return quantum.NewCircuit(n) }

// Parameterized single-qubit matrices.

// RX returns the rotation matrix exp(-iθX/2).
func RX(theta float64) Matrix2 { return quantum.RX(theta) }

// RY returns the rotation matrix exp(-iθY/2).
func RY(theta float64) Matrix2 { return quantum.RY(theta) }

// RZ returns the rotation matrix exp(-iθZ/2).
func RZ(theta float64) Matrix2 { return quantum.RZ(theta) }

// Phase returns diag(1, e^{iθ}).
func Phase(theta float64) Matrix2 { return quantum.Phase(theta) }

// Benchmark circuit generators (the paper's §5 workloads).

// GHZ builds the n-qubit GHZ preparation circuit.
func GHZ(n int) *Circuit { return quantum.GHZ(n) }

// HadamardAll applies H to every one of n qubits — the maximum-entropy
// worst case for the compressor.
func HadamardAll(n int) *Circuit { return quantum.HadamardAll(n) }

// QFT builds the n-qubit quantum Fourier transform over a seeded random
// input-preparation layer.
func QFT(n int, seed int64) *Circuit { return quantum.QFT(n, seed) }

// Grover builds a Grover search over an s-qubit register for the marked
// element, with the given number of amplification iterations. The
// Toffoli-ladder oracle uses s-3 ancillas: the circuit spans
// GroverQubits(s) = 2s-3 qubits.
func Grover(s int, marked uint64, iters int) *Circuit {
	return quantum.Grover(s, marked, iters)
}

// GroverQubits returns the total width 2s-3 of a Grover circuit with an
// s-qubit search register.
func GroverQubits(s int) int { return quantum.GroverQubits(s) }

// GroverSearchQubits inverts GroverQubits: the search-register width
// for a total qubit budget, or an error if no width fits.
func GroverSearchQubits(total int) (int, error) { return quantum.GroverSearchQubits(total) }

// GroverOptimalIterations returns the iteration count that maximizes
// the success probability, ⌊π/4·√(2^s)⌋.
func GroverOptimalIterations(s int) int { return quantum.GroverOptimalIterations(s) }

// Supremacy builds a random-circuit-sampling benchmark on a rows×cols
// grid with the given number of cycles (Boixo et al. 2018, the paper's
// RCS workload).
func Supremacy(rows, cols, cycles int, seed int64) *Circuit {
	return quantum.Supremacy(rows, cols, cycles, seed)
}

// QAOA builds a p-round MAXCUT QAOA circuit on n qubits over a seeded
// random 4-regular graph.
func QAOA(n, p int, seed int64) *Circuit { return quantum.QAOA(n, p, seed) }

// RandomCircuit builds a seeded circuit of `gates` uniformly random
// gates on n qubits.
func RandomCircuit(n, gates int, seed int64) *Circuit {
	return quantum.RandomCircuit(n, gates, seed)
}

// Brickwork builds a 1D brickwork entangling circuit of the given
// depth: per layer, seeded RY rotations on every qubit, then
// nearest-neighbor CNOTs on alternating pairs. Entanglement across any
// chain cut grows by one two-qubit gate every other layer — the
// controllable dial of the backend-crossover experiment, and the
// canonical workload for exploring WithBondDim.
func Brickwork(n, depth int, seed int64) *Circuit {
	return quantum.Brickwork(n, depth, seed)
}

// RandomRegularGraph returns a seeded random d-regular graph on n
// vertices — the QAOA problem instances.
func RandomRegularGraph(n, d int, seed int64) []Edge {
	return quantum.RandomRegularGraph(n, d, seed)
}

// Parameterized circuits (variational workloads).

// Param is a symbolic gate angle θ = Scale·values[Index] + Shift,
// resolved by Circuit.Bind. Build one with P and the Times/Plus
// combinators, attach it with the PRX/PRY/PRZ/PPhase builder methods.
type Param = quantum.Param

// ParamOccurrence locates one parametric gate in a circuit — the unit
// the parameter-shift rule differentiates (a parameter reused by many
// gates has many occurrences).
type ParamOccurrence = quantum.ParamOccurrence

// P returns the parameter reference θ = values[i].
func P(i int) Param { return quantum.P(i) }

// QAOAAnsatz builds the p-round MAXCUT QAOA ansatz on the same seeded
// random 4-regular graph as QAOA(n, p, seed) with symbolic angles:
// parameter 2r is round r's γ, parameter 2r+1 its β. Binding it at
// QAOAAngles(p, seed) reproduces QAOA(n, p, seed) gate for gate.
func QAOAAnsatz(n, p int, seed int64) *Circuit { return quantum.QAOAAnsatz(n, p, seed) }

// QAOAAnsatzGraph builds the p-round MAXCUT QAOA ansatz over an
// explicit edge list.
func QAOAAnsatzGraph(n, p int, edges []Edge) *Circuit {
	return quantum.QAOAAnsatzGraph(n, p, edges)
}

// QAOAAngles returns the angle vector [γ_0, β_0, γ_1, β_1, ...] the
// fixed QAOA generator draws from seed.
func QAOAAngles(p int, seed int64) []float64 { return quantum.QAOAAngles(p, seed) }

// VQEAnsatz builds a hardware-efficient VQE ansatz: `layers` rounds of
// parametric RY rotations plus CZ entangler chains, closed by a final
// RY layer ((layers+1)·n parameters).
func VQEAnsatz(n, layers int) *Circuit { return quantum.VQEAnsatz(n, layers) }

// ShapeSignature fingerprints a circuit's structure — gate kinds,
// targets, and controls, ignoring angles and matrix entries — so all
// bindings of one ansatz share one signature. qcsim.RunBatch requires
// every binding in a batch to share the base circuit's shape.
func ShapeSignature(c *Circuit) string { return quantum.ShapeSignature(c) }

// SameShape reports whether two circuits share a shape signature.
func SameShape(a, b *Circuit) bool { return quantum.SameShape(a, b) }

// Textbook algorithms.

// PhaseEstimation builds phase estimation of U = diag(1, e^{2πiφ}) with
// t counting qubits (t+1 qubits total).
func PhaseEstimation(t int, phi float64) *Circuit { return quantum.PhaseEstimation(t, phi) }

// BernsteinVazirani builds the Bernstein–Vazirani circuit recovering an
// n-bit secret (n+1 qubits total).
func BernsteinVazirani(n int, secret uint64) *Circuit {
	return quantum.BernsteinVazirani(n, secret)
}

// DeutschJozsa builds the Deutsch–Jozsa circuit for a constant or
// balanced oracle on n input qubits.
func DeutschJozsa(n int, constant bool) *Circuit { return quantum.DeutschJozsa(n, constant) }

// Transformations.

// FuseSingleQubitGates folds runs of adjacent single-qubit gates on the
// same target into one unitary — the preprocessing qcsim.WithGateFusion
// applies before execution.
func FuseSingleQubitGates(c *Circuit) *Circuit { return quantum.FuseSingleQubitGates(c) }

// Serialization: a line-oriented text format (one gate per line).

// Serialize writes c to w in the .qc text format.
func Serialize(w io.Writer, c *Circuit) error { return quantum.Serialize(w, c) }

// Parse reads a .qc text circuit from r.
func Parse(r io.Reader) (*Circuit, error) { return quantum.Parse(r) }
