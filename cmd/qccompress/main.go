// Command qccompress runs any registered compressor over a raw
// little-endian float64 file — the workflow used to evaluate
// compressors on state-vector snapshots (paper §4). Codecs are selected
// by name through the public qcsim registry, so codecs added with
// qcsim.RegisterCodec show up here too.
//
//	qccompress -codec solution-c -bound 1e-3 state.f64        # report ratio/rates/errors
//	qccompress -codec sz-a -mode abs -bound 1e-4 state.f64
//	qccompress -list
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"qcsim"
)

func main() {
	var (
		codecName = flag.String("codec", "solution-c", "codec name or alias (see -list)")
		mode      = flag.String("mode", "pwr", "pwr|abs|lossless")
		bound     = flag.Float64("bound", 1e-3, "error bound")
		out       = flag.String("o", "", "write the compressed payload to this file")
		list      = flag.Bool("list", false, "list codec names and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range qcsim.Codecs() {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() != 1 {
		fail(fmt.Errorf("usage: qccompress [flags] <file.f64>"))
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if len(raw)%8 != 0 {
		fail(fmt.Errorf("%s: size %d is not a multiple of 8", flag.Arg(0), len(raw)))
	}
	data := make([]float64, len(raw)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}

	codec, err := qcsim.NewCodec(*codecName)
	if err != nil {
		fail(err)
	}
	opt := qcsim.CodecOptions{Bound: *bound}
	switch *mode {
	case "pwr":
		opt.Mode = qcsim.CodecPointwiseRelative
	case "abs":
		opt.Mode = qcsim.CodecAbsolute
	case "lossless":
		opt.Mode = qcsim.CodecLossless
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	start := time.Now()
	payload, err := codec.Compress(nil, data, opt)
	if err != nil {
		fail(err)
	}
	ct := time.Since(start)
	dec := make([]float64, len(data))
	start = time.Now()
	if err := codec.Decompress(dec, payload); err != nil {
		fail(err)
	}
	dt := time.Since(start)

	var maxAbs, maxRel float64
	for i := range data {
		e := math.Abs(data[i] - dec[i])
		if e > maxAbs {
			maxAbs = e
		}
		if data[i] != 0 {
			if r := e / math.Abs(data[i]); r > maxRel {
				maxRel = r
			}
		}
	}
	mb := float64(len(data)*8) / (1 << 20)
	fmt.Printf("codec          %s (mode %s, bound %g)\n", codec.Name(), opt.Mode, opt.Bound)
	fmt.Printf("input          %d values (%s)\n", len(data), qcsim.FormatBytes(float64(len(raw))))
	fmt.Printf("compressed     %s  (ratio %.2f:1)\n", qcsim.FormatBytes(float64(len(payload))), qcsim.CodecRatio(len(data), len(payload)))
	fmt.Printf("compress       %v  (%.1f MB/s)\n", ct.Round(time.Microsecond), mb/ct.Seconds())
	fmt.Printf("decompress     %v  (%.1f MB/s)\n", dt.Round(time.Microsecond), mb/dt.Seconds())
	fmt.Printf("max abs error  %.3e\n", maxAbs)
	fmt.Printf("max rel error  %.3e\n", maxRel)
	if *out != "" {
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("payload written to %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "qccompress: %v\n", err)
	os.Exit(1)
}
