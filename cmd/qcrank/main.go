// Command qcrank serves one rank of a distributed simulation: the TCP
// transport (qcsim.WithTransport) spawns one qcrank per rank, each
// child connecting back to the coordinator, meshing with its peers,
// executing its slice of the compressed state, and shipping the result
// home. It can also be launched by hand on other hosts:
//
//	qcrank -coord 10.0.0.5:7777
//
// against a coordinator configured to wait for external workers. The
// process exits 0 when its rank completed, non-zero on failure
// (including a peer rank dying mid-run).
package main

import (
	"flag"
	"fmt"
	"os"

	"qcsim"
)

func main() {
	coord := flag.String("coord", os.Getenv("QCSIM_COORD_ADDR"),
		"coordinator control address (host:port); defaults to $QCSIM_COORD_ADDR")
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "qcrank: no coordinator address (-coord or $QCSIM_COORD_ADDR)")
		os.Exit(2)
	}
	if err := qcsim.RankWorker(*coord); err != nil {
		fmt.Fprintln(os.Stderr, "qcrank:", err)
		os.Exit(1)
	}
}
