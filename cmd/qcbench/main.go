// Command qcbench regenerates the paper's tables and figures.
//
//	qcbench -exp all            # every experiment at the default scale
//	qcbench -exp table2         # one experiment
//	qcbench -exp fig10 -small   # CI-sized run
//	qcbench -list               # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"qcsim/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	small := flag.Bool("small", false, "run at the fast CI scale")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "export figure data as CSV files into this directory")
	jsonPath := flag.String("json", "", "write a machine-readable snapshot of the structured experiments (sweep, sampling, crossover, spill) to this file")
	diffPath := flag.String("diff", "", "diff this run's snapshot against a committed baseline (e.g. BENCH_8.json) and exit 1 on tracked-row regressions")
	diffTol := flag.Float64("diff-tol", 0.20, "regression tolerance for -diff: fail on a move past this fraction in the harmful direction")
	workers := flag.Int("workers", 0, "worker goroutines per rank in simulator runs (0 = NumCPU/ranks)")
	sweeps := flag.Bool("sweeps", true, "use the sweep scheduler in simulator runs (off reproduces the paper's one-pass-per-gate cost model)")
	backendName := flag.String("backend", "", "restrict the crossover experiment to one engine: mps|compressed (default: both)")
	bondDim := flag.Int("bond-dim", 0, "MPS bond-dimension cap χ for the crossover experiment (0 = the scale's default)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	opt := bench.Default()
	if *small {
		opt = bench.Small()
	}
	opt.Workers = *workers
	opt.DisableSweeps = !*sweeps
	opt.Backend = *backendName
	if *bondDim > 0 {
		opt.BondDim = *bondDim
	}
	if *csvDir != "" {
		if err := bench.ExportCSV(*csvDir, opt); err != nil {
			fmt.Fprintf(os.Stderr, "qcbench: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV data written to %s\n", *csvDir)
		return
	}
	if *jsonPath != "" || *diffPath != "" {
		snap, err := bench.BuildSnapshot(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qcbench: json snapshot: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath != "" {
			if err := bench.WriteSnapshotFile(*jsonPath, snap); err != nil {
				fmt.Fprintf(os.Stderr, "qcbench: json snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("JSON snapshot written to %s\n", *jsonPath)
		}
		if *diffPath != "" {
			old, err := bench.ReadSnapshot(*diffPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qcbench: diff baseline: %v\n", err)
				os.Exit(1)
			}
			regs, err := bench.DiffSnapshots(old, snap, *diffTol)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qcbench: diff: %v\n", err)
				os.Exit(1)
			}
			if len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "qcbench: %d tracked-row regression(s) vs %s:\n", len(regs), *diffPath)
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
				os.Exit(1)
			}
			fmt.Printf("no tracked-row regressions vs %s (tolerance %.0f%%)\n", *diffPath, *diffTol*100)
		}
		return
	}
	run := func(e bench.Experiment) {
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "qcbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "qcbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
