// Command qcserve runs the multi-tenant simulation server: sessions
// over the qcsim facade with per-tenant memory budgets and rate
// limits, admission-controlled job submission, SSE progress streams,
// suspend/resume of idle sessions, and a /metrics surface. See
// internal/server/protocol.go for the wire protocol.
//
// Usage:
//
//	qcserve -addr :8080 \
//	        -tenant alice:1GiB:10:20 -tenant bob:256MiB \
//	        -global-budget 4GiB -disk-budget 64GiB \
//	        -queue 128 -workers 4 -idle-suspend 5m -dir /var/lib/qcserve
//
// Each -tenant is name:budget[:rate[:burst]] — budget takes byte-size
// suffixes (KiB/MiB/GiB or KB/MB/GB, or a plain byte count; 0 =
// unlimited), rate is job submissions per second (0 = unlimited), and
// burst is the token-bucket depth. SIGINT/SIGTERM shut down
// gracefully: the queue drains, live sessions suspend to checkpoints,
// and (with no -dir) the temp data directory is removed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qcsim/internal/server"
)

// parseBytes parses "512", "64KiB", "1.5GiB", "2GB" into bytes.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		mult   float64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	}
	mult := 1.0
	num := s
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative byte size %q", s)
	}
	return int64(v * mult), nil
}

// parseTenant parses name:budget[:rate[:burst]].
func parseTenant(s string) (server.TenantConfig, error) {
	var tc server.TenantConfig
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
		return tc, fmt.Errorf("bad -tenant %q: want name:budget[:rate[:burst]]", s)
	}
	tc.Name = parts[0]
	budget, err := parseBytes(parts[1])
	if err != nil {
		return tc, fmt.Errorf("bad -tenant %q: %w", s, err)
	}
	tc.MemoryBudget = budget
	if len(parts) >= 3 {
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate < 0 {
			return tc, fmt.Errorf("bad -tenant %q: rate %q", s, parts[2])
		}
		tc.RatePerSec = rate
	}
	if len(parts) == 4 {
		burst, err := strconv.Atoi(parts[3])
		if err != nil || burst < 0 {
			return tc, fmt.Errorf("bad -tenant %q: burst %q", s, parts[3])
		}
		tc.Burst = burst
	}
	return tc, nil
}

// tenantList collects repeated -tenant flags.
type tenantList []server.TenantConfig

func (tl *tenantList) String() string { return fmt.Sprint(*tl) }
func (tl *tenantList) Set(s string) error {
	tc, err := parseTenant(s)
	if err != nil {
		return err
	}
	*tl = append(*tl, tc)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		globalStr   = flag.String("global-budget", "0", "process-wide resident-bytes cap (0 = unlimited)")
		diskStr     = flag.String("disk-budget", "0", "disk bytes for the spill admission route (0 = disabled)")
		queue       = flag.Int("queue", 64, "job queue depth")
		workers     = flag.Int("workers", 2, "worker pool size")
		idleSuspend = flag.Duration("idle-suspend", 0, "suspend sessions idle longer than this (0 = never)")
		dir         = flag.String("dir", "", "data directory for checkpoints and spill files (default: fresh temp dir, removed at shutdown)")
		tenants     tenantList
	)
	flag.Var(&tenants, "tenant", "tenant spec name:budget[:rate[:burst]] (repeatable)")
	flag.Parse()

	globalBudget, err := parseBytes(*globalStr)
	if err != nil {
		log.Fatalf("qcserve: -global-budget: %v", err)
	}
	diskBudget, err := parseBytes(*diskStr)
	if err != nil {
		log.Fatalf("qcserve: -disk-budget: %v", err)
	}
	if len(tenants) == 0 {
		log.Fatal("qcserve: at least one -tenant is required (e.g. -tenant alice:1GiB:10:20)")
	}

	srv, err := server.New(server.Config{
		Tenants:      tenants,
		GlobalBudget: globalBudget,
		DiskBudget:   diskBudget,
		QueueDepth:   *queue,
		Workers:      *workers,
		DataDir:      *dir,
		IdleSuspend:  *idleSuspend,
	})
	if err != nil {
		log.Fatalf("qcserve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("qcserve: listening on %s (%d tenants, data dir %s)", *addr, len(tenants), srv.DataDir())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("qcserve: %v — draining", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("qcserve: %v", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("qcserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("qcserve: drain: %v", err)
	}
	log.Print("qcserve: stopped")
}
