// Command qcsim runs a benchmark circuit on the compressed-state
// simulator and reports the paper's Table 2 metrics for that run: time
// breakdown, compression ratio, fidelity lower bound, and (optionally)
// measurement samples. Ctrl-C cancels the run at the next gate boundary
// and still prints the metrics of the completed prefix.
//
//	qcsim -circuit grover -qubits 13 -budget-frac 0.1
//	qcsim -circuit qft -qubits 16 -ranks 4 -checkpoint state.ckp
//	qcsim -circuit supremacy -qubits 16 -depth 11 -budget-frac 0.375
//	qcsim -circuit ghz -qubits 40 -backend mps -shots 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"time"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	var (
		circuitKind = flag.String("circuit", "ghz", "grover|supremacy|qaoa|qft|random|ghz|hadamard")
		file        = flag.String("file", "", "load the circuit from a .qc text file instead of -circuit")
		dump        = flag.String("dump", "", "write the built circuit to this .qc file and exit")
		qubits      = flag.Int("qubits", 12, "total qubits (grover: must be 2s-3 for search width s)")
		depth       = flag.Int("depth", 11, "cycles (supremacy) or gate count (random)")
		rounds      = flag.Int("rounds", 2, "QAOA rounds / Grover iterations")
		backendName = flag.String("backend", "compressed", "simulation engine: compressed|mps|auto (auto picks per circuit)")
		bondDim     = flag.Int("bond-dim", 64, "MPS bond-dimension cap χ (mps/auto backends)")
		ranks       = flag.Int("ranks", 1, "SPMD ranks (power of two)")
		workers     = flag.Int("workers", 0, "worker goroutines per rank over the block loop (0 = NumCPU/ranks)")
		blockAmps   = flag.Int("block", 4096, "amplitudes per block (power of two)")
		budgetFrac  = flag.Float64("budget-frac", 0, "per-run memory budget as a fraction of 2^(n+4) bytes (0 = unlimited)")
		cache       = flag.Int("cache", 64, "compressed block cache lines (0 = off)")
		codec       = flag.String("codec", "", "lossy codec name or alias (default: the paper's Solution C; see qccompress -list)")
		seed        = flag.Int64("seed", 1, "randomness seed")
		shots       = flag.Int("shots", 0, "sample this many outcomes at the end (streams from the compressed state; works at any register width)")
		sampleCache = flag.Int("sample-cache", 8, "decompressed blocks the sampler keeps hot")
		checkpoint  = flag.String("checkpoint", "", "write a checkpoint file after the run")
		resume      = flag.String("resume", "", "load a checkpoint file before the run")
		uncomp      = flag.Bool("uncompressed", false, "run the uncompressed baseline")
		spillDir    = flag.String("spill", "", "spill directory: keep at most -spill-ram bytes of compressed blocks per rank in RAM, the rest in temp files here (removed on exit)")
		spillRAM    = flag.Int64("spill-ram", 0, "per-rank resident budget in bytes for -spill (0 = adopt the -budget-frac budget)")
		noise       = flag.Float64("noise", 0, "per-gate depolarizing probability")
		fuse        = flag.Bool("fuse", false, "fuse adjacent single-qubit gates before execution")
		sweeps      = flag.Bool("sweeps", true, "batch runs of block-local gates into one codec pass per block (off reproduces the paper's one-pass-per-gate cost model)")
		batchK      = flag.Int("batch", 0, "run a K-variant lockstep batch of the parameterized ansatz (-circuit qaoa or vqe), one seeded binding per variant")
		grad        = flag.Bool("grad", false, "compute the parameter-shift MAXCUT gradient of the QAOA ansatz (-circuit qaoa) in one lockstep batch")
		transport   = flag.String("transport", "inprocess", "rank runtime: inprocess (goroutine ranks) or tcp (one worker process per rank)")
		workerCmd   = flag.String("worker-bin", "", "worker binary the tcp transport spawns per rank (default: this binary re-executed in worker mode)")
		rankWorker  = flag.Bool("rank-worker", false, "serve as a spawned tcp-transport rank worker (internal; reads $QCSIM_COORD_ADDR) and exit")
	)
	flag.Parse()

	if *rankWorker {
		if err := qcsim.RankWorker(os.Getenv("QCSIM_COORD_ADDR")); err != nil {
			fail(err)
		}
		return
	}

	variational := *grad || *batchK > 0
	var cir *circuit.Circuit
	var err error
	if variational {
		if *file != "" || *dump != "" {
			fail(errors.New("-batch/-grad build their own parameterized ansatz; -file and -dump do not apply"))
		}
		switch {
		case *circuitKind == "qaoa":
			cir = circuit.QAOAAnsatz(*qubits, *rounds, *seed)
		case *circuitKind == "vqe" && !*grad:
			cir = circuit.VQEAnsatz(*qubits, *rounds)
		case *grad:
			fail(errors.New("-grad needs -circuit qaoa (the MAXCUT observable)"))
		default:
			fail(fmt.Errorf("-batch needs -circuit qaoa or vqe, not %q", *circuitKind))
		}
	} else if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		cir, err = circuit.Parse(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		cir, err = buildCircuit(*circuitKind, *qubits, *depth, *rounds, *seed)
		if err != nil {
			fail(err)
		}
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		if err := circuit.Serialize(f, cir); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d-qubit, %d-gate circuit to %s\n", cir.N, len(cir.Gates), *dump)
		return
	}
	// Fuse here rather than via WithGateFusion so every gate count the
	// CLI prints (total, completed-on-interrupt, ms/gate) lives in the
	// same post-fusion domain.
	if *fuse {
		cir = circuit.FuseSingleQubitGates(cir)
	}
	req := qcsim.MemoryRequirement(cir.N)
	var perRank int64
	if *budgetFrac > 0 {
		perRank = int64(req * *budgetFrac / float64(*ranks))
	}
	opts := []qcsim.Option{
		qcsim.WithBackend(*backendName),
		qcsim.WithBondDim(*bondDim),
		qcsim.WithRanks(*ranks),
		qcsim.WithWorkers(*workers),
		qcsim.WithBlockAmps(*blockAmps),
		qcsim.WithMemoryBudget(perRank),
		qcsim.WithCache(*cache),
		qcsim.WithUncompressed(*uncomp),
		qcsim.WithNoise(*noise),
		qcsim.WithSeed(*seed),
		qcsim.WithSweeps(*sweeps),
		qcsim.WithSampleCache(*sampleCache),
	}
	if *codec != "" {
		opts = append(opts, qcsim.WithCodec(*codec))
	}
	if *spillDir != "" || *spillRAM > 0 {
		opts = append(opts, qcsim.WithSpill(*spillDir, *spillRAM))
	}
	if *transport != "" && *transport != qcsim.TransportInProcess {
		opts = append(opts, qcsim.WithTransport(*transport))
		argv := []string{*workerCmd}
		if *workerCmd == "" {
			// Self-host the workers: re-execute this binary in its
			// hidden worker mode, so a tcp run needs no second install.
			exe, err := os.Executable()
			if err != nil {
				fail(err)
			}
			argv = []string{exe, "-rank-worker"}
		}
		opts = append(opts, qcsim.WithWorkerCommand(argv...))
	}
	sim, err := qcsim.New(cir.N, opts...)
	if err != nil {
		fail(err)
	}
	defer sim.Close()
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fail(err)
		}
		if err := sim.Load(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("resumed from %s (%d gates already executed)\n", *resume, sim.GatesRun())
	}

	label := *circuitKind
	if *file != "" {
		label = *file
	}
	fmt.Printf("circuit %s: %d qubits, %d gates; state requires %s uncompressed\n",
		label, cir.N, len(cir.Gates), qcsim.FormatBytes(req))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if variational {
		runVariational(ctx, sim, cir, *circuitKind, *rounds, *seed, *batchK, *grad)
		return
	}
	start := time.Now()
	res, err := sim.Run(ctx, cir)
	elapsed := time.Since(start)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Printf("interrupted: %d/%d gates completed; metrics cover the prefix\n", res.Gates, len(cir.Gates))
	case errors.Is(err, qcsim.ErrBudgetExceeded):
		fmt.Printf("warning: %v\n", err)
	default:
		fail(err)
	}

	st := res.Stats
	tot := st.TotalTime().Seconds()
	if tot == 0 {
		tot = 1
	}
	gates := res.Gates
	if gates == 0 {
		gates = 1
	}
	fmt.Printf("backend             %s\n", sim.Backend())
	fmt.Printf("total time          %v  (%.2f ms/gate)\n", elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(gates))
	fmt.Printf("  compression       %5.1f%%\n", 100*st.CompressTime.Seconds()/tot)
	fmt.Printf("  decompression     %5.1f%%\n", 100*st.DecompressTime.Seconds()/tot)
	fmt.Printf("  communication     %5.1f%%\n", 100*st.CommTime.Seconds()/tot)
	fmt.Printf("  computation       %5.1f%%\n", 100*st.ComputeTime.Seconds()/tot)
	fmt.Printf("compressed footprint %s (ratio %.2f, min %.2f)\n",
		qcsim.FormatBytes(float64(res.Footprint)), res.CompressionRatio,
		st.MinCompressionRatio(req))
	if sim.Backend() == qcsim.BackendMPS {
		fmt.Printf("fidelity lower bound %.6f (bond dim cap %d, %d truncating SVDs)\n",
			res.FidelityLowerBound, *bondDim, st.Escalations)
	} else {
		fmt.Printf("fidelity lower bound %.6f (error level %d, %d escalations)\n",
			res.FidelityLowerBound, st.FinalLevel, st.Escalations)
	}
	if st.CacheLookups > 0 {
		fmt.Printf("block cache          %d/%d hits\n", st.CacheHits, st.CacheLookups)
	}
	if st.Sweeps > 0 {
		fmt.Printf("sweep scheduler      %d sweeps over %d gates; %d codec passes saved (%d codec calls total)\n",
			st.Sweeps, st.SweepGates, st.CodecPassesSaved, st.CompressCalls+st.DecompressCalls)
	}
	if st.SpillWrites > 0 || st.SpillReads > 0 {
		fmt.Printf("spill tier           %s on disk now, resident high-water %s; %d writes, %d demand reads, %d/%d prefetch hits\n",
			qcsim.FormatBytes(float64(st.SpilledBytes)), qcsim.FormatBytes(float64(st.MaxResident)),
			st.SpillWrites, st.SpillReads, st.PrefetchHits, st.PrefetchHits+st.SpillReads)
	}
	if ms := sim.Measurements(); len(ms) > 0 {
		fmt.Printf("measurements         %v\n", ms)
	}
	if *shots > 0 {
		sp, err := sim.Sampler()
		if err != nil {
			fail(err)
		}
		samples, err := sp.Sample(*shots)
		if err != nil {
			fail(err)
		}
		counts := map[uint64]int{}
		for _, v := range samples {
			counts[v]++
		}
		type outcome struct {
			v uint64
			n int
		}
		top := make([]outcome, 0, len(counts))
		for v, n := range counts {
			top = append(top, outcome{v, n})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].n != top[j].n {
				return top[i].n > top[j].n
			}
			return top[i].v < top[j].v
		})
		fmt.Printf("samples (%d shots, total mass %.6f):\n", *shots, sp.TotalMass())
		for i, o := range top {
			if i >= 10 {
				fmt.Printf("  ... %d more distinct outcomes\n", len(top)-i)
				break
			}
			fmt.Printf("  |%0*b⟩: %d\n", cir.N, o.v, o.n)
		}
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fail(err)
		}
		if err := sim.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
}

// runVariational drives the -batch / -grad modes: a K-variant lockstep
// RunBatch of the ansatz at seeded bindings, or the parameter-shift
// MAXCUT gradient (itself one lockstep batch of 1+2·occurrences
// variants).
func runVariational(ctx context.Context, sim *qcsim.Simulator, ansatz *circuit.Circuit,
	kind string, rounds int, seed int64, k int, grad bool) {
	edges := circuit.RandomRegularGraph(ansatz.N, 4, seed)
	if grad {
		values := circuit.QAOAAngles(rounds, seed)
		start := time.Now()
		res, err := sim.Gradient(ctx, ansatz, values, qcsim.MaxCutObservable(edges))
		if err != nil {
			fail(err)
		}
		fmt.Printf("parameter-shift gradient: %d evaluations in one lockstep batch, %v\n",
			res.Evaluations, time.Since(start).Round(time.Millisecond))
		fmt.Printf("MAXCUT energy        %.6f\n", res.Energy)
		for i, g := range res.Grad {
			fmt.Printf("  ∂E/∂θ[%d]          %+.6f\n", i, g)
		}
		return
	}

	bindings := make([][]float64, k)
	for v := range bindings {
		bindings[v] = variantBinding(kind, ansatz, rounds, seed, v)
	}
	start := time.Now()
	results, err := sim.RunBatch(ctx, ansatz, bindings)
	elapsed := time.Since(start)
	switch {
	case err == nil:
	case errors.Is(err, qcsim.ErrBudgetExceeded):
		fmt.Printf("warning: %v\n", err)
	default:
		fail(err)
	}
	var codecCalls, shared int64
	for _, r := range results {
		codecCalls += r.Stats.CompressCalls + r.Stats.DecompressCalls
		shared += r.Stats.CodecPassesShared
	}
	fmt.Printf("lockstep batch: %d variants × %d gates in %v\n",
		k, results[0].Gates, elapsed.Round(time.Millisecond))
	fmt.Printf("codec calls          %d total across the batch; %d passes served from the shared cache\n",
		codecCalls, shared)
	variants := sim.BatchVariants()
	for v, r := range results {
		line := fmt.Sprintf("variant %-2d           fidelity ≥ %.6f, footprint %s",
			v, r.FidelityLowerBound, qcsim.FormatBytes(float64(r.Footprint)))
		if kind == "qaoa" {
			if e, err := variants[v].MaxCutEnergy(edges); err == nil {
				line += fmt.Sprintf(", MAXCUT energy %.6f", e)
			}
		}
		fmt.Println(line)
	}
}

// variantBinding draws variant v's parameter vector: the seeded QAOA
// angle schedule for the qaoa ansatz, uniform angles in [0, π) for vqe.
func variantBinding(kind string, ansatz *circuit.Circuit, rounds int, seed int64, v int) []float64 {
	if kind == "qaoa" {
		return circuit.QAOAAngles(rounds, seed+int64(v))
	}
	rng := rand.New(rand.NewSource(seed + int64(v)))
	values := make([]float64, ansatz.NumParams())
	for i := range values {
		values[i] = rng.Float64() * math.Pi
	}
	return values
}

func buildCircuit(kind string, qubits, depth, rounds int, seed int64) (*circuit.Circuit, error) {
	switch kind {
	case "grover":
		s, err := circuit.GroverSearchQubits(qubits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		return circuit.Grover(s, uint64(rng.Int63n(1<<uint(s))), rounds), nil
	case "supremacy":
		rows, cols := factor(qubits)
		return circuit.Supremacy(rows, cols, depth, seed), nil
	case "qaoa":
		return circuit.QAOA(qubits, rounds, seed), nil
	case "qft":
		return circuit.QFT(qubits, seed), nil
	case "random":
		return circuit.RandomCircuit(qubits, depth, seed), nil
	case "ghz":
		return circuit.GHZ(qubits), nil
	case "hadamard":
		return circuit.HadamardAll(qubits), nil
	default:
		return nil, fmt.Errorf("unknown circuit %q", kind)
	}
}

func factor(n int) (int, int) {
	best := [2]int{1, n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = [2]int{r, n / r}
		}
	}
	return best[0], best[1]
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "qcsim: %v\n", err)
	os.Exit(1)
}
