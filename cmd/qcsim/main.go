// Command qcsim runs a benchmark circuit on the compressed-state
// simulator and reports the paper's Table 2 metrics for that run: time
// breakdown, compression ratio, fidelity lower bound, and (optionally)
// measurement samples.
//
//	qcsim -circuit grover -qubits 13 -budget-frac 0.1
//	qcsim -circuit qft -qubits 16 -ranks 4 -checkpoint state.ckp
//	qcsim -circuit supremacy -qubits 16 -depth 11 -budget-frac 0.375
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

func main() {
	var (
		circuit    = flag.String("circuit", "ghz", "grover|supremacy|qaoa|qft|random|ghz|hadamard")
		file       = flag.String("file", "", "load the circuit from a .qc text file instead of -circuit")
		dump       = flag.String("dump", "", "write the built circuit to this .qc file and exit")
		qubits     = flag.Int("qubits", 12, "total qubits (grover: must be 2s-3 for search width s)")
		depth      = flag.Int("depth", 11, "cycles (supremacy) or gate count (random)")
		rounds     = flag.Int("rounds", 2, "QAOA rounds / Grover iterations")
		ranks      = flag.Int("ranks", 1, "SPMD ranks (power of two)")
		workers    = flag.Int("workers", 0, "worker goroutines per rank over the block loop (0 = NumCPU/ranks)")
		blockAmps  = flag.Int("block", 4096, "amplitudes per block (power of two)")
		budgetFrac = flag.Float64("budget-frac", 0, "per-run memory budget as a fraction of 2^(n+4) bytes (0 = unlimited)")
		cache      = flag.Int("cache", 64, "compressed block cache lines (0 = off)")
		seed       = flag.Int64("seed", 1, "randomness seed")
		shots      = flag.Int("shots", 0, "sample this many outcomes at the end")
		checkpoint = flag.String("checkpoint", "", "write a checkpoint file after the run")
		resume     = flag.String("resume", "", "load a checkpoint file before the run")
		uncomp     = flag.Bool("uncompressed", false, "run the uncompressed baseline")
		noise      = flag.Float64("noise", 0, "per-gate depolarizing probability")
	)
	flag.Parse()

	var cir *quantum.Circuit
	var err error
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		cir, err = quantum.Parse(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		cir, err = buildCircuit(*circuit, *qubits, *depth, *rounds, *seed)
		if err != nil {
			fail(err)
		}
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		if err := quantum.Serialize(f, cir); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d-qubit, %d-gate circuit to %s\n", cir.N, len(cir.Gates), *dump)
		return
	}
	req := core.MemoryRequirement(cir.N)
	var perRank int64
	if *budgetFrac > 0 {
		perRank = int64(req * *budgetFrac / float64(*ranks))
	}
	sim, err := core.New(core.Config{
		Qubits:       cir.N,
		Ranks:        *ranks,
		Workers:      *workers,
		BlockAmps:    *blockAmps,
		MemoryBudget: perRank,
		CacheLines:   *cache,
		Uncompressed: *uncomp,
		Seed:         *seed,
	})
	if err != nil {
		fail(err)
	}
	if *noise > 0 {
		if err := sim.SetNoise(&core.NoiseModel{Prob: *noise}); err != nil {
			fail(err)
		}
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fail(err)
		}
		if err := sim.Load(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("resumed from %s (%d gates already executed)\n", *resume, sim.GatesRun())
	}

	label := *circuit
	if *file != "" {
		label = *file
	}
	fmt.Printf("circuit %s: %d qubits, %d gates; state requires %s uncompressed\n",
		label, cir.N, len(cir.Gates), stats.FormatBytes(req))
	start := time.Now()
	if err := sim.Run(cir); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	st := sim.Stats()
	tot := st.TotalTime().Seconds()
	if tot == 0 {
		tot = 1
	}
	fmt.Printf("total time          %v  (%.2f ms/gate)\n", elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(len(cir.Gates)))
	fmt.Printf("  compression       %5.1f%%\n", 100*st.CompressTime.Seconds()/tot)
	fmt.Printf("  decompression     %5.1f%%\n", 100*st.DecompressTime.Seconds()/tot)
	fmt.Printf("  communication     %5.1f%%\n", 100*st.CommTime.Seconds()/tot)
	fmt.Printf("  computation       %5.1f%%\n", 100*st.ComputeTime.Seconds()/tot)
	fmt.Printf("compressed footprint %s (ratio %.2f, min %.2f)\n",
		stats.FormatBytes(float64(st.CurrentFootprint)), sim.CompressionRatio(),
		st.MinCompressionRatio(req))
	fmt.Printf("fidelity lower bound %.6f (error level %d, %d escalations)\n",
		sim.FidelityLowerBound(), st.FinalLevel, st.Escalations)
	if st.CacheLookups > 0 {
		fmt.Printf("block cache          %d/%d hits\n", st.CacheHits, st.CacheLookups)
	}
	if ms := sim.Measurements(); len(ms) > 0 {
		fmt.Printf("measurements         %v\n", ms)
	}
	if *shots > 0 {
		rng := rand.New(rand.NewSource(*seed + 1))
		samples, err := sim.Sample(rng, *shots)
		if err != nil {
			fail(err)
		}
		counts := map[uint64]int{}
		for _, v := range samples {
			counts[v]++
		}
		fmt.Printf("samples (%d shots):\n", *shots)
		printed := 0
		for v, c := range counts {
			fmt.Printf("  |%0*b⟩: %d\n", cir.N, v, c)
			printed++
			if printed >= 10 {
				fmt.Printf("  ... %d more distinct outcomes\n", len(counts)-printed)
				break
			}
		}
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fail(err)
		}
		if err := sim.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
}

func buildCircuit(kind string, qubits, depth, rounds int, seed int64) (*quantum.Circuit, error) {
	switch kind {
	case "grover":
		s, err := quantum.GroverSearchQubits(qubits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		return quantum.Grover(s, uint64(rng.Int63n(1<<uint(s))), rounds), nil
	case "supremacy":
		rows, cols := factor(qubits)
		return quantum.Supremacy(rows, cols, depth, seed), nil
	case "qaoa":
		return quantum.QAOA(qubits, rounds, seed), nil
	case "qft":
		return quantum.QFT(qubits, seed), nil
	case "random":
		return quantum.RandomCircuit(qubits, depth, seed), nil
	case "ghz":
		return quantum.GHZ(qubits), nil
	case "hadamard":
		return quantum.HadamardAll(qubits), nil
	default:
		return nil, fmt.Errorf("unknown circuit %q", kind)
	}
}

func factor(n int) (int, int) {
	best := [2]int{1, n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = [2]int{r, n / r}
		}
	}
	return best[0], best[1]
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "qcsim: %v\n", err)
	os.Exit(1)
}
