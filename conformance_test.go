package qcsim

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"

	"qcsim/circuit"
	"qcsim/internal/quantum"
)

// TestMain doubles as the TCP-transport worker binary: the transport
// conformance tests spawn copies of this test binary as rank workers,
// and the env marker routes those copies into RankWorker before any
// test runs.
func TestMain(m *testing.M) {
	if os.Getenv("QCSIM_TCP_WORKER") == "1" {
		if err := RankWorker(os.Getenv("QCSIM_COORD_ADDR")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// Cross-backend conformance: the compressed engine, the MPS engine,
// and the dense quantum.State reference are three independent
// implementations of the same semantics. Over a circuit-family ×
// geometry table they must agree on amplitudes, expectation values,
// and sample distributions — the strongest correctness oracle the
// codebase has. Run under -race in CI.

type conformanceCase struct {
	name   string
	qubits int
	build  func() *circuit.Circuit
	// compressed geometries to sweep (ranks, blockAmps).
	geoms [][2]int
	// bondDim is the MPS χ — chosen ≥ 2^(n/2) so the MPS run is exact.
	bondDim int
}

func conformanceTable() []conformanceCase {
	return []conformanceCase{
		{
			name: "ghz10", qubits: 10,
			build:   func() *circuit.Circuit { return circuit.GHZ(10) },
			geoms:   [][2]int{{1, 64}, {2, 32}},
			bondDim: 64,
		},
		{
			name: "qft8", qubits: 8,
			build:   func() *circuit.Circuit { return circuit.QFT(8, 3) },
			geoms:   [][2]int{{1, 32}, {2, 16}},
			bondDim: 64,
		},
		{
			name: "qaoa10-shallow", qubits: 10,
			build:   func() *circuit.Circuit { return circuit.QAOA(10, 1, 5) },
			geoms:   [][2]int{{1, 64}, {4, 16}},
			bondDim: 64,
		},
	}
}

// denseReference runs the circuit on the dense reference state.
func denseReference(t *testing.T, c *circuit.Circuit) []complex128 {
	t.Helper()
	st := quantum.NewState(c.N)
	st.ApplyCircuit(c)
	return st.Amps
}

func denseExpectationZ(amps []complex128, q int) float64 {
	var z float64
	for i, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i>>uint(q)&1 == 0 {
			z += p
		} else {
			z -= p
		}
	}
	return z
}

func denseExpectationZZ(amps []complex128, a, b int) float64 {
	var z float64
	for i, amp := range amps {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		if (i>>uint(a)&1)^(i>>uint(b)&1) == 0 {
			z += p
		} else {
			z -= p
		}
	}
	return z
}

// backendsUnderTest builds one simulator per engine for the case.
func backendsUnderTest(t *testing.T, tc conformanceCase, seed int64) map[string]*Simulator {
	t.Helper()
	sims := make(map[string]*Simulator)
	for _, g := range tc.geoms {
		sim, err := New(tc.qubits,
			WithBackend(BackendCompressed),
			WithRanks(g[0]), WithBlockAmps(g[1]), WithSeed(seed))
		if err != nil {
			t.Fatalf("compressed r%d b%d: %v", g[0], g[1], err)
		}
		sims[fmt.Sprintf("compressed-r%db%d", g[0], g[1])] = sim
	}
	sim, err := New(tc.qubits, WithBackend(BackendMPS), WithBondDim(tc.bondDim), WithSeed(seed))
	if err != nil {
		t.Fatalf("mps: %v", err)
	}
	sims["mps"] = sim
	return sims
}

// TestConformanceAmplitudesAndExpectations checks every engine against
// the dense reference on the full amplitude vector, single- and
// two-point Z expectations, and the MAXCUT objective.
func TestConformanceAmplitudesAndExpectations(t *testing.T) {
	const tol = 1e-9
	for _, tc := range conformanceTable() {
		t.Run(tc.name, func(t *testing.T) {
			cir := tc.build()
			ref := denseReference(t, cir)
			ring := make([]circuit.Edge, tc.qubits)
			for i := range ring {
				ring[i] = circuit.Edge{U: i, V: (i + 1) % tc.qubits}
			}
			var refCut float64
			for _, e := range ring {
				refCut += (1 - denseExpectationZZ(ref, e.U, e.V)) / 2
			}
			for name, sim := range backendsUnderTest(t, tc, 1) {
				t.Run(name, func(t *testing.T) {
					if _, err := sim.Run(context.Background(), cir); err != nil {
						t.Fatal(err)
					}
					amps, err := sim.FullState()
					if err != nil {
						t.Fatal(err)
					}
					for i := range ref {
						if d := cAbs(amps[i] - ref[i]); d > tol {
							t.Fatalf("amplitude %d off by %g (%v vs %v)", i, d, amps[i], ref[i])
						}
					}
					for q := 0; q < tc.qubits; q++ {
						z, err := sim.ExpectationZ(q)
						if err != nil {
							t.Fatal(err)
						}
						if d := math.Abs(z - denseExpectationZ(ref, q)); d > tol {
							t.Fatalf("⟨Z_%d⟩ off by %g", q, d)
						}
						p1, err := sim.ProbabilityOne(q)
						if err != nil {
							t.Fatal(err)
						}
						if d := math.Abs(p1 - (1-denseExpectationZ(ref, q))/2); d > tol {
							t.Fatalf("P(q%d=1) off by %g", q, d)
						}
					}
					for a := 0; a < tc.qubits; a += 3 {
						for b := a + 1; b < tc.qubits; b += 2 {
							zz, err := sim.ExpectationZZ(a, b)
							if err != nil {
								t.Fatal(err)
							}
							if d := math.Abs(zz - denseExpectationZZ(ref, a, b)); d > tol {
								t.Fatalf("⟨Z_%d Z_%d⟩ off by %g", a, b, d)
							}
						}
					}
					cut, err := sim.MaxCutEnergy(ring)
					if err != nil {
						t.Fatal(err)
					}
					if d := math.Abs(cut - refCut); d > tol {
						t.Fatalf("MaxCutEnergy off by %g", d)
					}
					norm, err := sim.Norm()
					if err != nil {
						t.Fatal(err)
					}
					if d := math.Abs(norm - 1); d > 1e-9 {
						t.Fatalf("norm %v", norm)
					}
				})
			}
		})
	}
}

func cAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// tcpWorkerArgv marks the environment so spawned copies of this test
// binary become rank workers, and returns the argv to spawn them with.
func tcpWorkerArgv(t *testing.T) []string {
	t.Helper()
	t.Setenv("QCSIM_TCP_WORKER", "1")
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return []string{exe}
}

// TestConformanceTransports runs every conformance circuit on the
// in-process transport and on loopback TCP (real worker processes, 2
// and 4 ranks) and requires byte-identical results: amplitudes and the
// fidelity ledger compared at the float64-bit level, the deterministic
// stats counters exactly, and the seeded sample stream draw for draw.
func TestConformanceTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const (
		seed      = int64(7)
		blockAmps = 16
		shots     = 128
	)
	argv := tcpWorkerArgv(t)
	for _, tc := range conformanceTable() {
		t.Run(tc.name, func(t *testing.T) {
			for _, ranks := range []int{2, 4} {
				t.Run(fmt.Sprintf("r%d", ranks), func(t *testing.T) {
					cir := tc.build()
					// Workers pinned to 1: amplitudes are worker-count
					// independent, but the cache counters this test
					// compares exactly are not.
					geom := []Option{
						WithRanks(ranks), WithBlockAmps(blockAmps),
						WithWorkers(1), WithCache(8), WithSeed(seed),
					}
					ref, err := New(tc.qubits, geom...)
					if err != nil {
						t.Fatalf("in-process sim: %v", err)
					}
					defer ref.Close()
					sim, err := New(tc.qubits, append(geom,
						WithTransport(TransportTCP), WithWorkerCommand(argv...))...)
					if err != nil {
						t.Fatalf("tcp sim: %v", err)
					}
					defer sim.Close()
					if got := sim.Transport(); got != TransportTCP {
						t.Fatalf("Transport() = %q, want %q", got, TransportTCP)
					}

					refRes, err := ref.Run(context.Background(), cir)
					if err != nil {
						t.Fatalf("in-process run: %v", err)
					}
					tcpRes, err := sim.Run(context.Background(), cir)
					if err != nil {
						t.Fatalf("tcp run: %v", err)
					}

					refAmps, err := ref.FullState()
					if err != nil {
						t.Fatal(err)
					}
					tcpAmps, err := sim.FullState()
					if err != nil {
						t.Fatal(err)
					}
					for i := range refAmps {
						if math.Float64bits(real(refAmps[i])) != math.Float64bits(real(tcpAmps[i])) ||
							math.Float64bits(imag(refAmps[i])) != math.Float64bits(imag(tcpAmps[i])) {
							t.Fatalf("amplitude %d: in-process %v, tcp %v", i, refAmps[i], tcpAmps[i])
						}
					}
					if math.Float64bits(refRes.FidelityLowerBound) != math.Float64bits(tcpRes.FidelityLowerBound) {
						t.Errorf("ledger: in-process %v, tcp %v", refRes.FidelityLowerBound, tcpRes.FidelityLowerBound)
					}
					if refRes.Gates != tcpRes.Gates {
						t.Errorf("gates: in-process %d, tcp %d", refRes.Gates, tcpRes.Gates)
					}
					if ref.BytesMoved() != sim.BytesMoved() {
						t.Errorf("bytes moved: in-process %d, tcp %d", ref.BytesMoved(), sim.BytesMoved())
					}
					rs, ts := refRes.Stats, tcpRes.Stats
					counters := []struct {
						name string
						w, g int64
					}{
						{"Gates", int64(rs.Gates), int64(ts.Gates)},
						{"Sweeps", int64(rs.Sweeps), int64(ts.Sweeps)},
						{"SweepGates", int64(rs.SweepGates), int64(ts.SweepGates)},
						{"CompressCalls", int64(rs.CompressCalls), int64(ts.CompressCalls)},
						{"DecompressCalls", int64(rs.DecompressCalls), int64(ts.DecompressCalls)},
						{"CacheLookups", int64(rs.CacheLookups), int64(ts.CacheLookups)},
						{"CacheHits", int64(rs.CacheHits), int64(ts.CacheHits)},
						{"Escalations", int64(rs.Escalations), int64(ts.Escalations)},
						{"FinalLevel", int64(rs.FinalLevel), int64(ts.FinalLevel)},
					}
					for _, c := range counters {
						if c.w != c.g {
							t.Errorf("Stats.%s: in-process %d, tcp %d", c.name, c.w, c.g)
						}
					}

					refDraws, err := ref.Sample(shots)
					if err != nil {
						t.Fatal(err)
					}
					tcpDraws, err := sim.Sample(shots)
					if err != nil {
						t.Fatal(err)
					}
					for i := range refDraws {
						if refDraws[i] != tcpDraws[i] {
							t.Fatalf("sample %d: in-process %d, tcp %d", i, refDraws[i], tcpDraws[i])
						}
					}
				})
			}
		})
	}
}

// TestConformanceSampleDistributions checks the per-qubit marginals of
// each backend's seeded sample stream against the dense reference
// probabilities (binomial 5σ bands), plus the exact two-outcome support
// for GHZ, plus the per-backend seeding contract: same seed ⇒
// bit-identical draws, on a rebuilt simulator.
func TestConformanceSampleDistributions(t *testing.T) {
	const shots = 8192
	for _, tc := range conformanceTable() {
		t.Run(tc.name, func(t *testing.T) {
			cir := tc.build()
			ref := denseReference(t, cir)
			for name, sim := range backendsUnderTest(t, tc, 42) {
				t.Run(name, func(t *testing.T) {
					if _, err := sim.Run(context.Background(), cir); err != nil {
						t.Fatal(err)
					}
					draws, err := sim.Sample(shots)
					if err != nil {
						t.Fatal(err)
					}
					if len(draws) != shots {
						t.Fatalf("got %d draws", len(draws))
					}
					for q := 0; q < tc.qubits; q++ {
						ones := 0
						for _, x := range draws {
							ones += int(x >> uint(q) & 1)
						}
						p := (1 - denseExpectationZ(ref, q)) / 2
						sigma := math.Sqrt(float64(shots)*p*(1-p)) + 1
						if d := math.Abs(float64(ones) - float64(shots)*p); d > 5*sigma {
							t.Fatalf("qubit %d: %d ones of %d, want ≈%g (±%g)",
								q, ones, shots, float64(shots)*p, 5*sigma)
						}
					}
					if tc.name == "ghz10" {
						all := uint64(1)<<uint(tc.qubits) - 1
						for _, x := range draws {
							if x != 0 && x != all {
								t.Fatalf("GHZ draw %b outside the two-outcome support", x)
							}
						}
					}
					// Seeding contract: a rebuilt same-seed simulator
					// reproduces the stream bit-for-bit.
					resim := backendsUnderTest(t, tc, 42)[name]
					if _, err := resim.Run(context.Background(), cir); err != nil {
						t.Fatal(err)
					}
					redraws, err := resim.Sample(shots)
					if err != nil {
						t.Fatal(err)
					}
					for i := range draws {
						if draws[i] != redraws[i] {
							t.Fatalf("same-seed rebuild diverged at draw %d", i)
						}
					}
				})
			}
		})
	}
}
