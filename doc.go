// Package qcsim is the public facade of a Go reproduction of
// "Full-State Quantum Circuit Simulation by Using Data Compression"
// (Wu et al., SC 2019): a Schrödinger-style state-vector simulator that
// keeps every block of amplitudes compressed in memory, trading
// computation time and a bounded amount of fidelity for memory space.
// The facade drives pluggable engines: the compressed full-state core
// (default) and a matrix-product-state (tensor-network) backend — the
// paper's §2.2 comparator — selected with WithBackend.
//
// # Usage
//
// Construct a simulator with New and functional options, build circuits
// with the qcsim/circuit package, and execute with Run (or RunProgress
// for per-gate progress events):
//
//	sim, err := qcsim.New(16,
//		qcsim.WithRanks(4),
//		qcsim.WithMemoryBudget(1<<16),
//		qcsim.WithSeed(1),
//	)
//	if err != nil { ... }
//	res, err := sim.Run(ctx, circuit.GHZ(16))
//
// Run checks ctx at every sweep boundary (every gate boundary when the
// sweep scheduler is off): cancellation stops execution between sweeps
// on every rank with an error wrapping context.Canceled, and the
// simulator remains fully inspectable over the completed prefix. Codec
// failures mid-run surface the same way — a wrapped error, never a
// panic. Errors are typed sentinels (ErrBadConfig, ErrInvalidQubit,
// ErrBudgetExceeded, ...) usable with errors.Is.
//
// The Result of a run — and Snapshot at any time — expose the paper's
// Table 2 accounting: the compress/decompress/compute/communication
// time breakdown, the compressed footprint and its high-water mark, and
// the Eq. 11 fidelity lower bound Π(1-δᵢ). Amplitude, ProbabilityOne,
// ExpectationZ/ZZ, the statistical assertions, and the seeded Sample
// read the compressed state directly; Save and Load checkpoint the
// compressed blocks as-is (§3.5).
//
// # Sampling
//
// Shot-based readout streams directly from the compressed blocks — the
// full 2^n-amplitude vector is never materialized, so Sample (and the
// reusable Sampler handle) work on registers far past the 26-qubit
// FullState limit. A Sampler builds a two-level CDF in one pass over
// the blocks (per-block probability masses plus their prefix sums);
// each shot then binary-searches the block prefix, decompresses only
// its hit block through a small LRU (WithSampleCache), and resolves the
// offset by an intra-block scan — O(blocks + shots·(log blocks +
// blockAmps)) total.
//
// Normalization contract: every draw is scaled by the CDF's true total
// mass Σ|aᵢ|² (Sampler.TotalMass). Lossy compression legitimately lets
// the state's norm drift below 1; normalizing the draws means outcome
// frequencies always follow the state's actual distribution — no
// probability mass is ever silently reassigned to |0...0⟩ or anywhere
// else. A Sampler describes the state it was built from: after Run,
// Reset, SetBasisState, or Load it reports ErrStaleSampler and a fresh
// one must be built.
//
// # Backend selection
//
// WithBackend chooses the engine at construction; WithBondDim caps the
// MPS bond dimension χ:
//
//	compressed  full 2^n state, every operation, graceful lossy
//	            degradation under WithMemoryBudget (the default)
//	mps         one bond-capped tensor per qubit: O(n·χ²) memory all
//	            the way to the 62-qubit register cap, exact while the
//	            circuit's entanglement fits χ, truncating (with the
//	            ledger recording the loss) beyond it
//	auto        decide at the first Run from the circuit itself
//
// The decision table auto implements — and the one to apply by hand:
//
//	circuit property                  → backend
//	measurement / multi-control gates → compressed (mps reports
//	                                    ErrUnsupportedOp)
//	noise channel, uncompressed mode  → compressed
//	estimated bond dimension ≤ χ      → mps (polynomial memory wins)
//	estimated bond dimension > χ      → compressed (χ would truncate;
//	                                    pointwise error bounds degrade
//	                                    more gracefully)
//
// The estimate is structural: each two-qubit gate can at most double
// the Schmidt rank across the chain cuts it spans, so a circuit whose
// per-cut two-qubit-gate count stays ≤ log2(χ) runs exactly on the MPS.
// GHZ chains (1 gate per cut) and shallow brickwork circuits qualify at
// the full 62-qubit register cap; QFT, supremacy grids, and deep QAOA
// do not. The
// `qcbench -exp crossover` experiment measures exactly this frontier.
//
// # The ErrUnsupportedOp contract
//
// Everything the facade exposes works on the compressed backend. On the
// mps backend, operations that need full-state access — measurement
// gates, gates with more than one control, AssertClassical /
// AssertSuperposition / AssertProduct, and Save/Load — fail with an
// error wrapping ErrUnsupportedOp (errors.Is-able; the chain carries a
// *mps.UnsupportedOpError naming the operation). A rejected gate stops
// the run at that gate boundary with the completed prefix intact, like
// every other mid-run error. Everything else — Amplitude, FullState (to
// 26 qubits), Norm, ProbabilityOne, ExpectationZ/ZZ, MaxCutEnergy,
// Sample/Sampler, Reset, SetBasisState — is first-class on both
// engines, answered on the MPS by tensor contraction instead of block
// decompression.
//
// # Sweep scheduler
//
// The paper's cost model pays one decompress → apply → recompress pass
// over every compressed block for every gate. The sweep scheduler (on
// by default; WithSweeps(false) restores the paper's exact cost model)
// batches each maximal run of consecutive block-local gates — gates
// whose target AND controls all address offset bits, i.e. bits inside
// one block — into a single codec pass per block: decompress once,
// apply all k unitaries, recompress once. A sweep is broken by a
// cross-block or cross-rank target, a control outside the offset bits,
// a measurement, or (with WithNoise) any gate at all, since the
// depolarizing channel must fire after each gate.
//
// Under the lossless codec, sweeps are bit-identical to gate-at-a-time
// execution for every rank and worker count. Under a lossy memory
// budget the state sees fewer truncations, and the fidelity ledger
// charges one (1-δ) factor per sweep — matching the single
// recompression that actually happened — so the Eq. 11 lower bound only
// tightens; escalation (§3.7) is likewise decided once per sweep.
// Stats reports Sweeps, SweepGates, CodecPassesSaved, and the total
// CompressCalls/DecompressCalls the run issued.
//
// # Variant batching
//
// Variational workloads run one circuit shape at many parameter
// settings. Build a parameterized ansatz with the qcsim/circuit
// package (P, PRX/PRY/PRZ/PPhase, QAOAAnsatz, VQEAnsatz), and execute
// K bindings in one lockstep pass with RunBatch:
//
//	ansatz := circuit.QAOAAnsatz(16, 1, seed)
//	results, err := sim.RunBatch(ctx, ansatz, bindings)
//
// The binding contract: every binding must supply the ansatz's
// NumParams values, all bindings share the base circuit's shape
// (circuit.SameShape), and variant v runs with seed
// core.VariantSeed(base, v) — so results are bit-identical to K
// sequential Runs of the bound circuits on fresh simulators carrying
// those seeds. The batch runs on clones of the current state; the
// parent simulator is never mutated, and the variant states stay
// inspectable through BatchVariants until the next batch or Close.
//
// Internally the executor walks the sweep schedule block-index-first —
// decompress each distinct blob once per pass, apply every variant's
// gates, recompress each distinct result once — with a
// content-addressed cache deduplicating codec work across undiverged
// variants. Stats reports CodecPassesShared and VariantCount.
//
// What breaks lockstep: measurement gates and WithNoise interleave the
// variants' random draws, so such batches fall back to sequential
// per-variant execution (identical results, no sharing); shape or
// width mismatches are typed errors before anything runs; and the mps
// backend reports ErrUnsupportedOp — lockstep batching is
// compressed-only.
//
// Gradient evaluates a parameter-shift gradient of a diagonal
// observable (MaxCutObservable) as one lockstep batch — the base
// binding plus ±π/2 shifts per parametric gate occurrence. For
// admission planning, WithVariants(K) makes EstimateCircuit price the
// K-variant worst case (UncompressedBytes ×K, pinned to the
// compressed backend).
//
// # Memory tiers
//
// All block storage goes through one seam (the BlockStore interface in
// internal/blockstore) with two implementations: the default in-RAM
// table, and a tiered RAM → disk store enabled with WithSpill(dir,
// ramBudget). The tiered store caps the resident compressed bytes per
// rank at ramBudget and evicts the coldest blocks to a per-rank temp
// file under dir; blocks hinted by the sweep planner's visit order or
// the sampler's sorted draw order are staged back by a background
// prefetcher before their turn. Eviction is Belady-style: among hinted
// blocks, the one whose next use lies farthest in the future goes
// first. Results are bit-identical to the in-RAM store for every
// codec, geometry, and worker count.
//
// Spilling changes what the §3.7 budget presses on: WithMemoryBudget
// historically bounded the compressed footprint, but with a disk tier
// the footprint may exceed RAM harmlessly, so the ladder becomes
// spill first (no fidelity cost), escalate the error level only when
// the resident set still cannot fit, and report over-budget only when
// both run out. Without WithSpill, resident equals footprint and the
// behavior is exactly the paper's. Disk failures surface as errors
// wrapping ErrSpill; Close releases the spill files (they are also
// removed if New fails partway). Prefetch effectiveness is
// timing-dependent: staging wins when per-block codec work and real
// disk latency dominate — the regime out-of-core states live in —
// while page-cached demand reads at benchmark scale often win the
// race at no cost. Stats reports MaxResident, SpilledBytes,
// SpillWrites/SpillReads, and PrefetchReads/PrefetchHits.
//
// # Codec registry
//
// Compressors are selected by name: WithCodec("sz-a") on a simulator,
// NewCodec for direct use, Codecs for the list. RegisterCodec plugs
// third-party codecs into the same namespace so CLIs and RPC frontends
// can select them by string; see the Codec interface for the contract
// registered factories must honor (self-describing payloads, exact
// output counts, error bounds respected, fresh instance per call).
//
// # Serving
//
// EstimateCircuit prices a prospective (qubits, circuit, options) job
// without allocating any state: the structural bond-dimension bound,
// MPS tensor bytes, the dense worst case 2^(n+4), and the engine the
// auto-router would pick. It exists for serving layers that must
// admit or reject work BEFORE committing memory; cmd/qcserve
// (internal/server) builds a multi-tenant server on it — per-tenant
// memory budgets and rate limits, typed admission codes
// (ADMIT_COMPRESSED / ADMIT_MPS / ADMIT_SPILL / REJECT_BUDGET / ...),
// SSE progress streams, and idle-session suspend/resume over the
// Save/Load checkpoint path. See internal/server/protocol.go for the
// wire protocol and the README's Serving section for the lifecycle.
//
// After Close, every Simulator method reports ErrClosed; Close itself
// stays idempotent. Serving layers rely on this to make
// use-after-suspend a typed error rather than a crash.
//
// # Module layout
//
// This package and qcsim/circuit (plus qcsim/bench, the experiment
// harness handle) are the supported API; everything under internal/ is
// implementation. The simulator engine lives in internal/core; the
// compressor suite (the paper's Solutions A-D plus SZ/ZFP/FPZIP-model
// comparators) in internal/compress/...; circuit representation and the
// dense reference simulator in internal/quantum; the SPMD rank
// runtime in internal/mpi (the transport contract, its in-process
// goroutine implementation, and the real-process TCP transport in
// internal/mpi/tcpnet); the distributed-run orchestration
// (coordinator, workers, wire protocol) in internal/distrib; the
// experiment harness that regenerates every table and figure of the
// paper in internal/harness; and the qcserve multi-tenant serving
// subsystem in internal/server.
//
// # Static analysis
//
// The layering above, and the repo's other architectural invariants
// (block storage behind blockstore.Store, typed error chains on this
// facade, deterministic randomness in the engine, context discipline),
// are enforced by qclint — a type-aware analyzer suite in the nested
// lint/ module, run in CI and locally with:
//
//	make lint
//
// Exemptions are per-line //qclint:allow <analyzer> <reason>
// directives; the reason is mandatory and audited. See the "Static
// analysis" section of README.md for the invariant catalogue.
//
// # Parallelism
//
// Two knobs mirror the paper's Theta deployment (MPI ranks × OpenMP
// threads): WithRanks partitions the state across SPMD ranks
// (in-process goroutine ranks), and WithWorkers fans each rank's
// decompress → apply-gate → recompress block loop out across a worker
// pool, each worker owning a private scratch-buffer pair (Eq. 8).
// Results — amplitudes, measurement outcomes, and the Eq. 11 fidelity
// ledger — are bit-identical for every worker count.
//
// # Distribution
//
// The rank runtime is a seam, not a binding: every collective the
// engine issues goes through the internal mpi.Comm contract, and
// WithTransport selects who implements it. TransportInProcess (the
// default) runs ranks as goroutines exchanging slices in memory.
// TransportTCP runs every rank as a real OS process, meshed pairwise
// over TCP, behind the same contract:
//
//	sim, err := qcsim.New(16,
//		qcsim.WithRanks(4),
//		qcsim.WithTransport(qcsim.TransportTCP),
//	)
//
// Each Run then spawns one worker process per rank (the qcrank
// command by default; WithWorkerCommand overrides the argv, and
// cmd/qcsim re-executes itself), ships each worker the job spec plus
// that rank's compressed blocks, lets the workers execute the circuit
// in lockstep over their TCP mesh, and merges the per-rank deltas
// back into this simulator. For a single Run on a fresh state the
// result is bit-identical to the in-process transport — amplitudes,
// the fidelity ledger, measurement outcomes, the deterministic Stats
// counters, and the Table 2 communication volume (BytesMoved) all
// match exactly, which is what the cross-transport conformance suite
// pins.
//
// Failure semantics: a worker that dies mid-run tears its mesh links
// down, the failure cascades, every surviving rank unblocks from
// whatever collective it was in, and Run returns an error on which
// errors.Is(err, ErrRankDied) holds — within a bounded drain window,
// never a deadlock. On any failure (including cancellation) the
// coordinator's state is untouched: deltas are only applied after
// every rank reports success, so a failed distributed Run keeps the
// pre-run state, where the in-process transport keeps the completed
// gate prefix.
//
// Documented divergences, both consequences of workers being fresh
// processes: the measurement and noise rng streams restart at the
// configured seed on every distributed Run (a sequence of Runs with
// measurements can draw differently than the same sequence in
// process), and per-gate progress callbacks (RunProgress) are not
// delivered across the process boundary. RunBatch and Gradient are
// in-process only (ErrUnsupportedOp), and the mps backend does not
// partition across ranks at all, so WithTransport(TransportTCP)
// combined with BackendMPS is an ErrBadConfig at construction.
//
// # Building and testing
//
// The module root is this directory (module qcsim):
//
//	go build ./...
//	go test ./...
//	go test -race ./...
//	go test -bench=. -run '^$' .
//
// Start with README.md, the examples/ directory, and:
//
//	go run ./cmd/qcbench -list
package qcsim
