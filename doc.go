// Package qcsim is a Go reproduction of "Full-State Quantum Circuit
// Simulation by Using Data Compression" (Wu et al., SC 2019): a
// Schrödinger-style state-vector simulator that keeps every block of
// amplitudes compressed in memory, trading computation time and a
// bounded amount of fidelity for memory space.
//
// The simulator lives in internal/core; the compressor suite (the
// paper's Solutions A-D plus SZ/ZFP/FPZIP-model comparators) in
// internal/compress/...; circuit construction and the dense reference
// simulator in internal/quantum; the SPMD rank runtime in internal/mpi;
// and the experiment harness that regenerates every table and figure of
// the paper in internal/harness.
//
// Start with README.md, the examples/ directory, and:
//
//	go run ./cmd/qcbench -list
package qcsim
