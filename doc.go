// Package qcsim is a Go reproduction of "Full-State Quantum Circuit
// Simulation by Using Data Compression" (Wu et al., SC 2019): a
// Schrödinger-style state-vector simulator that keeps every block of
// amplitudes compressed in memory, trading computation time and a
// bounded amount of fidelity for memory space.
//
// # Module layout
//
// The simulator lives in internal/core; the compressor suite (the
// paper's Solutions A-D plus SZ/ZFP/FPZIP-model comparators) in
// internal/compress/...; circuit construction and the dense reference
// simulator in internal/quantum; the SPMD rank runtime in internal/mpi;
// and the experiment harness that regenerates every table and figure of
// the paper in internal/harness.
//
// # Parallelism
//
// Two knobs mirror the paper's Theta deployment (MPI ranks × OpenMP
// threads): core.Config.Ranks partitions the state across SPMD ranks
// (in-process goroutine ranks over internal/mpi), and
// core.Config.Workers fans each rank's decompress → apply-gate →
// recompress block loop out across a worker pool, each worker owning a
// private scratch-buffer pair (Eq. 8). Results — amplitudes,
// measurement outcomes, and the Eq. 11 fidelity ledger — are
// bit-identical for every worker count.
//
// # Building and testing
//
// The module root is this directory (module qcsim):
//
//	go build ./...
//	go test ./...
//	go test -race ./internal/core/
//	go test -bench=. -run '^$' .
//
// Start with README.md, the examples/ directory, and:
//
//	go run ./cmd/qcbench -list
package qcsim
