package qcsim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"qcsim/circuit"
)

// TestSentinelErrors exercises every sentinel through its public
// trigger and checks errors.Is recognition.
func TestSentinelErrors(t *testing.T) {
	mustBe := func(t *testing.T, err, sentinel error) {
		t.Helper()
		if err == nil {
			t.Fatal("expected an error")
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("error %q does not wrap %q", err, sentinel)
		}
	}
	ctx := context.Background()
	sim, err := New(4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ErrBadConfig/qubits", func(t *testing.T) {
		_, err := New(0)
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrBadConfig/ranks", func(t *testing.T) {
		_, err := New(4, WithRanks(3))
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrBadConfig/levels", func(t *testing.T) {
		_, err := New(4, WithErrorLevels(1e-2, 1e-3))
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrBadConfig/noise", func(t *testing.T) {
		_, err := New(4, WithNoise(1.5))
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrBadConfig/nil-circuit", func(t *testing.T) {
		_, err := sim.Run(ctx, nil)
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrBadConfig/negative-shots", func(t *testing.T) {
		_, err := sim.Sample(-1)
		mustBe(t, err, ErrBadConfig)
	})
	t.Run("ErrUnknownCodec", func(t *testing.T) {
		_, err := New(4, WithCodec("no-such-codec"))
		mustBe(t, err, ErrUnknownCodec)
		_, err = NewCodec("no-such-codec")
		mustBe(t, err, ErrUnknownCodec)
	})
	t.Run("ErrCircuitMismatch", func(t *testing.T) {
		_, err := sim.Run(ctx, circuit.GHZ(5))
		mustBe(t, err, ErrCircuitMismatch)
	})
	t.Run("ErrInvalidQubit", func(t *testing.T) {
		_, err := sim.ProbabilityOne(4)
		mustBe(t, err, ErrInvalidQubit)
		_, err = sim.ExpectationZ(-1)
		mustBe(t, err, ErrInvalidQubit)
		_, err = sim.ExpectationZZ(0, 7)
		mustBe(t, err, ErrInvalidQubit)
		_, err = sim.Amplitude(1 << 10)
		mustBe(t, err, ErrInvalidQubit)
		mustBe(t, sim.SetBasisState(1<<10), ErrInvalidQubit)
		mustBe(t, sim.AssertClassical(9, 0, 1e-9), ErrInvalidQubit)
		mustBe(t, sim.AssertSuperposition(9, 1e-9), ErrInvalidQubit)
		mustBe(t, sim.AssertProduct(0, 9, 1e-9), ErrInvalidQubit)
		_, err = sim.MaxCutEnergy([]circuit.Edge{{U: 0, V: 11}})
		mustBe(t, err, ErrInvalidQubit)
	})
	t.Run("ErrBadCheckpoint", func(t *testing.T) {
		mustBe(t, sim.Load(bytes.NewReader([]byte("not a checkpoint"))), ErrBadCheckpoint)
	})
	t.Run("ErrBudgetExceeded", func(t *testing.T) {
		s, err := New(8, WithBlockAmps(32), WithMemoryBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		// The sweep scheduler escalates once per sweep, not per gate, so
		// one Hadamard layer (a single block-local sweep plus a few
		// cross-block gates) climbs the ladder without exhausting it; a
		// second layer runs out of levels and trips the sentinel.
		if _, err = s.Run(ctx, circuit.HadamardAll(8)); err != nil {
			t.Fatal(err)
		}
		_, err = s.Run(ctx, circuit.HadamardAll(8))
		mustBe(t, err, ErrBudgetExceeded)
	})
	t.Run("ErrStateTooLarge", func(t *testing.T) {
		old := maxFullStateQubits
		maxFullStateQubits = 3
		defer func() { maxFullStateQubits = old }()
		_, err := sim.FullState()
		mustBe(t, err, ErrStateTooLarge)
		// Sample streams from the compressed blocks and no longer hits
		// the FullState width guard.
		if _, err := sim.Sample(8); err != nil {
			t.Fatalf("streaming Sample tripped the FullState guard: %v", err)
		}
	})
	t.Run("ErrStaleSampler", func(t *testing.T) {
		s, err := New(4, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := s.Sampler()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Sample(4); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(ctx, circuit.GHZ(4)); err != nil {
			t.Fatal(err)
		}
		_, err = sp.Sample(4)
		mustBe(t, err, ErrStaleSampler)
	})
	t.Run("ErrUnsupportedOp", func(t *testing.T) {
		s, err := New(4, WithBackend(BackendMPS), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Run(ctx, circuit.New(4).Measure(0))
		mustBe(t, err, ErrUnsupportedOp)
	})
	t.Run("context.Canceled", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		_, err := sim.Run(cctx, circuit.GHZ(4))
		mustBe(t, err, context.Canceled)
	})
}

// TestAssertionSentinels: the statistical assertions report typed
// errors at the facade — the engine's untyped messages used to pass
// through errors.Is unrecognized.
func TestAssertionSentinels(t *testing.T) {
	ctx := context.Background()
	fresh := func(t *testing.T) *Simulator {
		t.Helper()
		sim, err := New(2, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sim.Close() })
		return sim
	}

	t.Run("classical-failure", func(t *testing.T) {
		err := fresh(t).AssertClassical(0, 1, 1e-6) // |00⟩ reads 0, not 1
		if !errors.Is(err, ErrAssertionFailed) {
			t.Fatalf("error %q does not wrap ErrAssertionFailed", err)
		}
	})
	t.Run("superposition-failure", func(t *testing.T) {
		err := fresh(t).AssertSuperposition(0, 0.01) // |0⟩ is classical
		if !errors.Is(err, ErrAssertionFailed) {
			t.Fatalf("error %q does not wrap ErrAssertionFailed", err)
		}
	})
	t.Run("product-failure", func(t *testing.T) {
		sim := fresh(t)
		if _, err := sim.Run(ctx, circuit.New(2).H(0).CNOT(0, 1)); err != nil {
			t.Fatal(err)
		}
		err := sim.AssertProduct(0, 1, 0.01) // a Bell pair is maximally entangled
		if !errors.Is(err, ErrAssertionFailed) {
			t.Fatalf("error %q does not wrap ErrAssertionFailed", err)
		}
	})
	t.Run("degenerate-pair", func(t *testing.T) {
		// a == b passes the per-qubit range checks but is not a pair.
		err := fresh(t).AssertProduct(1, 1, 0.01)
		if !errors.Is(err, ErrInvalidQubit) {
			t.Fatalf("error %q does not wrap ErrInvalidQubit", err)
		}
	})
	t.Run("passing-assertions-stay-nil", func(t *testing.T) {
		sim := fresh(t)
		if err := sim.AssertClassical(0, 0, 1e-9); err != nil {
			t.Fatalf("AssertClassical on |00⟩: %v", err)
		}
		if err := sim.AssertProduct(0, 1, 1e-9); err != nil {
			t.Fatalf("AssertProduct on |00⟩: %v", err)
		}
	})
}
