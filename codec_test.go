package qcsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"qcsim/circuit"
)

// TestCodecRoundTripAndBound drives a built-in codec through the public
// interface and verifies the pointwise-relative contract.
func TestCodecRoundTripAndBound(t *testing.T) {
	codec, err := NewCodec("solution-c")
	if err != nil {
		t.Fatal(err)
	}
	if codec.Name() != "xor-c" {
		t.Fatalf("alias resolved to %q", codec.Name())
	}
	data := make([]float64, 512)
	for i := range data {
		data[i] = math.Sin(float64(i)*0.37) / 3
	}
	const bound = 1e-3
	payload, err := codec.Compress(nil, data, CodecOptions{Mode: CodecPointwiseRelative, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(data))
	if err := codec.Decompress(out, payload); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(data[i]-out[i]) > bound*math.Abs(data[i])*(1+1e-12) {
			t.Fatalf("value %d violates the bound: %v -> %v", i, data[i], out[i])
		}
	}
	if r := CodecRatio(len(data), len(payload)); r <= 1 {
		t.Fatalf("ratio %.2f, expected compression", r)
	}
}

// testRawCodec is a trivial self-describing external codec: raw
// little-endian float64s (exact, so every bound holds).
type testRawCodec struct{}

func (testRawCodec) Name() string { return "test-raw" }

func (testRawCodec) Compress(dst []byte, src []float64, _ CodecOptions) ([]byte, error) {
	var b [8]byte
	for _, v := range src {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

func (testRawCodec) Decompress(dst []float64, data []byte) error {
	if len(data) != len(dst)*8 {
		return fmt.Errorf("test-raw: payload %d bytes for %d values", len(data), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return nil
}

// TestRegisterCodec registers a third-party codec and runs the full
// engine with it selected by name.
func TestRegisterCodec(t *testing.T) {
	if err := RegisterCodec("test-raw", func() Codec { return testRawCodec{} }); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range Codecs() {
		if n == "test-raw" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered codec missing from Codecs(): %v", Codecs())
	}
	// Select it by name and force the lossy path with a small budget:
	// the engine runs every lossy level through the external codec.
	sim, err := New(8, WithCodec("test-raw"), WithBlockAmps(32), WithMemoryBudget(1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), circuit.HadamardAll(8))
	if err != nil && !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal(err)
	}
	if res.Stats.Escalations == 0 {
		t.Fatal("budget of 1 byte did not escalate; external codec never exercised")
	}
	// The raw codec is exact, so amplitudes survive the "lossy" levels
	// untouched.
	a, err := sim.Amplitude(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(256)
	if math.Abs(real(a)-want) > 1e-12 {
		t.Fatalf("amplitude %v through external codec, want %v", a, want)
	}
	// Round-trip it through NewCodec as well (covers the double
	// adapter).
	c, err := NewCodec("test-raw")
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, -2, 0.5}
	payload, err := c.Compress(nil, in, CodecOptions{Mode: CodecLossless})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	if err := c.Decompress(out, payload); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("round-trip through registered codec diverged")
		}
	}
}

// TestRegisterCodecRejectsCollisionsAndNil covers the registry's
// error contract.
func TestRegisterCodecRejectsCollisionsAndNil(t *testing.T) {
	for _, name := range []string{"xor-c", "solution-a", ""} {
		if err := RegisterCodec(name, func() Codec { return testRawCodec{} }); err == nil {
			t.Fatalf("registering %q succeeded, want error", name)
		}
	}
	if err := RegisterCodec("test-nil", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := RegisterCodec("test-dup", func() Codec { return testRawCodec{} }); err != nil {
		t.Fatal(err)
	}
	if err := RegisterCodec("test-dup", func() Codec { return testRawCodec{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
