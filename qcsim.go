package qcsim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/stats"
)

// Stats is the engine's accounting: the time breakdown
// (compress/decompress/compute/communication), footprint high-water
// marks, cache behaviour, and error-level escalations that regenerate
// the paper's Table 2.
type Stats = core.Stats

// Simulator is the public handle on a simulation engine. The default
// backend is the compressed full-state engine: a Schrödinger-style
// simulator that keeps the 2^n-amplitude state vector compressed in
// memory at all times (Wu et al., SC'19). WithBackend selects the MPS
// (tensor-network) engine instead — polynomial memory for
// low-entanglement circuits at any register width — or "auto", which
// picks per circuit at the first Run.
//
// Construct with New, execute circuits with Run or RunProgress (state
// persists across calls), inspect with Amplitude / ProbabilityOne /
// Snapshot and friends, sample with Sample, and persist with Save and
// Load. A Simulator is not safe for concurrent use; the compressed
// engine parallelizes internally (WithRanks, WithWorkers).
type Simulator struct {
	qubits int
	// be is the live engine; nil while an auto-backend decision is
	// still pending (see pendingAuto).
	be backend
	// pending defers backend construction for WithBackend("auto") until
	// a circuit is available to analyze.
	pending *pendingAuto
	// sampleCache is the decompressed-block LRU size samplers built from
	// this simulator use (WithSampleCache).
	sampleCache int
	// closed latches after Close: every error-returning method reports
	// ErrClosed instead of touching the torn-down engine.
	closed bool
	// batch holds the retained variant handles of the most recent
	// RunBatch call (see BatchVariants); owned by this simulator and
	// closed with it.
	batch []*Simulator
}

// New builds a simulator for the given register width, initialized to
// |0...0⟩. Invalid configurations report ErrBadConfig (or
// ErrUnknownCodec for an unresolvable WithCodec name).
func New(qubits int, opts ...Option) (*Simulator, error) {
	var st settings
	for _, o := range opts {
		if o != nil {
			o(&st)
		}
	}
	cfg, noiseProb, err := st.resolve(qubits)
	if err != nil {
		return nil, err
	}
	p := &pendingAuto{qubits: qubits, cfg: cfg, noiseProb: noiseProb, bondDim: st.bondDim}
	sim := &Simulator{qubits: qubits, sampleCache: st.sampleCache}
	switch st.backend {
	case BackendAuto:
		// Defer the engine (and its state allocation) to the first Run,
		// but fail fast on configurations neither candidate could use.
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		sim.pending = p
	case BackendMPS:
		// The compressed-engine knobs (ranks, block size, levels, ...)
		// are inert on this backend, but they must still be coherent —
		// a config typo should not pass or fail depending on which
		// backend name it rides in with.
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		sim.be, err = p.build(BackendMPS)
		if err != nil {
			return nil, err
		}
	default: // "" or BackendCompressed
		sim.be, err = p.build(BackendCompressed)
		if err != nil {
			return nil, err
		}
		if st.transport == TransportTCP {
			sim.be = newDistBackend(sim.be.(compressedBackend), cfg, noiseProb, st.workerCmd)
		}
	}
	return sim, nil
}

// Backend returns the name of the engine in use: BackendCompressed or
// BackendMPS, or BackendAuto while an auto simulator's decision is
// still open (no circuit seen yet).
func (s *Simulator) Backend() string {
	if s.pending != nil {
		return BackendAuto
	}
	return s.be.Name()
}

// b returns the live engine. While an auto decision is still open,
// inspection is answered through a provisional MPS: the state so far
// is the product state |basis⟩ — exact at any register width for free
// — and the decision stays with the first Run, which rebuilds the
// engine if the provisional choice was wrong (nothing has executed, so
// nothing is lost; see run and resolveTo).
func (s *Simulator) b() backend {
	if s.be == nil {
		be, err := s.pending.build(BackendMPS)
		if err != nil {
			// Unreachable: the provisional engine is an MPS in a basis
			// state, whose only inputs (qubits, χ, basis) were
			// validated by New and SetBasisState.
			panic(fmt.Sprintf("qcsim: auto backend resolution: %v", err))
		}
		s.be = be
	}
	return s.be
}

// resolveTo closes an open auto decision on the named engine. A
// provisional engine (built for pre-Run inspection) is kept when the
// decision agrees with it and replaced otherwise — it has executed no
// gates, so only its sampler stream position is discarded, and
// samplers built on it are invalidated like any other pre-mutation
// sampler. The recorded basis state is replayed into the new engine.
func (s *Simulator) resolveTo(name string) error {
	if s.be == nil || s.be.Name() != name {
		be, err := s.pending.build(name)
		if err != nil {
			return err
		}
		if old, ok := s.be.(*mpsBackend); ok {
			old.version++
		}
		s.be = be
	}
	s.pending = nil
	return nil
}

// compressedOnly returns the engine for operations only the compressed
// backend supports (Save, Load, the Assert* methods). Needing one
// while an auto decision is open is decisive evidence for the
// compressed engine — exactly like a circuit at Run — so it closes the
// decision in its favor instead of failing on the provisional MPS.
func (s *Simulator) compressedOnly() (backend, error) {
	if s.pending != nil {
		if err := s.resolveTo(BackendCompressed); err != nil {
			return nil, err
		}
	}
	return s.b(), nil
}

// ProgressEvent describes one completed gate of a RunProgress call.
type ProgressEvent struct {
	// Gate is the 0-based index of the gate that just completed.
	Gate int
	// Total is the number of gates in this run (after gate fusion, if
	// enabled).
	Total int
	// Name is the gate's name (e.g. "h", "cx", "measure").
	Name string
	// Target is the gate's target qubit.
	Target int
}

// Result summarizes one Run call. The counters that accumulate across
// calls (Stats, FidelityLowerBound, footprint) reflect the simulator's
// cumulative totals; Gates and Measurements cover this call only.
type Result struct {
	// Gates is the number of gates this call executed (after fusion; on
	// a cancelled run, the completed prefix).
	Gates int
	// Measurements holds the outcomes of measurement gates executed by
	// this call, in order.
	Measurements []int
	// FidelityLowerBound is the running Π(1-δᵢ) ledger (Eq. 11) — 1.0
	// while every gate has executed lossless.
	FidelityLowerBound float64
	// Footprint is the current compressed state size in bytes, summed
	// across ranks.
	Footprint int64
	// CompressionRatio is uncompressed-state-bytes over Footprint.
	CompressionRatio float64
	// Stats is the cumulative aggregate accounting across ranks.
	Stats Stats
}

// Run executes the circuit on the current state. It may be called
// repeatedly; state, stats, and the fidelity ledger accumulate across
// calls.
//
// Cancellation is checked at gate boundaries: if ctx is cancelled the
// run stops between gates on every rank, the returned error wraps
// ctx.Err() (so errors.Is(err, context.Canceled) holds), and the
// returned Result covers the completed prefix — the simulator stays
// fully inspectable. A run that ends with the footprint still over the
// memory budget at the loosest error bound reports ErrBudgetExceeded
// alongside a valid Result.
func (s *Simulator) Run(ctx context.Context, c *circuit.Circuit) (*Result, error) {
	return s.run(ctx, c, nil)
}

// RunProgress is Run with a progress callback invoked after every
// completed gate. fn runs on an engine goroutine and must not call back
// into the Simulator; keep it fast — it sits between gates.
func (s *Simulator) RunProgress(ctx context.Context, c *circuit.Circuit, fn func(ProgressEvent)) (*Result, error) {
	return s.run(ctx, c, fn)
}

// closedErr is the guard every error-returning method calls first: a
// Simulator that has been Closed refuses all further work with the
// typed ErrClosed instead of exhibiting undefined behavior on the
// torn-down engine (spill files removed, stores closed).
func (s *Simulator) closedErr() error {
	if s.closed {
		return ErrClosed
	}
	return nil
}

func (s *Simulator) run(ctx context.Context, c *circuit.Circuit, fn func(ProgressEvent)) (*Result, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadConfig)
	}
	if c.N != s.qubits {
		return nil, fmt.Errorf("%w: circuit has %d qubits, simulator %d", ErrCircuitMismatch, c.N, s.qubits)
	}
	if s.pending != nil && len(c.Gates) > 0 {
		// Auto backend: this circuit is the evidence the decision was
		// waiting for. An empty circuit is no evidence at all — it
		// executes on the provisional engine and leaves the decision
		// open for a circuit with actual gates.
		if err := s.resolveTo(s.pending.choose(c)); err != nil {
			return nil, err
		}
	}
	eng := s.b()
	var ctl core.RunControl
	if ctx == nil {
		//qclint:allow ctxflow nil ctx is the facade's documented "run uncancelled" default
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		// Only contexts that can actually be cancelled pay for the
		// per-gate abort broadcast; context.Background() runs the exact
		// same path as the internal engine's Run.
		ctl.PollAbort = ctx.Err
	}
	if fn != nil {
		ctl.OnGate = func(gi, total int, g circuit.Gate) {
			// A cancelled context means the client is gone: the engine
			// still finishes the sweep in flight (it stops at the next
			// sweep boundary), but no more progress events are
			// delivered — a disconnected RunProgress consumer must not
			// keep receiving callbacks for the trailing gates.
			if ctx.Err() != nil {
				return
			}
			fn(ProgressEvent{Gate: gi, Total: total, Name: g.Name, Target: g.Target})
		}
	}
	gatesBefore := eng.GatesRun()
	measBefore := eng.MeasurementCount()
	runErr := eng.RunControlled(c, ctl)

	all := eng.Measurements()
	res := &Result{
		Gates:              eng.GatesRun() - gatesBefore,
		Measurements:       all[measBefore:],
		FidelityLowerBound: eng.FidelityLowerBound(),
		Footprint:          eng.CompressedFootprint(),
		CompressionRatio:   eng.CompressionRatio(),
		Stats:              eng.Stats(),
	}
	if runErr != nil {
		return res, runErr
	}
	if eng.OverBudget() {
		return res, fmt.Errorf("%w: footprint %s after %d escalations", ErrBudgetExceeded,
			FormatBytes(float64(res.Footprint)), res.Stats.Escalations)
	}
	return res, nil
}

// Snapshot is a point-in-time view of the simulator's cumulative
// accounting — everything Result carries plus geometry and
// communication volume.
type Snapshot struct {
	Qubits             int
	GatesRun           int
	Measurements       []int
	FidelityLowerBound float64
	Footprint          int64
	MaxFootprint       int64
	CompressionRatio   float64
	BytesMoved         int64
	Stats              Stats
}

// Snapshot returns the current cumulative accounting. It never touches
// the compressed blocks, so it is cheap and safe at any scale.
func (s *Simulator) Snapshot() Snapshot {
	be := s.b()
	st := be.Stats()
	return Snapshot{
		Qubits:             s.qubits,
		GatesRun:           be.GatesRun(),
		Measurements:       be.Measurements(),
		FidelityLowerBound: be.FidelityLowerBound(),
		Footprint:          be.CompressedFootprint(),
		MaxFootprint:       st.MaxFootprint,
		CompressionRatio:   be.CompressionRatio(),
		BytesMoved:         be.BytesMoved(),
		Stats:              st,
	}
}

// Qubits returns the register width n.
func (s *Simulator) Qubits() int { return s.qubits }

// Close releases engine resources: with WithSpill active it removes
// the per-rank spill files (failures wrap ErrSpill); otherwise it is
// a no-op. After Close every error-returning method reports ErrClosed
// — the handle is dead, never undefined. Safe to call more than once
// (later calls are no-ops returning nil), and safe on an auto
// simulator whose decision never closed.
func (s *Simulator) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeBatch()
	if s.be == nil {
		return nil
	}
	return s.be.Close()
}

// Reset reinitializes the state to |0...0⟩ and the fidelity ledger to
// 1, keeping the configuration.
func (s *Simulator) Reset() error {
	if err := s.closedErr(); err != nil {
		return err
	}
	if s.pending != nil {
		s.pending.basis = 0
	}
	return s.b().Reset()
}

// SetBasisState reinitializes the state to |idx⟩.
func (s *Simulator) SetBasisState(idx uint64) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	if idx >= 1<<uint(s.qubits) {
		return fmt.Errorf("%w: basis state %d on a %d-qubit register", ErrInvalidQubit, idx, s.qubits)
	}
	if s.pending != nil {
		// Record it for the auto decision's rebuild path, so the
		// chosen engine starts in the same basis state.
		s.pending.basis = idx
	}
	return s.b().SetBasisState(idx)
}

func (s *Simulator) checkQubit(q int) error {
	if q < 0 || q >= s.qubits {
		return fmt.Errorf("%w: qubit %d on a %d-qubit register", ErrInvalidQubit, q, s.qubits)
	}
	return nil
}

// Amplitude returns ⟨idx|ψ⟩, decompressing only the containing block.
func (s *Simulator) Amplitude(idx uint64) (complex128, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	if idx >= 1<<uint(s.qubits) {
		return 0, fmt.Errorf("%w: amplitude index %d on a %d-qubit register", ErrInvalidQubit, idx, s.qubits)
	}
	return s.b().Amplitude(idx)
}

// maxFullStateQubits bounds FullState: past this width the decompressed
// vector itself is gigabytes. A var so tests can exercise the
// ErrStateTooLarge path without building a 27-qubit state. Sample and
// Sampler stream from the compressed blocks and have no such bound.
var maxFullStateQubits = 26

// FullState decompresses and returns the whole state vector. Registers
// wider than 26 qubits report ErrStateTooLarge.
func (s *Simulator) FullState() ([]complex128, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	if s.qubits > maxFullStateQubits {
		return nil, fmt.Errorf("%w: %d qubits would allocate %s", ErrStateTooLarge,
			s.qubits, FormatBytes(MemoryRequirement(s.qubits)))
	}
	return s.b().FullState()
}

// Norm returns Σ|aᵢ|² across the full compressed state (1 up to
// compression error).
func (s *Simulator) Norm() (float64, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	return s.b().Norm()
}

// ProbabilityOne returns P(qubit q = 1) without collapsing the state.
func (s *Simulator) ProbabilityOne(q int) (float64, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	return s.b().ProbabilityOne(q)
}

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) - P(q=1).
func (s *Simulator) ExpectationZ(q int) (float64, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	return s.b().ExpectationZ(q)
}

// ExpectationZZ returns the two-point correlator ⟨Z_a Z_b⟩.
func (s *Simulator) ExpectationZZ(a, b int) (float64, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	if err := s.checkQubit(a); err != nil {
		return 0, err
	}
	if err := s.checkQubit(b); err != nil {
		return 0, err
	}
	return s.b().ExpectationZZ(a, b)
}

// MaxCutEnergy returns the expected cut value Σ_edges (1 - ⟨Z_u Z_v⟩)/2
// of the current state — the QAOA objective over the given graph.
func (s *Simulator) MaxCutEnergy(edges []circuit.Edge) (float64, error) {
	if err := s.closedErr(); err != nil {
		return 0, err
	}
	cut := make([]core.CutEdge, len(edges))
	for i, e := range edges {
		if err := s.checkQubit(e.U); err != nil {
			return 0, err
		}
		if err := s.checkQubit(e.V); err != nil {
			return 0, err
		}
		cut[i] = core.CutEdge{U: e.U, V: e.V}
	}
	return s.b().MaxCutEnergy(cut)
}

// wrapAssert maps the engine's assertion errors onto the public
// sentinels, flattening the core detail into the message (the same
// idiom Sampler uses for ErrStaleSampler).
func wrapAssert(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrAssertFailed):
		return fmt.Errorf("%w: %v", ErrAssertionFailed, err)
	case errors.Is(err, core.ErrInvalidPair):
		return fmt.Errorf("%w: %v", ErrInvalidQubit, err)
	}
	return err
}

// AssertClassical checks that qubit q reads `value` with probability at
// least 1-tol — the statistical-assertion debugging workflow the paper
// motivates.
func (s *Simulator) AssertClassical(q, value int, tol float64) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	if err := s.checkQubit(q); err != nil {
		return err
	}
	be, err := s.compressedOnly()
	if err != nil {
		return err
	}
	return wrapAssert(be.AssertClassical(q, value, tol))
}

// AssertSuperposition checks that qubit q is in an approximately
// uniform superposition: P(1) within tol of 1/2.
func (s *Simulator) AssertSuperposition(q int, tol float64) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	if err := s.checkQubit(q); err != nil {
		return err
	}
	be, err := s.compressedOnly()
	if err != nil {
		return err
	}
	return wrapAssert(be.AssertSuperposition(q, tol))
}

// AssertProduct checks that qubits a and b are approximately
// unentangled in the computational basis (total-variation distance of
// the joint distribution from the product of marginals ≤ tol).
func (s *Simulator) AssertProduct(a, b int, tol float64) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	if err := s.checkQubit(a); err != nil {
		return err
	}
	if err := s.checkQubit(b); err != nil {
		return err
	}
	be, err := s.compressedOnly()
	if err != nil {
		return err
	}
	return wrapAssert(be.AssertProduct(a, b, tol))
}

// Measurements returns the outcomes of every measurement gate executed
// so far, in order.
func (s *Simulator) Measurements() []int { return s.b().Measurements() }

// Sample draws `shots` full-register outcomes from the simulator's own
// seeded stream (WithSeed) without collapsing the state. The draw
// streams from the compressed blocks — the full vector is never
// materialized — so sampling works at any register width. Outcome
// frequencies follow the state's normalized distribution: draws are
// scaled by the true total mass Σ|aᵢ|², so lossy compression shedding
// norm never biases the histogram (toward |0...0⟩ or anywhere else).
// Repeated sampling of an unchanged state is cheaper through a Sampler
// handle, which builds the probability tables once.
func (s *Simulator) Sample(shots int) ([]uint64, error) {
	if shots < 0 {
		return nil, fmt.Errorf("%w: negative shot count %d", ErrBadConfig, shots)
	}
	sp, err := s.Sampler()
	if err != nil {
		return nil, err
	}
	return sp.sample(shots)
}

// Sampler draws shots directly from the backend's probability tables,
// built once at construction. On the compressed backend that is a
// two-level CDF: one pass over the compressed blocks computes per-block
// probability masses, and each shot binary-searches the block prefix
// sums and decompresses only its hit block (through an LRU sized by
// WithSampleCache); draws are normalized by the true total mass, so
// lossy-codec norm loss never skews outcomes. On the mps backend it is
// perfect sampling by qubit-by-qubit conditional contraction over
// precomputed right environments — O(n·χ²) per shot, no 2^n vector.
// Either way, a Sampler reads the state it was built from; once the
// simulator mutates (Run, Reset, SetBasisState, Load), Sample reports
// ErrStaleSampler and a fresh Sampler must be built. Like the
// Simulator, a Sampler is not safe for concurrent use.
type Sampler struct {
	sp backendSampler
}

// Sampler builds the sampling tables for the current state — one
// worker-pool pass over the compressed blocks, or one environment sweep
// over the MPS tensors — never materializing the full vector, so
// shot-based readout works on registers far past what FullState can
// allocate.
func (s *Simulator) Sampler() (*Sampler, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	sp, err := s.b().NewSampler(s.sampleCache)
	if err != nil {
		return nil, err
	}
	return &Sampler{sp: sp}, nil
}

// TotalMass returns the sampler's normalization constant Σ|aᵢ|² at
// build time — 1 up to floating-point rounding while the state is
// lossless, below 1 once lossy compression has shed mass.
func (sp *Sampler) TotalMass() float64 { return sp.sp.TotalMass() }

// Sample draws `shots` outcomes from the simulator's seeded sampling
// stream (WithSeed). The stream is separate from measurement collapse,
// so sampling never perturbs later measurement outcomes.
func (sp *Sampler) Sample(shots int) ([]uint64, error) {
	if shots < 0 {
		return nil, fmt.Errorf("%w: negative shot count %d", ErrBadConfig, shots)
	}
	return sp.sample(shots)
}

func (sp *Sampler) sample(shots int) ([]uint64, error) {
	out, err := sp.sp.Sample(shots)
	if err != nil {
		if errors.Is(err, core.ErrSamplerStale) {
			return nil, fmt.Errorf("%w: %v", ErrStaleSampler, err)
		}
		return nil, err
	}
	return out, nil
}

// Stats returns the cumulative aggregate accounting across ranks.
func (s *Simulator) Stats() Stats { return s.b().Stats() }

// FidelityLowerBound returns the running fidelity ledger Π(1-δᵢ) over
// all executed gates (the paper's Eq. 11).
func (s *Simulator) FidelityLowerBound() float64 { return s.b().FidelityLowerBound() }

// CompressedFootprint returns the current compressed state size in
// bytes, summed across ranks.
func (s *Simulator) CompressedFootprint() int64 { return s.b().CompressedFootprint() }

// CompressionRatio returns uncompressed-state-bytes over the current
// compressed footprint.
func (s *Simulator) CompressionRatio() float64 { return s.b().CompressionRatio() }

// GatesRun returns the number of gates executed so far across all
// runs.
func (s *Simulator) GatesRun() int { return s.b().GatesRun() }

// BytesMoved returns the cumulative cross-rank communication volume in
// bytes.
func (s *Simulator) BytesMoved() int64 { return s.b().BytesMoved() }

// Save writes a self-describing, checksummed checkpoint of the full
// simulator state (compressed blocks as-is, ledger, measurement log) to
// w — the paper's §3.5 wall-time-limit workflow. The mps backend has no
// checkpoint format and reports ErrUnsupportedOp; on an undecided auto
// simulator, needing a checkpoint closes the decision on the
// compressed engine.
func (s *Simulator) Save(w io.Writer) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	be, err := s.compressedOnly()
	if err != nil {
		return err
	}
	return be.Save(w)
}

// Load restores a checkpoint written by Save. The simulator must have
// been built with the same qubit count, ranks, and block size; any
// mismatch, corruption, or undecodable block reports ErrBadCheckpoint
// without modifying the current state. The mps backend reports
// ErrUnsupportedOp; on an undecided auto simulator, a checkpoint is
// compressed-engine state, so Load closes the decision on the
// compressed engine (the -resume-before-Run CLI workflow).
func (s *Simulator) Load(r io.Reader) error {
	if err := s.closedErr(); err != nil {
		return err
	}
	be, err := s.compressedOnly()
	if err != nil {
		return err
	}
	if err := be.Load(r); err != nil {
		if errors.Is(err, ErrUnsupportedOp) || errors.Is(err, ErrSpill) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return nil
}

// MemoryRequirement returns the uncompressed state size in bytes for n
// qubits: 2^(n+4) (the paper's Table 1 arithmetic).
func MemoryRequirement(n int) float64 { return core.MemoryRequirement(n) }

// MaxQubitsForMemory returns the largest register a machine with
// `bytes` of memory can simulate without compression.
func MaxQubitsForMemory(bytes float64) int { return core.MaxQubitsForMemory(bytes) }

// FidelityBound computes the paper's Eq. 11 lower bound analytically
// for a sequence of per-gate error bounds (0 = lossless gate).
func FidelityBound(gateBounds []float64) float64 { return core.FidelityBound(gateBounds) }

// FormatBytes renders a byte count using binary units ("16.0 MB").
func FormatBytes(b float64) string { return stats.FormatBytes(b) }
