package qcsim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/stats"
)

// Stats is the engine's accounting: the time breakdown
// (compress/decompress/compute/communication), footprint high-water
// marks, cache behaviour, and error-level escalations that regenerate
// the paper's Table 2.
type Stats = core.Stats

// Simulator is the public handle on the compressed-state engine: a
// full-state Schrödinger-style simulator that keeps the 2^n-amplitude
// state vector compressed in memory at all times (Wu et al., SC'19).
//
// Construct with New, execute circuits with Run or RunProgress (state
// persists across calls), inspect with Amplitude / ProbabilityOne /
// Snapshot and friends, sample with Sample, and persist with Save and
// Load. A Simulator is not safe for concurrent use; the engine
// parallelizes internally (WithRanks, WithWorkers).
type Simulator struct {
	eng *core.Simulator
	// sampleCache is the decompressed-block LRU size samplers built from
	// this simulator use (WithSampleCache).
	sampleCache int
}

// New builds a simulator for the given register width, initialized to
// |0...0⟩. Invalid configurations report ErrBadConfig (or
// ErrUnknownCodec for an unresolvable WithCodec name).
func New(qubits int, opts ...Option) (*Simulator, error) {
	var st settings
	for _, o := range opts {
		if o != nil {
			o(&st)
		}
	}
	cfg, noiseProb, err := st.resolve(qubits)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if noiseProb > 0 {
		if err := eng.SetNoise(&core.NoiseModel{Prob: noiseProb}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return &Simulator{eng: eng, sampleCache: st.sampleCache}, nil
}

// ProgressEvent describes one completed gate of a RunProgress call.
type ProgressEvent struct {
	// Gate is the 0-based index of the gate that just completed.
	Gate int
	// Total is the number of gates in this run (after gate fusion, if
	// enabled).
	Total int
	// Name is the gate's name (e.g. "h", "cx", "measure").
	Name string
	// Target is the gate's target qubit.
	Target int
}

// Result summarizes one Run call. The counters that accumulate across
// calls (Stats, FidelityLowerBound, footprint) reflect the simulator's
// cumulative totals; Gates and Measurements cover this call only.
type Result struct {
	// Gates is the number of gates this call executed (after fusion; on
	// a cancelled run, the completed prefix).
	Gates int
	// Measurements holds the outcomes of measurement gates executed by
	// this call, in order.
	Measurements []int
	// FidelityLowerBound is the running Π(1-δᵢ) ledger (Eq. 11) — 1.0
	// while every gate has executed lossless.
	FidelityLowerBound float64
	// Footprint is the current compressed state size in bytes, summed
	// across ranks.
	Footprint int64
	// CompressionRatio is uncompressed-state-bytes over Footprint.
	CompressionRatio float64
	// Stats is the cumulative aggregate accounting across ranks.
	Stats Stats
}

// Run executes the circuit on the current state. It may be called
// repeatedly; state, stats, and the fidelity ledger accumulate across
// calls.
//
// Cancellation is checked at gate boundaries: if ctx is cancelled the
// run stops between gates on every rank, the returned error wraps
// ctx.Err() (so errors.Is(err, context.Canceled) holds), and the
// returned Result covers the completed prefix — the simulator stays
// fully inspectable. A run that ends with the footprint still over the
// memory budget at the loosest error bound reports ErrBudgetExceeded
// alongside a valid Result.
func (s *Simulator) Run(ctx context.Context, c *circuit.Circuit) (*Result, error) {
	return s.run(ctx, c, nil)
}

// RunProgress is Run with a progress callback invoked after every
// completed gate. fn runs on an engine goroutine and must not call back
// into the Simulator; keep it fast — it sits between gates.
func (s *Simulator) RunProgress(ctx context.Context, c *circuit.Circuit, fn func(ProgressEvent)) (*Result, error) {
	return s.run(ctx, c, fn)
}

func (s *Simulator) run(ctx context.Context, c *circuit.Circuit, fn func(ProgressEvent)) (*Result, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadConfig)
	}
	if c.N != s.eng.Qubits() {
		return nil, fmt.Errorf("%w: circuit has %d qubits, simulator %d", ErrCircuitMismatch, c.N, s.eng.Qubits())
	}
	var ctl core.RunControl
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		// Only contexts that can actually be cancelled pay for the
		// per-gate abort broadcast; context.Background() runs the exact
		// same path as the internal engine's Run.
		ctl.PollAbort = ctx.Err
	}
	if fn != nil {
		ctl.OnGate = func(gi, total int, g circuit.Gate) {
			fn(ProgressEvent{Gate: gi, Total: total, Name: g.Name, Target: g.Target})
		}
	}
	gatesBefore := s.eng.GatesRun()
	measBefore := s.eng.MeasurementCount()
	runErr := s.eng.RunControlled(c, ctl)

	all := s.eng.Measurements()
	res := &Result{
		Gates:              s.eng.GatesRun() - gatesBefore,
		Measurements:       all[measBefore:],
		FidelityLowerBound: s.eng.FidelityLowerBound(),
		Footprint:          s.eng.CompressedFootprint(),
		CompressionRatio:   s.eng.CompressionRatio(),
		Stats:              s.eng.Stats(),
	}
	if runErr != nil {
		return res, runErr
	}
	if s.eng.OverBudget() {
		return res, fmt.Errorf("%w: footprint %s after %d escalations", ErrBudgetExceeded,
			FormatBytes(float64(res.Footprint)), res.Stats.Escalations)
	}
	return res, nil
}

// Snapshot is a point-in-time view of the simulator's cumulative
// accounting — everything Result carries plus geometry and
// communication volume.
type Snapshot struct {
	Qubits             int
	GatesRun           int
	Measurements       []int
	FidelityLowerBound float64
	Footprint          int64
	MaxFootprint       int64
	CompressionRatio   float64
	BytesMoved         int64
	Stats              Stats
}

// Snapshot returns the current cumulative accounting. It never touches
// the compressed blocks, so it is cheap and safe at any scale.
func (s *Simulator) Snapshot() Snapshot {
	st := s.eng.Stats()
	return Snapshot{
		Qubits:             s.eng.Qubits(),
		GatesRun:           s.eng.GatesRun(),
		Measurements:       s.eng.Measurements(),
		FidelityLowerBound: s.eng.FidelityLowerBound(),
		Footprint:          s.eng.CompressedFootprint(),
		MaxFootprint:       st.MaxFootprint,
		CompressionRatio:   s.eng.CompressionRatio(),
		BytesMoved:         s.eng.BytesMoved(),
		Stats:              st,
	}
}

// Qubits returns the register width n.
func (s *Simulator) Qubits() int { return s.eng.Qubits() }

// Reset reinitializes the state to |0...0⟩ and the fidelity ledger to
// 1, keeping the configuration.
func (s *Simulator) Reset() error { return s.eng.Reset() }

// SetBasisState reinitializes the state to |idx⟩.
func (s *Simulator) SetBasisState(idx uint64) error {
	if idx >= 1<<uint(s.eng.Qubits()) {
		return fmt.Errorf("%w: basis state %d on a %d-qubit register", ErrInvalidQubit, idx, s.eng.Qubits())
	}
	return s.eng.SetBasisState(idx)
}

func (s *Simulator) checkQubit(q int) error {
	if q < 0 || q >= s.eng.Qubits() {
		return fmt.Errorf("%w: qubit %d on a %d-qubit register", ErrInvalidQubit, q, s.eng.Qubits())
	}
	return nil
}

// Amplitude returns ⟨idx|ψ⟩, decompressing only the containing block.
func (s *Simulator) Amplitude(idx uint64) (complex128, error) {
	if idx >= 1<<uint(s.eng.Qubits()) {
		return 0, fmt.Errorf("%w: amplitude index %d on a %d-qubit register", ErrInvalidQubit, idx, s.eng.Qubits())
	}
	return s.eng.Amplitude(idx)
}

// maxFullStateQubits bounds FullState: past this width the decompressed
// vector itself is gigabytes. A var so tests can exercise the
// ErrStateTooLarge path without building a 27-qubit state. Sample and
// Sampler stream from the compressed blocks and have no such bound.
var maxFullStateQubits = 26

// FullState decompresses and returns the whole state vector. Registers
// wider than 26 qubits report ErrStateTooLarge.
func (s *Simulator) FullState() ([]complex128, error) {
	if s.eng.Qubits() > maxFullStateQubits {
		return nil, fmt.Errorf("%w: %d qubits would allocate %s", ErrStateTooLarge,
			s.eng.Qubits(), FormatBytes(MemoryRequirement(s.eng.Qubits())))
	}
	return s.eng.FullState()
}

// Norm returns Σ|aᵢ|² across the full compressed state (1 up to
// compression error).
func (s *Simulator) Norm() (float64, error) { return s.eng.Norm() }

// ProbabilityOne returns P(qubit q = 1) without collapsing the state.
func (s *Simulator) ProbabilityOne(q int) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	return s.eng.ProbabilityOne(q)
}

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) - P(q=1).
func (s *Simulator) ExpectationZ(q int) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	return s.eng.ExpectationZ(q)
}

// ExpectationZZ returns the two-point correlator ⟨Z_a Z_b⟩.
func (s *Simulator) ExpectationZZ(a, b int) (float64, error) {
	if err := s.checkQubit(a); err != nil {
		return 0, err
	}
	if err := s.checkQubit(b); err != nil {
		return 0, err
	}
	return s.eng.ExpectationZZ(a, b)
}

// MaxCutEnergy returns the expected cut value Σ_edges (1 - ⟨Z_u Z_v⟩)/2
// of the current state — the QAOA objective over the given graph.
func (s *Simulator) MaxCutEnergy(edges []circuit.Edge) (float64, error) {
	cut := make([]core.CutEdge, len(edges))
	for i, e := range edges {
		if err := s.checkQubit(e.U); err != nil {
			return 0, err
		}
		if err := s.checkQubit(e.V); err != nil {
			return 0, err
		}
		cut[i] = core.CutEdge{U: e.U, V: e.V}
	}
	return s.eng.MaxCutEnergy(cut)
}

// AssertClassical checks that qubit q reads `value` with probability at
// least 1-tol — the statistical-assertion debugging workflow the paper
// motivates.
func (s *Simulator) AssertClassical(q, value int, tol float64) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	return s.eng.AssertClassical(q, value, tol)
}

// AssertSuperposition checks that qubit q is in an approximately
// uniform superposition: P(1) within tol of 1/2.
func (s *Simulator) AssertSuperposition(q int, tol float64) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	return s.eng.AssertSuperposition(q, tol)
}

// AssertProduct checks that qubits a and b are approximately
// unentangled in the computational basis (total-variation distance of
// the joint distribution from the product of marginals ≤ tol).
func (s *Simulator) AssertProduct(a, b int, tol float64) error {
	if err := s.checkQubit(a); err != nil {
		return err
	}
	if err := s.checkQubit(b); err != nil {
		return err
	}
	return s.eng.AssertProduct(a, b, tol)
}

// Measurements returns the outcomes of every measurement gate executed
// so far, in order.
func (s *Simulator) Measurements() []int { return s.eng.Measurements() }

// Sample draws `shots` full-register outcomes from the simulator's own
// seeded stream (WithSeed) without collapsing the state. The draw
// streams from the compressed blocks — the full vector is never
// materialized — so sampling works at any register width. Outcome
// frequencies follow the state's normalized distribution: draws are
// scaled by the true total mass Σ|aᵢ|², so lossy compression shedding
// norm never biases the histogram (toward |0...0⟩ or anywhere else).
// Repeated sampling of an unchanged state is cheaper through a Sampler
// handle, which builds the probability tables once.
func (s *Simulator) Sample(shots int) ([]uint64, error) {
	if shots < 0 {
		return nil, fmt.Errorf("%w: negative shot count %d", ErrBadConfig, shots)
	}
	sp, err := s.Sampler()
	if err != nil {
		return nil, err
	}
	return sp.sample(shots)
}

// Sampler draws shots directly from the compressed state through a
// two-level CDF built once at construction: one pass over the
// compressed blocks computes per-block probability masses, and each
// shot then binary-searches the block prefix sums and decompresses
// only its hit block (through an LRU sized by WithSampleCache). Draws
// are normalized by the true total mass, so lossy-codec norm loss
// never skews outcomes. A Sampler reads the state it was built from;
// once the simulator mutates (Run, Reset, SetBasisState, Load), Sample
// reports ErrStaleSampler and a fresh Sampler must be built. Like the
// Simulator, a Sampler is not safe for concurrent use.
type Sampler struct {
	sp *core.Sampler
}

// Sampler builds the sampling tables for the current state: one
// worker-pool pass over the compressed blocks, never materializing the
// full vector — shot-based readout works on registers far past what
// FullState can allocate.
func (s *Simulator) Sampler() (*Sampler, error) {
	sp, err := s.eng.NewSampler(s.sampleCache)
	if err != nil {
		return nil, err
	}
	return &Sampler{sp: sp}, nil
}

// TotalMass returns the sampler's normalization constant Σ|aᵢ|² at
// build time — 1 up to floating-point rounding while the state is
// lossless, below 1 once lossy compression has shed mass.
func (sp *Sampler) TotalMass() float64 { return sp.sp.TotalMass() }

// Sample draws `shots` outcomes from the simulator's seeded sampling
// stream (WithSeed). The stream is separate from measurement collapse,
// so sampling never perturbs later measurement outcomes.
func (sp *Sampler) Sample(shots int) ([]uint64, error) {
	if shots < 0 {
		return nil, fmt.Errorf("%w: negative shot count %d", ErrBadConfig, shots)
	}
	return sp.sample(shots)
}

func (sp *Sampler) sample(shots int) ([]uint64, error) {
	out, err := sp.sp.Sample(nil, shots)
	if err != nil {
		if errors.Is(err, core.ErrSamplerStale) {
			return nil, fmt.Errorf("%w: %v", ErrStaleSampler, err)
		}
		return nil, err
	}
	return out, nil
}

// Stats returns the cumulative aggregate accounting across ranks.
func (s *Simulator) Stats() Stats { return s.eng.Stats() }

// FidelityLowerBound returns the running fidelity ledger Π(1-δᵢ) over
// all executed gates (the paper's Eq. 11).
func (s *Simulator) FidelityLowerBound() float64 { return s.eng.FidelityLowerBound() }

// CompressedFootprint returns the current compressed state size in
// bytes, summed across ranks.
func (s *Simulator) CompressedFootprint() int64 { return s.eng.CompressedFootprint() }

// CompressionRatio returns uncompressed-state-bytes over the current
// compressed footprint.
func (s *Simulator) CompressionRatio() float64 { return s.eng.CompressionRatio() }

// GatesRun returns the number of gates executed so far across all
// runs.
func (s *Simulator) GatesRun() int { return s.eng.GatesRun() }

// BytesMoved returns the cumulative cross-rank communication volume in
// bytes.
func (s *Simulator) BytesMoved() int64 { return s.eng.BytesMoved() }

// Save writes a self-describing, checksummed checkpoint of the full
// simulator state (compressed blocks as-is, ledger, measurement log) to
// w — the paper's §3.5 wall-time-limit workflow.
func (s *Simulator) Save(w io.Writer) error { return s.eng.Save(w) }

// Load restores a checkpoint written by Save. The simulator must have
// been built with the same qubit count, ranks, and block size; any
// mismatch, corruption, or undecodable block reports ErrBadCheckpoint
// without modifying the current state.
func (s *Simulator) Load(r io.Reader) error {
	if err := s.eng.Load(r); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return nil
}

// MemoryRequirement returns the uncompressed state size in bytes for n
// qubits: 2^(n+4) (the paper's Table 1 arithmetic).
func MemoryRequirement(n int) float64 { return core.MemoryRequirement(n) }

// MaxQubitsForMemory returns the largest register a machine with
// `bytes` of memory can simulate without compression.
func MaxQubitsForMemory(bytes float64) int { return core.MaxQubitsForMemory(bytes) }

// FidelityBound computes the paper's Eq. 11 lower bound analytically
// for a sequence of per-gate error bounds (0 = lossless gate).
func FidelityBound(gateBounds []float64) float64 { return core.FidelityBound(gateBounds) }

// FormatBytes renders a byte count using binary units ("16.0 MB").
func FormatBytes(b float64) string { return stats.FormatBytes(b) }
