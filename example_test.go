package qcsim_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"qcsim"
	"qcsim/circuit"
)

// Build a 3-qubit GHZ state and read an amplitude back — the smallest
// end-to-end use of the facade.
func ExampleNew() {
	sim, err := qcsim.New(3, qcsim.WithSeed(1))
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(context.Background(), circuit.GHZ(3))
	if err != nil {
		panic(err)
	}
	a, _ := sim.Amplitude(7) // ⟨111|ψ⟩
	fmt.Printf("gates=%d amplitude=%.4f fidelity=%.2f\n", res.Gates, real(a), res.FidelityLowerBound)
	// Output: gates=3 amplitude=0.7071 fidelity=1.00
}

// Measurement outcomes land in the Result; a Bell pair always measures
// both qubits equal.
func ExampleSimulator_Run() {
	sim, err := qcsim.New(2, qcsim.WithSeed(7))
	if err != nil {
		panic(err)
	}
	c := circuit.New(2).H(0).CNOT(0, 1).Measure(0).Measure(1)
	res, err := sim.Run(context.Background(), c)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Measurements[0] == res.Measurements[1])
	// Output: true
}

// RunProgress reports every completed gate; the context cancels a run
// between gates.
func ExampleSimulator_RunProgress() {
	sim, err := qcsim.New(2)
	if err != nil {
		panic(err)
	}
	events := 0
	res, err := sim.RunProgress(context.Background(), circuit.New(2).H(0).CNOT(0, 1),
		func(ev qcsim.ProgressEvent) { events++ })
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d events for %d gates\n", events, res.Gates)
	// Output: 2 events for 2 gates
}

// exampleCodec stores raw little-endian float64s — the smallest codec
// satisfying the registry contract (self-describing payload, fresh
// instance per factory call, every bound trivially honored because the
// reconstruction is exact).
type exampleCodec struct{}

func (exampleCodec) Name() string { return "example-raw" }

func (exampleCodec) Compress(dst []byte, src []float64, _ qcsim.CodecOptions) ([]byte, error) {
	var b [8]byte
	for _, v := range src {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

func (exampleCodec) Decompress(dst []float64, data []byte) error {
	if len(data) != len(dst)*8 {
		return fmt.Errorf("example-raw: %d bytes for %d values", len(data), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return nil
}

// Register a third-party codec and select it by name like any
// built-in.
func ExampleRegisterCodec() {
	if err := qcsim.RegisterCodec("example-raw", func() qcsim.Codec { return exampleCodec{} }); err != nil {
		panic(err)
	}
	sim, err := qcsim.New(4, qcsim.WithCodec("example-raw"))
	if err != nil {
		panic(err)
	}
	if _, err := sim.Run(context.Background(), circuit.GHZ(4)); err != nil {
		panic(err)
	}
	for _, name := range qcsim.Codecs() {
		if name == "example-raw" {
			fmt.Println("selectable:", name)
		}
	}
	// Output: selectable: example-raw
}
