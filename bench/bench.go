// Package bench is the public handle on the experiment harness that
// regenerates the paper's tables and figures (Table 1/2, Figs. 5–16).
// It exists so tools like cmd/qcbench — and any external driver — can
// enumerate, configure, and run the experiments without importing the
// module's internal packages.
package bench

import "qcsim/internal/harness"

// Options scales the experiments: qubit counts, block sizes, depths,
// and the rank/worker configuration of simulator runs.
type Options = harness.Options

// Experiment is one runnable experiment: an ID (e.g. "table2",
// "fig10"), a title, and a Run method writing its report to an
// io.Writer.
type Experiment = harness.Experiment

// Default returns the committed full-scale options.
func Default() Options { return harness.Default() }

// Small returns CI-sized options (seconds, not minutes).
func Small() Options { return harness.Small() }

// Experiments lists every experiment in presentation order.
func Experiments() []Experiment { return harness.Experiments() }

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) { return harness.Lookup(id) }

// IDs returns the experiment IDs in presentation order.
func IDs() []string { return harness.IDs() }

// ExportCSV writes every figure's data as CSV files into dir.
func ExportCSV(dir string, opt Options) error { return harness.ExportCSV(dir, opt) }

// Snapshot bundles one run of the structured experiments (sweep, batch,
// sampling, crossover, spill) for a committed BENCH_N.json baseline.
type Snapshot = harness.BenchSnapshot

// SpillRow is one workload of the out-of-core spill experiment.
type SpillRow = harness.SpillRow

// SpillResults runs the spill experiment and returns its rows.
func SpillResults(opt Options) ([]SpillRow, error) { return harness.SpillResults(opt) }

// BatchRow is one workload of the variant-batching experiment: a
// lockstep parameter-shift batch vs the same K circuits run
// sequentially.
type BatchRow = harness.BatchRow

// BatchResults runs the variant-batching experiment and returns its
// rows.
func BatchResults(opt Options) ([]BatchRow, error) { return harness.BatchResults(opt) }

// WriteJSONFile writes a Snapshot of the structured experiments at the
// given scale to path, indented.
func WriteJSONFile(path string, opt Options) error { return harness.WriteJSONFile(path, opt) }

// BuildSnapshot runs the structured experiments once and returns the
// bundle — the build-once entry for tools that both persist and diff.
func BuildSnapshot(opt Options) (*Snapshot, error) { return harness.BuildSnapshot(opt) }

// WriteSnapshotFile writes an already-built Snapshot to path, indented.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	return harness.WriteSnapshotFile(path, snap)
}

// ReadSnapshot parses a committed BENCH_N.json snapshot.
func ReadSnapshot(path string) (*Snapshot, error) { return harness.ReadSnapshot(path) }

// Regression is one tracked benchmark metric that moved past the
// tolerance in the harmful direction between two snapshots.
type Regression = harness.Regression

// DiffSnapshots compares a fresh snapshot against a committed baseline
// and returns every tracked-row regression beyond tol (0.20 = 20%).
// Only machine-portable metrics are gated — deterministic counters and
// within-run ratios — so a committed baseline from one machine holds
// on another; see the CI bench-regression step.
func DiffSnapshots(old, fresh *Snapshot, tol float64) ([]Regression, error) {
	return harness.DiffSnapshots(old, fresh, tol)
}
