package qcsim

import (
	"errors"

	"qcsim/internal/blockstore"
	"qcsim/internal/mpi"
	"qcsim/internal/mps"
)

// Sentinel errors. Every error returned by the package either is one of
// these or wraps one of them (or, for aborted runs, wraps the context's
// error), so callers branch with errors.Is:
//
//	if _, err := qcsim.New(n, opts...); errors.Is(err, qcsim.ErrBadConfig) { ... }
//	if _, err := sim.Run(ctx, c); errors.Is(err, context.Canceled) { ... }
var (
	// ErrBadConfig reports an invalid or inconsistent option set passed
	// to New (qubit count out of range, non-power-of-two ranks or block
	// size, non-increasing error levels, out-of-range noise
	// probability, ...).
	ErrBadConfig = errors.New("qcsim: invalid configuration")

	// ErrInvalidQubit reports a qubit index (or basis-state index)
	// outside the simulator's register.
	ErrInvalidQubit = errors.New("qcsim: qubit index out of range")

	// ErrBudgetExceeded reports that during a run some rank completed a
	// whole gate at the adaptive pipeline's loosest error bound and the
	// compressed footprint still exceeded the memory budget — the state
	// could not be made to fit. The simulator remains fully
	// inspectable; the state is the loosest-bound approximation.
	ErrBudgetExceeded = errors.New("qcsim: memory budget exceeded at the loosest error bound")

	// ErrCircuitMismatch reports a circuit whose qubit count differs
	// from the simulator's register width.
	ErrCircuitMismatch = errors.New("qcsim: circuit width does not match simulator")

	// ErrUnknownCodec reports a codec name with no registered factory
	// (see RegisterCodec and Codecs).
	ErrUnknownCodec = errors.New("qcsim: unknown codec")

	// ErrBadCheckpoint reports an unreadable, corrupt, or
	// geometry-mismatched checkpoint passed to Load.
	ErrBadCheckpoint = errors.New("qcsim: invalid checkpoint")

	// ErrStateTooLarge reports a request to materialize the full
	// uncompressed state vector (FullState) on a register too wide to
	// allocate it. Sample and Sampler never materialize the state and
	// work at any width.
	ErrStateTooLarge = errors.New("qcsim: state too large to materialize")

	// ErrStaleSampler reports a Sampler whose probability tables no
	// longer describe the simulator's state — gates ran, Reset or
	// SetBasisState reinitialized it, or a checkpoint loaded since the
	// Sampler was built. Build a fresh one with Simulator.Sampler.
	ErrStaleSampler = errors.New("qcsim: sampler stale: state mutated since it was built")

	// ErrAssertionFailed reports a statistical assertion
	// (AssertClassical, AssertSuperposition, AssertProduct) that the
	// current state does not satisfy. The message carries the measured
	// probability or total-variation distance:
	//
	//	if err := sim.AssertClassical(0, 1, 1e-6); errors.Is(err, qcsim.ErrAssertionFailed) { ... }
	ErrAssertionFailed = errors.New("qcsim: assertion failed")

	// ErrClosed reports a method call on a Simulator after Close. Every
	// error-returning method checks it first, so a caller that evicts a
	// simulator (a serving layer suspending an idle session, a pool
	// recycling handles) gets a typed refusal instead of undefined
	// behavior from a torn-down engine. Close itself stays idempotent
	// and never reports ErrClosed.
	ErrClosed = errors.New("qcsim: simulator closed")
)

// ErrUnsupportedOp reports an operation the selected backend genuinely
// cannot perform. The compressed backend supports everything; the mps
// backend rejects measurement gates, multi-controlled gates (more than
// one control), the Assert* methods, and Save/Load — the paper's §1
// case for full-state simulation, made checkable:
//
//	if _, err := sim.Run(ctx, c); errors.Is(err, qcsim.ErrUnsupportedOp) {
//		// rebuild with WithBackend(qcsim.BackendCompressed)
//	}
//
// The error chain also carries a *mps.UnsupportedOpError naming the
// rejected operation; it is the same sentinel internal/mps uses, so
// errors.Is works across the facade boundary.
var ErrUnsupportedOp = mps.ErrUnsupportedOp

// ErrRankDied reports a distributed rank dying mid-run on the TCP
// transport (WithTransport): a worker process crashed, was killed, or
// lost its connection, and the failure cascaded across the rank mesh —
// every surviving rank unblocked with this sentinel in its error chain
// instead of deadlocking in a collective. The coordinator's state is
// untouched (deltas merge only after every rank succeeds), so the run
// can simply be retried:
//
//	if _, err := sim.Run(ctx, c); errors.Is(err, qcsim.ErrRankDied) {
//		// respawn workers / retry the run; the pre-run state is intact
//	}
//
// It is the same sentinel internal/mpi uses, so errors.Is works across
// the facade boundary.
var ErrRankDied = mpi.ErrRankDied

// ErrSpill reports an I/O failure in the disk spill tier enabled by
// WithSpill: the spill directory could not host the per-rank spill
// file at New, or a spill write/read failed mid-run. It is distinct
// from ErrBadConfig — the option set was valid, the disk was not —
// and from ErrBudgetExceeded, which is about the error-bound ladder,
// not storage. It is the same sentinel internal/blockstore uses, so
// errors.Is works across the facade boundary.
var ErrSpill = blockstore.ErrSpill
